#include "bist/lbist.hpp"

#include <cassert>

#include "atpg/fault_sim.hpp"
#include "netlist/design_db.hpp"

namespace tpi {

std::uint64_t Lfsr::primitive_polynomial(int degree) {
  // Taps from the standard tables (Xilinx XAPP052 / Golomb); expressed as
  // the feedback mask excluding the implicit x^degree term.
  switch (degree) {
    case 8: return 0xB8;                  // x^8+x^6+x^5+x^4+1
    case 16: return 0xB400;               // x^16+x^14+x^13+x^11+1
    case 24: return 0xE10000;             // x^24+x^23+x^22+x^17+1
    case 32: return 0xA3000000u;          // x^32+x^30+x^26+x^25+1
    case 48: return 0xC00000180000ULL;    // x^48+x^47+x^21+x^20+1
    case 64: return 0xD800000000000000ULL;  // x^64+x^63+x^61+x^60+1
    default: return 0xA3000000u;
  }
}

Lfsr::Lfsr(int degree, std::uint64_t seed) : degree_(degree) {
  assert(degree >= 8 && degree <= 64);
  poly_ = primitive_polynomial(degree);
  mask_ = degree == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << degree) - 1);
  state_ = (seed & mask_) != 0 ? (seed & mask_) : 1;  // never all-zero
}

std::uint64_t Lfsr::step() {
  const bool lsb = (state_ & 1u) != 0;
  state_ >>= 1;
  if (lsb) state_ ^= poly_ & mask_;
  return state_;
}

Word Lfsr::next_word() {
  Word w = 0;
  for (int k = 0; k < kWordBits; ++k) {
    if (next_bit()) w |= Word{1} << k;
  }
  return w;
}

Misr::Misr(int degree, std::uint64_t seed) {
  poly_ = Lfsr::primitive_polynomial(degree);
  mask_ = degree == 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << degree) - 1);
  state_ = seed & mask_;
}

void Misr::absorb(std::uint64_t value) {
  const bool lsb = (state_ & 1u) != 0;
  state_ >>= 1;
  if (lsb) state_ ^= poly_ & mask_;
  state_ = (state_ ^ value) & mask_;
}

LbistResult run_lbist(const CombModel& model, const LbistOptions& opts) {
  LbistResult res;
  const bool transition = opts.fault_model == FaultModel::kTransition;
  FaultList faults = build_fault_list(model, opts.fault_model);
  res.total_faults = faults.total_uncollapsed;
  res.capture_period_ps = opts.capture_period_ps;

  // At-speed qualification: a gross-delay defect of size delta at a site
  // with data arrival time a is caught at capture period T only when
  // a + delta > T — otherwise the path's slack swallows the extra delay.
  // With the default delta = T (a gross defect) every site with positive
  // arrival qualifies at speed, while a slow clock (T = k * t_cp) leaves
  // almost nothing observable: the at-speed vs slow-speed coverage gap.
  const bool qualify =
      transition && opts.capture_period_ps > 0.0 && opts.arrival_ps != nullptr;
  auto qualifies = [&](const Fault& f) {
    if (!qualify) return true;
    const double arrival = (*opts.arrival_ps)[static_cast<std::size_t>(f.net)];
    const double delta =
        opts.fault_size_ps > 0.0 ? opts.fault_size_ps : opts.capture_period_ps;
    return arrival + delta > opts.capture_period_ps;
  };

  FaultSimulator fsim(model);
  Lfsr lfsr(opts.lfsr_degree, opts.lfsr_seed);
  Misr misr(64);

  std::vector<Fault*> live;
  live.reserve(faults.faults.size());
  for (Fault& f : faults.faults) {
    if (f.status == FaultStatus::kUndetected && qualifies(f)) live.push_back(&f);
  }
  if (qualify) {
    for (const Fault* f : live) res.qualified += f->equiv_count;
  } else {
    res.qualified = res.total_faults;
  }

  const std::size_t num_inputs = model.input_nets().size();
  std::vector<Word> words(num_inputs);
  std::vector<Word> responses;
  int applied = 0;
  while (applied < opts.max_patterns) {
    // One batch = 64 pseudo-random scan loads, phase-shifted per input by
    // drawing a fresh word from the PRPG stream. Transition sessions run
    // each load as a launch-on-capture pair.
    for (auto& w : words) w = lfsr.next_word();
    if (transition) {
      fsim.load_batch_loc(words);
    } else {
      fsim.load_batch(words);
    }
    fsim.good().read_observes(responses);
    for (const Word r : responses) misr.absorb(r);

    std::vector<Fault*> still;
    still.reserve(live.size());
    for (Fault* f : live) {
      if (fsim.detects(*f) != 0) {
        f->status = FaultStatus::kDetected;
      } else {
        still.push_back(f);
      }
    }
    live = std::move(still);
    applied += kWordBits;

    if (applied % opts.report_every == 0 || applied >= opts.max_patterns) {
      const std::int64_t det = faults.count_equiv(FaultStatus::kDetected) +
                               faults.count_equiv(FaultStatus::kScanTested);
      res.coverage_curve.emplace_back(
          applied, 100.0 * static_cast<double>(det) /
                       static_cast<double>(res.total_faults));
    }
    if (live.empty()) break;
  }

  res.patterns_applied = applied;
  res.detected = faults.count_equiv(FaultStatus::kDetected);
  const std::int64_t covered =
      res.detected + faults.count_equiv(FaultStatus::kScanTested);
  res.final_coverage_pct =
      100.0 * static_cast<double>(covered) / static_cast<double>(res.total_faults);
  res.signature = misr.signature();
  return res;
}

LbistResult run_lbist(DesignDB& db, const LbistOptions& opts) {
  return run_lbist(db.comb_model(SeqView::kCapture), opts);
}

}  // namespace tpi
