// Logic BIST substrate (§2 of the paper).
//
// "Most TPI methods are used with logic built-in self-test (LBIST). LBIST
// implements a pseudo-random stimulus generator on-chip ... the fault
// coverage achieved with pseudo-random patterns only is generally
// insufficient ... Test points are therefore inserted to increase the
// detectability of these faults."
//
// This module provides that context: an LFSR pattern generator with a
// phase-shifter-style expansion across scan chains, a MISR response
// compactor, and a BIST session runner that fault-grades pseudo-random
// patterns — the experiment that motivates test point insertion in the
// first place (pseudo-random-resistant faults cap the coverage curve).
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/parallel_sim.hpp"

namespace tpi {

/// Galois-form LFSR over a primitive polynomial (bit i of the polynomial
/// mask = coefficient of x^i, implicit x^degree term).
class Lfsr {
 public:
  /// Standard primitive polynomial for the given degree (8..64).
  static std::uint64_t primitive_polynomial(int degree);

  explicit Lfsr(int degree, std::uint64_t seed = 0xACE1u);

  int degree() const { return degree_; }
  std::uint64_t state() const { return state_; }

  /// Advance one step and return the new state.
  std::uint64_t step();

  /// Produce the next pseudo-random bit (LSB of the state after stepping).
  bool next_bit() { return (step() & 1u) != 0; }

  /// Fill a 64-pattern word: bit k of the result is an independent draw.
  Word next_word();

 private:
  int degree_;
  std::uint64_t poly_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

/// Multiple-input signature register: compacts observed responses into a
/// signature (Galois LFSR with parallel inputs XORed into the low bits).
class Misr {
 public:
  explicit Misr(int degree = 32, std::uint64_t seed = 0);

  /// Absorb one observation word (e.g. a PO value across 64 patterns the
  /// caller serialises, or one per-pattern response slice).
  void absorb(std::uint64_t value);

  std::uint64_t signature() const { return state_; }

 private:
  std::uint64_t poly_;
  std::uint64_t mask_;
  std::uint64_t state_;
};

struct LbistOptions {
  int max_patterns = 16384;     ///< pseudo-random budget
  int report_every = 1024;      ///< granularity of the coverage curve
  std::uint64_t lfsr_seed = 0xACE1u;
  int lfsr_degree = 32;

  /// kStuckAt grades each scan load in a single capture cycle (the seed
  /// behavior); kTransition grades launch-on-capture pattern pairs.
  FaultModel fault_model = FaultModel::kStuckAt;
  /// At-speed timing qualification (kTransition only): the capture clock
  /// period in ps — take it from run_sta's worst path (F_max) to clock the
  /// BIST at speed, or a multiple of it for a slow-speed session. 0
  /// disables qualification (every transition fault stays eligible).
  double capture_period_ps = 0.0;
  /// Assumed gross-delay defect size in ps; <= 0 means "one full capture
  /// period" (a gross defect), making a fault testable at period T exactly
  /// when its site has positive arrival time.
  double fault_size_ps = 0.0;
  /// Per-net data arrival times from run_sta (StaResult::arrival_ps),
  /// required for qualification; may be null when capture_period_ps == 0.
  const std::vector<double>* arrival_ps = nullptr;
};

struct LbistResult {
  /// Coverage curve: (patterns applied, fault coverage %) per report step.
  std::vector<std::pair<int, double>> coverage_curve;
  double final_coverage_pct = 0.0;
  std::int64_t detected = 0;         ///< equivalent faults detected
  std::int64_t total_faults = 0;     ///< uncollapsed universe
  std::uint64_t signature = 0;       ///< MISR signature of the good machine
  int patterns_applied = 0;
  /// Echo of LbistOptions::capture_period_ps (0 when not qualifying).
  double capture_period_ps = 0.0;
  /// Equivalent transition faults whose site delay can violate the capture
  /// period (eligible for at-speed detection); total_faults when no
  /// qualification was requested.
  std::int64_t qualified = 0;
};

/// Run a pseudo-random BIST session on the capture-view model: LFSR-driven
/// scan loads, fault grading with dropping, MISR signature of the fault-free
/// responses. Scan-tested faults count as covered (shift/flush tests).
LbistResult run_lbist(const CombModel& model, const LbistOptions& opts = {});

class DesignDB;

/// Same session over the design database's cached capture-view model.
LbistResult run_lbist(DesignDB& db, const LbistOptions& opts = {});

}  // namespace tpi
