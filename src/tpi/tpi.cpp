#include "tpi/tpi.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "netlist/design_db.hpp"
#include "util/log.hpp"

namespace tpi {
namespace {

// Net is a legal TSFF site: driven, not a clock, not scan infrastructure,
// and carrying functional logic (some logic sink or a PO).
bool legal_site(const Netlist& nl, NetId net_id) {
  const Net& net = nl.net(net_id);
  if (!net.driver.valid() && !net.driven_by_pi()) return false;
  if (nl.is_clock_net(net_id)) return false;
  if (net.driver.valid()) {
    const CellSpec* spec = nl.cell(net.driver.cell).spec;
    if (spec->func == CellFunc::kTsff) return false;  // already a test point
    if (spec->func == CellFunc::kTie0 || spec->func == CellFunc::kTie1) return false;
  }
  bool has_logic_load = !net.po_sinks.empty();
  for (const PinRef& s : net.sinks) {
    const CellSpec* spec = nl.cell(s.cell).spec;
    const bool scan_pin = s.pin == spec->ti_pin || s.pin == spec->te_pin ||
                          s.pin == spec->tr_pin ||
                          spec->pins[static_cast<std::size_t>(s.pin)].is_clock;
    if (!scan_pin) has_logic_load = true;
  }
  return has_logic_load;
}

/// §3.1 step 2 search budget: the BFS for the nearest flip-flop's clock
/// stops after visiting this many nets. In practice a sequential element
/// sits within a handful of hops of any legal TSFF site, so the cap only
/// triggers on pathological fan-out; the fallback is the first declared
/// clock domain.
constexpr int kNearestClockMaxVisits = 4000;

/// BFS scratch, hoisted by the caller across sites so the per-site search
/// reuses one allocation instead of a fresh queue + hash set each time.
struct NearestClockScratch {
  std::vector<NetId> frontier;  ///< head-indexed FIFO (like levelize)
  std::unordered_set<NetId> seen;
};

// §3.1 step 2: the clock for a new TSFF is the domain of the nearest
// flip-flop, found by BFS through the netlist from the insertion site.
NetId nearest_clock(const Netlist& nl, NetId site, NearestClockScratch& scratch) {
  std::vector<NetId>& frontier = scratch.frontier;
  std::unordered_set<NetId>& seen = scratch.seen;
  frontier.clear();
  seen.clear();
  frontier.push_back(site);
  seen.insert(site);
  for (std::size_t head = 0;
       head < frontier.size() && head < static_cast<std::size_t>(kNearestClockMaxVisits);
       ++head) {
    const NetId net_id = frontier[head];
    const Net& net = nl.net(net_id);
    auto visit_cell = [&](CellId cid) -> NetId {
      const CellInst& inst = nl.cell(cid);
      if (inst.spec->sequential && inst.spec->clock_pin >= 0) {
        const NetId ck = inst.conn[static_cast<std::size_t>(inst.spec->clock_pin)];
        if (ck != kNoNet) return ck;
      }
      return kNoNet;
    };
    // Forward through sinks, backward through the driver.
    for (const PinRef& s : net.sinks) {
      const NetId ck = visit_cell(s.cell);
      if (ck != kNoNet) return ck;
      const NetId out = nl.cell(s.cell).output_net();
      if (out != kNoNet && seen.insert(out).second) frontier.push_back(out);
    }
    if (net.driver.valid()) {
      const NetId ck = visit_cell(net.driver.cell);
      if (ck != kNoNet) return ck;
      for (const NetId in : nl.cell(net.driver.cell).conn) {
        if (in != kNoNet && in != net_id && seen.insert(in).second) frontier.push_back(in);
      }
    }
  }
  // Fallback: the first declared clock domain.
  if (!nl.clock_pis().empty()) return nl.pi_net(nl.clock_pis().front());
  return kNoNet;
}

NetId get_or_create_control_pi(Netlist& nl, const std::string& name) {
  const NetId existing = nl.find_net(name);
  if (existing != kNoNet) return existing;
  const int pi = nl.add_primary_input(name);
  return nl.pi_net(pi);
}

}  // namespace

namespace {

// Gain of a hypothetical test point on net X (Seiss-style gradient):
//  * control gain — re-evaluate COP signal probabilities in X's fanout
//    cone with p1(X) forced to 0.5 and count nets whose hardest stuck-at
//    fault crosses from random-resistant to random-detectable;
//  * observation gain — nets in X's fan-in whose faults are activatable
//    but unobservable today become observable at the TSFF's D input.
class GainEvaluator {
 public:
  GainEvaluator(const CombModel& model, const TestabilityResult& t)
      : model_(model), t_(t) {
    p1_override_.assign(model.num_nets(), 0.0f);
    stamp_.assign(model.num_nets(), 0);
  }

  double gain(NetId x) {
    constexpr float kRandomTh = 1e-3f;  // random-detectable threshold
    ++epoch_;
    double g = 0.0;

    // ---- control gain over the fanout cone ----
    set_p1(x, 0.5f);
    // Collect cone node indices (bounded), then process in topo order.
    cone_.clear();
    std::vector<NetId> frontier{x};
    std::unordered_set<int> seen_nodes;
    for (std::size_t head = 0; head < frontier.size() && cone_.size() < 500; ++head) {
      for (const int reader : model_.readers_of(frontier[head])) {
        if (!seen_nodes.insert(reader).second) continue;
        cone_.push_back(reader);
        const NetId out = model_.nodes()[static_cast<std::size_t>(reader)].out;
        if (out != kNoNet) frontier.push_back(out);
      }
    }
    std::sort(cone_.begin(), cone_.end());
    for (const int ni : cone_) {
      const CombNode& node = model_.nodes()[static_cast<std::size_t>(ni)];
      if (node.out == kNoNet) continue;
      // Evaluate with overridden inputs where present.
      float in_p1[6];
      float* base = const_cast<float*>(t_.p1.data());
      // Build a tiny shadow: copy inputs through the override lookup.
      CombNode shadow = node;
      for (int i = 0; i < node.num_inputs; ++i) in_p1[i] = p1_of(node.in[i]);
      float sel_p1 = node.sel != kNoNet ? p1_of(node.sel) : 0.5f;
      (void)base;
      const float p_new = eval_with(shadow, in_p1, sel_p1);
      set_p1(node.out, p_new);
      const auto out = static_cast<std::size_t>(node.out);
      const float obs = t_.obs[out];
      const float old_dp = std::min(t_.p1[out], 1.0f - t_.p1[out]) * obs;
      const float new_dp = std::min(p_new, 1.0f - p_new) * obs;
      if (old_dp < kRandomTh && new_dp >= kRandomTh) g += 1.0;
    }
    // X's own faults become fully testable (control + observe).
    {
      const auto xi = static_cast<std::size_t>(x);
      const float old_dp = std::min(t_.p1[xi], 1.0f - t_.p1[xi]) * t_.obs[xi];
      if (old_dp < kRandomTh) g += 1.0;
    }

    // ---- observation gain over the fan-in cone ----
    std::vector<NetId> back{x};
    std::unordered_set<NetId> seen_nets{x};
    for (std::size_t head = 0; head < back.size() && back.size() < 300; ++head) {
      const int prod = model_.producer_of(back[head]);
      if (prod < 0) continue;
      const CombNode& node = model_.nodes()[static_cast<std::size_t>(prod)];
      for (int i = 0; i < node.num_inputs + (node.sel != kNoNet ? 1 : 0); ++i) {
        const NetId in = i < node.num_inputs ? node.in[i] : node.sel;
        if (in == kNoNet || !seen_nets.insert(in).second) continue;
        const auto ii = static_cast<std::size_t>(in);
        const float activ = std::min(t_.p1[ii], 1.0f - t_.p1[ii]);
        if (t_.obs[ii] * activ < kRandomTh && activ >= kRandomTh) {
          g += 0.5;  // observation-only gain counts less than control
          back.push_back(in);
        }
      }
    }
    return g;
  }

 private:
  float p1_of(NetId net) const {
    const auto i = static_cast<std::size_t>(net);
    return stamp_[i] == epoch_ ? p1_override_[i] : t_.p1[i];
  }
  void set_p1(NetId net, float v) {
    const auto i = static_cast<std::size_t>(net);
    p1_override_[i] = v;
    stamp_[i] = epoch_;
  }
  static float eval_with(const CombNode& node, const float* in_p1, float sel_p1) {
    // cop_node_p1 reads by net id; build a small indirection instead.
    // Re-implement inline over the packed inputs:
    std::vector<float> scratch(8, 0.5f);
    CombNode local = node;
    for (int i = 0; i < node.num_inputs; ++i) {
      local.in[i] = static_cast<NetId>(i);
      scratch[static_cast<std::size_t>(i)] = in_p1[i];
    }
    if (node.sel != kNoNet) {
      local.sel = static_cast<NetId>(6);
      scratch[6] = sel_p1;
    }
    return cop_node_p1(local, scratch.data());
  }

  const CombModel& model_;
  const TestabilityResult& t_;
  std::vector<float> p1_override_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<int> cone_;
};

}  // namespace

std::vector<NetId> rank_tpi_candidates(const Netlist& nl, const TestabilityResult& t,
                                       const CombModel& model, TpiMethod method,
                                       const std::unordered_set<NetId>& excluded,
                                       std::size_t max_candidates) {
  struct Scored {
    NetId net;
    double score;
  };
  std::vector<Scored> scored;

  if (method == TpiMethod::kHybrid) {
    // Shortlist the random-resistant nets, then rank them by explicit
    // testability gain (control + observation). Hard nets with no
    // measurable gain still rank by hardness so the requested test-point
    // budget is always spent (ties broken toward the hardest lines).
    constexpr float kHardTh = 2e-3f;
    std::vector<NetId> shortlist;
    for (std::size_t n = 0; n < nl.num_nets(); ++n) {
      const NetId net = static_cast<NetId>(n);
      if (excluded.contains(net) || !legal_site(nl, net)) continue;
      if (t.detect_prob_min(net) < kHardTh) shortlist.push_back(net);
      if (shortlist.size() >= 12000) break;
    }
    GainEvaluator eval(model, t);
    for (const NetId net : shortlist) {
      const double g = eval.gain(net);
      const double dp = static_cast<double>(t.detect_prob_min(net)) + 1e-12;
      const double hardness = -std::log2(dp);  // in (0, 40]
      scored.push_back(Scored{net, -g - hardness / 64.0});
    }
    if (scored.size() < max_candidates) {
      // Not enough random-resistant nets: top up with the hardest of the
      // remaining legal sites so the requested budget is honoured.
      for (std::size_t n = 0; n < nl.num_nets() && scored.size() < 4 * max_candidates;
           ++n) {
        const NetId net = static_cast<NetId>(n);
        if (excluded.contains(net) || !legal_site(nl, net)) continue;
        if (t.detect_prob_min(net) < kHardTh) continue;  // already scored
        scored.push_back(Scored{net, static_cast<double>(t.detect_prob_min(net))});
      }
    }
  } else {
    for (std::size_t n = 0; n < nl.num_nets(); ++n) {
      const NetId net = static_cast<NetId>(n);
      if (excluded.contains(net) || !legal_site(nl, net)) continue;
      double score = 0.0;
      if (method == TpiMethod::kCop) {
        score = t.detect_prob_min(net);
      } else {
        // SCOAP: hardest line = largest observability + controllability.
        const float hard = t.co[n] + std::min(t.cc0[n], t.cc1[n]) +
                           0.25f * std::max(t.cc0[n], t.cc1[n]);
        score = -static_cast<double>(std::min(hard, 4.0f * kScoapInf));
      }
      scored.push_back(Scored{net, score});
    }
  }

  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& a, const Scored& b) { return a.score < b.score; });
  std::vector<NetId> out;
  out.reserve(std::min(max_candidates, scored.size()));
  for (const Scored& s : scored) {
    if (out.size() >= max_candidates) break;
    out.push_back(s.net);
  }
  return out;
}

TpiReport insert_test_points(DesignDB& db, const TpiOptions& opts) {
  TpiReport report;
  if (opts.num_test_points <= 0) return report;
  Netlist& nl = db.netlist();
  const CellSpec* tsff = nl.library().by_name("TSFF_X1");
  assert(tsff != nullptr);

  const NetId te = get_or_create_control_pi(nl, opts.te_pi_name);
  const NetId tr = get_or_create_control_pi(nl, opts.tr_pi_name);

  // BFS scratch shared across every site of every round (satellite: one
  // allocation instead of a queue + hash set per insertion).
  NearestClockScratch scratch;
  std::vector<NetId> changed_nets;

  const int rounds = std::max(1, opts.rounds);
  int remaining = opts.num_test_points;
  for (int round = 0; round < rounds && remaining > 0; ++round) {
    // Step 1 (§3.1): the testability analyses over the current netlist —
    // pulled from the design database, so a round that follows an
    // edit-free round reuses the previous views instead of rebuilding
    // (previously inserted TSFFs are scan-cell boundaries in this view).
    const std::uint64_t round_start = nl.version();
    const CombModel& model = db.comb_model(SeqView::kCapture);
    const TestabilityResult& t = db.testability(SeqView::kCapture);

    const int batch = std::min(remaining, (opts.num_test_points + rounds - 1) / rounds);
    std::unordered_set<NetId> excluded = opts.excluded_nets;
    const auto ranked =
        rank_tpi_candidates(nl, t, model, opts.method, excluded, static_cast<std::size_t>(batch));
    if (ranked.empty()) break;

    for (const NetId site : ranked) {
      // Step 3 (§3.1): insert the TSFF and reconnect the net's loads.
      const std::string name = "tp" + std::to_string(report.test_points.size());
      const CellId tp = nl.add_cell(tsff, name);
      nl.insert_cell_in_net(site, tp, tsff->d_pin);
      nl.connect(tp, tsff->te_pin, te);
      nl.connect(tp, tsff->tr_pin, tr);
      // Step 2 (§3.1): clock-domain assignment.
      const NetId ck = nearest_clock(nl, site, scratch);
      if (ck != kNoNet) nl.connect(tp, tsff->clock_pin, ck);
      report.test_points.push_back(tp);
      report.sites.push_back(site);
      --remaining;
      if (remaining == 0) break;
    }
    ++report.rounds_run;
    // Journal what this round touched: -1 when the bounded edit journal
    // overflowed and the precise net set is gone.
    changed_nets.clear();
    const bool complete = nl.nets_changed_since(round_start, changed_nets);
    report.nets_changed_per_round.push_back(
        complete ? static_cast<int>(changed_nets.size()) : -1);
  }
  report.candidates_rejected_excluded = static_cast<int>(opts.excluded_nets.size());
  log_info() << "TPI: inserted " << report.test_points.size() << " test points in "
             << report.rounds_run << " rounds";
  return report;
}

TpiReport insert_test_points(Netlist& nl, const TpiOptions& opts) {
  DesignDB db(nl);
  return insert_test_points(db, opts);
}

}  // namespace tpi
