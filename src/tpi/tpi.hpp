// Test point insertion (TPI) — the paper's core DfT step (§3.1).
//
// Test points are transparent scan flip-flops (TSFFs, Fig. 1): one cell
// that acts as observation point and control point at the same time. In
// application mode (TE=TR=0) the TSFF is transparent, adding two
// multiplexer delays to the functional path; in scan capture mode it
// observes its D input and controls its output from the internal FF.
//
// Insertion is the iterative process of §3.1:
//   1. compute testability measures (SCOAP, COP, fanout-free regions),
//   2. the analyses pick the method/cost function for the round,
//   3. insert the best-scoring test points, reconnect clocks, repeat.
//
// Insertion stops at the requested test-point count. Nets can be excluded
// (used by the timing-driven TPI ablation that keeps test points off
// small-slack paths, cf. Cheng & Lin and §5).
#pragma once

#include <string>
#include <unordered_set>
#include <vector>

#include "netlist/netlist.hpp"
#include "testability/testability.hpp"

namespace tpi {

class DesignDB;

enum class TpiMethod {
  kCop,     ///< COP detection-probability cost only
  kScoap,   ///< SCOAP-based cost only
  kHybrid,  ///< COP primary, SCOAP tie-break, FFR-size weighting (default)
};

struct TpiOptions {
  int num_test_points = 0;
  TpiMethod method = TpiMethod::kHybrid;
  int rounds = 5;  ///< testability analyses are recomputed each round
  /// Nets on which no test point may be inserted (timing-driven TPI).
  std::unordered_set<NetId> excluded_nets;
  /// Shared test-control primary inputs (created on first use).
  std::string te_pi_name = "tp_te";
  std::string tr_pi_name = "tp_tr";
};

struct TpiReport {
  std::vector<CellId> test_points;  ///< inserted TSFF cells
  std::vector<NetId> sites;         ///< original nets that were split
  int rounds_run = 0;
  int candidates_rejected_excluded = 0;
  /// Per round: how many distinct nets the round's insertions touched
  /// (from the Netlist edit journal; -1 when the bounded journal
  /// overflowed mid-round). A round that inserted nothing records 0 and
  /// leaves the cached testability views untouched for the next consumer.
  std::vector<int> nets_changed_per_round;
};

/// Insert `opts.num_test_points` TSFFs into the netlist. The TSFFs' TI pins
/// are left open for the scan stitcher; TE/TR connect to shared control
/// PIs; CK connects to the clock of the nearest flip-flop (§3.1 step 2).
/// Each round pulls the capture CombModel + testability from the design
/// database (§3.1 step 1 — a rebuild only when the previous round edited
/// the netlist) and journals which nets its insertions changed.
TpiReport insert_test_points(DesignDB& db, const TpiOptions& opts);

/// Compatibility overload over a bare netlist (wraps it in a throwaway
/// DesignDB).
TpiReport insert_test_points(Netlist& nl, const TpiOptions& opts);

/// Exposed for tests and the ablation benches: rank candidate nets for one
/// insertion round (lowest score = best candidate).
std::vector<NetId> rank_tpi_candidates(const Netlist& nl, const TestabilityResult& t,
                                       const CombModel& model, TpiMethod method,
                                       const std::unordered_set<NetId>& excluded,
                                       std::size_t max_candidates);

}  // namespace tpi
