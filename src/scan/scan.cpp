#include "scan/scan.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "util/log.hpp"

namespace tpi {
namespace {

std::vector<CellId> scan_cells(const Netlist& nl) {
  std::vector<CellId> out;
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellSpec* spec = nl.cell(static_cast<CellId>(c)).spec;
    if (spec->sequential && spec->ti_pin >= 0) out.push_back(static_cast<CellId>(c));
  }
  return out;
}

}  // namespace

ScanInsertReport insert_scan(Netlist& nl, const ScanOptions& opts) {
  ScanInsertReport report;
  const CellSpec* sdff = nl.library().by_name("SDFF_X1");
  assert(sdff != nullptr);

  NetId se = nl.find_net(opts.scan_enable_pi);
  if (se == kNoNet) {
    const int pi = nl.add_primary_input(opts.scan_enable_pi);
    se = nl.pi_net(pi);
  }
  report.scan_enable_net = se;

  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellId cid = static_cast<CellId>(c);
    const CellSpec* spec = nl.cell(cid).spec;
    if (!spec->sequential) continue;
    if (spec->func == CellFunc::kDff) {
      nl.replace_spec(cid, sdff);
      ++report.converted_ffs;
    }
    const CellSpec* cur = nl.cell(cid).spec;
    if (cur->te_pin >= 0) {
      // Rehome TE to the shared scan enable (TSFFs arrive with a TPI
      // control net; one enable must drive the whole shift path).
      if (nl.cell(cid).conn[static_cast<std::size_t>(cur->te_pin)] != kNoNet) {
        nl.disconnect(cid, cur->te_pin);
      }
      nl.connect(cid, cur->te_pin, se);
      ++report.scan_cells;
    }
  }
  return report;
}

ChainPlan plan_chains(const Netlist& nl, const ScanOptions& opts,
                      const std::vector<std::pair<double, double>>& position) {
  ChainPlan plan;
  const std::vector<CellId> cells = scan_cells(nl);
  if (cells.empty()) return plan;

  // Chain count from the §4.1 policy: balanced chains of at most
  // max_chain_length, or exactly max_chains balanced chains.
  const int total = static_cast<int>(cells.size());
  int chains;
  if (opts.max_chains > 0) {
    chains = std::min(opts.max_chains, total);
  } else {
    const int len = std::max(1, opts.max_chain_length);
    chains = (total + len - 1) / len;
  }
  const int l_max = (total + chains - 1) / chains;

  // One clock domain per chain: group cells by clock net first.
  std::map<NetId, std::vector<CellId>> by_domain;
  for (const CellId c : cells) {
    const CellSpec* spec = nl.cell(c).spec;
    const NetId ck = spec->clock_pin >= 0
                         ? nl.cell(c).conn[static_cast<std::size_t>(spec->clock_pin)]
                         : kNoNet;
    by_domain[ck].push_back(c);
  }

  for (auto& [ck, group] : by_domain) {
    (void)ck;
    if (!position.empty()) {
      // Layout-driven clustering: serpentine bands by y, then x, sliced
      // into contiguous chains, so each chain occupies a compact region.
      const double band = 200.0;  // µm
      std::stable_sort(group.begin(), group.end(), [&](CellId a, CellId b) {
        const auto& pa = position[static_cast<std::size_t>(a)];
        const auto& pb = position[static_cast<std::size_t>(b)];
        const int ba = static_cast<int>(pa.second / band);
        const int bb = static_cast<int>(pb.second / band);
        if (ba != bb) return ba < bb;
        return (ba % 2 == 0) ? pa.first < pb.first : pa.first > pb.first;
      });
    }
    const int n = static_cast<int>(group.size());
    const int domain_chains = (n + l_max - 1) / l_max;
    for (int k = 0; k < domain_chains; ++k) {
      const int lo = static_cast<int>(
          std::llround(static_cast<double>(k) * n / domain_chains));
      const int hi = static_cast<int>(
          std::llround(static_cast<double>(k + 1) * n / domain_chains));
      if (hi <= lo) continue;
      plan.chains.emplace_back(group.begin() + lo, group.begin() + hi);
    }
  }

  plan.num_chains = static_cast<int>(plan.chains.size());
  for (const auto& c : plan.chains) {
    plan.max_length = std::max(plan.max_length, static_cast<int>(c.size()));
  }
  return plan;
}

void reorder_chains(ChainPlan& plan, const std::vector<std::pair<double, double>>& position) {
  for (auto& chain : plan.chains) {
    if (chain.size() < 3) continue;
    // Nearest-neighbour tour starting from the cell nearest the core edge
    // (scan-in arrives from the IO ring).
    std::vector<CellId> tour;
    std::vector<char> used(chain.size(), 0);
    std::size_t cur = 0;
    double best = 1e300;
    for (std::size_t i = 0; i < chain.size(); ++i) {
      const auto& p = position[static_cast<std::size_t>(chain[i])];
      const double d = p.first + p.second;
      if (d < best) {
        best = d;
        cur = i;
      }
    }
    tour.push_back(chain[cur]);
    used[cur] = 1;
    for (std::size_t step = 1; step < chain.size(); ++step) {
      const auto& pc = position[static_cast<std::size_t>(chain[cur])];
      double nearest = 1e300;
      std::size_t pick = 0;
      for (std::size_t i = 0; i < chain.size(); ++i) {
        if (used[i]) continue;
        const auto& p = position[static_cast<std::size_t>(chain[i])];
        const double d = std::abs(p.first - pc.first) + std::abs(p.second - pc.second);
        if (d < nearest) {
          nearest = d;
          pick = i;
        }
      }
      used[pick] = 1;
      tour.push_back(chain[pick]);
      cur = pick;
    }
    chain = std::move(tour);
  }
}

double chain_wire_length(const ChainPlan& plan,
                         const std::vector<std::pair<double, double>>& position) {
  double total = 0.0;
  for (const auto& chain : plan.chains) {
    for (std::size_t i = 1; i < chain.size(); ++i) {
      const auto& a = position[static_cast<std::size_t>(chain[i - 1])];
      const auto& b = position[static_cast<std::size_t>(chain[i])];
      total += std::abs(a.first - b.first) + std::abs(a.second - b.second);
    }
  }
  return total;
}

StitchReport stitch_chains(Netlist& nl, const ChainPlan& plan) {
  StitchReport report;
  for (std::size_t k = 0; k < plan.chains.size(); ++k) {
    const auto& chain = plan.chains[k];
    if (chain.empty()) continue;
    const int si = nl.add_primary_input("si" + std::to_string(k));
    NetId prev = nl.pi_net(si);
    ++report.scan_in_pis;
    for (const CellId cell : chain) {
      const CellSpec* spec = nl.cell(cell).spec;
      if (nl.cell(cell).conn[static_cast<std::size_t>(spec->ti_pin)] != kNoNet) {
        nl.disconnect(cell, spec->ti_pin);  // restitch (ECO path)
      }
      nl.connect(cell, spec->ti_pin, prev);
      prev = nl.cell(cell).output_net();
    }
    nl.add_primary_output("so" + std::to_string(k), prev);
    ++report.scan_out_pos;
  }
  report.num_chains = static_cast<int>(plan.chains.size());
  return report;
}

int buffer_high_fanout_net(Netlist& nl, NetId net, int max_fanout) {
  const CellSpec* buf = nl.library().by_name("BUF_X4");
  assert(buf != nullptr);
  if (max_fanout < 2) max_fanout = 2;
  std::vector<PinRef> level = nl.net(net).sinks;  // copy: we re-home them
  if (static_cast<int>(level.size()) <= max_fanout) return 0;
  for (const PinRef& s : level) nl.disconnect(s.cell, s.pin);

  int added = 0;
  while (static_cast<int>(level.size()) > max_fanout) {
    std::vector<PinRef> next;
    for (std::size_t lo = 0; lo < level.size(); lo += static_cast<std::size_t>(max_fanout)) {
      const std::size_t hi = std::min(level.size(), lo + static_cast<std::size_t>(max_fanout));
      const std::string name = nl.net(net).name + "_buf" + std::to_string(added);
      const CellId b = nl.add_cell(buf, name);
      const NetId out = nl.add_net(name + "_y");
      nl.connect(b, buf->output_pin, out);
      for (std::size_t i = lo; i < hi; ++i) nl.connect(level[i].cell, level[i].pin, out);
      next.push_back(PinRef{b, buf->find_pin("A")});
      ++added;
    }
    level = std::move(next);
  }
  for (const PinRef& p : level) nl.connect(p.cell, p.pin, net);
  return added;
}

}  // namespace tpi
