// Scan insertion and scan-chain management (§3.2 flow steps 1 and 3).
//
// Step 1 replaces every DFF with a scan flip-flop and hooks up the shared
// scan-enable; scan-in routing (TI pins) stays open because chains are
// stitched only after placement. Step 3 performs layout-driven scan chain
// stitching: scan cells are clustered into balanced chains by position and
// ordered with a nearest-neighbour tour so scan wiring stays short, then
// buffer trees are added to the scan-enable (and test-point control) nets.
#pragma once

#include <utility>
#include <vector>

#include "netlist/netlist.hpp"

namespace tpi {

struct ScanOptions {
  /// Balanced maximum chain length (0 = derive from max_chains).
  int max_chain_length = 100;
  /// Upper bound on the number of chains (0 = unlimited).
  int max_chains = 0;
  std::string scan_enable_pi = "scan_en";
};

struct ScanInsertReport {
  int converted_ffs = 0;   ///< DFFs replaced by SDFFs
  int scan_cells = 0;      ///< total scan cells (SDFF + TSFF)
  NetId scan_enable_net = kNoNet;
};

/// Replace DFFs with SDFFs and connect every scan cell's TE to the shared
/// scan-enable PI (TSFFs already own a TE from TPI; they are rehomed to the
/// shared net so one enable drives the whole scan path).
ScanInsertReport insert_scan(Netlist& nl, const ScanOptions& opts);

struct ChainPlan {
  std::vector<std::vector<CellId>> chains;  ///< scan cells per chain, in shift order
  int num_chains = 0;
  int max_length = 0;  ///< l_max of Table 1
};

/// Partition scan cells into balanced chains, one clock domain per chain
/// (mixing domains in one chain would need lock-up latches).
/// `position` gives (x, y) per cell id for layout-driven clustering; pass
/// an empty vector for netlist-order chains (pre-layout fallback).
ChainPlan plan_chains(const Netlist& nl, const ScanOptions& opts,
                      const std::vector<std::pair<double, double>>& position);

/// Order the cells inside each chain with a nearest-neighbour tour over
/// their placed locations (layout-driven scan chain reordering, step 3).
void reorder_chains(ChainPlan& plan, const std::vector<std::pair<double, double>>& position);

/// Total scan-routing length estimate for a plan (sum of Manhattan hops
/// between consecutive cells), used by the reordering ablation bench.
double chain_wire_length(const ChainPlan& plan,
                         const std::vector<std::pair<double, double>>& position);

struct StitchReport {
  int num_chains = 0;
  int scan_in_pis = 0;
  int scan_out_pos = 0;
};

/// Wire TI pins along each chain and create per-chain scan-in PIs and
/// scan-out POs.
StitchReport stitch_chains(Netlist& nl, const ChainPlan& plan);

/// Insert a buffer tree on a high-fanout net (scan enable, TSFF TE/TR)
/// limiting each stage to `max_fanout` loads. Returns #buffers added.
int buffer_high_fanout_net(Netlist& nl, NetId net, int max_fanout = 24);

}  // namespace tpi
