// Gate-level netlist: cell instances from a CellLibrary connected by nets.
//
// The netlist is index-based (CellId / NetId are dense integers) so the
// analysis passes (simulation, testability, ATPG, STA) can use flat arrays.
// Editing operations cover exactly what the paper's flow needs: inserting
// test points into nets (§3.1), replacing DFFs with scan flip-flops,
// stitching/reordering scan chains, and adding buffer trees.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "library/library.hpp"

namespace tpi {

using CellId = std::int32_t;
using NetId = std::int32_t;
inline constexpr CellId kNoCell = -1;
inline constexpr NetId kNoNet = -1;

/// A (cell, pin-index) pair; pin indexes into CellSpec::pins.
struct PinRef {
  CellId cell = kNoCell;
  int pin = -1;

  bool valid() const { return cell != kNoCell; }
  friend bool operator==(const PinRef&, const PinRef&) = default;
};

struct CellInst {
  std::string name;
  const CellSpec* spec = nullptr;
  std::vector<NetId> conn;  ///< one entry per spec pin; kNoNet = unconnected

  NetId output_net() const {
    return spec->output_pin >= 0 ? conn[static_cast<std::size_t>(spec->output_pin)] : kNoNet;
  }
};

struct Net {
  std::string name;
  PinRef driver;            ///< driving cell output pin (invalid if PI-driven)
  int pi_index = -1;        ///< >=0 when driven by that primary input
  std::vector<PinRef> sinks;  ///< cell input pins loading the net
  std::vector<int> po_sinks;  ///< primary outputs reading the net

  bool driven_by_pi() const { return pi_index >= 0; }
  std::size_t fanout() const { return sinks.size() + po_sinks.size(); }
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary* lib, std::string name = "top");

  const CellLibrary& library() const { return *lib_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction ----
  NetId add_net(std::string net_name);
  CellId add_cell(const CellSpec* spec, std::string cell_name);
  /// Connect a cell pin to a net (pin must currently be unconnected).
  void connect(CellId cell, int pin, NetId net);
  /// Detach a cell pin from whatever net it is on.
  void disconnect(CellId cell, int pin);

  int add_primary_input(std::string pi_name);   ///< returns PI index
  int add_primary_output(std::string po_name, NetId net);
  NetId pi_net(int pi_index) const { return pi_nets_[static_cast<std::size_t>(pi_index)]; }

  /// Declare a primary input as a clock root (establishes a clock domain).
  void mark_clock(int pi_index);
  const std::vector<int>& clock_pis() const { return clock_pis_; }
  bool is_clock_net(NetId net) const;

  // ---- editing (used by TPI / scan / CTS) ----
  /// Replace a cell's spec with a pin-name-compatible one (e.g. DFF_X1 ->
  /// SDFF_X1): connections are carried over by pin name; new pins start
  /// unconnected.
  void replace_spec(CellId cell, const CellSpec* new_spec);

  /// Insert a single-input cell (buffer-like: TSFF via D, BUF via A) into
  /// `net`: the new cell's `in_pin` takes the old net, a fresh net takes the
  /// new cell's output, and the chosen sinks move onto the fresh net.
  /// If `sink_subset` is empty, ALL existing sinks (and POs) move.
  NetId insert_cell_in_net(NetId net, CellId new_cell, int in_pin,
                           const std::vector<PinRef>& sink_subset = {});

  // ---- access ----
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_pis() const { return pi_names_.size(); }
  std::size_t num_pos() const { return po_names_.size(); }

  CellInst& cell(CellId id) { return cells_[static_cast<std::size_t>(id)]; }
  const CellInst& cell(CellId id) const { return cells_[static_cast<std::size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }

  const std::string& pi_name(int i) const { return pi_names_[static_cast<std::size_t>(i)]; }
  const std::string& po_name(int i) const { return po_names_[static_cast<std::size_t>(i)]; }
  NetId po_net(int i) const { return po_nets_[static_cast<std::size_t>(i)]; }

  CellId find_cell(std::string_view cell_name) const;
  NetId find_net(std::string_view net_name) const;

  /// All sequential cells (DFF/SDFF/TSFF), ascending id.
  std::vector<CellId> flip_flops() const;
  /// Sequential cells whose spec is TSFF.
  std::vector<CellId> test_points() const;

  // ---- statistics ----
  struct Stats {
    std::size_t cells = 0;
    std::size_t combinational = 0;
    std::size_t flip_flops = 0;
    std::size_t test_points = 0;
    std::size_t nets = 0;
    std::size_t pis = 0;
    std::size_t pos = 0;
    double cell_area_um2 = 0.0;
  };
  Stats stats() const;

  /// Check structural invariants (every pin consistent with its net, every
  /// net driven at most once, pin counts match specs). Returns an empty
  /// string when valid, else a description of the first violation.
  std::string validate() const;

 private:
  const CellLibrary* lib_;
  std::string name_;
  std::vector<CellInst> cells_;
  std::vector<Net> nets_;
  std::vector<std::string> pi_names_;
  std::vector<NetId> pi_nets_;
  std::vector<std::string> po_names_;
  std::vector<NetId> po_nets_;
  std::vector<int> clock_pis_;
  std::unordered_map<std::string, CellId> cell_index_;
  std::unordered_map<std::string, NetId> net_index_;
};

}  // namespace tpi
