// Gate-level netlist: cell instances from a CellLibrary connected by nets.
//
// The netlist is index-based (CellId / NetId are dense integers) so the
// analysis passes (simulation, testability, ATPG, STA) can use flat arrays.
// Editing operations cover exactly what the paper's flow needs: inserting
// test points into nets (§3.1), replacing DFFs with scan flip-flops,
// stitching/reordering scan chains, and adding buffer trees.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "library/library.hpp"

namespace tpi {

using CellId = std::int32_t;
using NetId = std::int32_t;
inline constexpr CellId kNoCell = -1;
inline constexpr NetId kNoNet = -1;

/// How sequential cells are interpreted by derived views. Two views exist
/// because the TSFF test point (Fig. 1) is mode-dependent:
///  * kApplication — functional mode (TE=TR=0): the TSFF is transparent, a
///    combinational element with a D→Q arc. Used by timing analysis and
///    functional simulation.
///  * kCapture — scan capture mode (TE=0, TR=1): the TSFF behaves like any
///    scan flip-flop (its D is observed, its Q is controlled), i.e. it is a
///    sequential boundary. Used by ATPG and testability analysis.
enum class SeqView {
  kApplication,  ///< TSFF transparent (combinational)
  kCapture,      ///< TSFF is a scan-cell boundary
};

/// A (cell, pin-index) pair; pin indexes into CellSpec::pins.
struct PinRef {
  CellId cell = kNoCell;
  int pin = -1;

  bool valid() const { return cell != kNoCell; }
  friend bool operator==(const PinRef&, const PinRef&) = default;
};

struct CellInst {
  std::string name;
  const CellSpec* spec = nullptr;
  std::vector<NetId> conn;  ///< one entry per spec pin; kNoNet = unconnected

  NetId output_net() const {
    return spec->output_pin >= 0 ? conn[static_cast<std::size_t>(spec->output_pin)] : kNoNet;
  }
};

struct Net {
  std::string name;
  PinRef driver;            ///< driving cell output pin (invalid if PI-driven)
  int pi_index = -1;        ///< >=0 when driven by that primary input
  std::vector<PinRef> sinks;  ///< cell input pins loading the net
  std::vector<int> po_sinks;  ///< primary outputs reading the net

  bool driven_by_pi() const { return pi_index >= 0; }
  std::size_t fanout() const { return sinks.size() + po_sinks.size(); }
};

class Netlist {
 public:
  explicit Netlist(const CellLibrary* lib, std::string name = "top");

  const CellLibrary& library() const { return *lib_; }
  const std::string& name() const { return name_; }
  void set_name(std::string n) { name_ = std::move(n); }

  // ---- construction ----
  NetId add_net(std::string net_name);
  CellId add_cell(const CellSpec* spec, std::string cell_name);
  /// Connect a cell pin to a net (pin must currently be unconnected).
  void connect(CellId cell, int pin, NetId net);
  /// Detach a cell pin from whatever net it is on.
  void disconnect(CellId cell, int pin);

  int add_primary_input(std::string pi_name);   ///< returns PI index
  int add_primary_output(std::string po_name, NetId net);
  NetId pi_net(int pi_index) const { return pi_nets_[static_cast<std::size_t>(pi_index)]; }

  /// Declare a primary input as a clock root (establishes a clock domain).
  void mark_clock(int pi_index);
  const std::vector<int>& clock_pis() const { return clock_pis_; }
  bool is_clock_net(NetId net) const;

  // ---- editing (used by TPI / scan / CTS) ----
  /// Replace a cell's spec with a pin-name-compatible one (e.g. DFF_X1 ->
  /// SDFF_X1): connections are carried over by pin name; new pins start
  /// unconnected.
  void replace_spec(CellId cell, const CellSpec* new_spec);

  /// Insert a single-input cell (buffer-like: TSFF via D, BUF via A) into
  /// `net`: the new cell's `in_pin` takes the old net, a fresh net takes the
  /// new cell's output, and the chosen sinks move onto the fresh net.
  /// If `sink_subset` is empty, ALL existing sinks (and POs) move.
  NetId insert_cell_in_net(NetId net, CellId new_cell, int in_pin,
                           const std::vector<PinRef>& sink_subset = {});

  // ---- access ----
  std::size_t num_cells() const { return cells_.size(); }
  std::size_t num_nets() const { return nets_.size(); }
  std::size_t num_pis() const { return pi_names_.size(); }
  std::size_t num_pos() const { return po_names_.size(); }

  CellInst& cell(CellId id) { return cells_[static_cast<std::size_t>(id)]; }
  const CellInst& cell(CellId id) const { return cells_[static_cast<std::size_t>(id)]; }
  Net& net(NetId id) { return nets_[static_cast<std::size_t>(id)]; }
  const Net& net(NetId id) const { return nets_[static_cast<std::size_t>(id)]; }

  const std::string& pi_name(int i) const { return pi_names_[static_cast<std::size_t>(i)]; }
  const std::string& po_name(int i) const { return po_names_[static_cast<std::size_t>(i)]; }
  NetId po_net(int i) const { return po_nets_[static_cast<std::size_t>(i)]; }

  CellId find_cell(std::string_view cell_name) const;
  NetId find_net(std::string_view net_name) const;

  /// All sequential cells (DFF/SDFF/TSFF), ascending id.
  std::vector<CellId> flip_flops() const;
  /// Sequential cells whose spec is TSFF.
  std::vector<CellId> test_points() const;

  // ---- statistics ----
  struct Stats {
    std::size_t cells = 0;
    std::size_t combinational = 0;
    std::size_t flip_flops = 0;
    std::size_t test_points = 0;
    std::size_t nets = 0;
    std::size_t pis = 0;
    std::size_t pos = 0;
    double cell_area_um2 = 0.0;
  };
  Stats stats() const;

  /// Check structural invariants (every pin consistent with its net, every
  /// net driven at most once, pin counts match specs). Returns an empty
  /// string when valid, else a description of the first violation.
  std::string validate() const;

  // ---- edit journal (consumed by DesignDB's cached derived views) ----
  //
  // Every public mutator bumps `version()` exactly once, even the composite
  // ones (replace_spec / insert_cell_in_net / add_primary_input call other
  // mutators internally; a reentrancy-depth guard folds the nested bumps).
  // Alongside the version the mutators classify what the edit can affect:
  //  * structure_version(view) — last version at which the combinational
  //    graph of `view` changed (topological order / levels). Adding cells
  //    that stay outside the graph (fillers, clock buffers, boundary FFs),
  //    rewiring clock or scan pins, and adding PIs/POs do NOT advance it.
  //  * comb_version(view) — last version at which a compiled CombModel of
  //    `view` would differ (superset of structure changes: also PI/PO
  //    additions, boundary-FF D/Q rewires, tie outputs, clock edits).
  // A cached view built at version B is still exact at version V>B when the
  // relevant dirty version is <= B; only per-cell/per-net array *padding*
  // is needed (cells and nets are never removed).

  /// Monotonically increasing edit version; 0 = freshly constructed.
  std::uint64_t version() const { return version_; }
  /// Last version at which the combinational graph of `view` changed.
  std::uint64_t structure_version(SeqView view) const {
    return structure_version_[static_cast<std::size_t>(view)];
  }
  /// Last version at which a compiled comb model of `view` changed
  /// (always >= structure_version(view)).
  std::uint64_t comb_version(SeqView view) const {
    return comb_version_[static_cast<std::size_t>(view)];
  }
  /// Number of TSFF cells currently in the netlist (cheap; maintained by
  /// the mutators). With zero TSFFs the two SeqViews are interchangeable.
  int num_tsff_cells() const { return num_tsffs_; }

  /// Nets touched by edits with version > `since`, deduplicated ascending.
  /// Returns false (out untouched) when the bounded journal no longer
  /// covers `since`; callers must then assume anything changed.
  bool nets_changed_since(std::uint64_t since, std::vector<NetId>& out) const;

 private:
  /// Dirty-classification bits accumulated while a public mutator runs.
  enum : unsigned {
    kDirtyTopoApp = 1u << 0,
    kDirtyTopoCap = 1u << 1,
    kDirtyCombApp = 1u << 2,
    kDirtyCombCap = 1u << 3,
    kDirtyAll = 0xFu,
  };

  /// RAII reentrancy guard: the outermost scope commits exactly one version
  /// bump plus the accumulated dirty bits and touched nets.
  class EditScope {
   public:
    explicit EditScope(Netlist& nl) : nl_(nl) { ++nl_.edit_depth_; }
    ~EditScope() {
      if (--nl_.edit_depth_ == 0) nl_.commit_edit();
    }
    EditScope(const EditScope&) = delete;
    EditScope& operator=(const EditScope&) = delete;

   private:
    Netlist& nl_;
  };
  /// Composite mutators (replace_spec, insert_cell_in_net) classify the
  /// whole edit themselves and suppress the per-connect classification of
  /// the primitive mutators they call.
  class ClassifySuppress {
   public:
    explicit ClassifySuppress(Netlist& nl) : nl_(nl) { ++nl_.classify_suppress_; }
    ~ClassifySuppress() { --nl_.classify_suppress_; }

   private:
    Netlist& nl_;
  };

  void mark_dirty(unsigned bits) {
    if (classify_suppress_ == 0) pending_dirty_ |= bits;
  }
  void force_dirty(unsigned bits) { pending_dirty_ |= bits; }
  void touch_net(NetId net) { pending_nets_.push_back(net); }
  void commit_edit();
  unsigned pin_edit_dirty_bits(const CellSpec& spec, int pin) const;

  const CellLibrary* lib_;
  std::string name_;
  std::vector<CellInst> cells_;
  std::vector<Net> nets_;
  std::vector<std::string> pi_names_;
  std::vector<NetId> pi_nets_;
  std::vector<std::string> po_names_;
  std::vector<NetId> po_nets_;
  std::vector<int> clock_pis_;
  std::unordered_map<std::string, CellId> cell_index_;
  std::unordered_map<std::string, NetId> net_index_;

  // ---- edit journal state ----
  std::uint64_t version_ = 0;
  std::array<std::uint64_t, 2> structure_version_{0, 0};
  std::array<std::uint64_t, 2> comb_version_{0, 0};
  int num_tsffs_ = 0;
  int edit_depth_ = 0;
  int classify_suppress_ = 0;
  unsigned pending_dirty_ = 0;
  std::vector<NetId> pending_nets_;
  struct NetEdit {
    std::uint64_t version;
    NetId net;
  };
  /// Bounded ring of (version, net) records; oldest half is dropped when
  /// the cap is hit and `journal_floor_` remembers the highest version no
  /// longer fully covered.
  std::vector<NetEdit> journal_;
  std::uint64_t journal_floor_ = 0;
};

}  // namespace tpi
