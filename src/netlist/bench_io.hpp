// Reader/writer for the ISCAS'89 ".bench" netlist format.
//
// The reader accepts the classic format (INPUT/OUTPUT declarations and
// AND/OR/NAND/NOR/XOR/XNOR/NOT/BUFF/DFF assignments) so genuine ISCAS
// benchmarks such as s38417 can be dropped into the flow. Wide gates are
// decomposed into trees of library cells. DFFs get a synthesised clock
// input "CLK". The writer emits the same dialect, extended with
// SDFF(d,ti,te) and TSFF(d,ti,te,tr) so DfT-modified netlists round-trip.
#pragma once

#include <iosfwd>
#include <memory>
#include <string>

#include "netlist/netlist.hpp"

namespace tpi {

struct BenchReadResult {
  std::unique_ptr<Netlist> netlist;
  std::string error;  ///< empty on success

  bool ok() const { return error.empty(); }
};

BenchReadResult read_bench(std::istream& in, const CellLibrary& lib,
                           std::string design_name = "bench");
BenchReadResult read_bench_string(const std::string& text, const CellLibrary& lib,
                                  std::string design_name = "bench");
BenchReadResult read_bench_file(const std::string& path, const CellLibrary& lib);

void write_bench(const Netlist& nl, std::ostream& out);
std::string write_bench_string(const Netlist& nl);

}  // namespace tpi
