// Topological ordering of the combinational portion of a netlist.
//
// Two sequential views exist because the TSFF (Fig. 1) is mode-dependent:
//  * kApplication — functional mode (TE=TR=0): the TSFF is transparent, a
//    combinational element with a D→Q arc. Used by timing analysis and
//    functional simulation.
//  * kCapture — scan capture mode (TE=0, TR=1): the TSFF behaves like any
//    scan flip-flop (its D is observed, its Q is controlled), i.e. it is a
//    sequential boundary. Used by ATPG and testability analysis.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace tpi {

// SeqView itself is defined in netlist.hpp (the edit journal classifies
// mutations per view); this header owns the view semantics helpers.

/// Whether `cell` acts as a sequential boundary in the given view.
bool is_boundary(const Netlist& nl, CellId cell, SeqView view);

/// Whether a cell of `spec` computes logic in the combinational graph of
/// `view`. Boundaries, clock buffers, fillers and ties stay out (ties have
/// no inputs and are handled as constant sources by consumers). Shared by
/// levelize() and the Netlist edit journal's dirty classification.
bool in_comb_graph(const CellSpec& spec, SeqView view);

/// Whether `pin` feeds the cell's combinational function: an input that is
/// neither a clock nor a scan pin (TI/TE/TR); for a TSFF only D qualifies.
bool is_logic_input_pin(const CellSpec& spec, int pin);

struct TopoOrder {
  /// Combinational cells (including transparent TSFFs in kApplication view)
  /// in evaluation order. Excludes flip-flop boundaries, clock buffers and
  /// fillers.
  std::vector<CellId> order;
  /// Level (longest distance from a source) per cell; −1 for cells outside
  /// the combinational graph.
  std::vector<int> level;
  bool acyclic = true;
};

TopoOrder levelize(const Netlist& nl, SeqView view);

}  // namespace tpi
