#include "netlist/levelize.hpp"

#include <algorithm>

namespace tpi {

bool is_boundary(const Netlist& nl, CellId cell_id, SeqView view) {
  const CellSpec* spec = nl.cell(cell_id).spec;
  if (!spec->sequential) return false;
  if (spec->func == CellFunc::kTsff) return view == SeqView::kCapture;
  return true;
}

bool in_comb_graph(const CellSpec& spec, SeqView view) {
  switch (spec.func) {
    case CellFunc::kFiller:
    case CellFunc::kClkBuf:
    case CellFunc::kTie0:
    case CellFunc::kTie1:
      return false;
    case CellFunc::kTsff:
      return view == SeqView::kApplication;  // transparent = combinational
    default:
      break;
  }
  return !spec.sequential;
}

bool is_logic_input_pin(const CellSpec& spec, int pin) {
  if (spec.func == CellFunc::kTsff) return pin == spec.d_pin;
  const PinSpec& ps = spec.pins[static_cast<std::size_t>(pin)];
  if (ps.dir != PinDir::kInput || ps.is_clock) return false;
  // Scan pins of regular flip-flops are not part of the logic function.
  return pin != spec.ti_pin && pin != spec.te_pin && pin != spec.tr_pin;
}

namespace {

bool in_graph(const Netlist& nl, CellId cell_id, SeqView view) {
  return in_comb_graph(*nl.cell(cell_id).spec, view);
}

// Input pins whose value feeds the cell's combinational function in this
// view. For a transparent TSFF only D matters (TI/TE/TR are test-mode).
void logic_input_pins(const Netlist& nl, CellId cell_id, std::vector<int>& pins) {
  pins.clear();
  const CellSpec* spec = nl.cell(cell_id).spec;
  for (std::size_t p = 0; p < spec->pins.size(); ++p) {
    if (is_logic_input_pin(*spec, static_cast<int>(p))) pins.push_back(static_cast<int>(p));
  }
}

}  // namespace

TopoOrder levelize(const Netlist& nl, SeqView view) {
  TopoOrder out;
  const std::size_t n = nl.num_cells();
  out.level.assign(n, -1);
  std::vector<int> indegree(n, 0);
  std::vector<char> active(n, 0);
  std::vector<int> pins;

  for (std::size_t c = 0; c < n; ++c) {
    const CellId id = static_cast<CellId>(c);
    if (!in_graph(nl, id, view)) continue;
    active[c] = 1;
    logic_input_pins(nl, id, pins);
    for (int p : pins) {
      const NetId net = nl.cell(id).conn[static_cast<std::size_t>(p)];
      if (net == kNoNet) continue;
      const PinRef drv = nl.net(net).driver;
      if (drv.valid() && in_graph(nl, drv.cell, view)) ++indegree[c];
    }
  }

  std::vector<CellId> queue;
  for (std::size_t c = 0; c < n; ++c) {
    if (active[c] && indegree[c] == 0) {
      queue.push_back(static_cast<CellId>(c));
      out.level[c] = 0;
    }
  }

  out.order.reserve(n);
  for (std::size_t head = 0; head < queue.size(); ++head) {
    const CellId c = queue[head];
    out.order.push_back(c);
    const NetId onet = nl.cell(c).output_net();
    if (onet == kNoNet) continue;
    for (const PinRef& sink : nl.net(onet).sinks) {
      const std::size_t sc = static_cast<std::size_t>(sink.cell);
      if (!active[sc]) continue;
      // Only count edges into logic pins (a clock pin load is not a logic edge).
      logic_input_pins(nl, sink.cell, pins);
      if (std::find(pins.begin(), pins.end(), sink.pin) == pins.end()) continue;
      out.level[sc] = std::max(out.level[sc], out.level[static_cast<std::size_t>(c)] + 1);
      if (--indegree[sc] == 0) queue.push_back(sink.cell);
    }
  }

  std::size_t active_count = 0;
  for (std::size_t c = 0; c < n; ++c) active_count += active[c];
  out.acyclic = (out.order.size() == active_count);
  return out;
}

}  // namespace tpi
