#include "netlist/design_db.hpp"

#include "util/metrics.hpp"

namespace tpi {

void DesignDB::count_hit() {
  ++counters_.view_hits;
  metrics().add("designdb.view_hits");
}

void DesignDB::count_refresh() {
  ++counters_.view_refreshes;
  metrics().add("designdb.view_refreshes");
}

void DesignDB::count_rebuild(std::uint64_t Counters::* kind) {
  ++counters_.rebuilds;
  ++(counters_.*kind);
  metrics().add("designdb.rebuilds");
  if (kind == &Counters::topo_rebuilds) metrics().add("designdb.rebuilds.topo");
  if (kind == &Counters::comb_rebuilds) metrics().add("designdb.rebuilds.comb");
  if (kind == &Counters::testability_rebuilds) {
    metrics().add("designdb.rebuilds.testability");
  }
}

const TopoOrder& DesignDB::topo(SeqView view) {
  std::lock_guard<std::mutex> lock(mu_);
  return topo_locked(view);
}

const TopoOrder& DesignDB::topo_locked(SeqView view) {
  // With no TSFFs the views compute the same order: share the capture slot
  // so ATPG's order can serve STA.
  const bool aliased = topo_slots_aliased();
  Slot<TopoOrder>& slot =
      topo_[aliased ? static_cast<std::size_t>(SeqView::kCapture)
                    : static_cast<std::size_t>(view)];
  const std::uint64_t v = nl_->version();
  if (slot.value) {
    if (slot.built == v) {
      count_hit();
      return *slot.value;
    }
    // When the slot serves both views its content must be exact for both.
    const std::uint64_t dirty =
        aliased ? std::max(nl_->structure_version(SeqView::kApplication),
                           nl_->structure_version(SeqView::kCapture))
                : nl_->structure_version(view);
    if (dirty <= slot.built) {
      // Everything added since stays outside the graph: a rebuild would
      // reproduce the same order with the level vector padded by -1.
      slot.value->level.resize(nl_->num_cells(), -1);
      slot.built = v;
      count_refresh();
      return *slot.value;
    }
  }
  slot.value = std::make_unique<TopoOrder>(levelize(*nl_, view));
  slot.built = v;
  count_rebuild(&Counters::topo_rebuilds);
  return *slot.value;
}

const CombModel& DesignDB::comb_model(SeqView view) {
  std::lock_guard<std::mutex> lock(mu_);
  return comb_locked(view);
}

const CombModel& DesignDB::comb_locked(SeqView view) {
  // Never aliased across views: CombModel::view() is observable.
  Slot<CombModel>& slot = comb_[static_cast<std::size_t>(view)];
  const std::uint64_t v = nl_->version();
  if (slot.value) {
    if (slot.built == v) {
      count_hit();
      return *slot.value;
    }
    // comb_version >= structure_version, so this also proves the node
    // array is unchanged.
    if (nl_->comb_version(view) <= slot.built) {
      slot.value->pad_to_netlist();
      slot.built = v;
      count_refresh();
      return *slot.value;
    }
  }
  const TopoOrder& topo = topo_locked(view);
  slot.value = std::make_unique<CombModel>(*nl_, view, topo);
  slot.built = v;
  count_rebuild(&Counters::comb_rebuilds);
  return *slot.value;
}

const TestabilityResult& DesignDB::testability(SeqView view) {
  std::lock_guard<std::mutex> lock(mu_);
  // Resolve the model first: a comb rebuild forces a testability rebuild.
  const CombModel& model = comb_locked(view);
  Slot<TestabilityResult>& slot = testab_[static_cast<std::size_t>(view)];
  const std::uint64_t v = nl_->version();
  if (slot.value) {
    if (slot.built == v) {
      count_hit();
      return *slot.value;
    }
    if (nl_->comb_version(view) <= slot.built) {
      // Model content unchanged; nets added since keep the defaults
      // analyze_testability assigns to untouched nets.
      const std::size_t n = model.num_nets();
      slot.value->cc0.resize(n, kScoapInf);
      slot.value->cc1.resize(n, kScoapInf);
      slot.value->co.resize(n, kScoapInf);
      slot.value->p1.resize(n, 0.5f);
      slot.value->obs.resize(n, 0.0f);
      slot.value->ffr_root.resize(n, kNoNet);
      slot.value->ffr_size.resize(n, 0);
      slot.built = v;
      count_refresh();
      return *slot.value;
    }
  }
  slot.value = std::make_unique<TestabilityResult>(analyze_testability(model));
  slot.built = v;
  count_rebuild(&Counters::testability_rebuilds);
  return *slot.value;
}

DesignDB::Counters DesignDB::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void DesignDB::adopt_views_from(const DesignDB& warm) {
  std::scoped_lock lock(mu_, warm.mu_);
  for (std::size_t i = 0; i < 2; ++i) {
    if (warm.topo_[i].value) {
      topo_[i].value = std::make_unique<TopoOrder>(*warm.topo_[i].value);
      topo_[i].built = warm.topo_[i].built;
    }
    if (warm.comb_[i].value) {
      // Rebind to this DB's netlist: the adopted model must read live
      // num_nets() from the copy it now serves, not the cache's golden.
      comb_[i].value = std::make_unique<CombModel>(*warm.comb_[i].value, *nl_);
      comb_[i].built = warm.comb_[i].built;
    }
    if (warm.testab_[i].value) {
      testab_[i].value = std::make_unique<TestabilityResult>(*warm.testab_[i].value);
      testab_[i].built = warm.testab_[i].built;
    }
  }
}

}  // namespace tpi
