// DesignDB — versioned design database with cached derived views.
//
// The paper's flow (Fig. 2) re-analyzes the same circuit after every edit
// step: each TPI round recomputes testability (§3.1 step 1), ATPG compiles
// the capture model, STA levelizes the application view. Instead of every
// consumer rebuilding its own derived structure, a DesignDB wraps the
// Netlist and serves lazily built, version-checked views:
//
//   topo(view)        — TopoOrder per SeqView
//   comb_model(view)  — CombModel per SeqView (includes the
//                       fault-reachability side table, reaches_observe)
//   testability(view) — SCOAP/COP TestabilityResult over comb_model(view)
//
// Freshness is decided against the Netlist edit journal:
//   * hit      — netlist version unchanged since the view was built;
//   * refresh  — edits happened, but the per-view dirty version proves the
//     view's content is still exact (e.g. fillers/clock buffers added,
//     scan pins rewired, DFF->SDFF swaps); only per-cell/per-net arrays
//     are padded to the new sizes — bit-identical to a rebuild;
//   * rebuild  — the view's semantics actually changed.
// A stale view is NEVER served: CombModel::num_nets() reads the live
// netlist, so serving stale per-net arrays would be out-of-bounds.
//
// When the netlist contains no TSFF cells the two SeqViews are the same
// function of the netlist (is_boundary only differs on TSFFs), so their
// TopoOrders share one slot — this is what lets post-ECO STA reuse the
// capture-view order ATPG built, despite CTS/filler edits in between.
//
// Accesses record deterministic counters into the active MetricsRegistry
// (designdb.view_hits / designdb.view_refreshes / designdb.rebuilds plus
// per-kind rebuild counts). They carry no "rt." prefix: identical at any
// TPI_BENCH_JOBS / TPI_ATPG_JOBS, so they are part of the sweep-JSON
// determinism contract.
//
// Thread safety: all view accessors serialise on an internal mutex, so
// concurrent read-only access from pool workers is safe. Returned
// references stay valid until the next Netlist edit; editing while another
// thread holds or requests a view is the caller's race, not the DB's.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"
#include "sim/comb_model.hpp"
#include "testability/testability.hpp"

namespace tpi {

class DesignDB {
 public:
  /// Non-owning: wrap a caller-held netlist (edits must go through
  /// netlist() or the same underlying object — the version check catches
  /// either way).
  explicit DesignDB(Netlist& nl) : nl_(&nl) {}
  /// Owning: the DB holds the netlist (e.g. straight from the generator).
  explicit DesignDB(std::unique_ptr<Netlist> nl)
      : owned_nl_(std::move(nl)), nl_(owned_nl_.get()) {}

  DesignDB(const DesignDB&) = delete;
  DesignDB& operator=(const DesignDB&) = delete;

  Netlist& netlist() { return *nl_; }
  const Netlist& netlist() const { return *nl_; }
  std::uint64_t version() const { return nl_->version(); }

  /// Cached topological order of `view`; valid until the next edit.
  const TopoOrder& topo(SeqView view);
  /// Cached compiled comb model of `view`; valid until the next edit.
  const CombModel& comb_model(SeqView view);
  /// Cached SCOAP/COP analysis over comb_model(view); valid until the next
  /// edit.
  const TestabilityResult& testability(SeqView view);

  /// Lifetime cache statistics (also mirrored into metrics()).
  struct Counters {
    std::uint64_t view_hits = 0;
    std::uint64_t view_refreshes = 0;
    std::uint64_t rebuilds = 0;  ///< sum of the per-kind rebuilds below
    std::uint64_t topo_rebuilds = 0;
    std::uint64_t comb_rebuilds = 0;
    std::uint64_t testability_rebuilds = 0;
  };
  Counters counters() const;

  /// Seed this DB's view slots from `warm`, a DB whose netlist this DB's
  /// netlist was copied from (Netlist copies preserve the edit journal, so
  /// the adopted built-versions stay meaningful against the copy). Views
  /// `warm` has built are deep-copied — CombModels rebound to this DB's
  /// netlist — and served as ordinary hits/refreshes afterwards; slots
  /// `warm` never built stay empty. Adoption itself records no counters.
  /// Used by the flow server's design cache to let repeat requests for the
  /// same profile skip topo/comb/testability rebuilds.
  void adopt_views_from(const DesignDB& warm);

 private:
  template <typename T>
  struct Slot {
    std::unique_ptr<T> value;
    std::uint64_t built = 0;  ///< netlist version at build/refresh time
  };

  // Unlocked implementations (mu_ held by the public accessors).
  const TopoOrder& topo_locked(SeqView view);
  const CombModel& comb_locked(SeqView view);
  bool topo_slots_aliased() const { return nl_->num_tsff_cells() == 0; }
  void count_hit();
  void count_refresh();
  void count_rebuild(std::uint64_t Counters::* kind);

  std::unique_ptr<Netlist> owned_nl_;
  Netlist* nl_;
  mutable std::mutex mu_;
  Slot<TopoOrder> topo_[2];
  Slot<CombModel> comb_[2];
  Slot<TestabilityResult> testab_[2];
  Counters counters_;
};

}  // namespace tpi
