#include "netlist/bench_io.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>

namespace tpi {
namespace {

std::string trim(std::string s) {
  const auto not_space = [](unsigned char ch) { return !std::isspace(ch); };
  s.erase(s.begin(), std::find_if(s.begin(), s.end(), not_space));
  s.erase(std::find_if(s.rbegin(), s.rend(), not_space).base(), s.end());
  return s;
}

std::string upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char ch) { return static_cast<char>(std::toupper(ch)); });
  return s;
}

struct Assignment {
  std::string lhs;
  std::string func;  // upper-case
  std::vector<std::string> args;
  int line = 0;
};

class BenchParser {
 public:
  BenchParser(const CellLibrary& lib, std::string design_name)
      : lib_(lib), nl_(std::make_unique<Netlist>(&lib, std::move(design_name))) {}

  BenchReadResult run(std::istream& in) {
    std::string line;
    int line_no = 0;
    while (std::getline(in, line)) {
      ++line_no;
      if (const auto hash = line.find('#'); hash != std::string::npos) line.resize(hash);
      line = trim(line);
      if (line.empty()) continue;
      if (!parse_line(line, line_no)) return fail();
    }
    if (!build()) return fail();
    BenchReadResult res;
    res.netlist = std::move(nl_);
    return res;
  }

 private:
  BenchReadResult fail() {
    BenchReadResult res;
    res.error = error_;
    return res;
  }

  bool parse_line(const std::string& line, int line_no) {
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      // INPUT(x) or OUTPUT(y)
      const auto open = line.find('(');
      const auto close = line.rfind(')');
      if (open == std::string::npos || close == std::string::npos || close < open) {
        return set_error(line_no, "malformed declaration: " + line);
      }
      const std::string kw = upper(trim(line.substr(0, open)));
      const std::string arg = trim(line.substr(open + 1, close - open - 1));
      if (kw == "INPUT") {
        inputs_.push_back(arg);
      } else if (kw == "OUTPUT") {
        outputs_.push_back(arg);
      } else {
        return set_error(line_no, "unknown declaration: " + kw);
      }
      return true;
    }
    Assignment a;
    a.lhs = trim(line.substr(0, eq));
    a.line = line_no;
    std::string rhs = trim(line.substr(eq + 1));
    const auto open = rhs.find('(');
    const auto close = rhs.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      return set_error(line_no, "malformed assignment: " + line);
    }
    a.func = upper(trim(rhs.substr(0, open)));
    std::string args = rhs.substr(open + 1, close - open - 1);
    std::stringstream ss(args);
    std::string tok;
    while (std::getline(ss, tok, ',')) {
      tok = trim(tok);
      if (!tok.empty()) a.args.push_back(tok);
    }
    assigns_.push_back(std::move(a));
    return true;
  }

  bool set_error(int line_no, const std::string& msg) {
    error_ = "line " + std::to_string(line_no) + ": " + msg;
    return false;
  }

  NetId net_for(const std::string& sig) {
    const NetId existing = nl_->find_net(sig);
    if (existing != kNoNet) return existing;
    return nl_->add_net(sig);
  }

  NetId clock_net() {
    if (clock_net_ == kNoNet) {
      // Reuse a declared CLK input (round-tripped netlists carry one).
      const NetId existing = nl_->find_net("CLK");
      if (existing != kNoNet && nl_->net(existing).driven_by_pi()) {
        nl_->mark_clock(nl_->net(existing).pi_index);
        clock_net_ = existing;
      } else {
        const int pi = nl_->add_primary_input("CLK");
        nl_->mark_clock(pi);
        clock_net_ = nl_->pi_net(pi);
      }
    }
    return clock_net_;
  }

  // Reduce `nets` to a single net using a balanced tree of 2-input gates.
  NetId tree_reduce(CellFunc two_in, const std::vector<NetId>& nets, const std::string& base) {
    const CellSpec* spec = lib_.gate(two_in, 2);
    std::vector<NetId> level = nets;
    int stage = 0;
    while (level.size() > 1) {
      std::vector<NetId> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        const std::string name =
            base + "_t" + std::to_string(stage) + "_" + std::to_string(i / 2);
        const CellId c = nl_->add_cell(spec, name);
        nl_->connect(c, spec->find_pin("A"), level[i]);
        nl_->connect(c, spec->find_pin("B"), level[i + 1]);
        const NetId out = nl_->add_net(name + "_y");
        nl_->connect(c, spec->output_pin, out);
        next.push_back(out);
      }
      if (level.size() % 2) next.push_back(level.back());
      level = std::move(next);
      ++stage;
    }
    return level.front();
  }

  bool emit_gate(const Assignment& a) {
    std::vector<NetId> ins;
    ins.reserve(a.args.size());
    for (const auto& arg : a.args) ins.push_back(net_for(arg));
    const NetId out = net_for(a.lhs);

    auto place = [&](const CellSpec* spec, const std::vector<NetId>& pins) {
      const CellId c = nl_->add_cell(spec, a.lhs + "_g");
      static const char* kNames[] = {"A", "B", "C", "D"};
      for (std::size_t i = 0; i < pins.size(); ++i) {
        nl_->connect(c, spec->find_pin(kNames[i]), pins[i]);
      }
      nl_->connect(c, spec->output_pin, out);
      return true;
    };

    const std::string& f = a.func;
    const int n = static_cast<int>(ins.size());
    if (f == "DFF" || f == "SDFF" || f == "TSFF") {
      const char* cell_name = f == "DFF" ? "DFF_X1" : (f == "SDFF" ? "SDFF_X1" : "TSFF_X1");
      const CellSpec* spec = lib_.by_name(cell_name);
      const CellId c = nl_->add_cell(spec, a.lhs + "_ff");
      static const char* kFfPins[] = {"D", "TI", "TE", "TR"};
      for (std::size_t i = 0; i < ins.size() && i < 4; ++i) {
        nl_->connect(c, spec->find_pin(kFfPins[i]), ins[i]);
      }
      nl_->connect(c, spec->clock_pin, clock_net());
      nl_->connect(c, spec->output_pin, out);
      return true;
    }
    if (f == "CONST0" || f == "CONST1") {
      const CellSpec* spec = lib_.by_name(f == "CONST0" ? "TIE0" : "TIE1");
      const CellId c = nl_->add_cell(spec, a.lhs + "_tie");
      nl_->connect(c, spec->output_pin, out);
      return true;
    }
    if (f == "NOT" && n == 1) return place(lib_.gate(CellFunc::kInv, 1), ins);
    if ((f == "BUFF" || f == "BUF") && n == 1) return place(lib_.gate(CellFunc::kBuf, 1), ins);
    if (f == "MUX" && n == 3) {
      const CellSpec* spec = lib_.gate(CellFunc::kMux2, 2);
      const CellId c = nl_->add_cell(spec, a.lhs + "_g");
      nl_->connect(c, spec->find_pin("A"), ins[0]);
      nl_->connect(c, spec->find_pin("B"), ins[1]);
      nl_->connect(c, spec->find_pin("S"), ins[2]);
      nl_->connect(c, spec->output_pin, out);
      return true;
    }

    CellFunc func;
    CellFunc reduce_func;  // 2-input function for wide-gate decomposition
    bool invert_tail = false;
    if (f == "AND") {
      func = CellFunc::kAnd;
      reduce_func = CellFunc::kAnd;
    } else if (f == "NAND") {
      func = CellFunc::kNand;
      reduce_func = CellFunc::kAnd;
      invert_tail = true;
    } else if (f == "OR") {
      func = CellFunc::kOr;
      reduce_func = CellFunc::kOr;
    } else if (f == "NOR") {
      func = CellFunc::kNor;
      reduce_func = CellFunc::kOr;
      invert_tail = true;
    } else if (f == "XOR") {
      func = CellFunc::kXor;
      reduce_func = CellFunc::kXor;
    } else if (f == "XNOR") {
      func = CellFunc::kXnor;
      reduce_func = CellFunc::kXor;
      invert_tail = true;
    } else {
      return set_error(a.line, "unknown function " + f);
    }
    if (n == 1) return place(lib_.gate(CellFunc::kBuf, 1), ins);  // degenerate

    if (const CellSpec* direct = lib_.gate(func, n)) return place(direct, ins);

    // Wide gate: balanced 2-input reduction; fold the final inversion into
    // the last gate when the function is negated.
    std::vector<NetId> work = ins;
    NetId last_a = work[work.size() - 2];
    NetId last_b = work[work.size() - 1];
    work.resize(work.size() - 2);
    if (!work.empty()) {
      work.push_back(last_a);
      work.push_back(last_b);
      const NetId reduced = tree_reduce(reduce_func, work, a.lhs);
      work.clear();
      if (invert_tail) {
        const CellSpec* inv = lib_.gate(CellFunc::kInv, 1);
        const CellId c = nl_->add_cell(inv, a.lhs + "_g");
        nl_->connect(c, inv->find_pin("A"), reduced);
        nl_->connect(c, inv->output_pin, out);
        return true;
      }
      const CellSpec* buf = lib_.gate(CellFunc::kBuf, 1);
      const CellId c = nl_->add_cell(buf, a.lhs + "_g");
      nl_->connect(c, buf->find_pin("A"), reduced);
      nl_->connect(c, buf->output_pin, out);
      return true;
    }
    return set_error(a.line, "gate with no inputs: " + a.lhs);
  }

  bool build() {
    for (const auto& name : inputs_) {
      const int pi = nl_->add_primary_input(name);
      (void)pi;
    }
    for (const auto& a : assigns_) {
      if (nl_->find_net(a.lhs) != kNoNet && nl_->net(nl_->find_net(a.lhs)).driven_by_pi()) {
        return set_error(a.line, "signal " + a.lhs + " is both INPUT and assigned");
      }
      if (!emit_gate(a)) return false;
    }
    for (const auto& name : outputs_) {
      const NetId n = nl_->find_net(name);
      if (n == kNoNet) {
        error_ = "OUTPUT " + name + " is never defined";
        return false;
      }
      nl_->add_primary_output(name, n);
    }
    return true;
  }

  const CellLibrary& lib_;
  std::unique_ptr<Netlist> nl_;
  std::vector<std::string> inputs_;
  std::vector<std::string> outputs_;
  std::vector<Assignment> assigns_;
  NetId clock_net_ = kNoNet;
  std::string error_;
};

const char* bench_func(const CellSpec& spec) {
  switch (spec.func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
      return "BUFF";
    case CellFunc::kInv: return "NOT";
    case CellFunc::kAnd: return "AND";
    case CellFunc::kNand: return "NAND";
    case CellFunc::kOr: return "OR";
    case CellFunc::kNor: return "NOR";
    case CellFunc::kXor: return "XOR";
    case CellFunc::kXnor: return "XNOR";
    case CellFunc::kMux2: return "MUX";
    case CellFunc::kDff: return "DFF";
    case CellFunc::kSdff: return "SDFF";
    case CellFunc::kTsff: return "TSFF";
    case CellFunc::kTie0: return "CONST0";
    case CellFunc::kTie1: return "CONST1";
    case CellFunc::kFiller: return nullptr;
  }
  return nullptr;
}

}  // namespace

BenchReadResult read_bench(std::istream& in, const CellLibrary& lib, std::string design_name) {
  BenchParser parser(lib, std::move(design_name));
  return parser.run(in);
}

BenchReadResult read_bench_string(const std::string& text, const CellLibrary& lib,
                                  std::string design_name) {
  std::istringstream in(text);
  return read_bench(in, lib, std::move(design_name));
}

BenchReadResult read_bench_file(const std::string& path, const CellLibrary& lib) {
  std::ifstream in(path);
  if (!in) {
    BenchReadResult res;
    res.error = "cannot open " + path;
    return res;
  }
  std::string name = path;
  if (const auto slash = name.find_last_of('/'); slash != std::string::npos) {
    name = name.substr(slash + 1);
  }
  if (const auto dot = name.find_last_of('.'); dot != std::string::npos) name.resize(dot);
  return read_bench(in, lib, name);
}

void write_bench(const Netlist& nl, std::ostream& out) {
  out << "# " << nl.name() << " (" << nl.library().name() << ")\n";
  for (std::size_t i = 0; i < nl.num_pis(); ++i) {
    out << "INPUT(" << nl.pi_name(static_cast<int>(i)) << ")\n";
  }
  // OUTPUT() references the *net* feeding the port: that is the name the
  // reader can resolve against assignments.
  for (std::size_t i = 0; i < nl.num_pos(); ++i) {
    out << "OUTPUT(" << nl.net(nl.po_net(static_cast<int>(i))).name << ")\n";
  }
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellInst& inst = nl.cell(static_cast<CellId>(c));
    const char* func = bench_func(*inst.spec);
    if (func == nullptr) continue;  // filler
    const NetId onet = inst.output_net();
    if (onet == kNoNet) continue;
    out << nl.net(onet).name << " = " << func << "(";
    bool first = true;
    for (std::size_t p = 0; p < inst.spec->pins.size(); ++p) {
      const PinSpec& ps = inst.spec->pins[p];
      if (ps.dir != PinDir::kInput || ps.is_clock) continue;
      const NetId in_net = inst.conn[p];
      if (in_net == kNoNet) continue;
      if (!first) out << ", ";
      out << nl.net(in_net).name;
      first = false;
    }
    out << ")\n";
  }
  // POs that alias a PI or a net without a writer-visible driver still
  // round-trip because OUTPUT() references the net name directly.
}

std::string write_bench_string(const Netlist& nl) {
  std::ostringstream os;
  write_bench(nl, os);
  return os.str();
}

}  // namespace tpi
