#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace tpi {

Netlist::Netlist(const CellLibrary* lib, std::string name)
    : lib_(lib), name_(std::move(name)) {
  assert(lib_ != nullptr);
}

NetId Netlist::add_net(std::string net_name) {
  const NetId id = static_cast<NetId>(nets_.size());
  net_index_.emplace(net_name, id);
  nets_.push_back(Net{std::move(net_name), {}, -1, {}, {}});
  return id;
}

CellId Netlist::add_cell(const CellSpec* spec, std::string cell_name) {
  assert(spec != nullptr);
  const CellId id = static_cast<CellId>(cells_.size());
  cell_index_.emplace(cell_name, id);
  CellInst inst;
  inst.name = std::move(cell_name);
  inst.spec = spec;
  inst.conn.assign(spec->pins.size(), kNoNet);
  cells_.push_back(std::move(inst));
  return id;
}

void Netlist::connect(CellId cell_id, int pin, NetId net_id) {
  CellInst& inst = cell(cell_id);
  assert(pin >= 0 && static_cast<std::size_t>(pin) < inst.conn.size());
  assert(inst.conn[static_cast<std::size_t>(pin)] == kNoNet);
  inst.conn[static_cast<std::size_t>(pin)] = net_id;
  Net& n = net(net_id);
  if (inst.spec->pins[static_cast<std::size_t>(pin)].dir == PinDir::kOutput) {
    assert(!n.driver.valid() && n.pi_index < 0);
    n.driver = PinRef{cell_id, pin};
  } else {
    n.sinks.push_back(PinRef{cell_id, pin});
  }
}

void Netlist::disconnect(CellId cell_id, int pin) {
  CellInst& inst = cell(cell_id);
  const NetId net_id = inst.conn[static_cast<std::size_t>(pin)];
  if (net_id == kNoNet) return;
  inst.conn[static_cast<std::size_t>(pin)] = kNoNet;
  Net& n = net(net_id);
  const PinRef ref{cell_id, pin};
  if (n.driver == ref) {
    n.driver = PinRef{};
  } else {
    n.sinks.erase(std::remove(n.sinks.begin(), n.sinks.end(), ref), n.sinks.end());
  }
}

int Netlist::add_primary_input(std::string pi_name) {
  const int idx = static_cast<int>(pi_names_.size());
  NetId n = add_net(pi_name);
  net(n).pi_index = idx;
  pi_names_.push_back(std::move(pi_name));
  pi_nets_.push_back(n);
  return idx;
}

int Netlist::add_primary_output(std::string po_name, NetId net_id) {
  const int idx = static_cast<int>(po_names_.size());
  po_names_.push_back(std::move(po_name));
  po_nets_.push_back(net_id);
  net(net_id).po_sinks.push_back(idx);
  return idx;
}

void Netlist::mark_clock(int pi_index) { clock_pis_.push_back(pi_index); }

bool Netlist::is_clock_net(NetId net_id) const {
  const Net& n = net(net_id);
  if (n.driven_by_pi()) {
    return std::find(clock_pis_.begin(), clock_pis_.end(), n.pi_index) != clock_pis_.end();
  }
  // Clock-tree buffer outputs are clock nets too.
  if (n.driver.valid()) {
    return cell(n.driver.cell).spec->func == CellFunc::kClkBuf;
  }
  return false;
}

void Netlist::replace_spec(CellId cell_id, const CellSpec* new_spec) {
  CellInst& inst = cell(cell_id);
  const CellSpec* old_spec = inst.spec;
  std::vector<NetId> old_conn = inst.conn;
  // Detach everything, swap the spec, reattach by pin name.
  for (std::size_t p = 0; p < old_conn.size(); ++p) {
    if (old_conn[p] != kNoNet) disconnect(cell_id, static_cast<int>(p));
  }
  inst.spec = new_spec;
  inst.conn.assign(new_spec->pins.size(), kNoNet);
  for (std::size_t p = 0; p < old_conn.size(); ++p) {
    if (old_conn[p] == kNoNet) continue;
    const int np = new_spec->find_pin(old_spec->pins[p].name);
    if (np >= 0) connect(cell_id, np, old_conn[p]);
  }
}

NetId Netlist::insert_cell_in_net(NetId net_id, CellId new_cell, int in_pin,
                                  const std::vector<PinRef>& sink_subset) {
  NetId fresh = add_net(net(net_id).name + "_tp" + std::to_string(new_cell));
  // Move sinks first (so the new cell's input doesn't get moved).
  std::vector<PinRef> to_move = sink_subset.empty() ? net(net_id).sinks : sink_subset;
  for (const PinRef& ref : to_move) {
    disconnect(ref.cell, ref.pin);
    connect(ref.cell, ref.pin, fresh);
  }
  if (sink_subset.empty()) {
    // Primary outputs move along when splitting the whole net.
    Net& old_net = net(net_id);
    for (int po : old_net.po_sinks) {
      po_nets_[static_cast<std::size_t>(po)] = fresh;
      net(fresh).po_sinks.push_back(po);
    }
    old_net.po_sinks.clear();
  }
  connect(new_cell, in_pin, net_id);
  const int out = cell(new_cell).spec->output_pin;
  assert(out >= 0);
  connect(new_cell, out, fresh);
  return fresh;
}

CellId Netlist::find_cell(std::string_view cell_name) const {
  const auto it = cell_index_.find(std::string(cell_name));
  return it == cell_index_.end() ? kNoCell : it->second;
}

NetId Netlist::find_net(std::string_view net_name) const {
  const auto it = net_index_.find(std::string(net_name));
  return it == net_index_.end() ? kNoNet : it->second;
}

std::vector<CellId> Netlist::flip_flops() const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].spec->sequential) out.push_back(static_cast<CellId>(i));
  }
  return out;
}

std::vector<CellId> Netlist::test_points() const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].spec->func == CellFunc::kTsff) out.push_back(static_cast<CellId>(i));
  }
  return out;
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.cells = cells_.size();
  s.nets = nets_.size();
  s.pis = pi_names_.size();
  s.pos = po_names_.size();
  for (const auto& c : cells_) {
    s.cell_area_um2 += c.spec->area_um2();
    if (c.spec->sequential) {
      ++s.flip_flops;
      if (c.spec->func == CellFunc::kTsff) ++s.test_points;
    } else if (c.spec->func != CellFunc::kFiller) {
      ++s.combinational;
    }
  }
  return s;
}

std::string Netlist::validate() const {
  std::ostringstream err;
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const CellInst& c = cells_[ci];
    if (c.conn.size() != c.spec->pins.size()) {
      err << "cell " << c.name << ": pin count mismatch";
      return err.str();
    }
    for (std::size_t p = 0; p < c.conn.size(); ++p) {
      const NetId nid = c.conn[p];
      if (nid == kNoNet) continue;
      const Net& n = net(nid);
      const PinRef ref{static_cast<CellId>(ci), static_cast<int>(p)};
      const bool is_out = c.spec->pins[p].dir == PinDir::kOutput;
      if (is_out) {
        if (!(n.driver == ref)) {
          err << "cell " << c.name << " pin " << c.spec->pins[p].name
              << ": net " << n.name << " driver mismatch";
          return err.str();
        }
      } else if (std::find(n.sinks.begin(), n.sinks.end(), ref) == n.sinks.end()) {
        err << "cell " << c.name << " pin " << c.spec->pins[p].name
            << ": missing from sinks of net " << n.name;
        return err.str();
      }
    }
  }
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& n = nets_[ni];
    if (n.driver.valid() && n.pi_index >= 0) {
      err << "net " << n.name << ": driven by both cell and PI";
      return err.str();
    }
    if (n.driver.valid()) {
      const CellInst& d = cell(n.driver.cell);
      if (d.conn[static_cast<std::size_t>(n.driver.pin)] != static_cast<NetId>(ni)) {
        err << "net " << n.name << ": stale driver reference";
        return err.str();
      }
    }
    for (const PinRef& s : n.sinks) {
      if (cell(s.cell).conn[static_cast<std::size_t>(s.pin)] != static_cast<NetId>(ni)) {
        err << "net " << n.name << ": stale sink reference";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace tpi
