#include "netlist/netlist.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "netlist/levelize.hpp"

namespace tpi {
namespace {

/// Journal capacity: enough to cover many TPI rounds of edits between two
/// nets_changed_since() queries, small enough (~100 KB) to keep the journal
/// an O(1) memory feature even across full circuit generation.
constexpr std::size_t kEditJournalCap = 8192;

}  // namespace

Netlist::Netlist(const CellLibrary* lib, std::string name)
    : lib_(lib), name_(std::move(name)) {
  assert(lib_ != nullptr);
}

void Netlist::commit_edit() {
  ++version_;
  // A structure (topo) change always implies a comb-model change: the
  // CombModel's node array is derived from the topological order.
  unsigned bits = pending_dirty_;
  if (bits & kDirtyTopoApp) bits |= kDirtyCombApp;
  if (bits & kDirtyTopoCap) bits |= kDirtyCombCap;
  if (bits & kDirtyTopoApp) structure_version_[0] = version_;
  if (bits & kDirtyTopoCap) structure_version_[1] = version_;
  if (bits & kDirtyCombApp) comb_version_[0] = version_;
  if (bits & kDirtyCombCap) comb_version_[1] = version_;
  pending_dirty_ = 0;

  for (const NetId n : pending_nets_) journal_.push_back(NetEdit{version_, n});
  pending_nets_.clear();
  if (journal_.size() > kEditJournalCap) {
    const std::size_t drop = journal_.size() / 2;
    journal_floor_ = journal_[drop - 1].version;
    journal_.erase(journal_.begin(), journal_.begin() + static_cast<std::ptrdiff_t>(drop));
  }
}

bool Netlist::nets_changed_since(std::uint64_t since, std::vector<NetId>& out) const {
  if (since < journal_floor_) return false;
  out.clear();
  for (const NetEdit& e : journal_) {
    if (e.version > since) out.push_back(e.net);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return true;
}

// Classify a connect/disconnect on `pin` of a cell with `spec`. Mirrors
// exactly what levelize()/CombModel read from the netlist:
//  * clock pins never carry logic edges, but clock routing conservatively
//    invalidates comb models (input_nets excludes clock PI nets);
//  * scan pins (TI/TE/TR) are invisible to both views;
//  * pins of cells inside the graph change the topological order;
//  * D/Q pins of boundary FFs are pseudo-PO/pseudo-PI nets of the comb
//    model but do not affect the order;
//  * tie outputs feed the comb model's constant lists;
//  * clock-buffer and filler pins are invisible (levelize only follows
//    edges whose driver is in the graph).
unsigned Netlist::pin_edit_dirty_bits(const CellSpec& spec, int pin) const {
  const PinSpec& ps = spec.pins[static_cast<std::size_t>(pin)];
  if (ps.is_clock) return kDirtyCombApp | kDirtyCombCap;
  if (pin == spec.ti_pin || pin == spec.te_pin || pin == spec.tr_pin) return 0;
  const bool is_out = ps.dir == PinDir::kOutput;
  unsigned bits = 0;
  for (const SeqView view : {SeqView::kApplication, SeqView::kCapture}) {
    const unsigned topo_bit =
        view == SeqView::kApplication ? kDirtyTopoApp : kDirtyTopoCap;
    const unsigned comb_bit =
        view == SeqView::kApplication ? kDirtyCombApp : kDirtyCombCap;
    if (in_comb_graph(spec, view)) {
      if (is_out || is_logic_input_pin(spec, pin)) bits |= topo_bit;
    } else if (spec.sequential) {
      if (is_out || pin == spec.d_pin) bits |= comb_bit;
    } else if (spec.func == CellFunc::kTie0 || spec.func == CellFunc::kTie1) {
      if (is_out) bits |= comb_bit;
    }
  }
  return bits;
}

NetId Netlist::add_net(std::string net_name) {
  EditScope edit(*this);
  const NetId id = static_cast<NetId>(nets_.size());
  net_index_.emplace(net_name, id);
  nets_.push_back(Net{std::move(net_name), {}, -1, {}, {}});
  // A fresh net is invisible to every view until something connects to it:
  // cached views only need padding, not a rebuild.
  return id;
}

CellId Netlist::add_cell(const CellSpec* spec, std::string cell_name) {
  assert(spec != nullptr);
  EditScope edit(*this);
  const CellId id = static_cast<CellId>(cells_.size());
  cell_index_.emplace(cell_name, id);
  CellInst inst;
  inst.name = std::move(cell_name);
  inst.spec = spec;
  inst.conn.assign(spec->pins.size(), kNoNet);
  cells_.push_back(std::move(inst));
  switch (spec->func) {
    case CellFunc::kFiller:
    case CellFunc::kClkBuf:
    case CellFunc::kTie0:
    case CellFunc::kTie1:
      // Outside both graphs (a tie only matters once its output connects).
      break;
    case CellFunc::kTsff:
      ++num_tsffs_;
      // Transparent (in-graph) in application view, boundary in capture.
      mark_dirty(kDirtyTopoApp | kDirtyCombCap);
      break;
    default:
      if (spec->sequential) {
        // Boundary in both views; CombModel::boundary_ffs() lists every
        // sequential cell, connected or not.
        mark_dirty(kDirtyCombApp | kDirtyCombCap);
      } else {
        // A combinational cell enters the order immediately (level 0 while
        // unconnected).
        mark_dirty(kDirtyTopoApp | kDirtyTopoCap);
      }
      break;
  }
  return id;
}

void Netlist::connect(CellId cell_id, int pin, NetId net_id) {
  EditScope edit(*this);
  CellInst& inst = cell(cell_id);
  assert(pin >= 0 && static_cast<std::size_t>(pin) < inst.conn.size());
  assert(inst.conn[static_cast<std::size_t>(pin)] == kNoNet);
  inst.conn[static_cast<std::size_t>(pin)] = net_id;
  Net& n = net(net_id);
  if (inst.spec->pins[static_cast<std::size_t>(pin)].dir == PinDir::kOutput) {
    assert(!n.driver.valid() && n.pi_index < 0);
    n.driver = PinRef{cell_id, pin};
  } else {
    n.sinks.push_back(PinRef{cell_id, pin});
  }
  mark_dirty(pin_edit_dirty_bits(*inst.spec, pin));
  touch_net(net_id);
}

void Netlist::disconnect(CellId cell_id, int pin) {
  CellInst& inst = cell(cell_id);
  const NetId net_id = inst.conn[static_cast<std::size_t>(pin)];
  if (net_id == kNoNet) return;  // no-op: no version bump
  EditScope edit(*this);
  inst.conn[static_cast<std::size_t>(pin)] = kNoNet;
  Net& n = net(net_id);
  const PinRef ref{cell_id, pin};
  if (n.driver == ref) {
    n.driver = PinRef{};
  } else {
    n.sinks.erase(std::remove(n.sinks.begin(), n.sinks.end(), ref), n.sinks.end());
  }
  mark_dirty(pin_edit_dirty_bits(*inst.spec, pin));
  touch_net(net_id);
}

int Netlist::add_primary_input(std::string pi_name) {
  EditScope edit(*this);
  const int idx = static_cast<int>(pi_names_.size());
  NetId n = add_net(pi_name);
  net(n).pi_index = idx;
  pi_names_.push_back(std::move(pi_name));
  pi_nets_.push_back(n);
  // New controllable input: CombModel::input_nets() changes; the
  // topological order does not (no cell edges involved).
  mark_dirty(kDirtyCombApp | kDirtyCombCap);
  touch_net(n);
  return idx;
}

int Netlist::add_primary_output(std::string po_name, NetId net_id) {
  EditScope edit(*this);
  const int idx = static_cast<int>(po_names_.size());
  po_names_.push_back(std::move(po_name));
  po_nets_.push_back(net_id);
  net(net_id).po_sinks.push_back(idx);
  // New observe point: observe_nets()/reaches_observe change, order doesn't.
  mark_dirty(kDirtyCombApp | kDirtyCombCap);
  touch_net(net_id);
  return idx;
}

void Netlist::mark_clock(int pi_index) {
  EditScope edit(*this);
  clock_pis_.push_back(pi_index);
  // Clock PI nets are excluded from input_nets(); the order ignores clocks.
  mark_dirty(kDirtyCombApp | kDirtyCombCap);
}

bool Netlist::is_clock_net(NetId net_id) const {
  const Net& n = net(net_id);
  if (n.driven_by_pi()) {
    return std::find(clock_pis_.begin(), clock_pis_.end(), n.pi_index) != clock_pis_.end();
  }
  // Clock-tree buffer outputs are clock nets too.
  if (n.driver.valid()) {
    return cell(n.driver.cell).spec->func == CellFunc::kClkBuf;
  }
  return false;
}

void Netlist::replace_spec(CellId cell_id, const CellSpec* new_spec) {
  EditScope edit(*this);
  CellInst& inst = cell(cell_id);
  const CellSpec* old_spec = inst.spec;
  std::vector<NetId> old_conn = inst.conn;

  // Classify the swap as a whole (the internal disconnect/reconnect churn
  // would wrongly look like boundary-FF rewiring): a sequential-to-
  // sequential swap that carries every connection over by pin name (the
  // DFF -> SDFF scan replacement) is invisible to both views — same
  // boundary status, same D/Q/clock nets. Anything else conservatively
  // invalidates everything.
  bool carried_all = true;
  for (std::size_t p = 0; p < old_conn.size(); ++p) {
    if (old_conn[p] != kNoNet && new_spec->find_pin(old_spec->pins[p].name) < 0) {
      carried_all = false;
    }
  }
  const bool view_invariant = carried_all && old_spec->sequential &&
                              new_spec->sequential &&
                              old_spec->func != CellFunc::kTsff &&
                              new_spec->func != CellFunc::kTsff;
  if (!view_invariant) {
    force_dirty(kDirtyAll);
    for (const NetId n : old_conn) {
      if (n != kNoNet) touch_net(n);
    }
  }
  if (old_spec->func == CellFunc::kTsff) --num_tsffs_;
  if (new_spec->func == CellFunc::kTsff) ++num_tsffs_;

  ClassifySuppress suppress(*this);
  // Detach everything, swap the spec, reattach by pin name.
  for (std::size_t p = 0; p < old_conn.size(); ++p) {
    if (old_conn[p] != kNoNet) disconnect(cell_id, static_cast<int>(p));
  }
  inst.spec = new_spec;
  inst.conn.assign(new_spec->pins.size(), kNoNet);
  for (std::size_t p = 0; p < old_conn.size(); ++p) {
    if (old_conn[p] == kNoNet) continue;
    const int np = new_spec->find_pin(old_spec->pins[p].name);
    if (np >= 0) connect(cell_id, np, old_conn[p]);
  }
}

NetId Netlist::insert_cell_in_net(NetId net_id, CellId new_cell, int in_pin,
                                  const std::vector<PinRef>& sink_subset) {
  EditScope edit(*this);
  // Splitting a net moves logic loads onto a fresh net behind a new cell:
  // both views change structurally.
  force_dirty(kDirtyAll);
  touch_net(net_id);
  ClassifySuppress suppress(*this);
  NetId fresh = add_net(net(net_id).name + "_tp" + std::to_string(new_cell));
  touch_net(fresh);
  // Move sinks first (so the new cell's input doesn't get moved).
  std::vector<PinRef> to_move = sink_subset.empty() ? net(net_id).sinks : sink_subset;
  for (const PinRef& ref : to_move) {
    disconnect(ref.cell, ref.pin);
    connect(ref.cell, ref.pin, fresh);
  }
  if (sink_subset.empty()) {
    // Primary outputs move along when splitting the whole net.
    Net& old_net = net(net_id);
    for (int po : old_net.po_sinks) {
      po_nets_[static_cast<std::size_t>(po)] = fresh;
      net(fresh).po_sinks.push_back(po);
    }
    old_net.po_sinks.clear();
  }
  connect(new_cell, in_pin, net_id);
  const int out = cell(new_cell).spec->output_pin;
  assert(out >= 0);
  connect(new_cell, out, fresh);
  return fresh;
}

CellId Netlist::find_cell(std::string_view cell_name) const {
  const auto it = cell_index_.find(std::string(cell_name));
  return it == cell_index_.end() ? kNoCell : it->second;
}

NetId Netlist::find_net(std::string_view net_name) const {
  const auto it = net_index_.find(std::string(net_name));
  return it == net_index_.end() ? kNoNet : it->second;
}

std::vector<CellId> Netlist::flip_flops() const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].spec->sequential) out.push_back(static_cast<CellId>(i));
  }
  return out;
}

std::vector<CellId> Netlist::test_points() const {
  std::vector<CellId> out;
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    if (cells_[i].spec->func == CellFunc::kTsff) out.push_back(static_cast<CellId>(i));
  }
  return out;
}

Netlist::Stats Netlist::stats() const {
  Stats s;
  s.cells = cells_.size();
  s.nets = nets_.size();
  s.pis = pi_names_.size();
  s.pos = po_names_.size();
  for (const auto& c : cells_) {
    s.cell_area_um2 += c.spec->area_um2();
    if (c.spec->sequential) {
      ++s.flip_flops;
      if (c.spec->func == CellFunc::kTsff) ++s.test_points;
    } else if (c.spec->func != CellFunc::kFiller) {
      ++s.combinational;
    }
  }
  return s;
}

std::string Netlist::validate() const {
  std::ostringstream err;
  for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
    const CellInst& c = cells_[ci];
    if (c.conn.size() != c.spec->pins.size()) {
      err << "cell " << c.name << ": pin count mismatch";
      return err.str();
    }
    for (std::size_t p = 0; p < c.conn.size(); ++p) {
      const NetId nid = c.conn[p];
      if (nid == kNoNet) continue;
      const Net& n = net(nid);
      const PinRef ref{static_cast<CellId>(ci), static_cast<int>(p)};
      const bool is_out = c.spec->pins[p].dir == PinDir::kOutput;
      if (is_out) {
        if (!(n.driver == ref)) {
          err << "cell " << c.name << " pin " << c.spec->pins[p].name
              << ": net " << n.name << " driver mismatch";
          return err.str();
        }
      } else if (std::find(n.sinks.begin(), n.sinks.end(), ref) == n.sinks.end()) {
        err << "cell " << c.name << " pin " << c.spec->pins[p].name
            << ": missing from sinks of net " << n.name;
        return err.str();
      }
    }
  }
  for (std::size_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& n = nets_[ni];
    if (n.driver.valid() && n.pi_index >= 0) {
      err << "net " << n.name << ": driven by both cell and PI";
      return err.str();
    }
    if (n.driver.valid()) {
      const CellInst& d = cell(n.driver.cell);
      if (d.conn[static_cast<std::size_t>(n.driver.pin)] != static_cast<NetId>(ni)) {
        err << "net " << n.name << ": stale driver reference";
        return err.str();
      }
    }
    for (const PinRef& s : n.sinks) {
      if (cell(s.cell).conn[static_cast<std::size_t>(s.pin)] != static_cast<NetId>(ni)) {
        err << "net " << n.name << ": stale sink reference";
        return err.str();
      }
    }
  }
  return {};
}

}  // namespace tpi
