// AVX2 kernel backend: the same word loops as the scalar TU, compiled with
// -mavx2 so the 4/8-word cases vectorise to 256-bit ops. Built only when
// the compiler accepts the flag; selected at runtime only when the CPU
// reports AVX2 (see simd.cpp).
#define TPI_SIMD_IMPL_NS simd_impl_avx2
#include "sim/kernels_impl.hpp"

namespace tpi {

const SimKernels& sim_kernels_avx2() { return simd_impl_avx2::kernels(); }

}  // namespace tpi
