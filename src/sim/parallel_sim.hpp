// Bit-parallel logic simulation over a CombModel.
//
// Each net carries `lane_words()` 64-bit words laid out net-major: bit k of
// word j is the net's value under pattern j*64+k. The classic 64-pattern
// parallel evaluation is the lane_words()==1 case; the SIMD super-batch
// path widens a net visit to up to kMaxLaneWords words (512 patterns) and
// lets the dispatched kernel backend (sim/simd.hpp) vectorise the copy.
// The lane width is chosen algorithmically by callers (never from CPU
// capability), so results are bit-identical across backends.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/comb_model.hpp"

namespace tpi {

using Word = std::uint64_t;
inline constexpr int kWordBits = 64;

/// Evaluate one combinational node given packed input words (reference
/// single-word path, kept for tests and PODEM's forward implication).
Word eval_node_word(const CombNode& node, const Word* in, Word sel);

class ParallelSim {
 public:
  explicit ParallelSim(const CombModel& model, int lane_words = 1);

  /// Words per net (1, 2, 4 or 8 = kMaxLaneWords).
  int lane_words() const { return nw_; }
  /// Switch the lane width; resets all net state (zeros + constants) when
  /// the width actually changes.
  void configure_lanes(int lane_words);

  /// Direct access to a net's first lane word (the only word when
  /// lane_words() == 1 — the legacy 64-pattern interface).
  Word value(NetId net) const { return value_[static_cast<std::size_t>(net) * nw_]; }
  void set_value(NetId net, Word w) { value_[static_cast<std::size_t>(net) * nw_] = w; }

  /// A net's lane words [0, lane_words()).
  const Word* words(NetId net) const { return value_.data() + static_cast<std::size_t>(net) * nw_; }
  Word* words(NetId net) { return value_.data() + static_cast<std::size_t>(net) * nw_; }

  /// Set all controllable inputs from a packed vector aligned with
  /// model.input_nets(): words[i*lane_words() + j] is input i, lane word j.
  void load_inputs(const std::vector<Word>& words);

  /// Adopt a full per-net state previously produced by another ParallelSim
  /// over the same model and lane width — parallel fault grading evaluates
  /// each batch once and copies the good values into the per-worker
  /// simulators.
  void assign_values(const std::vector<Word>& values) { value_ = values; }

  /// Evaluate every node in topological order (full sweep) through the
  /// active kernel backend.
  void run();

  /// Capture observable values aligned with model.observe_nets():
  /// out[i*lane_words() + j] is observe net i, lane word j.
  void read_observes(std::vector<Word>& out) const;

  const CombModel& model() const { return *model_; }
  const std::vector<Word>& values() const { return value_; }

 private:
  void reset_values();

  const CombModel* model_;
  std::vector<Word> value_;  ///< net-major: num_nets() * nw_ words
  int nw_ = 1;
};

}  // namespace tpi
