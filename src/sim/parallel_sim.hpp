// 64-way bit-parallel logic simulation over a CombModel.
//
// Each net carries a 64-bit word: bit k is the net's value under pattern k.
// This is the classic parallel-pattern evaluation used for fault grading;
// the ATPG's fault simulator layers event-driven faulty-value propagation
// on top of the good values computed here.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/comb_model.hpp"

namespace tpi {

using Word = std::uint64_t;
inline constexpr int kWordBits = 64;

/// Evaluate one combinational node given packed input words.
Word eval_node_word(const CombNode& node, const Word* in, Word sel);

class ParallelSim {
 public:
  explicit ParallelSim(const CombModel& model);

  /// Direct access to per-net words (indexed by NetId).
  Word value(NetId net) const { return value_[static_cast<std::size_t>(net)]; }
  void set_value(NetId net, Word w) { value_[static_cast<std::size_t>(net)] = w; }

  /// Set all controllable inputs from a packed vector aligned with
  /// model.input_nets().
  void load_inputs(const std::vector<Word>& words);

  /// Adopt a full per-net state previously produced by another ParallelSim
  /// over the same model — parallel fault grading evaluates each batch once
  /// and copies the good values into the per-worker simulators.
  void assign_values(const std::vector<Word>& values) { value_ = values; }

  /// Evaluate every node in topological order (full sweep).
  void run();

  /// Capture observable values aligned with model.observe_nets().
  void read_observes(std::vector<Word>& out) const;

  const CombModel& model() const { return *model_; }
  const std::vector<Word>& values() const { return value_; }

 private:
  const CombModel* model_;
  std::vector<Word> value_;
};

}  // namespace tpi
