// Backend-dispatched simulation kernels.
//
// The four hot loops of the simulation substrate — good-value sweep,
// event-driven per-fault grading, forced replay resimulation and the
// two-plane ternary sweep — are implemented once as NW-word uint64_t loop
// templates (kernels_impl.hpp, NW in {1,2,4,8}) and compiled per backend
// (kernels_scalar/avx2/avx512.cpp, see simd.hpp). All of them operate on
// net-major word arrays: net n's lanes live at words [n*nw, n*nw+nw).
//
// Correctness never depends on the backend: every entry point computes the
// same bits for the same (model, inputs, nw); the backends differ only in
// the ISA the compiler vectorises the word loops to.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/comb_model.hpp"
#include "sim/parallel_sim.hpp"
#include "sim/simd.hpp"

namespace tpi {

/// Event counters accumulated by fault grading; the ATPG kernel profile
/// sums them per phase. Totals are independent of the worker count because
/// each fault is graded exactly once (they do depend on the logical batch
/// width, which is fixed algorithmically — see simd.hpp).
struct FaultSimStats {
  std::uint64_t faults_graded = 0;  ///< faults graded
  std::uint64_t cone_skips = 0;     ///< faults cut by the observability mask
  std::uint64_t node_evals = 0;     ///< nodes evaluated during propagation
  std::uint64_t events = 0;         ///< scheduler pushes accepted

  FaultSimStats& operator+=(const FaultSimStats& o) {
    faults_graded += o.faults_graded;
    cone_skips += o.cone_skips;
    node_evals += o.node_evals;
    events += o.events;
    return *this;
  }
};

/// One fault, resolved against the model for the kernels: the site net,
/// the polarity, and how the faulty value enters the logic (everywhere for
/// a stem; at one reading node for a branch; directly into a flip-flop for
/// a D-pin branch with no logic reader).
struct FaultTask {
  NetId net = kNoNet;
  int branch_reader = -1;  ///< node index seeing the stuck value; -1 = stem
  bool stuck1 = false;
  bool direct_capture = false;  ///< branch on an FF D pin (no logic reader)
  bool dead_branch = false;     ///< branch with no logic reader, not a D pin

  bool is_stem() const { return branch_reader < 0 && !direct_capture && !dead_branch; }
};

/// Per-simulator scratch for the grading kernel: the faulty-value overlay
/// (epoch-stamped, so activating a new fault is O(1)) and the level-bucket
/// event queue that replaces a binary heap — levelize guarantees every
/// reader sits at a strictly higher level than its fanins, so draining
/// buckets in ascending level order is a valid topological schedule and
/// push/pop are O(1).
struct FaultScratch {
  std::vector<Word> fval;              ///< nets * nw faulty words
  std::vector<std::uint32_t> stamp;    ///< per net: epoch of last fval write
  std::vector<std::uint32_t> queued;   ///< per node: epoch when scheduled
  std::vector<std::vector<std::int32_t>> buckets;  ///< per level: pending nodes
  std::uint32_t epoch = 0;
  int nw = 1;

  void prepare(const CombModel& model, int lane_words) {
    nw = lane_words;
    fval.assign(model.num_nets() * static_cast<std::size_t>(nw), 0);
    if (stamp.size() != model.num_nets()) stamp.assign(model.num_nets(), 0);
    if (queued.size() != model.nodes().size()) queued.assign(model.nodes().size(), 0);
    if (buckets.size() < static_cast<std::size_t>(model.max_level()) + 1) {
      buckets.resize(static_cast<std::size_t>(model.max_level()) + 1);
    }
  }
};

/// One backend's kernel entry points. `nw` must be 1, 2, 4 or 8
/// (kMaxLaneWords); arrays are net-major with stride nw.
struct SimKernels {
  /// Full-sweep good-value evaluation of model.eval_ops() (honours
  /// copy_of dedup) over `values` (num_nets * nw words).
  void (*sweep)(const CombModel& model, Word* values, int nw);
  /// Full-sweep two-plane ternary evaluation (build-selected encoding;
  /// honours copy_of) over plane arrays p/q (num_nets * nw words each).
  void (*tern_sweep)(const CombModel& model, Word* p, Word* q, int nw);
  /// Event-driven grading of `count` faults against the good state:
  /// detect[i*scratch.nw + j] accumulates per-lane observable differences
  /// for tasks[i]. Counters accumulate into `stats` with
  /// FaultSimulator-compatible semantics.
  void (*grade)(const CombModel& model, FaultScratch& scratch, const Word* good,
                const FaultTask* tasks, std::size_t count, Word* detect, FaultSimStats& stats);
  /// Forced full-sweep resimulation of one fault (replay validation):
  /// evaluates every node with its real op (dedup does not apply under
  /// injection), writes num_nets*nw words into `faulty` and the observable
  /// difference into detect[0..nw).
  void (*forced)(const CombModel& model, const Word* good, Word* faulty, const FaultTask& task,
                 Word* detect, int nw);
};

/// Kernels of the active backend (simd_backend()).
const SimKernels& sim_kernels();
/// Kernels of an explicit backend; falls back to scalar when `b` was not
/// compiled in. Used by the cross-backend parity tests.
const SimKernels& sim_kernels(SimdBackend b);

// Per-backend tables (defined in kernels_<backend>.cpp).
const SimKernels& sim_kernels_scalar();
#ifdef TPI_HAVE_KERNELS_AVX2
const SimKernels& sim_kernels_avx2();
#endif
#ifdef TPI_HAVE_KERNELS_AVX512
const SimKernels& sim_kernels_avx512();
#endif

}  // namespace tpi
