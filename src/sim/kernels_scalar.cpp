// Scalar (64-bit word) kernel backend: the portable baseline, compiled
// with the project's default flags. Always present.
#define TPI_SIMD_IMPL_NS simd_impl_scalar
#include "sim/kernels_impl.hpp"

namespace tpi {

const SimKernels& sim_kernels_scalar() { return simd_impl_scalar::kernels(); }

}  // namespace tpi
