// SIMD backend selection for the bit-parallel simulation kernels.
//
// All hot kernels (good-value sweep, event-driven fault grading, forced
// replay resimulation, two-plane ternary sweep) are written once as plain
// uint64_t loops over NW words per net (kernels_impl.hpp) and compiled
// three times: once at baseline ISA, once with -mavx2 and once with
// -mavx512f/bw/dq/vl. The compiler auto-vectorises the NW-word loops into
// 256-/512-bit operations; the *logical* lane count of every pass is fixed
// by the algorithms (kMaxLaneWords super-batches everywhere), so results
// are bit-identical across backends by construction — only the wall clock
// moves. Runtime dispatch picks the widest backend the CPU supports,
// overridable by TPI_SIMD={auto,scalar,avx2,avx512} or programmatically
// (FlowConfig's `simd` knob, the parity tests).
#pragma once

#include <optional>
#include <string_view>

namespace tpi {

enum class SimdBackend { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Widest super-batch width in 64-bit words: every wide pass grades
/// kMaxLaneWords * 64 = 512 patterns/lanes per net visit, independent of
/// the backend executing it (that is what keeps results bit-identical).
inline constexpr int kMaxLaneWords = 8;

/// True when `b` was compiled in AND the running CPU supports it. kScalar
/// is always available.
bool simd_backend_available(SimdBackend b);

/// The backend the kernels currently dispatch to: the programmatic
/// override if set, else TPI_SIMD from the environment, else the widest
/// available. A requested-but-unavailable backend warns once and falls
/// back to the widest available one.
SimdBackend simd_backend();

/// Install (or clear, with nullopt) the process-wide backend override.
/// Takes effect on the next kernel dispatch; intended for FlowConfig and
/// the cross-backend parity tests. Not meant to be flipped while
/// simulations are in flight on other threads.
void set_simd_backend(std::optional<SimdBackend> backend);

/// Physical datapath width of the active backend in bits (64/256/512);
/// exported as the "rt.sim.lane_width" gauge.
int simd_lane_bits();

const char* simd_backend_name(SimdBackend b);
std::optional<SimdBackend> simd_backend_from_name(std::string_view name);

}  // namespace tpi
