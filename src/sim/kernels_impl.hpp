// Width-templated kernel implementations, included once per backend TU.
//
// The including TU defines TPI_SIMD_IMPL_NS (e.g. simd_impl_avx2) and is
// compiled with that backend's ISA flags; everything here is plain NW-word
// uint64_t loops the compiler auto-vectorises to whatever the TU's flags
// allow. No intrinsics: the bit patterns produced are identical in every
// backend by construction, only the instruction selection differs.
//
// Semantics notes (bit-identity contracts):
//  * sweep/tern_sweep evaluate model.eval_ops() in order, honouring
//    copy_of; per-op results are computed into locals before the store, so
//    output aliasing behaves like the historical read-then-write loop.
//  * grade replicates FaultSimulator::detects() per 64-lane slice: the
//    per-lane detect bits are what the historical 64-wide grader produced
//    for that lane's batch, for any NW. The event queue is a level-bucket
//    array instead of a binary heap — levelize guarantees readers sit at
//    strictly higher levels than their fanins, so ascending-level draining
//    is the same topological schedule with O(1) push/pop, and the set of
//    accepted events (and therefore the stats) is order-independent.
//  * forced replicates replay.cpp's forced_detect: a full sweep of the
//    real ops (structural dedup is unsound under injection).

#ifndef TPI_SIMD_IMPL_NS
#error "kernels_impl.hpp must be included with TPI_SIMD_IMPL_NS defined"
#endif

#include <cstddef>
#include <cstdint>

#include "sim/kernels.hpp"
#include "sim/ternary_planes.hpp"

namespace tpi {
namespace TPI_SIMD_IMPL_NS {

inline constexpr Word kZeroWords[kMaxLaneWords] = {};

/// Evaluate one op over NW-word operands. `out` may alias any operand:
/// results are accumulated in locals and stored last. Zero-input ops
/// produce all-zero words (they carry no function; real netlists connect
/// every logic pin).
template <int NW>
inline void eval_op_wide(const EvalOp& op, const Word* const* in, const Word* sel, Word* out) {
  Word acc[NW];
  if (op.num_inputs == 0) {
    for (int j = 0; j < NW; ++j) out[j] = 0;
    return;
  }
  switch (op.func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
    case CellFunc::kTsff:  // transparent in application mode
      for (int j = 0; j < NW; ++j) acc[j] = in[0][j];
      break;
    case CellFunc::kInv:
      for (int j = 0; j < NW; ++j) acc[j] = ~in[0][j];
      break;
    case CellFunc::kAnd:
    case CellFunc::kNand:
      for (int j = 0; j < NW; ++j) acc[j] = in[0][j];
      for (int i = 1; i < op.num_inputs; ++i) {
        for (int j = 0; j < NW; ++j) acc[j] &= in[i][j];
      }
      if (op.func == CellFunc::kNand) {
        for (int j = 0; j < NW; ++j) acc[j] = ~acc[j];
      }
      break;
    case CellFunc::kOr:
    case CellFunc::kNor:
      for (int j = 0; j < NW; ++j) acc[j] = in[0][j];
      for (int i = 1; i < op.num_inputs; ++i) {
        for (int j = 0; j < NW; ++j) acc[j] |= in[i][j];
      }
      if (op.func == CellFunc::kNor) {
        for (int j = 0; j < NW; ++j) acc[j] = ~acc[j];
      }
      break;
    case CellFunc::kXor:
    case CellFunc::kXnor:
      for (int j = 0; j < NW; ++j) acc[j] = in[0][j];
      for (int i = 1; i < op.num_inputs; ++i) {
        for (int j = 0; j < NW; ++j) acc[j] ^= in[i][j];
      }
      if (op.func == CellFunc::kXnor) {
        for (int j = 0; j < NW; ++j) acc[j] = ~acc[j];
      }
      break;
    case CellFunc::kMux2:
      for (int j = 0; j < NW; ++j) acc[j] = (in[0][j] & ~sel[j]) | (in[1][j] & sel[j]);
      break;
    default:
      for (int j = 0; j < NW; ++j) acc[j] = 0;
      break;
  }
  for (int j = 0; j < NW; ++j) out[j] = acc[j];
}

template <int NW>
void sweep_impl(const CombModel& model, Word* v) {
  for (const EvalOp& op : model.eval_ops()) {
    if (op.out == kNoNet) continue;
    Word* out = v + static_cast<std::size_t>(op.out) * NW;
    if (op.copy_of != kNoNet) {
      const Word* src = v + static_cast<std::size_t>(op.copy_of) * NW;
      for (int j = 0; j < NW; ++j) out[j] = src[j];
      continue;
    }
    const Word* in[4];
    for (int i = 0; i < op.num_inputs; ++i) {
      in[i] = v + static_cast<std::size_t>(op.in[i]) * NW;
    }
    const Word* sel =
        op.sel != kNoNet ? v + static_cast<std::size_t>(op.sel) * NW : kZeroWords;
    eval_op_wide<NW>(op, in, sel, out);
  }
}

template <int NW>
void tern_sweep_impl(const CombModel& model, Word* p, Word* q) {
  using Enc = TernEncoding;
  for (const EvalOp& op : model.eval_ops()) {
    if (op.out == kNoNet) continue;
    const std::size_t ob = static_cast<std::size_t>(op.out) * NW;
    if (op.copy_of != kNoNet) {
      const std::size_t sb = static_cast<std::size_t>(op.copy_of) * NW;
      for (int j = 0; j < NW; ++j) {
        p[ob + j] = p[sb + j];
        q[ob + j] = q[sb + j];
      }
      continue;
    }
    if (op.num_inputs == 0) {
      for (int j = 0; j < NW; ++j) Enc::x(p[ob + j], q[ob + j]);
      continue;
    }
    for (int j = 0; j < NW; ++j) {
      Word inp[4];
      Word inq[4];
      for (int i = 0; i < op.num_inputs; ++i) {
        const std::size_t b = static_cast<std::size_t>(op.in[i]) * NW + static_cast<std::size_t>(j);
        inp[i] = p[b];
        inq[i] = q[b];
      }
      Word sp;
      Word sq;
      if (op.sel != kNoNet) {
        const std::size_t b = static_cast<std::size_t>(op.sel) * NW + static_cast<std::size_t>(j);
        sp = p[b];
        sq = q[b];
      } else {
        Enc::zero(sp, sq);  // matches eval_node_word's implicit select = 0
      }
      Word rp;
      Word rq;
      eval_node_planes<Enc>(op.func, op.num_inputs, inp, inq, sp, sq, rp, rq);
      p[ob + j] = rp;
      q[ob + j] = rq;
    }
  }
}

template <int NW>
void grade_one(const CombModel& model, FaultScratch& sc, const Word* good, const FaultTask& task,
               Word* detect, FaultSimStats& stats) {
  for (int j = 0; j < NW; ++j) detect[j] = 0;
  ++stats.faults_graded;
  if (!model.net_reaches_observe(task.net)) {
    ++stats.cone_skips;
    return;
  }
  ++sc.epoch;
  const std::uint32_t epoch = sc.epoch;
  const auto& nodes = model.nodes();
  const auto& ops = model.eval_ops();
  Word* fval = sc.fval.data();

  const Word stuck = task.stuck1 ? ~Word{0} : Word{0};
  Word stuck_arr[NW];
  for (int j = 0; j < NW; ++j) stuck_arr[j] = stuck;

  const Word* g = good + static_cast<std::size_t>(task.net) * NW;
  Word act = 0;
  for (int j = 0; j < NW; ++j) act |= g[j] ^ stuck;
  if (act == 0) return;  // no lane of any slice activates the fault

  const auto faulty = [&](NetId net) -> const Word* {
    const auto i = static_cast<std::size_t>(net);
    return sc.stamp[i] == epoch ? fval + i * NW : good + i * NW;
  };
  const auto set_faulty = [&](NetId net, const Word* w) {
    const auto i = static_cast<std::size_t>(net);
    for (int j = 0; j < NW; ++j) fval[i * NW + j] = w[j];
    sc.stamp[i] = epoch;
  };

  int min_lv = 0;
  int max_lv = -1;
  const auto schedule = [&](int ni) {
    const auto i = static_cast<std::size_t>(ni);
    if (sc.queued[i] == epoch) return;
    sc.queued[i] = epoch;
    ++stats.events;
    const int lv = nodes[i].level;
    if (max_lv < 0 || lv < min_lv) min_lv = lv;
    if (lv > max_lv) max_lv = lv;
    sc.buckets[static_cast<std::size_t>(lv)].push_back(ni);
  };
  const auto schedule_readers = [&](NetId net) {
    for (const int reader : model.readers_of(net)) {
      // Cone limit: never propagate into logic no observe point can see.
      const NetId out = nodes[static_cast<std::size_t>(reader)].out;
      if (out != kNoNet && !model.net_reaches_observe(out)) continue;
      schedule(reader);
    }
  };

  if (task.is_stem()) {
    set_faulty(task.net, stuck_arr);
    if (model.is_observe_net(task.net)) {
      for (int j = 0; j < NW; ++j) detect[j] |= g[j] ^ stuck;
    }
    schedule_readers(task.net);
  } else if (task.direct_capture) {
    // FF D-pin branch with no logic reader: captured directly.
    for (int j = 0; j < NW; ++j) detect[j] = g[j] ^ stuck;
    return;
  } else if (task.dead_branch) {
    return;  // branch with no logic reader, not a D pin
  } else {
    // Evaluate the branch reader with the forced input value.
    const EvalOp& op = ops[static_cast<std::size_t>(task.branch_reader)];
    if (op.out != kNoNet && !model.net_reaches_observe(op.out)) {
      // The branch cone is dead even though the stem has live siblings.
      ++stats.cone_skips;
      return;
    }
    const Word* in[4];
    for (int i = 0; i < op.num_inputs; ++i) {
      in[i] = op.in[i] == task.net ? stuck_arr : good + static_cast<std::size_t>(op.in[i]) * NW;
    }
    const Word* sel = kZeroWords;
    if (op.sel != kNoNet) {
      sel = op.sel == task.net ? stuck_arr : good + static_cast<std::size_t>(op.sel) * NW;
    }
    ++stats.node_evals;
    Word out[NW];
    eval_op_wide<NW>(op, in, sel, out);
    if (op.out == kNoNet) return;
    const Word* gout = good + static_cast<std::size_t>(op.out) * NW;
    Word change = 0;
    for (int j = 0; j < NW; ++j) change |= out[j] ^ gout[j];
    if (change == 0) return;
    set_faulty(op.out, out);
    if (model.is_observe_net(op.out)) {
      for (int j = 0; j < NW; ++j) detect[j] |= out[j] ^ gout[j];
    }
    schedule_readers(op.out);
  }

  // Event-driven propagation: drain buckets in ascending level order.
  // Scheduling only ever targets strictly higher levels, so each bucket is
  // complete when reached and max_lv can only grow.
  for (int lv = min_lv; lv <= max_lv; ++lv) {
    auto& bucket = sc.buckets[static_cast<std::size_t>(lv)];
    for (std::size_t h = 0; h < bucket.size(); ++h) {
      const int ni = bucket[h];
      const EvalOp& op = ops[static_cast<std::size_t>(ni)];
      if (op.out == kNoNet) continue;
      // The branch-fault injection must persist if the reader re-evaluates.
      const bool inject = ni == task.branch_reader;
      const Word* in[4];
      for (int i = 0; i < op.num_inputs; ++i) {
        in[i] = (inject && op.in[i] == task.net) ? stuck_arr : faulty(op.in[i]);
      }
      const Word* sel = kZeroWords;
      if (op.sel != kNoNet) {
        sel = (inject && op.sel == task.net) ? stuck_arr : faulty(op.sel);
      }
      ++stats.node_evals;
      Word out[NW];
      eval_op_wide<NW>(op, in, sel, out);
      const Word* cur = faulty(op.out);
      Word change = 0;
      for (int j = 0; j < NW; ++j) change |= out[j] ^ cur[j];
      if (change == 0) continue;  // no change, nothing to propagate
      set_faulty(op.out, out);
      const Word* gout = good + static_cast<std::size_t>(op.out) * NW;
      Word diff[NW];
      Word any = 0;
      for (int j = 0; j < NW; ++j) {
        diff[j] = out[j] ^ gout[j];
        any |= diff[j];
      }
      if (any != 0 && model.is_observe_net(op.out)) {
        for (int j = 0; j < NW; ++j) detect[j] |= diff[j];
      }
      schedule_readers(op.out);
    }
    bucket.clear();
  }
}

template <int NW>
void grade_impl(const CombModel& model, FaultScratch& sc, const Word* good,
                const FaultTask* tasks, std::size_t count, Word* detect, FaultSimStats& stats) {
  for (std::size_t i = 0; i < count; ++i) {
    grade_one<NW>(model, sc, good, tasks[i], detect + i * NW, stats);
  }
}

template <int NW>
void forced_impl(const CombModel& model, const Word* good, Word* faulty, const FaultTask& task,
                 Word* detect) {
  for (int j = 0; j < NW; ++j) detect[j] = 0;
  const Word stuck = task.stuck1 ? ~Word{0} : Word{0};
  const Word* g = good + static_cast<std::size_t>(task.net) * NW;
  Word act = 0;
  for (int j = 0; j < NW; ++j) act |= g[j] ^ stuck;
  if (act == 0) return;  // no pattern in the batch activates the fault
  if (task.direct_capture) {
    for (int j = 0; j < NW; ++j) detect[j] = g[j] ^ stuck;
    return;
  }
  if (task.dead_branch) return;

  const std::size_t total = model.num_nets() * static_cast<std::size_t>(NW);
  for (std::size_t i = 0; i < total; ++i) faulty[i] = good[i];
  Word stuck_arr[NW];
  for (int j = 0; j < NW; ++j) stuck_arr[j] = stuck;
  const bool stem = task.is_stem();
  if (stem) {
    for (int j = 0; j < NW; ++j) faulty[static_cast<std::size_t>(task.net) * NW + j] = stuck;
  }

  const auto& ops = model.eval_ops();
  for (std::size_t ni = 0; ni < ops.size(); ++ni) {
    const EvalOp& op = ops[ni];
    const bool inject = static_cast<int>(ni) == task.branch_reader;
    const Word* in[4];
    for (int i = 0; i < op.num_inputs; ++i) {
      in[i] = (inject && op.in[i] == task.net)
                  ? stuck_arr
                  : faulty + static_cast<std::size_t>(op.in[i]) * NW;
    }
    const Word* sel = kZeroWords;
    if (op.sel != kNoNet) {
      sel = (inject && op.sel == task.net) ? stuck_arr
                                           : faulty + static_cast<std::size_t>(op.sel) * NW;
    }
    if (op.out == kNoNet) continue;
    Word* out = faulty + static_cast<std::size_t>(op.out) * NW;
    eval_op_wide<NW>(op, in, sel, out);
    if (stem && op.out == task.net) {
      for (int j = 0; j < NW; ++j) out[j] = stuck;  // fault wins at the site
    }
  }

  for (const NetId n : model.observe_nets()) {
    const std::size_t b = static_cast<std::size_t>(n) * NW;
    for (int j = 0; j < NW; ++j) detect[j] |= faulty[b + j] ^ good[b + j];
  }
}

// nw-dispatch wrappers: nw is always a power of two in [1, kMaxLaneWords].

void sweep_entry(const CombModel& model, Word* values, int nw) {
  switch (nw) {
    case 1:
      sweep_impl<1>(model, values);
      return;
    case 2:
      sweep_impl<2>(model, values);
      return;
    case 4:
      sweep_impl<4>(model, values);
      return;
    default:
      sweep_impl<8>(model, values);
      return;
  }
}

void tern_sweep_entry(const CombModel& model, Word* p, Word* q, int nw) {
  switch (nw) {
    case 1:
      tern_sweep_impl<1>(model, p, q);
      return;
    case 2:
      tern_sweep_impl<2>(model, p, q);
      return;
    case 4:
      tern_sweep_impl<4>(model, p, q);
      return;
    default:
      tern_sweep_impl<8>(model, p, q);
      return;
  }
}

void grade_entry(const CombModel& model, FaultScratch& scratch, const Word* good,
                 const FaultTask* tasks, std::size_t count, Word* detect, FaultSimStats& stats) {
  switch (scratch.nw) {
    case 1:
      grade_impl<1>(model, scratch, good, tasks, count, detect, stats);
      return;
    case 2:
      grade_impl<2>(model, scratch, good, tasks, count, detect, stats);
      return;
    case 4:
      grade_impl<4>(model, scratch, good, tasks, count, detect, stats);
      return;
    default:
      grade_impl<8>(model, scratch, good, tasks, count, detect, stats);
      return;
  }
}

void forced_entry(const CombModel& model, const Word* good, Word* faulty, const FaultTask& task,
                  Word* detect, int nw) {
  switch (nw) {
    case 1:
      forced_impl<1>(model, good, faulty, task, detect);
      return;
    case 2:
      forced_impl<2>(model, good, faulty, task, detect);
      return;
    case 4:
      forced_impl<4>(model, good, faulty, task, detect);
      return;
    default:
      forced_impl<8>(model, good, faulty, task, detect);
      return;
  }
}

inline const SimKernels& kernels() {
  static const SimKernels k{&sweep_entry, &tern_sweep_entry, &grade_entry, &forced_entry};
  return k;
}

}  // namespace TPI_SIMD_IMPL_NS
}  // namespace tpi
