#include "sim/comb_model.hpp"

#include <algorithm>
#include <array>
#include <cassert>
#include <unordered_map>

#include "util/metrics.hpp"

namespace tpi {
namespace {

/// Ops whose value is invariant under fanin permutation; their hash keys
/// sort the fanin value classes so A&B and B&A collide.
bool symmetric_func(CellFunc f) {
  switch (f) {
    case CellFunc::kAnd:
    case CellFunc::kNand:
    case CellFunc::kOr:
    case CellFunc::kNor:
    case CellFunc::kXor:
    case CellFunc::kXnor:
      return true;
    default:
      return false;
  }
}

// Structural-hashing key: [func, num_inputs, in-class x4, sel-class].
using NodeKey = std::array<std::int32_t, 7>;

struct NodeKeyHash {
  std::size_t operator()(const NodeKey& k) const {
    std::size_t h = 1469598103934665603ULL;
    for (const std::int32_t v : k) {
      h ^= static_cast<std::size_t>(static_cast<std::uint32_t>(v));
      h *= 1099511628211ULL;
    }
    return h;
  }
};

}  // namespace

CombModel::CombModel(const Netlist& nl, SeqView view)
    : CombModel(nl, view, levelize(nl, view)) {}

void CombModel::pad_to_netlist() {
  // New nets since the build are driven by nothing the model knows about:
  // no producer, no readers, outside every observe cone. Identical to what
  // a full rebuild assigns them.
  producer_.resize(nl_->num_nets(), -1);
  readers_.resize(nl_->num_nets());
  reaches_observe_.resize(nl_->num_nets(), 0);
  observed_.resize(nl_->num_nets(), 0);
}

CombModel::CombModel(const Netlist& nl, SeqView view, const TopoOrder& topo)
    : nl_(&nl), view_(view) {
  acyclic_ = topo.acyclic;
  producer_.assign(nl.num_nets(), -1);
  readers_.assign(nl.num_nets(), {});

  nodes_.reserve(topo.order.size());
  for (const CellId cid : topo.order) {
    const CellInst& inst = nl.cell(cid);
    const CellSpec* spec = inst.spec;
    CombNode node;
    node.cell = cid;
    node.func = spec->func;
    node.level = topo.level[static_cast<std::size_t>(cid)];
    max_level_ = std::max(max_level_, node.level);
    node.out = inst.output_net();
    if (spec->func == CellFunc::kTsff) {
      // Transparent test point: out follows D (application mode).
      node.num_inputs = 1;
      node.in[0] = inst.conn[static_cast<std::size_t>(spec->d_pin)];
    } else if (spec->func == CellFunc::kMux2) {
      node.num_inputs = 2;
      node.in[0] = inst.conn[static_cast<std::size_t>(spec->find_pin("A"))];
      node.in[1] = inst.conn[static_cast<std::size_t>(spec->find_pin("B"))];
      node.sel = inst.conn[static_cast<std::size_t>(spec->select_pin)];
    } else {
      int k = 0;
      for (std::size_t p = 0; p < spec->pins.size(); ++p) {
        const PinSpec& ps = spec->pins[p];
        if (ps.dir != PinDir::kInput || ps.is_clock) continue;
        const int ip = static_cast<int>(p);
        if (ip == spec->ti_pin || ip == spec->te_pin || ip == spec->tr_pin) continue;
        const NetId n = inst.conn[p];
        if (n == kNoNet) continue;
        assert(k < 4);
        node.in[k++] = n;
      }
      node.num_inputs = k;
    }
    const int idx = static_cast<int>(nodes_.size());
    if (node.out != kNoNet) producer_[static_cast<std::size_t>(node.out)] = idx;
    for (int i = 0; i < node.num_inputs; ++i) {
      if (node.in[i] != kNoNet) readers_[static_cast<std::size_t>(node.in[i])].push_back(idx);
    }
    if (node.sel != kNoNet) readers_[static_cast<std::size_t>(node.sel)].push_back(idx);
    nodes_.push_back(node);
  }

  // Inputs: non-clock PIs, then boundary-FF outputs (pseudo-PIs).
  for (std::size_t i = 0; i < nl.num_pis(); ++i) {
    const int pi = static_cast<int>(i);
    if (nl.is_clock_net(nl.pi_net(pi))) continue;
    input_nets_.push_back(nl.pi_net(pi));
  }
  num_pi_inputs_ = input_nets_.size();

  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellId cid = static_cast<CellId>(c);
    const CellInst& inst = nl.cell(cid);
    if (!inst.spec->sequential || !is_boundary(nl, cid, view)) continue;
    boundary_ffs_.push_back(cid);
    const NetId q = inst.output_net();
    if (q != kNoNet) input_nets_.push_back(q);
  }

  // Observables: POs, then boundary-FF D nets (pseudo-POs).
  for (std::size_t i = 0; i < nl.num_pos(); ++i) {
    observe_nets_.push_back(nl.po_net(static_cast<int>(i)));
  }
  num_po_observes_ = observe_nets_.size();
  for (const CellId cid : boundary_ffs_) {
    const CellInst& inst = nl.cell(cid);
    const NetId d = inst.conn[static_cast<std::size_t>(inst.spec->d_pin)];
    if (d != kNoNet) observe_nets_.push_back(d);
  }

  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellInst& inst = nl.cell(static_cast<CellId>(c));
    if (inst.spec->func == CellFunc::kTie0) {
      if (inst.output_net() != kNoNet) const0_nets_.push_back(inst.output_net());
    } else if (inst.spec->func == CellFunc::kTie1) {
      if (inst.output_net() != kNoNet) const1_nets_.push_back(inst.output_net());
    }
  }

  // Backward observability: a net reaches an observe point iff it is one,
  // or feeds a node whose output does. nodes_ is topologically ordered, so
  // a single reverse sweep converges.
  reaches_observe_.assign(nl.num_nets(), 0);
  for (const NetId n : observe_nets_) reaches_observe_[static_cast<std::size_t>(n)] = 1;
  for (auto it = nodes_.rbegin(); it != nodes_.rend(); ++it) {
    const CombNode& node = *it;
    if (node.out == kNoNet || !reaches_observe_[static_cast<std::size_t>(node.out)]) continue;
    for (int i = 0; i < node.num_inputs; ++i) {
      if (node.in[i] != kNoNet) reaches_observe_[static_cast<std::size_t>(node.in[i])] = 1;
    }
    if (node.sel != kNoNet) reaches_observe_[static_cast<std::size_t>(node.sel)] = 1;
  }
  for (const char c : reaches_observe_) {
    num_observable_cone_nets_ += static_cast<std::size_t>(c != 0);
  }

  observed_.assign(nl.num_nets(), 0);
  for (const NetId n : observe_nets_) observed_[static_cast<std::size_t>(n)] = 1;

  // Structural hashing: assign each net a value class (a representative
  // net proven to carry the identical word in every good/ternary sweep).
  // Buffers and transparent TSFFs alias their output to the input's class;
  // a node whose (op, canonicalised fanin classes) key was already seen
  // gets copy_of = the first node's output, and full sweeps copy the word
  // instead of re-evaluating. Constants of the same polarity share one
  // class. Classes are structural, so they stay valid for ternary sweeps;
  // they are NOT valid under fault injection, which is why EvalOp keeps
  // the real op for the grading/forced kernels.
  std::vector<NetId> cls(nl.num_nets());
  for (std::size_t i = 0; i < cls.size(); ++i) cls[i] = static_cast<NetId>(i);
  if (!const0_nets_.empty()) {
    for (const NetId n : const0_nets_) cls[static_cast<std::size_t>(n)] = const0_nets_.front();
  }
  if (!const1_nets_.empty()) {
    for (const NetId n : const1_nets_) cls[static_cast<std::size_t>(n)] = const1_nets_.front();
  }

  eval_ops_.reserve(nodes_.size());
  std::unordered_map<NodeKey, NetId, NodeKeyHash> seen;
  seen.reserve(nodes_.size() * 2);
  for (const CombNode& node : nodes_) {
    EvalOp op;
    op.out = node.out;
    op.sel = node.sel;
    op.func = node.func;
    op.num_inputs = static_cast<std::uint8_t>(node.num_inputs);
    for (int i = 0; i < node.num_inputs; ++i) op.in[i] = node.in[i];
    if (node.out == kNoNet || node.num_inputs == 0) {
      eval_ops_.push_back(op);
      continue;
    }
    if (node.func == CellFunc::kBuf || node.func == CellFunc::kClkBuf ||
        node.func == CellFunc::kTsff) {
      // Pure pass-through: alias the class, no dedup counted.
      if (node.in[0] != kNoNet) {
        cls[static_cast<std::size_t>(node.out)] = cls[static_cast<std::size_t>(node.in[0])];
      }
      eval_ops_.push_back(op);
      continue;
    }
    NodeKey key{};
    key[0] = static_cast<std::int32_t>(node.func);
    key[1] = node.num_inputs;
    for (int i = 0; i < node.num_inputs; ++i) {
      key[2 + i] =
          node.in[i] == kNoNet ? -1 : static_cast<std::int32_t>(cls[static_cast<std::size_t>(node.in[i])]);
    }
    for (int i = node.num_inputs; i < 4; ++i) key[2 + i] = -1;
    key[6] = node.sel == kNoNet ? -1 : static_cast<std::int32_t>(cls[static_cast<std::size_t>(node.sel)]);
    if (symmetric_func(node.func)) {
      // Canonicalise fanin order (at most four classes; open-coded to keep
      // GCC's std::sort array-bounds analysis out of the picture).
      for (int i = 1; i < node.num_inputs; ++i) {
        const std::int32_t v = key[static_cast<std::size_t>(2 + i)];
        int j = i - 1;
        while (j >= 0 && key[static_cast<std::size_t>(2 + j)] > v) {
          key[static_cast<std::size_t>(2 + j + 1)] = key[static_cast<std::size_t>(2 + j)];
          --j;
        }
        key[static_cast<std::size_t>(2 + j + 1)] = v;
      }
    }
    const auto [it, inserted] = seen.emplace(key, node.out);
    if (!inserted) {
      op.copy_of = it->second;
      cls[static_cast<std::size_t>(node.out)] = cls[static_cast<std::size_t>(it->second)];
      ++nodes_deduped_;
    }
    eval_ops_.push_back(op);
  }
  metrics().add("comb.nodes_deduped", nodes_deduped_);
}

}  // namespace tpi
