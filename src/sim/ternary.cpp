#include "sim/ternary.hpp"

namespace tpi {

Tern eval_node_tern(const CombNode& node, const Tern* in, Tern sel) {
  switch (node.func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
    case CellFunc::kTsff:
      return in[0];
    case CellFunc::kInv:
      return tern_not(in[0]);
    case CellFunc::kAnd:
    case CellFunc::kNand: {
      Tern acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc = tern_and(acc, in[i]);
      return node.func == CellFunc::kAnd ? acc : tern_not(acc);
    }
    case CellFunc::kOr:
    case CellFunc::kNor: {
      Tern acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc = tern_or(acc, in[i]);
      return node.func == CellFunc::kOr ? acc : tern_not(acc);
    }
    case CellFunc::kXor:
    case CellFunc::kXnor: {
      Tern acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc = tern_xor(acc, in[i]);
      return node.func == CellFunc::kXor ? acc : tern_not(acc);
    }
    case CellFunc::kMux2:
      return tern_mux(in[0], in[1], sel);
    default:
      return Tern::kX;
  }
}

}  // namespace tpi
