// Compiled combinational view of a netlist for fast repeated evaluation.
//
// The model flattens the topologically-ordered combinational cells of a
// SeqView into a dense node array with cached net indices, and records the
// circuit's controllable inputs (PIs + pseudo-PIs = flip-flop outputs) and
// observable outputs (POs + pseudo-POs = flip-flop D nets). In the capture
// view this is exactly the full-scan test model the paper's ATPG operates
// on; in the application view TSFFs appear as transparent nodes.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/levelize.hpp"
#include "netlist/netlist.hpp"

namespace tpi {

struct CombNode {
  CellId cell = kNoCell;
  CellFunc func = CellFunc::kBuf;
  int num_inputs = 0;      ///< logic inputs actually connected
  NetId in[4] = {kNoNet, kNoNet, kNoNet, kNoNet};
  NetId sel = kNoNet;      ///< MUX2 select
  NetId out = kNoNet;
  int level = 0;
};

/// Compact evaluation record consumed by the simulation kernels, 1:1 with
/// nodes() (same index space as producer_of/readers_of). copy_of is the
/// structural-hashing shortcut: when valid, this node's output carries the
/// same good/ternary value as that earlier net, so full sweeps copy one
/// word instead of re-evaluating the op. The real func/in/sel are always
/// kept — fault injection invalidates value equality, so the grading and
/// forced-replay kernels evaluate every op.
struct EvalOp {
  NetId out = kNoNet;
  NetId in[4] = {kNoNet, kNoNet, kNoNet, kNoNet};
  NetId sel = kNoNet;
  NetId copy_of = kNoNet;  ///< earlier net with the identical value, or kNoNet
  CellFunc func = CellFunc::kBuf;
  std::uint8_t num_inputs = 0;
};

class CombModel {
 public:
  CombModel(const Netlist& nl, SeqView view);
  /// Compile against a precomputed topological order (must be the result
  /// of levelize(nl, view)); lets DesignDB share one cached TopoOrder
  /// between the model and other consumers instead of levelizing twice.
  CombModel(const Netlist& nl, SeqView view, const TopoOrder& topo);
  /// Rebind-copy: identical compiled content served against `nl`, which
  /// must be a copy of the netlist `other` was built from (same content,
  /// same edit version). Lets DesignDB::adopt_views_from hand warm views
  /// to a job's private netlist copy without recompiling.
  CombModel(const CombModel& other, const Netlist& nl) : CombModel(other) { nl_ = &nl; }

  /// Internal hook for DesignDB's cached-view refresh: when the netlist
  /// only grew nets that no logic touches since this model was built
  /// (comb_version unchanged), extend the per-net tables to num_nets() —
  /// the exact arrays a rebuild would produce. Not for general use.
  void pad_to_netlist();

  const Netlist& netlist() const { return *nl_; }
  SeqView view() const { return view_; }
  bool acyclic() const { return acyclic_; }

  const std::vector<CombNode>& nodes() const { return nodes_; }

  /// Kernel evaluation records, 1:1 with nodes().
  const std::vector<EvalOp>& eval_ops() const { return eval_ops_; }
  /// Nodes whose output was proven value-identical to an earlier net by
  /// structural hashing (op + canonicalised fanin value classes); also
  /// published as the `comb.nodes_deduped` metric.
  std::size_t nodes_deduped() const { return nodes_deduped_; }

  /// Node index computing each net, or −1 (inputs, constants, boundaries).
  int producer_of(NetId net) const { return producer_[static_cast<std::size_t>(net)]; }
  /// Node indices reading each net (logic pins only), ascending topo order.
  const std::vector<int>& readers_of(NetId net) const {
    return readers_[static_cast<std::size_t>(net)];
  }

  /// Controllable nets: non-clock PI nets followed by boundary-FF Q nets.
  const std::vector<NetId>& input_nets() const { return input_nets_; }
  std::size_t num_pi_inputs() const { return num_pi_inputs_; }  ///< prefix that are real PIs

  /// Observable nets: PO nets followed by boundary-FF D nets (pseudo-POs).
  const std::vector<NetId>& observe_nets() const { return observe_nets_; }
  std::size_t num_po_observes() const { return num_po_observes_; }

  /// Boundary flip-flops in this view, aligned with the pseudo-PI/PPO
  /// portions of input_nets()/observe_nets().
  const std::vector<CellId>& boundary_ffs() const { return boundary_ffs_; }

  /// Nets tied to constants by TIE cells.
  const std::vector<NetId>& const0_nets() const { return const0_nets_; }
  const std::vector<NetId>& const1_nets() const { return const1_nets_; }

  std::size_t num_nets() const { return nl_->num_nets(); }
  int max_level() const { return max_level_; }

  /// True when a fault effect on `net` can still reach an observe net (a PO
  /// or pseudo-PO) through the combinational logic. Computed once by a
  /// backward sweep from observe_nets(); fault simulation uses it to skip
  /// whole faults in dead cones and to stop propagating events into logic
  /// that no observe point can see.
  bool net_reaches_observe(NetId net) const {
    return reaches_observe_[static_cast<std::size_t>(net)] != 0;
  }
  /// True when `net` is itself an observe net (a PO or pseudo-PO); O(1)
  /// table the grading kernel uses instead of scanning observe_nets().
  bool is_observe_net(NetId net) const { return observed_[static_cast<std::size_t>(net)] != 0; }
  /// Nets with net_reaches_observe() set (diagnostics for the cone mask).
  std::size_t num_observable_cone_nets() const { return num_observable_cone_nets_; }

 private:
  const Netlist* nl_;
  SeqView view_;
  bool acyclic_ = true;
  std::vector<CombNode> nodes_;
  std::vector<EvalOp> eval_ops_;
  std::size_t nodes_deduped_ = 0;
  std::vector<int> producer_;
  std::vector<std::vector<int>> readers_;
  std::vector<NetId> input_nets_;
  std::size_t num_pi_inputs_ = 0;
  std::vector<NetId> observe_nets_;
  std::size_t num_po_observes_ = 0;
  std::vector<CellId> boundary_ffs_;
  std::vector<NetId> const0_nets_;
  std::vector<NetId> const1_nets_;
  std::vector<char> reaches_observe_;
  std::vector<char> observed_;
  std::size_t num_observable_cone_nets_ = 0;
  int max_level_ = 0;
};

}  // namespace tpi
