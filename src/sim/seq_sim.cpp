#include "sim/seq_sim.hpp"

#include <cassert>

namespace tpi {

SequentialSim::SequentialSim(const Netlist& nl, int lane_words)
    : owned_model_(std::in_place, nl, SeqView::kApplication),
      model_(&*owned_model_),
      sim_(*model_, lane_words) {
  reset();
}

SequentialSim::SequentialSim(const CombModel& model, int lane_words)
    : model_(&model), sim_(*model_, lane_words) {
  assert(model.view() == SeqView::kApplication);
  reset();
}

void SequentialSim::configure_lanes(int lane_words) {
  if (lane_words == sim_.lane_words()) return;
  sim_.configure_lanes(lane_words);
  reset();
}

void SequentialSim::reset() {
  state_.assign(model_->boundary_ffs().size() * static_cast<std::size_t>(sim_.lane_words()), 0);
}

void SequentialSim::step(const std::vector<Word>& pi_words, std::vector<Word>& po_words) {
  const std::size_t nw = static_cast<std::size_t>(sim_.lane_words());
  assert(pi_words.size() == model_->num_pi_inputs() * nw);
  assert(state_.size() == model_->boundary_ffs().size() * nw);
  const auto& inputs = model_->input_nets();
  for (std::size_t i = 0; i < model_->num_pi_inputs(); ++i) {
    Word* w = sim_.words(inputs[i]);
    for (std::size_t j = 0; j < nw; ++j) w[j] = pi_words[i * nw + j];
  }
  const std::size_t nff = model_->boundary_ffs().size();
  for (std::size_t i = 0; i < nff; ++i) {
    Word* w = sim_.words(inputs[model_->num_pi_inputs() + i]);
    for (std::size_t j = 0; j < nw; ++j) w[j] = state_[i * nw + j];
  }
  sim_.run();
  po_words.resize(model_->num_po_observes() * nw);
  const auto& observes = model_->observe_nets();
  for (std::size_t i = 0; i < model_->num_po_observes(); ++i) {
    const Word* w = sim_.words(observes[i]);
    for (std::size_t j = 0; j < nw; ++j) po_words[i * nw + j] = w[j];
  }
  // Next state: D values of the boundary flip-flops.
  for (std::size_t i = 0; i < nff; ++i) {
    const Word* w = sim_.words(observes[model_->num_po_observes() + i]);
    for (std::size_t j = 0; j < nw; ++j) state_[i * nw + j] = w[j];
  }
}

void SequentialSim::step_launch_capture(const std::vector<Word>& pi_words,
                                        std::vector<Word>& po_capture,
                                        std::vector<Word>* po_launch) {
  std::vector<Word> launch_po;
  step(pi_words, po_launch != nullptr ? *po_launch : launch_po);
  step(pi_words, po_capture);
}

}  // namespace tpi
