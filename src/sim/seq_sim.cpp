#include "sim/seq_sim.hpp"

#include <cassert>

namespace tpi {

SequentialSim::SequentialSim(const Netlist& nl)
    : owned_model_(std::in_place, nl, SeqView::kApplication),
      model_(&*owned_model_),
      sim_(*model_) {
  reset();
}

SequentialSim::SequentialSim(const CombModel& model)
    : model_(&model), sim_(*model_) {
  assert(model.view() == SeqView::kApplication);
  reset();
}

void SequentialSim::reset() { state_.assign(model_->boundary_ffs().size(), 0); }

void SequentialSim::step(const std::vector<Word>& pi_words, std::vector<Word>& po_words) {
  assert(pi_words.size() == model_->num_pi_inputs());
  const auto& inputs = model_->input_nets();
  for (std::size_t i = 0; i < model_->num_pi_inputs(); ++i) {
    sim_.set_value(inputs[i], pi_words[i]);
  }
  for (std::size_t i = 0; i < state_.size(); ++i) {
    sim_.set_value(inputs[model_->num_pi_inputs() + i], state_[i]);
  }
  sim_.run();
  po_words.resize(model_->num_po_observes());
  const auto& observes = model_->observe_nets();
  for (std::size_t i = 0; i < model_->num_po_observes(); ++i) {
    po_words[i] = sim_.value(observes[i]);
  }
  // Next state: D values of the boundary flip-flops.
  for (std::size_t i = 0; i < state_.size(); ++i) {
    state_[i] = sim_.value(observes[model_->num_po_observes() + i]);
  }
}

}  // namespace tpi
