// Cycle-accurate functional (application-mode) simulation.
//
// Models the circuit as seen in the field: TE=TR=0, TSFFs transparent,
// DFF/SDFF state advances on each clock. Used by the examples and by tests
// that verify TPI preserves functional behaviour (a test point must be
// logically invisible in application mode).
//
// The simulator is lane_words() x 64 instances wide: every PI/PO/state
// vector is word-major per signal (`v[i * lane_words() + j]` is signal i,
// lane word j), and one step() sweeps all lanes through the dispatched
// SIMD kernel. The default width of 1 is the legacy 64-lane interface.
#pragma once

#include <optional>
#include <vector>

#include "sim/parallel_sim.hpp"

namespace tpi {

class SequentialSim {
 public:
  explicit SequentialSim(const Netlist& nl, int lane_words = 1);

  /// Borrow an application-view model someone else owns (e.g. a DesignDB
  /// cache); the model must outlive the simulator and stay application
  /// view.
  explicit SequentialSim(const CombModel& model, int lane_words = 1);

  /// Number of state bits (application-view boundary flip-flops).
  std::size_t num_state_bits() const { return model_->boundary_ffs().size(); }

  /// Words per signal (1..kMaxLaneWords); lanes = 64 * lane_words().
  int lane_words() const { return sim_.lane_words(); }
  /// Switch the instance width. Resets all flip-flops (a lane relayout
  /// cannot preserve per-lane state meaningfully).
  void configure_lanes(int lane_words);

  /// Reset all flip-flops to 0.
  void reset();

  /// Apply one clock cycle: drive the PI words, evaluate, sample POs, then
  /// advance flip-flop state from the D inputs. pi_words must hold
  /// num_pi_inputs() * lane_words() words (word-major per input);
  /// po_words is resized to num_po_observes() * lane_words().
  void step(const std::vector<Word>& pi_words, std::vector<Word>& po_words);

  /// Launch-on-capture pair: two back-to-back step() calls with the PIs
  /// held. po_capture receives the second (capture) cycle's POs; when
  /// po_launch is non-null it receives the first (launch) cycle's POs.
  /// Mirrors the at-speed frame sequence transition ATPG grades against.
  void step_launch_capture(const std::vector<Word>& pi_words, std::vector<Word>& po_capture,
                           std::vector<Word>* po_launch = nullptr);

  /// State vector aligned with application-view boundary FFs, word-major
  /// per flip-flop (size num_state_bits() * lane_words()).
  const std::vector<Word>& state() const { return state_; }
  void set_state(const std::vector<Word>& s) { state_ = s; }

  const CombModel& model() const { return *model_; }

 private:
  std::optional<CombModel> owned_model_;  ///< empty in borrowed-model mode
  const CombModel* model_;                ///< owned_model_ or the borrowed one
  ParallelSim sim_;
  std::vector<Word> state_;
};

}  // namespace tpi
