// Cycle-accurate functional (application-mode) simulation.
//
// Models the circuit as seen in the field: TE=TR=0, TSFFs transparent,
// DFF/SDFF state advances on each clock. Used by the examples and by tests
// that verify TPI preserves functional behaviour (a test point must be
// logically invisible in application mode).
#pragma once

#include <optional>
#include <vector>

#include "sim/parallel_sim.hpp"

namespace tpi {

class SequentialSim {
 public:
  explicit SequentialSim(const Netlist& nl);

  /// Borrow an application-view model someone else owns (e.g. a DesignDB
  /// cache); the model must outlive the simulator and stay application
  /// view.
  explicit SequentialSim(const CombModel& model);

  /// Number of state bits (application-view boundary flip-flops).
  std::size_t num_state_bits() const { return model_->boundary_ffs().size(); }

  /// Reset all flip-flops to 0.
  void reset();

  /// Apply one clock cycle: drive the PI words, evaluate, sample POs, then
  /// advance flip-flop state from the D inputs. Each word carries 64
  /// independent simulation instances.
  void step(const std::vector<Word>& pi_words, std::vector<Word>& po_words);

  /// State vector aligned with application-view boundary FFs.
  const std::vector<Word>& state() const { return state_; }
  void set_state(const std::vector<Word>& s) { state_ = s; }

  const CombModel& model() const { return *model_; }

 private:
  std::optional<CombModel> owned_model_;  ///< empty in borrowed-model mode
  const CombModel* model_;                ///< owned_model_ or the borrowed one
  ParallelSim sim_;
  std::vector<Word> state_;
};

}  // namespace tpi
