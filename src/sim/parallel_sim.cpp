#include "sim/parallel_sim.hpp"

#include <cassert>

#include "util/metrics.hpp"

namespace tpi {

Word eval_node_word(const CombNode& node, const Word* in, Word sel) {
  switch (node.func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
    case CellFunc::kTsff:  // transparent in application mode
      return in[0];
    case CellFunc::kInv:
      return ~in[0];
    case CellFunc::kAnd:
    case CellFunc::kNand: {
      Word acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc &= in[i];
      return node.func == CellFunc::kAnd ? acc : ~acc;
    }
    case CellFunc::kOr:
    case CellFunc::kNor: {
      Word acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc |= in[i];
      return node.func == CellFunc::kOr ? acc : ~acc;
    }
    case CellFunc::kXor:
    case CellFunc::kXnor: {
      Word acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc ^= in[i];
      return node.func == CellFunc::kXor ? acc : ~acc;
    }
    case CellFunc::kMux2:
      return (in[0] & ~sel) | (in[1] & sel);
    default:
      return 0;
  }
}

ParallelSim::ParallelSim(const CombModel& model) : model_(&model) {
  value_.assign(model.num_nets(), 0);
  for (const NetId n : model.const1_nets()) value_[static_cast<std::size_t>(n)] = ~Word{0};
}

void ParallelSim::load_inputs(const std::vector<Word>& words) {
  const auto& nets = model_->input_nets();
  assert(words.size() == nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    value_[static_cast<std::size_t>(nets[i])] = words[i];
  }
}

void ParallelSim::run() {
  Word in[4] = {0, 0, 0, 0};
  for (const CombNode& node : model_->nodes()) {
    for (int i = 0; i < node.num_inputs; ++i) {
      in[i] = value_[static_cast<std::size_t>(node.in[i])];
    }
    const Word sel = node.sel != kNoNet ? value_[static_cast<std::size_t>(node.sel)] : 0;
    if (node.out != kNoNet) {
      value_[static_cast<std::size_t>(node.out)] = eval_node_word(node, in, sel);
    }
  }
  // One registry touch per full sweep, not per node: good-value simulation
  // runs once per 64-pattern batch, so this stays off the hot path.
  MetricsRegistry& m = metrics();
  m.add("sim.good_sweeps");
  m.add("sim.good_node_evals", model_->nodes().size());
}

void ParallelSim::read_observes(std::vector<Word>& out) const {
  const auto& nets = model_->observe_nets();
  out.resize(nets.size());
  for (std::size_t i = 0; i < nets.size(); ++i) {
    out[i] = value_[static_cast<std::size_t>(nets[i])];
  }
}

}  // namespace tpi
