#include "sim/parallel_sim.hpp"

#include <cassert>

#include "sim/kernels.hpp"
#include "util/metrics.hpp"

namespace tpi {

Word eval_node_word(const CombNode& node, const Word* in, Word sel) {
  switch (node.func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
    case CellFunc::kTsff:  // transparent in application mode
      return in[0];
    case CellFunc::kInv:
      return ~in[0];
    case CellFunc::kAnd:
    case CellFunc::kNand: {
      Word acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc &= in[i];
      return node.func == CellFunc::kAnd ? acc : ~acc;
    }
    case CellFunc::kOr:
    case CellFunc::kNor: {
      Word acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc |= in[i];
      return node.func == CellFunc::kOr ? acc : ~acc;
    }
    case CellFunc::kXor:
    case CellFunc::kXnor: {
      Word acc = in[0];
      for (int i = 1; i < node.num_inputs; ++i) acc ^= in[i];
      return node.func == CellFunc::kXor ? acc : ~acc;
    }
    case CellFunc::kMux2:
      return (in[0] & ~sel) | (in[1] & sel);
    default:
      return 0;
  }
}

ParallelSim::ParallelSim(const CombModel& model, int lane_words)
    : model_(&model), nw_(lane_words) {
  assert(nw_ >= 1 && nw_ <= kMaxLaneWords);
  reset_values();
}

void ParallelSim::configure_lanes(int lane_words) {
  assert(lane_words >= 1 && lane_words <= kMaxLaneWords);
  if (lane_words == nw_) return;
  nw_ = lane_words;
  reset_values();
}

void ParallelSim::reset_values() {
  value_.assign(model_->num_nets() * static_cast<std::size_t>(nw_), 0);
  for (const NetId n : model_->const1_nets()) {
    Word* w = words(n);
    for (int j = 0; j < nw_; ++j) w[j] = ~Word{0};
  }
}

void ParallelSim::load_inputs(const std::vector<Word>& in) {
  const auto& nets = model_->input_nets();
  assert(in.size() == nets.size() * static_cast<std::size_t>(nw_));
  for (std::size_t i = 0; i < nets.size(); ++i) {
    Word* w = words(nets[i]);
    for (int j = 0; j < nw_; ++j) w[j] = in[i * static_cast<std::size_t>(nw_) + j];
  }
}

void ParallelSim::run() {
  sim_kernels().sweep(*model_, value_.data(), nw_);
  // One registry touch per full sweep, not per node: good-value simulation
  // runs once per pattern batch, so this stays off the hot path. Deduped
  // nodes are copies, not evaluations.
  MetricsRegistry& m = metrics();
  m.add("sim.good_sweeps");
  m.add("sim.good_node_evals", model_->nodes().size() - model_->nodes_deduped());
}

void ParallelSim::read_observes(std::vector<Word>& out) const {
  const auto& nets = model_->observe_nets();
  out.resize(nets.size() * static_cast<std::size_t>(nw_));
  for (std::size_t i = 0; i < nets.size(); ++i) {
    const Word* w = words(nets[i]);
    for (int j = 0; j < nw_; ++j) out[i * static_cast<std::size_t>(nw_) + j] = w[j];
  }
}

}  // namespace tpi
