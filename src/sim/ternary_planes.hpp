// Bit-parallel two-plane ternary (0/1/X) encodings, as a compile-time
// policy.
//
// The scalar Tern byte array in ternary.cpp evaluates one value per net
// visit; a two-plane encoding packs 64 independent ternary values into a
// pair of words, so a full-lane sweep grades 64 (or, at super-batch width,
// 512) X-propagation trajectories per node. Two encodings are provided and
// selected at build time — the same way voiraig selects its ternary0..5
// encodings per build — via -DTPI_TERNARY_ENCODING=zo (CMake option;
// value/care is the default):
//
//   EncVC — plane p = value, plane q = care. care=1: the lane is a known
//           0/1 held in p; care=0: the lane is X and p is canonically 0
//           (invariant p & ~q == 0, every op below preserves it).
//   EncZO — plane p = "definitely 0", plane q = "definitely 1"
//           (invariant p & q == 0). NOT is a plane swap; AND/OR are two
//           ops per word — cheaper for inverter-heavy X sweeps.
//
// Both encode exactly the ternary algebra of sim/ternary.hpp (including
// tern_mux's "select unknown, outputs agree" rule); the truth-table test
// asserts equality against eval_node_tern for every op and every {0,1,X}
// input combination, for both encodings.
#pragma once

#include "sim/parallel_sim.hpp"
#include "sim/ternary.hpp"

namespace tpi {

/// Value/care planes: p=value, q=care (1 = known). X is (0,0).
struct EncVC {
  static constexpr const char* kName = "vc";
  static void zero(Word& p, Word& q) { p = 0; q = ~Word{0}; }
  static void one(Word& p, Word& q) { p = ~Word{0}; q = ~Word{0}; }
  static void x(Word& p, Word& q) { p = 0; q = 0; }
  /// All lanes known, values from `bits`.
  static void from_bits(Word bits, Word& p, Word& q) { p = bits; q = ~Word{0}; }
  static Word ones(Word p, Word q) { return p & q; }
  static Word zeros(Word p, Word q) { return q & ~p; }

  static void not_(Word ap, Word aq, Word& p, Word& q) {
    p = aq & ~ap;
    q = aq;
  }
  static void and_(Word ap, Word aq, Word bp, Word bq, Word& p, Word& q) {
    const Word k0 = (aq & ~ap) | (bq & ~bp);  // either side a known 0
    const Word k1 = ap & bp;                  // both known 1 (p subset of q)
    p = k1;
    q = k0 | k1;
  }
  static void or_(Word ap, Word aq, Word bp, Word bq, Word& p, Word& q) {
    const Word k1 = ap | bp;
    const Word k0 = (aq & ~ap) & (bq & ~bp);
    p = k1;
    q = k0 | k1;
  }
  static void xor_(Word ap, Word aq, Word bp, Word bq, Word& p, Word& q) {
    q = aq & bq;
    p = (ap ^ bp) & q;
  }
  /// tern_mux(a, b, s): s=0 -> a, s=1 -> b, s=X -> known only when a and b
  /// agree on a known value.
  static void mux_(Word ap, Word aq, Word bp, Word bq, Word sp, Word sq, Word& p, Word& q) {
    const Word s0 = sq & ~sp;
    const Word s1 = sp;  // p subset of q: known 1
    const Word agree_known = (ap & bp) | (aq & bq & ~(ap | bp));
    q = (s0 & aq) | (s1 & bq) | (~sq & agree_known);
    p = ((s0 & ap) | (s1 & bp) | (~sq & ap & bp)) & q;
  }
};

/// Zero/one planes: p = definitely-0, q = definitely-1. X is (0,0).
struct EncZO {
  static constexpr const char* kName = "zo";
  static void zero(Word& p, Word& q) { p = ~Word{0}; q = 0; }
  static void one(Word& p, Word& q) { p = 0; q = ~Word{0}; }
  static void x(Word& p, Word& q) { p = 0; q = 0; }
  static void from_bits(Word bits, Word& p, Word& q) { p = ~bits; q = bits; }
  static Word ones(Word p, Word q) { (void)p; return q; }
  static Word zeros(Word p, Word q) { (void)q; return p; }

  static void not_(Word ap, Word aq, Word& p, Word& q) {
    p = aq;
    q = ap;
  }
  static void and_(Word ap, Word aq, Word bp, Word bq, Word& p, Word& q) {
    p = ap | bp;
    q = aq & bq;
  }
  static void or_(Word ap, Word aq, Word bp, Word bq, Word& p, Word& q) {
    p = ap & bp;
    q = aq | bq;
  }
  static void xor_(Word ap, Word aq, Word bp, Word bq, Word& p, Word& q) {
    p = (ap & bp) | (aq & bq);
    q = (ap & bq) | (aq & bp);
  }
  static void mux_(Word ap, Word aq, Word bp, Word bq, Word sp, Word sq, Word& p, Word& q) {
    p = (sp & ap) | (sq & bp) | (ap & bp);
    q = (sp & aq) | (sq & bq) | (aq & bq);
  }
};

/// The build-selected encoding (CMake option TPI_TERNARY_ENCODING).
#ifdef TPI_TERNARY_ENCODING_ZO
using TernEncoding = EncZO;
#else
using TernEncoding = EncVC;
#endif

/// Encode a scalar Tern into all 64 lanes of a plane pair.
template <typename Enc>
inline void encode_tern(Tern t, Word& p, Word& q) {
  if (t == Tern::k0) {
    Enc::zero(p, q);
  } else if (t == Tern::k1) {
    Enc::one(p, q);
  } else {
    Enc::x(p, q);
  }
}

/// Decode one lane of a plane pair back to a scalar Tern.
template <typename Enc>
inline Tern decode_tern(Word p, Word q, int lane) {
  const Word bit = Word{1} << lane;
  if (Enc::ones(p, q) & bit) return Tern::k1;
  if (Enc::zeros(p, q) & bit) return Tern::k0;
  return Tern::kX;
}

/// One-word ternary evaluation of a combinational node: plane pairs for
/// each logic input (and the MUX select) in, one plane pair out. Mirrors
/// eval_node_word's op coverage and eval_node_tern's semantics; shared by
/// the NW-word sweep kernels (applied per word) and the truth-table test.
template <typename Enc>
inline void eval_node_planes(CellFunc func, int num_inputs, const Word* inp, const Word* inq,
                             Word selp, Word selq, Word& p, Word& q) {
  switch (func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
    case CellFunc::kTsff:  // transparent in application mode
      p = inp[0];
      q = inq[0];
      return;
    case CellFunc::kInv:
      Enc::not_(inp[0], inq[0], p, q);
      return;
    case CellFunc::kAnd:
    case CellFunc::kNand: {
      Word ap = inp[0], aq = inq[0];
      for (int i = 1; i < num_inputs; ++i) Enc::and_(ap, aq, inp[i], inq[i], ap, aq);
      if (func == CellFunc::kNand) Enc::not_(ap, aq, ap, aq);
      p = ap;
      q = aq;
      return;
    }
    case CellFunc::kOr:
    case CellFunc::kNor: {
      Word ap = inp[0], aq = inq[0];
      for (int i = 1; i < num_inputs; ++i) Enc::or_(ap, aq, inp[i], inq[i], ap, aq);
      if (func == CellFunc::kNor) Enc::not_(ap, aq, ap, aq);
      p = ap;
      q = aq;
      return;
    }
    case CellFunc::kXor:
    case CellFunc::kXnor: {
      Word ap = inp[0], aq = inq[0];
      for (int i = 1; i < num_inputs; ++i) Enc::xor_(ap, aq, inp[i], inq[i], ap, aq);
      if (func == CellFunc::kXnor) Enc::not_(ap, aq, ap, aq);
      p = ap;
      q = aq;
      return;
    }
    case CellFunc::kMux2:
      Enc::mux_(inp[0], inq[0], inp[1], inq[1], selp, selq, p, q);
      return;
    default:
      // eval_node_tern returns X for anything it does not model.
      Enc::x(p, q);
      return;
  }
}

}  // namespace tpi
