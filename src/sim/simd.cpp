#include "sim/simd.hpp"

#include <atomic>
#include <mutex>

#include "sim/kernels.hpp"
#include "util/env.hpp"
#include "util/log.hpp"

namespace tpi {
namespace {

bool cpu_supports(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kAvx2:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx2");
#else
      return false;
#endif
    case SimdBackend::kAvx512:
#if defined(__x86_64__) || defined(__i386__)
      return __builtin_cpu_supports("avx512f") && __builtin_cpu_supports("avx512bw");
#else
      return false;
#endif
  }
  return false;
}

bool compiled_in(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar:
      return true;
    case SimdBackend::kAvx2:
#ifdef TPI_HAVE_KERNELS_AVX2
      return true;
#else
      return false;
#endif
    case SimdBackend::kAvx512:
#ifdef TPI_HAVE_KERNELS_AVX512
      return true;
#else
      return false;
#endif
  }
  return false;
}

SimdBackend widest_available() {
  if (simd_backend_available(SimdBackend::kAvx512)) return SimdBackend::kAvx512;
  if (simd_backend_available(SimdBackend::kAvx2)) return SimdBackend::kAvx2;
  return SimdBackend::kScalar;
}

// Resolved backend cache: -1 = unresolved. set_simd_backend invalidates.
std::atomic<int> g_resolved{-1};
// The explicit override, guarded by g_mutex; g_resolved is the fast path.
std::mutex g_mutex;
std::optional<SimdBackend> g_override;

SimdBackend resolve_locked() {
  std::optional<SimdBackend> want = g_override;
  const char* origin = "override";
  if (!want) {
    if (const std::optional<std::string> v = env_string("TPI_SIMD")) {
      if (*v == "auto") {
        // fall through to widest
      } else if (const std::optional<SimdBackend> b = simd_backend_from_name(*v)) {
        want = *b;
        origin = "TPI_SIMD";
      } else {
        log_warn() << "simd: invalid TPI_SIMD=\"" << *v
                   << "\" (want auto|scalar|avx2|avx512); using auto";
      }
    }
  }
  if (want && !simd_backend_available(*want)) {
    const SimdBackend fb = widest_available();
    log_warn() << "simd: requested backend \"" << simd_backend_name(*want) << "\" (" << origin
               << ") is unavailable on this host/build; falling back to \""
               << simd_backend_name(fb) << "\"";
    want = fb;
  }
  return want ? *want : widest_available();
}

}  // namespace

bool simd_backend_available(SimdBackend b) { return compiled_in(b) && cpu_supports(b); }

SimdBackend simd_backend() {
  const int cached = g_resolved.load(std::memory_order_acquire);
  if (cached >= 0) return static_cast<SimdBackend>(cached);
  std::lock_guard<std::mutex> lock(g_mutex);
  const int again = g_resolved.load(std::memory_order_relaxed);
  if (again >= 0) return static_cast<SimdBackend>(again);
  const SimdBackend b = resolve_locked();
  g_resolved.store(static_cast<int>(b), std::memory_order_release);
  return b;
}

void set_simd_backend(std::optional<SimdBackend> backend) {
  std::lock_guard<std::mutex> lock(g_mutex);
  g_override = backend;
  g_resolved.store(-1, std::memory_order_release);
}

int simd_lane_bits() {
  switch (simd_backend()) {
    case SimdBackend::kScalar:
      return 64;
    case SimdBackend::kAvx2:
      return 256;
    case SimdBackend::kAvx512:
      return 512;
  }
  return 64;
}

const char* simd_backend_name(SimdBackend b) {
  switch (b) {
    case SimdBackend::kScalar:
      return "scalar";
    case SimdBackend::kAvx2:
      return "avx2";
    case SimdBackend::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<SimdBackend> simd_backend_from_name(std::string_view name) {
  if (name == "scalar") return SimdBackend::kScalar;
  if (name == "avx2") return SimdBackend::kAvx2;
  if (name == "avx512") return SimdBackend::kAvx512;
  return std::nullopt;
}

const SimKernels& sim_kernels(SimdBackend b) {
  switch (b) {
    case SimdBackend::kAvx512:
#ifdef TPI_HAVE_KERNELS_AVX512
      return sim_kernels_avx512();
#else
      break;
#endif
    case SimdBackend::kAvx2:
#ifdef TPI_HAVE_KERNELS_AVX2
      return sim_kernels_avx2();
#else
      break;
#endif
    case SimdBackend::kScalar:
      break;
  }
  return sim_kernels_scalar();
}

const SimKernels& sim_kernels() { return sim_kernels(simd_backend()); }

}  // namespace tpi
