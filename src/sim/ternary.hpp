// Three-valued (0/1/X) logic used by the PODEM test generator.
#pragma once

#include <cstdint>

#include "sim/comb_model.hpp"

namespace tpi {

enum class Tern : std::uint8_t { k0 = 0, k1 = 1, kX = 2 };

inline Tern tern_not(Tern a) {
  if (a == Tern::kX) return Tern::kX;
  return a == Tern::k0 ? Tern::k1 : Tern::k0;
}

inline Tern tern_and(Tern a, Tern b) {
  if (a == Tern::k0 || b == Tern::k0) return Tern::k0;
  if (a == Tern::k1 && b == Tern::k1) return Tern::k1;
  return Tern::kX;
}

inline Tern tern_or(Tern a, Tern b) {
  if (a == Tern::k1 || b == Tern::k1) return Tern::k1;
  if (a == Tern::k0 && b == Tern::k0) return Tern::k0;
  return Tern::kX;
}

inline Tern tern_xor(Tern a, Tern b) {
  if (a == Tern::kX || b == Tern::kX) return Tern::kX;
  return a == b ? Tern::k0 : Tern::k1;
}

inline Tern tern_mux(Tern a, Tern b, Tern s) {
  if (s == Tern::k0) return a;
  if (s == Tern::k1) return b;
  // s unknown: output known only when both data inputs agree on a value.
  if (a == b && a != Tern::kX) return a;
  return Tern::kX;
}

/// Evaluate a combinational node over ternary inputs.
Tern eval_node_tern(const CombNode& node, const Tern* in, Tern sel);

}  // namespace tpi
