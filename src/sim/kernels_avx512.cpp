// AVX-512 kernel backend: the same word loops as the scalar TU, compiled
// with -mavx512{f,bw,dq,vl} so the 8-word case vectorises to one 512-bit
// op per net visit. Built only when the compiler accepts the flags;
// selected at runtime only when the CPU reports AVX-512 (see simd.cpp).
#define TPI_SIMD_IMPL_NS simd_impl_avx512
#include "sim/kernels_impl.hpp"

namespace tpi {

const SimKernels& sim_kernels_avx512() { return simd_impl_avx512::kernels(); }

}  // namespace tpi
