#include "testability/testability.hpp"

#include <algorithm>
#include <cmath>

namespace tpi {
namespace {

float sat_add(float a, float b) {
  const float s = a + b;
  return s > kScoapInf ? kScoapInf : s;
}

// Enumerate XOR controllability exactly for <=4 inputs: cheapest input
// assignment with the required output parity.
void xor_scoap(const CombNode& node, const std::vector<float>& cc0,
               const std::vector<float>& cc1, bool invert, float& out0, float& out1) {
  const int n = node.num_inputs;
  float best_even = kScoapInf, best_odd = kScoapInf;
  for (int mask = 0; mask < (1 << n); ++mask) {
    float cost = 0;
    int ones = 0;
    for (int i = 0; i < n; ++i) {
      const auto net = static_cast<std::size_t>(node.in[i]);
      if (mask & (1 << i)) {
        cost = sat_add(cost, cc1[net]);
        ++ones;
      } else {
        cost = sat_add(cost, cc0[net]);
      }
    }
    if (ones % 2) {
      best_odd = std::min(best_odd, cost);
    } else {
      best_even = std::min(best_even, cost);
    }
  }
  // XOR: odd parity -> 1. XNOR inverts.
  out1 = sat_add(invert ? best_even : best_odd, 1.0f);
  out0 = sat_add(invert ? best_odd : best_even, 1.0f);
}

}  // namespace

float cop_node_p1(const CombNode& node, const float* p1_by_net) {
  auto p = [&](int i) { return p1_by_net[node.in[i]]; };
  switch (node.func) {
    case CellFunc::kBuf:
    case CellFunc::kClkBuf:
    case CellFunc::kTsff:
      return p(0);
    case CellFunc::kInv:
      return 1.0f - p(0);
    case CellFunc::kAnd:
    case CellFunc::kNand: {
      float prod = 1.0f;
      for (int i = 0; i < node.num_inputs; ++i) prod *= p(i);
      return node.func == CellFunc::kAnd ? prod : 1.0f - prod;
    }
    case CellFunc::kOr:
    case CellFunc::kNor: {
      float prod = 1.0f;
      for (int i = 0; i < node.num_inputs; ++i) prod *= 1.0f - p(i);
      return node.func == CellFunc::kOr ? 1.0f - prod : prod;
    }
    case CellFunc::kXor:
    case CellFunc::kXnor: {
      float podd = 0.0f;
      for (int i = 0; i < node.num_inputs; ++i) {
        podd = podd * (1.0f - p(i)) + (1.0f - podd) * p(i);
      }
      return node.func == CellFunc::kXor ? podd : 1.0f - podd;
    }
    case CellFunc::kMux2: {
      const float ps = p1_by_net[node.sel];
      return p(0) * (1.0f - ps) + p(1) * ps;
    }
    default:
      return 0.5f;
  }
}

TestabilityResult analyze_testability(const CombModel& model) {
  const std::size_t n_nets = model.num_nets();
  TestabilityResult r;
  r.cc0.assign(n_nets, kScoapInf);
  r.cc1.assign(n_nets, kScoapInf);
  r.co.assign(n_nets, kScoapInf);
  r.p1.assign(n_nets, 0.5f);
  r.obs.assign(n_nets, 0.0f);
  r.ffr_root.assign(n_nets, kNoNet);
  r.ffr_size.assign(n_nets, 0);

  // Controllable inputs.
  for (const NetId net : model.input_nets()) {
    r.cc0[static_cast<std::size_t>(net)] = 1.0f;
    r.cc1[static_cast<std::size_t>(net)] = 1.0f;
    r.p1[static_cast<std::size_t>(net)] = 0.5f;
  }
  for (const NetId net : model.const0_nets()) {
    r.cc0[static_cast<std::size_t>(net)] = 1.0f;
    r.p1[static_cast<std::size_t>(net)] = 0.0f;
  }
  for (const NetId net : model.const1_nets()) {
    r.cc1[static_cast<std::size_t>(net)] = 1.0f;
    r.p1[static_cast<std::size_t>(net)] = 1.0f;
  }

  // ---- forward pass: controllability ----
  for (const CombNode& node : model.nodes()) {
    if (node.out == kNoNet) continue;
    const auto out = static_cast<std::size_t>(node.out);
    auto in0 = [&](int i) { return r.cc0[static_cast<std::size_t>(node.in[i])]; };
    auto in1 = [&](int i) { return r.cc1[static_cast<std::size_t>(node.in[i])]; };
    auto p = [&](int i) { return r.p1[static_cast<std::size_t>(node.in[i])]; };
    switch (node.func) {
      case CellFunc::kBuf:
      case CellFunc::kClkBuf:
      case CellFunc::kTsff:
        r.cc0[out] = sat_add(in0(0), 1.0f);
        r.cc1[out] = sat_add(in1(0), 1.0f);
        r.p1[out] = p(0);
        break;
      case CellFunc::kInv:
        r.cc0[out] = sat_add(in1(0), 1.0f);
        r.cc1[out] = sat_add(in0(0), 1.0f);
        r.p1[out] = 1.0f - p(0);
        break;
      case CellFunc::kAnd:
      case CellFunc::kNand: {
        float sum1 = 0, min0 = kScoapInf, prod = 1.0f;
        for (int i = 0; i < node.num_inputs; ++i) {
          sum1 = sat_add(sum1, in1(i));
          min0 = std::min(min0, in0(i));
          prod *= p(i);
        }
        const float c1 = sat_add(sum1, 1.0f), c0 = sat_add(min0, 1.0f);
        if (node.func == CellFunc::kAnd) {
          r.cc1[out] = c1;
          r.cc0[out] = c0;
          r.p1[out] = prod;
        } else {
          r.cc0[out] = c1;
          r.cc1[out] = c0;
          r.p1[out] = 1.0f - prod;
        }
        break;
      }
      case CellFunc::kOr:
      case CellFunc::kNor: {
        float sum0 = 0, min1 = kScoapInf, prod = 1.0f;
        for (int i = 0; i < node.num_inputs; ++i) {
          sum0 = sat_add(sum0, in0(i));
          min1 = std::min(min1, in1(i));
          prod *= 1.0f - p(i);
        }
        const float c0 = sat_add(sum0, 1.0f), c1 = sat_add(min1, 1.0f);
        if (node.func == CellFunc::kOr) {
          r.cc0[out] = c0;
          r.cc1[out] = c1;
          r.p1[out] = 1.0f - prod;
        } else {
          r.cc1[out] = c0;
          r.cc0[out] = c1;
          r.p1[out] = prod;
        }
        break;
      }
      case CellFunc::kXor:
      case CellFunc::kXnor: {
        xor_scoap(node, r.cc0, r.cc1, node.func == CellFunc::kXnor, r.cc0[out], r.cc1[out]);
        float podd = 0.0f;
        for (int i = 0; i < node.num_inputs; ++i) {
          podd = podd * (1.0f - p(i)) + (1.0f - podd) * p(i);
        }
        r.p1[out] = node.func == CellFunc::kXor ? podd : 1.0f - podd;
        break;
      }
      case CellFunc::kMux2: {
        const auto sel = static_cast<std::size_t>(node.sel);
        const float s0 = r.cc0[sel], s1 = r.cc1[sel], ps = r.p1[sel];
        r.cc0[out] = sat_add(std::min(sat_add(s0, in0(0)), sat_add(s1, in0(1))), 1.0f);
        r.cc1[out] = sat_add(std::min(sat_add(s0, in1(0)), sat_add(s1, in1(1))), 1.0f);
        r.p1[out] = p(0) * (1.0f - ps) + p(1) * ps;
        break;
      }
      default:
        break;
    }
  }

  // ---- backward pass: observability ----
  for (const NetId net : model.observe_nets()) {
    r.co[static_cast<std::size_t>(net)] = 0.0f;
    r.obs[static_cast<std::size_t>(net)] = 1.0f;
  }
  const auto& nodes = model.nodes();
  for (std::size_t k = nodes.size(); k-- > 0;) {
    const CombNode& node = nodes[k];
    if (node.out == kNoNet) continue;
    const auto out = static_cast<std::size_t>(node.out);
    const float co_out = r.co[out];
    const float obs_out = r.obs[out];
    auto relax = [&](NetId in_net, float co_extra, float obs_factor) {
      const auto in = static_cast<std::size_t>(in_net);
      r.co[in] = std::min(r.co[in], sat_add(co_out, sat_add(co_extra, 1.0f)));
      r.obs[in] = std::max(r.obs[in], obs_out * obs_factor);
    };
    switch (node.func) {
      case CellFunc::kBuf:
      case CellFunc::kClkBuf:
      case CellFunc::kTsff:
      case CellFunc::kInv:
        relax(node.in[0], 0.0f, 1.0f);
        break;
      case CellFunc::kAnd:
      case CellFunc::kNand:
        for (int i = 0; i < node.num_inputs; ++i) {
          float side_cc = 0, side_p = 1.0f;
          for (int j = 0; j < node.num_inputs; ++j) {
            if (j == i) continue;
            side_cc = sat_add(side_cc, r.cc1[static_cast<std::size_t>(node.in[j])]);
            side_p *= r.p1[static_cast<std::size_t>(node.in[j])];
          }
          relax(node.in[i], side_cc, side_p);
        }
        break;
      case CellFunc::kOr:
      case CellFunc::kNor:
        for (int i = 0; i < node.num_inputs; ++i) {
          float side_cc = 0, side_p = 1.0f;
          for (int j = 0; j < node.num_inputs; ++j) {
            if (j == i) continue;
            side_cc = sat_add(side_cc, r.cc0[static_cast<std::size_t>(node.in[j])]);
            side_p *= 1.0f - r.p1[static_cast<std::size_t>(node.in[j])];
          }
          relax(node.in[i], side_cc, side_p);
        }
        break;
      case CellFunc::kXor:
      case CellFunc::kXnor:
        for (int i = 0; i < node.num_inputs; ++i) {
          float side_cc = 0;
          for (int j = 0; j < node.num_inputs; ++j) {
            if (j == i) continue;
            const auto jn = static_cast<std::size_t>(node.in[j]);
            side_cc = sat_add(side_cc, std::min(r.cc0[jn], r.cc1[jn]));
          }
          relax(node.in[i], side_cc, 1.0f);  // XOR always propagates
        }
        break;
      case CellFunc::kMux2: {
        const auto sel = static_cast<std::size_t>(node.sel);
        const float ps = r.p1[sel];
        relax(node.in[0], r.cc0[sel], 1.0f - ps);
        relax(node.in[1], r.cc1[sel], ps);
        const auto a = static_cast<std::size_t>(node.in[0]);
        const auto b = static_cast<std::size_t>(node.in[1]);
        const float differ_cc =
            std::min(sat_add(r.cc0[a], r.cc1[b]), sat_add(r.cc1[a], r.cc0[b]));
        const float differ_p = r.p1[a] * (1.0f - r.p1[b]) + r.p1[b] * (1.0f - r.p1[a]);
        relax(node.sel, differ_cc, differ_p);
        break;
      }
      default:
        break;
    }
  }

  // ---- fanout-free regions ----
  // A net is an FFR root when it fans out to more than one pin or is
  // directly observed; otherwise it inherits the root of its single reader.
  const Netlist& nl = model.netlist();
  std::vector<char> observed(n_nets, 0);
  for (const NetId net : model.observe_nets()) observed[static_cast<std::size_t>(net)] = 1;
  for (std::size_t k = nodes.size(); k-- > 0;) {
    const CombNode& node = nodes[k];
    if (node.out == kNoNet) continue;
    const auto out = static_cast<std::size_t>(node.out);
    const Net& net = nl.net(node.out);
    if (r.ffr_root[out] == kNoNet) {
      if (net.fanout() != 1 || observed[out] || model.readers_of(node.out).empty()) {
        r.ffr_root[out] = node.out;
      } else {
        // Single reader: inherit its output's root (reader is later in topo
        // order, so already resolved).
        const int reader = model.readers_of(node.out).front();
        const NetId reader_out = nodes[static_cast<std::size_t>(reader)].out;
        r.ffr_root[out] = (reader_out != kNoNet && r.ffr_root[static_cast<std::size_t>(
                                                       reader_out)] != kNoNet)
                              ? r.ffr_root[static_cast<std::size_t>(reader_out)]
                              : node.out;
      }
    }
    r.ffr_size[static_cast<std::size_t>(r.ffr_root[out])] += 1;
  }
  return r;
}

}  // namespace tpi
