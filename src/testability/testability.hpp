// Testability analysis: SCOAP, COP and fanout-free regions (FFRs).
//
// §3.1 of the paper: "Several testability analysis measures are computed at
// the beginning of each iteration, including SCOAP, COP, and TC values for
// each signal line, and the sizes of fanout-free regions." These measures
// drive test-point selection. All analyses run on the capture-view
// combinational model, where scan flip-flops (and TSFFs) are fully
// controllable/observable boundaries — which is exactly why inserting a
// TSFF resets the local testability figures.
#pragma once

#include <vector>

#include "sim/comb_model.hpp"

namespace tpi {

struct TestabilityResult {
  // SCOAP (Goldstein): combinational 0/1-controllability and observability.
  // Indexed by NetId; saturating arithmetic, kScoapInf for unreachable.
  std::vector<float> cc0;
  std::vector<float> cc1;
  std::vector<float> co;

  // COP (Brglez): signal probability p1 and observation probability obs.
  std::vector<float> p1;
  std::vector<float> obs;

  // Fanout-free regions: for every net, the root net of its FFR (a net
  // with fanout > 1, or observed directly), and for root nets the region
  // size in gates.
  std::vector<NetId> ffr_root;
  std::vector<int> ffr_size;

  /// COP detection probability of a stuck-at fault on `net`.
  float detect_prob_sa0(NetId net) const {
    return p1[static_cast<std::size_t>(net)] * obs[static_cast<std::size_t>(net)];
  }
  float detect_prob_sa1(NetId net) const {
    return (1.0f - p1[static_cast<std::size_t>(net)]) * obs[static_cast<std::size_t>(net)];
  }
  /// Probability that a random pattern detects the harder of the two
  /// stuck-at faults on this net — the TPI selection metric.
  float detect_prob_min(NetId net) const {
    const float a = detect_prob_sa0(net);
    const float b = detect_prob_sa1(net);
    return a < b ? a : b;
  }
};

inline constexpr float kScoapInf = 1e9f;

TestabilityResult analyze_testability(const CombModel& model);

/// COP signal probability of one node's output given per-net p1 values.
/// Exposed so the TPI gain computation can re-evaluate a fanout cone with a
/// hypothetical control point applied (Seiss-style gradient).
float cop_node_p1(const CombNode& node, const float* p1_by_net);

}  // namespace tpi
