// Parasitic extraction (§3.2 flow step 5, the HyperExtract stage).
//
// Per-net wire resistance/capacitance is derived from the routed tree with
// per-unit-length constants for two layer classes (short nets on thin
// lower metal, long nets promoted to thicker upper metal). Sink delays use
// the Elmore model over the route tree with a pi-segment per edge; the
// total capacitance (wire + sink pins + pad loads) is what the NLDM
// lookups in STA see as output load.
#pragma once

#include <vector>

#include "layout/routing.hpp"

namespace tpi {

struct ExtractionOptions {
  // Thin lower-metal class (short nets).
  double r_short_ohm_per_um = 0.80;
  double c_short_ff_per_um = 0.18;
  // Thick upper-metal class (long nets).
  double r_long_ohm_per_um = 0.25;
  double c_long_ff_per_um = 0.22;
  double long_net_threshold_um = 400.0;
  double po_pad_cap_ff = 40.0;  ///< load of an output pad
};

struct NetParasitics {
  double wire_cap_ff = 0.0;
  double pin_cap_ff = 0.0;
  double total_cap_ff = 0.0;  ///< driver's output load
  /// Elmore wire delay (ps) from the driver to each sink, ordered as the
  /// net's cell sinks followed by its PO sinks.
  std::vector<double> sink_elmore_ps;

  double elmore_to_cell_sink(std::size_t sink_index) const {
    return sink_index < sink_elmore_ps.size() ? sink_elmore_ps[sink_index] : 0.0;
  }
};

struct ExtractionResult {
  std::vector<NetParasitics> nets;  ///< indexed by NetId
  double total_wire_cap_ff = 0.0;
};

ExtractionResult extract(const Netlist& nl, const RoutingResult& routes,
                         const ExtractionOptions& opts = {});

}  // namespace tpi
