#include "extraction/extraction.hpp"

#include <algorithm>

namespace tpi {

ExtractionResult extract(const Netlist& nl, const RoutingResult& routes,
                         const ExtractionOptions& opts) {
  ExtractionResult res;
  res.nets.resize(nl.num_nets());

  for (std::size_t ni = 0; ni < nl.num_nets(); ++ni) {
    const Net& net = nl.net(static_cast<NetId>(ni));
    const RouteTree& tree = routes.nets[ni];
    NetParasitics& p = res.nets[ni];

    // Layer class by net length: long nets are promoted to thick metal.
    const bool long_net = tree.length_um >= opts.long_net_threshold_um;
    const double r_per_um = long_net ? opts.r_long_ohm_per_um : opts.r_short_ohm_per_um;
    const double c_per_um = long_net ? opts.c_long_ff_per_um : opts.c_short_ff_per_um;

    for (const PinRef& s : net.sinks) {
      p.pin_cap_ff += nl.cell(s.cell).spec->pins[static_cast<std::size_t>(s.pin)].cap_ff;
    }
    p.pin_cap_ff += opts.po_pad_cap_ff * static_cast<double>(net.po_sinks.size());
    p.wire_cap_ff = c_per_um * tree.length_um;
    p.total_cap_ff = p.wire_cap_ff + p.pin_cap_ff;
    res.total_wire_cap_ff += p.wire_cap_ff;

    // Elmore over the route tree: each edge is a pi segment (half the edge
    // capacitance at each end); node 0 is the driver, node j>=1 is sink j-1.
    const std::size_t n_nodes = tree.node.size();
    if (n_nodes < 2) continue;
    // Downstream capacitance per node (children have higher indices is NOT
    // guaranteed by Prim order, so accumulate via parent pointers).
    std::vector<double> down_cap(n_nodes, 0.0);
    for (std::size_t v = 1; v < n_nodes; ++v) {
      // Sink pin / pad capacitance at the leaf node.
      const std::size_t sink_idx = v - 1;
      if (sink_idx < net.sinks.size()) {
        const PinRef& s = net.sinks[sink_idx];
        down_cap[v] += nl.cell(s.cell).spec->pins[static_cast<std::size_t>(s.pin)].cap_ff;
      } else {
        down_cap[v] += opts.po_pad_cap_ff;
      }
      down_cap[v] += c_per_um * tree.edge_um[v] / 2.0;  // near half of own edge
    }
    // Propagate capacitance rootward. Repeated relaxation is avoided by
    // processing nodes in decreasing depth; compute depths first.
    std::vector<int> order(n_nodes);
    for (std::size_t v = 0; v < n_nodes; ++v) order[v] = static_cast<int>(v);
    std::vector<int> depth(n_nodes, 0);
    for (std::size_t v = 1; v < n_nodes; ++v) {
      int d = 0;
      for (int u = static_cast<int>(v); tree.parent[static_cast<std::size_t>(u)] >= 0;
           u = tree.parent[static_cast<std::size_t>(u)]) {
        ++d;
      }
      depth[v] = d;
    }
    std::sort(order.begin(), order.end(),
              [&](int a, int b) { return depth[static_cast<std::size_t>(a)] > depth[static_cast<std::size_t>(b)]; });
    for (const int v : order) {
      const int par = tree.parent[static_cast<std::size_t>(v)];
      if (par < 0) continue;
      down_cap[static_cast<std::size_t>(par)] +=
          down_cap[static_cast<std::size_t>(v)] +
          c_per_um * tree.edge_um[static_cast<std::size_t>(v)] / 2.0;  // far half
    }
    // Elmore delay: walk from root outward in increasing depth.
    std::vector<double> delay(n_nodes, 0.0);
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const int v = *it;
      const int par = tree.parent[static_cast<std::size_t>(v)];
      if (par < 0) continue;
      const double r = r_per_um * tree.edge_um[static_cast<std::size_t>(v)];
      // The edge resistance charges its own far-end half-capacitance (part
      // of down_cap[v]) plus everything below; the near-end half hangs on
      // the parent side of R and is not charged through it.
      const double c_seen = down_cap[static_cast<std::size_t>(v)];
      // ohm * fF = 1e-3 ps.
      delay[static_cast<std::size_t>(v)] =
          delay[static_cast<std::size_t>(par)] + 1e-3 * r * c_seen;
    }
    p.sink_elmore_ps.resize(net.sinks.size() + net.po_sinks.size(), 0.0);
    for (std::size_t v = 1; v < n_nodes && v - 1 < p.sink_elmore_ps.size(); ++v) {
      p.sink_elmore_ps[v - 1] = delay[v];
    }
  }
  return res;
}

}  // namespace tpi
