// SOC-scale workloads (DESIGN.md §16): compose a chip from N embedded
// cores drawn from the paper's profile set, run the full single-core flow
// per core, wrap each core onto the chip's Test Access Mechanism
// (wrapper.hpp) and schedule the per-core tests with rectangle bin
// packing (packing.hpp) into one chip-level test application time.
//
// Determinism contract: every per-core flow is bit-deterministic (same
// seeds, same profile), the cores are merged in core order on the caller
// thread, and the wrapper/packer layer is serial integer arithmetic — so
// soc_result_to_json() is byte-identical at any TPI_BENCH_JOBS /
// TPI_ATPG_JOBS and across SIMD backends.
//
// Concurrency: SocRunner::run fans the per-core flows onto a ThreadPool.
// Pass an external pool only when the calling thread does NOT itself live
// on that pool (the pool has no work stealing, so a worker blocking on
// same-pool futures can deadlock); pass nullptr to use a private pool —
// what the flow server does, since its jobs already run on pool workers.
#pragma once

#include <atomic>
#include <string>
#include <vector>

#include "circuits/design_cache.hpp"
#include "circuits/profiles.hpp"
#include "flow/flow.hpp"
#include "soc/packing.hpp"
#include "soc/wrapper.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace tpi {

struct FlowConfig;  // flow/flow_config.hpp

/// One embedded core: a paper profile (possibly scaled) plus its chip-level
/// instance label ("core3:circuit1").
struct SocCoreSpec {
  std::string label;
  CircuitProfile profile;
};

/// The deterministic chip composition for `cores` embedded cores: core i
/// instantiates paper profile i % 3 at size ladder {1, 0.7, 0.5}[(i/3) % 3]
/// x `scale`. Repeats share a DesignCache entry, so an N-core chip
/// generates at most 9 distinct designs.
std::vector<SocCoreSpec> soc_core_specs(int cores, double scale);

struct SocOptions {
  int cores = 8;
  int tam_width = 32;
  SocScheduleMethod schedule = SocScheduleMethod::kDiagonal;
  double scale = 1.0;            ///< uniform core size factor (TPI_BENCH_SCALE)
  FlowOptions flow;              ///< per-core flow options (tp_percent, seeds, ...)
  StageMask stages = StageMask::all();
  int jobs = 0;                  ///< concurrent core flows; <= 0 = hardware
};

/// SocOptions from a unified FlowConfig (soc knobs + options + stages +
/// scale + effective_bench_jobs). config.soc.cores may be 0; callers gate
/// SOC mode on that before running.
SocOptions soc_options_from(const FlowConfig& config);

/// One core's slice of the chip result: envelope, chosen wrapper and
/// committed schedule slot, plus the full per-core flow result.
struct SocCoreResult {
  std::string label;
  std::string profile_name;
  int width = 1;                 ///< TAM lines assigned by the scheduler
  int tam_start = 0;
  std::int64_t start_cycle = 0;
  std::int64_t finish_cycle = 0;
  std::int64_t test_cycles = 0;  ///< T(width) for the chosen wrapper
  std::int64_t scan_in = 0;      ///< wrapper s_i at the chosen width
  std::int64_t scan_out = 0;     ///< wrapper s_o at the chosen width
  CoreTestEnvelope envelope;
  FlowResult flow;
};

struct SocResult {
  int cores = 0;
  int tam_width = 0;
  SocScheduleMethod schedule = SocScheduleMethod::kDiagonal;
  std::vector<SocCoreResult> per_core;      ///< in core order
  std::int64_t chip_tat_cycles = 0;         ///< scheduled makespan
  std::int64_t serial_tat_cycles = 0;       ///< full-width one-after-another baseline
  double tam_utilization_pct = 0.0;
  /// Per-core deterministic flow metrics merged in core order, plus the
  /// soc.* chip metrics (soc.chip_tat_cycles, soc.tam_utilization_pct, ...).
  MetricsSnapshot metrics;
  bool cancelled = false;
};

/// Deterministic JSON of a chip result: chip scalars, one compact object
/// per core (no nested flow JSON — ledger lines stay one-screen) and the
/// merged kNoRuntime metrics snapshot.
JsonValue soc_result_to_json_value(const SocResult& result);
std::string soc_result_to_json(const SocResult& result);

class SocRunner {
 public:
  explicit SocRunner(SocOptions opts);
  /// Runner from a unified FlowConfig via soc_options_from().
  explicit SocRunner(const FlowConfig& config);

  /// Run the chip: per-core flows on `pool` (nullptr = a private pool of
  /// opts.jobs workers), designs checked out of `cache` (nullptr = a
  /// private per-run cache), cancellation checked at every core's stage
  /// boundaries via `cancel` (nullptr = never). Results merge in core
  /// order regardless of scheduling.
  SocResult run(const CellLibrary& lib, ThreadPool* pool = nullptr,
                DesignCache* cache = nullptr,
                const std::atomic<bool>* cancel = nullptr) const;

  const SocOptions& options() const { return opts_; }

 private:
  SocOptions opts_;
};

}  // namespace tpi
