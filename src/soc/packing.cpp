#include "soc/packing.hpp"

#include <algorithm>
#include <cassert>

namespace tpi {
namespace {

/// Core i's candidates restricted to widths <= tam_width; the narrowest
/// candidate (width clamped) when none fits, so every core schedules.
std::vector<WrapperDesign> usable(const std::vector<WrapperDesign>& cands, int tam_width) {
  std::vector<WrapperDesign> out;
  for (const WrapperDesign& d : cands) {
    if (d.width <= tam_width) out.push_back(d);
  }
  if (out.empty() && !cands.empty()) {
    WrapperDesign d = cands.front();
    d.width = tam_width;
    out.push_back(d);
  }
  return out;
}

/// The core's preferred rectangle: minimal test-bandwidth area w * T(w),
/// smaller width on ties (a 1-D proxy for "how much of the strip this
/// core inherently needs", the diagonal normaliser of Islam et al.).
const WrapperDesign& preferred(const std::vector<WrapperDesign>& cands) {
  const WrapperDesign* best = &cands.front();
  for (const WrapperDesign& d : cands) {
    const std::int64_t area = static_cast<std::int64_t>(d.width) * d.test_cycles;
    const std::int64_t best_area = static_cast<std::int64_t>(best->width) * best->test_cycles;
    if (area < best_area || (area == best_area && d.width < best->width)) best = &d;
  }
  return *best;
}

}  // namespace

const char* soc_schedule_name(SocScheduleMethod method) {
  return method == SocScheduleMethod::kSerial ? "serial" : "diagonal";
}

std::optional<SocScheduleMethod> soc_schedule_from_name(std::string_view name) {
  if (name == "diagonal") return SocScheduleMethod::kDiagonal;
  if (name == "serial") return SocScheduleMethod::kSerial;
  return std::nullopt;
}

SocSchedule schedule_tests(const std::vector<std::vector<WrapperDesign>>& candidates,
                           int tam_width, SocScheduleMethod method) {
  SocSchedule sched;
  sched.tam_width = std::max(tam_width, 1);
  const int W = sched.tam_width;
  const int n = static_cast<int>(candidates.size());
  sched.rects.resize(static_cast<std::size_t>(n));

  std::vector<std::vector<WrapperDesign>> cands;
  cands.reserve(static_cast<std::size_t>(n));
  for (const auto& c : candidates) cands.push_back(usable(c, W));

  if (method == SocScheduleMethod::kSerial) {
    // Baseline: every core alone on the full TAM, one after another.
    std::int64_t t = 0;
    for (int i = 0; i < n; ++i) {
      if (cands[static_cast<std::size_t>(i)].empty()) continue;
      const WrapperDesign& d = cands[static_cast<std::size_t>(i)].back();  // widest kept
      ScheduledRect& r = sched.rects[static_cast<std::size_t>(i)];
      r.core = i;
      r.tam_start = 0;
      r.width = d.width;
      r.start = t;
      r.finish = t + d.test_cycles;
      t = r.finish;
    }
    sched.makespan = t;
  } else {
    // Diagonal-length heuristic: order cores by descending normalised
    // diagonal of their preferred rectangle, then best-fit place each.
    std::int64_t t_max = 1;
    for (int i = 0; i < n; ++i) {
      if (cands[static_cast<std::size_t>(i)].empty()) continue;
      t_max = std::max(t_max, preferred(cands[static_cast<std::size_t>(i)]).test_cycles);
    }
    std::vector<int> order;
    for (int i = 0; i < n; ++i) {
      if (!cands[static_cast<std::size_t>(i)].empty()) order.push_back(i);
    }
    std::vector<double> diag2(static_cast<std::size_t>(n), 0.0);
    for (const int i : order) {
      const WrapperDesign& d = preferred(cands[static_cast<std::size_t>(i)]);
      const double wn = static_cast<double>(d.width) / static_cast<double>(W);
      const double tn =
          static_cast<double>(d.test_cycles) / static_cast<double>(t_max);
      diag2[static_cast<std::size_t>(i)] = wn * wn + tn * tn;
    }
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double da = diag2[static_cast<std::size_t>(a)];
      const double db = diag2[static_cast<std::size_t>(b)];
      if (da != db) return da > db;
      return a < b;  // deterministic tie-break
    });

    // free[line] = first cycle TAM line `line` becomes idle.
    std::vector<std::int64_t> free_at(static_cast<std::size_t>(W), 0);
    for (const int i : order) {
      bool placed = false;
      WrapperDesign best_d{};
      std::int64_t best_start = 0, best_finish = 0;
      int best_line = 0;
      for (const WrapperDesign& d : cands[static_cast<std::size_t>(i)]) {
        const int w = std::min(d.width, W);
        // Earliest-start window of height w: start = max(free) over the
        // window; lowest start wins, then lowest line index.
        std::int64_t win_start = 0;
        int win_line = 0;
        bool have = false;
        for (int a = 0; a + w <= W; ++a) {
          std::int64_t s = 0;
          for (int k = 0; k < w; ++k) {
            s = std::max(s, free_at[static_cast<std::size_t>(a + k)]);
          }
          if (!have || s < win_start) {
            have = true;
            win_start = s;
            win_line = a;
          }
        }
        const std::int64_t finish = win_start + d.test_cycles;
        if (!placed || finish < best_finish ||
            (finish == best_finish &&
             (w < best_d.width || (w == best_d.width && win_start < best_start)))) {
          placed = true;
          best_d = d;
          best_d.width = w;
          best_start = win_start;
          best_finish = finish;
          best_line = win_line;
        }
      }
      if (!placed) continue;
      ScheduledRect& r = sched.rects[static_cast<std::size_t>(i)];
      r.core = i;
      r.tam_start = best_line;
      r.width = best_d.width;
      r.start = best_start;
      r.finish = best_finish;
      for (int k = 0; k < best_d.width; ++k) {
        free_at[static_cast<std::size_t>(best_line + k)] = best_finish;
      }
    }
    for (const std::int64_t f : free_at) sched.makespan = std::max(sched.makespan, f);
  }

  if (sched.makespan > 0) {
    double occupied = 0.0;
    for (const ScheduledRect& r : sched.rects) {
      occupied += static_cast<double>(r.width) *
                  static_cast<double>(r.finish - r.start);
    }
    sched.utilization_pct =
        100.0 * occupied /
        (static_cast<double>(W) * static_cast<double>(sched.makespan));
  }
  return sched;
}

}  // namespace tpi
