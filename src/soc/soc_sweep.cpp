#include "soc/soc_sweep.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <memory>
#include <optional>
#include <utility>

#include "flow/flow_config.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

/// The cell's effective FlowConfig, for the ledger's config fingerprint.
FlowConfig cell_config(const SocSweepJob& job) {
  FlowConfig cfg;
  cfg.scale = job.options.scale;
  cfg.options = job.options.flow;
  cfg.stages = job.options.stages;
  cfg.soc.cores = job.options.cores;
  cfg.soc.tam_width = job.options.tam_width;
  cfg.soc.schedule = soc_schedule_name(job.options.schedule);
  return cfg;
}

}  // namespace

SocSweepRunner::SocSweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

SocSweepRunner::SocSweepRunner(const FlowConfig& config) {
  opts_.jobs = config.effective_bench_jobs();
  opts_.trace_dir = config.trace_dir;
  opts_.ledger = config.ledger;
}

int SocSweepRunner::effective_jobs() const {
  return opts_.jobs > 0 ? opts_.jobs : static_cast<int>(ThreadPool::default_concurrency());
}

std::vector<SocSweepJob> SocSweepRunner::grid(const std::vector<int>& cores,
                                              const std::vector<int>& tam_widths,
                                              const std::vector<double>& tp_percents,
                                              const FlowConfig& config) {
  std::vector<SocSweepJob> jobs;
  jobs.reserve(cores.size() * tam_widths.size() * tp_percents.size());
  for (const int n : cores) {
    for (const int w : tam_widths) {
      for (const double pct : tp_percents) {
        SocSweepJob job;
        char pct_str[32];
        std::snprintf(pct_str, sizeof pct_str, "%g", pct);
        job.label = "soc=" + std::to_string(n) + "/tam=" + std::to_string(w) +
                    "/tp=" + pct_str;
        job.options.cores = n;
        job.options.tam_width = w;
        job.options.schedule = soc_schedule_from_name(config.soc.schedule)
                                   .value_or(SocScheduleMethod::kDiagonal);
        job.options.scale = config.scale;
        job.options.flow = config.options;
        job.options.flow.tp_percent = pct;
        job.options.stages = config.stages;
        job.options.jobs = config.effective_bench_jobs();
        jobs.push_back(std::move(job));
      }
    }
  }
  return jobs;
}

SocSweepReport SocSweepRunner::run(const CellLibrary& lib,
                                   std::vector<SocSweepJob> jobs) const {
  SocSweepReport report;
  report.jobs = effective_jobs();
  report.cells.reserve(jobs.size());

  const std::string& trace_dir = opts_.trace_dir;
  if (!trace_dir.empty()) ::mkdir(trace_dir.c_str(), 0777);  // EEXIST is fine
  std::unique_ptr<Ledger> ledger;
  if (!opts_.ledger.empty()) ledger = std::make_unique<Ledger>(opts_.ledger);

  // One pool + one cache across the whole grid; cells run on this thread,
  // so the pool only ever executes leaf (core-flow) tasks.
  ThreadPool pool(static_cast<unsigned>(report.jobs));
  DesignCache cache(lib, std::size_t{256} << 20);

  const auto sweep_t0 = Clock::now();
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    SocSweepJob& job = jobs[i];
    if (opts_.progress) std::fprintf(stderr, "[soc-sweep] %s...\n", job.label.c_str());
    std::unique_ptr<TraceSink> sink;
    if (!trace_dir.empty()) {
      sink = std::make_unique<TraceSink>(static_cast<std::uint64_t>(i + 1), job.label);
    }
    const auto t0 = Clock::now();
    SocRunner runner(job.options);
    SocResult result;
    {
      std::optional<ScopedTraceSink> scope;
      if (sink != nullptr) scope.emplace(*sink);
      result = runner.run(lib, &pool, &cache);
    }
    const double wall = ms_since(t0);
    if (sink != nullptr) {
      sink->write_json(trace_dir + "/" + sanitize_trace_label(job.label) +
                       ".trace.json");
    }
    if (ledger != nullptr) {
      const JsonParseResult cfg_json = json_parse(cell_config(job).to_json());
      ledger->append(job.label, cfg_json.ok ? cfg_json.value : JsonValue(JsonObject{}),
                     soc_result_to_json_value(result));
    }
    report.cells.push_back({std::move(job), std::move(result), wall});
  }
  report.wall_ms = ms_since(sweep_t0);
  for (const SocSweepCellResult& cell : report.cells) {
    report.cpu_ms += cell.wall_ms;
    report.metrics.merge(cell.result.metrics);
  }
  return report;
}

std::string SocSweepReport::to_json() const {
  std::string out = "{\n  \"context\": {\n";
  out += "    \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "    \"num_cells\": " + std::to_string(cells.size()) + ",\n";
  out += "    \"wall_ms\": " + fmt_double(wall_ms) + ",\n";
  out += "    \"cpu_ms\": " + fmt_double(cpu_ms) + "\n";
  out += "  },\n";
  // Deterministic subset: bit-identical at any job count / SIMD backend.
  out += "  \"metrics\": " + metrics.to_json(MetricsSnapshot::kNoRuntime) + ",\n";
  out += "  \"benchmarks\": [\n";
  bool first = true;
  for (const SocSweepCellResult& cell : cells) {
    if (!first) out += ",\n";
    first = false;
    const SocResult& r = cell.result;
    out += "    {\"name\": \"" + cell.job.label + "\", ";
    out += "\"run_type\": \"iteration\", \"iterations\": 1, ";
    out += "\"real_time\": " + fmt_double(cell.wall_ms) + ", ";
    out += "\"time_unit\": \"ms\", ";
    out += "\"cores\": " + std::to_string(r.cores) + ", ";
    out += "\"tam_width\": " + std::to_string(r.tam_width) + ", ";
    out += "\"tp_percent\": " + fmt_double(cell.job.options.flow.tp_percent) + ", ";
    out += "\"schedule\": \"" + std::string(soc_schedule_name(r.schedule)) + "\", ";
    out += "\"chip_tat_cycles\": " + std::to_string(r.chip_tat_cycles) + ", ";
    out += "\"serial_tat_cycles\": " + std::to_string(r.serial_tat_cycles) + ", ";
    out += "\"tam_utilization_pct\": " + fmt_double(r.tam_utilization_pct) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool SocSweepReport::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_warn() << "SocSweepReport: cannot write " << path;
    return false;
  }
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) log_warn() << "SocSweepReport: short write to " << path;
  return ok;
}

}  // namespace tpi
