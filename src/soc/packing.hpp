// Chip-level test scheduling as rectangle bin packing (DESIGN.md §16).
//
// Every wrapped core contributes a family of rectangles — one per Pareto
// wrapper width w, of height w TAM lines and length T(w) test cycles
// (wrapper.hpp). Scheduling the chip test is packing one rectangle per
// core into a strip of fixed height `tam_width`, minimising the strip
// length (the chip test application time). The "diagonal" method is the
// diagonal-length heuristic of Islam et al.: cores are placed in
// descending order of normalised rectangle diagonal
//
//   diag(core)^2 = (w*/W)^2 + (T(w*)/T_max)^2
//
// (w* = the core's area-minimal preferred width), big awkward rectangles
// first; each placement tries every candidate width and every TAM window
// and commits the one finishing earliest. The "serial" method is the
// no-packing baseline: every core one after another over the full TAM.
//
// The packer is plain serial code over integer cycle counts — its output
// is a pure function of the candidate lists, so chip-level TAT is
// bit-identical at any job count and SIMD backend by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "soc/wrapper.hpp"

namespace tpi {

enum class SocScheduleMethod { kDiagonal, kSerial };

/// "diagonal" / "serial" (the SocKnobs::schedule spellings).
const char* soc_schedule_name(SocScheduleMethod method);
std::optional<SocScheduleMethod> soc_schedule_from_name(std::string_view name);

/// One core's committed slot in the chip schedule.
struct ScheduledRect {
  int core = 0;               ///< index into the candidate list
  int tam_start = 0;          ///< first TAM line, in [0, tam_width - width]
  int width = 1;              ///< TAM lines used (chosen candidate width)
  std::int64_t start = 0;     ///< first test cycle
  std::int64_t finish = 0;    ///< start + T(width)
};

struct SocSchedule {
  std::vector<ScheduledRect> rects;  ///< in core order
  int tam_width = 0;
  std::int64_t makespan = 0;         ///< chip test application time, cycles
  /// Occupied fraction of the tam_width x makespan strip, in percent.
  double utilization_pct = 0.0;
};

/// Pack one rectangle per core into a `tam_width`-line strip.
/// `candidates[i]` is core i's Pareto wrapper set (pareto_wrappers);
/// widths above tam_width are ignored, and a core whose candidates are all
/// too wide falls back to its narrowest one clamped to tam_width.
SocSchedule schedule_tests(const std::vector<std::vector<WrapperDesign>>& candidates,
                           int tam_width, SocScheduleMethod method);

}  // namespace tpi
