#include "soc/soc.hpp"

#include <algorithm>
#include <future>
#include <memory>
#include <utility>

#include "flow/flow_config.hpp"

namespace tpi {
namespace {

/// Budget of the private per-run cache (matches the server default).
constexpr std::size_t kPrivateCacheBytes = std::size_t{256} << 20;

/// Core size ladder: every third repetition of the profile set shrinks, so
/// a big chip mixes large and small cores — the shape rectangle packing
/// actually has to work for.
constexpr double kSizeLadder[] = {1.0, 0.7, 0.5};

}  // namespace

std::vector<SocCoreSpec> soc_core_specs(int cores, double scale) {
  const std::vector<CircuitProfile> base = paper_profiles();
  std::vector<SocCoreSpec> specs;
  specs.reserve(static_cast<std::size_t>(std::max(cores, 0)));
  for (int i = 0; i < cores; ++i) {
    const CircuitProfile& proto = base[static_cast<std::size_t>(i) % base.size()];
    const double factor =
        scale * kSizeLadder[(static_cast<std::size_t>(i) / base.size()) %
                            (sizeof kSizeLadder / sizeof kSizeLadder[0])];
    SocCoreSpec spec;
    spec.profile = scaled(proto, factor);
    spec.profile.name = proto.name;  // scaled() appends "_x<f>"; keep the paper name
    spec.label = "core" + std::to_string(i) + ":" + proto.name;
    specs.push_back(std::move(spec));
  }
  return specs;
}

SocOptions soc_options_from(const FlowConfig& config) {
  SocOptions opts;
  opts.cores = config.soc.cores;
  opts.tam_width = config.soc.tam_width;
  opts.schedule = soc_schedule_from_name(config.soc.schedule)
                      .value_or(SocScheduleMethod::kDiagonal);
  opts.scale = config.scale;
  opts.flow = config.options;
  opts.stages = config.stages;
  opts.jobs = config.effective_bench_jobs();
  return opts;
}

SocRunner::SocRunner(SocOptions opts) : opts_(std::move(opts)) {}

SocRunner::SocRunner(const FlowConfig& config) : opts_(soc_options_from(config)) {}

SocResult SocRunner::run(const CellLibrary& lib, ThreadPool* pool, DesignCache* cache,
                         const std::atomic<bool>* cancel) const {
  SocResult result;
  result.cores = opts_.cores;
  result.tam_width = std::max(opts_.tam_width, 1);
  result.schedule = opts_.schedule;

  const std::vector<SocCoreSpec> specs = soc_core_specs(opts_.cores, opts_.scale);

  std::unique_ptr<DesignCache> own_cache;
  if (cache == nullptr) {
    own_cache = std::make_unique<DesignCache>(lib, kPrivateCacheBytes);
    cache = own_cache.get();
  }
  std::unique_ptr<ThreadPool> own_pool;
  if (pool == nullptr) {
    own_pool = std::make_unique<ThreadPool>(
        opts_.jobs > 0 ? static_cast<unsigned>(opts_.jobs) : 0);
    pool = own_pool.get();
  }

  // Fan the per-core flows out; collect strictly in core order so the
  // merged result is independent of scheduling. future::get() rethrows a
  // core's exception here.
  std::vector<std::future<FlowResult>> futures;
  futures.reserve(specs.size());
  for (const SocCoreSpec& spec : specs) {
    futures.push_back(pool->submit([&lib, &spec, cache, cancel, this] {
      const std::shared_ptr<DesignCache::Entry> entry = cache->acquire(spec.profile);
      Netlist nl = entry->netlist();  // private copy; the journal survives
      FlowEngine engine(nl, spec.profile, opts_.flow);
      engine.set_job_label(spec.label);
      engine.design_db().adopt_views_from(entry->db());
      engine.set_cancel_token(cancel);
      engine.run(opts_.stages);
      return engine.result();
    }));
  }

  std::vector<std::vector<WrapperDesign>> candidates;
  candidates.reserve(specs.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    SocCoreResult core;
    core.label = specs[i].label;
    core.profile_name = specs[i].profile.name;
    core.flow = futures[i].get();
    core.envelope = core_envelope(core.label, specs[i].profile, core.flow);
    result.cancelled = result.cancelled || core.flow.cancelled;
    result.metrics.merge(core.flow.metrics);
    candidates.push_back(pareto_wrappers(core.envelope, result.tam_width));
    result.per_core.push_back(std::move(core));
  }

  const SocSchedule sched = schedule_tests(candidates, result.tam_width, opts_.schedule);
  const SocSchedule serial =
      schedule_tests(candidates, result.tam_width, SocScheduleMethod::kSerial);
  result.chip_tat_cycles = sched.makespan;
  result.serial_tat_cycles = serial.makespan;
  result.tam_utilization_pct = sched.utilization_pct;
  for (std::size_t i = 0; i < result.per_core.size(); ++i) {
    SocCoreResult& core = result.per_core[i];
    const ScheduledRect& r = sched.rects[i];
    core.width = r.width;
    core.tam_start = r.tam_start;
    core.start_cycle = r.start;
    core.finish_cycle = r.finish;
    core.test_cycles = r.finish - r.start;
    const WrapperDesign chosen = design_wrapper(core.envelope, r.width);
    core.scan_in = chosen.scan_in;
    core.scan_out = chosen.scan_out;
  }

  // Chip-level deterministic metrics ride the merged snapshot, so they
  // reach sweep reports, the ledger and the Prometheus exposition through
  // the existing plumbing.
  MetricsRegistry chip;
  chip.set("soc.cores", result.cores);
  chip.set("soc.tam_width", result.tam_width);
  chip.set("soc.chip_tat_cycles", static_cast<double>(result.chip_tat_cycles));
  chip.set("soc.serial_tat_cycles", static_cast<double>(result.serial_tat_cycles));
  chip.set("soc.tam_utilization_pct", result.tam_utilization_pct);
  for (const SocCoreResult& core : result.per_core) {
    chip.add("soc.patterns_total", static_cast<std::uint64_t>(
                                       std::max(core.envelope.patterns, 0)));
  }
  result.metrics.merge(chip.snapshot());
  return result;
}

JsonValue soc_result_to_json_value(const SocResult& result) {
  JsonValue o{JsonObject{}};
  o.set("cores", result.cores);
  o.set("tam_width", result.tam_width);
  o.set("schedule", soc_schedule_name(result.schedule));
  o.set("chip_tat_cycles", result.chip_tat_cycles);
  o.set("serial_tat_cycles", result.serial_tat_cycles);
  o.set("tam_utilization_pct", result.tam_utilization_pct);
  if (result.cancelled) o.set("cancelled", true);
  JsonArray cores;
  cores.reserve(result.per_core.size());
  for (const SocCoreResult& core : result.per_core) {
    JsonValue c{JsonObject{}};
    c.set("label", core.label);
    c.set("profile", core.profile_name);
    c.set("width", core.width);
    c.set("tam_start", core.tam_start);
    c.set("start", core.start_cycle);
    c.set("finish", core.finish_cycle);
    c.set("test_cycles", core.test_cycles);
    c.set("scan_in", core.scan_in);
    c.set("scan_out", core.scan_out);
    c.set("patterns", core.envelope.patterns);
    c.set("scan_ffs", core.envelope.scan_ffs);
    c.set("chains", core.envelope.chains);
    c.set("fault_coverage_pct", core.flow.fault_coverage_pct);
    cores.push_back(std::move(c));
  }
  o.set("per_core", JsonValue(std::move(cores)));
  const JsonParseResult metrics =
      json_parse(result.metrics.to_json(MetricsSnapshot::kNoRuntime));
  o.set("metrics", metrics.ok ? metrics.value : JsonValue(JsonObject{}));
  return o;
}

std::string soc_result_to_json(const SocResult& result) {
  return soc_result_to_json_value(result).serialise();
}

}  // namespace tpi
