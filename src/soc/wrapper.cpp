#include "soc/wrapper.hpp"

#include <algorithm>
#include <queue>

namespace tpi {
namespace {

/// Min-heap key for LPT balancing: smallest load first, lowest wrapper
/// chain index on ties — the deterministic tie-break the bit-identity
/// tests rely on.
struct Bin {
  std::int64_t load = 0;
  int index = 0;
  bool operator>(const Bin& o) const {
    if (load != o.load) return load > o.load;
    return index > o.index;
  }
};
using BinHeap = std::priority_queue<Bin, std::vector<Bin>, std::greater<Bin>>;

}  // namespace

CoreTestEnvelope core_envelope(std::string label, const CircuitProfile& profile,
                               const FlowResult& result) {
  CoreTestEnvelope env;
  env.label = std::move(label);
  env.scan_ffs = result.num_ffs;
  env.chains = std::max(result.num_chains, result.num_ffs > 0 ? 1 : 0);
  env.inputs = profile.num_pis;
  env.outputs = profile.num_pos;
  env.patterns = result.saf_patterns;
  env.capture_cycles = result.atpg.fault_model == FaultModel::kTransition ? 2 : 1;
  return env;
}

WrapperDesign design_wrapper(const CoreTestEnvelope& core, int width) {
  WrapperDesign d;
  d.width = std::max(width, 1);

  // Internal chain lengths: the scan stitcher balances FFs over
  // `core.chains` chains, so reconstruct that split (longest first for LPT).
  std::vector<std::int64_t> internal;
  if (core.chains > 0 && core.scan_ffs > 0) {
    internal.reserve(static_cast<std::size_t>(core.chains));
    const std::int64_t base = core.scan_ffs / core.chains;
    const std::int64_t extra = core.scan_ffs % core.chains;
    for (int k = 0; k < core.chains; ++k) {
      internal.push_back(base + (k < extra ? 1 : 0));
    }
    std::sort(internal.begin(), internal.end(), std::greater<>());
  }

  // LPT: longest internal chain onto the least-loaded wrapper chain.
  std::vector<std::int64_t> load(static_cast<std::size_t>(d.width), 0);
  {
    BinHeap heap;
    for (int k = 0; k < d.width; ++k) heap.push({0, k});
    for (const std::int64_t len : internal) {
      Bin b = heap.top();
      heap.pop();
      b.load += len;
      load[static_cast<std::size_t>(b.index)] = b.load;
      heap.push(b);
    }
  }

  // Input wrapper cells prepend to the scan-in path, output cells append
  // to the scan-out path; spread each kind one cell at a time onto the
  // currently shortest side.
  auto spread = [&](int cells) {
    std::vector<std::int64_t> side = load;
    BinHeap heap;
    for (int k = 0; k < d.width; ++k) heap.push({side[static_cast<std::size_t>(k)], k});
    for (int c = 0; c < cells; ++c) {
      Bin b = heap.top();
      heap.pop();
      b.load += 1;
      side[static_cast<std::size_t>(b.index)] = b.load;
      heap.push(b);
    }
    return *std::max_element(side.begin(), side.end());
  };
  d.scan_in = spread(core.inputs);
  d.scan_out = spread(core.outputs);

  const std::int64_t longest = std::max(d.scan_in, d.scan_out);
  const std::int64_t shortest = std::min(d.scan_in, d.scan_out);
  const std::int64_t p = core.patterns;
  d.test_cycles = (core.capture_cycles + longest) * p + shortest;
  return d;
}

std::vector<WrapperDesign> pareto_wrappers(const CoreTestEnvelope& core, int max_width) {
  std::vector<WrapperDesign> out;
  std::int64_t best = -1;
  for (int w = 1; w <= std::max(max_width, 1); ++w) {
    WrapperDesign d = design_wrapper(core, w);
    if (best < 0 || d.test_cycles < best) {
      best = d.test_cycles;
      out.push_back(d);
    }
  }
  return out;
}

}  // namespace tpi
