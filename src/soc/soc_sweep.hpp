// Sweep runner for SOC-scale grids: cores x TAM width x tp_percent, each
// cell one full chip (SocRunner). The parallelism is inverted relative to
// SweepRunner — cells run sequentially on the caller thread while each
// cell's per-core flows fan out onto one shared ThreadPool (the pool has
// no work stealing, so nesting cell tasks over core tasks on one pool
// could deadlock). A shared DesignCache spans the grid: every cell
// re-instantiates the same scaled paper profiles, so later cells hit warm
// entries.
//
// Reporting mirrors SweepRunner: google-benchmark-style JSON with one
// entry per chip, per-cell flight-recorder traces under
// <trace_dir>/<sanitize_trace_label(label)>.trace.json, and one ledger
// line per chip appended in grid order.
#pragma once

#include <string>
#include <vector>

#include "flow/sweep.hpp"
#include "soc/soc.hpp"

namespace tpi {

struct SocSweepJob {
  std::string label;  ///< report key, e.g. "soc=8/tam=32/tp=1"
  SocOptions options;
};

struct SocSweepCellResult {
  SocSweepJob job;
  SocResult result;
  double wall_ms = 0.0;
};

struct SocSweepReport {
  std::vector<SocSweepCellResult> cells;  ///< in job submission order
  int jobs = 1;                           ///< core-flow worker threads
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  /// Per-cell SocResult metrics merged in grid order (deterministic subset
  /// serialised, as in SweepReport).
  MetricsSnapshot metrics;

  /// google-benchmark-style JSON: one "benchmarks" entry per chip carrying
  /// cores / tam_width / tp_percent / chip_tat_cycles / serial_tat_cycles /
  /// tam_utilization_pct. Everything except the context block and
  /// real_time is bit-identical at any job count and SIMD backend.
  std::string to_json() const;
  bool write_json(const std::string& path) const;
};

class SocSweepRunner {
 public:
  explicit SocSweepRunner(SweepOptions opts = {});
  /// Runner sized from a unified FlowConfig (jobs, trace_dir, ledger).
  explicit SocSweepRunner(const FlowConfig& config);

  /// Run all cells (sequentially; per-core flows in parallel). A cell's
  /// exception propagates after the shared pool drains.
  SocSweepReport run(const CellLibrary& lib, std::vector<SocSweepJob> jobs) const;

  /// The SOC grid: every (cores, tam_width, tp_percent) triple in
  /// cores-major order with labels "soc=<n>/tam=<w>/tp=<pct>". Cells
  /// inherit config.options / config.stages / config.scale.
  static std::vector<SocSweepJob> grid(const std::vector<int>& cores,
                                       const std::vector<int>& tam_widths,
                                       const std::vector<double>& tp_percents,
                                       const FlowConfig& config);

  int effective_jobs() const;

 private:
  SweepOptions opts_;
};

}  // namespace tpi
