// Per-core test wrappers: serialise an embedded core's test onto a
// configurable slice of the chip-level Test Access Mechanism (TAM).
//
// An SOC job (DESIGN.md §16) runs the full single-core flow once per
// embedded core and then has to deliver every core's pattern set through
// the chip pins. The IEEE 1500-style wrapper model used here follows
// Iyengar/Chakrabarty wrapper-chain balancing: a core tested over `w` TAM
// lines forms `w` wrapper scan chains, each the concatenation
// [input wrapper cells][internal scan chains][output wrapper cells]. With
//
//   s_i = longest scan-IN  path  = max_k (inputs_k + internal_k)
//   s_o = longest scan-OUT path  = max_k (internal_k + outputs_k)
//
// the core's test time at width w is the repo-wide TAT generalisation
// (l + c)·p + l applied to the wrapper:
//
//   T(w) = (c + max(s_i, s_o)) · p + min(s_i, s_o)
//
// where p is the core's real post-TPI compact pattern count and c the
// capture cycles (1 stuck-at, 2 transition LOC). Chains are balanced with
// the LPT heuristic (longest internal chain into the currently shortest
// wrapper chain; IO cells one at a time onto the shortest side), fully
// deterministic: ties break on the lowest wrapper-chain index.
//
// pareto_wrappers() evaluates T(w) for w = 1..max_width and keeps only the
// widths that strictly improve test time — the rectangle candidates the
// packer in packing.hpp chooses from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "circuits/profiles.hpp"
#include "flow/flow.hpp"

namespace tpi {

/// Everything the wrapper/TAM layer needs to know about one finished core
/// flow: the scan structure and the real post-TPI pattern count.
struct CoreTestEnvelope {
  std::string label;      ///< e.g. "core0:s38417"
  int scan_ffs = 0;       ///< internal scan flip-flops (FlowResult::num_ffs)
  int chains = 0;         ///< internal scan chains (FlowResult::num_chains)
  int inputs = 0;         ///< functional PIs needing input wrapper cells
  int outputs = 0;        ///< functional POs needing output wrapper cells
  int patterns = 0;       ///< post-TPI compact pattern count (saf_patterns)
  int capture_cycles = 1; ///< 1 stuck-at, 2 transition LOC
};

/// Envelope of a finished flow run: scan counts and pattern count from the
/// result, IO widths from the profile, capture cycles from the fault model.
CoreTestEnvelope core_envelope(std::string label, const CircuitProfile& profile,
                               const FlowResult& result);

/// One evaluated wrapper configuration of a core.
struct WrapperDesign {
  int width = 1;                 ///< TAM lines / wrapper scan chains
  std::int64_t scan_in = 0;      ///< s_i: longest scan-in path
  std::int64_t scan_out = 0;     ///< s_o: longest scan-out path
  std::int64_t test_cycles = 0;  ///< T(width)
};

/// Balanced wrapper design of `core` at exactly `width` TAM lines
/// (width >= 1; chains beyond the FF supply end up IO-only).
WrapperDesign design_wrapper(const CoreTestEnvelope& core, int width);

/// Pareto-optimal wrapper set for widths 1..max_width: ascending width,
/// strictly decreasing test_cycles (width w is kept only when it beats
/// every narrower wrapper). Never empty for max_width >= 1.
std::vector<WrapperDesign> pareto_wrappers(const CoreTestEnvelope& core, int max_width);

}  // namespace tpi
