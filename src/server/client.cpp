#include "server/client.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace tpi {
namespace {

void set_err(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what + ": " + std::strerror(errno);
}

}  // namespace

FlowClient::~FlowClient() { close(); }

void FlowClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
}

bool FlowClient::connect(const std::string& socket_path, std::string* error) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);
  fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd_ < 0) {
    set_err(error, "socket");
    return false;
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    set_err(error, "connect " + socket_path);
    close();
    return false;
  }
  return true;
}

bool FlowClient::call(const std::string& request_line, std::string* response_line,
                      std::string* error) {
  if (fd_ < 0) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  std::string out = request_line;
  out += '\n';
  std::size_t off = 0;
  while (off < out.size()) {
    const ssize_t n = ::send(fd_, out.data() + off, out.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      set_err(error, "send");
      return false;
    }
    off += static_cast<std::size_t>(n);
  }

  char chunk[4096];
  for (;;) {
    const std::size_t pos = buf_.find('\n');
    if (pos != std::string::npos) {
      if (response_line != nullptr) *response_line = buf_.substr(0, pos);
      buf_.erase(0, pos + 1);
      return true;
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n <= 0) {
      set_err(error, "recv");
      return false;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

bool FlowClient::rpc(std::string_view method, std::string_view params_json,
                     std::string* response_line, std::string* error) {
  std::string req = "{\"id\": ";
  req += std::to_string(next_id_++);
  req += ", \"method\": \"";
  req.append(method);
  req += '"';
  if (!params_json.empty()) {
    req += ", \"params\": ";
    req.append(params_json);
  }
  req += '}';
  return call(req, response_line, error);
}

}  // namespace tpi
