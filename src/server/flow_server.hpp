// Flow-as-a-service: a long-lived daemon running Fig. 2 flows on demand.
//
// The server accepts newline-delimited JSON-RPC requests — one JSON object
// per line, one response line per request (schema in DESIGN.md §12):
//
//   {"id": 1, "method": "submit", "params": { ...FlowConfig JSON... }}
//   {"id": 1, "result": {"job": 7, "state": "queued"}}
//
// Methods: submit, status, cancel, result, stats, metrics, trace,
// shutdown. `params` of
// submit is a FlowConfig object layered over the server's base config
// (FlowConfig::from_json), so per-request values always beat the daemon's
// environment. Jobs are scheduled on the shared ThreadPool with the
// config's `priority` (higher first, FIFO within a level) and run with
// cooperative cancellation: the cancel RPC flips the job's token, which
// FlowEngine re-checks at every stage boundary.
//
// Each job runs against a private copy of a DesignCache entry's golden
// netlist with the entry's warm views adopted, so repeat requests for one
// profile skip circuit generation and the first topo/comb/testability
// build. Results are bit-identical to a single-shot FlowEngine run of the
// same FlowConfig: flow_result_to_json() serialises the deterministic
// subset and excludes the designdb.* counters, which are the one place a
// warm cache legitimately (and deterministically) differs from a cold run.
//
// The JSON-RPC core (handle_request) is transport-free and fully
// thread-safe; listen() adds the AF_UNIX front end (one accept thread,
// one thread per connection). Tests drive handle_request in process, the
// daemon binary and the load-test bench go through the socket.
//
// Telemetry (PR 8, DESIGN.md §14): a job submitted with "record_trace"
// (or while the server's config carries a trace_dir) runs under its own
// TraceSink, so its spans never interleave with other jobs'; the `trace`
// RPC returns that Chrome-trace JSON and, when trace_dir is set, the
// server also writes <trace_dir>/job_<id>.trace.json. The `metrics` RPC
// exposes the server-owned registry — cache counters, queue-wait and
// per-stage wall-time histograms with p50/p95/p99 — as Prometheus text
// (default) or JSON; tools/tpi_top.py polls it. When the config carries a
// ledger path (TPI_LEDGER), every job that finishes kDone appends its
// deterministic flow result + config fingerprint to the run ledger.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "flow/flow.hpp"
#include "flow/flow_config.hpp"
#include "flow/flow_json.hpp"  // flow_result_to_json (moved in PR 8)
#include "circuits/design_cache.hpp"
#include "util/ledger.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tpi {

enum class JobState : std::uint8_t { kQueued, kRunning, kDone, kFailed, kCancelled };
const char* job_state_name(JobState state);
inline bool job_state_terminal(JobState s) {
  return s == JobState::kDone || s == JobState::kFailed || s == JobState::kCancelled;
}

struct FlowServerOptions {
  int workers = 0;    ///< flow worker threads (<= 0: hardware concurrency)
  int cache_mb = 256; ///< DesignCache budget
  std::string socket_path = "tpi_server.sock";
  /// Admission control: a submit arriving while this many jobs already
  /// wait in the pool queue (not yet running) is rejected with a
  /// structured "queue_full" error carrying the current depth, instead of
  /// queueing unboundedly. 0 = unlimited (the seed behavior). From
  /// FlowConfig::server_queue_limit / TPI_SERVER_QUEUE_LIMIT.
  int max_queue_depth = 0;
  /// Test hook: called on the worker thread right after a job leaves the
  /// queue (state already kRunning), before any flow work. May block —
  /// tests use it to gate scheduling deterministically.
  std::function<void(std::uint64_t job_id)> on_job_start;
};

class FlowServer {
 public:
  /// Options derived from `base`: workers = effective_bench_jobs(),
  /// cache_mb / socket_path from the server_* fields. `base` is also the
  /// layer submit params are applied over.
  explicit FlowServer(const FlowConfig& base);
  FlowServer(const FlowConfig& base, FlowServerOptions opts);
  ~FlowServer();

  FlowServer(const FlowServer&) = delete;
  FlowServer& operator=(const FlowServer&) = delete;

  /// Dispatch one JSON-RPC request line, returning the response line
  /// (without trailing newline). Never throws; protocol errors come back
  /// as {"id":...,"error":"..."}. Thread-safe.
  std::string handle_request(const std::string& line);

  /// Bind the unix socket and start serving connections. False (with
  /// *error set) on socket errors; the path is unlinked first.
  bool listen(std::string* error = nullptr);
  /// Block until a shutdown RPC arrives (or stop() is called).
  void wait_until_shutdown();
  /// Stop the socket front end and drain queued jobs. Idempotent.
  void stop();
  bool shutdown_requested() const;

  const std::string& socket_path() const { return opts_.socket_path; }
  const CellLibrary& library() const { return *lib_; }
  DesignCache::Stats cache_stats() const { return cache_->stats(); }
  /// Snapshot of the server-owned registry: server.cache.* counters and
  /// the server.queue_wait_ns histogram.
  MetricsSnapshot metrics_snapshot() const { return metrics_.snapshot(); }

 private:
  struct Job {
    std::uint64_t id = 0;
    FlowConfig config;
    std::atomic<bool> cancel{false};
    std::chrono::steady_clock::time_point submitted;
    // Guarded by FlowServer::mu_.
    JobState state = JobState::kQueued;
    std::uint64_t queue_wait_ns = 0;
    std::string flow_json;   ///< flow_result_to_json payload once terminal
    std::string trace_json;  ///< per-job Chrome trace once terminal (if recorded)
    std::string error;       ///< set when state == kFailed
  };

  void run_job(const std::shared_ptr<Job>& job);
  std::shared_ptr<Job> find_job(std::uint64_t id);
  void accept_loop();
  void serve_connection(int fd);

  FlowConfig base_;
  FlowServerOptions opts_;
  std::unique_ptr<CellLibrary> lib_;
  MetricsRegistry metrics_;  ///< server-owned: server.* metrics only
  std::unique_ptr<DesignCache> cache_;
  std::unique_ptr<Ledger> ledger_;  ///< run ledger when base config has a path
  std::unique_ptr<ThreadPool> pool_;

  mutable std::mutex mu_;
  std::condition_variable job_cv_;       ///< signalled on any job state change
  std::condition_variable shutdown_cv_;
  std::map<std::uint64_t, std::shared_ptr<Job>> jobs_;
  std::uint64_t next_job_id_ = 1;
  std::uint64_t jobs_submitted_ = 0;
  bool shutdown_requested_ = false;
  bool stopping_ = false;

  // Socket front end.
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::mutex conn_mu_;
  std::unordered_set<int> conn_fds_;
  std::vector<std::thread> conn_threads_;
};

}  // namespace tpi
