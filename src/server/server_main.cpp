// tpi_flow_server — the flow daemon. Configuration comes from the
// environment via FlowConfig::from_env (TPI_SERVER_SOCKET,
// TPI_SERVER_CACHE_MB, TPI_BENCH_JOBS for the worker count, TPI_BENCH_SCALE
// as the default job scale, ...); a few flags override it for ad-hoc runs:
//
//   tpi_flow_server [--socket PATH] [--workers N] [--cache-mb N]
//
// The daemon serves until a shutdown RPC arrives, then drains queued jobs
// and exits 0.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "flow/flow_config.hpp"
#include "server/flow_server.hpp"

int main(int argc, char** argv) {
  tpi::FlowConfig config = tpi::FlowConfig::from_env();
  tpi::FlowServerOptions opts;
  opts.workers = config.effective_bench_jobs();
  opts.cache_mb = config.server_cache_mb;
  opts.socket_path = config.server_socket;
  opts.max_queue_depth = config.server_queue_limit;

  for (int i = 1; i < argc; ++i) {
    const auto need_value = [&](const char* flag) {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "tpi_flow_server: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      opts.socket_path = need_value("--socket");
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      opts.workers = std::atoi(need_value("--workers"));
    } else if (std::strcmp(argv[i], "--cache-mb") == 0) {
      opts.cache_mb = std::atoi(need_value("--cache-mb"));
    } else {
      std::fprintf(stderr,
                   "usage: tpi_flow_server [--socket PATH] [--workers N] [--cache-mb N]\n");
      return 2;
    }
  }

  config.apply_process_settings();
  tpi::FlowServer server(config, opts);
  std::string error;
  if (!server.listen(&error)) {
    std::fprintf(stderr, "tpi_flow_server: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "[server] listening on %s (%d workers, %d MiB cache)\n",
               server.socket_path().c_str(), opts.workers, opts.cache_mb);
  server.wait_until_shutdown();
  server.stop();
  const tpi::DesignCache::Stats cs = server.cache_stats();
  std::fprintf(stderr, "[server] shut down: cache hits=%llu misses=%llu evictions=%llu\n",
               static_cast<unsigned long long>(cs.hits),
               static_cast<unsigned long long>(cs.misses),
               static_cast<unsigned long long>(cs.evictions));
  return 0;
}
