// Minimal blocking client for the flow server's newline-delimited
// JSON-RPC protocol: connect to the AF_UNIX socket, send one request line,
// read one response line. Used by the load-test bench and the socket
// round-trip tests; request construction stays with the caller (rpc() adds
// the {"id","method","params"} envelope).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tpi {

class FlowClient {
 public:
  FlowClient() = default;
  ~FlowClient();

  FlowClient(const FlowClient&) = delete;
  FlowClient& operator=(const FlowClient&) = delete;

  /// Connect to the server socket. False (with *error set) on failure;
  /// retries are the caller's business.
  bool connect(const std::string& socket_path, std::string* error = nullptr);
  bool connected() const { return fd_ >= 0; }
  void close();

  /// Send `request_line` (newline appended) and block for the response
  /// line (returned without the newline). False on I/O errors.
  bool call(const std::string& request_line, std::string* response_line,
            std::string* error = nullptr);

  /// call() with the JSON-RPC envelope built for you: `params_json` must
  /// be a JSON value or empty (omitted). Ids are assigned sequentially.
  bool rpc(std::string_view method, std::string_view params_json, std::string* response_line,
           std::string* error = nullptr);

 private:
  int fd_ = -1;
  std::uint64_t next_id_ = 1;
  std::string buf_;  ///< bytes read past the last newline
};

}  // namespace tpi
