#include "server/flow_server.hpp"

#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <utility>

#include "soc/soc.hpp"
#include "util/json.hpp"
#include "util/log.hpp"

namespace tpi {
namespace {

using Clock = std::chrono::steady_clock;

// "s38417/tp=2" (single-core) or "soc=8/tam=32/tp=2" (SOC job) — the
// label used for the trace process row and the ledger line, matching the
// SweepRunner / SocSweepRunner grid conventions.
std::string job_label(const FlowConfig& cfg) {
  char pct[32];
  std::snprintf(pct, sizeof pct, "%g", cfg.options.tp_percent);
  if (cfg.soc.cores > 0) {
    return "soc=" + std::to_string(cfg.soc.cores) +
           "/tam=" + std::to_string(cfg.soc.tam_width) + "/tp=" + pct;
  }
  return cfg.profile + "/tp=" + pct;
}

bool send_all(int fd, const std::string& data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n <= 0) return false;
    off += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "queued";
    case JobState::kRunning: return "running";
    case JobState::kDone: return "done";
    case JobState::kFailed: return "failed";
    case JobState::kCancelled: return "cancelled";
  }
  return "?";
}

FlowServer::FlowServer(const FlowConfig& base)
    : FlowServer(base, [&base] {
        FlowServerOptions o;
        o.workers = base.effective_bench_jobs();
        o.cache_mb = base.server_cache_mb;
        o.socket_path = base.server_socket;
        o.max_queue_depth = base.server_queue_limit;
        return o;
      }()) {}

FlowServer::FlowServer(const FlowConfig& base, FlowServerOptions opts)
    : base_(base), opts_(std::move(opts)), lib_(make_phl130_library()) {
  cache_ = std::make_unique<DesignCache>(
      *lib_, static_cast<std::size_t>(opts_.cache_mb) << 20, &metrics_);
  if (!base_.ledger.empty()) ledger_ = std::make_unique<Ledger>(base_.ledger);
  const int workers = opts_.workers > 0
                          ? opts_.workers
                          : static_cast<int>(ThreadPool::default_concurrency());
  pool_ = std::make_unique<ThreadPool>(static_cast<unsigned>(workers));
}

FlowServer::~FlowServer() { stop(); }

std::shared_ptr<FlowServer::Job> FlowServer::find_job(std::uint64_t id) {
  const auto it = jobs_.find(id);
  return it == jobs_.end() ? nullptr : it->second;
}

void FlowServer::run_job(const std::shared_ptr<Job>& job) {
  const std::uint64_t wait_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() - job->submitted)
          .count());
  metrics_.observe("server.queue_wait_ns", static_cast<double>(wait_ns));
  {
    std::lock_guard<std::mutex> lock(mu_);
    job->queue_wait_ns = wait_ns;
    if (job->cancel.load()) {
      job->state = JobState::kCancelled;
      metrics_.add("server.jobs_cancelled");
      job_cv_.notify_all();
      return;
    }
    job->state = JobState::kRunning;
  }
  job_cv_.notify_all();
  if (opts_.on_job_start) opts_.on_job_start(job->id);

  // Per-job flight recorder: spans from this worker thread land in the
  // job's private sink instead of the global TPI_TRACE log, so concurrent
  // traced jobs never interleave.
  const std::string label = job_label(job->config);
  const bool record = job->config.record_trace || !job->config.trace_dir.empty();
  std::unique_ptr<TraceSink> sink;
  if (record) sink = std::make_unique<TraceSink>(job->id, label);

  std::string flow_json;
  std::string error;
  bool cancelled = false;
  try {
    if (job->config.soc.cores > 0) {
      // SOC job: per-core flows on a private pool (this thread is itself a
      // pool worker and the pool has no work stealing, so nesting core
      // tasks onto pool_ could deadlock); the daemon's design cache is
      // shared, so repeated chips hit warm cores.
      SocRunner runner(job->config);
      SocResult res;
      {
        std::optional<ScopedTraceSink> scope;
        if (sink != nullptr) scope.emplace(*sink);
        res = runner.run(*lib_, nullptr, cache_.get(), &job->cancel);
      }
      cancelled = res.cancelled;
      flow_json = soc_result_to_json(res);
      metrics_.observe("server.soc.chip_tat_cycles",
                       static_cast<double>(res.chip_tat_cycles));
      if (!cancelled) metrics_.add("server.soc.jobs_done");
      if (!cancelled && ledger_ != nullptr) {
        const JsonParseResult cfg = json_parse(job->config.to_json());
        ledger_->append(label, cfg.ok ? cfg.value : JsonValue(JsonObject{}),
                        soc_result_to_json_value(res));
      }
    } else {
      CircuitProfile profile;
      std::string perr;
      if (!job->config.resolve_profile(profile, &perr)) throw std::invalid_argument(perr);
      const std::shared_ptr<DesignCache::Entry> entry = cache_->acquire(profile);
      Netlist nl = entry->netlist();  // private copy; the journal survives
      FlowEngine engine(nl, profile, job->config.options);
      engine.design_db().adopt_views_from(entry->db());
      engine.set_cancel_token(&job->cancel);
      {
        std::optional<ScopedTraceSink> scope;
        if (sink != nullptr) scope.emplace(*sink);
        engine.run(job->config.stages);
      }
      const FlowResult& res = engine.result();
      cancelled = res.cancelled;
      flow_json = flow_result_to_json(res);
      for (const Stage s : kAllStages) {
        if (!engine.stage_ran(s)) continue;
        metrics_.observe(std::string("server.stage_ms.") + stage_name(s),
                         res.timings[s]);
      }
      if (!cancelled && ledger_ != nullptr) {
        const JsonParseResult cfg = json_parse(job->config.to_json());
        ledger_->append(label, cfg.ok ? cfg.value : JsonValue(JsonObject{}),
                        flow_result_to_json_value(res));
      }
    }
  } catch (const std::exception& e) {
    error = e.what();
  }

  std::string trace_json;
  if (sink != nullptr) {
    trace_json = sink->to_json();
    if (!job->config.trace_dir.empty()) {
      ::mkdir(job->config.trace_dir.c_str(), 0777);  // EEXIST is fine
      sink->write_json(job->config.trace_dir + "/job_" + std::to_string(job->id) +
                       ".trace.json");
    }
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    job->trace_json = std::move(trace_json);
    if (!error.empty()) {
      job->error = error;
      job->state = JobState::kFailed;
    } else {
      job->flow_json = std::move(flow_json);
      job->state = cancelled ? JobState::kCancelled : JobState::kDone;
    }
    switch (job->state) {
      case JobState::kDone: metrics_.add("server.jobs_done"); break;
      case JobState::kFailed: metrics_.add("server.jobs_failed"); break;
      case JobState::kCancelled: metrics_.add("server.jobs_cancelled"); break;
      default: break;
    }
  }
  job_cv_.notify_all();
}

std::string FlowServer::handle_request(const std::string& line) {
  JsonValue id;  // null until the request yields one
  const auto respond = [&id](JsonValue result) {
    JsonValue resp{JsonObject{}};
    resp.set("id", id);
    resp.set("result", std::move(result));
    return resp.serialise();
  };
  const auto fail = [&id](const std::string& message) {
    JsonValue resp{JsonObject{}};
    resp.set("id", id);
    resp.set("error", message);
    return resp.serialise();
  };

  const JsonParseResult parsed = json_parse(line);
  if (!parsed.ok) return fail("parse error: " + parsed.error);
  if (!parsed.value.is_object()) return fail("request must be a JSON object");
  if (const JsonValue* v = parsed.value.find("id")) id = *v;
  const JsonValue* method = parsed.value.find("method");
  if (method == nullptr || !method->is_string()) return fail("missing \"method\" string");
  const JsonValue* params = parsed.value.find("params");
  const std::string& name = method->as_string();

  const auto job_param = [&](std::shared_ptr<Job>& out, std::string* err) {
    const JsonValue* j = params != nullptr ? params->find("job") : nullptr;
    if (j == nullptr || !j->is_number()) {
      *err = "params.job: expected a job id";
      return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    out = find_job(static_cast<std::uint64_t>(j->as_number()));
    if (out == nullptr) {
      *err = "unknown job " + std::to_string(static_cast<std::uint64_t>(j->as_number()));
      return false;
    }
    return true;
  };

  if (name == "submit") {
    const std::string params_text =
        params != nullptr ? params->serialise() : std::string("{}");
    FlowConfig cfg;
    std::string err;
    if (!FlowConfig::from_json(params_text, base_, cfg, &err)) return fail(err);
    // SOC jobs compose cores from the whole paper set; the "profile" key
    // is ignored for them, so only single-core submissions vet it here.
    if (cfg.soc.cores == 0) {
      CircuitProfile profile;
      if (!cfg.resolve_profile(profile, &err)) return fail(err);
    }

    // Admission control: reject instead of queueing when the pool backlog
    // is at the limit. The depth is advisory (another submit may race in),
    // but the bound holds: a job is only enqueued after this check.
    if (opts_.max_queue_depth > 0) {
      const std::size_t depth = pool_->pending();
      if (depth >= static_cast<std::size_t>(opts_.max_queue_depth)) {
        metrics_.add("server.jobs_rejected");
        JsonValue resp{JsonObject{}};
        resp.set("id", id);
        resp.set("error", "queue_full");
        resp.set("queue_depth", static_cast<std::int64_t>(depth));
        resp.set("queue_limit", opts_.max_queue_depth);
        return resp.serialise();
      }
    }

    auto job = std::make_shared<Job>();
    job->config = std::move(cfg);
    job->submitted = Clock::now();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (shutdown_requested_ || stopping_) return fail("server is shutting down");
      job->id = next_job_id_++;
      jobs_[job->id] = job;
      ++jobs_submitted_;
    }
    try {
      pool_->submit_prioritized(job->config.priority, [this, job] { run_job(job); });
    } catch (const std::exception& e) {
      std::lock_guard<std::mutex> lock(mu_);
      job->state = JobState::kFailed;
      job->error = e.what();
    }
    JsonValue result{JsonObject{}};
    result.set("job", static_cast<std::int64_t>(job->id));
    result.set("state", job_state_name(JobState::kQueued));
    return respond(std::move(result));
  }

  if (name == "status") {
    std::shared_ptr<Job> job;
    std::string err;
    if (!job_param(job, &err)) return fail(err);
    std::lock_guard<std::mutex> lock(mu_);
    JsonValue result{JsonObject{}};
    result.set("job", static_cast<std::int64_t>(job->id));
    result.set("state", job_state_name(job->state));
    result.set("priority", job->config.priority);
    if (job->state != JobState::kQueued) {
      result.set("queue_wait_ns", static_cast<std::int64_t>(job->queue_wait_ns));
    }
    return respond(std::move(result));
  }

  if (name == "cancel") {
    std::shared_ptr<Job> job;
    std::string err;
    if (!job_param(job, &err)) return fail(err);
    job->cancel.store(true);
    std::lock_guard<std::mutex> lock(mu_);
    JsonValue result{JsonObject{}};
    result.set("job", static_cast<std::int64_t>(job->id));
    result.set("state", job_state_name(job->state));
    result.set("cancel_requested", true);
    return respond(std::move(result));
  }

  if (name == "result") {
    std::shared_ptr<Job> job;
    std::string err;
    if (!job_param(job, &err)) return fail(err);
    const JsonValue* w = params != nullptr ? params->find("wait") : nullptr;
    const bool wait = w != nullptr && w->is_bool() && w->as_bool();
    std::unique_lock<std::mutex> lock(mu_);
    if (wait) {
      job_cv_.wait(lock, [&] { return job_state_terminal(job->state) || stopping_; });
    }
    JsonValue result{JsonObject{}};
    result.set("job", static_cast<std::int64_t>(job->id));
    result.set("state", job_state_name(job->state));
    result.set("queue_wait_ns", static_cast<std::int64_t>(job->queue_wait_ns));
    if (!job->flow_json.empty()) {
      const JsonParseResult flow = json_parse(job->flow_json);
      if (flow.ok) result.set("flow", flow.value);
    }
    if (job->state == JobState::kFailed) result.set("error", job->error);
    return respond(std::move(result));
  }

  if (name == "stats") {
    const DesignCache::Stats cs = cache_->stats();
    const MetricsSnapshot snap = metrics_.snapshot();
    JsonValue result{JsonObject{}};
    result.set("server.cache.hits", static_cast<std::int64_t>(cs.hits));
    result.set("server.cache.misses", static_cast<std::int64_t>(cs.misses));
    result.set("server.cache.evictions", static_cast<std::int64_t>(cs.evictions));
    result.set("server.cache.bytes", static_cast<std::int64_t>(cs.bytes));
    result.set("server.cache.entries", static_cast<std::int64_t>(cs.entries));
    if (const MetricValue* h = snap.find("server.queue_wait_ns")) {
      JsonValue wait{JsonObject{}};
      wait.set("count", static_cast<std::int64_t>(h->hist.count));
      wait.set("sum", h->hist.sum);
      wait.set("max", h->hist.max);
      result.set("server.queue_wait_ns", std::move(wait));
    }
    std::lock_guard<std::mutex> lock(mu_);
    std::int64_t by_state[5] = {0, 0, 0, 0, 0};
    for (const auto& [jid, job] : jobs_) ++by_state[static_cast<int>(job->state)];
    JsonValue jobs{JsonObject{}};
    jobs.set("submitted", static_cast<std::int64_t>(jobs_submitted_));
    for (const JobState s : {JobState::kQueued, JobState::kRunning, JobState::kDone,
                             JobState::kFailed, JobState::kCancelled}) {
      jobs.set(job_state_name(s), by_state[static_cast<int>(s)]);
    }
    result.set("jobs", std::move(jobs));
    result.set("workers", static_cast<std::int64_t>(pool_->size()));
    return respond(std::move(result));
  }

  if (name == "metrics") {
    // Server-owned registry (cache counters, queue wait, per-stage wall
    // time) in Prometheus text format by default, or as the registry's
    // JSON when params.format == "json".
    const JsonValue* f = params != nullptr ? params->find("format") : nullptr;
    const std::string format = f != nullptr && f->is_string() ? f->as_string()
                                                              : std::string("prometheus");
    const MetricsSnapshot snap = metrics_.snapshot();
    JsonValue result{JsonObject{}};
    if (format == "prometheus") {
      result.set("prometheus", snap.to_prometheus());
    } else if (format == "json") {
      const JsonParseResult m = json_parse(snap.to_json(MetricsSnapshot::kWithRuntime));
      result.set("metrics", m.ok ? m.value : JsonValue(JsonObject{}));
    } else {
      return fail("params.format: expected \"prometheus\" or \"json\"");
    }
    return respond(std::move(result));
  }

  if (name == "trace") {
    std::shared_ptr<Job> job;
    std::string err;
    if (!job_param(job, &err)) return fail(err);
    std::string trace_json;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!job_state_terminal(job->state)) {
        return fail("job " + std::to_string(job->id) + " still " +
                    job_state_name(job->state));
      }
      trace_json = job->trace_json;
    }
    if (trace_json.empty()) {
      return fail("no trace recorded for job " + std::to_string(job->id) +
                  " (submit with \"record_trace\": true)");
    }
    const JsonParseResult trace = json_parse(trace_json);
    if (!trace.ok) return fail("recorded trace is malformed: " + trace.error);
    JsonValue result{JsonObject{}};
    result.set("job", static_cast<std::int64_t>(job->id));
    result.set("trace", trace.value);
    return respond(std::move(result));
  }

  if (name == "shutdown") {
    {
      std::lock_guard<std::mutex> lock(mu_);
      shutdown_requested_ = true;
    }
    shutdown_cv_.notify_all();
    JsonValue result{JsonObject{}};
    result.set("ok", true);
    return respond(std::move(result));
  }

  return fail("unknown method \"" + name + "\"");
}

bool FlowServer::listen(std::string* error) {
  const auto set_error = [&](const std::string& msg) {
    if (error != nullptr) *error = msg + ": " + std::strerror(errno);
    return false;
  };
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (opts_.socket_path.size() >= sizeof addr.sun_path) {
    if (error != nullptr) *error = "socket path too long: " + opts_.socket_path;
    return false;
  }
  std::memcpy(addr.sun_path, opts_.socket_path.c_str(), opts_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return set_error("socket");
  ::unlink(opts_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return set_error("bind " + opts_.socket_path);
  }
  if (::listen(listen_fd_, 64) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return set_error("listen");
  }
  accept_thread_ = std::thread([this] { accept_loop(); });
  log_info() << "flow server listening on " << opts_.socket_path;
  return true;
}

void FlowServer::accept_loop() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // listen fd closed by stop()
    }
    std::lock_guard<std::mutex> lock(conn_mu_);
    conn_fds_.insert(fd);
    conn_threads_.emplace_back([this, fd] { serve_connection(fd); });
  }
}

void FlowServer::serve_connection(int fd) {
  std::string buf;
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
    if (n <= 0) break;
    buf.append(chunk, static_cast<std::size_t>(n));
    std::size_t pos;
    while ((pos = buf.find('\n')) != std::string::npos) {
      const std::string line = buf.substr(0, pos);
      buf.erase(0, pos + 1);
      if (line.empty()) continue;
      if (!send_all(fd, handle_request(line) + '\n')) break;
    }
  }
  ::close(fd);
  std::lock_guard<std::mutex> lock(conn_mu_);
  conn_fds_.erase(fd);
}

void FlowServer::wait_until_shutdown() {
  std::unique_lock<std::mutex> lock(mu_);
  shutdown_cv_.wait(lock, [&] { return shutdown_requested_ || stopping_; });
}

bool FlowServer::shutdown_requested() const {
  std::lock_guard<std::mutex> lock(mu_);
  return shutdown_requested_;
}

void FlowServer::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
  }
  shutdown_cv_.notify_all();
  job_cv_.notify_all();  // release result-wait RPCs

  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    for (const int fd : conn_fds_) ::shutdown(fd, SHUT_RDWR);
  }
  std::vector<std::thread> conns;
  {
    std::lock_guard<std::mutex> lock(conn_mu_);
    conns.swap(conn_threads_);
  }
  for (std::thread& t : conns) {
    if (t.joinable()) t.join();
  }
  pool_.reset();  // drains queued jobs; all futures complete
  if (listen_fd_ >= 0) {
    ::unlink(opts_.socket_path.c_str());
    listen_fd_ = -1;
  }
}

}  // namespace tpi
