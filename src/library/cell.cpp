#include "library/cell.hpp"

namespace tpi {

bool func_is_sequential(CellFunc f) {
  return f == CellFunc::kDff || f == CellFunc::kSdff || f == CellFunc::kTsff;
}

std::string_view func_name(CellFunc f) {
  switch (f) {
    case CellFunc::kTie0: return "TIE0";
    case CellFunc::kTie1: return "TIE1";
    case CellFunc::kBuf: return "BUF";
    case CellFunc::kInv: return "INV";
    case CellFunc::kAnd: return "AND";
    case CellFunc::kNand: return "NAND";
    case CellFunc::kOr: return "OR";
    case CellFunc::kNor: return "NOR";
    case CellFunc::kXor: return "XOR";
    case CellFunc::kXnor: return "XNOR";
    case CellFunc::kMux2: return "MUX2";
    case CellFunc::kDff: return "DFF";
    case CellFunc::kSdff: return "SDFF";
    case CellFunc::kTsff: return "TSFF";
    case CellFunc::kClkBuf: return "CLKBUF";
    case CellFunc::kFiller: return "FILL";
  }
  return "?";
}

int CellSpec::find_pin(std::string_view pin_name) const {
  for (std::size_t i = 0; i < pins.size(); ++i) {
    if (pins[i].name == pin_name) return static_cast<int>(i);
  }
  return -1;
}

const TimingArc* CellSpec::arc_from(int from_pin) const {
  for (const auto& arc : arcs) {
    if (arc.from_pin == from_pin) return &arc;
  }
  return nullptr;
}

int CellSpec::input_pin_count() const {
  int n = 0;
  for (const auto& p : pins) {
    if (p.dir == PinDir::kInput) ++n;
  }
  return n;
}

}  // namespace tpi
