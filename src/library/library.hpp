// Cell library container and the synthetic 130 nm library "phl130".
//
// The paper maps all circuits to the Philips 130 nm CMOS standard-cell
// library (6 metal layers). That library is proprietary; phl130 is a
// synthetic substitute with the same *structure*: row-based cells of a
// common height, NLDM timing, scan cells, the TSFF of Fig. 1, clock
// buffers, and filler cells in power-of-two widths.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "library/cell.hpp"

namespace tpi {

class CellLibrary {
 public:
  CellLibrary(std::string name, double site_width_um, double row_height_um);

  // Non-copyable: CellSpec pointers must stay stable.
  CellLibrary(const CellLibrary&) = delete;
  CellLibrary& operator=(const CellLibrary&) = delete;

  const std::string& name() const { return name_; }
  double site_width_um() const { return site_width_um_; }
  double row_height_um() const { return row_height_um_; }

  /// Add a cell; width is given in sites. Returns the stored spec.
  CellSpec* add_cell(CellSpec spec, int width_sites);

  /// Lookup by exact name ("NAND2_X1"); nullptr when absent.
  const CellSpec* by_name(std::string_view cell_name) const;

  /// Lookup a logic gate by function / input count / drive strength;
  /// nullptr when the library has no such cell.
  const CellSpec* gate(CellFunc func, int num_inputs, int drive = 1) const;

  /// Filler cells, widest first (used to plug row gaps).
  const std::vector<const CellSpec*>& fillers() const { return fillers_; }

  /// Clock buffers, ascending drive.
  const std::vector<const CellSpec*>& clock_buffers() const { return clock_buffers_; }

  const std::vector<std::unique_ptr<CellSpec>>& cells() const { return cells_; }

 private:
  std::string name_;
  double site_width_um_;
  double row_height_um_;
  std::vector<std::unique_ptr<CellSpec>> cells_;
  std::unordered_map<std::string, const CellSpec*> by_name_;
  std::vector<const CellSpec*> fillers_;
  std::vector<const CellSpec*> clock_buffers_;
};

/// Build the synthetic 130 nm library used by all experiments.
std::unique_ptr<CellLibrary> make_phl130_library();

}  // namespace tpi
