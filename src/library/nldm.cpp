#include "library/nldm.hpp"

#include <algorithm>
#include <cassert>

namespace tpi {
namespace {

// Find the lower index of the axis segment bracketing x, clamped so that
// [idx, idx+1] is always a valid segment; reports whether x was outside.
std::size_t bracket(const std::vector<double>& axis, double x, bool& outside) {
  assert(axis.size() >= 2);
  if (x < axis.front() || x > axis.back()) outside = true;
  const auto it = std::upper_bound(axis.begin(), axis.end(), x);
  std::size_t hi = static_cast<std::size_t>(it - axis.begin());
  if (hi == 0) hi = 1;
  if (hi >= axis.size()) hi = axis.size() - 1;
  return hi - 1;
}

}  // namespace

NldmTable::NldmTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
                     std::vector<double> values_ps)
    : slew_axis_(std::move(slew_axis_ps)),
      load_axis_(std::move(load_axis_ff)),
      values_(std::move(values_ps)) {
  assert(slew_axis_.size() >= 2 && load_axis_.size() >= 2);
  assert(values_.size() == slew_axis_.size() * load_axis_.size());
  assert(std::is_sorted(slew_axis_.begin(), slew_axis_.end()));
  assert(std::is_sorted(load_axis_.begin(), load_axis_.end()));
}

NldmTable::Lookup NldmTable::lookup(double slew_ps, double load_ff) const {
  Lookup out;
  if (values_.empty()) return out;
  bool outside = false;
  const std::size_t s0 = bracket(slew_axis_, slew_ps, outside);
  const std::size_t l0 = bracket(load_axis_, load_ff, outside);
  const double s_lo = slew_axis_[s0], s_hi = slew_axis_[s0 + 1];
  const double l_lo = load_axis_[l0], l_hi = load_axis_[l0 + 1];
  const double ts = (slew_ps - s_lo) / (s_hi - s_lo);  // may be <0 or >1: extrapolate
  const double tl = (load_ff - l_lo) / (l_hi - l_lo);
  const double v00 = at(s0, l0), v01 = at(s0, l0 + 1);
  const double v10 = at(s0 + 1, l0), v11 = at(s0 + 1, l0 + 1);
  const double v0 = v00 + (v01 - v00) * tl;
  const double v1 = v10 + (v11 - v10) * tl;
  out.value_ps = v0 + (v1 - v0) * ts;
  out.extrapolated = outside;
  return out;
}

NldmTable make_nldm(double intrinsic_ps, double r_eff_ps_per_ff, double slew_coef,
                    double cross, double max_load_ff, double max_slew_ps) {
  std::vector<double> slews, loads;
  for (int i = 0; i < 5; ++i) {
    slews.push_back(max_slew_ps * (i * i) / 16.0);  // 0, 1/16, 4/16, 9/16, 1 of range
    loads.push_back(max_load_ff * (i * i) / 16.0);
  }
  // Axis values of exactly 0 are awkward for bracketing near-zero inputs;
  // nudge the first point slightly positive like real Liberty tables do.
  slews[0] = 1.0;
  loads[0] = 0.1;
  std::vector<double> values;
  values.reserve(25);
  for (double s : slews) {
    for (double l : loads) {
      values.push_back(intrinsic_ps + r_eff_ps_per_ff * l + slew_coef * s + cross * s * l);
    }
  }
  return NldmTable(std::move(slews), std::move(loads), std::move(values));
}

}  // namespace tpi
