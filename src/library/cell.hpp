// Standard-cell specifications: logic function, geometry, pins, timing arcs.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "library/nldm.hpp"

namespace tpi {

/// Logic function implemented by a cell. `kTsff` is the transparent scan
/// flip-flop of the paper's Fig. 1 (scan FF + output multiplexer).
enum class CellFunc {
  kTie0,
  kTie1,
  kBuf,
  kInv,
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kMux2,   // Y = S ? B : A
  kDff,    // D, CK -> Q
  kSdff,   // D, TI, TE, CK -> Q  (scan flip-flop)
  kTsff,   // D, TI, TE, TR, CK -> Q  (transparent scan flip-flop, Fig. 1)
  kClkBuf, // clock-tree buffer
  kFiller, // row filler (power/ground strip continuity), no pins
};

bool func_is_sequential(CellFunc f);
std::string_view func_name(CellFunc f);

enum class PinDir { kInput, kOutput };

struct PinSpec {
  std::string name;
  PinDir dir = PinDir::kInput;
  double cap_ff = 0.0;    ///< input pin capacitance (0 for outputs)
  bool is_clock = false;  ///< true for CK pins
};

/// One characterised input→output delay arc.
struct TimingArc {
  int from_pin = -1;  ///< index into CellSpec::pins
  int to_pin = -1;
  NldmTable delay;     ///< propagation delay (ps)
  NldmTable out_slew;  ///< output transition time (ps)
};

struct CellSpec {
  std::string name;       ///< e.g. "NAND2_X1"
  CellFunc func = CellFunc::kBuf;
  int num_inputs = 0;     ///< logic data inputs (excludes CK/TE/TR/TI controls)
  int drive = 1;          ///< drive strength class (X1/X2/X4/X8)
  double width_um = 0.0;  ///< multiple of the site width
  double height_um = 0.0; ///< equal to the row height
  std::vector<PinSpec> pins;
  std::vector<TimingArc> arcs;

  // Sequential-only characteristics.
  bool sequential = false;
  double setup_ps = 0.0;
  double hold_ps = 0.0;

  // Cached pin roles (−1 when absent).
  int output_pin = -1;
  int clock_pin = -1;
  int d_pin = -1;
  int ti_pin = -1;
  int te_pin = -1;
  int tr_pin = -1;
  int select_pin = -1;  // MUX2 S

  double area_um2() const { return width_um * height_um; }

  /// Index of the named pin, or −1.
  int find_pin(std::string_view pin_name) const;

  /// Arc from the given input pin to the (single) output, or nullptr.
  const TimingArc* arc_from(int from_pin) const;

  /// Number of input pins (all non-output pins).
  int input_pin_count() const;
};

}  // namespace tpi
