// Non-linear delay model (NLDM) lookup tables.
//
// Cell delay and output slew are characterised on a (input slew × output
// load) grid, exactly like a Liberty NLDM table. Static timing analysis
// interpolates bilinearly inside the grid; outside the grid it extrapolates
// and flags the lookup, which models the "slow node" effect of the paper's
// Pearl runs (§4.4: extrapolated cells give less accurate results).
#pragma once

#include <cstddef>
#include <vector>

namespace tpi {

class NldmTable {
 public:
  NldmTable() = default;

  /// Build a table. `values` is row-major: values[s * load_axis.size() + l]
  /// for slew index s and load index l. Axes must be strictly ascending and
  /// non-empty.
  NldmTable(std::vector<double> slew_axis_ps, std::vector<double> load_axis_ff,
            std::vector<double> values_ps);

  struct Lookup {
    double value_ps = 0.0;
    bool extrapolated = false;  ///< true when (slew, load) fell outside the grid
  };

  /// Bilinear interpolation; linear extrapolation outside the characterised
  /// range (sets Lookup::extrapolated).
  Lookup lookup(double slew_ps, double load_ff) const;

  bool empty() const { return values_.empty(); }
  double max_load_ff() const { return load_axis_.empty() ? 0.0 : load_axis_.back(); }
  double max_slew_ps() const { return slew_axis_.empty() ? 0.0 : slew_axis_.back(); }

  const std::vector<double>& slew_axis() const { return slew_axis_; }
  const std::vector<double>& load_axis() const { return load_axis_; }
  const std::vector<double>& values() const { return values_; }

 private:
  double at(std::size_t s, std::size_t l) const { return values_[s * load_axis_.size() + l]; }

  std::vector<double> slew_axis_;
  std::vector<double> load_axis_;
  std::vector<double> values_;
};

/// Characterisation helper: synthesises a grid table from the first-order
/// model  value = intrinsic + r_eff*load + slew_coef*slew + cross*slew*load.
/// Used by the synthetic phl130 library; a real flow would read Liberty.
NldmTable make_nldm(double intrinsic_ps, double r_eff_ps_per_ff, double slew_coef,
                    double cross = 0.0, double max_load_ff = 120.0,
                    double max_slew_ps = 800.0);

}  // namespace tpi
