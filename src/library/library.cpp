#include "library/library.hpp"

#include <cassert>

namespace tpi {

CellLibrary::CellLibrary(std::string name, double site_width_um, double row_height_um)
    : name_(std::move(name)), site_width_um_(site_width_um), row_height_um_(row_height_um) {}

CellSpec* CellLibrary::add_cell(CellSpec spec, int width_sites) {
  spec.width_um = width_sites * site_width_um_;
  spec.height_um = row_height_um_;
  // Cache pin roles.
  spec.output_pin = -1;
  for (std::size_t i = 0; i < spec.pins.size(); ++i) {
    const PinSpec& p = spec.pins[i];
    const int idx = static_cast<int>(i);
    if (p.dir == PinDir::kOutput) spec.output_pin = idx;
    if (p.is_clock) spec.clock_pin = idx;
    if (p.name == "D") spec.d_pin = idx;
    if (p.name == "TI") spec.ti_pin = idx;
    if (p.name == "TE") spec.te_pin = idx;
    if (p.name == "TR") spec.tr_pin = idx;
    if (p.name == "S") spec.select_pin = idx;
  }
  spec.sequential = func_is_sequential(spec.func);
  cells_.push_back(std::make_unique<CellSpec>(std::move(spec)));
  CellSpec* stored = cells_.back().get();
  by_name_[stored->name] = stored;
  if (stored->func == CellFunc::kFiller) {
    fillers_.push_back(stored);
    // Keep widest-first for greedy gap filling.
    for (std::size_t i = fillers_.size(); i > 1; --i) {
      if (fillers_[i - 1]->width_um > fillers_[i - 2]->width_um) {
        std::swap(fillers_[i - 1], fillers_[i - 2]);
      }
    }
  }
  if (stored->func == CellFunc::kClkBuf) {
    clock_buffers_.push_back(stored);
    for (std::size_t i = clock_buffers_.size(); i > 1; --i) {
      if (clock_buffers_[i - 1]->drive < clock_buffers_[i - 2]->drive) {
        std::swap(clock_buffers_[i - 1], clock_buffers_[i - 2]);
      }
    }
  }
  return stored;
}

const CellSpec* CellLibrary::by_name(std::string_view cell_name) const {
  const auto it = by_name_.find(std::string(cell_name));
  return it == by_name_.end() ? nullptr : it->second;
}

const CellSpec* CellLibrary::gate(CellFunc func, int num_inputs, int drive) const {
  for (const auto& c : cells_) {
    if (c->func == func && c->num_inputs == num_inputs && c->drive == drive) return c.get();
  }
  return nullptr;
}

namespace {

// Characterisation knobs for one cell variant.
struct GateChar {
  const char* name;
  CellFunc func;
  int num_inputs;
  int drive;
  int width_sites;
  double in_cap_ff;
  double intrinsic_ps;
  double r_eff_ps_per_ff;  // load-dependent delay slope
};

PinSpec in_pin(std::string name, double cap_ff, bool clock = false) {
  return PinSpec{std::move(name), PinDir::kInput, cap_ff, clock};
}

PinSpec out_pin(std::string name) { return PinSpec{std::move(name), PinDir::kOutput, 0.0, false}; }

// X1 tables are characterised up to 110 fF; bigger drives proportionally
// more. Lookups beyond the range are extrapolated — the paper's "slow
// nodes" (unbuffered hub nets with dozens of sinks land there).
double table_range_ff(int drive) { return 110.0 * drive; }

NldmTable delay_table(const GateChar& g) {
  return make_nldm(g.intrinsic_ps, g.r_eff_ps_per_ff, 0.12, 0.0005,
                   table_range_ff(g.drive));
}

NldmTable slew_table(const GateChar& g) {
  return make_nldm(0.4 * g.intrinsic_ps, 2.0 * g.r_eff_ps_per_ff, 0.08, 0.0,
                   table_range_ff(g.drive));
}

void add_combinational(CellLibrary& lib, const GateChar& g) {
  CellSpec spec;
  spec.name = g.name;
  spec.func = g.func;
  spec.num_inputs = g.num_inputs;
  spec.drive = g.drive;
  static const char* kInputNames[] = {"A", "B", "C", "D"};
  assert(g.num_inputs <= 4);
  for (int i = 0; i < g.num_inputs; ++i) spec.pins.push_back(in_pin(kInputNames[i], g.in_cap_ff));
  if (g.func == CellFunc::kMux2) spec.pins.push_back(in_pin("S", g.in_cap_ff + 0.4));
  spec.pins.push_back(out_pin("Y"));
  const int y = static_cast<int>(spec.pins.size()) - 1;
  for (int i = 0; i < y; ++i) {
    TimingArc arc;
    arc.from_pin = i;
    arc.to_pin = y;
    // Later inputs of a stack are slightly slower, as in real libraries.
    GateChar gi = g;
    gi.intrinsic_ps += 3.0 * i;
    arc.delay = delay_table(gi);
    arc.out_slew = slew_table(gi);
    spec.arcs.push_back(std::move(arc));
  }
  lib.add_cell(std::move(spec), g.width_sites);
}

struct FlopChar {
  const char* name;
  CellFunc func;
  int width_sites;
  double clk_to_q_ps;
  double r_eff_ps_per_ff;
  double setup_ps;
  double hold_ps;
  double d_to_q_ps;  // TSFF only: transparent two-mux application path
};

void add_flop(CellLibrary& lib, const FlopChar& f) {
  CellSpec spec;
  spec.name = f.name;
  spec.func = f.func;
  spec.num_inputs = 1;  // logic data input D
  spec.drive = 1;
  spec.setup_ps = f.setup_ps;
  spec.hold_ps = f.hold_ps;
  const double d_cap = (f.func == CellFunc::kTsff) ? 3.0 : 2.4;  // TSFF D fans to 2 muxes
  spec.pins.push_back(in_pin("D", d_cap));
  if (f.func != CellFunc::kDff) {
    spec.pins.push_back(in_pin("TI", 2.2));
    spec.pins.push_back(in_pin("TE", 2.8));
  }
  if (f.func == CellFunc::kTsff) spec.pins.push_back(in_pin("TR", 2.8));
  spec.pins.push_back(in_pin("CK", 1.8, /*clock=*/true));
  spec.pins.push_back(out_pin("Q"));
  const int q = static_cast<int>(spec.pins.size()) - 1;
  {
    TimingArc ck_q;
    ck_q.from_pin = spec.find_pin("CK");
    ck_q.to_pin = q;
    GateChar g{f.name, f.func, 1, 1, f.width_sites, 0.0, f.clk_to_q_ps, f.r_eff_ps_per_ff};
    ck_q.delay = delay_table(g);
    ck_q.out_slew = slew_table(g);
    spec.arcs.push_back(std::move(ck_q));
  }
  if (f.func == CellFunc::kTsff) {
    // Application-mode transparent path D -> (input mux) -> (output mux) -> Q.
    // This is the arc that puts test-point delay on functional paths (§3.1).
    TimingArc d_q;
    d_q.from_pin = spec.find_pin("D");
    d_q.to_pin = q;
    GateChar g{f.name, f.func, 1, 1, f.width_sites, 0.0, f.d_to_q_ps, f.r_eff_ps_per_ff};
    d_q.delay = delay_table(g);
    d_q.out_slew = slew_table(g);
    spec.arcs.push_back(std::move(d_q));
  }
  lib.add_cell(std::move(spec), f.width_sites);
}

void add_tie(CellLibrary& lib, const char* name, CellFunc func) {
  CellSpec spec;
  spec.name = name;
  spec.func = func;
  spec.num_inputs = 0;
  spec.pins.push_back(out_pin("Y"));
  lib.add_cell(std::move(spec), 2);
}

void add_filler(CellLibrary& lib, const char* name, int width_sites) {
  CellSpec spec;
  spec.name = name;
  spec.func = CellFunc::kFiller;
  spec.num_inputs = 0;
  lib.add_cell(std::move(spec), width_sites);
}

}  // namespace

std::unique_ptr<CellLibrary> make_phl130_library() {
  auto lib = std::make_unique<CellLibrary>("phl130", /*site*/ 0.4, /*row height*/ 3.6);

  const GateChar gates[] = {
      // name        func             #in drive sites cap   intr  r_eff
      {"BUF_X1", CellFunc::kBuf, 1, 1, 3, 2.0, 45.0, 3.0},
      {"BUF_X2", CellFunc::kBuf, 1, 2, 4, 3.5, 42.0, 1.6},
      {"BUF_X4", CellFunc::kBuf, 1, 4, 6, 6.0, 40.0, 0.9},
      {"INV_X1", CellFunc::kInv, 1, 1, 2, 2.2, 20.0, 2.8},
      {"INV_X2", CellFunc::kInv, 1, 2, 3, 4.0, 18.0, 1.5},
      {"INV_X4", CellFunc::kInv, 1, 4, 5, 7.5, 17.0, 0.85},
      {"NAND2_X1", CellFunc::kNand, 2, 1, 3, 2.4, 28.0, 3.2},
      {"NAND3_X1", CellFunc::kNand, 3, 1, 4, 2.6, 36.0, 3.6},
      {"NAND4_X1", CellFunc::kNand, 4, 1, 5, 2.8, 45.0, 4.0},
      {"NOR2_X1", CellFunc::kNor, 2, 1, 3, 2.5, 32.0, 3.8},
      {"NOR3_X1", CellFunc::kNor, 3, 1, 4, 2.7, 42.0, 4.4},
      {"NOR4_X1", CellFunc::kNor, 4, 1, 5, 2.9, 52.0, 5.0},
      {"AND2_X1", CellFunc::kAnd, 2, 1, 4, 2.2, 48.0, 3.0},
      {"AND3_X1", CellFunc::kAnd, 3, 1, 5, 2.4, 56.0, 3.2},
      {"OR2_X1", CellFunc::kOr, 2, 1, 4, 2.3, 52.0, 3.2},
      {"OR3_X1", CellFunc::kOr, 3, 1, 5, 2.5, 60.0, 3.4},
      {"XOR2_X1", CellFunc::kXor, 2, 1, 6, 3.2, 65.0, 3.6},
      {"XNOR2_X1", CellFunc::kXnor, 2, 1, 6, 3.2, 66.0, 3.6},
      {"MUX2_X1", CellFunc::kMux2, 2, 1, 6, 2.6, 55.0, 3.2},
      {"CLKBUF_X2", CellFunc::kClkBuf, 1, 2, 4, 3.5, 40.0, 1.5},
      {"CLKBUF_X4", CellFunc::kClkBuf, 1, 4, 6, 6.0, 38.0, 0.8},
      {"CLKBUF_X8", CellFunc::kClkBuf, 1, 8, 10, 11.0, 36.0, 0.45},
  };
  for (const auto& g : gates) add_combinational(*lib, g);

  const FlopChar flops[] = {
      // name      func             sites ck->q  r    setup hold  d->q
      {"DFF_X1", CellFunc::kDff, 9, 160.0, 3.0, 110.0, 10.0, 0.0},
      {"SDFF_X1", CellFunc::kSdff, 11, 170.0, 3.0, 120.0, 10.0, 0.0},
      // TSFF = scan FF + output mux (Fig. 1). The transparent application
      // path costs two multiplexer delays (input mux + output mux).
      {"TSFF_X1", CellFunc::kTsff, 15, 175.0, 3.0, 120.0, 10.0, 110.0},
  };
  for (const auto& f : flops) add_flop(*lib, f);

  add_tie(*lib, "TIE0", CellFunc::kTie0);
  add_tie(*lib, "TIE1", CellFunc::kTie1);

  add_filler(*lib, "FILL1", 1);
  add_filler(*lib, "FILL2", 2);
  add_filler(*lib, "FILL4", 4);
  add_filler(*lib, "FILL8", 8);
  add_filler(*lib, "FILL16", 16);

  return lib;
}

}  // namespace tpi
