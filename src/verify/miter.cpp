#include "verify/miter.hpp"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace tpi {
namespace {

bool pi_is_clock(const Netlist& nl, int pi_index) {
  const auto& clocks = nl.clock_pis();
  return std::find(clocks.begin(), clocks.end(), pi_index) != clocks.end();
}

/// Map every net of `side` to a net in the miter: PI-driven nets resolve to
/// the shared (or tied) input net of the same name; everything else gets a
/// fresh prefixed clone.
std::vector<NetId> clone_side(const Netlist& side, const std::string& prefix, Netlist& m,
                              const std::unordered_map<std::string, NetId>& input_nets) {
  std::vector<NetId> net_map(side.num_nets(), kNoNet);
  for (std::size_t n = 0; n < side.num_nets(); ++n) {
    const Net& net = side.net(static_cast<NetId>(n));
    if (net.driven_by_pi()) {
      net_map[n] = input_nets.at(side.pi_name(net.pi_index));
    } else {
      net_map[n] = m.add_net(prefix + net.name);
    }
  }
  for (std::size_t c = 0; c < side.num_cells(); ++c) {
    const CellInst& cell = side.cell(static_cast<CellId>(c));
    const CellId clone = m.add_cell(cell.spec, prefix + cell.name);
    for (std::size_t p = 0; p < cell.conn.size(); ++p) {
      const NetId conn = cell.conn[p];
      if (conn == kNoNet) continue;
      m.connect(clone, static_cast<int>(p), net_map[static_cast<std::size_t>(conn)]);
    }
  }
  return net_map;
}

}  // namespace

MiterResult build_miter(const Netlist& a, const Netlist& b, const MiterOptions& opts) {
  MiterResult res;
  if (&a.library() != &b.library()) {
    res.error = "miter: netlists use different cell libraries";
    return res;
  }
  const CellLibrary& lib = a.library();
  const CellSpec* xor2 = lib.gate(CellFunc::kXor, 2);
  const CellSpec* or2 = lib.gate(CellFunc::kOr, 2);
  const CellSpec* tie0 = lib.by_name("TIE0");
  if (xor2 == nullptr || or2 == nullptr || tie0 == nullptr) {
    res.error = "miter: library lacks XOR2/OR2/TIE0";
    return res;
  }

  auto m = std::make_unique<Netlist>(&lib, a.name() + ".miter");

  // ---- inputs: shared by name, a's index order first, then b-only ----
  std::unordered_map<std::string, NetId> input_nets;
  std::unordered_set<std::string> a_pi_names;
  for (std::size_t i = 0; i < a.num_pis(); ++i) {
    const std::string& name = a.pi_name(static_cast<int>(i));
    a_pi_names.insert(name);
    const int pi = m->add_primary_input(name);
    const int b_idx = [&] {
      for (std::size_t j = 0; j < b.num_pis(); ++j) {
        if (b.pi_name(static_cast<int>(j)) == name) return static_cast<int>(j);
      }
      return -1;
    }();
    if (pi_is_clock(a, static_cast<int>(i)) || (b_idx >= 0 && pi_is_clock(b, b_idx))) {
      m->mark_clock(pi);
    }
    input_nets.emplace(name, m->pi_net(pi));
    res.shared_pis += (b_idx >= 0);
  }
  for (std::size_t j = 0; j < b.num_pis(); ++j) {
    const std::string& name = b.pi_name(static_cast<int>(j));
    if (a_pi_names.contains(name)) continue;
    // One-sided input: a DfT control the transform added. Clocks must stay
    // real clock roots (FF CK pins hang off them); data controls are held
    // at 0, the mission-mode setting.
    if (pi_is_clock(b, static_cast<int>(j)) || !opts.tie_unmatched_pis_low) {
      const int pi = m->add_primary_input(name);
      if (pi_is_clock(b, static_cast<int>(j))) m->mark_clock(pi);
      input_nets.emplace(name, m->pi_net(pi));
    } else {
      const NetId tied = m->add_net("tied." + name);
      const CellId tie = m->add_cell(tie0, "tie." + name);
      m->connect(tie, tie0->output_pin, tied);
      input_nets.emplace(name, tied);
      ++res.tied_pis;
    }
  }

  // ---- clone both sides ----
  const std::vector<NetId> a_nets = clone_side(a, "a.", *m, input_nets);
  const std::vector<NetId> b_nets = clone_side(b, "b.", *m, input_nets);

  // ---- XOR matched POs (a's PO order), OR-reduce to one output ----
  // Two POs may alias one net (a scan-out reusing a functional PO's FF);
  // with net-name keys that would collide, so the k-th occurrence of a key
  // gets a "#k" suffix — identical on both sides since POs keep their
  // relative order across transforms.
  const auto po_key = [&opts](const Netlist& nl, int i,
                              std::unordered_map<std::string, int>& seen) {
    std::string key = opts.match_pos_by_net ? nl.net(nl.po_net(i)).name : nl.po_name(i);
    if (const int k = seen[key]++; k > 0) key += "#" + std::to_string(k);
    return key;
  };
  std::unordered_map<std::string, NetId> b_pos;
  std::unordered_map<std::string, int> a_seen, b_seen;
  for (std::size_t j = 0; j < b.num_pos(); ++j) {
    b_pos.emplace(po_key(b, static_cast<int>(j), b_seen),
                  b_nets[static_cast<std::size_t>(b.po_net(static_cast<int>(j)))]);
  }
  std::vector<NetId> diffs;
  for (std::size_t i = 0; i < a.num_pos(); ++i) {
    const std::string name = po_key(a, static_cast<int>(i), a_seen);
    const auto it = b_pos.find(name);
    if (it == b_pos.end()) {
      ++res.unmatched_pos;
      continue;
    }
    const CellId x = m->add_cell(xor2, "miter.xor." + name);
    m->connect(x, 0, a_nets[static_cast<std::size_t>(a.po_net(static_cast<int>(i)))]);
    m->connect(x, 1, it->second);
    const NetId d = m->add_net("miter.d." + name);
    m->connect(x, xor2->output_pin, d);
    diffs.push_back(d);
    b_pos.erase(it);
    ++res.matched_pos;
  }
  res.unmatched_pos += static_cast<int>(b_pos.size());  // b-only POs (scan-outs)
  if (res.matched_pos == 0) {
    res.error = "miter: the netlists share no primary output names";
    return res;
  }
  if (!opts.ignore_unmatched_pos && res.unmatched_pos > 0) {
    res.error = "miter: " + std::to_string(res.unmatched_pos) + " unmatched primary outputs";
    return res;
  }

  // Balanced OR reduction keeps the miter cone shallow on wide circuits.
  int level = 0;
  while (diffs.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < diffs.size(); i += 2) {
      const std::string tag = std::to_string(level) + "." + std::to_string(i / 2);
      const CellId o = m->add_cell(or2, "miter.or." + tag);
      m->connect(o, 0, diffs[i]);
      m->connect(o, 1, diffs[i + 1]);
      const NetId out = m->add_net("miter.o." + tag);
      m->connect(o, or2->output_pin, out);
      next.push_back(out);
    }
    if (diffs.size() % 2 != 0) next.push_back(diffs.back());
    diffs = std::move(next);
    ++level;
  }
  res.out_net = diffs.front();
  m->add_primary_output("miter_out", res.out_net);
  res.netlist = std::move(m);
  return res;
}

}  // namespace tpi
