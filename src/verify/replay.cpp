#include "verify/replay.hpp"

#include <algorithm>

#include "sim/parallel_sim.hpp"

namespace tpi {
namespace {

/// Detection word for one fault over one 64-pattern batch, by full-sweep
/// forced resimulation. Semantics match FaultSimulator::detects(): a stem
/// forces the site net everywhere; a branch forces it only at the one
/// reading node of the faulted cell; a branch on a flip-flop D pin (no
/// logic reader) is captured directly whenever the good value differs.
Word forced_detect(const ParallelSim& good, const Fault& fault, std::vector<Word>& faulty) {
  const CombModel& model = good.model();
  const Word stuck = fault.stuck1 ? ~Word{0} : Word{0};
  const Word g = good.value(fault.net);
  if (g == stuck) return 0;  // no pattern in the batch activates the fault

  int branch_reader = -1;
  if (!fault.is_stem()) {
    for (const int reader : model.readers_of(fault.net)) {
      if (model.nodes()[static_cast<std::size_t>(reader)].cell == fault.branch.cell) {
        branch_reader = reader;
        break;
      }
    }
    if (branch_reader < 0) {
      const CellSpec* spec = model.netlist().cell(fault.branch.cell).spec;
      const bool seq_d = spec->sequential && fault.branch.pin == spec->d_pin;
      return seq_d ? (g ^ stuck) : 0;
    }
  }

  faulty = good.values();
  if (fault.is_stem()) faulty[static_cast<std::size_t>(fault.net)] = stuck;
  const auto& nodes = model.nodes();
  Word in[4];
  for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
    const CombNode& node = nodes[ni];
    const bool inject = static_cast<int>(ni) == branch_reader;
    for (int i = 0; i < node.num_inputs; ++i) {
      in[i] = (inject && node.in[i] == fault.net)
                  ? stuck
                  : faulty[static_cast<std::size_t>(node.in[i])];
    }
    Word sel = 0;
    if (node.sel != kNoNet) {
      sel = (inject && node.sel == fault.net) ? stuck
                                              : faulty[static_cast<std::size_t>(node.sel)];
    }
    Word out = eval_node_word(node, in, sel);
    if (fault.is_stem() && node.out == fault.net) out = stuck;  // fault wins at the site
    if (node.out != kNoNet) faulty[static_cast<std::size_t>(node.out)] = out;
  }

  Word detect = 0;
  for (const NetId n : model.observe_nets()) {
    detect |= faulty[static_cast<std::size_t>(n)] ^ good.value(n);
  }
  return detect;
}

}  // namespace

ReplayReport replay_patterns(const CombModel& capture_model, const FaultList& faults,
                             const std::vector<TestPattern>& patterns) {
  ReplayReport report;
  report.patterns = static_cast<std::int64_t>(patterns.size());

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < faults.faults.size(); ++i) {
    if (faults.faults[i].status == FaultStatus::kDetected) pending.push_back(i);
  }
  report.claimed = static_cast<std::int64_t>(pending.size());
  if (pending.empty()) return report;

  const std::size_t num_inputs = capture_model.input_nets().size();
  ParallelSim good(capture_model);
  std::vector<Word> input_words(num_inputs);
  std::vector<Word> faulty_scratch;

  for (std::size_t base = 0; base < patterns.size() && !pending.empty(); base += kWordBits) {
    const std::size_t batch = std::min<std::size_t>(kWordBits, patterns.size() - base);
    // Lanes past the pattern count hold an all-zero phantom input vector;
    // a detection there must not confirm a claim.
    const Word lane_mask =
        batch == static_cast<std::size_t>(kWordBits) ? ~Word{0} : (Word{1} << batch) - 1;
    std::fill(input_words.begin(), input_words.end(), Word{0});
    for (std::size_t k = 0; k < batch; ++k) {
      const auto& bits = patterns[base + k].bits;
      for (std::size_t i = 0; i < num_inputs && i < bits.size(); ++i) {
        if (bits[i] != 0) input_words[i] |= Word{1} << k;
      }
    }
    good.load_inputs(input_words);
    good.run();

    std::size_t w = 0;
    for (const std::size_t fi : pending) {
      if ((forced_detect(good, faults.faults[fi], faulty_scratch) & lane_mask) != 0) {
        continue;  // confirmed
      }
      pending[w++] = fi;
    }
    pending.resize(w);
  }

  report.confirmed = report.claimed - static_cast<std::int64_t>(pending.size());
  for (const std::size_t fi : pending) {
    const Fault& f = faults.faults[fi];
    report.failures.push_back({fi, f.net, f.stuck1, f.is_stem()});
  }
  return report;
}

}  // namespace tpi
