#include "verify/replay.hpp"

#include <algorithm>

#include "atpg/fault_sim.hpp"
#include "sim/kernels.hpp"
#include "sim/parallel_sim.hpp"

namespace tpi {
namespace {

// Valid-lane mask for lane word j of a batch holding `count` patterns.
Word lane_mask(std::size_t count, int j) {
  const std::size_t base = static_cast<std::size_t>(j) * kWordBits;
  if (count <= base) return 0;
  const std::size_t lanes = count - base;
  return lanes >= static_cast<std::size_t>(kWordBits) ? ~Word{0} : (Word{1} << lanes) - 1;
}

}  // namespace

ReplayReport replay_patterns(const CombModel& capture_model, const FaultList& faults,
                             const std::vector<TestPattern>& patterns) {
  ReplayReport report;
  report.patterns = static_cast<std::int64_t>(patterns.size());

  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < faults.faults.size(); ++i) {
    if (faults.faults[i].status == FaultStatus::kDetected) pending.push_back(i);
  }
  report.claimed = static_cast<std::int64_t>(pending.size());
  if (pending.empty()) return report;

  const std::size_t num_inputs = capture_model.input_nets().size();
  // Transition claims are replayed over the same launch-on-capture frame
  // pair the ATPG graded: the pattern is the launch frame, the capture
  // frame holds the PIs and feeds pseudo-inputs from the launch frame's
  // captured D values, the forced resimulation runs on the capture frame,
  // and a claim only confirms in lanes where the site held the
  // transition's initial value at launch.
  const bool transition = !faults.faults.empty() &&
                          faults.faults.front().model == FaultModel::kTransition;
  ParallelSim good(capture_model);
  std::vector<Word> input_words;
  std::vector<Word> launch_values;
  std::vector<Word> capture_inputs;
  // Forced resimulation is a full sweep per (fault, batch): super-batching
  // up to kMaxLaneWords x 64 patterns per sweep divides the sweep count by
  // the lane width. The confirmation for each claim is an OR over applied
  // lanes, so the grouping cannot change the verdict — semantics match
  // FaultSimulator::detects(): a stem forces the site net everywhere; a
  // branch forces it only at the one reading node of the faulted cell; a
  // branch on a flip-flop D pin (no logic reader) is captured directly
  // whenever the good value differs.
  std::vector<Word> faulty_scratch(capture_model.num_nets() *
                                   static_cast<std::size_t>(kMaxLaneWords));
  const SimKernels& kernels = sim_kernels();

  std::size_t base = 0;
  while (base < patterns.size() && !pending.empty()) {
    const std::size_t remaining = patterns.size() - base;
    const std::size_t remaining_words = (remaining + kWordBits - 1) / kWordBits;
    int nw = 1;
    while (nw * 2 <= kMaxLaneWords && static_cast<std::size_t>(nw) * 2 <= remaining_words) nw *= 2;
    const std::size_t batch = std::min<std::size_t>(static_cast<std::size_t>(nw) * kWordBits,
                                                    remaining);
    // Lanes past the pattern count hold an all-zero phantom input vector;
    // a detection there must not confirm a claim.
    good.configure_lanes(nw);
    input_words.assign(num_inputs * static_cast<std::size_t>(nw), 0);
    for (std::size_t k = 0; k < batch; ++k) {
      const auto& bits = patterns[base + k].bits;
      const std::size_t j = k / kWordBits;
      const int bit = static_cast<int>(k % kWordBits);
      for (std::size_t i = 0; i < num_inputs && i < bits.size(); ++i) {
        if (bits[i] != 0) {
          input_words[i * static_cast<std::size_t>(nw) + j] |= Word{1} << bit;
        }
      }
    }
    good.load_inputs(input_words);
    good.run();
    if (transition) {
      launch_values = good.values();  // V1 frame, net-major
      capture_inputs = input_words;   // PIs held across both cycles
      const std::size_t nff = capture_model.boundary_ffs().size();
      const std::size_t snw = static_cast<std::size_t>(nw);
      for (std::size_t i = 0; i < nff; ++i) {
        const NetId d =
            capture_model.observe_nets()[capture_model.num_po_observes() + i];
        const Word* src = launch_values.data() + static_cast<std::size_t>(d) * snw;
        for (std::size_t j = 0; j < snw; ++j) {
          capture_inputs[(capture_model.num_pi_inputs() + i) * snw + j] = src[j];
        }
      }
      good.load_inputs(capture_inputs);
      good.run();
    }

    std::size_t w = 0;
    for (const std::size_t fi : pending) {
      const Fault& fault = faults.faults[fi];
      const FaultTask task = resolve_fault_task(capture_model, fault);
      Word detect[kMaxLaneWords];
      kernels.forced(capture_model, good.values().data(), faulty_scratch.data(), task, detect, nw);
      Word any = 0;
      for (int j = 0; j < nw; ++j) {
        Word d = detect[j] & lane_mask(batch, j);
        if (transition) {
          const Word launch =
              launch_values[static_cast<std::size_t>(fault.net) *
                                static_cast<std::size_t>(nw) +
                            static_cast<std::size_t>(j)];
          d &= fault.stuck1 ? launch : ~launch;
        }
        any |= d;
      }
      if (any != 0) continue;  // confirmed
      pending[w++] = fi;
    }
    pending.resize(w);
    base += batch;
  }

  report.confirmed = report.claimed - static_cast<std::int64_t>(pending.size());
  for (const std::size_t fi : pending) {
    const Fault& f = faults.faults[fi];
    report.failures.push_back({fi, f.net, f.stuck1, f.is_stem()});
  }
  return report;
}

}  // namespace tpi
