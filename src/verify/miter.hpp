// Miter construction for sequential equivalence checking.
//
// A miter composes two netlists ("a" = golden, "b" = mutant) into one
// circuit that shares primary inputs by name and XOR-reduces the matched
// primary outputs into a single PO "miter_out": any input/state sequence
// driving miter_out to 1 is a functional counterexample. This is the
// standard front end of combinational and sequential equivalence checkers
// (cf. the CAR/BMC model-checking recipe); here it is used in *mission
// mode* — the application SeqView, where TSFF test points are transparent
// and scan controls are inert — to prove that the paper's DfT transforms
// (TPI, scan insertion, chain stitching, control buffering, ECOs) are
// functionally invisible in the field.
//
// PI matching is by name. Inputs that exist on only one side are the DfT
// controls the transform added (scan_en, tp_te, tp_tr, si<k>): by default
// they are tied to constant 0, which is exactly the mission-mode setting
// (TE = TR = 0, scan-in don't-care). POs that exist on only one side
// (so<k> scan-outs) are left unobserved by default. Both defaults can be
// disabled to check test-mode equivalence questions instead.
#pragma once

#include <memory>
#include <string>

#include "netlist/netlist.hpp"

namespace tpi {

struct MiterOptions {
  /// Non-clock PIs present on only one side are driven by a TIE0 cell
  /// (mission mode: added test controls held inactive). When false they
  /// become free shared PIs of the miter instead. Clock PIs are always
  /// shared, never tied.
  bool tie_unmatched_pis_low = true;
  /// POs present on only one side (scan-outs) are left unobserved. When
  /// false an unmatched PO is a construction error.
  bool ignore_unmatched_pos = true;
  /// Match POs by the name of the net feeding them instead of the port
  /// name. The .bench format names ports after their nets, so this is the
  /// key that survives a write -> read round trip.
  bool match_pos_by_net = false;
};

struct MiterResult {
  std::unique_ptr<Netlist> netlist;  ///< null when !ok()
  std::string error;                 ///< empty on success
  NetId out_net = kNoNet;            ///< net behind the "miter_out" PO
  int matched_pos = 0;               ///< PO pairs feeding the XOR reduction
  int unmatched_pos = 0;             ///< one-sided POs (ignored or error)
  int shared_pis = 0;                ///< PIs driven from one shared input
  int tied_pis = 0;                  ///< one-sided PIs tied to constant 0

  bool ok() const { return error.empty(); }
};

/// Build the miter of `a` and `b` (which must use the same CellLibrary).
/// Side a's cells and internal nets are cloned under an "a." prefix, side
/// b's under "b."; PIs are created in a's index order followed by b-only
/// inputs. The matched POs are XOR-ed pairwise and OR-reduced into the
/// single primary output "miter_out". Construction is deterministic: the
/// same inputs always produce a bit-identical miter netlist.
MiterResult build_miter(const Netlist& a, const Netlist& b, const MiterOptions& opts = {});

}  // namespace tpi
