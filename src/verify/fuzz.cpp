#include "verify/fuzz.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <utility>

#include "circuits/generator.hpp"
#include "netlist/bench_io.hpp"
#include "netlist/design_db.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"
#include "util/env.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "verify/miter.hpp"

namespace tpi {
namespace {

/// splitmix64 finalizer (same construction as the equivalence checker):
/// independent streams per (seed, salt) so a dropped transform never shifts
/// the randomness of the ones that remain.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv1a(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) h = (h ^ p[i]) * kFnvPrime;
  return h;
}

std::uint64_t fnv1a(std::uint64_t h, const std::string& s) { return fnv1a(h, s.data(), s.size()); }

int first_input_pin(const CellSpec* spec) {
  for (std::size_t p = 0; p < spec->pins.size(); ++p) {
    if (spec->pins[p].dir == PinDir::kInput) return static_cast<int>(p);
  }
  return -1;
}

}  // namespace

CircuitProfile default_fuzz_profile() {
  CircuitProfile p;
  p.name = "fuzz_tiny";
  p.num_ffs = 24;
  p.num_comb_gates = 320;
  p.num_pis = 10;
  p.num_pos = 8;
  p.num_clock_domains = 1;
  p.domain_fraction = {1.0};
  p.target_depth = 10;
  p.num_hard_blocks = 2;
  p.hard_block_width = 6;
  p.hard_classes_per_block = 4;
  p.hard_mode_bits = 3;
  p.num_hub_signals = 3;
  p.hub_pick_prob = 0.02;
  p.max_chain_length = 10;
  return p;
}

EquivOptions fuzz_equiv_budget() {
  EquivOptions e;
  e.random_rounds = 2;
  e.frames_per_round = 8;
  e.unroll_rounds = 1;
  e.unroll_frames = 6;
  e.ternary_frames = 6;
  return e;
}

FuzzOptions FuzzOptions::from_env() {
  // Delegates to the consolidated env layer; FlowConfig::from_env() reads
  // the same variables with the same validation and ranges.
  FuzzOptions o;
  o.seed = env_u64("TPI_FUZZ_SEED", o.seed);
  o.iterations = static_cast<int>(env_int("TPI_FUZZ_ITERS", o.iterations, 1, 1000000));
  return o;
}

std::vector<FuzzTransform> default_fuzz_transforms() {
  std::vector<FuzzTransform> t;

  // TSFF insertion at 0–5% of the flip-flop count (§3.1 at fuzz scale).
  t.push_back({"tpi_insert", [](DesignDB& db, Rng& rng) {
                 const int ffs = static_cast<int>(db.netlist().flip_flops().size());
                 const int cap = std::max(1, ffs / 20);
                 const int num = static_cast<int>(rng.next_range(0, cap));
                 if (num == 0) return;
                 TpiOptions opts;
                 opts.num_test_points = num;
                 opts.rounds = 2;
                 insert_test_points(db, opts);
               }});

  // DFF -> SDFF conversion with the shared scan enable.
  t.push_back({"scan_insert", [](DesignDB& db, Rng& rng) {
                 ScanOptions opts;
                 opts.max_chain_length = static_cast<int>(rng.next_range(4, 16));
                 insert_scan(db.netlist(), opts);
               }});

  // Scan-chain stitching (insert scan first when it has not run yet);
  // guarded against double stitching — TI pins connect only once.
  t.push_back({"chain_stitch", [](DesignDB& db, Rng& rng) {
                 Netlist& nl = db.netlist();
                 if (nl.find_net("si0") != kNoNet) return;
                 ScanOptions opts;
                 opts.max_chain_length = static_cast<int>(rng.next_range(4, 16));
                 if (nl.find_net("scan_en") == kNoNet) insert_scan(nl, opts);
                 const ChainPlan plan = plan_chains(nl, opts, {});
                 stitch_chains(nl, plan);
               }});

  // Buffer tree on a DfT control net (scan enable / TSFF TE / TR).
  t.push_back({"ctrl_buffer", [](DesignDB& db, Rng& rng) {
                 Netlist& nl = db.netlist();
                 std::vector<NetId> nets;
                 for (const char* name : {"scan_en", "tp_te", "tp_tr"}) {
                   const NetId n = nl.find_net(name);
                   if (n != kNoNet && nl.net(n).fanout() >= 2) nets.push_back(n);
                 }
                 if (nets.empty()) return;
                 const NetId net = nets[rng.next_below(nets.size())];
                 const int max_fanout = static_cast<int>(rng.next_range(4, 15));
                 buffer_high_fanout_net(nl, net, max_fanout);
               }});

  // CTS-style ECO: drop a clock buffer into a clock root.
  t.push_back({"clock_buffer_eco", [](DesignDB& db, Rng& rng) {
                 Netlist& nl = db.netlist();
                 const auto& clocks = nl.clock_pis();
                 const auto& bufs = nl.library().clock_buffers();
                 if (clocks.empty() || bufs.empty()) return;
                 const NetId root = nl.pi_net(clocks[rng.next_below(clocks.size())]);
                 if (nl.net(root).fanout() == 0) return;
                 const CellSpec* spec = bufs[rng.next_below(bufs.size())];
                 const int in_pin = first_input_pin(spec);
                 if (in_pin < 0) return;
                 const CellId buf =
                     nl.add_cell(spec, "fuzz.clkbuf." + std::to_string(nl.num_cells()));
                 nl.insert_cell_in_net(root, buf, in_pin);
               }});

  // Filler ECO: pin-less cells must be invisible to every derived view.
  t.push_back({"filler_eco", [](DesignDB& db, Rng& rng) {
                 Netlist& nl = db.netlist();
                 const auto& fillers = nl.library().fillers();
                 if (fillers.empty()) return;
                 const int count = static_cast<int>(rng.next_range(1, 3));
                 for (int i = 0; i < count; ++i) {
                   const CellSpec* spec = fillers[rng.next_below(fillers.size())];
                   nl.add_cell(spec, "fuzz.fill." + std::to_string(nl.num_cells()));
                 }
               }});

  return t;
}

TransformFuzzer::TransformFuzzer(const CellLibrary& lib, FuzzOptions opts)
    : lib_(&lib), opts_(std::move(opts)), transforms_(default_fuzz_transforms()) {}

void TransformFuzzer::set_transforms(std::vector<FuzzTransform> transforms) {
  transforms_ = std::move(transforms);
}

void TransformFuzzer::add_transform(FuzzTransform transform) {
  transforms_.push_back(std::move(transform));
}

std::string TransformFuzzer::apply_pipeline(Netlist& nl, std::uint64_t iter_seed,
                                            const std::vector<PlanStep>& steps) const {
  DesignDB db(nl);
  for (const PlanStep& s : steps) {
    Rng rng(mix_seed(iter_seed, 0x100u + static_cast<unsigned>(s.position)));
    transforms_[static_cast<std::size_t>(s.transform)].apply(db, rng);
  }
  return nl.validate();
}

bool TransformFuzzer::pipeline_fails(const Netlist& golden, std::uint64_t iter_seed,
                                     const std::vector<PlanStep>& steps, bool shrink_cex,
                                     std::string* error, CexTrace* cex) const {
  Netlist mutant(golden);
  const std::string err = apply_pipeline(mutant, iter_seed, steps);
  if (!err.empty()) {
    if (error != nullptr) *error = err;
    return true;
  }
  const MiterResult m = build_miter(golden, mutant);
  if (!m.ok()) {
    if (error != nullptr) *error = m.error;
    return true;
  }
  EquivOptions eo = opts_.equiv;
  eo.shrink = shrink_cex;
  const EquivResult er = EquivChecker(*m.netlist, eo).check();
  if (er.equivalent) return false;
  if (cex != nullptr) *cex = er.cex;
  return true;
}

FuzzReport TransformFuzzer::run() {
  FuzzReport rep;
  rep.digest = kFnvOffset;
  for (int i = 0; i < opts_.iterations; ++i) {
    const std::uint64_t iter_seed = mix_seed(opts_.seed, static_cast<std::uint64_t>(i));
    CircuitProfile prof = opts_.profile;
    prof.seed = mix_seed(iter_seed, 1);
    const std::unique_ptr<Netlist> golden = generate_circuit(*lib_, prof);

    Rng plan(mix_seed(iter_seed, 2));
    const int count =
        static_cast<int>(plan.next_range(opts_.min_transforms, opts_.max_transforms));
    std::vector<PlanStep> steps;
    steps.reserve(static_cast<std::size_t>(count));
    for (int p = 0; p < count; ++p) {
      steps.push_back({static_cast<int>(plan.next_below(transforms_.size())), p});
    }
    rep.transforms_applied += count;

    std::string error;
    const bool failed = pipeline_fails(*golden, iter_seed, steps, /*shrink_cex=*/false, &error,
                                       nullptr);
    if (failed) {
      FuzzFailure fail;
      fail.iteration = i;
      for (const PlanStep& s : steps) {
        fail.pipeline.push_back(transforms_[static_cast<std::size_t>(s.transform)].name);
      }
      // Greedy transform dropping: each remaining step keeps its original
      // position seed, so subsets reproduce exactly.
      std::vector<PlanStep> min_steps = steps;
      bool changed = true;
      while (changed) {
        changed = false;
        for (std::size_t k = 0; k < min_steps.size(); ++k) {
          std::vector<PlanStep> trial = min_steps;
          trial.erase(trial.begin() + static_cast<std::ptrdiff_t>(k));
          if (pipeline_fails(*golden, iter_seed, trial, false, nullptr, nullptr)) {
            min_steps = std::move(trial);
            changed = true;
            break;
          }
        }
      }
      fail.error.clear();
      pipeline_fails(*golden, iter_seed, min_steps, /*shrink_cex=*/true, &fail.error, &fail.cex);
      for (const PlanStep& s : min_steps) {
        fail.minimized.push_back(transforms_[static_cast<std::size_t>(s.transform)].name);
      }
      rep.failures.push_back(std::move(fail));
    }

    // Digest folds the mutant netlist and the outcome — the determinism
    // contract tests compare across thread-count environment settings.
    Netlist mutant(*golden);
    apply_pipeline(mutant, iter_seed, steps);
    rep.digest = fnv1a(rep.digest, write_bench_string(mutant));
    const unsigned char outcome = failed ? 1 : 0;
    rep.digest = fnv1a(rep.digest, &outcome, 1);
    ++rep.iterations_run;
  }
  return rep;
}

}  // namespace tpi
