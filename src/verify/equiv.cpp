#include "verify/equiv.hpp"

#include <bit>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/seq_sim.hpp"
#include "sim/ternary.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

/// splitmix64 finalizer — derives independent round seeds from (seed, salt)
/// so adding rounds never perturbs the streams of earlier ones.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Single-lane replay of a trace; returns the first frame where any real PO
/// of the model fires (for a miter: miter_out), or -1.
int fail_frame_of(const CombModel& model, const CexTrace& cex) {
  SequentialSim sim(model);
  if (!cex.initial_state.empty()) {
    std::vector<Word> st(model.boundary_ffs().size(), 0);
    for (std::size_t i = 0; i < st.size() && i < cex.initial_state.size(); ++i) {
      st[i] = cex.initial_state[i] ? ~Word{0} : Word{0};
    }
    sim.set_state(st);
  }
  std::vector<Word> pi(model.num_pi_inputs(), 0);
  std::vector<Word> po;
  for (std::size_t f = 0; f < cex.pi_frames.size(); ++f) {
    const auto& bits = cex.pi_frames[f];
    for (std::size_t i = 0; i < pi.size(); ++i) {
      pi[i] = (i < bits.size() && bits[i] != 0) ? ~Word{0} : Word{0};
    }
    sim.step(pi, po);
    Word out = 0;
    for (const Word w : po) out |= w;
    if (out != 0) return static_cast<int>(f);
  }
  return -1;
}

}  // namespace

EquivChecker::EquivChecker(const Netlist& miter, const EquivOptions& opts)
    : nl_(&miter), opts_(opts), model_(miter, SeqView::kApplication) {
  // Pair boundary FFs across the two miter sides by base name: "a.f3" and
  // "b.f3" are the same mission-mode register and must agree on the random
  // initial value in the unroll engine, or a state the design could never
  // hold would raise false alarms.
  const auto& ffs = model_.boundary_ffs();
  state_pair_.assign(ffs.size(), -1);
  const auto is_prefixed = [](const std::string& name) {
    return name.size() >= 2 && name[1] == '.' && (name[0] == 'a' || name[0] == 'b');
  };
  // Pass 1 keys on the cell name; pass 2 retries the leftovers with the Q
  // net name, which survives transforms that rename cells (e.g. a .bench
  // round trip, whose reader regenerates cell names but keeps net names).
  for (const bool use_net_name : {false, true}) {
    std::unordered_map<std::string, int> by_base;
    by_base.reserve(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      if (state_pair_[i] >= 0) continue;
      const CellInst& ff = miter.cell(ffs[i]);
      if (use_net_name && ff.output_net() == kNoNet) continue;
      const std::string& name =
          use_net_name ? miter.net(ff.output_net()).name : ff.name;
      if (!is_prefixed(name)) continue;
      const auto [it, inserted] = by_base.emplace(name.substr(2), static_cast<int>(i));
      if (!inserted && state_pair_[static_cast<std::size_t>(it->second)] < 0) {
        state_pair_[i] = it->second;
        state_pair_[static_cast<std::size_t>(it->second)] = static_cast<int>(i);
      }
    }
  }
}

EquivResult EquivChecker::check() {
  EquivResult res;
  CexTrace cex;
  bool found = false;
  for (int r = 0; !found && r < opts_.random_rounds; ++r) {
    found = sim_round(mix_seed(opts_.seed, 0x1000u + static_cast<unsigned>(r)),
                      opts_.frames_per_round, /*random_init=*/false, "random", &cex,
                      &res.frames_simulated);
  }
  for (int r = 0; !found && r < opts_.unroll_rounds; ++r) {
    found = sim_round(mix_seed(opts_.seed, 0x2000u + static_cast<unsigned>(r)),
                      opts_.unroll_frames, /*random_init=*/true, "unroll", &cex,
                      &res.frames_simulated);
  }
  if (!found && opts_.ternary_frames > 0) {
    bool proven = false;
    found = ternary_round(mix_seed(opts_.seed, 0x3000u), opts_.ternary_frames, &proven, &cex,
                          &res.frames_simulated);
    res.proven_x_init = proven;
  }
  if (found) {
    res.equivalent = false;
    res.proven_x_init = false;
    res.cex = opts_.shrink ? shrink_trace(cex) : cex;
  }
  return res;
}

bool EquivChecker::replay(const CexTrace& cex) const { return fail_frame_of(model_, cex) >= 0; }

bool EquivChecker::sim_round(std::uint64_t round_seed, int frames, bool random_init,
                             const char* source, CexTrace* cex,
                             std::int64_t* frames_simulated) const {
  Rng rng(round_seed);
  SequentialSim sim(model_);
  std::vector<Word> init_words;
  if (random_init) {
    init_words.resize(model_.boundary_ffs().size());
    for (std::size_t i = 0; i < init_words.size(); ++i) {
      const int pair = state_pair_[i];
      if (pair >= 0 && pair < static_cast<int>(i)) {
        init_words[i] = init_words[static_cast<std::size_t>(pair)];
      } else {
        init_words[i] = rng.next_u64();
      }
    }
    sim.set_state(init_words);
  }
  std::vector<std::vector<Word>> pi_history;
  std::vector<Word> pi_words(model_.num_pi_inputs());
  std::vector<Word> po_words;
  for (int f = 0; f < frames; ++f) {
    for (Word& w : pi_words) w = rng.next_u64();
    pi_history.push_back(pi_words);
    sim.step(pi_words, po_words);
    ++*frames_simulated;
    Word fail = 0;
    for (const Word w : po_words) fail |= w;
    if (fail == 0) continue;
    const int lane = std::countr_zero(fail);
    cex->source = source;
    cex->fail_frame = f;
    cex->pi_frames.clear();
    for (const auto& frame : pi_history) {
      std::vector<std::uint8_t> bits(frame.size());
      for (std::size_t i = 0; i < frame.size(); ++i) {
        bits[i] = static_cast<std::uint8_t>((frame[i] >> lane) & 1u);
      }
      cex->pi_frames.push_back(std::move(bits));
    }
    cex->initial_state.clear();
    if (random_init) {
      cex->initial_state.resize(init_words.size());
      for (std::size_t i = 0; i < init_words.size(); ++i) {
        cex->initial_state[i] = static_cast<std::uint8_t>((init_words[i] >> lane) & 1u);
      }
    }
    return true;
  }
  return false;
}

bool EquivChecker::ternary_round(std::uint64_t round_seed, int frames, bool* proven,
                                 CexTrace* cex, std::int64_t* frames_simulated) const {
  Rng rng(round_seed);
  std::vector<Tern> value(model_.num_nets(), Tern::kX);
  std::vector<Tern> state(model_.boundary_ffs().size(), Tern::kX);
  const auto& inputs = model_.input_nets();
  const auto& observes = model_.observe_nets();
  std::vector<std::vector<std::uint8_t>> pi_history;
  bool all_zero = true;
  for (int f = 0; f < frames; ++f) {
    for (const NetId n : model_.const0_nets()) value[static_cast<std::size_t>(n)] = Tern::k0;
    for (const NetId n : model_.const1_nets()) value[static_cast<std::size_t>(n)] = Tern::k1;
    std::vector<std::uint8_t> bits(model_.num_pi_inputs());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      bits[i] = rng.next_bool() ? 1 : 0;
      value[static_cast<std::size_t>(inputs[i])] = bits[i] != 0 ? Tern::k1 : Tern::k0;
    }
    pi_history.push_back(std::move(bits));
    for (std::size_t i = 0; i < state.size(); ++i) {
      value[static_cast<std::size_t>(inputs[model_.num_pi_inputs() + i])] = state[i];
    }
    for (const CombNode& node : model_.nodes()) {
      Tern in[4] = {Tern::kX, Tern::kX, Tern::kX, Tern::kX};
      for (int k = 0; k < node.num_inputs; ++k) {
        in[k] = value[static_cast<std::size_t>(node.in[k])];
      }
      const Tern sel =
          node.sel == kNoNet ? Tern::kX : value[static_cast<std::size_t>(node.sel)];
      value[static_cast<std::size_t>(node.out)] = eval_node_tern(node, in, sel);
    }
    ++*frames_simulated;
    Tern out = Tern::k0;
    for (std::size_t i = 0; i < model_.num_po_observes(); ++i) {
      out = tern_or(out, value[static_cast<std::size_t>(observes[i])]);
    }
    if (out == Tern::k1) {
      // A definite 1 under an all-X state fires under EVERY initial state,
      // so the trace is valid from reset too — initial_state stays empty.
      cex->source = "ternary";
      cex->fail_frame = f;
      cex->pi_frames = std::move(pi_history);
      cex->initial_state.clear();
      return true;
    }
    if (out != Tern::k0) all_zero = false;
    for (std::size_t i = 0; i < state.size(); ++i) {
      state[i] = value[static_cast<std::size_t>(observes[model_.num_po_observes() + i])];
    }
  }
  *proven = all_zero;
  return false;
}

CexTrace EquivChecker::shrink_trace(const CexTrace& cex) const {
  CexTrace best = cex;
  int ff = fail_frame_of(model_, best);
  if (ff < 0) return best;  // not reproducible single-lane; return untouched
  best.pi_frames.resize(static_cast<std::size_t>(ff) + 1);
  best.fail_frame = ff;

  // Greedy frame dropping (ddmin-lite, granularity 1): keep removing any
  // single frame whose absence preserves the mismatch.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < best.pi_frames.size(); ++i) {
      CexTrace t = best;
      t.pi_frames.erase(t.pi_frames.begin() + static_cast<std::ptrdiff_t>(i));
      const int f = fail_frame_of(model_, t);
      if (f < 0) continue;
      t.pi_frames.resize(static_cast<std::size_t>(f) + 1);
      t.fail_frame = f;
      best = std::move(t);
      changed = true;
      break;
    }
  }

  // Clear set initial-state bits, then set PI bits, to 0.
  auto try_clear = [&](std::uint8_t& bit) {
    if (bit == 0) return;
    CexTrace t = best;
    bit = 0;  // best is mutated through the reference; undo on failure
    const int f = fail_frame_of(model_, best);
    if (f < 0) {
      best = std::move(t);
      return;
    }
    best.pi_frames.resize(static_cast<std::size_t>(f) + 1);
    best.fail_frame = f;
  };
  for (std::size_t i = 0; i < best.initial_state.size(); ++i) try_clear(best.initial_state[i]);
  bool any_state = false;
  for (const std::uint8_t b : best.initial_state) any_state |= (b != 0);
  if (!any_state) best.initial_state.clear();  // all-zero == reset
  // A successful clear can make the failure fire earlier and shrink the
  // frame list under us — re-check f against the current size every step.
  for (std::size_t f = 0; f < best.pi_frames.size(); ++f) {
    for (std::size_t i = 0; f < best.pi_frames.size() && i < best.pi_frames[f].size(); ++i) {
      try_clear(best.pi_frames[f][i]);
    }
  }
  return best;
}

}  // namespace tpi
