#include "verify/equiv.hpp"

#include <bit>
#include <string>
#include <unordered_map>
#include <vector>

#include "sim/kernels.hpp"
#include "sim/seq_sim.hpp"
#include "sim/ternary_planes.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

/// splitmix64 finalizer — derives independent round seeds from (seed, salt)
/// so adding rounds never perturbs the streams of earlier ones.
std::uint64_t mix_seed(std::uint64_t seed, std::uint64_t salt) {
  std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (salt + 1);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Largest power of two <= min(kMaxLaneWords, remaining): the lockstep
/// group width is picked from the round budget alone (never from CPU
/// capability), so verdicts are bit-identical across kernel backends.
int group_width(int remaining) {
  int nw = 1;
  while (nw * 2 <= kMaxLaneWords && nw * 2 <= remaining) nw *= 2;
  return nw;
}

/// Single-lane replay of a trace; returns the first frame where any real PO
/// of the model fires (for a miter: miter_out), or -1.
int fail_frame_of(const CombModel& model, const CexTrace& cex) {
  SequentialSim sim(model);
  if (!cex.initial_state.empty()) {
    std::vector<Word> st(model.boundary_ffs().size(), 0);
    for (std::size_t i = 0; i < st.size() && i < cex.initial_state.size(); ++i) {
      st[i] = cex.initial_state[i] ? ~Word{0} : Word{0};
    }
    sim.set_state(st);
  }
  std::vector<Word> pi(model.num_pi_inputs(), 0);
  std::vector<Word> po;
  for (std::size_t f = 0; f < cex.pi_frames.size(); ++f) {
    const auto& bits = cex.pi_frames[f];
    for (std::size_t i = 0; i < pi.size(); ++i) {
      pi[i] = (i < bits.size() && bits[i] != 0) ? ~Word{0} : Word{0};
    }
    sim.step(pi, po);
    Word out = 0;
    for (const Word w : po) out |= w;
    if (out != 0) return static_cast<int>(f);
  }
  return -1;
}

}  // namespace

EquivChecker::EquivChecker(const Netlist& miter, const EquivOptions& opts)
    : nl_(&miter), opts_(opts), model_(miter, SeqView::kApplication) {
  // Pair boundary FFs across the two miter sides by base name: "a.f3" and
  // "b.f3" are the same mission-mode register and must agree on the random
  // initial value in the unroll engine, or a state the design could never
  // hold would raise false alarms.
  const auto& ffs = model_.boundary_ffs();
  state_pair_.assign(ffs.size(), -1);
  const auto is_prefixed = [](const std::string& name) {
    return name.size() >= 2 && name[1] == '.' && (name[0] == 'a' || name[0] == 'b');
  };
  // Pass 1 keys on the cell name; pass 2 retries the leftovers with the Q
  // net name, which survives transforms that rename cells (e.g. a .bench
  // round trip, whose reader regenerates cell names but keeps net names).
  for (const bool use_net_name : {false, true}) {
    std::unordered_map<std::string, int> by_base;
    by_base.reserve(ffs.size());
    for (std::size_t i = 0; i < ffs.size(); ++i) {
      if (state_pair_[i] >= 0) continue;
      const CellInst& ff = miter.cell(ffs[i]);
      if (use_net_name && ff.output_net() == kNoNet) continue;
      const std::string& name =
          use_net_name ? miter.net(ff.output_net()).name : ff.name;
      if (!is_prefixed(name)) continue;
      const auto [it, inserted] = by_base.emplace(name.substr(2), static_cast<int>(i));
      if (!inserted && state_pair_[static_cast<std::size_t>(it->second)] < 0) {
        state_pair_[i] = it->second;
        state_pair_[static_cast<std::size_t>(it->second)] = static_cast<int>(i);
      }
    }
  }
}

EquivResult EquivChecker::check() {
  EquivResult res;
  CexTrace cex;
  bool found = false;
  for (int r = 0; !found && r < opts_.random_rounds;) {
    const int nb = group_width(opts_.random_rounds - r);
    found = sim_group(0x1000u, r, nb, opts_.frames_per_round, /*random_init=*/false, "random",
                      &cex, &res.frames_simulated);
    r += nb;
  }
  for (int r = 0; !found && r < opts_.unroll_rounds;) {
    const int nb = group_width(opts_.unroll_rounds - r);
    found = sim_group(0x2000u, r, nb, opts_.unroll_frames, /*random_init=*/true, "unroll",
                      &cex, &res.frames_simulated);
    r += nb;
  }
  if (!found && opts_.ternary_frames > 0) {
    bool proven = false;
    found = ternary_round(mix_seed(opts_.seed, 0x3000u), opts_.ternary_frames, &proven, &cex,
                          &res.frames_simulated);
    res.proven_x_init = proven;
  }
  if (found) {
    res.equivalent = false;
    res.proven_x_init = false;
    res.cex = opts_.shrink ? shrink_trace(cex) : cex;
  }
  return res;
}

bool EquivChecker::replay(const CexTrace& cex) const { return fail_frame_of(model_, cex) >= 0; }

bool EquivChecker::sim_group(std::uint64_t base_salt, int first_round, int num_rounds,
                             int frames, bool random_init, const char* source, CexTrace* cex,
                             std::int64_t* frames_simulated) const {
  // One lane word per round: round (first_round + j) owns lane word j and
  // keeps its own Rng stream, seeded exactly as the one-round-at-a-time
  // engine seeded it — lockstepping the group changes the wall clock,
  // never the draws, the winning round, or the counterexample.
  const std::size_t nw = static_cast<std::size_t>(num_rounds);
  std::vector<Rng> rngs;
  rngs.reserve(nw);
  for (std::size_t j = 0; j < nw; ++j) {
    rngs.emplace_back(
        mix_seed(opts_.seed, base_salt + static_cast<unsigned>(first_round) + j));
  }
  SequentialSim sim(model_, num_rounds);
  const std::size_t nff = model_.boundary_ffs().size();
  std::vector<Word> init_words;
  if (random_init) {
    init_words.resize(nff * nw);
    for (std::size_t i = 0; i < nff; ++i) {
      const int pair = state_pair_[i];
      for (std::size_t j = 0; j < nw; ++j) {
        init_words[i * nw + j] = (pair >= 0 && pair < static_cast<int>(i))
                                     ? init_words[static_cast<std::size_t>(pair) * nw + j]
                                     : rngs[j].next_u64();
      }
    }
    sim.set_state(init_words);
  }
  std::vector<std::vector<Word>> pi_history;
  std::vector<Word> pi_words(model_.num_pi_inputs() * nw);
  std::vector<Word> po_words;
  std::vector<int> first_fail(nw, -1);
  std::vector<Word> fail_word(nw, 0);
  bool all_failed = false;
  for (int f = 0; f < frames && !all_failed; ++f) {
    for (std::size_t i = 0; i < model_.num_pi_inputs(); ++i) {
      for (std::size_t j = 0; j < nw; ++j) pi_words[i * nw + j] = rngs[j].next_u64();
    }
    pi_history.push_back(pi_words);
    sim.step(pi_words, po_words);
    all_failed = true;
    for (std::size_t j = 0; j < nw; ++j) {
      if (first_fail[j] >= 0) continue;
      Word fail = 0;
      for (std::size_t i = 0; i < model_.num_po_observes(); ++i) fail |= po_words[i * nw + j];
      if (fail != 0) {
        first_fail[j] = f;
        fail_word[j] = fail;
      } else {
        all_failed = false;
      }
    }
  }
  // The winner is the lowest round index with a failure — exactly the round
  // the sequential engine stops at. A lower-index round failing at a later
  // frame still wins over a higher-index early failure, which is why the
  // frame loop cannot stop at the first failure it sees.
  int winner = -1;
  for (std::size_t j = 0; j < nw; ++j) {
    if (first_fail[j] >= 0) {
      winner = static_cast<int>(j);
      break;
    }
  }
  if (winner < 0) {
    *frames_simulated += static_cast<std::int64_t>(num_rounds) * frames;
    return false;
  }
  // Rounds before the winner ran their full budget, the winner stopped at
  // its first failing frame, later rounds never ran — the same accounting
  // the sequential engine reported.
  *frames_simulated += static_cast<std::int64_t>(winner) * frames + first_fail[winner] + 1;
  const std::size_t w = static_cast<std::size_t>(winner);
  const int lane = std::countr_zero(fail_word[w]);
  cex->source = source;
  cex->fail_frame = first_fail[w];
  cex->pi_frames.clear();
  for (int f = 0; f <= first_fail[w]; ++f) {
    const auto& frame = pi_history[static_cast<std::size_t>(f)];
    std::vector<std::uint8_t> bits(model_.num_pi_inputs());
    for (std::size_t i = 0; i < bits.size(); ++i) {
      bits[i] = static_cast<std::uint8_t>((frame[i * nw + w] >> lane) & 1u);
    }
    cex->pi_frames.push_back(std::move(bits));
  }
  cex->initial_state.clear();
  if (random_init) {
    cex->initial_state.resize(nff);
    for (std::size_t i = 0; i < nff; ++i) {
      cex->initial_state[i] = static_cast<std::uint8_t>((init_words[i * nw + w] >> lane) & 1u);
    }
  }
  return true;
}

bool EquivChecker::ternary_round(std::uint64_t round_seed, int frames, bool* proven,
                                 CexTrace* cex, std::int64_t* frames_simulated) const {
  // Full-width two-plane pass: kMaxLaneWords x 64 independent random input
  // trajectories, every one from the all-X initial state. A definite 1 in
  // any lane is a counterexample valid from reset; a proof means the miter
  // output was a definite 0 in every lane of every frame.
  using Enc = TernEncoding;
  constexpr std::size_t nw = static_cast<std::size_t>(kMaxLaneWords);
  Rng rng(round_seed);
  const std::size_t nets = static_cast<std::size_t>(model_.num_nets());
  std::vector<Word> plane_p(nets * nw, 0);
  std::vector<Word> plane_q(nets * nw, 0);  // (0,0) == X in both encodings
  const std::size_t nff = model_.boundary_ffs().size();
  std::vector<Word> state_p(nff * nw, 0);
  std::vector<Word> state_q(nff * nw, 0);
  for (const NetId n : model_.const0_nets()) {
    for (std::size_t j = 0; j < nw; ++j) {
      Enc::zero(plane_p[static_cast<std::size_t>(n) * nw + j],
                plane_q[static_cast<std::size_t>(n) * nw + j]);
    }
  }
  for (const NetId n : model_.const1_nets()) {
    for (std::size_t j = 0; j < nw; ++j) {
      Enc::one(plane_p[static_cast<std::size_t>(n) * nw + j],
               plane_q[static_cast<std::size_t>(n) * nw + j]);
    }
  }
  const auto& inputs = model_.input_nets();
  const auto& observes = model_.observe_nets();
  const SimKernels& kernels = sim_kernels();
  std::vector<std::vector<Word>> pi_history;
  std::vector<Word> pi_bits(model_.num_pi_inputs() * nw);
  bool all_zero = true;
  for (int f = 0; f < frames; ++f) {
    for (std::size_t i = 0; i < model_.num_pi_inputs(); ++i) {
      const std::size_t base = static_cast<std::size_t>(inputs[i]) * nw;
      for (std::size_t j = 0; j < nw; ++j) {
        const Word bits = rng.next_u64();
        pi_bits[i * nw + j] = bits;
        Enc::from_bits(bits, plane_p[base + j], plane_q[base + j]);
      }
    }
    pi_history.push_back(pi_bits);
    for (std::size_t i = 0; i < nff; ++i) {
      const std::size_t base =
          static_cast<std::size_t>(inputs[model_.num_pi_inputs() + i]) * nw;
      for (std::size_t j = 0; j < nw; ++j) {
        plane_p[base + j] = state_p[i * nw + j];
        plane_q[base + j] = state_q[i * nw + j];
      }
    }
    kernels.tern_sweep(model_, plane_p.data(), plane_q.data(), static_cast<int>(nw));
    ++*frames_simulated;
    int fail_j = -1;
    Word fail = 0;
    for (std::size_t j = 0; j < nw && fail_j < 0; ++j) {
      Word ones = 0;
      Word known0 = ~Word{0};
      for (std::size_t i = 0; i < model_.num_po_observes(); ++i) {
        const std::size_t base = static_cast<std::size_t>(observes[i]) * nw;
        ones |= Enc::ones(plane_p[base + j], plane_q[base + j]);
        known0 &= Enc::zeros(plane_p[base + j], plane_q[base + j]);
      }
      if (known0 != ~Word{0}) all_zero = false;
      if (ones != 0) {
        fail_j = static_cast<int>(j);
        fail = ones;
      }
    }
    if (fail_j >= 0) {
      // A definite 1 under an all-X state fires under EVERY initial state,
      // so the trace is valid from reset too — initial_state stays empty.
      const std::size_t w = static_cast<std::size_t>(fail_j);
      const int lane = std::countr_zero(fail);
      cex->source = "ternary";
      cex->fail_frame = f;
      cex->pi_frames.clear();
      for (const auto& frame : pi_history) {
        std::vector<std::uint8_t> bits(model_.num_pi_inputs());
        for (std::size_t i = 0; i < bits.size(); ++i) {
          bits[i] = static_cast<std::uint8_t>((frame[i * nw + w] >> lane) & 1u);
        }
        cex->pi_frames.push_back(std::move(bits));
      }
      cex->initial_state.clear();
      return true;
    }
    for (std::size_t i = 0; i < nff; ++i) {
      const std::size_t base =
          static_cast<std::size_t>(observes[model_.num_po_observes() + i]) * nw;
      for (std::size_t j = 0; j < nw; ++j) {
        state_p[i * nw + j] = plane_p[base + j];
        state_q[i * nw + j] = plane_q[base + j];
      }
    }
  }
  *proven = all_zero;
  return false;
}

CexTrace EquivChecker::shrink_trace(const CexTrace& cex) const {
  CexTrace best = cex;
  int ff = fail_frame_of(model_, best);
  if (ff < 0) return best;  // not reproducible single-lane; return untouched
  best.pi_frames.resize(static_cast<std::size_t>(ff) + 1);
  best.fail_frame = ff;

  // Greedy frame dropping (ddmin-lite, granularity 1): keep removing any
  // single frame whose absence preserves the mismatch.
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t i = 0; i < best.pi_frames.size(); ++i) {
      CexTrace t = best;
      t.pi_frames.erase(t.pi_frames.begin() + static_cast<std::ptrdiff_t>(i));
      const int f = fail_frame_of(model_, t);
      if (f < 0) continue;
      t.pi_frames.resize(static_cast<std::size_t>(f) + 1);
      t.fail_frame = f;
      best = std::move(t);
      changed = true;
      break;
    }
  }

  // Clear set initial-state bits, then set PI bits, to 0.
  auto try_clear = [&](std::uint8_t& bit) {
    if (bit == 0) return;
    CexTrace t = best;
    bit = 0;  // best is mutated through the reference; undo on failure
    const int f = fail_frame_of(model_, best);
    if (f < 0) {
      best = std::move(t);
      return;
    }
    best.pi_frames.resize(static_cast<std::size_t>(f) + 1);
    best.fail_frame = f;
  };
  for (std::size_t i = 0; i < best.initial_state.size(); ++i) try_clear(best.initial_state[i]);
  bool any_state = false;
  for (const std::uint8_t b : best.initial_state) any_state |= (b != 0);
  if (!any_state) best.initial_state.clear();  // all-zero == reset
  // A successful clear can make the failure fire earlier and shrink the
  // frame list under us — re-check f against the current size every step.
  for (std::size_t f = 0; f < best.pi_frames.size(); ++f) {
    for (std::size_t i = 0; f < best.pi_frames.size() && i < best.pi_frames[f].size(); ++i) {
      try_clear(best.pi_frames[f][i]);
    }
  }
  return best;
}

}  // namespace tpi
