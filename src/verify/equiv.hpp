// Sequential equivalence checking over a miter (BMC-lite).
//
// The checker runs three escalating engines over the miter's application
// view (mission mode — TSFF test points transparent, tied controls at 0):
//
//  1. random simulation from the reset state — 64 independent lanes per
//     round, the cheap bug-finder;
//  2. bounded time-frame unrolling from *paired* random initial states:
//     flip-flops that correspond across the two sides (cell "a.X" with
//     cell "b.X") start from the same random value, so any reachable or
//     unreachable-but-consistent state is explored. This is the CAR-style
//     "start anywhere" check that catches state-update bugs random reset
//     traces need many frames to reach;
//  3. a ternary (0/1/X) pass with the initial state fully X: if miter_out
//     stays 0 for a whole random input sequence, the miter is proven
//     silent on that sequence for EVERY initial state; if it evaluates to
//     a definite 1, that is a counterexample valid from reset too.
//
// Rounds of engines 1 and 2 run in lockstep groups on the SIMD substrate:
// up to kMaxLaneWords rounds share one wide SequentialSim (one lane word
// per round, each with its own Rng stream seeded as if run alone), so a
// group sweeps every node once for up to 512 lanes instead of once per
// round. The verdict, counterexample, and frames_simulated accounting are
// bit-identical to running the rounds one at a time — the winner is the
// lowest round index that fails, at its first failing frame. The ternary
// engine runs kMaxLaneWords x 64 two-plane trajectories per sweep
// (sim/ternary_planes.hpp); its proof covers all of them.
//
// A mismatch yields a CexTrace (initial state + per-frame PI vectors) that
// can be replayed and shrunk: frames are dropped greedily, then set PI and
// state bits are cleared to 0 while the mismatch persists.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/comb_model.hpp"

namespace tpi {

struct EquivOptions {
  std::uint64_t seed = 0x5EC5;
  int random_rounds = 4;      ///< 64-lane random rounds from reset
  int frames_per_round = 16;  ///< clock cycles per random round
  int unroll_rounds = 2;      ///< rounds from paired random initial states
  int unroll_frames = 8;      ///< frames per unroll round
  int ternary_frames = 16;    ///< X-initial-state pass length (0 = off)
  bool shrink = true;         ///< minimise the counterexample on mismatch
};

/// Counterexample: apply `pi_frames` from `initial_state` (empty = reset,
/// all flip-flops 0); the miter output is 1 at some frame <= fail_frame.
/// PI bits are aligned with the miter model's PI prefix of input_nets();
/// state bits with its boundary_ffs().
struct CexTrace {
  std::vector<std::vector<std::uint8_t>> pi_frames;
  std::vector<std::uint8_t> initial_state;
  int fail_frame = -1;
  std::string source;  ///< engine that found it: "random" | "unroll" | "ternary"

  bool empty() const { return fail_frame < 0; }
  std::size_t num_frames() const { return pi_frames.size(); }
};

struct EquivResult {
  bool equivalent = true;
  /// True when the ternary pass ran and the miter stayed a definite 0 on
  /// every frame: silence proven for all initial states on that sequence.
  bool proven_x_init = false;
  std::int64_t frames_simulated = 0;  ///< total clock cycles across engines
  CexTrace cex;                       ///< non-empty iff !equivalent
};

class EquivChecker {
 public:
  /// `miter` must stay alive and unedited for the checker's lifetime.
  explicit EquivChecker(const Netlist& miter, const EquivOptions& opts = {});

  /// Run the three engines in order; stops at the first mismatch (shrunk
  /// when opts.shrink). Deterministic in opts.seed.
  EquivResult check();

  /// Re-simulate a trace; true = the miter output fires (mismatch real).
  bool replay(const CexTrace& cex) const;

  /// Greedily minimise a failing trace: drop frames, then clear set PI and
  /// initial-state bits, keeping the mismatch at every step.
  CexTrace shrink_trace(const CexTrace& cex) const;

  const CombModel& model() const { return model_; }

 private:
  /// Run rounds [first_round, first_round + num_rounds) of one engine in
  /// lockstep (num_rounds = a power of two <= kMaxLaneWords, one lane word
  /// per round; round seeds mix_seed(seed, base_salt + round)).
  bool sim_group(std::uint64_t base_salt, int first_round, int num_rounds, int frames,
                 bool random_init, const char* source, CexTrace* cex,
                 std::int64_t* frames_simulated) const;
  bool ternary_round(std::uint64_t round_seed, int frames, bool* proven, CexTrace* cex,
                     std::int64_t* frames_simulated) const;

  const Netlist* nl_;
  EquivOptions opts_;
  CombModel model_;
  /// For each boundary FF: index of its partner on the other side (cell
  /// name equal up to the "a."/"b." prefix), or -1. Paired FFs share the
  /// random initial value in the unroll engine.
  std::vector<int> state_pair_;
};

}  // namespace tpi
