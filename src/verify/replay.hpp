// Pattern-replay validation: independently confirm ATPG's detection claims.
//
// For every fault the ATPG marked kDetected, re-inject the fault and replay
// the emitted pattern set with a plain full-sweep forced resimulation —
// deliberately NOT the event-driven FaultSimulator, so a bug in its cone
// limiting or event scheduling cannot hide itself. Transition fault lists
// are replayed over the same launch-on-capture frame pair the ATPG graded
// (capture-frame forced resim, gated by the launch value at the site). A claimed
// detection that never produces an observable difference across the whole
// pattern set is a replay failure (and would mean the reported fault
// coverage, and hence the paper's Table 1 FC/FE columns, overstate reality).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "atpg/atpg.hpp"
#include "sim/comb_model.hpp"

namespace tpi {

struct ReplayFailure {
  std::size_t fault_index = 0;  ///< index into the FaultList
  NetId net = kNoNet;
  bool stuck1 = false;
  bool is_stem = false;
};

struct ReplayReport {
  std::int64_t claimed = 0;    ///< faults with status kDetected
  std::int64_t confirmed = 0;  ///< claims reproduced by replay
  std::int64_t patterns = 0;   ///< patterns replayed
  std::vector<ReplayFailure> failures;

  bool ok() const { return failures.empty(); }
};

/// Replay `patterns` against every kDetected fault in `faults` over the
/// capture-view model the ATPG ran on. Deterministic; single-threaded.
ReplayReport replay_patterns(const CombModel& capture_model, const FaultList& faults,
                             const std::vector<TestPattern>& patterns);

inline ReplayReport replay_patterns(const CombModel& capture_model, const AtpgResult& atpg) {
  return replay_patterns(capture_model, atpg.faults, atpg.patterns);
}

}  // namespace tpi
