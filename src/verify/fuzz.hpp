// Transform fuzzing: randomized mutator pipelines checked for mission-mode
// equivalence.
//
// From a fixed seed the fuzzer generates a circuit (src/circuits), applies
// a random pipeline of DfT mutators (TSFF insertion at 0–5% of the FF
// count, scan insertion, chain stitching, control-net buffering, clock
// buffer / filler ECOs through DesignDB), and asserts the mutant is
// mission-mode equivalent to the pre-transform netlist via a miter +
// EquivChecker. A failure is shrunk automatically: first the transform
// pipeline (greedy drop), then the counterexample trace (frames, then
// bits). Each transform position draws from its own Rng keyed on
// (iteration, position), so dropping a transform never perturbs the
// randomness of the ones that remain — shrinking stays faithful.
//
// Every run folds the final mutant netlist text and outcome of each
// iteration into a FNV-1a digest; the digest is the determinism contract
// checked by tests (bit-identical at any TPI_BENCH_JOBS / TPI_ATPG_JOBS).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "circuits/profiles.hpp"
#include "verify/equiv.hpp"

namespace tpi {

class CellLibrary;
class DesignDB;
class Rng;

struct FuzzTransform {
  std::string name;
  std::function<void(DesignDB&, Rng&)> apply;
};

/// The standard mutator set: tpi_insert, scan_insert, chain_stitch,
/// ctrl_buffer, clock_buffer_eco, filler_eco. Each is guarded to be a no-op
/// when its precondition does not hold (e.g. stitching twice).
std::vector<FuzzTransform> default_fuzz_transforms();

/// Fast generator profile used when FuzzOptions does not override it.
CircuitProfile default_fuzz_profile();

/// Reduced EquivOptions budget for inner-loop fuzz checks.
EquivOptions fuzz_equiv_budget();

struct FuzzOptions {
  std::uint64_t seed = 0xF422;  ///< TPI_FUZZ_SEED
  int iterations = 50;          ///< TPI_FUZZ_ITERS
  int min_transforms = 1;
  int max_transforms = 4;
  CircuitProfile profile = default_fuzz_profile();
  EquivOptions equiv = fuzz_equiv_budget();

  /// Defaults overridden by TPI_FUZZ_SEED / TPI_FUZZ_ITERS (invalid values
  /// warn and fall back).
  static FuzzOptions from_env();
};

struct FuzzFailure {
  int iteration = -1;
  std::vector<std::string> pipeline;   ///< transforms as applied
  std::vector<std::string> minimized;  ///< shrunk failing subsequence
  std::string error;                   ///< structural error, if any
  CexTrace cex;                        ///< shrunk trace (empty for structural)
};

struct FuzzReport {
  int iterations_run = 0;
  std::int64_t transforms_applied = 0;
  std::uint64_t digest = 0;  ///< FNV-1a over mutants + outcomes
  std::vector<FuzzFailure> failures;

  bool ok() const { return failures.empty(); }
};

class TransformFuzzer {
 public:
  explicit TransformFuzzer(const CellLibrary& lib, FuzzOptions opts = {});

  /// Replace / extend the transform set (tests inject broken mutators).
  void set_transforms(std::vector<FuzzTransform> transforms);
  void add_transform(FuzzTransform transform);
  const std::vector<FuzzTransform>& transforms() const { return transforms_; }

  /// Run opts.iterations pipelines. Deterministic in opts.seed.
  FuzzReport run();

 private:
  struct PlanStep {
    int transform = 0;  ///< index into transforms_
    int position = 0;   ///< original pipeline slot — keys the per-step Rng
  };

  std::string apply_pipeline(Netlist& nl, std::uint64_t iter_seed,
                             const std::vector<PlanStep>& steps) const;
  /// Applies `steps` to a fresh copy of `golden` and checks it. Returns
  /// true when the pipeline fails (structural or functional); fills the
  /// optional outputs.
  bool pipeline_fails(const Netlist& golden, std::uint64_t iter_seed,
                      const std::vector<PlanStep>& steps, bool shrink_cex, std::string* error,
                      CexTrace* cex) const;

  const CellLibrary* lib_;
  FuzzOptions opts_;
  std::vector<FuzzTransform> transforms_;
};

}  // namespace tpi
