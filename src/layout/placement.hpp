// Standard-cell placement (§3.2 flow step 2, Fig. 3b) and ECO placement
// (flow step 4).
//
// Global placement is iterative centroid attraction (a light-weight
// quadratic-style placer) with periodic rank-based spreading to keep cell
// density uniform, followed by row legalisation that packs cells onto
// sites. The layouts are optimised for area/wirelength only — no timing
// optimisation, matching §4.1. ECO placement inserts late cells (scan
// reorder buffers, clock buffers) into the nearest row gap without moving
// placed cells, as in flow step 4.
#pragma once

#include <cstdint>
#include <vector>

#include "layout/floorplan.hpp"
#include "netlist/netlist.hpp"

namespace tpi {

struct PlacementOptions {
  std::uint64_t seed = 0x9E1;
  int global_iterations = 20;
  int spread_every = 3;
  /// Nets with more fanout than this are ignored by the placer (clock,
  /// scan enable); they would otherwise pull everything to one point.
  std::size_t net_fanout_limit = 48;
};

struct Placement {
  /// Cell centre positions, indexed by CellId (valid for placed cells).
  std::vector<Point> pos;
  std::vector<int> row;  ///< row index per cell (-1 = unplaced)
  std::vector<std::vector<CellId>> row_order;  ///< cells per row, left to right
  std::vector<double> row_used_um;             ///< occupied width per row

  /// IO pad positions around the chip boundary (per PI / PO index).
  std::vector<Point> pi_pad;
  std::vector<Point> po_pad;

  /// Endpoint position of a net pin for wirelength/routing purposes.
  Point pin_position(const PinRef& ref) const {
    return pos[static_cast<std::size_t>(ref.cell)];
  }

  /// Total half-perimeter wirelength over all nets (quality metric).
  double total_hpwl(const Netlist& nl) const;
};

Placement place(const Netlist& nl, const Floorplan& fp, const PlacementOptions& opts);

/// (Re)distribute IO pads around the chip boundary. Must be called again
/// before routing whenever netlist edits added PIs/POs after placement
/// (scan-in/scan-out ports from chain stitching).
void assign_io_pads(const Netlist& nl, const Floorplan& fp, Placement& pl);

/// Place cells added after the initial placement (ECO, flow step 4): each
/// new cell goes into the free space nearest its connectivity centroid;
/// existing cells do not move.
void eco_place(const Netlist& nl, const Floorplan& fp, Placement& pl,
               const std::vector<CellId>& new_cells);

struct FillerReport {
  int cells_added = 0;
  double area_um2 = 0.0;
};

/// Fill remaining row gaps with filler cells (flow step 4: fillers keep the
/// power and ground strips continuous). Adds FILL* cells to the netlist.
FillerReport insert_fillers(Netlist& nl, const Floorplan& fp, Placement& pl);

}  // namespace tpi
