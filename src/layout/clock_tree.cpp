#include "layout/clock_tree.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tpi {
namespace {

struct SinkRef {
  PinRef pin;
  Point pos;
};

// Recursive geometric bisection into groups of at most `limit` sinks.
void kd_cluster(std::vector<SinkRef>& pts, std::size_t lo, std::size_t hi, std::size_t limit,
                std::vector<std::pair<std::size_t, std::size_t>>& groups) {
  if (hi - lo <= limit) {
    groups.emplace_back(lo, hi);
    return;
  }
  double lx = 1e300, hx = -1e300, ly = 1e300, hy = -1e300;
  for (std::size_t i = lo; i < hi; ++i) {
    lx = std::min(lx, pts[i].pos.x);
    hx = std::max(hx, pts[i].pos.x);
    ly = std::min(ly, pts[i].pos.y);
    hy = std::max(hy, pts[i].pos.y);
  }
  const bool split_x = (hx - lx) >= (hy - ly);
  const std::size_t mid = lo + (hi - lo) / 2;
  std::nth_element(pts.begin() + static_cast<std::ptrdiff_t>(lo),
                   pts.begin() + static_cast<std::ptrdiff_t>(mid),
                   pts.begin() + static_cast<std::ptrdiff_t>(hi),
                   [split_x](const SinkRef& a, const SinkRef& b) {
                     return split_x ? a.pos.x < b.pos.x : a.pos.y < b.pos.y;
                   });
  kd_cluster(pts, lo, mid, limit, groups);
  kd_cluster(pts, mid, hi, limit, groups);
}

}  // namespace

CtsReport synthesize_clock_trees(Netlist& nl, const Floorplan& fp, Placement& pl,
                                 const CtsOptions& opts) {
  CtsReport report;
  const CellSpec* leaf_buf =
      nl.library().gate(CellFunc::kClkBuf, 1, opts.leaf_buffer_drive);
  const CellSpec* trunk_buf =
      nl.library().gate(CellFunc::kClkBuf, 1, opts.trunk_buffer_drive);
  assert(leaf_buf != nullptr && trunk_buf != nullptr);

  for (const int clock_pi : nl.clock_pis()) {
    const NetId root = nl.pi_net(clock_pi);
    const std::vector<PinRef> sinks = nl.net(root).sinks;  // copy; we re-home them
    if (static_cast<int>(sinks.size()) <= opts.max_fanout) continue;
    ++report.domains;

    std::vector<SinkRef> level;
    level.reserve(sinks.size());
    for (const PinRef& s : sinks) {
      nl.disconnect(s.cell, s.pin);
      level.push_back(SinkRef{s, pl.pos[static_cast<std::size_t>(s.cell)]});
    }

    int depth = 0;
    while (static_cast<int>(level.size()) > opts.max_fanout) {
      std::vector<std::pair<std::size_t, std::size_t>> groups;
      kd_cluster(level, 0, level.size(), static_cast<std::size_t>(opts.max_fanout), groups);
      std::vector<SinkRef> next;
      next.reserve(groups.size());
      for (const auto& [lo, hi] : groups) {
        const CellSpec* spec = depth == 0 ? leaf_buf : trunk_buf;
        const std::string name = "cts_d" + std::to_string(clock_pi) + "_l" +
                                 std::to_string(depth) + "_" +
                                 std::to_string(report.buffers_added);
        const CellId buf = nl.add_cell(spec, name);
        const NetId out = nl.add_net(name + "_y");
        nl.connect(buf, spec->output_pin, out);
        double sx = 0, sy = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          nl.connect(level[i].pin.cell, level[i].pin.pin, out);
          sx += level[i].pos.x;
          sy += level[i].pos.y;
        }
        const Point centroid{sx / static_cast<double>(hi - lo),
                             sy / static_cast<double>(hi - lo)};
        report.new_cells.push_back(buf);
        ++report.buffers_added;
        next.push_back(SinkRef{PinRef{buf, spec->find_pin("A")}, centroid});
      }
      level = std::move(next);
      ++depth;
    }
    for (const SinkRef& s : level) nl.connect(s.pin.cell, s.pin.pin, root);
    report.tree_levels = std::max(report.tree_levels, depth);
  }
  if (!report.new_cells.empty()) eco_place(nl, fp, pl, report.new_cells);
  return report;
}

}  // namespace tpi
