#include "layout/svg.hpp"

#include <fstream>
#include <sstream>

namespace tpi {
namespace {

const char* cell_color(const CellSpec& spec) {
  switch (spec.func) {
    case CellFunc::kTsff: return "#d62728";    // test points: red
    case CellFunc::kDff:
    case CellFunc::kSdff: return "#1f77b4";    // flip-flops: blue
    case CellFunc::kClkBuf: return "#2ca02c";  // clock buffers: green
    case CellFunc::kFiller: return "#dddddd";  // fillers: light grey
    default: return "#9b9b9b";                 // logic: grey
  }
}

}  // namespace

std::string render_layout_svg(const Netlist& nl, const Floorplan& fp, const Placement* pl,
                              const RoutingResult* routes, LayoutStage stage,
                              const SvgOptions& opts) {
  const Rect& chip = fp.chip_box;
  const double s = opts.scale;
  const double w = chip.width() * s, h = chip.height() * s;
  auto X = [&](double x) { return (x - chip.lx) * s; };
  auto Y = [&](double y) { return (chip.hy - y) * s; };  // flip: SVG y grows down

  std::ostringstream svg;
  svg << "<svg xmlns='http://www.w3.org/2000/svg' width='" << w << "' height='" << h
      << "' viewBox='0 0 " << w << " " << h << "'>\n";
  svg << "<rect x='0' y='0' width='" << w << "' height='" << h
      << "' fill='#fcfcf7' stroke='#333' stroke-width='2'/>\n";

  // IO / power / ground rings (concentric rectangles inside the chip edge).
  const double ring_gap[3] = {10.0, 45.0, 60.0};
  const char* ring_color[3] = {"#8c6d31", "#b22222", "#1a55a0"};  // io, power, ground
  for (int r = 0; r < 3; ++r) {
    Rect box = chip;
    box.expand(-ring_gap[r]);
    svg << "<rect x='" << X(box.lx) << "' y='" << Y(box.hy) << "' width='" << box.width() * s
        << "' height='" << box.height() * s << "' fill='none' stroke='" << ring_color[r]
        << "' stroke-width='" << (r == 0 ? 4.0 : 2.5) << "'/>\n";
  }

  // Core rows: alternating strips (power strip at top, ground at bottom of
  // each cell row — drawn as row outlines).
  for (int r = 0; r < fp.num_rows; ++r) {
    svg << "<rect x='" << X(fp.core_box.lx) << "' y='" << Y(fp.row_y(r) + fp.row_height_um)
        << "' width='" << fp.row_length_um * s << "' height='" << fp.row_height_um * s
        << "' fill='" << (r % 2 ? "#f3f3ec" : "#ecf0f3") << "' stroke='#c9c9c9'"
        << " stroke-width='0.4'/>\n";
  }

  if (stage != LayoutStage::kFloorplan && pl != nullptr) {
    for (std::size_t c = 0; c < nl.num_cells() && c < pl->pos.size(); ++c) {
      const CellSpec* spec = nl.cell(static_cast<CellId>(c)).spec;
      if (pl->row[c] < 0 && spec->func != CellFunc::kFiller) continue;
      const Point& p = pl->pos[c];
      const double cw = spec->width_um * s, ch = spec->height_um * s;
      svg << "<rect x='" << X(p.x) - cw / 2 << "' y='" << Y(p.y) - ch / 2 << "' width='" << cw
          << "' height='" << ch << "' fill='" << cell_color(*spec)
          << "' stroke='none' opacity='0.85'/>\n";
    }
  }

  if (stage == LayoutStage::kRouted && routes != nullptr && pl != nullptr) {
    // Draw a sample of nets as L-routes (all of them would be solid ink).
    std::size_t drawn = 0;
    const std::size_t step =
        std::max<std::size_t>(1, routes->nets.size() / std::max<std::size_t>(1, opts.max_drawn_nets));
    for (std::size_t n = 0; n < routes->nets.size() && drawn < opts.max_drawn_nets; n += step) {
      const RouteTree& tree = routes->nets[n];
      if (tree.node.size() < 2) continue;
      ++drawn;
      for (std::size_t v = 1; v < tree.node.size(); ++v) {
        const Point& a = tree.node[v];
        const Point& b = tree.node[static_cast<std::size_t>(tree.parent[v])];
        svg << "<polyline points='" << X(a.x) << "," << Y(a.y) << " " << X(b.x) << "," << Y(a.y)
            << " " << X(b.x) << "," << Y(b.y)
            << "' fill='none' stroke='#4878a8' stroke-width='0.5' opacity='0.55'/>\n";
      }
    }
  }

  svg << "</svg>\n";
  return svg.str();
}

bool write_layout_svg(const std::string& path, const Netlist& nl, const Floorplan& fp,
                      const Placement* pl, const RoutingResult* routes, LayoutStage stage,
                      const SvgOptions& opts) {
  std::ofstream out(path);
  if (!out) return false;
  out << render_layout_svg(nl, fp, pl, routes, stage, opts);
  return static_cast<bool>(out);
}

}  // namespace tpi
