// Basic planar geometry used across floorplanning, placement and routing.
#pragma once

#include <algorithm>
#include <cmath>

namespace tpi {

struct Point {
  double x = 0.0;
  double y = 0.0;
};

inline double manhattan(const Point& a, const Point& b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

struct Rect {
  double lx = 0.0, ly = 0.0, hx = 0.0, hy = 0.0;

  double width() const { return hx - lx; }
  double height() const { return hy - ly; }
  double area() const { return width() * height(); }
  Point center() const { return Point{(lx + hx) / 2.0, (ly + hy) / 2.0}; }
  bool contains(const Point& p) const {
    return p.x >= lx && p.x <= hx && p.y >= ly && p.y <= hy;
  }
  void expand(double m) {
    lx -= m;
    ly -= m;
    hx += m;
    hy += m;
  }
};

/// Half-perimeter wire length of a point set's bounding box.
class HpwlAccumulator {
 public:
  void add(const Point& p) {
    lx_ = std::min(lx_, p.x);
    hx_ = std::max(hx_, p.x);
    ly_ = std::min(ly_, p.y);
    hy_ = std::max(hy_, p.y);
    ++n_;
  }
  double value() const { return n_ < 2 ? 0.0 : (hx_ - lx_) + (hy_ - ly_); }

 private:
  double lx_ = 1e300, ly_ = 1e300, hx_ = -1e300, hy_ = -1e300;
  int n_ = 0;
};

}  // namespace tpi
