// Clock tree synthesis (§3.2 flow step 4, the CT-GEN stage).
//
// Each clock domain's sinks (flip-flop and TSFF CK pins) are clustered by
// recursive geometric bisection into groups bounded by a fanout limit;
// every group gets a clock buffer at its centroid, and the buffers are
// clustered again until the root level, which the clock PI drives. The
// buffers are real netlist cells (they count toward Table 2's #cells) and
// the rewired clock nets are routed/extracted like any other net, so clock
// skew in Table 3 emerges from the physical tree, not from a constant.
#pragma once

#include <vector>

#include "layout/placement.hpp"

namespace tpi {

struct CtsOptions {
  int max_fanout = 18;          ///< sinks per buffer stage
  int leaf_buffer_drive = 4;    ///< CLKBUF_X4 at the leaves
  int trunk_buffer_drive = 8;   ///< CLKBUF_X8 above
};

struct CtsReport {
  int buffers_added = 0;
  int domains = 0;
  std::vector<CellId> new_cells;  ///< for ECO placement
  int tree_levels = 0;
};

/// Rewire every clock domain through a buffered tree. New buffers are
/// ECO-placed by the caller (they appear in `new_cells`). Idempotent only
/// in the sense that domains already below the fanout limit are untouched.
CtsReport synthesize_clock_trees(Netlist& nl, const Floorplan& fp, Placement& pl,
                                 const CtsOptions& opts = {});

}  // namespace tpi
