// Global routing (§3.2 flow step 4, Fig. 3c).
//
// Every net gets a rectilinear spanning tree (Prim) over its placed pins;
// tree edges are L-routed across a gcell grid with per-edge capacity
// derived from the metal stack. Nets crossing over-capacity gcell edges
// take detours, so a congested layout (high row utilisation, §4.3) shows
// longer total wire length — the L_wires column of Table 2.
#pragma once

#include <vector>

#include "layout/placement.hpp"

namespace tpi {

struct RoutingOptions {
  double gcell_um = 30.0;
  /// Routing tracks per gcell boundary per direction (6-metal stack:
  /// ~3 layers per direction at ~0.5 µm average pitch, minus blockage).
  double tracks_per_gcell = 165.0;
  /// Extra length per overflowing crossing (ripped up and re-routed around
  /// the hotspot).
  double detour_per_overflow_um = 18.0;
};

/// Routed topology of one net: node 0 is the driver; every other node
/// links to its parent. Sinks appear in net order (cell sinks, then POs).
struct RouteTree {
  std::vector<Point> node;
  std::vector<int> parent;        ///< parent[0] = -1
  std::vector<double> edge_um;    ///< wire length of node->parent edge
  double length_um = 0.0;         ///< total, including detour share

  /// Path length from the root to a node (for Elmore extraction).
  double path_to_root_um(int node_index) const {
    double d = 0.0;
    for (int v = node_index; parent[static_cast<std::size_t>(v)] >= 0;
         v = parent[static_cast<std::size_t>(v)]) {
      d += edge_um[static_cast<std::size_t>(v)];
    }
    return d;
  }
};

struct RoutingResult {
  std::vector<RouteTree> nets;  ///< indexed by NetId
  double total_wire_length_um = 0.0;
  double detour_length_um = 0.0;
  int overflowed_crossings = 0;
  int gcells_x = 0, gcells_y = 0;
};

RoutingResult route(const Netlist& nl, const Floorplan& fp, const Placement& pl,
                    const RoutingOptions& opts = {});

}  // namespace tpi
