// Floorplanning (§3.2 flow step 2, Fig. 3a).
//
// A square core of horizontal standard-cell rows: each cell carries a power
// strip at its top and a ground strip at its bottom, rows are abutted so
// strips of consecutive rows are adjacent, and an IO ring plus power and
// ground rings surround the core. The chip outline is forced square; the
// core may go slightly rectangular (aspect ratio within [0.9, 1.1]) when
// row count and row length cannot both match the target exactly — exactly
// the effect discussed in §4.3.
#pragma once

#include "layout/geometry.hpp"
#include "netlist/netlist.hpp"

namespace tpi {

struct FloorplanOptions {
  double target_row_utilization = 0.97;
  double io_ring_width_um = 50.0;
  double power_ring_width_um = 12.0;
  double ground_ring_width_um = 12.0;
  double core_to_ring_margin_um = 10.0;
};

struct Floorplan {
  int num_rows = 0;
  double row_length_um = 0.0;  ///< L_rows of Table 2 = num_rows * row_length
  double row_height_um = 0.0;
  double site_width_um = 0.0;

  Rect core_box;  ///< rows region
  Rect chip_box;  ///< core + margins + power/ground/IO rings (square)

  double total_row_length_um() const { return num_rows * row_length_um; }
  double core_area_um2() const { return core_box.area(); }
  double chip_area_um2() const { return chip_box.area(); }
  double aspect_ratio() const { return core_box.width() / core_box.height(); }

  /// y coordinate of a row's bottom edge.
  double row_y(int row) const { return core_box.ly + row * row_height_um; }
  /// Row index nearest to a y coordinate (clamped).
  int nearest_row(double y) const;
};

/// Build the floorplan for a netlist: row area = placeable cell area /
/// target utilization, core as square as row quantisation allows.
Floorplan make_floorplan(const Netlist& nl, const FloorplanOptions& opts);

/// Sum of the area of placeable cells (everything except fillers — fillers
/// are added after ECO to plug the remaining gaps).
double placeable_cell_area(const Netlist& nl);

}  // namespace tpi
