// SVG rendering of layout stages — reproduces the paper's Fig. 3:
// (a) after floorplanning, (b) after placement, (c) after routing.
#pragma once

#include <string>

#include "layout/placement.hpp"
#include "layout/routing.hpp"

namespace tpi {

enum class LayoutStage {
  kFloorplan,  ///< rings + empty rows (Fig. 3a)
  kPlacement,  ///< rings + placed cells (Fig. 3b)
  kRouted,     ///< + a sample of routed nets (Fig. 3c)
};

struct SvgOptions {
  double scale = 2.0;           ///< SVG pixels per µm
  std::size_t max_drawn_nets = 400;  ///< routed-net sample size (Fig. 3c)
};

/// Render one stage to an SVG string. `pl` may be null for kFloorplan;
/// `routes` may be null except for kRouted.
std::string render_layout_svg(const Netlist& nl, const Floorplan& fp, const Placement* pl,
                              const RoutingResult* routes, LayoutStage stage,
                              const SvgOptions& opts = {});

/// Convenience: render and write to a file; returns false on I/O failure.
bool write_layout_svg(const std::string& path, const Netlist& nl, const Floorplan& fp,
                      const Placement* pl, const RoutingResult* routes, LayoutStage stage,
                      const SvgOptions& opts = {});

}  // namespace tpi
