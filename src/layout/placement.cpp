#include "layout/placement.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <optional>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

bool placeable(const Netlist& nl, CellId c) {
  return nl.cell(c).spec->func != CellFunc::kFiller;
}

}  // namespace

// Distribute IO pads evenly around the chip boundary, PIs then POs.
void assign_io_pads(const Netlist& nl, const Floorplan& fp, Placement& pl) {
  const std::size_t total = nl.num_pis() + nl.num_pos();
  pl.pi_pad.resize(nl.num_pis());
  pl.po_pad.resize(nl.num_pos());
  if (total == 0) return;
  const Rect& box = fp.chip_box;
  const double perim = 2.0 * (box.width() + box.height());
  for (std::size_t i = 0; i < total; ++i) {
    double d = perim * (static_cast<double>(i) + 0.5) / static_cast<double>(total);
    Point p;
    if (d < box.width()) {
      p = Point{box.lx + d, box.ly};
    } else if ((d -= box.width()) < box.height()) {
      p = Point{box.hx, box.ly + d};
    } else if ((d -= box.height()) < box.width()) {
      p = Point{box.hx - d, box.hy};
    } else {
      d -= box.width();
      p = Point{box.lx, box.hy - d};
    }
    if (i < nl.num_pis()) {
      pl.pi_pad[i] = p;
    } else {
      pl.po_pad[i - nl.num_pis()] = p;
    }
  }
}

namespace {

// Repack one row: cells keep their left-to-right order, are pulled toward
// their current centres, and are shifted left as needed to fit the row.
void repack_row(const Netlist& nl, const Floorplan& fp, Placement& pl, int row) {
  auto& order = pl.row_order[static_cast<std::size_t>(row)];
  std::stable_sort(order.begin(), order.end(), [&](CellId a, CellId b) {
    return pl.pos[static_cast<std::size_t>(a)].x < pl.pos[static_cast<std::size_t>(b)].x;
  });
  const double site = fp.site_width_um;
  const double row_end = fp.core_box.lx + fp.row_length_um;
  std::vector<double> left(order.size());
  double cursor = fp.core_box.lx;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const CellId c = order[i];
    const double w = nl.cell(c).spec->width_um;
    double desired = pl.pos[static_cast<std::size_t>(c)].x - w / 2.0;
    desired = std::floor((desired - fp.core_box.lx) / site) * site + fp.core_box.lx;
    left[i] = std::max(cursor, desired);
    cursor = left[i] + w;
  }
  // Shift-left pass from the right if the row overflowed.
  double limit = row_end;
  for (std::size_t i = order.size(); i-- > 0;) {
    const double w = nl.cell(order[i]).spec->width_um;
    if (left[i] + w > limit) left[i] = limit - w;
    limit = left[i];
  }
  const double y = fp.row_y(row) + fp.row_height_um / 2.0;
  double used = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const CellId c = order[i];
    const double w = nl.cell(c).spec->width_um;
    pl.pos[static_cast<std::size_t>(c)] = Point{left[i] + w / 2.0, y};
    pl.row[static_cast<std::size_t>(c)] = row;
    used += w;
  }
  pl.row_used_um[static_cast<std::size_t>(row)] = used;
}

}  // namespace

double Placement::total_hpwl(const Netlist& nl) const {
  double total = 0.0;
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(static_cast<NetId>(n));
    HpwlAccumulator acc;
    if (net.driver.valid()) acc.add(pos[static_cast<std::size_t>(net.driver.cell)]);
    if (net.driven_by_pi()) acc.add(pi_pad[static_cast<std::size_t>(net.pi_index)]);
    for (const PinRef& s : net.sinks) acc.add(pos[static_cast<std::size_t>(s.cell)]);
    for (const int po : net.po_sinks) acc.add(po_pad[static_cast<std::size_t>(po)]);
    total += acc.value();
  }
  return total;
}

Placement place(const Netlist& nl, const Floorplan& fp, const PlacementOptions& opts) {
  Placement pl;
  const std::size_t n_cells = nl.num_cells();
  pl.pos.assign(n_cells, fp.core_box.center());
  pl.row.assign(n_cells, -1);
  pl.row_order.assign(static_cast<std::size_t>(fp.num_rows), {});
  pl.row_used_um.assign(static_cast<std::size_t>(fp.num_rows), 0.0);
  assign_io_pads(nl, fp, pl);

  std::vector<CellId> movable;
  for (std::size_t c = 0; c < n_cells; ++c) {
    if (placeable(nl, static_cast<CellId>(c))) movable.push_back(static_cast<CellId>(c));
  }
  if (movable.empty()) return pl;

  // Initial placement: netlist-order serpentine across the core. Netlist
  // order follows synthesis locality, and — unlike a graph traversal — it
  // is stable under small netlist edits, so layouts for different
  // test-point counts start from comparable seeds (fair comparison, §4.1).
  {
    const std::vector<CellId>& order = movable;
    const double rows_d = static_cast<double>(fp.num_rows);
    for (std::size_t i = 0; i < order.size(); ++i) {
      const double t = (static_cast<double>(i) + 0.5) / static_cast<double>(order.size());
      const int r = std::min(fp.num_rows - 1, static_cast<int>(t * rows_d));
      const double frac_in_row = t * rows_d - r;
      const double x = (r % 2 == 0)
                           ? fp.core_box.lx + frac_in_row * fp.core_box.width()
                           : fp.core_box.hx - frac_in_row * fp.core_box.width();
      pl.pos[static_cast<std::size_t>(order[i])] =
          Point{x, fp.row_y(r) + fp.row_height_um / 2.0};
    }
  }

  // ---- global placement: centroid attraction + rank spreading ----
  std::vector<Point> net_centroid(nl.num_nets());
  std::vector<int> net_degree(nl.num_nets(), 0);
  std::vector<char> net_active(nl.num_nets(), 1);
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    const Net& net = nl.net(static_cast<NetId>(n));
    if (net.fanout() > opts.net_fanout_limit) net_active[n] = 0;
  }

  std::vector<Point> next(n_cells);
  std::vector<double> weight(n_cells);
  std::vector<std::size_t> rank(movable.size());
  // Sequential phase spans: TraceSpan is scope-bound, so the optional lets
  // the global/legalise phases share straight-line code without nesting.
  std::optional<TraceSpan> phase_span;
  phase_span.emplace("placement.global");
  for (int iter = 0; iter < opts.global_iterations; ++iter) {
    // Net centroids (pads included: they anchor the placement to the ring).
    for (std::size_t n = 0; n < nl.num_nets(); ++n) {
      if (!net_active[n]) continue;
      const Net& net = nl.net(static_cast<NetId>(n));
      double sx = 0, sy = 0;
      int k = 0;
      auto add = [&](const Point& p) {
        sx += p.x;
        sy += p.y;
        ++k;
      };
      if (net.driver.valid()) add(pl.pos[static_cast<std::size_t>(net.driver.cell)]);
      if (net.driven_by_pi()) add(pl.pi_pad[static_cast<std::size_t>(net.pi_index)]);
      for (const PinRef& s : net.sinks) add(pl.pos[static_cast<std::size_t>(s.cell)]);
      for (const int po : net.po_sinks) add(pl.po_pad[static_cast<std::size_t>(po)]);
      net_degree[n] = k;
      if (k > 0) net_centroid[n] = Point{sx / k, sy / k};
    }
    // Pull every cell toward the centroid of its nets.
    for (const CellId c : movable) {
      next[static_cast<std::size_t>(c)] = Point{0, 0};
      weight[static_cast<std::size_t>(c)] = 0;
    }
    for (std::size_t c = 0; c < n_cells; ++c) {
      const CellInst& inst = nl.cell(static_cast<CellId>(c));
      if (inst.spec->func == CellFunc::kFiller) continue;
      for (const NetId n : inst.conn) {
        if (n == kNoNet || !net_active[static_cast<std::size_t>(n)]) continue;
        const auto ni = static_cast<std::size_t>(n);
        if (net_degree[ni] < 2) continue;
        const double w = 1.0 / static_cast<double>(net_degree[ni]);
        next[c].x += net_centroid[ni].x * w;
        next[c].y += net_centroid[ni].y * w;
        weight[c] += w;
      }
    }
    for (const CellId c : movable) {
      const auto i = static_cast<std::size_t>(c);
      if (weight[i] > 0) {
        pl.pos[i] = Point{next[i].x / weight[i], next[i].y / weight[i]};
      }
    }
    // Periodic spreading: keep relative order, restore uniform density.
    if ((iter + 1) % opts.spread_every == 0 || iter + 1 == opts.global_iterations) {
      std::iota(rank.begin(), rank.end(), 0);
      std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
        return pl.pos[static_cast<std::size_t>(movable[a])].x <
               pl.pos[static_cast<std::size_t>(movable[b])].x;
      });
      for (std::size_t r = 0; r < rank.size(); ++r) {
        pl.pos[static_cast<std::size_t>(movable[rank[r]])].x =
            fp.core_box.lx +
            (static_cast<double>(r) + 0.5) / static_cast<double>(rank.size()) *
                fp.core_box.width();
      }
      std::iota(rank.begin(), rank.end(), 0);
      std::stable_sort(rank.begin(), rank.end(), [&](std::size_t a, std::size_t b) {
        return pl.pos[static_cast<std::size_t>(movable[a])].y <
               pl.pos[static_cast<std::size_t>(movable[b])].y;
      });
      for (std::size_t r = 0; r < rank.size(); ++r) {
        pl.pos[static_cast<std::size_t>(movable[rank[r]])].y =
            fp.core_box.ly +
            (static_cast<double>(r) + 0.5) / static_cast<double>(rank.size()) *
                fp.core_box.height();
      }
    }
  }

  phase_span.reset();
  metrics().add("placement.global_iterations",
                static_cast<std::uint64_t>(opts.global_iterations));

  // ---- legalisation: assign rows by y with balanced fill ----
  phase_span.emplace("placement.legalize");
  std::vector<CellId> by_y = movable;
  std::stable_sort(by_y.begin(), by_y.end(), [&](CellId a, CellId b) {
    return pl.pos[static_cast<std::size_t>(a)].y < pl.pos[static_cast<std::size_t>(b)].y;
  });
  double total_width = 0.0;
  for (const CellId c : by_y) total_width += nl.cell(c).spec->width_um;
  const double width_per_row = total_width / fp.num_rows;
  double cum = 0.0;
  for (const CellId c : by_y) {
    const double w = nl.cell(c).spec->width_um;
    int row = std::min(fp.num_rows - 1, static_cast<int>(cum / width_per_row));
    // Guard against a row overflowing its physical capacity.
    while (row < fp.num_rows - 1 &&
           pl.row_used_um[static_cast<std::size_t>(row)] + w > fp.row_length_um) {
      ++row;
    }
    pl.row_order[static_cast<std::size_t>(row)].push_back(c);
    pl.row_used_um[static_cast<std::size_t>(row)] += w;
    cum += w;
  }
  for (int r = 0; r < fp.num_rows; ++r) repack_row(nl, fp, pl, r);
  return pl;
}

void eco_place(const Netlist& nl, const Floorplan& fp, Placement& pl,
               const std::vector<CellId>& new_cells) {
  pl.pos.resize(nl.num_cells(), fp.core_box.center());
  pl.row.resize(nl.num_cells(), -1);
  for (const CellId c : new_cells) {
    const CellInst& inst = nl.cell(c);
    // Connectivity centroid over already-placed neighbours and pads.
    double sx = 0, sy = 0;
    int k = 0;
    for (const NetId n : inst.conn) {
      if (n == kNoNet) continue;
      const Net& net = nl.net(n);
      if (net.driver.valid() && net.driver.cell != c &&
          pl.row[static_cast<std::size_t>(net.driver.cell)] >= 0) {
        sx += pl.pos[static_cast<std::size_t>(net.driver.cell)].x;
        sy += pl.pos[static_cast<std::size_t>(net.driver.cell)].y;
        ++k;
      }
      for (const PinRef& s : net.sinks) {
        if (s.cell == c || pl.row[static_cast<std::size_t>(s.cell)] < 0) continue;
        sx += pl.pos[static_cast<std::size_t>(s.cell)].x;
        sy += pl.pos[static_cast<std::size_t>(s.cell)].y;
        ++k;
        if (k > 24) break;  // centroid estimate is enough for huge nets
      }
    }
    const Point desired = k > 0 ? Point{sx / k, sy / k} : fp.core_box.center();
    const double w = inst.spec->width_um;
    const int home = fp.nearest_row(desired.y);
    int chosen = -1;
    for (int radius = 0; radius < fp.num_rows && chosen < 0; ++radius) {
      for (const int r : {home - radius, home + radius}) {
        if (r < 0 || r >= fp.num_rows) continue;
        if (pl.row_used_um[static_cast<std::size_t>(r)] + w <= fp.row_length_um) {
          chosen = r;
          break;
        }
      }
    }
    if (chosen < 0) {
      // Pathological overflow: take the least-used row (the repack keeps
      // the row packed; the core is simply over target utilisation).
      chosen = 0;
      for (int r = 1; r < fp.num_rows; ++r) {
        if (pl.row_used_um[static_cast<std::size_t>(r)] <
            pl.row_used_um[static_cast<std::size_t>(chosen)]) {
          chosen = r;
        }
      }
    }
    pl.pos[static_cast<std::size_t>(c)] = Point{desired.x, fp.row_y(chosen)};
    pl.row_order[static_cast<std::size_t>(chosen)].push_back(c);
    repack_row(nl, fp, pl, chosen);
  }
}

FillerReport insert_fillers(Netlist& nl, const Floorplan& fp, Placement& pl) {
  FillerReport report;
  const auto& fillers = nl.library().fillers();  // widest first
  if (fillers.empty()) return report;
  const double site = fp.site_width_um;
  for (int r = 0; r < fp.num_rows; ++r) {
    // Collect occupied intervals.
    struct Span {
      double lo, hi;
    };
    std::vector<Span> spans;
    for (const CellId c : pl.row_order[static_cast<std::size_t>(r)]) {
      const double w = nl.cell(c).spec->width_um;
      const double x = pl.pos[static_cast<std::size_t>(c)].x - w / 2.0;
      spans.push_back(Span{x, x + w});
    }
    std::sort(spans.begin(), spans.end(),
              [](const Span& a, const Span& b) { return a.lo < b.lo; });
    double cursor = fp.core_box.lx;
    const double row_end = fp.core_box.lx + fp.row_length_um;
    auto fill_gap = [&](double lo, double hi) {
      int gap_sites = static_cast<int>(std::round((hi - lo) / site));
      double x = lo;
      while (gap_sites > 0) {
        const CellSpec* pick = nullptr;
        for (const CellSpec* f : fillers) {
          const int w = static_cast<int>(std::round(f->width_um / site));
          if (w <= gap_sites) {
            pick = f;
            break;
          }
        }
        if (pick == nullptr) break;  // no 1-site filler? (library always has FILL1)
        const CellId fc =
            nl.add_cell(pick, "fill_r" + std::to_string(r) + "_" +
                                  std::to_string(report.cells_added));
        pl.pos.push_back(Point{x + pick->width_um / 2.0, fp.row_y(r) + fp.row_height_um / 2.0});
        pl.row.push_back(r);
        pl.row_order[static_cast<std::size_t>(r)].push_back(fc);
        ++report.cells_added;
        report.area_um2 += pick->area_um2();
        const int w = static_cast<int>(std::round(pick->width_um / site));
        gap_sites -= w;
        x += pick->width_um;
      }
    };
    for (const Span& s : spans) {
      if (s.lo > cursor + 1e-9) fill_gap(cursor, s.lo);
      cursor = std::max(cursor, s.hi);
    }
    if (cursor < row_end - 1e-9) fill_gap(cursor, row_end);
  }
  return report;
}

}  // namespace tpi
