#include "layout/routing.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

// Endpoint positions of a net: driver first, then cell sinks, then POs.
void net_endpoints(const Netlist& nl, const Placement& pl, NetId net_id,
                   std::vector<Point>& pts) {
  pts.clear();
  const Net& net = nl.net(net_id);
  if (net.driver.valid()) {
    pts.push_back(pl.pos[static_cast<std::size_t>(net.driver.cell)]);
  } else if (net.driven_by_pi()) {
    pts.push_back(pl.pi_pad[static_cast<std::size_t>(net.pi_index)]);
  } else {
    return;  // undriven net: nothing to route
  }
  for (const PinRef& s : net.sinks) pts.push_back(pl.pos[static_cast<std::size_t>(s.cell)]);
  for (const int po : net.po_sinks) pts.push_back(pl.po_pad[static_cast<std::size_t>(po)]);
}

// Prim rectilinear spanning tree over the endpoints.
RouteTree prim_tree(const std::vector<Point>& pts) {
  RouteTree tree;
  const std::size_t n = pts.size();
  tree.node = pts;
  tree.parent.assign(n, -1);
  tree.edge_um.assign(n, 0.0);
  if (n < 2) return tree;
  std::vector<char> in_tree(n, 0);
  std::vector<double> best(n, 1e300);
  std::vector<int> best_parent(n, 0);
  in_tree[0] = 1;
  for (std::size_t v = 1; v < n; ++v) {
    best[v] = manhattan(pts[0], pts[v]);
    best_parent[v] = 0;
  }
  for (std::size_t added = 1; added < n; ++added) {
    std::size_t pick = 0;
    double d = 1e300;
    for (std::size_t v = 1; v < n; ++v) {
      if (!in_tree[v] && best[v] < d) {
        d = best[v];
        pick = v;
      }
    }
    in_tree[pick] = 1;
    tree.parent[pick] = best_parent[pick];
    tree.edge_um[pick] = d;
    tree.length_um += d;
    for (std::size_t v = 1; v < n; ++v) {
      if (in_tree[v]) continue;
      const double dv = manhattan(pts[pick], pts[v]);
      if (dv < best[v]) {
        best[v] = dv;
        best_parent[v] = static_cast<int>(pick);
      }
    }
  }
  return tree;
}

struct Grid {
  int nx = 0, ny = 0;
  double gcell = 1.0;
  double ox = 0.0, oy = 0.0;
  std::vector<float> h_use;  // horizontal crossings, indexed [y * nx + x]
  std::vector<float> v_use;

  int gx(double x) const {
    return std::clamp(static_cast<int>((x - ox) / gcell), 0, nx - 1);
  }
  int gy(double y) const {
    return std::clamp(static_cast<int>((y - oy) / gcell), 0, ny - 1);
  }
};

// Walk the L-route of an edge (horizontal first), applying `f` to every
// gcell crossing: f(is_horizontal, x, y).
template <typename F>
void walk_l_route(const Grid& g, const Point& a, const Point& b, F&& f) {
  const int ax = g.gx(a.x), ay = g.gy(a.y);
  const int bx = g.gx(b.x), by = g.gy(b.y);
  const int step_x = ax <= bx ? 1 : -1;
  for (int x = ax; x != bx; x += step_x) f(true, std::min(x, x + step_x), ay);
  const int step_y = ay <= by ? 1 : -1;
  for (int y = ay; y != by; y += step_y) f(false, bx, std::min(y, y + step_y));
}

}  // namespace

RoutingResult route(const Netlist& nl, const Floorplan& fp, const Placement& pl,
                    const RoutingOptions& opts) {
  TPI_SPAN("routing.route");
  RoutingResult res;
  res.nets.resize(nl.num_nets());

  Grid grid;
  grid.gcell = opts.gcell_um;
  grid.ox = fp.chip_box.lx;
  grid.oy = fp.chip_box.ly;
  grid.nx = std::max(1, static_cast<int>(std::ceil(fp.chip_box.width() / grid.gcell)));
  grid.ny = std::max(1, static_cast<int>(std::ceil(fp.chip_box.height() / grid.gcell)));
  grid.h_use.assign(static_cast<std::size_t>(grid.nx) * grid.ny, 0.0f);
  grid.v_use.assign(static_cast<std::size_t>(grid.nx) * grid.ny, 0.0f);
  res.gcells_x = grid.nx;
  res.gcells_y = grid.ny;

  // Pass 1: build trees, accumulate demand.
  std::vector<Point> pts;
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    net_endpoints(nl, pl, static_cast<NetId>(n), pts);
    RouteTree tree = prim_tree(pts);
    for (std::size_t v = 1; v < tree.node.size(); ++v) {
      const Point& a = tree.node[v];
      const Point& b = tree.node[static_cast<std::size_t>(tree.parent[v])];
      walk_l_route(grid, a, b, [&](bool horiz, int x, int y) {
        const std::size_t idx = static_cast<std::size_t>(y) * grid.nx + x;
        (horiz ? grid.h_use : grid.v_use)[idx] += 1.0f;
      });
    }
    res.nets[n] = std::move(tree);
  }

  // Pass 2: detour charge for crossings through over-capacity gcells.
  const float cap = static_cast<float>(opts.tracks_per_gcell);
  for (std::size_t n = 0; n < nl.num_nets(); ++n) {
    RouteTree& tree = res.nets[n];
    int overflows = 0;
    for (std::size_t v = 1; v < tree.node.size(); ++v) {
      const Point& a = tree.node[v];
      const Point& b = tree.node[static_cast<std::size_t>(tree.parent[v])];
      int edge_overflows = 0;
      walk_l_route(grid, a, b, [&](bool horiz, int x, int y) {
        const std::size_t idx = static_cast<std::size_t>(y) * grid.nx + x;
        if ((horiz ? grid.h_use : grid.v_use)[idx] > cap) ++edge_overflows;
      });
      if (edge_overflows > 0) {
        // One detour route skirts a contiguous hotspot; cap the charge so a
        // long edge through a congested region is not billed per gcell.
        const double extra = opts.detour_per_overflow_um * std::min(edge_overflows, 3);
        tree.edge_um[v] += extra;
        tree.length_um += extra;
        res.detour_length_um += extra;
        overflows += edge_overflows;
      }
    }
    res.overflowed_crossings += overflows;
    res.total_wire_length_um += tree.length_um;
  }
  // Histogram accumulated locally and folded in once: nl.num_nets() can be
  // tens of thousands, one registry lock per net would dominate.
  HistogramData net_lengths;
  for (const RouteTree& tree : res.nets) net_lengths.observe(tree.length_um);
  MetricsRegistry& m = metrics();
  m.add("routing.nets", nl.num_nets());
  m.add("routing.overflowed_crossings",
        static_cast<std::uint64_t>(res.overflowed_crossings));
  m.record_histogram("routing.net_length_um", net_lengths);
  return res;
}

}  // namespace tpi
