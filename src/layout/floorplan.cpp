#include "layout/floorplan.hpp"

#include <algorithm>
#include <cmath>

namespace tpi {

int Floorplan::nearest_row(double y) const {
  const int row = static_cast<int>(std::floor((y - core_box.ly) / row_height_um));
  return std::clamp(row, 0, num_rows - 1);
}

double placeable_cell_area(const Netlist& nl) {
  double area = 0.0;
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellSpec* spec = nl.cell(static_cast<CellId>(c)).spec;
    if (spec->func == CellFunc::kFiller) continue;
    area += spec->area_um2();
  }
  return area;
}

Floorplan make_floorplan(const Netlist& nl, const FloorplanOptions& opts) {
  const CellLibrary& lib = nl.library();
  Floorplan fp;
  fp.row_height_um = lib.row_height_um();
  fp.site_width_um = lib.site_width_um();

  const double cell_area = placeable_cell_area(nl);
  const double row_area = cell_area / std::clamp(opts.target_row_utilization, 0.05, 1.0);
  const double side = std::sqrt(row_area);

  // Quantise: whole rows, row length in whole sites. Pick the row count
  // (floor or ceiling of the ideal) that keeps the core closest to square;
  // the residual stretch makes the core drift mildly rectangular as cells
  // are added — aspect ratio stays within [0.9, 1.1] (§4.3).
  const int rows_lo = std::max(1, static_cast<int>(std::floor(side / fp.row_height_um)));
  const int rows_hi = rows_lo + 1;
  auto aspect_error = [&](int rows) {
    const double h = rows * fp.row_height_um;
    const double w = row_area / h;
    return std::abs(std::log(w / h));
  };
  fp.num_rows = aspect_error(rows_lo) <= aspect_error(rows_hi) ? rows_lo : rows_hi;
  const double raw_length = row_area / (fp.num_rows * fp.row_height_um);
  fp.row_length_um =
      std::ceil(raw_length / fp.site_width_um) * fp.site_width_um;

  const double core_w = fp.row_length_um;
  const double core_h = fp.num_rows * fp.row_height_um;
  fp.core_box = Rect{0.0, 0.0, core_w, core_h};

  const double margin = opts.core_to_ring_margin_um + opts.ground_ring_width_um +
                        opts.power_ring_width_um + opts.io_ring_width_um;
  // Chip outline forced square around the (possibly rectangular) core.
  const double chip_side = std::max(core_w, core_h) + 2.0 * margin;
  const double cx = core_w / 2.0, cy = core_h / 2.0;
  fp.chip_box = Rect{cx - chip_side / 2.0, cy - chip_side / 2.0, cx + chip_side / 2.0,
                     cy + chip_side / 2.0};
  return fp;
}

}  // namespace tpi
