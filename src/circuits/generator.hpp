// Synthetic sequential circuit generator.
//
// Produces an acyclic gate-level netlist from a CircuitProfile:
//  * flip-flops assigned to clock domains,
//  * a combinational cloud grown gate-by-gate with locality-biased input
//    selection (Rent-style wiring locality) and a bounded logic depth,
//  * "hub" signals with large fanout (enable/mode nets) that overload
//    minimum-drive cells — the slow-node population of §4.4,
//  * pseudo-random-pattern-resistant wide-decode blocks over a shared
//    signal pool — the hard-fault population that test point insertion
//    targets (§2, §4.2),
//  * full observability: left-over signals are folded into XOR observation
//    trees feeding extra primary outputs, so fault efficiency stays high.
//
// Generation is deterministic in CircuitProfile::seed.
#pragma once

#include <memory>

#include "circuits/profiles.hpp"
#include "netlist/netlist.hpp"

namespace tpi {

std::unique_ptr<Netlist> generate_circuit(const CellLibrary& lib, const CircuitProfile& profile);

}  // namespace tpi
