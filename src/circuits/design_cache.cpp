#include "circuits/design_cache.hpp"

#include <cstdio>

#include "circuits/generator.hpp"

namespace tpi {
namespace {

// Coarse resident-size estimate of one entry: the netlist's cell/net
// tables plus the warm capture-view model and testability arrays. Only
// used to apportion the MiB budget — exactness does not matter, scaling
// with design size does.
std::size_t estimate_bytes(const Netlist& nl) {
  const std::size_t cells = nl.num_cells();
  const std::size_t nets = nl.num_nets();
  return cells * 160 + nets * 224 + (1 << 12);
}

void append_num(std::string& out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof buf, "%.17g;", v);
  out += buf;
}

void append_num(std::string& out, long long v) {
  out += std::to_string(v);
  out += ';';
}

}  // namespace

std::string DesignCache::key_of(const CircuitProfile& p, const CellLibrary& lib) {
  std::string key = lib.name();
  key += '|';
  key += p.name;
  key += '|';
  append_num(key, static_cast<long long>(p.num_ffs));
  append_num(key, static_cast<long long>(p.num_comb_gates));
  append_num(key, static_cast<long long>(p.num_pis));
  append_num(key, static_cast<long long>(p.num_pos));
  append_num(key, static_cast<long long>(p.num_clock_domains));
  for (const double f : p.domain_fraction) append_num(key, f);
  key += '|';
  append_num(key, static_cast<long long>(p.target_depth));
  append_num(key, static_cast<long long>(p.num_hard_blocks));
  append_num(key, static_cast<long long>(p.hard_block_width));
  append_num(key, static_cast<long long>(p.hard_classes_per_block));
  append_num(key, static_cast<long long>(p.hard_mode_bits));
  append_num(key, p.xor_bias);
  append_num(key, static_cast<long long>(p.num_hub_signals));
  append_num(key, p.hub_pick_prob);
  append_num(key, static_cast<long long>(static_cast<std::int64_t>(p.seed)));
  return key;
}

DesignCache::DesignCache(const CellLibrary& lib, std::size_t budget_bytes,
                         MetricsRegistry* registry)
    : lib_(lib), budget_bytes_(budget_bytes), registry_(registry) {}

std::shared_ptr<DesignCache::Entry> DesignCache::build(const CircuitProfile& profile) const {
  auto entry = std::make_shared<Entry>(generate_circuit(lib_, profile));
  // Warm exactly what the flow's first stage asks for: capture-view
  // testability, which forces the capture TopoOrder and CombModel. The
  // golden netlist has no TSFFs yet, so the topo slot also serves the
  // application view.
  entry->db_.testability(SeqView::kCapture);
  entry->bytes_ = estimate_bytes(entry->netlist());
  return entry;
}

std::shared_ptr<DesignCache::Entry> DesignCache::acquire(const CircuitProfile& profile) {
  const std::string key = key_of(profile, lib_);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    const auto it = map_.find(key);
    if (it != map_.end()) {
      ++stats_.hits;
      if (registry_ != nullptr) registry_->add("server.cache.hits");
      it->second.last_used = ++tick_;
      return it->second.entry;
    }
    if (in_flight_.count(key) == 0) break;
    built_cv_.wait(lock);  // another thread is generating this key
  }

  ++stats_.misses;
  if (registry_ != nullptr) registry_->add("server.cache.misses");
  in_flight_.insert(key);
  lock.unlock();
  std::shared_ptr<Entry> entry;
  try {
    entry = build(profile);
  } catch (...) {
    lock.lock();
    in_flight_.erase(key);
    built_cv_.notify_all();
    throw;
  }
  lock.lock();
  in_flight_.erase(key);
  map_[key] = Resident{entry, ++tick_};
  stats_.bytes += entry->bytes();
  stats_.entries = map_.size();
  evict_over_budget_locked(key);
  built_cv_.notify_all();
  return entry;
}

void DesignCache::evict_over_budget_locked(const std::string& just_inserted) {
  while (stats_.bytes > budget_bytes_ && map_.size() > 1) {
    auto victim = map_.end();
    for (auto it = map_.begin(); it != map_.end(); ++it) {
      if (it->first == just_inserted) continue;  // newest entry always stays
      if (victim == map_.end() || it->second.last_used < victim->second.last_used) {
        victim = it;
      }
    }
    if (victim == map_.end()) break;
    stats_.bytes -= victim->second.entry->bytes();
    map_.erase(victim);
    ++stats_.evictions;
    if (registry_ != nullptr) registry_->add("server.cache.evictions");
  }
  stats_.entries = map_.size();
}

DesignCache::Stats DesignCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace tpi
