// Circuit profiles: parameter sets for the synthetic circuit generator that
// match the aggregate statistics of the paper's three test cases (§4.1).
//
// The real netlists are unavailable (s38417 is public but the two Philips
// cores are proprietary), so the generator synthesises sequential circuits
// with matched flip-flop counts, gate counts, clock-domain structure and —
// crucially for Table 1 — a population of pseudo-random-pattern-resistant
// fault clusters (wide decoders over shared signal pools), which is what
// makes test point insertion pay off in compact-ATPG pattern count.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace tpi {

struct CircuitProfile {
  std::string name;

  // Structure.
  int num_ffs = 0;
  int num_comb_gates = 0;       ///< target combinational cell count
  int num_pis = 0;              ///< functional primary inputs (excl. clocks)
  int num_pos = 0;
  int num_clock_domains = 1;
  std::vector<double> domain_fraction;  ///< FF share per domain (sums to 1)
  int target_depth = 24;        ///< approximate logic depth in gate levels

  // Random-pattern-resistant structure: each "hard block" is a rare master
  // enable (a W-wide decode) gating a region of pairwise-incompatible fault
  // classes. Without test points every class needs its own deterministic
  // pattern; a single control point on the enable collapses the block to
  // random-testable — the concentration that makes 1% TPI slash compact
  // pattern counts (§4.2).
  int num_hard_blocks = 40;        ///< number of gated regions
  int hard_block_width = 16;       ///< enable decode width W (P(enable) ~ 2^-W)
  int hard_classes_per_block = 32; ///< incompatible classes per region
  int hard_mode_bits = 6;          ///< mode-code width defining the classes
  double xor_bias = 0.0;           ///< extra XOR/XNOR share (DSP datapaths)

  // High-fanout "hub" signals (enables, mode bits). Hubs with dozens of
  // sinks overload X1 drivers and become the paper's "slow nodes" (§4.4).
  int num_hub_signals = 32;
  double hub_pick_prob = 0.04;

  // DfT / layout policy from §4.1 (consumed by the flow driver).
  int max_chain_length = 100;   ///< balanced-chain target (0 = unlimited)
  int max_chains = 0;           ///< cap on chain count (0 = unlimited)
  double target_row_utilization = 0.97;
  double clock_period_ps = 0.0;      ///< application target (0 = none)
  std::vector<double> domain_period_ps;  ///< per-domain target period

  std::uint64_t seed = 1;
};

/// ISCAS'89 s38417 equivalent: 1,636 FFs, ~23k cells, single clock.
CircuitProfile s38417_profile();

/// "Circuit 1": digital control core of a wireless communication IC —
/// two clock domains (8 MHz and 64 MHz), ~33k cells.
CircuitProfile circuit1_profile();

/// p26909: 24-bit DSP core — XOR-rich datapath, 32 scan chains max,
/// 50% row utilisation, 140 MHz target.
CircuitProfile p26909_profile();

/// All three, in the paper's order.
std::vector<CircuitProfile> paper_profiles();

/// Uniformly scale a profile's size (FFs, gates, IOs, hard blocks) by
/// `factor` — used to produce quick-running variants for tests.
CircuitProfile scaled(const CircuitProfile& p, double factor);

}  // namespace tpi
