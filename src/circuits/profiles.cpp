#include "circuits/profiles.hpp"

#include <algorithm>
#include <cmath>

namespace tpi {

CircuitProfile s38417_profile() {
  CircuitProfile p;
  p.name = "s38417";
  p.num_ffs = 1636;          // as reported in §4.1
  p.num_comb_gates = 21500;  // ~23.1k cells total
  p.num_pis = 28;
  p.num_pos = 106;
  p.num_clock_domains = 1;
  p.domain_fraction = {1.0};
  p.target_depth = 30;
  p.num_hard_blocks = 20;   // ~1.2x the 1% TP budget (16 TPs)
  p.hard_block_width = 14;
  p.hard_classes_per_block = 32;
  p.hard_mode_bits = 6;
  p.xor_bias = 0.02;
  p.num_hub_signals = 48;
  p.hub_pick_prob = 0.05;
  p.max_chain_length = 100;
  p.max_chains = 0;
  p.target_row_utilization = 0.97;
  p.clock_period_ps = 0.0;  // no application frequency target
  p.domain_period_ps = {0.0};
  p.seed = 0x5384171ULL;
  return p;
}

CircuitProfile circuit1_profile() {
  CircuitProfile p;
  p.name = "circuit1";
  p.num_ffs = 2820;
  p.num_comb_gates = 30000;
  p.num_pis = 96;
  p.num_pos = 88;
  p.num_clock_domains = 2;   // 8 MHz and 64 MHz domains (§4.4)
  p.domain_fraction = {0.55, 0.45};
  p.target_depth = 24;
  p.num_hard_blocks = 32;   // 1% TP = 28 TSFFs
  p.hard_block_width = 14;
  p.hard_classes_per_block = 28;
  p.hard_mode_bits = 6;
  p.xor_bias = 0.0;
  p.num_hub_signals = 10;   // milder hubs: no slow nodes reported for circuit1
  p.hub_pick_prob = 0.012;
  p.max_chain_length = 100;
  p.max_chains = 0;
  p.target_row_utilization = 0.97;
  p.clock_period_ps = 0.0;   // both domains run far above requirement
  p.domain_period_ps = {125000.0, 15625.0};  // 8 MHz, 64 MHz requirements
  p.seed = 0xC1C1C1ULL;
  return p;
}

CircuitProfile p26909_profile() {
  CircuitProfile p;
  p.name = "p26909";
  p.num_ffs = 3584;
  p.num_comb_gates = 32500;  // 24-bit DSP datapath
  p.num_pis = 140;
  p.num_pos = 120;
  p.num_clock_domains = 1;
  p.domain_fraction = {1.0};
  p.target_depth = 40;       // deep arithmetic paths
  p.num_hard_blocks = 48;    // heavily resistant datapath (79% pattern drop)
  p.hard_block_width = 16;
  p.hard_classes_per_block = 40;
  p.hard_mode_bits = 6;
  p.xor_bias = 0.10;         // adder/multiplier trees
  p.num_hub_signals = 64;
  p.hub_pick_prob = 0.05;
  p.max_chain_length = 0;    // derived from the 32-chain cap
  p.max_chains = 32;
  p.target_row_utilization = 0.50;  // §4.3: 50% to avoid routing congestion
  p.clock_period_ps = 7142.9;       // 140 MHz target (§4.4)
  p.domain_period_ps = {7142.9};
  p.seed = 0x26909ULL;
  return p;
}

std::vector<CircuitProfile> paper_profiles() {
  return {s38417_profile(), circuit1_profile(), p26909_profile()};
}

CircuitProfile scaled(const CircuitProfile& p, double factor) {
  CircuitProfile s = p;
  auto scale = [factor](int v) { return std::max(1, static_cast<int>(std::lround(v * factor))); };
  s.num_ffs = scale(p.num_ffs);
  s.num_comb_gates = scale(p.num_comb_gates);
  s.num_pis = std::max(4, scale(p.num_pis));
  s.num_pos = std::max(4, scale(p.num_pos));
  s.num_hard_blocks = std::max(1, scale(p.num_hard_blocks));
  s.name = p.name + "_x" + std::to_string(factor);
  return s;
}

}  // namespace tpi
