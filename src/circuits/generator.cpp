#include "circuits/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace tpi {
namespace {

struct Sig {
  NetId net = kNoNet;
  int level = 0;
};

class Generator {
 public:
  Generator(const CellLibrary& lib, const CircuitProfile& p)
      : lib_(lib), p_(p), rng_(p.seed), nl_(std::make_unique<Netlist>(&lib, p.name)) {}

  std::unique_ptr<Netlist> run() {
    make_ios_and_ffs();
    // Grow the cloud in three phases so hard-block outputs get consumed by
    // later gates: 40% plain logic, then the decode blocks, then the rest.
    const int budget = gate_budget();  // cloud gates (hard blocks budgeted separately)
    grow_gates(static_cast<int>(budget * 0.4));
    const int before_hard = gates_made_;
    make_hard_blocks();
    const int hard_gates = gates_made_ - before_hard;
    grow_gates(budget - (gates_made_ - hard_gates));
    while (ffs_released_ < static_cast<int>(ffs_.size())) release_next_ff();
    connect_ff_inputs();
    connect_pos();
    absorb_unused();
    return std::move(nl_);
  }

 private:
  int gate_budget() const {
    // Reserve room for decode blocks (~1.5 cells per input incl. inverters)
    // and the XOR observation trees (~9% of gates end up unconsumed).
    const int hard = p_.num_hard_blocks *
                     (p_.hard_block_width * 3 / 2 + 6 +
                      p_.hard_classes_per_block * (p_.hard_mode_bits + 3));
    const int obs = static_cast<int>(p_.num_comb_gates * 0.09);
    return std::max(16, p_.num_comb_gates - hard - obs);
  }

  void make_ios_and_ffs() {
    for (int d = 0; d < p_.num_clock_domains; ++d) {
      const int pi = nl_->add_primary_input("clk" + std::to_string(d));
      nl_->mark_clock(pi);
      clock_nets_.push_back(nl_->pi_net(pi));
    }
    for (int i = 0; i < p_.num_pis; ++i) {
      const int pi = nl_->add_primary_input("pi" + std::to_string(i));
      pool_.push_back(Sig{nl_->pi_net(pi), 0});
    }
    const CellSpec* dff = lib_.by_name("DFF_X1");
    assert(dff != nullptr);
    // Domain assignment by cumulative fraction.
    std::vector<double> cum(p_.domain_fraction.size());
    double acc = 0;
    for (std::size_t d = 0; d < cum.size(); ++d) {
      acc += p_.domain_fraction[d];
      cum[d] = acc;
    }
    // Flip-flops are created up front but released into the signal pool
    // interleaved with logic growth (see maybe_release_ff), so registers
    // end up embedded in local logic clusters rather than clumped — as in
    // a real synthesised design.
    for (int i = 0; i < p_.num_ffs; ++i) {
      const CellId ff = nl_->add_cell(dff, "ff" + std::to_string(i));
      const NetId q = nl_->add_net("ff" + std::to_string(i) + "_q");
      nl_->connect(ff, dff->output_pin, q);
      const double frac = (p_.num_ffs > 1)
                              ? static_cast<double>(i) / static_cast<double>(p_.num_ffs - 1)
                              : 0.0;
      int dom = 0;
      while (dom + 1 < static_cast<int>(cum.size()) &&
             frac > cum[static_cast<std::size_t>(dom)]) {
        ++dom;
      }
      nl_->connect(ff, dff->clock_pin, clock_nets_[static_cast<std::size_t>(dom)]);
      ffs_.push_back(ff);
    }
    ff_release_stride_ = std::max(1, gate_budget() / std::max(1, p_.num_ffs));
    ff_pool_index_.assign(ffs_.size(), 0);
    // Seed the pool with the first slice of flip-flops so early gates have
    // registered sources.
    for (int i = 0; i < std::min(p_.num_ffs, std::max(16, p_.num_ffs / 16)); ++i) {
      release_next_ff();
    }
    // Designate hub signals among the FF outputs (mode/enable registers).
    for (int i = 0; i < p_.num_hub_signals && i < static_cast<int>(pool_.size()); ++i) {
      const std::size_t idx = static_cast<std::size_t>(
          rng_.next_below(pool_.size()));
      hubs_.push_back(pool_[idx]);
    }
  }

  // Weighted gate-function mix (shares sum to 1 before xor_bias shifts).
  const CellSpec* pick_gate_spec() {
    struct Mix {
      CellFunc func;
      int inputs;
      double weight;
    };
    const double x = p_.xor_bias;
    static thread_local std::vector<Mix> mix;
    mix = {
        {CellFunc::kNand, 2, 0.26},          {CellFunc::kNor, 2, 0.13},
        {CellFunc::kInv, 1, 0.14},           {CellFunc::kAnd, 2, 0.06},
        {CellFunc::kOr, 2, 0.06},            {CellFunc::kNand, 3, 0.05},
        {CellFunc::kNor, 3, 0.04},           {CellFunc::kXor, 2, 0.04 + x},
        {CellFunc::kXnor, 2, 0.03 + x / 2},  {CellFunc::kMux2, 2, 0.05},
        {CellFunc::kBuf, 1, 0.03},           {CellFunc::kAnd, 3, 0.03},
        {CellFunc::kOr, 3, 0.03},            {CellFunc::kNand, 4, 0.025},
        {CellFunc::kNor, 4, 0.02},
    };
    double total = 0;
    for (const auto& m : mix) total += m.weight;
    double r = rng_.next_double() * total;
    for (const auto& m : mix) {
      r -= m.weight;
      if (r <= 0) return lib_.gate(m.func, m.inputs);
    }
    return lib_.gate(CellFunc::kNand, 2);
  }

  Sig pick_input(int max_level) {
    for (int attempt = 0; attempt < 8; ++attempt) {
      Sig s;
      const double roll = rng_.next_double();
      if (!hubs_.empty() && roll < p_.hub_pick_prob) {
        s = hubs_[static_cast<std::size_t>(rng_.next_below(hubs_.size()))];
      } else if (roll < p_.hub_pick_prob + 0.78 && pool_.size() > 64) {
        // Strong locality: most wiring connects to very recent signals
        // (Rent-style clustering).
        const std::size_t window = std::min<std::size_t>(128, pool_.size());
        const std::size_t idx =
            pool_.size() - 1 - static_cast<std::size_t>(rng_.next_below(window));
        s = pool_[idx];
      } else if (roll < p_.hub_pick_prob + 0.94 && pool_.size() > 512) {
        // Medium range.
        const std::size_t window = std::min<std::size_t>(1024, pool_.size());
        const std::size_t idx =
            pool_.size() - 1 - static_cast<std::size_t>(rng_.next_below(window));
        s = pool_[idx];
      } else {
        s = pool_[static_cast<std::size_t>(rng_.next_below(pool_.size()))];
      }
      if (s.level < max_level) return s;
    }
    // Fall back to a shallow signal (PIs/FF outputs are level 0).
    return pool_[static_cast<std::size_t>(
        rng_.next_below(std::min<std::size_t>(pool_.size(), static_cast<std::size_t>(
                                                                p_.num_pis + p_.num_ffs))))];
  }

  NetId emit_gate(const CellSpec* spec, const std::vector<Sig>& ins, Sig* out_sig) {
    const CellId c = nl_->add_cell(spec, "g" + std::to_string(gates_made_));
    static const char* kNames[] = {"A", "B", "C", "D"};
    int level = 0;
    for (std::size_t i = 0; i < ins.size(); ++i) {
      const char* pin = (spec->func == CellFunc::kMux2 && i == 2) ? "S" : kNames[i];
      nl_->connect(c, spec->find_pin(pin), ins[i].net);
      level = std::max(level, ins[i].level);
    }
    const NetId out = nl_->add_net("n" + std::to_string(gates_made_));
    nl_->connect(c, spec->output_pin, out);
    ++gates_made_;
    if (out_sig != nullptr) *out_sig = Sig{out, level + 1};
    return out;
  }

  void release_next_ff() {
    if (ffs_released_ >= static_cast<int>(ffs_.size())) return;
    const CellId ff = ffs_[static_cast<std::size_t>(ffs_released_)];
    ff_pool_index_[static_cast<std::size_t>(ffs_released_)] = pool_.size();
    pool_.push_back(Sig{nl_->cell(ff).output_net(), 0});
    ++ffs_released_;
  }

  // Root net of a one-level buffer/inverter chain and its parity.
  std::pair<NetId, bool> invert_root(NetId net) const {
    bool inverted = false;
    for (int hops = 0; hops < 4; ++hops) {
      const Net& n = nl_->net(net);
      if (!n.driver.valid()) break;
      const CellInst& d = nl_->cell(n.driver.cell);
      if (d.spec->func == CellFunc::kInv) {
        inverted = !inverted;
      } else if (d.spec->func != CellFunc::kBuf) {
        break;
      }
      const NetId in = d.conn[0];
      if (in == kNoNet) break;
      net = in;
    }
    return {net, inverted};
  }

  bool conflicts(const std::vector<Sig>& ins, const Sig& cand) const {
    const auto [croot, cinv] = invert_root(cand.net);
    for (const Sig& prev : ins) {
      if (prev.net == cand.net) return true;
      const auto [proot, pinv] = invert_root(prev.net);
      if (proot == croot) return true;  // same source, either polarity
    }
    return false;
  }

  void grow_gates(int count) {
    for (int g = 0; g < count; ++g) {
      if (gates_made_ % ff_release_stride_ == 0) release_next_ff();
      const CellSpec* spec = pick_gate_spec();
      const int arity = spec->num_inputs + (spec->func == CellFunc::kMux2 ? 1 : 0);
      std::vector<Sig> ins;
      ins.reserve(static_cast<std::size_t>(arity));
      for (int i = 0; i < arity; ++i) {
        Sig s = pick_input(p_.target_depth);
        // Avoid duplicate inputs and one-level complements (x together
        // with INV(x) makes a monotone gate constant — a synthesis tool
        // would have optimised such logic away).
        for (int tries = 0; tries < 6 && conflicts(ins, s); ++tries) {
          s = pick_input(p_.target_depth);
        }
        ins.push_back(s);
      }
      Sig out;
      emit_gate(spec, ins, &out);
      pool_.push_back(out);
    }
  }

  // Build a balanced AND tree over the given literals; returns the root.
  Sig and_tree(std::vector<Sig> level) {
    const CellSpec* and2 = lib_.gate(CellFunc::kAnd, 2);
    while (level.size() > 1) {
      std::vector<Sig> next;
      for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
        Sig out;
        emit_gate(and2, {level[i], level[i + 1]}, &out);
        next.push_back(out);
      }
      if (level.size() % 2) next.push_back(level.back());
      level = std::move(next);
    }
    return level.front();
  }

  // Each hard block: a rare master enable d (W-wide decode over independent
  // signals) gating C classes. Class c is an AND tree over d plus a
  // distinct mode code (polarity pattern over the block's mode signals), so
  // any two classes conflict in at least one mode bit — a compact ATPG
  // cannot merge their tests into one pattern. A control test point on d
  // makes every class random-testable at probability ~2^-mode_bits.
  void make_hard_blocks() {
    if (p_.num_hard_blocks <= 0) return;
    // Independent source pool for decode/mode literals: register outputs
    // and primary inputs. Deep internal signals would be mutually
    // correlated, which turns "hard to detect" into "undetectable".
    // Only level-0 sources (PIs / register outputs): mutually independent
    // by construction, so every decode is satisfiable — hard, never dead.
    std::vector<Sig> shared;
    const int pool_size = std::max(p_.hard_block_width * 3, 8);
    for (int guard = 0; static_cast<int>(shared.size()) < pool_size && guard < 4096;
         ++guard) {
      const Sig s = pick_input(1);
      if (s.level != 0) continue;
      bool dup = false;
      for (const Sig& prev : shared) dup = dup || prev.net == s.net;
      if (!dup) shared.push_back(s);
    }
    const CellSpec* and2 = lib_.gate(CellFunc::kAnd, 2);
    const CellSpec* inv = lib_.gate(CellFunc::kInv, 1);
    const CellSpec* xor2 = lib_.gate(CellFunc::kXor, 2);
    const int mode_bits = std::max(2, p_.hard_mode_bits);
    for (int b = 0; b < p_.num_hard_blocks; ++b) {
      // --- master enable: W-wide decode over distinct shared signals ---
      std::vector<std::size_t> picks(shared.size());
      for (std::size_t i = 0; i < picks.size(); ++i) picks[i] = i;
      rng_.shuffle(picks);
      std::vector<Sig> literals;
      for (std::size_t pi = 0;
           pi < picks.size() && static_cast<int>(literals.size()) < p_.hard_block_width;
           ++pi) {
        Sig s = shared[picks[pi]];
        if (rng_.next_bool(0.5)) {
          Sig inverted;
          emit_gate(inv, {s}, &inverted);
          s = inverted;
        }
        literals.push_back(s);
      }
      const Sig enable = and_tree(literals);
      pool_.push_back(enable);  // enable is also consumed by the datapath

      // --- block-local mode signals: independent level-0 sources that are
      // not already decode literals of this block ---
      std::vector<Sig> mode_pos, mode_neg;
      for (int guard = 0; static_cast<int>(mode_pos.size()) < mode_bits && guard < 4096;
           ++guard) {
        const Sig s = pick_input(1);
        if (s.level != 0) continue;
        bool dup = false;
        for (const Sig& lit : literals) dup = dup || invert_root(lit.net).first == s.net;
        for (const Sig& prev : mode_pos) dup = dup || prev.net == s.net;
        if (dup) continue;
        Sig n;
        emit_gate(inv, {s}, &n);
        mode_pos.push_back(s);
        mode_neg.push_back(n);
      }
      if (static_cast<int>(mode_pos.size()) < mode_bits) continue;  // degenerate circuit

      // --- classes: distinct mode codes, all gated by the enable ---
      std::vector<unsigned> codes;
      const unsigned code_space = 1u << mode_bits;
      for (int c = 0; c < p_.hard_classes_per_block && codes.size() < code_space; ++c) {
        unsigned code = static_cast<unsigned>(rng_.next_below(code_space));
        bool dup = true;
        for (int tries = 0; tries < 32 && dup; ++tries) {
          dup = false;
          for (const unsigned prev : codes) dup = dup || prev == code;
          if (dup) code = static_cast<unsigned>(rng_.next_below(code_space));
        }
        if (dup) continue;
        codes.push_back(code);
        std::vector<Sig> klits;
        klits.push_back(enable);
        for (int mbit = 0; mbit < mode_bits; ++mbit) {
          klits.push_back((code >> mbit) & 1u ? mode_pos[static_cast<std::size_t>(mbit)]
                                              : mode_neg[static_cast<std::size_t>(mbit)]);
        }
        const Sig trunk = and_tree(klits);
        // Leaf payload: a datapath signal observable only under this class.
        Sig leaf;
        emit_gate(and2, {trunk, pick_input(p_.target_depth)}, &leaf);
        // Merge into the datapath via XOR so observation is unconditional.
        Sig merged;
        emit_gate(xor2, {leaf, pick_input(p_.target_depth)}, &merged);
        pool_.push_back(merged);
      }
    }
  }

  void connect_ff_inputs() {
    // Each FF's D comes from logic created near the FF's own neighbourhood
    // (local feedback loop), preferring deeper signals within that window.
    for (std::size_t f = 0; f < ffs_.size(); ++f) {
      const std::size_t anchor =
          f < static_cast<std::size_t>(ffs_released_) ? ff_pool_index_[f] : pool_.size() - 1;
      const std::size_t win_lo = anchor;
      const std::size_t win_hi = std::min(pool_.size(), anchor + 512);
      Sig best{kNoNet, -1};
      for (int tries = 0; tries < 10; ++tries) {
        const std::size_t idx =
            win_lo + static_cast<std::size_t>(rng_.next_below(win_hi - win_lo));
        const Sig& s = pool_[idx];
        if (s.level > best.level) best = s;
        if (best.level >= p_.target_depth / 3) break;
      }
      if (best.net == kNoNet) best = pick_input(p_.target_depth + 1);
      const CellSpec* spec = nl_->cell(ffs_[f]).spec;
      nl_->connect(ffs_[f], spec->d_pin, best.net);
    }
  }

  void connect_pos() {
    for (int i = 0; i < p_.num_pos; ++i) {
      Sig s = pick_input(p_.target_depth + 1);
      for (int tries = 0; tries < 6 && s.level < p_.target_depth / 4; ++tries) {
        s = pick_input(p_.target_depth + 1);
      }
      nl_->add_primary_output("po" + std::to_string(i), s.net);
    }
  }

  // Fold every signal nobody reads into XOR observation trees feeding
  // extra primary outputs (keeps the fault universe observable).
  void absorb_unused() {
    std::vector<NetId> unused;
    for (std::size_t n = 0; n < nl_->num_nets(); ++n) {
      const Net& net = nl_->net(static_cast<NetId>(n));
      if (net.fanout() == 0 && (net.driver.valid() || net.driven_by_pi()) &&
          !nl_->is_clock_net(static_cast<NetId>(n))) {
        unused.push_back(static_cast<NetId>(n));
      }
    }
    const CellSpec* xor2 = lib_.gate(CellFunc::kXor, 2);
    int po_idx = 0;
    for (std::size_t start = 0; start < unused.size(); start += 32) {
      const std::size_t end = std::min(unused.size(), start + 32);
      std::vector<NetId> level(unused.begin() + static_cast<std::ptrdiff_t>(start),
                               unused.begin() + static_cast<std::ptrdiff_t>(end));
      while (level.size() > 1) {
        std::vector<NetId> next;
        for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
          const CellId c = nl_->add_cell(xor2, "obs" + std::to_string(gates_made_));
          nl_->connect(c, xor2->find_pin("A"), level[i]);
          nl_->connect(c, xor2->find_pin("B"), level[i + 1]);
          const NetId out = nl_->add_net("obs_n" + std::to_string(gates_made_));
          nl_->connect(c, xor2->output_pin, out);
          ++gates_made_;
          next.push_back(out);
        }
        if (level.size() % 2) next.push_back(level.back());
        level = std::move(next);
      }
      nl_->add_primary_output("obs_po" + std::to_string(po_idx++), level.front());
    }
  }

  const CellLibrary& lib_;
  const CircuitProfile& p_;
  Rng rng_;
  std::unique_ptr<Netlist> nl_;
  std::vector<NetId> clock_nets_;
  std::vector<CellId> ffs_;
  std::vector<Sig> pool_;
  std::vector<Sig> hubs_;
  int gates_made_ = 0;
  int ffs_released_ = 0;
  int ff_release_stride_ = 1;
  std::vector<std::size_t> ff_pool_index_;
};

}  // namespace

std::unique_ptr<Netlist> generate_circuit(const CellLibrary& lib, const CircuitProfile& profile) {
  Generator gen(lib, profile);
  return gen.run();
}

}  // namespace tpi
