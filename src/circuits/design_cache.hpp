// Keyed LRU cache of generated circuits and their warm DesignDB views,
// shared by the flow server (one cache per daemon) and the SOC composer
// (one cache per chip, so N embedded cores instantiating the same profile
// generate it once). Moved here from src/server in PR 10 — the cache only
// depends on the generator and the design database, not on the RPC front
// end.
//
// Generating a paper-sized circuit and building its capture-view
// topo/comb/testability is the dominant fixed cost of a flow request; two
// requests for the same profile at different TP percentages repeat it
// verbatim. The cache keys each entry on the full generation fingerprint
// (every CircuitProfile field, including the seed) plus the cell-library
// name, and holds the pristine generated netlist ("golden") together with
// a DesignDB whose capture-view slots were warmed once at build time.
//
// A job checks out a *copy* of the golden netlist (Netlist copies preserve
// the edit journal), constructs its FlowEngine over the copy, and adopts
// the warm views via DesignDB::adopt_views_from — so repeat requests skip
// regeneration and the first topo/comb/testability rebuild while every job
// still edits a private netlist.
//
// Concurrency: one mutex over the map; a miss releases the lock for the
// build and registers the key as in flight, so concurrent first requests
// for the same profile build it exactly once (the laggards block and then
// count as hits). Entries are handed out as shared_ptr, so LRU eviction
// never invalidates a running job's checkout.
//
// Counters are recorded at event time into the registry passed at
// construction (the server's own, never a job's) as the deterministic
// server.cache.{hits,misses,evictions} metrics: for a fixed request
// multiset they are independent of arrival order and thread count (dedup
// makes the build count per key exactly one), except evictions under a
// budget tight enough that interleaving changes the LRU order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "circuits/profiles.hpp"
#include "library/library.hpp"
#include "netlist/design_db.hpp"
#include "util/metrics.hpp"

namespace tpi {

class DesignCache {
 public:
  /// One cached design: the pristine generated netlist plus warm views.
  /// Immutable after construction apart from DesignDB's internal slots
  /// (view accessors are thread-safe; nobody edits the golden netlist).
  class Entry {
   public:
    explicit Entry(std::unique_ptr<Netlist> golden) : db_(std::move(golden)) {}
    const Netlist& netlist() const { return db_.netlist(); }
    /// Warm views to adopt_views_from after constructing an engine over a
    /// copy of netlist(). Never edit through this DB.
    DesignDB& db() { return db_; }
    std::size_t bytes() const { return bytes_; }

   private:
    friend class DesignCache;
    DesignDB db_;
    std::size_t bytes_ = 0;
  };

  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::size_t bytes = 0;    ///< current resident estimate
    std::size_t entries = 0;  ///< current resident entries
  };

  /// `budget_bytes` caps the resident-entry estimate (the least recently
  /// used entries beyond it are dropped; the newest entry always stays, so
  /// a single oversized design still caches). `registry`, when non-null,
  /// receives the server.cache.* counters; the library must outlive the
  /// cache and every checked-out netlist copy.
  DesignCache(const CellLibrary& lib, std::size_t budget_bytes,
              MetricsRegistry* registry = nullptr);

  /// The cached entry for `profile`, generating and warming it on a miss.
  /// Thread-safe; concurrent misses on one key build once.
  std::shared_ptr<Entry> acquire(const CircuitProfile& profile);

  Stats stats() const;

  /// Canonical cache key: every generation-relevant CircuitProfile field
  /// plus the library name.
  static std::string key_of(const CircuitProfile& profile, const CellLibrary& lib);

 private:
  struct Resident {
    std::shared_ptr<Entry> entry;
    std::uint64_t last_used = 0;
  };

  std::shared_ptr<Entry> build(const CircuitProfile& profile) const;
  void evict_over_budget_locked(const std::string& just_inserted);

  const CellLibrary& lib_;
  const std::size_t budget_bytes_;
  MetricsRegistry* registry_;

  mutable std::mutex mu_;
  std::condition_variable built_cv_;
  std::unordered_map<std::string, Resident> map_;
  std::unordered_set<std::string> in_flight_;
  std::uint64_t tick_ = 0;
  Stats stats_;
};

}  // namespace tpi
