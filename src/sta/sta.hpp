// Graph-based static timing analysis (§3.2 flow step 6, the Pearl stage).
//
// Arrival times and transition times propagate through the application-mode
// combinational graph (TSFF test points appear as transparent cells via
// their D→Q arc — their CK→Q arc is a test-mode false path and is blocked,
// as §4.4 describes). Cell delays come from NLDM table interpolation; loads
// and wire delays come from extraction; lookups outside the characterised
// grid are extrapolated and the affected cells are counted as "slow nodes".
// Clock arrival at each flip-flop is propagated through the physical clock
// tree, so skew is a property of the synthesized tree.
//
// The critical path report decomposes T_cp exactly as the paper's eq. (3):
//   T_cp = T_wires + T_intrinsic + T_load-dep + T_setup + T_skew.
#pragma once

#include <vector>

#include "extraction/extraction.hpp"
#include "netlist/levelize.hpp"

namespace tpi {

class DesignDB;

struct StaOptions {
  double pi_input_slew_ps = 100.0;
  double clock_root_slew_ps = 80.0;
};

struct CriticalPath {
  bool valid = false;
  int clock_pi = -1;     ///< capture domain (index of the clock PI)
  double t_cp_ps = 0.0;  ///< effective minimum period for this path
  // eq. (3) decomposition:
  double t_wires_ps = 0.0;
  double t_intrinsic_ps = 0.0;
  double t_load_dep_ps = 0.0;
  double t_setup_ps = 0.0;
  double t_skew_ps = 0.0;

  int test_points_on_path = 0;  ///< #TP_cp of Table 3
  int logic_cells_on_path = 0;
  CellId launch_ff = kNoCell;   ///< kNoCell when the path starts at a PI
  CellId capture_ff = kNoCell;
  std::vector<CellId> cells;    ///< path cells, launch side first

  double fmax_mhz() const { return t_cp_ps > 0 ? 1.0e6 / t_cp_ps : 0.0; }
};

struct StaResult {
  CriticalPath worst;                      ///< across all domains
  std::vector<CriticalPath> per_domain;    ///< indexed like Netlist::clock_pis()
  int slow_nodes = 0;                      ///< cells with extrapolated lookups
  /// Worst slack per net in "period space" relative to the worst path
  /// (0 = on the critical path); used by timing-driven TPI.
  std::vector<double> net_slack_ps;
  /// Data arrival time per net (diagnostics / tests).
  std::vector<double> arrival_ps;
};

StaResult run_sta(const Netlist& nl, const ExtractionResult& parasitics,
                  const StaOptions& opts = {});

/// Same analysis, pulling the application-view TopoOrder from the design
/// database's cache instead of levelizing (post-ECO the order is usually a
/// cheap refresh of the one ATPG already built).
StaResult run_sta(DesignDB& db, const ExtractionResult& parasitics,
                  const StaOptions& opts = {});

}  // namespace tpi
