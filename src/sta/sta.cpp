#include "sta/sta.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <queue>

#include "netlist/design_db.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

constexpr double kNegInf = -1.0e30;

struct NetArrival {
  double arrival_ps = kNegInf;
  double slew_ps = 0.0;
  CellId prev_cell = kNoCell;  ///< driver cell whose arc set the arrival
  int prev_pin = -1;           ///< that cell's critical input pin
};

// Find the index of a (cell, pin) sink within its net's sink list.
int sink_index(const Net& net, CellId cell, int pin) {
  for (std::size_t i = 0; i < net.sinks.size(); ++i) {
    if (net.sinks[i].cell == cell && net.sinks[i].pin == pin) return static_cast<int>(i);
  }
  return -1;
}

class StaEngine {
 public:
  /// `topo` must be levelize(nl, SeqView::kApplication); both the forward
  /// arrival pass and the backward slack pass walk the same order.
  StaEngine(const Netlist& nl, const ExtractionResult& px, const StaOptions& opts,
            const TopoOrder& topo)
      : nl_(nl), px_(px), opts_(opts), topo_(topo) {}

  StaResult run() {
    net_.assign(nl_.num_nets(), NetArrival{});
    ck_arrival_.assign(nl_.num_cells(), 0.0);
    ck_slew_.assign(nl_.num_cells(), opts_.clock_root_slew_ps);
    ck_domain_.assign(nl_.num_cells(), -1);
    slow_cell_.assign(nl_.num_cells(), 0);

    propagate_clocks();
    propagate_data();
    find_critical_paths();
    compute_slacks();

    StaResult res;
    res.worst = worst_;
    res.per_domain = per_domain_;
    for (const char s : slow_cell_) res.slow_nodes += s;
    res.net_slack_ps = std::move(slack_);
    res.arrival_ps.resize(nl_.num_nets());
    for (std::size_t n = 0; n < nl_.num_nets(); ++n) res.arrival_ps[n] = net_[n].arrival_ps;
    return res;
  }

 private:
  double load_of(NetId net) const {
    return net == kNoNet ? 0.0 : px_.nets[static_cast<std::size_t>(net)].total_cap_ff;
  }
  double wire_to(NetId net, CellId cell, int pin) const {
    if (net == kNoNet) return 0.0;
    const int idx = sink_index(nl_.net(net), cell, pin);
    return idx < 0 ? 0.0
                   : px_.nets[static_cast<std::size_t>(net)].elmore_to_cell_sink(
                         static_cast<std::size_t>(idx));
  }
  double lookup(const NldmTable& table, double slew, double load, CellId cell) {
    const NldmTable::Lookup r = table.lookup(slew, load);
    if (r.extrapolated) slow_cell_[static_cast<std::size_t>(cell)] = 1;
    return r.value_ps;
  }
  static double intrinsic_of(const TimingArc& arc) {
    // Intrinsic delay: near-zero input slew, no output load (§4.4) — the
    // first grid point of the characterisation.
    return arc.delay.lookup(arc.delay.slew_axis().front(), arc.delay.load_axis().front())
        .value_ps;
  }

  void propagate_clocks() {
    struct Item {
      NetId net;
      double arrival;
      double slew;
    };
    std::queue<Item> q;
    for (const int pi : nl_.clock_pis()) {
      q.push(Item{nl_.pi_net(pi), 0.0, opts_.clock_root_slew_ps});
      clock_root_of_[nl_.pi_net(pi)] = pi;
    }
    while (!q.empty()) {
      const Item it = q.front();
      q.pop();
      const Net& net = nl_.net(it.net);
      const int domain = clock_root_of_[it.net];
      for (std::size_t si = 0; si < net.sinks.size(); ++si) {
        const PinRef& s = net.sinks[si];
        const CellInst& inst = nl_.cell(s.cell);
        const double wire =
            px_.nets[static_cast<std::size_t>(it.net)].elmore_to_cell_sink(si);
        const double pin_arr = it.arrival + wire;
        const double pin_slew = it.slew + wire;
        if (inst.spec->sequential && s.pin == inst.spec->clock_pin) {
          ck_arrival_[static_cast<std::size_t>(s.cell)] = pin_arr;
          ck_slew_[static_cast<std::size_t>(s.cell)] = pin_slew;
          ck_domain_[static_cast<std::size_t>(s.cell)] = domain;
        } else if (inst.spec->func == CellFunc::kClkBuf) {
          const TimingArc* arc = inst.spec->arc_from(s.pin);
          const NetId out = inst.output_net();
          if (arc == nullptr || out == kNoNet) continue;
          const double d = lookup(arc->delay, pin_slew, load_of(out), s.cell);
          const double sl = lookup(arc->out_slew, pin_slew, load_of(out), s.cell);
          clock_root_of_[out] = domain;
          q.push(Item{out, pin_arr + d, sl});
        }
      }
    }
  }

  void propagate_data() {
    // Sources: primary inputs (non-clock) and boundary flip-flop outputs.
    for (std::size_t i = 0; i < nl_.num_pis(); ++i) {
      const NetId n = nl_.pi_net(static_cast<int>(i));
      if (nl_.is_clock_net(n)) continue;
      net_[static_cast<std::size_t>(n)].arrival_ps = 0.0;
      net_[static_cast<std::size_t>(n)].slew_ps = opts_.pi_input_slew_ps;
    }
    for (std::size_t c = 0; c < nl_.num_cells(); ++c) {
      const CellId cid = static_cast<CellId>(c);
      const CellInst& inst = nl_.cell(cid);
      if (!inst.spec->sequential) continue;
      if (is_boundary(nl_, cid, SeqView::kApplication)) {
        const NetId q = inst.output_net();
        if (q == kNoNet) continue;
        const TimingArc* arc = inst.spec->arc_from(inst.spec->clock_pin);
        if (arc == nullptr) continue;
        const double d = lookup(arc->delay, ck_slew_[c], load_of(q), cid);
        const double sl = lookup(arc->out_slew, ck_slew_[c], load_of(q), cid);
        auto& na = net_[static_cast<std::size_t>(q)];
        na.arrival_ps = ck_arrival_[c] + d;
        na.slew_ps = sl;
        na.prev_cell = cid;
        na.prev_pin = inst.spec->clock_pin;
      }
    }

    for (const CellId cid : topo_.order) {
      const CellInst& inst = nl_.cell(cid);
      const NetId out = inst.output_net();
      if (out == kNoNet) continue;
      auto& na = net_[static_cast<std::size_t>(out)];
      const double out_load = load_of(out);
      for (const TimingArc& arc : inst.spec->arcs) {
        // Blocked false path (§4.4): the TSFF CK->Q arc is test-mode only.
        if (inst.spec->pins[static_cast<std::size_t>(arc.from_pin)].is_clock) continue;
        const NetId in = inst.conn[static_cast<std::size_t>(arc.from_pin)];
        if (in == kNoNet) continue;
        const auto& ia = net_[static_cast<std::size_t>(in)];
        if (ia.arrival_ps <= kNegInf) continue;
        const double wire = wire_to(in, cid, arc.from_pin);
        const double pin_slew = ia.slew_ps + wire;
        const double d = lookup(arc.delay, pin_slew, out_load, cid);
        const double cand = ia.arrival_ps + wire + d;
        if (cand > na.arrival_ps) {
          na.arrival_ps = cand;
          na.slew_ps = lookup(arc.out_slew, pin_slew, out_load, cid);
          na.prev_cell = cid;
          na.prev_pin = arc.from_pin;
        }
      }
    }
  }

  // Effective period P of an endpoint: data arrival at D + setup − capture
  // clock arrival. F_max = 1 / max(P).
  void find_critical_paths() {
    per_domain_.assign(nl_.clock_pis().size(), CriticalPath{});
    for (std::size_t c = 0; c < nl_.num_cells(); ++c) {
      const CellId cid = static_cast<CellId>(c);
      const CellInst& inst = nl_.cell(cid);
      if (!inst.spec->sequential || inst.spec->d_pin < 0) continue;
      const NetId d_net = inst.conn[static_cast<std::size_t>(inst.spec->d_pin)];
      if (d_net == kNoNet) continue;
      const auto& na = net_[static_cast<std::size_t>(d_net)];
      if (na.arrival_ps <= kNegInf) continue;
      const double wire = wire_to(d_net, cid, inst.spec->d_pin);
      const double p = na.arrival_ps + wire + inst.spec->setup_ps - ck_arrival_[c];
      const int domain_pi = ck_domain_[c];
      int domain_slot = -1;
      for (std::size_t k = 0; k < nl_.clock_pis().size(); ++k) {
        if (nl_.clock_pis()[k] == domain_pi) domain_slot = static_cast<int>(k);
      }
      auto consider = [&](CriticalPath& slot) {
        if (slot.valid && p <= slot.t_cp_ps) return;
        slot = trace_path(cid, d_net, p);
        slot.clock_pi = domain_pi;
      };
      if (domain_slot >= 0) consider(per_domain_[static_cast<std::size_t>(domain_slot)]);
      consider(worst_);
    }
  }

  CriticalPath trace_path(CellId capture, NetId d_net, double p) {
    CriticalPath cp;
    cp.valid = true;
    cp.capture_ff = capture;
    cp.t_cp_ps = p;
    const CellInst& cap_inst = nl_.cell(capture);
    cp.t_setup_ps = cap_inst.spec->setup_ps;
    cp.t_wires_ps += wire_to(d_net, capture, cap_inst.spec->d_pin);

    double launch_ck = 0.0;
    NetId net = d_net;
    for (int guard = 0; guard < 1'000'000; ++guard) {
      const auto& na = net_[static_cast<std::size_t>(net)];
      if (na.prev_cell == kNoCell) break;  // primary input launch
      const CellInst& inst = nl_.cell(na.prev_cell);
      const TimingArc* arc = inst.spec->arc_from(na.prev_pin);
      assert(arc != nullptr);
      const NetId in = inst.conn[static_cast<std::size_t>(na.prev_pin)];
      const bool is_launch_ff =
          inst.spec->sequential && na.prev_pin == inst.spec->clock_pin;
      // Recompute this arc's delay exactly as the forward pass did.
      const double wire = is_launch_ff ? 0.0 : wire_to(in, na.prev_cell, na.prev_pin);
      const double pin_slew = is_launch_ff
                                  ? ck_slew_[static_cast<std::size_t>(na.prev_cell)]
                                  : net_[static_cast<std::size_t>(in)].slew_ps + wire;
      const double d =
          arc->delay.lookup(pin_slew, load_of(net)).value_ps;
      const double intrinsic = intrinsic_of(*arc);
      cp.t_intrinsic_ps += intrinsic;
      cp.t_load_dep_ps += d - intrinsic;
      cp.cells.push_back(na.prev_cell);
      ++cp.logic_cells_on_path;
      if (inst.spec->func == CellFunc::kTsff) ++cp.test_points_on_path;
      if (is_launch_ff) {
        cp.launch_ff = na.prev_cell;
        launch_ck = ck_arrival_[static_cast<std::size_t>(na.prev_cell)];
        break;
      }
      cp.t_wires_ps += wire;
      net = in;
    }
    std::reverse(cp.cells.begin(), cp.cells.end());
    cp.t_skew_ps = launch_ck - ck_arrival_[static_cast<std::size_t>(capture)];
    return cp;
  }

  void compute_slacks() {
    slack_.assign(nl_.num_nets(), std::numeric_limits<double>::infinity());
    if (!worst_.valid) return;
    std::vector<double> down(nl_.num_nets(), kNegInf);
    // Endpoint requirements.
    for (std::size_t c = 0; c < nl_.num_cells(); ++c) {
      const CellId cid = static_cast<CellId>(c);
      const CellInst& inst = nl_.cell(cid);
      if (!inst.spec->sequential || inst.spec->d_pin < 0) continue;
      const NetId d_net = inst.conn[static_cast<std::size_t>(inst.spec->d_pin)];
      if (d_net == kNoNet) continue;
      const double wire = wire_to(d_net, cid, inst.spec->d_pin);
      down[static_cast<std::size_t>(d_net)] =
          std::max(down[static_cast<std::size_t>(d_net)],
                   wire + inst.spec->setup_ps - ck_arrival_[c]);
    }
    for (auto it = topo_.order.rbegin(); it != topo_.order.rend(); ++it) {
      const CellId cid = *it;
      const CellInst& inst = nl_.cell(cid);
      const NetId out = inst.output_net();
      if (out == kNoNet || down[static_cast<std::size_t>(out)] <= kNegInf) continue;
      const double out_load = load_of(out);
      for (const TimingArc& arc : inst.spec->arcs) {
        if (inst.spec->pins[static_cast<std::size_t>(arc.from_pin)].is_clock) continue;
        const NetId in = inst.conn[static_cast<std::size_t>(arc.from_pin)];
        if (in == kNoNet) continue;
        const auto& ia = net_[static_cast<std::size_t>(in)];
        if (ia.arrival_ps <= kNegInf) continue;
        const double wire = wire_to(in, cid, arc.from_pin);
        const double pin_slew = ia.slew_ps + wire;
        const double d = arc.delay.lookup(pin_slew, out_load).value_ps;
        down[static_cast<std::size_t>(in)] =
            std::max(down[static_cast<std::size_t>(in)],
                     wire + d + down[static_cast<std::size_t>(out)]);
      }
    }
    for (std::size_t n = 0; n < nl_.num_nets(); ++n) {
      if (down[n] <= kNegInf || net_[n].arrival_ps <= kNegInf) continue;
      const double p_through = net_[n].arrival_ps + down[n];
      slack_[n] = worst_.t_cp_ps - p_through;
    }
  }

  const Netlist& nl_;
  const ExtractionResult& px_;
  StaOptions opts_;
  const TopoOrder& topo_;
  std::vector<NetArrival> net_;
  std::vector<double> ck_arrival_;
  std::vector<double> ck_slew_;
  std::vector<int> ck_domain_;
  std::unordered_map<NetId, int> clock_root_of_;
  std::vector<char> slow_cell_;
  CriticalPath worst_;
  std::vector<CriticalPath> per_domain_;
  std::vector<double> slack_;
};

}  // namespace

namespace {

StaResult run_sta_with(const Netlist& nl, const TopoOrder& topo,
                       const ExtractionResult& parasitics, const StaOptions& opts) {
  TPI_SPAN("sta.run");
  StaEngine engine(nl, parasitics, opts, topo);
  StaResult res = engine.run();
  MetricsRegistry& m = metrics();
  m.add("sta.runs");
  m.add("sta.domains", res.per_domain.size());
  m.add("sta.slow_nodes", static_cast<std::uint64_t>(res.slow_nodes));
  return res;
}

}  // namespace

StaResult run_sta(const Netlist& nl, const ExtractionResult& parasitics,
                  const StaOptions& opts) {
  // One levelize shared by the forward and backward passes.
  const TopoOrder topo = levelize(nl, SeqView::kApplication);
  return run_sta_with(nl, topo, parasitics, opts);
}

StaResult run_sta(DesignDB& db, const ExtractionResult& parasitics,
                  const StaOptions& opts) {
  return run_sta_with(db.netlist(), db.topo(SeqView::kApplication), parasitics, opts);
}

}  // namespace tpi
