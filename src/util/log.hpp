// Minimal leveled logger used by the flow driver so long-running benches can
// narrate progress without pulling in a logging dependency.
#pragma once

#include <optional>
#include <sstream>
#include <string>
#include <string_view>

namespace tpi {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kSilent = 4 };

/// Global minimum level; messages below it are dropped. Thread-safe: the
/// level is atomic and every line is written with one fwrite, so lines
/// from concurrent workers never interleave mid-line.
void set_log_level(LogLevel level);
LogLevel log_level();

/// "debug" | "info" | "warn" | "error" | "silent" (case-sensitive).
std::optional<LogLevel> parse_log_level(std::string_view name);

/// Initialise the global level from the TPI_LOG_LEVEL environment
/// variable; `fallback` applies when it is unset, and an invalid value
/// warns on stderr before falling back. Returns the level installed.
LogLevel set_log_level_from_env(LogLevel fallback = LogLevel::kWarn);

/// Emit one line (with level tag and elapsed wall time) to stderr.
void log_line(LogLevel level, const std::string& msg);

namespace detail {

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace detail

inline detail::LogStream log_debug() { return detail::LogStream(LogLevel::kDebug); }
inline detail::LogStream log_info() { return detail::LogStream(LogLevel::kInfo); }
inline detail::LogStream log_warn() { return detail::LogStream(LogLevel::kWarn); }
inline detail::LogStream log_error() { return detail::LogStream(LogLevel::kError); }

}  // namespace tpi
