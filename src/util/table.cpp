#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

namespace tpi {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

void TextTable::add_separator() { rows_.emplace_back(); }

std::string TextTable::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << "  ";
      os << std::string(width[c] - row[c].size(), ' ') << row[c];
    }
    os << '\n';
  };
  emit(header_);
  std::vector<std::string> dashes;
  dashes.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) dashes.emplace_back(width[c], '-');
  emit(dashes);
  for (const auto& row : rows_) {
    if (row.empty()) {
      os << '\n';
    } else {
      emit(row);
    }
  }
  return os.str();
}

std::string fmt_int(long long v) {
  const bool neg = v < 0;
  unsigned long long mag = neg ? static_cast<unsigned long long>(-(v + 1)) + 1ULL
                               : static_cast<unsigned long long>(v);
  std::string digits = std::to_string(mag);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string fmt_fixed(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_pct(double v, int decimals) { return fmt_fixed(v, decimals); }

}  // namespace tpi
