#include "util/ledger.hpp"

#include <cstdlib>
#include <ctime>

#include "util/log.hpp"

namespace tpi {

std::uint64_t fnv1a_64(std::string_view data) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

std::string fnv1a_hex(std::string_view data) {
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(fnv1a_64(data)));
  return buf;
}

const char* build_stamp() {
#ifdef TPI_GIT_REV
  return TPI_GIT_REV;
#else
  return "unknown";
#endif
}

namespace {

std::string utc_timestamp() {
  const std::time_t now = std::time(nullptr);
  std::tm tm{};
#if defined(_WIN32)
  gmtime_s(&tm, &now);
#else
  gmtime_r(&now, &tm);
#endif
  char buf[32];
  std::strftime(buf, sizeof buf, "%Y-%m-%dT%H:%M:%SZ", &tm);
  return buf;
}

}  // namespace

Ledger::Ledger(std::string path) : path_(std::move(path)) {
  file_ = std::fopen(path_.c_str(), "a");
  if (file_ == nullptr) log_warn() << "ledger: cannot open " << path_ << " for append";
}

Ledger::~Ledger() {
  if (file_ != nullptr) std::fclose(file_);
}

std::size_t Ledger::lines_written() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_;
}

bool Ledger::append(std::string_view label, const JsonValue& config,
                    const JsonValue& flow) {
  if (file_ == nullptr) return false;
  JsonValue envelope;
  envelope.set("schema", kLedgerSchemaVersion);
  envelope.set("ts", utc_timestamp());
  envelope.set("build", build_stamp());
  envelope.set("label", std::string(label));
  envelope.set("config_fp", fnv1a_hex(config.serialise()));
  envelope.set("config", config);
  envelope.set("flow", flow);
  std::string line = envelope.serialise();
  line += '\n';
  std::lock_guard<std::mutex> lock(mu_);
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size()) {
    log_warn() << "ledger: short write to " << path_;
    return false;
  }
  std::fflush(file_);
  ++lines_;
  return true;
}

std::vector<LedgerEntry> Ledger::read_file(const std::string& path) {
  std::vector<LedgerEntry> entries;
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return entries;
  std::string line;
  char buf[4096];
  auto flush_line = [&entries](const std::string& text) {
    if (text.empty()) return;
    const JsonParseResult parsed = json_parse(text);
    if (!parsed.ok || !parsed.value.is_object()) return;  // torn/foreign line
    LedgerEntry e;
    if (const JsonValue* v = parsed.value.find("schema")) {
      e.schema = static_cast<int>(v->as_int());
    }
    if (const JsonValue* v = parsed.value.find("ts")) e.ts = v->as_string();
    if (const JsonValue* v = parsed.value.find("build")) e.build = v->as_string();
    if (const JsonValue* v = parsed.value.find("label")) e.label = v->as_string();
    if (const JsonValue* v = parsed.value.find("config_fp")) {
      e.config_fp = v->as_string();
    }
    if (const JsonValue* v = parsed.value.find("config")) e.config = *v;
    if (const JsonValue* v = parsed.value.find("flow")) e.flow = *v;
    entries.push_back(std::move(e));
  };
  while (std::fgets(buf, sizeof buf, f) != nullptr) {
    line += buf;
    if (!line.empty() && line.back() == '\n') {
      line.pop_back();
      flush_line(line);
      line.clear();
    }
  }
  flush_line(line);  // unterminated trailing line (crash mid-append)
  std::fclose(f);
  return entries;
}

std::unique_ptr<Ledger> Ledger::from_env() {
  const char* path = std::getenv("TPI_LEDGER");
  if (path == nullptr || *path == '\0') return nullptr;
  return std::make_unique<Ledger>(path);
}

}  // namespace tpi
