// Flow-wide metrics registry: named counters, gauges and histograms with
// snapshot/merge/JSON support.
//
// Naming convention: metrics whose name starts with "rt." are *runtime*
// metrics — wall-clock-, scheduling- or memory-dependent quantities
// (thread-pool queue wait, peak RSS) that legitimately differ from run to
// run. Everything else is *deterministic*: pure functions of the inputs
// and seeds (PODEM backtracks, fault-sim events, routed net lengths), so
// snapshots of those metrics are bit-identical across job counts and the
// sweep report can assert on them. MetricsSnapshot::to_json(kNoRuntime)
// serialises only the deterministic subset.
//
// Scoping: library code records through metrics(), which resolves to the
// innermost ScopedMetricsRegistry on the calling thread, or the process
// global when none is active. FlowEngine scopes each stage to its own
// registry, so per-flow snapshots stay isolated even when many flows run
// concurrently on a sweep pool; worker threads of inner pools (fault-sim
// bank, thread-pool latency hooks) fall through to the global registry.
#pragma once

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tpi {

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// Power-of-two histogram buckets: bucket 0 holds v < 1, bucket i holds
/// 2^(i-1) <= v < 2^i, the last bucket is open-ended.
inline constexpr int kHistogramBuckets = 40;
int histogram_bucket(double v);

/// Local (unsynchronised) histogram accumulator for hot loops: observe
/// per item, then fold into a registry with one record_histogram call.
struct HistogramData {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0, max = 0.0;  ///< valid when count > 0
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  void observe(double v);
  void merge(const HistogramData& o);

  /// Arithmetic mean (0 when empty).
  double mean() const { return count > 0 ? sum / static_cast<double>(count) : 0.0; }

  /// Estimate the q-quantile (q in [0,1]) from the pow2 buckets: walk the
  /// cumulative counts to the bucket holding rank ceil(q*count), then
  /// interpolate linearly inside the bucket's [lo, hi) value range and
  /// clamp to the observed [min, max]. A pure function of the bucket
  /// counts, so deterministic whenever the histogram itself is.
  double quantile(double q) const;
};

/// One metric in a snapshot: counters use `count`, gauges use `value`,
/// histograms use `hist`.
struct MetricValue {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  ///< counter value
  double value = 0.0;       ///< gauge value
  HistogramData hist;
};

/// True for "rt.<...>" names (runtime metrics, excluded from the
/// deterministic serialisation).
inline bool is_runtime_metric(std::string_view name) {
  return name.rfind("rt.", 0) == 0;
}

/// Plain-data copy of a registry, sorted by name: mergeable across runs
/// (counters/histograms add, gauges keep the max) and serialisable.
struct MetricsSnapshot {
  std::vector<MetricValue> metrics;

  bool empty() const { return metrics.empty(); }
  const MetricValue* find(std::string_view name) const;
  void merge(const MetricsSnapshot& other);

  enum Runtime { kNoRuntime = 0, kWithRuntime = 1 };
  /// Compact one-line JSON object. kNoRuntime drops "rt.*" entries, making
  /// the output bit-identical across job counts / machines. Histograms
  /// carry count/sum/min/max/mean/p50/p95/p99 plus the sparse buckets.
  std::string to_json(Runtime runtime = kWithRuntime) const;

  /// Prometheus text exposition (one block per metric, `# TYPE` line
  /// first). Names map as "tpi_" + metric name with every character
  /// outside [a-zA-Z0-9_] replaced by '_'; counters/gauges keep their
  /// type, histograms are exported as `summary` with quantile="0.5/0.95/
  /// 0.99" rows plus `_sum`, `_count`, `_min` and `_max`.
  std::string to_prometheus() const;
};

/// "flow.cells_added" -> "tpi_flow_cells_added" (the exposition name
/// mapping, shared with tools/tpi_top.py and the docs).
std::string prometheus_metric_name(std::string_view name);

/// Thread-safe registry. Metric kind is fixed by the first touch of a
/// name; a later touch under a different kind is dropped with a warning.
class MetricsRegistry {
 public:
  MetricsRegistry();
  ~MetricsRegistry();
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void add(std::string_view name, std::uint64_t delta = 1);  ///< counter
  void set(std::string_view name, double value);             ///< gauge, last write
  void set_max(std::string_view name, double value);         ///< gauge, keep max
  void observe(std::string_view name, double value);         ///< histogram point
  void record_histogram(std::string_view name, const HistogramData& data);

  MetricsSnapshot snapshot() const;
  void clear();

  /// Process-wide registry (thread-pool latencies, anything unscoped).
  static MetricsRegistry& global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// The registry library code should record into: the innermost
/// ScopedMetricsRegistry on this thread, or MetricsRegistry::global().
MetricsRegistry& metrics();

/// Redirect metrics() on the current thread for the lifetime of the scope.
class ScopedMetricsRegistry {
 public:
  explicit ScopedMetricsRegistry(MetricsRegistry& registry);
  ~ScopedMetricsRegistry();
  ScopedMetricsRegistry(const ScopedMetricsRegistry&) = delete;
  ScopedMetricsRegistry& operator=(const ScopedMetricsRegistry&) = delete;

 private:
  MetricsRegistry* prev_;
};

/// Peak resident set size of the process in kilobytes (0 where
/// unsupported). Recorded per stage as the "rt.flow.peak_rss_kb" gauge.
double peak_rss_kb();

}  // namespace tpi
