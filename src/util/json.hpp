// Minimal JSON document model: parse a byte string into a JsonValue tree
// and serialise it back. Complements json_check.hpp (which only validates):
// the FlowConfig loader and the flow server's JSON-RPC endpoint need to
// *read* documents, not just vet them. Deliberately small — no comments, no
// NaN/Inf, UTF-8 passed through verbatim, \uXXXX escapes decoded to UTF-8.
//
// Object member order is preserved from the source text (and from
// insertion when building documents programmatically), so serialisation is
// deterministic: parse(serialise(v)) == v and serialise is stable across
// runs — the server's responses can be diffed byte-for-byte.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace tpi {

class JsonValue;

/// One "{...}" with member order preserved (vector of pairs, not a map).
using JsonObject = std::vector<std::pair<std::string, JsonValue>>;
using JsonArray = std::vector<JsonValue>;

enum class JsonKind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

class JsonValue {
 public:
  JsonValue() = default;                                      ///< null
  JsonValue(bool b) : kind_(JsonKind::kBool), bool_(b) {}     // NOLINT(google-explicit-constructor)
  JsonValue(double n) : kind_(JsonKind::kNumber), num_(n) {}  // NOLINT
  JsonValue(std::int64_t n) : kind_(JsonKind::kNumber), num_(static_cast<double>(n)) {}  // NOLINT
  JsonValue(int n) : kind_(JsonKind::kNumber), num_(n) {}     // NOLINT
  JsonValue(std::string s) : kind_(JsonKind::kString), str_(std::move(s)) {}  // NOLINT
  JsonValue(const char* s) : kind_(JsonKind::kString), str_(s) {}             // NOLINT
  JsonValue(JsonArray a) : kind_(JsonKind::kArray), arr_(std::move(a)) {}     // NOLINT
  JsonValue(JsonObject o) : kind_(JsonKind::kObject), obj_(std::move(o)) {}   // NOLINT

  JsonKind kind() const { return kind_; }
  bool is_null() const { return kind_ == JsonKind::kNull; }
  bool is_bool() const { return kind_ == JsonKind::kBool; }
  bool is_number() const { return kind_ == JsonKind::kNumber; }
  bool is_string() const { return kind_ == JsonKind::kString; }
  bool is_array() const { return kind_ == JsonKind::kArray; }
  bool is_object() const { return kind_ == JsonKind::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  /// Number narrowed to int64 (truncating); 0 for non-numbers.
  std::int64_t as_int() const { return static_cast<std::int64_t>(num_); }
  const std::string& as_string() const { return str_; }
  const JsonArray& as_array() const { return arr_; }
  const JsonObject& as_object() const { return obj_; }

  /// Member lookup on objects: nullptr when absent or not an object.
  const JsonValue* find(std::string_view key) const;
  /// Append/overwrite a member (object builder; turns null into {}).
  void set(std::string_view key, JsonValue value);

  /// Compact deterministic serialisation ("key":value, no whitespace).
  std::string serialise() const;
  void serialise_to(std::string& out) const;

  bool operator==(const JsonValue& o) const;

 private:
  JsonKind kind_ = JsonKind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  JsonArray arr_;
  JsonObject obj_;
};

/// Parse exactly one JSON value (plus surrounding whitespace). On failure
/// returns nullopt-like: `ok` false and `error` (when non-null) gets a
/// short "offset N: ..." message, mirroring json_well_formed().
struct JsonParseResult {
  bool ok = false;
  JsonValue value;
  std::string error;
};
JsonParseResult json_parse(std::string_view text);

/// "\"escaped\"" JSON string literal for `s` (quotes included).
std::string json_quote(std::string_view s);

}  // namespace tpi
