// Thread-safe, low-overhead hierarchical span tracer.
//
// TPI_SPAN("name") opens an RAII span: begin/end timestamps plus the
// emitting thread land in a per-thread single-writer append log (chunked,
// lock-free — the writer never takes a lock, publication is a
// release-store of the chunk fill count). Nesting falls out of scoping:
// an inner span's interval is contained in the enclosing one, which is
// exactly how chrome://tracing / Perfetto render stacks of "X" events on
// one thread track.
//
// When tracing is disabled (the default) a span costs one relaxed atomic
// load and a branch — no clock read, no allocation — so TPI_SPAN can stay
// in hot paths permanently. Enable with set_trace_enabled(true), or let
// trace_init_from_env() honour TPI_TRACE=<path> (enables tracing and
// writes the Chrome trace-event JSON at process exit).
//
// Span names must outlive the export (string literals in practice): the
// log stores the pointer, never a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>

namespace tpi {

namespace trace_detail {

extern std::atomic<bool> g_enabled;

/// Monotonic timestamp (steady clock) in nanoseconds.
std::uint64_t now_ns();

/// Append one complete span to the calling thread's log.
void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

}  // namespace trace_detail

/// Global on/off switch read by every span on construction.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed);
}
void set_trace_enabled(bool enabled);

/// Zero-duration marker event (observer callbacks, phase ticks). No-op
/// when tracing is disabled.
void trace_instant(const char* name);

/// Spans recorded so far across all threads (tests, sizing).
std::size_t trace_event_count();

/// Drop all recorded spans (thread registrations survive). Only call when
/// no thread is concurrently recording — e.g. after worker pools joined.
void trace_reset();

/// Chrome trace-event JSON ({"traceEvents": [...]}) of everything
/// recorded so far; loadable in chrome://tracing and Perfetto.
std::string trace_to_json();

/// trace_to_json() written to `path`; false + warning on I/O failure.
bool trace_write_json(const std::string& path);

/// TPI_TRACE=<path>: enable tracing now and write the JSON to <path> at
/// process exit (idempotent). Returns the path, or nullptr when unset.
const char* trace_init_from_env();

/// RAII span. Prefer the TPI_SPAN macro; construct directly only when the
/// name is computed (it must still outlive the export).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(trace_enabled() ? name : nullptr),
        begin_ns_(name_ != nullptr ? trace_detail::now_ns() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) trace_detail::record(name_, begin_ns_, trace_detail::now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t begin_ns_;
};

}  // namespace tpi

#define TPI_SPAN_CONCAT2(a, b) a##b
#define TPI_SPAN_CONCAT(a, b) TPI_SPAN_CONCAT2(a, b)
/// Open a span covering the rest of the enclosing scope.
#define TPI_SPAN(name) ::tpi::TraceSpan TPI_SPAN_CONCAT(tpi_span_, __LINE__)(name)
