// Thread-safe, low-overhead hierarchical span tracer.
//
// TPI_SPAN("name") opens an RAII span: begin/end timestamps plus the
// emitting thread land in a per-thread single-writer append log (chunked,
// lock-free — the writer never takes a lock, publication is a
// release-store of the chunk fill count). Nesting falls out of scoping:
// an inner span's interval is contained in the enclosing one, which is
// exactly how chrome://tracing / Perfetto render stacks of "X" events on
// one thread track.
//
// When tracing is disabled (the default) a span costs one relaxed atomic
// load and a branch — no clock read, no allocation — so TPI_SPAN can stay
// in hot paths permanently. Enable with set_trace_enabled(true), or let
// trace_init_from_env() honour TPI_TRACE=<path> (enables tracing and
// writes the Chrome trace-event JSON at process exit).
//
// Per-job flight recording: a TraceSink is a private span buffer. While a
// ScopedTraceSink is active on a thread, every span that thread records
// lands in the sink instead of the process-global log, so concurrent flow
// jobs (server jobs, sweep cells) each capture their own trace — the fix
// for two traced jobs interleaving in one TPI_TRACE file. An active sink
// also enables tracing on its own (refcounted into the same flag the
// global switch uses), so per-job recording needs no process-wide enable.
// Spans emitted by inner worker pools (fault-sim bank threads) have no
// sink scope and keep landing in the global log.
//
// Span names must outlive the export (string literals in practice): the
// log stores the pointer, never a copy.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace tpi {

namespace trace_detail {

/// > 0 when any enable source is active: the manual/env switch counts 1,
/// every live ScopedTraceSink counts 1.
extern std::atomic<int> g_enabled;

/// Monotonic timestamp (steady clock) in nanoseconds.
std::uint64_t now_ns();

/// Append one complete span to the calling thread's sink (when scoped) or
/// the thread's global log.
void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns);

/// Stable id of the calling thread in trace exports (registers on first use).
std::uint32_t thread_tid();

}  // namespace trace_detail

/// Global on/off switch read by every span on construction.
inline bool trace_enabled() {
  return trace_detail::g_enabled.load(std::memory_order_relaxed) != 0;
}
void set_trace_enabled(bool enabled);

/// Zero-duration marker event (observer callbacks, phase ticks). No-op
/// when tracing is disabled.
void trace_instant(const char* name);

/// Spans recorded so far across all threads in the *global* log (tests,
/// sizing). Sink-captured spans are counted by TraceSink::event_count().
std::size_t trace_event_count();

/// Drop all recorded global-log spans (thread registrations survive). Only
/// call when no thread is concurrently recording — e.g. after worker pools
/// joined.
void trace_reset();

/// Chrome trace-event JSON ({"traceEvents": [...]}) of everything
/// recorded so far in the global log; loadable in chrome://tracing and
/// Perfetto.
std::string trace_to_json();

/// trace_to_json() written to `path`; false + warning on I/O failure.
bool trace_write_json(const std::string& path);

/// TPI_TRACE=<path>: enable tracing now and write the JSON to <path> at
/// process exit (idempotent). Returns the path, or nullptr when unset.
const char* trace_init_from_env();

/// Private span buffer for one job: spans recorded while a
/// ScopedTraceSink for it is active land here, tagged with the sink's
/// job id (the Chrome-trace "pid") and label (the process_name metadata
/// row), so exports contain only that job's spans. Thread-safe: a sink
/// may be scoped on several threads at once, though the typical pattern
/// is one sink per job thread.
class TraceSink {
 public:
  /// `job_id` becomes the export's pid (chrome://tracing groups tracks by
  /// it); `label` names the process row ("s38417/tp=2", "job 7").
  explicit TraceSink(std::uint64_t job_id = 1, std::string label = "");

  TraceSink(const TraceSink&) = delete;
  TraceSink& operator=(const TraceSink&) = delete;

  std::uint64_t job_id() const { return job_id_; }
  const std::string& label() const { return label_; }

  /// Spans captured so far.
  std::size_t event_count() const;

  /// Chrome trace-event JSON of this sink's spans only (same schema as
  /// trace_to_json, plus a process_name metadata event carrying `label`).
  std::string to_json() const;

  /// to_json() written to `path`; false + warning on I/O failure.
  bool write_json(const std::string& path) const;

  /// Used by trace_detail::record; not part of the public surface.
  void append(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
              std::uint32_t tid);

 private:
  struct Event {
    const char* name;
    std::uint64_t begin_ns;
    std::uint64_t end_ns;
    std::uint32_t tid;
  };

  std::uint64_t job_id_;
  std::string label_;
  std::uint64_t epoch_ns_;  ///< ts origin: sink construction time
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

/// Redirect span recording on the current thread into `sink` for the
/// lifetime of the scope (nestable; the innermost sink wins). Also
/// enables tracing while alive, so a per-job recorder works without the
/// process-wide switch.
class ScopedTraceSink {
 public:
  explicit ScopedTraceSink(TraceSink& sink);
  ~ScopedTraceSink();
  ScopedTraceSink(const ScopedTraceSink&) = delete;
  ScopedTraceSink& operator=(const ScopedTraceSink&) = delete;

 private:
  TraceSink* prev_;
};

/// RAII span. Prefer the TPI_SPAN macro; construct directly only when the
/// name is computed (it must still outlive the export).
class TraceSpan {
 public:
  explicit TraceSpan(const char* name)
      : name_(trace_enabled() ? name : nullptr),
        begin_ns_(name_ != nullptr ? trace_detail::now_ns() : 0) {}
  ~TraceSpan() {
    if (name_ != nullptr) trace_detail::record(name_, begin_ns_, trace_detail::now_ns());
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  const char* name_;
  std::uint64_t begin_ns_;
};

}  // namespace tpi

#define TPI_SPAN_CONCAT2(a, b) a##b
#define TPI_SPAN_CONCAT(a, b) TPI_SPAN_CONCAT2(a, b)
/// Open a span covering the rest of the enclosing scope.
#define TPI_SPAN(name) ::tpi::TraceSpan TPI_SPAN_CONCAT(tpi_span_, __LINE__)(name)
