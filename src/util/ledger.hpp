// Persistent run ledger: one JSONL line per completed flow run, so any
// two runs — across processes, days and machines — can be diffed.
//
// Each line is a schema-versioned envelope:
//
//   {"schema": 1, "ts": "2026-08-07T12:34:56Z", "build": "0a1c67a",
//    "label": "s38417/tp=2", "config_fp": "9bd4c1a2e1f00d37",
//    "config": {...FlowConfig.to_json()...},
//    "flow": {...flow_result_to_json()...}}
//
// The "flow" object carries the deterministic (kNoRuntime) metrics
// snapshot, so two ledger lines with the same config fingerprint and
// build should agree on every metric — that is exactly the drift check
// tools/bench_compare.py --ledger runs. Appends are thread-safe and
// flushed per line; a reader that hits a torn or malformed trailing line
// (crash mid-append) skips it rather than failing the whole file.
//
// Producers: FlowServer (every finished job when TPI_LEDGER is set) and
// SweepRunner (every cell). The path comes from TPI_LEDGER or the
// FlowConfig "ledger" key.
#pragma once

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/json.hpp"

namespace tpi {

/// Envelope version written by this build; bump on layout changes.
inline constexpr int kLedgerSchemaVersion = 1;

/// FNV-1a over the bytes of `data` (the config fingerprint hash).
std::uint64_t fnv1a_64(std::string_view data);

/// fnv1a_64 rendered as 16 lowercase hex digits.
std::string fnv1a_hex(std::string_view data);

/// Short git revision baked in at configure time (TPI_GIT_REV), or
/// "unknown" when the source tree wasn't a git checkout.
const char* build_stamp();

/// One parsed ledger line.
struct LedgerEntry {
  int schema = 0;
  std::string ts;
  std::string build;
  std::string label;
  std::string config_fp;
  JsonValue config;
  JsonValue flow;
};

/// Append-only JSONL writer. Construction opens the file in append mode;
/// every append() writes one complete line under a mutex and flushes, so
/// concurrent server workers and sweep cells can share one Ledger.
class Ledger {
 public:
  explicit Ledger(std::string path);
  ~Ledger();
  Ledger(const Ledger&) = delete;
  Ledger& operator=(const Ledger&) = delete;

  const std::string& path() const { return path_; }
  /// False when the file could not be opened (append() then no-ops).
  bool ok() const { return file_ != nullptr; }
  std::size_t lines_written() const;

  /// Record one completed run. `config` should be the FlowConfig JSON
  /// (fingerprinted with fnv1a_hex of its serialisation) and `flow` the
  /// flow_result_to_json object. Returns false on I/O failure.
  bool append(std::string_view label, const JsonValue& config, const JsonValue& flow);

  /// Parse every well-formed line of a ledger file, skipping malformed
  /// ones (torn writes, foreign schema lines keep their raw envelope).
  static std::vector<LedgerEntry> read_file(const std::string& path);

  /// Ledger at $TPI_LEDGER, or nullptr when the variable is unset/empty.
  static std::unique_ptr<Ledger> from_env();

 private:
  std::string path_;
  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::size_t lines_ = 0;
};

}  // namespace tpi
