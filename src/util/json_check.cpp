#include "util/json_check.hpp"

#include <cctype>
#include <cstdio>

namespace tpi {
namespace {

// Recursive-descent validator over a cursor; depth-limited so a hostile
// input cannot blow the stack.
struct Checker {
  std::string_view text;
  std::size_t pos = 0;
  std::string err;
  static constexpr int kMaxDepth = 64;

  bool fail(const char* what) {
    char buf[128];
    std::snprintf(buf, sizeof buf, "offset %zu: %s", pos, what);
    err = buf;
    return false;
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void skip_ws() {
    while (!eof() && (peek() == ' ' || peek() == '\t' || peek() == '\n' || peek() == '\r')) {
      ++pos;
    }
  }

  bool literal(std::string_view word) {
    if (text.substr(pos, word.size()) != word) return fail("invalid literal");
    pos += word.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos;
    while (!eof()) {
      const unsigned char c = static_cast<unsigned char>(text[pos]);
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c == '\\') {
        ++pos;
        if (eof()) return fail("dangling escape");
        const char e = text[pos];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos;
            if (eof() || !std::isxdigit(static_cast<unsigned char>(text[pos]))) {
              return fail("bad \\u escape");
            }
          }
        } else if (e != '"' && e != '\\' && e != '/' && e != 'b' && e != 'f' && e != 'n' &&
                   e != 'r' && e != 't') {
          return fail("bad escape character");
        }
      }
      ++pos;
    }
    return fail("unterminated string");
  }

  bool number() {
    const std::size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
      return fail("expected digit");
    }
    if (peek() == '0') {
      ++pos;
    } else {
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected fraction digit");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (eof() || !std::isdigit(static_cast<unsigned char>(peek()))) {
        return fail("expected exponent digit");
      }
      while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    }
    return pos > start;
  }

  bool value(int depth) {
    if (depth > kMaxDepth) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("expected value");
    switch (peek()) {
      case '{': return object(depth);
      case '[': return array(depth);
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool json_well_formed(std::string_view text, std::string* error) {
  Checker c;
  c.text = text;
  bool ok = c.value(0);
  if (ok) {
    c.skip_ws();
    if (!c.eof()) ok = c.fail("trailing characters after value");
  }
  if (!ok && error != nullptr) *error = c.err;
  return ok;
}

}  // namespace tpi
