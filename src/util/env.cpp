#include "util/env.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>

namespace tpi {
namespace {

// Parsing uses a NUL-terminated copy so strtod/strtol can detect trailing
// garbage; env values and config strings are short, the copy is cheap.
std::string terminated(std::string_view text) { return std::string(text); }

}  // namespace

std::optional<std::string> env_string(const char* name) {
  const char* env = std::getenv(name);
  if (env == nullptr || *env == '\0') return std::nullopt;
  return std::string(env);
}

std::optional<double> parse_double(std::string_view text) {
  const std::string s = terminated(text);
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s.c_str(), &end);
  if (end == s.c_str() || *end != '\0' || errno != 0) return std::nullopt;
  return v;
}

std::optional<long> parse_long(std::string_view text) {
  const std::string s = terminated(text);
  char* end = nullptr;
  errno = 0;
  const long v = std::strtol(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || errno != 0) return std::nullopt;
  return v;
}

std::optional<std::uint64_t> parse_u64(std::string_view text) {
  const std::string s = terminated(text);
  if (!s.empty() && s[0] == '-') return std::nullopt;
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 0);
  if (end == s.c_str() || *end != '\0' || errno != 0) return std::nullopt;
  return v;
}

double env_positive_double(const char* name, double fallback) {
  const std::optional<std::string> env = env_string(name);
  if (!env) return fallback;
  const std::optional<double> v = parse_double(*env);
  if (!v || !(*v > 0.0)) {
    std::fprintf(stderr,
                 "[env] warning: invalid %s=\"%s\" (want a positive number); using %g\n",
                 name, env->c_str(), fallback);
    return fallback;
  }
  return *v;
}

long env_int(const char* name, long fallback, long lo, long hi) {
  const std::optional<std::string> env = env_string(name);
  if (!env) return fallback;
  const std::optional<long> v = parse_long(*env);
  if (!v || *v < lo || *v > hi) {
    std::fprintf(stderr,
                 "[env] warning: invalid %s=\"%s\" (want an integer in [%ld, %ld]); "
                 "using %ld\n",
                 name, env->c_str(), lo, hi, fallback);
    return fallback;
  }
  return *v;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const std::optional<std::string> env = env_string(name);
  if (!env) return fallback;
  const std::optional<std::uint64_t> v = parse_u64(*env);
  if (!v) {
    std::fprintf(stderr,
                 "[env] warning: invalid %s=\"%s\" (want a 64-bit integer); using %llu\n",
                 name, env->c_str(), static_cast<unsigned long long>(fallback));
    return fallback;
  }
  return *v;
}

}  // namespace tpi
