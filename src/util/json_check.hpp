// Minimal JSON syntax checker (no DOM, no allocation proportional to the
// document): validates that a byte string is one well-formed JSON value.
// Used by the trace/sweep tests and the trace_smoke ctest target to vet
// the Chrome-trace and benchmark reports we emit without pulling in a
// JSON library.
#pragma once

#include <string>
#include <string_view>

namespace tpi {

/// True iff `text` is exactly one well-formed JSON value (object, array,
/// string, number, true/false/null) with only whitespace around it. On
/// failure, `error` (when non-null) gets a short "offset N: ..." message.
bool json_well_formed(std::string_view text, std::string* error = nullptr);

}  // namespace tpi
