#include "util/thread_pool.hpp"

#include "util/metrics.hpp"

namespace tpi {

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_concurrency();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  using Clock = std::chrono::steady_clock;
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      // priority_queue::top() is const; moving from it is safe because the
      // element is popped before anything else can observe it.
      task = std::move(const_cast<Task&>(queue_.top()));
      queue_.pop();
    }
    const Clock::time_point start = Clock::now();
    task.fn();  // packaged_task captures exceptions into the future
    const Clock::time_point done = Clock::now();
    // Scheduling is nondeterministic by nature, so these are rt.* metrics
    // in the process-global registry (never in per-flow snapshots).
    MetricsRegistry& g = MetricsRegistry::global();
    g.observe("rt.threadpool.queue_wait_us",
              std::chrono::duration<double, std::micro>(start - task.enqueued).count());
    g.observe("rt.threadpool.run_ms",
              std::chrono::duration<double, std::milli>(done - start).count());
    g.add("rt.threadpool.tasks");
  }
}

}  // namespace tpi
