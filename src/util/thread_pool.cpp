#include "util/thread_pool.hpp"

namespace tpi {

unsigned ThreadPool::default_concurrency() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1u;
}

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) num_threads = default_concurrency();
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) w.join();
}

std::size_t ThreadPool::pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // packaged_task captures exceptions into the future
  }
}

}  // namespace tpi
