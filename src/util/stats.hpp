// Small statistics helpers shared by the analysis and reporting code.
#pragma once

#include <cstddef>
#include <vector>

namespace tpi {

/// Streaming accumulator for min/max/mean/variance (Welford's algorithm).
class RunningStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double variance() const;  ///< population variance
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Ordinary least-squares fit y = a + b*x; used by benches to check the
/// paper's "increases nearly linearly" claims (R^2 close to 1).
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
  double r_squared = 0.0;
};

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace tpi
