#include "util/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>

#include "util/log.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace tpi {

int histogram_bucket(double v) {
  if (!(v >= 1.0)) return 0;  // also catches NaN
  const int b = 1 + std::ilogb(v);
  return b >= kHistogramBuckets ? kHistogramBuckets - 1 : b;
}

void HistogramData::observe(double v) {
  if (count == 0) {
    min = max = v;
  } else {
    min = std::min(min, v);
    max = std::max(max, v);
  }
  ++count;
  sum += v;
  ++buckets[static_cast<std::size_t>(histogram_bucket(v))];
}

void HistogramData::merge(const HistogramData& o) {
  if (o.count == 0) return;
  if (count == 0) {
    min = o.min;
    max = o.max;
  } else {
    min = std::min(min, o.min);
    max = std::max(max, o.max);
  }
  count += o.count;
  sum += o.sum;
  for (int i = 0; i < kHistogramBuckets; ++i) buckets[i] += o.buckets[i];
}

double HistogramData::quantile(double q) const {
  if (count == 0) return 0.0;
  if (!(q > 0.0)) return min;
  if (q >= 1.0) return max;
  // Rank of the requested order statistic, 1-based.
  const std::uint64_t rank = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::ceil(q * static_cast<double>(count))));
  std::uint64_t cum = 0;
  for (int b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t n = buckets[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    if (cum + n < rank) {
      cum += n;
      continue;
    }
    // Bucket b holds the rank. Its value range: [0,1) for b == 0,
    // [2^(b-1), 2^b) otherwise; interpolate by position within the bucket.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, b - 1);
    const double hi = b == 0 ? 1.0 : std::ldexp(1.0, b);
    const double frac =
        (static_cast<double>(rank - cum) - 0.5) / static_cast<double>(n);
    const double v = lo + (hi - lo) * frac;
    return std::min(std::max(v, min), max);
  }
  return max;  // unreachable when bucket counts sum to `count`
}

namespace {

struct MetricState {
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  // counter
  double value = 0.0;       // gauge
  HistogramData hist;
};

std::string fmt_metric_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

}  // namespace

struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, MetricState, std::less<>> map;

  MetricState* touch(std::string_view name, MetricKind kind) {
    auto it = map.find(name);
    if (it == map.end()) {
      it = map.emplace(std::string(name), MetricState{}).first;
      it->second.kind = kind;
    } else if (it->second.kind != kind) {
      log_warn() << "metrics: " << std::string(name)
                 << " already registered with a different kind; sample dropped";
      return nullptr;
    }
    return &it->second;
  }
};

MetricsRegistry::MetricsRegistry() : impl_(std::make_unique<Impl>()) {}
MetricsRegistry::~MetricsRegistry() = default;

void MetricsRegistry::add(std::string_view name, std::uint64_t delta) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (MetricState* m = impl_->touch(name, MetricKind::kCounter)) m->count += delta;
}

void MetricsRegistry::set(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (MetricState* m = impl_->touch(name, MetricKind::kGauge)) m->value = value;
}

void MetricsRegistry::set_max(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (MetricState* m = impl_->touch(name, MetricKind::kGauge)) {
    m->value = std::max(m->value, value);
  }
}

void MetricsRegistry::observe(std::string_view name, double value) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (MetricState* m = impl_->touch(name, MetricKind::kHistogram)) m->hist.observe(value);
}

void MetricsRegistry::record_histogram(std::string_view name, const HistogramData& data) {
  std::lock_guard<std::mutex> lock(impl_->mu);
  if (MetricState* m = impl_->touch(name, MetricKind::kHistogram)) m->hist.merge(data);
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(impl_->mu);
  snap.metrics.reserve(impl_->map.size());
  for (const auto& [name, state] : impl_->map) {
    MetricValue v;
    v.name = name;
    v.kind = state.kind;
    v.count = state.count;
    v.value = state.value;
    v.hist = state.hist;
    snap.metrics.push_back(std::move(v));
  }
  return snap;  // map iteration order is sorted by name already
}

void MetricsRegistry::clear() {
  std::lock_guard<std::mutex> lock(impl_->mu);
  impl_->map.clear();
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry* g = new MetricsRegistry;  // never destroyed
  return *g;
}

namespace {
thread_local MetricsRegistry* t_current = nullptr;
}  // namespace

MetricsRegistry& metrics() {
  return t_current != nullptr ? *t_current : MetricsRegistry::global();
}

ScopedMetricsRegistry::ScopedMetricsRegistry(MetricsRegistry& registry)
    : prev_(t_current) {
  t_current = &registry;
}

ScopedMetricsRegistry::~ScopedMetricsRegistry() { t_current = prev_; }

const MetricValue* MetricsSnapshot::find(std::string_view name) const {
  for (const MetricValue& m : metrics) {
    if (m.name == name) return &m;
  }
  return nullptr;
}

void MetricsSnapshot::merge(const MetricsSnapshot& other) {
  for (const MetricValue& o : other.metrics) {
    const auto it = std::lower_bound(
        metrics.begin(), metrics.end(), o,
        [](const MetricValue& a, const MetricValue& b) { return a.name < b.name; });
    if (it == metrics.end() || it->name != o.name) {
      metrics.insert(it, o);
      continue;
    }
    if (it->kind != o.kind) {
      log_warn() << "metrics: merge kind mismatch on " << o.name << "; entry kept as is";
      continue;
    }
    switch (o.kind) {
      case MetricKind::kCounter: it->count += o.count; break;
      case MetricKind::kGauge: it->value = std::max(it->value, o.value); break;
      case MetricKind::kHistogram: it->hist.merge(o.hist); break;
    }
  }
}

std::string MetricsSnapshot::to_json(Runtime runtime) const {
  std::string out = "{";
  bool first = true;
  for (const MetricValue& m : metrics) {
    if (runtime == kNoRuntime && is_runtime_metric(m.name)) continue;
    if (!first) out += ", ";
    first = false;
    out += "\"" + m.name + "\": ";
    switch (m.kind) {
      case MetricKind::kCounter:
        out += std::to_string(m.count);
        break;
      case MetricKind::kGauge:
        out += fmt_metric_double(m.value);
        break;
      case MetricKind::kHistogram: {
        out += "{\"count\": " + std::to_string(m.hist.count);
        out += ", \"sum\": " + fmt_metric_double(m.hist.sum);
        out += ", \"min\": " + fmt_metric_double(m.hist.count > 0 ? m.hist.min : 0.0);
        out += ", \"max\": " + fmt_metric_double(m.hist.count > 0 ? m.hist.max : 0.0);
        out += ", \"mean\": " + fmt_metric_double(m.hist.mean());
        out += ", \"p50\": " + fmt_metric_double(m.hist.quantile(0.50));
        out += ", \"p95\": " + fmt_metric_double(m.hist.quantile(0.95));
        out += ", \"p99\": " + fmt_metric_double(m.hist.quantile(0.99));
        // Sparse buckets: {"<index>": count} for the non-empty ones only.
        out += ", \"buckets\": {";
        bool first_bucket = true;
        for (int b = 0; b < kHistogramBuckets; ++b) {
          if (m.hist.buckets[static_cast<std::size_t>(b)] == 0) continue;
          if (!first_bucket) out += ", ";
          first_bucket = false;
          out += "\"" + std::to_string(b) +
                 "\": " + std::to_string(m.hist.buckets[static_cast<std::size_t>(b)]);
        }
        out += "}}";
        break;
      }
    }
  }
  return out + "}";
}

std::string prometheus_metric_name(std::string_view name) {
  std::string out = "tpi_";
  out.reserve(out.size() + name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out += ok ? c : '_';
  }
  return out;
}

namespace {

std::string fmt_prometheus_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  return buf;
}

}  // namespace

std::string MetricsSnapshot::to_prometheus() const {
  std::string out;
  for (const MetricValue& m : metrics) {
    const std::string name = prometheus_metric_name(m.name);
    switch (m.kind) {
      case MetricKind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += name + " " + std::to_string(m.count) + "\n";
        break;
      case MetricKind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += name + " " + fmt_prometheus_double(m.value) + "\n";
        break;
      case MetricKind::kHistogram:
        out += "# TYPE " + name + " summary\n";
        out += name + "{quantile=\"0.5\"} " +
               fmt_prometheus_double(m.hist.quantile(0.50)) + "\n";
        out += name + "{quantile=\"0.95\"} " +
               fmt_prometheus_double(m.hist.quantile(0.95)) + "\n";
        out += name + "{quantile=\"0.99\"} " +
               fmt_prometheus_double(m.hist.quantile(0.99)) + "\n";
        out += name + "_sum " + fmt_prometheus_double(m.hist.sum) + "\n";
        out += name + "_count " + std::to_string(m.hist.count) + "\n";
        out += name + "_min " +
               fmt_prometheus_double(m.hist.count > 0 ? m.hist.min : 0.0) + "\n";
        out += name + "_max " +
               fmt_prometheus_double(m.hist.count > 0 ? m.hist.max : 0.0) + "\n";
        break;
    }
  }
  return out;
}

double peak_rss_kb() {
#if defined(__unix__) || defined(__APPLE__)
  rusage ru{};
  if (getrusage(RUSAGE_SELF, &ru) != 0) return 0.0;
#if defined(__APPLE__)
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // bytes on macOS
#else
  return static_cast<double>(ru.ru_maxrss);  // kilobytes on Linux
#endif
#else
  return 0.0;
#endif
}

}  // namespace tpi
