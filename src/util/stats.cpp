#include "util/stats.hpp"

#include <cmath>

namespace tpi {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
  }
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  LinearFit fit;
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return fit;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / static_cast<double>(n);
  const double my = sy / static_cast<double>(n);
  double sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const double dx = x[i] - mx;
    const double dy = y[i] - my;
    sxx += dx * dx;
    sxy += dx * dy;
    syy += dy * dy;
  }
  if (sxx <= 0.0) return fit;
  fit.slope = sxy / sxx;
  fit.intercept = my - fit.slope * mx;
  fit.r_squared = (syy > 0.0) ? (sxy * sxy) / (sxx * syy) : 1.0;
  return fit;
}

}  // namespace tpi
