// Plain-text table formatter used by the bench binaries to print rows in the
// same layout as the paper's Tables 1-3.
#pragma once

#include <string>
#include <vector>

namespace tpi {

/// Right-aligned column table with a header row, rendered with aligned
/// whitespace and a separator line, e.g.
///
///   circuit  #TP  #FF  ...
///   -------  ---  ---  ...
///   s38417     0 1636  ...
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> row);

  /// Blank separator row (renders as an empty line between circuit groups).
  void add_separator();

  std::string to_string() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;  // empty vector = separator
};

/// Format helpers used when building table cells.
std::string fmt_int(long long v);              ///< with thousands separators
std::string fmt_fixed(double v, int decimals); ///< fixed-point
std::string fmt_pct(double v, int decimals);   ///< fixed-point (no % sign)

}  // namespace tpi
