// Validated environment-variable parsing — the one place process
// configuration enters the system. Every TPI_* lookup (bench scale, job
// counts, fuzz seeds, log level, server socket) goes through these helpers,
// so invalid values produce one consistent warning and a fallback instead
// of module-specific strtod/strtol ad-hockery. FlowConfig::from_env() is
// the aggregate consumer; legacy per-module readers (set_log_level_from_env,
// FuzzOptions::from_env) delegate here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tpi {

/// Raw value of `name`, or nullopt when unset or empty.
std::optional<std::string> env_string(const char* name);

/// Strictly positive double. Unset/empty -> `fallback`; garbage or a
/// non-positive value warns on stderr and falls back.
double env_positive_double(const char* name, double fallback);

/// Integer in [lo, hi]. Unset/empty -> `fallback`; garbage or out-of-range
/// warns and falls back.
long env_int(const char* name, long fallback, long lo, long hi);

/// 64-bit unsigned integer, base auto-detected (0x... accepted). Unset or
/// empty -> `fallback`; garbage warns and falls back.
std::uint64_t env_u64(const char* name, std::uint64_t fallback);

/// Parse helpers over explicit strings (shared by env and JSON config
/// paths): nullopt on any trailing garbage / range violation.
std::optional<double> parse_double(std::string_view text);
std::optional<long> parse_long(std::string_view text);
std::optional<std::uint64_t> parse_u64(std::string_view text);

}  // namespace tpi
