#include "util/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace tpi {
namespace trace_detail {

std::atomic<int> g_enabled{0};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

// Single-writer append log: only the owning thread writes events; readers
// (export) synchronise through the release-store of `n` / `next`. A chunk
// is never shrunk or freed while its owner may still append — trace_reset
// documents the quiescence requirement.
struct Chunk {
  static constexpr std::size_t kCapacity = 4096;
  std::array<TraceEvent, kCapacity> events;
  std::atomic<std::uint32_t> n{0};
  std::atomic<Chunk*> next{nullptr};
};

struct ThreadLog {
  std::uint32_t tid = 0;
  Chunk head;
  Chunk* tail = &head;  ///< owner-thread only

  void append(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
    Chunk* c = tail;
    std::uint32_t i = c->n.load(std::memory_order_relaxed);
    if (i == Chunk::kCapacity) {
      Chunk* grown = new Chunk;
      c->next.store(grown, std::memory_order_release);
      tail = grown;
      c = grown;
      i = 0;
    }
    c->events[i] = TraceEvent{name, begin_ns, end_ns};
    c->n.store(i + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadLog*> logs;       ///< leaked on purpose: process lifetime
  std::uint64_t epoch_ns = 0;         ///< ts origin of the JSON export
  std::string atexit_path;            ///< TPI_TRACE target ("" = none)
  bool manual_enabled = false;        ///< the set_trace_enabled contribution
};

Registry& registry() {
  static Registry* r = new Registry;  // never destroyed: threads may outlive exit order
  return *r;
}

ThreadLog& thread_log() {
  thread_local ThreadLog* log = nullptr;
  if (log == nullptr) {
    log = new ThreadLog;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    log->tid = static_cast<std::uint32_t>(reg.logs.size() + 1);
    reg.logs.push_back(log);
  }
  return *log;
}

// Innermost scoped sink on this thread; spans route here when non-null.
thread_local TraceSink* t_sink = nullptr;

void append_event_json(std::string& out, const char* name, std::uint64_t begin_ns,
                       std::uint64_t end_ns, std::uint32_t tid, std::uint64_t pid,
                       std::uint64_t epoch_ns) {
  char buf[256];
  const double ts_us = static_cast<double>(begin_ns - epoch_ns) / 1000.0;
  const double dur_us = static_cast<double>(end_ns - begin_ns) / 1000.0;
  std::snprintf(buf, sizeof buf,
                "{\"name\": \"%s\", \"cat\": \"tpi\", \"ph\": \"X\", \"ts\": %.3f, "
                "\"dur\": %.3f, \"pid\": %llu, \"tid\": %u}",
                name, ts_us, dur_us, static_cast<unsigned long long>(pid), tid);
  out += buf;
}

}  // namespace

void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  if (TraceSink* sink = t_sink; sink != nullptr) {
    sink->append(name, begin_ns, end_ns, thread_log().tid);
    return;
  }
  thread_log().append(name, begin_ns, end_ns);
}

std::uint32_t thread_tid() { return thread_log().tid; }

}  // namespace trace_detail

void set_trace_enabled(bool enabled) {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  if (enabled == reg.manual_enabled) return;  // idempotent: one refcount share
  reg.manual_enabled = enabled;
  if (enabled) {
    if (reg.epoch_ns == 0) reg.epoch_ns = now_ns();
    g_enabled.fetch_add(1, std::memory_order_relaxed);
  } else {
    g_enabled.fetch_sub(1, std::memory_order_relaxed);
  }
}

void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  const std::uint64_t t = trace_detail::now_ns();
  trace_detail::record(name, t, t);
}

std::size_t trace_event_count() {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t total = 0;
  for (const ThreadLog* log : reg.logs) {
    for (const Chunk* c = &log->head; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      total += c->n.load(std::memory_order_acquire);
    }
  }
  return total;
}

void trace_reset() {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadLog* log : reg.logs) {
    // Free the overflow chunks; the inline head stays (its owner thread
    // caches `tail`, which we reset through the same quiescence contract).
    Chunk* c = log->head.next.exchange(nullptr, std::memory_order_acq_rel);
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
    log->tail = &log->head;
    log->head.n.store(0, std::memory_order_release);
  }
}

std::string trace_to_json() {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const ThreadLog* log : reg.logs) {
    for (const Chunk* c = &log->head; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      const std::uint32_t n = c->n.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!first) out += ",\n";
        first = false;
        const TraceEvent& e = c->events[i];
        append_event_json(out, e.name, e.begin_ns, e.end_ns, log->tid, 1, reg.epoch_ns);
      }
    }
  }
  out += "\n]}\n";
  return out;
}

namespace {

bool write_string(const std::string& json, const std::string& path, const char* what) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_warn() << what << ": cannot write " << path;
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) log_warn() << what << ": short write to " << path;
  return ok;
}

}  // namespace

bool trace_write_json(const std::string& path) {
  return write_string(trace_to_json(), path, "trace");
}

const char* trace_init_from_env() {
  using namespace trace_detail;
  const char* path = std::getenv("TPI_TRACE");
  if (path == nullptr || *path == '\0') return nullptr;
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.atexit_path.empty()) return reg.atexit_path.c_str();  // already armed
    reg.atexit_path = path;
  }
  set_trace_enabled(true);
  std::atexit([] {
    const std::string& p = registry().atexit_path;
    if (trace_write_json(p)) {
      std::fprintf(stderr, "[trace] wrote %s (%zu spans)\n", p.c_str(),
                   trace_event_count());
    }
  });
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.atexit_path.c_str();
}

// ---- TraceSink ----

TraceSink::TraceSink(std::uint64_t job_id, std::string label)
    : job_id_(job_id), label_(std::move(label)), epoch_ns_(trace_detail::now_ns()) {}

void TraceSink::append(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns,
                       std::uint32_t tid) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(Event{name, begin_ns, end_ns, tid});
}

std::size_t TraceSink::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::string TraceSink::to_json() const {
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  // Name the process row after the job label so chrome://tracing shows
  // which job a track belongs to.
  std::string escaped;
  for (const char c : label_) {
    if (c == '"' || c == '\\') escaped += '\\';
    if (static_cast<unsigned char>(c) >= 0x20) escaped += c;
  }
  char meta[192];
  std::snprintf(meta, sizeof meta,
                "{\"name\": \"process_name\", \"ph\": \"M\", \"pid\": %llu, "
                "\"args\": {\"name\": \"%s\"}}",
                static_cast<unsigned long long>(job_id_), escaped.c_str());
  out += meta;
  std::lock_guard<std::mutex> lock(mu_);
  for (const Event& e : events_) {
    out += ",\n";
    trace_detail::append_event_json(out, e.name, e.begin_ns, e.end_ns, e.tid, job_id_,
                                    epoch_ns_);
  }
  out += "\n]}\n";
  return out;
}

bool TraceSink::write_json(const std::string& path) const {
  return write_string(to_json(), path, "trace sink");
}

ScopedTraceSink::ScopedTraceSink(TraceSink& sink) : prev_(trace_detail::t_sink) {
  trace_detail::t_sink = &sink;
  trace_detail::g_enabled.fetch_add(1, std::memory_order_relaxed);
}

ScopedTraceSink::~ScopedTraceSink() {
  trace_detail::g_enabled.fetch_sub(1, std::memory_order_relaxed);
  trace_detail::t_sink = prev_;
}

}  // namespace tpi
