#include "util/trace.hpp"

#include <array>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "util/log.hpp"

namespace tpi {
namespace trace_detail {

std::atomic<bool> g_enabled{false};

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

namespace {

struct TraceEvent {
  const char* name;
  std::uint64_t begin_ns;
  std::uint64_t end_ns;
};

// Single-writer append log: only the owning thread writes events; readers
// (export) synchronise through the release-store of `n` / `next`. A chunk
// is never shrunk or freed while its owner may still append — trace_reset
// documents the quiescence requirement.
struct Chunk {
  static constexpr std::size_t kCapacity = 4096;
  std::array<TraceEvent, kCapacity> events;
  std::atomic<std::uint32_t> n{0};
  std::atomic<Chunk*> next{nullptr};
};

struct ThreadLog {
  std::uint32_t tid = 0;
  Chunk head;
  Chunk* tail = &head;  ///< owner-thread only

  void append(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
    Chunk* c = tail;
    std::uint32_t i = c->n.load(std::memory_order_relaxed);
    if (i == Chunk::kCapacity) {
      Chunk* grown = new Chunk;
      c->next.store(grown, std::memory_order_release);
      tail = grown;
      c = grown;
      i = 0;
    }
    c->events[i] = TraceEvent{name, begin_ns, end_ns};
    c->n.store(i + 1, std::memory_order_release);
  }
};

struct Registry {
  std::mutex mu;
  std::vector<ThreadLog*> logs;       ///< leaked on purpose: process lifetime
  std::uint64_t epoch_ns = 0;         ///< ts origin of the JSON export
  std::string atexit_path;            ///< TPI_TRACE target ("" = none)
};

Registry& registry() {
  static Registry* r = new Registry;  // never destroyed: threads may outlive exit order
  return *r;
}

ThreadLog& thread_log() {
  thread_local ThreadLog* log = nullptr;
  if (log == nullptr) {
    log = new ThreadLog;
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    log->tid = static_cast<std::uint32_t>(reg.logs.size() + 1);
    reg.logs.push_back(log);
  }
  return *log;
}

void append_event_json(std::string& out, const TraceEvent& e, std::uint32_t tid,
                       std::uint64_t epoch_ns) {
  char buf[256];
  const double ts_us = static_cast<double>(e.begin_ns - epoch_ns) / 1000.0;
  const double dur_us = static_cast<double>(e.end_ns - e.begin_ns) / 1000.0;
  std::snprintf(buf, sizeof buf,
                "{\"name\": \"%s\", \"cat\": \"tpi\", \"ph\": \"X\", \"ts\": %.3f, "
                "\"dur\": %.3f, \"pid\": 1, \"tid\": %u}",
                e.name, ts_us, dur_us, tid);
  out += buf;
}

}  // namespace

void record(const char* name, std::uint64_t begin_ns, std::uint64_t end_ns) {
  thread_log().append(name, begin_ns, end_ns);
}

}  // namespace trace_detail

void set_trace_enabled(bool enabled) {
  using namespace trace_detail;
  if (enabled) {
    Registry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    if (reg.epoch_ns == 0) reg.epoch_ns = now_ns();
  }
  g_enabled.store(enabled, std::memory_order_relaxed);
}

void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  const std::uint64_t t = trace_detail::now_ns();
  trace_detail::record(name, t, t);
}

std::size_t trace_event_count() {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::size_t total = 0;
  for (const ThreadLog* log : reg.logs) {
    for (const Chunk* c = &log->head; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      total += c->n.load(std::memory_order_acquire);
    }
  }
  return total;
}

void trace_reset() {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  for (ThreadLog* log : reg.logs) {
    // Free the overflow chunks; the inline head stays (its owner thread
    // caches `tail`, which we reset through the same quiescence contract).
    Chunk* c = log->head.next.exchange(nullptr, std::memory_order_acq_rel);
    while (c != nullptr) {
      Chunk* next = c->next.load(std::memory_order_acquire);
      delete c;
      c = next;
    }
    log->tail = &log->head;
    log->head.n.store(0, std::memory_order_release);
  }
}

std::string trace_to_json() {
  using namespace trace_detail;
  Registry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  std::string out = "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [\n";
  bool first = true;
  for (const ThreadLog* log : reg.logs) {
    for (const Chunk* c = &log->head; c != nullptr;
         c = c->next.load(std::memory_order_acquire)) {
      const std::uint32_t n = c->n.load(std::memory_order_acquire);
      for (std::uint32_t i = 0; i < n; ++i) {
        if (!first) out += ",\n";
        first = false;
        append_event_json(out, c->events[i], log->tid, reg.epoch_ns);
      }
    }
  }
  out += "\n]}\n";
  return out;
}

bool trace_write_json(const std::string& path) {
  const std::string json = trace_to_json();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_warn() << "trace: cannot write " << path;
    return false;
  }
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) log_warn() << "trace: short write to " << path;
  return ok;
}

const char* trace_init_from_env() {
  using namespace trace_detail;
  const char* path = std::getenv("TPI_TRACE");
  if (path == nullptr || *path == '\0') return nullptr;
  Registry& reg = registry();
  {
    std::lock_guard<std::mutex> lock(reg.mu);
    if (!reg.atexit_path.empty()) return reg.atexit_path.c_str();  // already armed
    reg.atexit_path = path;
  }
  set_trace_enabled(true);
  std::atexit([] {
    const std::string& p = registry().atexit_path;
    if (trace_write_json(p)) {
      std::fprintf(stderr, "[trace] wrote %s (%zu spans)\n", p.c_str(),
                   trace_event_count());
    }
  });
  std::lock_guard<std::mutex> lock(reg.mu);
  return reg.atexit_path.c_str();
}

}  // namespace tpi
