// Deterministic pseudo-random number generation for reproducible experiments.
//
// All stochastic steps in the flow (circuit generation, ATPG random fill,
// placement perturbation) draw from an Rng seeded explicitly, so a given
// seed always reproduces the same tables.
#pragma once

#include <cstdint>
#include <utility>

namespace tpi {

/// xoshiro256** by Blackman & Vigna — fast, high-quality, and byte-for-byte
/// reproducible across platforms (unlike std::mt19937 distributions).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialise the state from a single 64-bit seed via splitmix64.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform in [0, bound). bound == 0 yields 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t next_range(std::int64_t lo, std::int64_t hi);

  /// Uniform double in [0, 1).
  double next_double();

  /// Bernoulli trial with probability p (clamped to [0,1]).
  bool next_bool(double p = 0.5);

  /// Approximately normal(mu, sigma) via sum of uniforms (Irwin-Hall, n=12).
  double next_gaussian(double mu = 0.0, double sigma = 1.0);

  /// Fisher-Yates shuffle of a random-access container.
  template <typename Container>
  void shuffle(Container& c) {
    const std::size_t n = c.size();
    for (std::size_t i = n; i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(c[i - 1], c[j]);
    }
  }

 private:
  std::uint64_t s_[4];
};

}  // namespace tpi
