#include "util/log.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>

#include "util/env.hpp"

namespace tpi {
namespace {

// Atomic: benches set the level on the main thread while sweep/fault-sim
// workers read it (a plain global here was a TSan-reported data race).
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

std::optional<LogLevel> parse_log_level(std::string_view name) {
  if (name == "debug") return LogLevel::kDebug;
  if (name == "info") return LogLevel::kInfo;
  if (name == "warn") return LogLevel::kWarn;
  if (name == "error") return LogLevel::kError;
  if (name == "silent") return LogLevel::kSilent;
  return std::nullopt;
}

LogLevel set_log_level_from_env(LogLevel fallback) {
  // Delegates to the consolidated env layer (util/env.hpp) for the lookup;
  // FlowConfig::from_env() uses the same parse_log_level validation.
  LogLevel level = fallback;
  if (const std::optional<std::string> env = env_string("TPI_LOG_LEVEL")) {
    if (const std::optional<LogLevel> parsed = parse_log_level(*env)) {
      level = *parsed;
    } else {
      std::fprintf(stderr,
                   "[log] warning: invalid TPI_LOG_LEVEL=\"%s\" "
                   "(want debug|info|warn|error|silent)\n",
                   env->c_str());
    }
  }
  set_log_level(level);
  return level;
}

void log_line(LogLevel level, const std::string& msg) {
  if (level < log_level()) return;
  // Build the whole line and emit it with a single unbuffered fwrite so
  // concurrent worker threads cannot interleave fragments mid-line.
  char prefix[48];
  const int n = std::snprintf(prefix, sizeof prefix, "[%8.2fs %s] ", elapsed_seconds(),
                              tag(level));
  std::string line;
  line.reserve(static_cast<std::size_t>(n) + msg.size() + 1);
  line.append(prefix, static_cast<std::size_t>(n));
  line += msg;
  line += '\n';
  std::fwrite(line.data(), 1, line.size(), stderr);
}

}  // namespace tpi
