#include "util/log.hpp"

#include <chrono>
#include <cstdio>

namespace tpi {
namespace {

LogLevel g_level = LogLevel::kWarn;

const char* tag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}

double elapsed_seconds() {
  using Clock = std::chrono::steady_clock;
  static const Clock::time_point start = Clock::now();
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }

void log_line(LogLevel level, const std::string& msg) {
  if (level < g_level) return;
  std::fprintf(stderr, "[%8.2fs %s] %s\n", elapsed_seconds(), tag(level), msg.c_str());
}

}  // namespace tpi
