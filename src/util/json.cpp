#include "util/json.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace tpi {
namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonParseResult run() {
    JsonParseResult res;
    skip_ws();
    if (!parse_value(res.value)) {
      res.error = error_;
      return res;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      fail("trailing characters after value");
      res.error = error_;
      return res;
    }
    res.ok = true;
    return res;
  }

 private:
  bool fail(const char* msg) {
    if (error_.empty()) {
      error_ = "offset " + std::to_string(pos_) + ": " + msg;
    }
    return false;
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool parse_value(JsonValue& out) {
    if (++depth_ > kMaxDepth) return fail("nesting too deep");
    bool ok = parse_value_inner(out);
    --depth_;
    return ok;
  }

  bool parse_value_inner(JsonValue& out) {
    if (pos_ >= text_.size()) return fail("unexpected end of input");
    const char c = text_[pos_];
    switch (c) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = JsonValue(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          out = JsonValue(true);
          return true;
        }
        return fail("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          out = JsonValue(false);
          return true;
        }
        return fail("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          out = JsonValue();
          return true;
        }
        return fail("invalid literal");
      default:
        return parse_number(out);
    }
  }

  bool parse_object(JsonValue& out) {
    ++pos_;  // '{'
    JsonObject obj;
    skip_ws();
    if (eat('}')) {
      out = JsonValue(std::move(obj));
      return true;
    }
    while (true) {
      skip_ws();
      if (pos_ >= text_.size() || text_[pos_] != '"') return fail("expected member name");
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!eat(':')) return fail("expected ':' after member name");
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      obj.emplace_back(std::move(key), std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) break;
      return fail("expected ',' or '}' in object");
    }
    out = JsonValue(std::move(obj));
    return true;
  }

  bool parse_array(JsonValue& out) {
    ++pos_;  // '['
    JsonArray arr;
    skip_ws();
    if (eat(']')) {
      out = JsonValue(std::move(arr));
      return true;
    }
    while (true) {
      skip_ws();
      JsonValue v;
      if (!parse_value(v)) return false;
      arr.push_back(std::move(v));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) break;
      return fail("expected ',' or ']' in array");
    }
    out = JsonValue(std::move(arr));
    return true;
  }

  bool parse_string(std::string& out) {
    ++pos_;  // opening '"'
    while (pos_ < text_.size()) {
      const unsigned char c = static_cast<unsigned char>(text_[pos_]);
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (c < 0x20) return fail("unescaped control character in string");
      if (c != '\\') {
        out += static_cast<char>(c);
        ++pos_;
        continue;
      }
      ++pos_;  // backslash
      if (pos_ >= text_.size()) return fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          if (!parse_hex4(cp)) return false;
          // Surrogate pair: expect a low surrogate right after.
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            if (pos_ + 1 < text_.size() && text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              unsigned lo = 0;
              if (!parse_hex4(lo)) return false;
              if (lo < 0xDC00 || lo > 0xDFFF) return fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else {
              return fail("unpaired high surrogate");
            }
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired low surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
    return fail("unterminated string");
  }

  bool parse_hex4(unsigned& out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    unsigned v = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      v <<= 4;
      if (c >= '0' && c <= '9') v |= static_cast<unsigned>(c - '0');
      else if (c >= 'a' && c <= 'f') v |= static_cast<unsigned>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F') v |= static_cast<unsigned>(c - 'A' + 10);
      else return fail("invalid \\u escape digit");
    }
    pos_ += 4;
    out = v;
    return true;
  }

  static void append_utf8(std::string& out, unsigned cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (eat('-')) { /* sign */ }
    if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
      return fail("invalid number");
    }
    if (text_[pos_] == '0') {
      ++pos_;
    } else {
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (eat('.')) {
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit expected after decimal point");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (pos_ >= text_.size() || text_[pos_] < '0' || text_[pos_] > '9') {
        return fail("digit expected in exponent");
      }
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') ++pos_;
    }
    const std::string token(text_.substr(start, pos_ - start));
    out = JsonValue(std::strtod(token.c_str(), nullptr));
    return true;
  }

  static constexpr int kMaxDepth = 64;

  std::string_view text_;
  std::size_t pos_ = 0;
  int depth_ = 0;
  std::string error_;
};

void serialise_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no NaN/Inf; emit null like browsers do
    out += "null";
    return;
  }
  if (v == static_cast<double>(static_cast<std::int64_t>(v)) &&
      std::fabs(v) < 9.0e15) {  // exact integers print without a fraction
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  out += buf;
}

}  // namespace

std::string json_quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != JsonKind::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string_view key, JsonValue value) {
  if (kind_ != JsonKind::kObject) {
    kind_ = JsonKind::kObject;
    obj_.clear();
  }
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::string(key), std::move(value));
}

void JsonValue::serialise_to(std::string& out) const {
  switch (kind_) {
    case JsonKind::kNull: out += "null"; break;
    case JsonKind::kBool: out += bool_ ? "true" : "false"; break;
    case JsonKind::kNumber: serialise_number(out, num_); break;
    case JsonKind::kString: out += json_quote(str_); break;
    case JsonKind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : arr_) {
        if (!first) out += ',';
        first = false;
        v.serialise_to(out);
      }
      out += ']';
      break;
    }
    case JsonKind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : obj_) {
        if (!first) out += ',';
        first = false;
        out += json_quote(k);
        out += ':';
        v.serialise_to(out);
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::serialise() const {
  std::string out;
  serialise_to(out);
  return out;
}

bool JsonValue::operator==(const JsonValue& o) const {
  if (kind_ != o.kind_) return false;
  switch (kind_) {
    case JsonKind::kNull: return true;
    case JsonKind::kBool: return bool_ == o.bool_;
    case JsonKind::kNumber: return num_ == o.num_;
    case JsonKind::kString: return str_ == o.str_;
    case JsonKind::kArray: return arr_ == o.arr_;
    case JsonKind::kObject: return obj_ == o.obj_;
  }
  return false;
}

JsonParseResult json_parse(std::string_view text) { return Parser(text).run(); }

}  // namespace tpi
