// Fixed-size thread pool used by the sweep runner and the flow server to
// execute independent flow runs concurrently. Deliberately minimal: a
// single priority queue (stable FIFO within one priority level), no work
// stealing, futures for results and exception propagation. Plain submit()
// enqueues at priority 0, so a pool fed only through submit() behaves
// exactly like the original FIFO pool; submit_prioritized() lets the flow
// server run urgent tenants ahead of queued batch work. With one worker
// the pool degrades to deterministic serial execution, which the
// parallel-vs-serial equivalence tests rely on.
//
// Every task's queue wait (submit -> dequeue) and run latency are recorded
// into MetricsRegistry::global() as the rt.threadpool.* histograms, so the
// pool is no longer a scheduling black box.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <thread>
#include <type_traits>
#include <vector>

namespace tpi {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (0 = default_concurrency()).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains every queued task, then joins the workers: all futures returned
  /// by submit() are ready once the destructor returns.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Tasks not yet picked up by a worker.
  std::size_t pending() const;

  /// std::thread::hardware_concurrency() with a floor of 1 (the standard
  /// allows it to return 0 when unknowable).
  static unsigned default_concurrency();

  /// Enqueue `fn` at priority 0 and return a future for its result. An
  /// exception thrown by the task is captured and rethrown from
  /// future::get().
  template <typename F>
  auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    return submit_prioritized(0, std::forward<F>(fn));
  }

  /// Enqueue `fn` with an explicit priority: higher runs first; equal
  /// priorities run in submission order (stable via a sequence number).
  template <typename F>
  auto submit_prioritized(int priority, F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stopping_) throw std::runtime_error("ThreadPool: submit() after shutdown");
      queue_.push(Task{[task] { (*task)(); }, std::chrono::steady_clock::now(), priority,
                       next_seq_++});
    }
    cv_.notify_one();
    return fut;
  }

 private:
  struct Task {
    std::function<void()> fn;
    std::chrono::steady_clock::time_point enqueued;
    int priority = 0;
    std::uint64_t seq = 0;

    /// std::priority_queue is a max-heap on operator<: higher priority
    /// wins, lower sequence number (earlier submit) breaks ties.
    bool operator<(const Task& o) const {
      if (priority != o.priority) return priority < o.priority;
      return seq > o.seq;
    }
  };

  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::priority_queue<Task> queue_;
  std::vector<std::thread> workers_;
  std::uint64_t next_seq_ = 0;
  bool stopping_ = false;
};

}  // namespace tpi
