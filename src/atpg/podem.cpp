#include "atpg/podem.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tpi {
namespace {

Tern tern_of(bool b) { return b ? Tern::k1 : Tern::k0; }

}  // namespace

Podem::Podem(const CombModel& model, const TestabilityResult& scoap, PodemOptions opts)
    : model_(model), scoap_(scoap), opts_(opts) {
  const std::size_t n = model.num_nets();
  vg_.assign(n, Tern::kX);
  vf_.assign(n, Tern::kX);
  is_input_.assign(n, 0);
  input_index_.assign(n, 0);
  observed_.assign(n, 0);
  queued_.assign(model.nodes().size(), 0);
  const auto& inputs = model.input_nets();
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    is_input_[static_cast<std::size_t>(inputs[i])] = 1;
    input_index_[static_cast<std::size_t>(inputs[i])] = i;
  }
  for (const NetId net : model.observe_nets()) observed_[static_cast<std::size_t>(net)] = 1;
}

void Podem::reset_state() {
  for (auto it = trail_.rbegin(); it != trail_.rend(); ++it) {
    vg_[static_cast<std::size_t>(it->net)] = it->old_g;
    vf_[static_cast<std::size_t>(it->net)] = it->old_f;
  }
  trail_.clear();
  d_frontier_.clear();
  detected_ = false;
  implications_ = 0;
  // Constants are permanent; (re)assert them outside the trail.
  for (const NetId net : model_.const0_nets()) {
    vg_[static_cast<std::size_t>(net)] = Tern::k0;
    vf_[static_cast<std::size_t>(net)] = Tern::k0;
  }
  for (const NetId net : model_.const1_nets()) {
    vg_[static_cast<std::size_t>(net)] = Tern::k1;
    vf_[static_cast<std::size_t>(net)] = Tern::k1;
  }
}

void Podem::set_net(NetId net, Tern g, Tern f) {
  const auto i = static_cast<std::size_t>(net);
  if (vg_[i] == g && vf_[i] == f) return;
  trail_.push_back(TrailEntry{net, vg_[i], vf_[i]});
  vg_[i] = g;
  vf_[i] = f;
  if (observed_[i] && g != Tern::kX && f != Tern::kX && g != f) detected_ = true;
}

void Podem::eval_node(int node_index) {
  const CombNode& node = model_.nodes()[static_cast<std::size_t>(node_index)];
  if (node.out == kNoNet) return;
  Tern gin[4], fin[4];
  const Tern stuck = tern_of(fault_->stuck1);
  const bool inject = node_index == branch_reader_;
  for (int i = 0; i < node.num_inputs; ++i) {
    const auto n = static_cast<std::size_t>(node.in[i]);
    gin[i] = vg_[n];
    fin[i] = (inject && node.in[i] == fault_->net) ? stuck : vf_[n];
  }
  Tern gsel = Tern::kX, fsel = Tern::kX;
  if (node.sel != kNoNet) {
    const auto n = static_cast<std::size_t>(node.sel);
    gsel = vg_[n];
    fsel = (inject && node.sel == fault_->net) ? stuck : vf_[n];
  }
  Tern g = eval_node_tern(node, gin, gsel);
  Tern f = eval_node_tern(node, fin, fsel);
  // Stem fault: the faulty circuit's value at the site is pinned.
  if (fault_->is_stem() && node.out == fault_->net) f = stuck;

  const auto out = static_cast<std::size_t>(node.out);
  if (g == vg_[out] && f == vf_[out]) return;
  set_net(node.out, g, f);
  // D-frontier bookkeeping: the node's readers may now have a D input.
  if (g != Tern::kX && f != Tern::kX && g != f) {
    for (const int reader : model_.readers_of(node.out)) d_frontier_.push_back(reader);
  }
  for (const int reader : model_.readers_of(node.out)) {
    const auto r = static_cast<std::size_t>(reader);
    if (queued_[r] != epoch_) {
      queued_[r] = epoch_;
      heap_.push_back(reader);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  }
}

bool Podem::assign_and_imply(NetId net, Tern value) {
  ++epoch_;
  heap_.clear();
  const Tern stuck = tern_of(fault_->stuck1);
  const Tern f = (fault_->is_stem() && net == fault_->net) ? stuck : value;
  set_net(net, value, f);
  if (fault_->is_stem() && net == fault_->net && value != Tern::kX && value != stuck) {
    if (observed_[static_cast<std::size_t>(net)]) detected_ = true;
    // The activated site carries a D: its readers join the D-frontier.
    for (const int reader : model_.readers_of(net)) d_frontier_.push_back(reader);
  }
  for (const int reader : model_.readers_of(net)) {
    const auto r = static_cast<std::size_t>(reader);
    if (queued_[r] != epoch_) {
      queued_[r] = epoch_;
      heap_.push_back(reader);
      std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
    }
  }
  while (!heap_.empty()) {
    if (++implications_ > opts_.implication_limit) return false;
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int ni = heap_.back();
    heap_.pop_back();
    queued_[static_cast<std::size_t>(ni)] = epoch_ - 1;  // allow re-queue
    eval_node(ni);
  }
  return true;
}

void Podem::rebuild_d_frontier() {
  d_frontier_.clear();
  // The branch reader carries the injected D on its faulty input; it never
  // appears as a D on a real net, so it is always a frontier candidate.
  if (branch_reader_ >= 0) d_frontier_.push_back(branch_reader_);
  for (const TrailEntry& e : trail_) {
    const auto n = static_cast<std::size_t>(e.net);
    if (vg_[n] != Tern::kX && vf_[n] != Tern::kX && vg_[n] != vf_[n]) {
      for (const int reader : model_.readers_of(e.net)) d_frontier_.push_back(reader);
    }
  }
}

int Podem::pick_d_frontier() {
  // Lazily filter stale candidates; pick the gate whose output is closest
  // to an observation point (minimum SCOAP CO).
  int best = -1;
  float best_co = kScoapInf + 1.0f;
  std::size_t w = 0;
  for (std::size_t i = 0; i < d_frontier_.size(); ++i) {
    const int ni = d_frontier_[i];
    const CombNode& node = model_.nodes()[static_cast<std::size_t>(ni)];
    if (node.out == kNoNet) continue;
    const auto out = static_cast<std::size_t>(node.out);
    // Resolved only when BOTH circuits know the output; a known good value
    // with an unknown faulty value can still become a D.
    if (vg_[out] != Tern::kX && vf_[out] != Tern::kX) continue;
    if (ni == branch_reader_) {
      // Keep the injection node alive even before the fault is activated:
      // its D is virtual and appears once the site gets its value.
      d_frontier_[w++] = ni;
      continue;
    }
    bool has_d = false;
    const Tern stuck = tern_of(fault_->stuck1);
    const bool inject = ni == branch_reader_;
    for (int k = 0; k < node.num_inputs + (node.sel != kNoNet ? 1 : 0); ++k) {
      const NetId in_net = k < node.num_inputs ? node.in[k] : node.sel;
      const auto n = static_cast<std::size_t>(in_net);
      const Tern g = vg_[n];
      const Tern f = (inject && in_net == fault_->net) ? stuck : vf_[n];
      if (g != Tern::kX && f != Tern::kX && g != f) {
        has_d = true;
        break;
      }
    }
    if (!has_d) continue;
    d_frontier_[w++] = ni;
    const float co = scoap_.co[out];
    if (co < best_co) {
      best_co = co;
      best = ni;
    }
  }
  d_frontier_.resize(w);
  return best;
}

bool Podem::objective(NetId* net, Tern* value) {
  // Kept for unit tests: a single objective without the multi-candidate
  // search of find_decision().
  const auto site = static_cast<std::size_t>(fault_->net);
  const Tern want = tern_of(!fault_->stuck1);
  if (vg_[site] == Tern::kX) {
    *net = fault_->net;
    *value = want;
    return true;
  }
  return false;
}

// Enumerate the propagation objectives a D-frontier node offers; calls
// try(net, value) for each until it returns true.
template <typename Fn>
bool Podem::for_each_propagation_objective(int ni, Fn&& try_objective) {
  const CombNode& node = model_.nodes()[static_cast<std::size_t>(ni)];
  if (node.func == CellFunc::kMux2) {
    const auto sel = static_cast<std::size_t>(node.sel);
    const Tern stuck = tern_of(fault_->stuck1);
    const bool inject = ni == branch_reader_;
    auto fval = [&](NetId in_net) {
      return (inject && in_net == fault_->net) ? stuck
                                               : vf_[static_cast<std::size_t>(in_net)];
    };
    auto has_d = [&](NetId in_net) {
      const Tern g = vg_[static_cast<std::size_t>(in_net)];
      const Tern f = fval(in_net);
      return g != Tern::kX && f != Tern::kX && g != f;
    };
    if (has_d(node.sel)) {
      // D on select: make the data inputs differ.
      for (int k = 0; k < 2; ++k) {
        if (vg_[static_cast<std::size_t>(node.in[k])] != Tern::kX) continue;
        const Tern other = vg_[static_cast<std::size_t>(node.in[1 - k])];
        const Tern v = other == Tern::k1 ? Tern::k0 : Tern::k1;
        if (try_objective(node.in[k], v)) return true;
        if (other == Tern::kX && try_objective(node.in[k], tern_not(v))) return true;
      }
      return false;
    }
    if (vg_[sel] == Tern::kX) {
      // Steer the select toward the data input carrying the D.
      const Tern v = has_d(node.in[1]) ? Tern::k1 : Tern::k0;
      return try_objective(node.sel, v);
    }
    return false;
  }
  Tern nc;
  switch (node.func) {
    case CellFunc::kAnd:
    case CellFunc::kNand:
      nc = Tern::k1;
      break;
    case CellFunc::kOr:
    case CellFunc::kNor:
      nc = Tern::k0;
      break;
    default:
      nc = Tern::k0;  // XOR/XNOR/BUF/INV: any defined value propagates
      break;
  }
  for (int k = 0; k < node.num_inputs; ++k) {
    if (vg_[static_cast<std::size_t>(node.in[k])] != Tern::kX) continue;
    if (try_objective(node.in[k], nc)) return true;
  }
  return false;
}

// Find the next input decision: activate the fault, else propagate through
// some D-frontier gate. Tries every frontier candidate and every side
// input before giving up; `truncated` records whether any shortcut pruned
// a branch that might still hold a test (in that case an exhausted search
// must report kAborted, not kRedundant).
bool Podem::find_decision(NetId* in_net, Tern* in_val) {
  const auto site = static_cast<std::size_t>(fault_->net);
  const Tern want = tern_of(!fault_->stuck1);
  if (vg_[site] == Tern::kX) {
    if (backtrace(fault_->net, want, in_net, in_val)) return true;
    // Backtrace picked one uncontrollable chain; alternatives may exist.
    truncated_ = true;
    return false;
  }
  if (vg_[site] != want) return false;  // activation conflict: genuine dead end
  // Refresh the frontier list order (best first) and walk every candidate.
  pick_d_frontier();
  std::vector<int> candidates = d_frontier_;
  std::stable_sort(candidates.begin(), candidates.end(), [&](int a, int b) {
    const NetId oa = model_.nodes()[static_cast<std::size_t>(a)].out;
    const NetId ob = model_.nodes()[static_cast<std::size_t>(b)].out;
    return scoap_.co[static_cast<std::size_t>(oa)] < scoap_.co[static_cast<std::size_t>(ob)];
  });
  for (const int ni : candidates) {
    bool found = false;
    const bool had_objectives = for_each_propagation_objective(ni, [&](NetId net, Tern v) {
      if (backtrace(net, v, in_net, in_val)) {
        found = true;
        return true;
      }
      truncated_ = true;  // objective existed but no controllable path
      return false;
    });
    (void)had_objectives;
    if (found) return true;
  }
  return false;
}

bool Podem::backtrace(NetId obj_net, Tern obj_val, NetId* input_net, Tern* input_val) {
  NetId net = obj_net;
  Tern val = obj_val;
  for (int depth = 0; depth < 100000; ++depth) {
    const auto n = static_cast<std::size_t>(net);
    if (is_input_[n]) {
      *input_net = net;
      *input_val = val;
      return true;
    }
    const int prod = model_.producer_of(net);
    if (prod < 0) return false;  // tie cell or unreachable: cannot control
    const CombNode& node = model_.nodes()[static_cast<std::size_t>(prod)];
    auto cc = [&](NetId in, Tern v) {
      const auto i = static_cast<std::size_t>(in);
      return v == Tern::k1 ? scoap_.cc1[i] : scoap_.cc0[i];
    };
    // Select the next (input, value) pair per gate type: hardest-first when
    // every input must be set, easiest-first when any single input suffices.
    auto choose = [&](Tern need, bool all_required) -> bool {
      NetId pick = kNoNet;
      float pick_cost = all_required ? -1.0f : kScoapInf + 1.0f;
      for (int k = 0; k < node.num_inputs; ++k) {
        const auto i = static_cast<std::size_t>(node.in[k]);
        if (vg_[i] != Tern::kX) continue;
        const float cost = cc(node.in[k], need);
        // When any single input suffices, never walk into a structurally
        // uncontrollable chain (tie-driven) — another input can serve.
        if (!all_required && cost >= kScoapInf) continue;
        const bool better = all_required ? cost > pick_cost : cost < pick_cost;
        if (better) {
          pick_cost = cost;
          pick = node.in[k];
        }
      }
      if (pick == kNoNet) return false;
      net = pick;
      val = need;
      return true;
    };
    switch (node.func) {
      case CellFunc::kBuf:
      case CellFunc::kClkBuf:
      case CellFunc::kTsff:
        net = node.in[0];
        break;
      case CellFunc::kInv:
        net = node.in[0];
        val = tern_not(val);
        break;
      case CellFunc::kAnd:
      case CellFunc::kNand: {
        Tern v = val;
        if (node.func == CellFunc::kNand) v = tern_not(v);
        // v==1: all inputs 1 (hardest first); v==0: one input 0 (easiest).
        if (!choose(v == Tern::k1 ? Tern::k1 : Tern::k0, v == Tern::k1)) return false;
        break;
      }
      case CellFunc::kOr:
      case CellFunc::kNor: {
        Tern v = val;
        if (node.func == CellFunc::kNor) v = tern_not(v);
        // v==0: all inputs 0 (hardest first); v==1: one input 1 (easiest).
        if (!choose(v == Tern::k0 ? Tern::k0 : Tern::k1, v == Tern::k0)) return false;
        break;
      }
      case CellFunc::kXor:
      case CellFunc::kXnor: {
        // Set any X input; pick its cheaper polarity (parity fixed later by
        // the other inputs / subsequent objectives).
        NetId pick = kNoNet;
        for (int k = 0; k < node.num_inputs; ++k) {
          if (vg_[static_cast<std::size_t>(node.in[k])] == Tern::kX) {
            pick = node.in[k];
            break;
          }
        }
        if (pick == kNoNet) return false;
        net = pick;
        val = cc(pick, Tern::k0) <= cc(pick, Tern::k1) ? Tern::k0 : Tern::k1;
        break;
      }
      case CellFunc::kMux2: {
        const auto sel = static_cast<std::size_t>(node.sel);
        if (vg_[sel] == Tern::kX) {
          // Steer through the cheaper data path.
          const float via_a = cc(node.in[0], val) + cc(node.sel, Tern::k0);
          const float via_b = cc(node.in[1], val) + cc(node.sel, Tern::k1);
          net = node.sel;
          val = via_a <= via_b ? Tern::k0 : Tern::k1;
        } else {
          const int k = vg_[sel] == Tern::k1 ? 1 : 0;
          if (vg_[static_cast<std::size_t>(node.in[k])] != Tern::kX) return false;
          net = node.in[k];
        }
        break;
      }
      default:
        return false;
    }
    if (vg_[static_cast<std::size_t>(net)] != Tern::kX) return false;
  }
  return false;
}

PodemResult Podem::generate(const Fault& fault) {
  PodemResult res;
  fault_ = &fault;
  branch_reader_ = -1;
  direct_branch_capture_ = false;
  if (!fault.is_stem()) {
    for (const int reader : model_.readers_of(fault.net)) {
      if (model_.nodes()[static_cast<std::size_t>(reader)].cell == fault.branch.cell) {
        branch_reader_ = reader;
        break;
      }
    }
    if (branch_reader_ < 0) {
      // Branch fault straight into a flip-flop D pin: the faulty value is
      // captured directly, so activating the site detects it.
      const CellSpec* spec = model_.netlist().cell(fault.branch.cell).spec;
      direct_branch_capture_ = spec->sequential && fault.branch.pin == spec->d_pin;
      if (!direct_branch_capture_) {
        res.outcome = PodemOutcome::kRedundant;  // unobservable branch
        return res;
      }
    }
  }
  reset_state();
  truncated_ = false;
  if (branch_reader_ >= 0) d_frontier_.push_back(branch_reader_);

  std::vector<Decision> decisions;
  int backtracks = 0;
  while (true) {
    if (direct_branch_capture_ &&
        vg_[static_cast<std::size_t>(fault.net)] == tern_of(!fault.stuck1)) {
      detected_ = true;
    }
    if (detected_) {
      res.outcome = PodemOutcome::kTest;
      res.cube.assign(model_.input_nets().size(), Tern::kX);
      const auto& inputs = model_.input_nets();
      for (std::size_t i = 0; i < inputs.size(); ++i) {
        res.cube[i] = vg_[static_cast<std::size_t>(inputs[i])];
      }
      res.backtracks = backtracks;
      return res;
    }
    NetId in_net = kNoNet;
    Tern in_val = Tern::kX;
    const bool have_obj = find_decision(&in_net, &in_val);
    if (opts_.trace) {
      std::fprintf(stderr, "[podem] depth=%zu have_obj=%d net=%d val=%d frontier=%zu trunc=%d",
                   decisions.size(), have_obj ? 1 : 0, have_obj ? in_net : -1,
                   have_obj ? static_cast<int>(in_val) : -1, d_frontier_.size(),
                   truncated_ ? 1 : 0);
      for (const int ni : d_frontier_) {
        const CombNode& node = model_.nodes()[static_cast<std::size_t>(ni)];
        std::fprintf(stderr, " [cell=%d out=%d vg=%d vf=%d]", node.cell, node.out,
                     node.out != kNoNet ? static_cast<int>(vg_[static_cast<std::size_t>(node.out)]) : -1,
                     node.out != kNoNet ? static_cast<int>(vf_[static_cast<std::size_t>(node.out)]) : -1);
      }
      std::fprintf(stderr, "\n");
    }
    if (have_obj) {
      Decision d;
      d.input_index = input_index_[static_cast<std::size_t>(in_net)];
      d.value = in_val;
      d.trail_mark = trail_.size();
      decisions.push_back(d);
      if (!assign_and_imply(in_net, in_val)) {
        res.outcome = PodemOutcome::kAborted;  // implication budget blown
        res.backtracks = backtracks;
        return res;
      }
      continue;
    }
    // Dead end: flip the most recent unflipped decision.
    bool flipped = false;
    while (!decisions.empty()) {
      Decision& d = decisions.back();
      // Undo its implications (reverse order restores every intermediate
      // composite value exactly).
      while (trail_.size() > d.trail_mark) {
        const TrailEntry e = trail_.back();
        trail_.pop_back();
        vg_[static_cast<std::size_t>(e.net)] = e.old_g;
        vf_[static_cast<std::size_t>(e.net)] = e.old_f;
      }
      detected_ = false;
      if (!d.flipped) {
        d.flipped = true;
        d.value = tern_not(d.value);
        if (++backtracks > opts_.backtrack_limit) {
          res.outcome = PodemOutcome::kAborted;
          res.backtracks = backtracks;
          return res;
        }
        rebuild_d_frontier();
        const NetId net = model_.input_nets()[d.input_index];
        if (!assign_and_imply(net, d.value)) {
          res.outcome = PodemOutcome::kAborted;
          res.backtracks = backtracks;
          return res;
        }
        flipped = true;
        break;
      }
      decisions.pop_back();
    }
    if (!flipped && decisions.empty()) {
      // Only a complete search proves redundancy; if any branch was pruned
      // by a heuristic shortcut the honest verdict is "aborted".
      res.outcome = truncated_ ? PodemOutcome::kAborted : PodemOutcome::kRedundant;
      res.backtracks = backtracks;
      return res;
    }
  }
}

}  // namespace tpi
