// Event-driven, 64-pattern-parallel stuck-at fault simulation.
//
// For each fault the simulator diverges a faulty-value overlay from the
// good-value state and propagates events in topological order through the
// fault's output cone only, comparing at observable nets. Combined with
// fault dropping this is the workhorse of compact ATPG: every generated
// pattern (with random fill) is graded against all remaining faults.
#pragma once

#include <vector>

#include "atpg/fault.hpp"
#include "sim/parallel_sim.hpp"

namespace tpi {

class FaultSimulator {
 public:
  explicit FaultSimulator(const CombModel& model);

  /// Load the good-circuit state for a batch of 64 patterns (words aligned
  /// with model.input_nets()) and evaluate it.
  void load_batch(const std::vector<Word>& input_words);

  /// Word with bit k set iff pattern k of the current batch detects the
  /// fault (observable difference at a PO or pseudo-PO).
  Word detects(const Fault& fault);

  /// Convenience: simulate the batch against `faults`, mark newly detected
  /// faults kDetected and return per-pattern "useful" mask (bit k set iff
  /// pattern k was the first detector of some fault).
  Word drop_detected(std::vector<Fault*>& faults);

  const ParallelSim& good() const { return good_; }

 private:
  Word faulty_value(NetId net) const {
    const auto i = static_cast<std::size_t>(net);
    return stamp_[i] == epoch_ ? fval_[i] : good_.value(net);
  }
  void set_faulty(NetId net, Word w) {
    const auto i = static_cast<std::size_t>(net);
    fval_[i] = w;
    stamp_[i] = epoch_;
  }
  void schedule_readers(NetId net, int skip_node = -1);
  void schedule(int node_index);

  const CombModel* model_;
  ParallelSim good_;
  std::vector<Word> fval_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<int> heap_;  ///< min-heap of pending node indices (topo order)
  std::vector<std::uint32_t> queued_;  ///< epoch stamp: node already queued
  std::vector<char> observed_;         ///< per net: is an observe net
};

}  // namespace tpi
