// Event-driven, 64-pattern-parallel stuck-at fault simulation.
//
// For each fault the simulator diverges a faulty-value overlay from the
// good-value state and propagates events in topological order through the
// fault's output cone only, comparing at observable nets. Two cone limits
// keep the hot loop tight: faults whose site cannot reach any observe net
// (CombModel::net_reaches_observe) are skipped outright, and events are
// never scheduled into nodes whose output lies outside every observe cone.
// Combined with fault dropping this is the workhorse of compact ATPG:
// every generated pattern (with random fill) is graded against all
// remaining faults.
//
// FaultSimBank partitions a fault list across per-worker FaultSimulator
// instances (shared read-only CombModel, per-worker faulty-value scratch)
// and merges detection results in fault-list order, so the outcome is
// bit-identical to the serial path at any worker count.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/parallel_sim.hpp"

namespace tpi {

class ThreadPool;

/// Mask selecting the first (lowest-index) detecting pattern of a batch:
/// pattern k lives in bit k, so the first detector is the least-significant
/// set bit. Explicit std::countr_zero replaces the old two's-complement
/// `d & (~d + 1)` trick (same value, without the implicit encoding
/// assumption); shared by fault dropping and static compaction.
inline Word first_detecting_bit(Word detect) {
  return detect == 0 ? Word{0} : Word{1} << std::countr_zero(detect);
}

/// Index of the first detecting pattern, -1 when no pattern detects.
inline int first_detecting_pattern(Word detect) {
  return detect == 0 ? -1 : std::countr_zero(detect);
}

/// Event counters accumulated by detects(); the ATPG kernel profile sums
/// them per phase. Totals are independent of the worker count because each
/// fault is graded exactly once.
struct FaultSimStats {
  std::uint64_t faults_graded = 0;  ///< detects() calls
  std::uint64_t cone_skips = 0;     ///< faults cut by the observability mask
  std::uint64_t node_evals = 0;     ///< nodes evaluated during propagation
  std::uint64_t events = 0;         ///< scheduler pushes accepted

  FaultSimStats& operator+=(const FaultSimStats& o) {
    faults_graded += o.faults_graded;
    cone_skips += o.cone_skips;
    node_evals += o.node_evals;
    events += o.events;
    return *this;
  }
};

class FaultSimulator {
 public:
  explicit FaultSimulator(const CombModel& model);

  /// Load the good-circuit state for a batch of 64 patterns (words aligned
  /// with model.input_nets()) and evaluate it.
  void load_batch(const std::vector<Word>& input_words);

  /// Adopt another simulator's good-circuit state (same model, same batch)
  /// without re-evaluating it — the parallel bank loads the batch once.
  void copy_good_from(const FaultSimulator& other);

  /// Word with bit k set iff pattern k of the current batch detects the
  /// fault (observable difference at a PO or pseudo-PO).
  Word detects(const Fault& fault);

  /// Convenience: simulate the batch against `faults`, mark newly detected
  /// faults kDetected and return per-pattern "useful" mask (bit k set iff
  /// pattern k was the first detector of some fault).
  Word drop_detected(std::vector<Fault*>& faults);

  const ParallelSim& good() const { return good_; }

  const FaultSimStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  Word faulty_value(NetId net) const {
    const auto i = static_cast<std::size_t>(net);
    return stamp_[i] == epoch_ ? fval_[i] : good_.value(net);
  }
  void set_faulty(NetId net, Word w) {
    const auto i = static_cast<std::size_t>(net);
    fval_[i] = w;
    stamp_[i] = epoch_;
  }
  void schedule_readers(NetId net, int skip_node = -1);
  void schedule(int node_index);

  const CombModel* model_;
  ParallelSim good_;
  std::vector<Word> fval_;
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<int> heap_;  ///< min-heap of pending node indices (topo order)
  std::vector<std::uint32_t> queued_;  ///< epoch stamp: node already queued
  std::vector<char> observed_;         ///< per net: is an observe net
  FaultSimStats stats_;
};

/// Deterministic parallel fault grading: the live fault list is split into
/// one contiguous chunk per worker (chunk boundaries depend only on the
/// list length and the worker count, never on scheduling), each worker
/// grades its chunk on its own FaultSimulator, and the caller-visible merge
/// happens on the calling thread in fault-list order. Result: bit-identical
/// to the serial path for any `jobs`.
class FaultSimBank {
 public:
  /// jobs = 1 is serial (no pool); jobs <= 0 selects
  /// ThreadPool::default_concurrency().
  explicit FaultSimBank(const CombModel& model, int jobs = 1);
  ~FaultSimBank();

  FaultSimBank(const FaultSimBank&) = delete;
  FaultSimBank& operator=(const FaultSimBank&) = delete;

  int jobs() const { return static_cast<int>(sims_.size()); }

  /// Worker 0's simulator (serial helpers, tests).
  FaultSimulator& primary() { return *sims_.front(); }

  /// Load + evaluate the batch once, then copy the good state to every
  /// worker.
  void load_batch(const std::vector<Word>& input_words);

  /// detects() for every fault: detect[i] = detects(*faults[i]).
  void grade(const std::vector<Fault*>& faults, std::vector<Word>& detect);

  struct DropOutcome {
    Word useful = 0;  ///< bit k set iff pattern k first-detected some fault
    std::int64_t equiv_dropped = 0;  ///< equiv count of ex-kUndetected drops
  };

  /// Grade `live`, mark detected faults kDetected and remove them from
  /// `live` (order preserved). Faults in other live states (kRedundant,
  /// kAborted) stay eligible: simulation evidence overrides them.
  DropOutcome grade_and_drop(std::vector<Fault*>& live);

  /// Summed per-worker counters since the last call; resets the workers.
  FaultSimStats take_stats();

 private:
  std::vector<std::unique_ptr<FaultSimulator>> sims_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when jobs() == 1
  std::vector<Word> detect_buf_;
};

}  // namespace tpi
