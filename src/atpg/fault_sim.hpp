// Event-driven, pattern-parallel fault simulation (stuck-at + transition).
//
// For each fault the simulator diverges a faulty-value overlay from the
// good-value state and propagates events in topological order through the
// fault's output cone only, comparing at observable nets. Two cone limits
// keep the hot loop tight: faults whose site cannot reach any observe net
// (CombModel::net_reaches_observe) are skipped outright, and events are
// never scheduled into nodes whose output lies outside every observe cone.
// Combined with fault dropping this is the workhorse of compact ATPG:
// every generated pattern (with random fill) is graded against all
// remaining faults.
//
// The hot loops live in the dispatched SIMD kernels (sim/kernels.hpp): a
// batch is lane_words() x 64 patterns wide, and each net visit grades all
// of them. The lane width is picked algorithmically by callers (1 for the
// legacy 64-pattern interface, up to kMaxLaneWords = 8 for super-batches),
// never from CPU capability, so detection words are bit-identical across
// kernel backends.
//
// FaultSimBank partitions a fault list across per-worker FaultSimulator
// instances (shared read-only CombModel, per-worker faulty-value scratch)
// and merges detection results in fault-list order, so the outcome is
// bit-identical to the serial path at any worker count.
//
// Transition faults are graded over launch-on-capture pattern pairs loaded
// with load_batch_loc(): the launch frame V1 is simulated, the capture
// frame holds the PIs and feeds each pseudo-input from the launch frame's
// captured D value, and the kernels then grade the *capture* frame exactly
// as for stuck-at. The transition condition (the fault site held the
// launch value that makes the slow transition happen) is applied as a
// per-lane mask after the kernel: slow-to-rise requires launch value 0,
// slow-to-fall requires launch value 1. The kernels themselves are
// untouched, so backend bit-identity carries over.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/kernels.hpp"
#include "sim/parallel_sim.hpp"

namespace tpi {

class ThreadPool;

/// Mask selecting the first (lowest-index) detecting pattern of a batch:
/// pattern k lives in bit k, so the first detector is the least-significant
/// set bit. Explicit std::countr_zero replaces the old two's-complement
/// `d & (~d + 1)` trick (same value, without the implicit encoding
/// assumption); shared by fault dropping and static compaction.
inline Word first_detecting_bit(Word detect) {
  return detect == 0 ? Word{0} : Word{1} << std::countr_zero(detect);
}

/// Index of the first detecting pattern, -1 when no pattern detects.
inline int first_detecting_pattern(Word detect) {
  return detect == 0 ? -1 : std::countr_zero(detect);
}

/// Resolve a fault against the model for the grading/forced kernels: find
/// the branch's logic reader, or classify it as a direct FF-D capture or a
/// dead branch. Shared by fault simulation and pattern replay.
FaultTask resolve_fault_task(const CombModel& model, const Fault& fault);

class FaultSimulator {
 public:
  explicit FaultSimulator(const CombModel& model);

  /// Words per net in the current batch layout (1..kMaxLaneWords).
  int lane_words() const { return good_.lane_words(); }
  /// Switch the batch width; resets the good state when it changes.
  void configure_lanes(int lane_words);

  /// Load the good-circuit state for a batch of lane_words() x 64 patterns
  /// (words input-major, aligned with model.input_nets(): word
  /// input_words[i*lane_words() + j] is input i, lane word j) and evaluate
  /// it. With lane_words() == 1 this is the legacy 64-pattern interface.
  void load_batch(const std::vector<Word>& input_words);

  /// Launch-on-capture batch for transition faults: simulate `input_words`
  /// as the launch frame V1, then build and simulate the capture frame
  /// (PIs held, pseudo-inputs fed from V1's captured D observes). After
  /// this call the good state is the capture frame and the launch frame's
  /// values are retained for the transition launch condition.
  void load_batch_loc(const std::vector<Word>& input_words);

  /// Adopt another simulator's good-circuit state (same model, same batch)
  /// without re-evaluating it — the parallel bank loads the batch once.
  /// Copies the launch frame too, if the source holds one.
  void copy_good_from(const FaultSimulator& other);

  /// Resolve a fault against the model for the grading kernels.
  FaultTask resolve(const Fault& fault) const;

  /// Word with bit k set iff pattern k of the current batch detects the
  /// fault (observable difference at a PO or pseudo-PO). Legacy single-word
  /// view: with lane_words() > 1 this is lane word 0 only.
  Word detects(const Fault& fault);

  /// All lane words of the detection result: out[0..lane_words()).
  void detects_wide(const Fault& fault, Word* out);

  /// Grade `count` faults: detect[i*lane_words() + j] is fault i's lane
  /// word j.
  void grade(const Fault* const* faults, std::size_t count, Word* detect);

  /// Convenience: simulate the batch against `faults`, mark newly detected
  /// faults kDetected and return per-pattern "useful" mask (bit k set iff
  /// pattern k was the first detector of some fault). Lane word 0 only.
  Word drop_detected(std::vector<Fault*>& faults);

  const ParallelSim& good() const { return good_; }

  const FaultSimStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

 private:
  /// Per-lane-word transition launch mask for `fault` (slow-to-rise: site
  /// was 0 at launch; slow-to-fall: site was 1), ANDed into the kernel's
  /// capture-frame detect words. Zero when no launch frame is loaded — a
  /// transition fault cannot be detected by a single-frame batch.
  void apply_launch_mask(const Fault& fault, Word* detect) const;

  const CombModel* model_;
  ParallelSim good_;
  FaultScratch scratch_;
  std::vector<FaultTask> tasks_;  ///< reused per grade() call
  std::vector<Word> launch_values_;   ///< V1 net values (load_batch_loc)
  std::vector<Word> capture_inputs_;  ///< scratch for the capture frame
  bool has_launch_ = false;
  FaultSimStats stats_;
};

/// Deterministic parallel fault grading: the live fault list is split into
/// one contiguous chunk per worker (chunk boundaries depend only on the
/// list length and the worker count, never on scheduling), each worker
/// grades its chunk on its own FaultSimulator, and the caller-visible merge
/// happens on the calling thread in fault-list order. Result: bit-identical
/// to the serial path for any `jobs`.
class FaultSimBank {
 public:
  /// jobs = 1 is serial (no pool); jobs <= 0 selects
  /// ThreadPool::default_concurrency().
  explicit FaultSimBank(const CombModel& model, int jobs = 1);
  ~FaultSimBank();

  FaultSimBank(const FaultSimBank&) = delete;
  FaultSimBank& operator=(const FaultSimBank&) = delete;

  int jobs() const { return static_cast<int>(sims_.size()); }

  /// Words per net in the current batch layout.
  int lane_words() const { return sims_.front()->lane_words(); }
  /// Switch every worker's batch width.
  void configure_lanes(int lane_words);

  /// Worker 0's simulator (serial helpers, tests).
  FaultSimulator& primary() { return *sims_.front(); }

  /// Load + evaluate the batch once (input-major wide layout, see
  /// FaultSimulator::load_batch), then copy the good state to every worker.
  void load_batch(const std::vector<Word>& input_words);

  /// Launch-on-capture variant (see FaultSimulator::load_batch_loc).
  void load_batch_loc(const std::vector<Word>& input_words);

  /// Grade every fault: detect[i*lane_words() + j] = fault i, lane word j.
  void grade(const std::vector<Fault*>& faults, std::vector<Word>& detect);

  struct DropOutcome {
    Word useful = 0;  ///< bit k set iff pattern k first-detected some fault
                      ///< (lane word 0 only; meaningful at lane_words()==1)
    std::int64_t equiv_dropped = 0;  ///< equiv count of ex-kUndetected drops
  };

  /// Grade `live`, mark detected faults kDetected and remove them from
  /// `live` (order preserved). Faults in other live states (kRedundant,
  /// kAborted) stay eligible: simulation evidence overrides them. A fault
  /// counts as detected when any lane word is nonzero.
  DropOutcome grade_and_drop(std::vector<Fault*>& live);

  /// Summed per-worker counters since the last call; resets the workers.
  FaultSimStats take_stats();

 private:
  std::vector<std::unique_ptr<FaultSimulator>> sims_;
  std::unique_ptr<ThreadPool> pool_;  ///< null when jobs() == 1
  std::vector<Word> detect_buf_;
};

}  // namespace tpi
