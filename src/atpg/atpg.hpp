// Compact ATPG driver: random bootstrap + PODEM with random fill and
// dynamic fault dropping + reverse-order static compaction.
//
// This mirrors the Philips CAT flow the paper uses (Geuzebroek et al.,
// ITC'00/'02): compact stuck-at pattern sets for scan-based external test.
// The Table 1 metrics fall out of the result: pattern count, fault
// coverage FC, fault efficiency FE, and — combined with the scan-chain
// configuration — test data volume (eq. 1) and test application time
// (eq. 2).
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "atpg/podem.hpp"

namespace tpi {

struct AtpgOptions {
  std::uint64_t seed = 0xA7961;
  /// Fault model to target. kStuckAt (the default) keeps the seed's
  /// behavior bit-for-bit; kTransition grades launch-on-capture pattern
  /// pairs (the stored pattern is the launch frame, PIs held across both
  /// cycles, pseudo-inputs fed from the launch frame's captured state).
  FaultModel fault_model = FaultModel::kStuckAt;
  PodemOptions podem;
  /// Pure-random warm-up batches of 64 patterns (dropped again by static
  /// compaction when useless).
  int random_batches = 10;
  /// Stop the random warm-up early when a batch detects fewer equivalent
  /// faults than this.
  int random_min_yield = 8;
  bool static_compaction = true;
  int max_patterns = 200000;
  /// Fault-simulation worker threads (FaultSimBank): 1 = serial, <= 0 =
  /// hardware concurrency. The AtpgResult is bit-identical for any value.
  int jobs = 1;
};

/// Fault-sim kernel counters for one ATPG phase. wall_ms is the whole
/// phase's wall clock (for the podem phase that includes the PODEM calls
/// themselves); the event counters cover fault simulation only and are
/// identical for any AtpgOptions::jobs.
///
/// Compat view: run_atpg also publishes these counters to the active
/// MetricsRegistry (atpg.* names) and wraps each phase in a trace span
/// ("atpg.random" / "atpg.podem" / "atpg.static_compaction"), so the
/// unified observability layer and this struct always agree.
struct AtpgPhaseProfile {
  double wall_ms = 0.0;
  std::uint64_t batches = 0;  ///< 64-pattern batches simulated

  std::uint64_t faults_graded = 0;  ///< detects() calls
  std::uint64_t cone_skips = 0;     ///< faults cut by the observability mask
  std::uint64_t node_evals = 0;     ///< nodes evaluated during propagation
  std::uint64_t events = 0;         ///< scheduler pushes accepted

  void add(const FaultSimStats& s) {
    faults_graded += s.faults_graded;
    cone_skips += s.cone_skips;
    node_evals += s.node_evals;
    events += s.events;
  }
};

/// Per-phase fault-sim kernel profile of one run_atpg() call — the
/// measurable side of the parallel/cone-limited fault simulation.
struct AtpgKernelProfile {
  int jobs = 1;  ///< fault-sim workers actually used
  AtpgPhaseProfile random;      ///< phase 1: pseudo-random warm-up
  AtpgPhaseProfile podem;       ///< phase 2: PODEM + dynamic compaction
  AtpgPhaseProfile compaction;  ///< phase 3: reverse-order static compaction

  AtpgPhaseProfile total() const {
    AtpgPhaseProfile t;
    for (const AtpgPhaseProfile* p : {&random, &podem, &compaction}) {
      t.wall_ms += p->wall_ms;
      t.batches += p->batches;
      t.faults_graded += p->faults_graded;
      t.cone_skips += p->cone_skips;
      t.node_evals += p->node_evals;
      t.events += p->events;
    }
    return t;
  }
};

/// One scan-test pattern: values for every controllable input (PIs and
/// scan-cell states), aligned with CombModel::input_nets().
struct TestPattern {
  std::vector<std::uint8_t> bits;
};

struct AtpgResult {
  FaultModel fault_model = FaultModel::kStuckAt;  ///< model this run targeted
  FaultList faults;  ///< final per-fault statuses
  /// For kStuckAt: one capture cycle per pattern. For kTransition: each
  /// pattern is the launch frame of a launch-on-capture pair.
  std::vector<TestPattern> patterns;

  std::int64_t total_faults = 0;  ///< uncollapsed universe (Table 1 #faults)
  std::int64_t detected = 0;      ///< equivalent faults detected by patterns
  std::int64_t scan_tested = 0;
  std::int64_t redundant = 0;
  std::int64_t aborted = 0;

  double fault_coverage_pct = 0.0;    ///< FC = (detected+scan)/total
  double fault_efficiency_pct = 0.0;  ///< FE = (detected+scan+redundant)/total
  int patterns_before_compaction = 0;
  int podem_calls = 0;
  int podem_aborts = 0;
  std::int64_t podem_backtracks = 0;  ///< summed over all PODEM calls
  AtpgKernelProfile profile;  ///< fault-sim kernel profile (per phase)

  int num_patterns() const { return static_cast<int>(patterns.size()); }
};

AtpgResult run_atpg(const CombModel& model, const TestabilityResult& testability,
                    const AtpgOptions& opts = {});

class DesignDB;

/// Same driver over the design database: pulls the capture-view CombModel
/// and testability from the DB cache (a rebuild only when the netlist was
/// edited since they were last built).
AtpgResult run_atpg(DesignDB& db, const AtpgOptions& opts = {});

/// Test data volume in scan bits, eq. (1): TDV = 2n((l_max+1)p + l_max).
std::int64_t test_data_volume(int num_chains, int max_chain_length, int num_patterns);

/// Test application time in clock cycles, eq. (2): TAT = (l_max+1)p + l_max.
std::int64_t test_application_time(int max_chain_length, int num_patterns);

/// Generalized eq. (2) for multi-cycle capture: TAT = (l_max+c)p + l_max
/// with c capture cycles per pattern (c = 2 for launch-on-capture
/// transition test; c = 1 reproduces the paper's formula).
std::int64_t test_application_time(int max_chain_length, int num_patterns, int capture_cycles);

}  // namespace tpi
