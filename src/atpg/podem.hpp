// PODEM (path-oriented decision making) deterministic test generation.
//
// Classic Goel algorithm over the capture-view combinational model with a
// composite good/faulty 3-valued simulation: decisions are made only on
// controllable inputs (PIs and scan-cell outputs), objectives are derived
// from fault activation and D-frontier propagation, and backtrace is guided
// by SCOAP controllability/observability. Faults whose decision tree is
// exhausted are proven redundant (they count toward fault efficiency);
// faults hitting the backtrack limit are aborted.
#pragma once

#include <cstdint>
#include <vector>

#include "atpg/fault.hpp"
#include "sim/ternary.hpp"
#include "testability/testability.hpp"

namespace tpi {

struct PodemOptions {
  int backtrack_limit = 80;
  std::int64_t implication_limit = 2'000'000;  ///< per fault, safety net
  bool trace = false;  ///< stderr decision/backtrack trace (debugging)
};

enum class PodemOutcome { kTest, kRedundant, kAborted };

struct PodemResult {
  PodemOutcome outcome = PodemOutcome::kAborted;
  /// Test cube aligned with model.input_nets(); kX entries are don't-care.
  std::vector<Tern> cube;
  int backtracks = 0;
};

class Podem {
 public:
  Podem(const CombModel& model, const TestabilityResult& scoap, PodemOptions opts = {});

  PodemResult generate(const Fault& fault);

 private:
  struct Decision {
    std::size_t input_index;  ///< into model.input_nets()
    Tern value;
    bool flipped = false;
    std::size_t trail_mark;
  };

  void reset_state();
  bool assign_and_imply(NetId net, Tern value);
  void eval_node(int node_index);
  void set_net(NetId net, Tern g, Tern f);
  bool objective(NetId* net, Tern* value);
  void rebuild_d_frontier();
  template <typename Fn>
  bool for_each_propagation_objective(int node_index, Fn&& try_objective);
  bool find_decision(NetId* in_net, Tern* in_val);
  bool backtrace(NetId obj_net, Tern obj_val, NetId* input_net, Tern* input_val);
  int pick_d_frontier();
  bool fault_detected() const { return detected_; }

  const CombModel& model_;
  const TestabilityResult& scoap_;
  PodemOptions opts_;
  const Fault* fault_ = nullptr;
  int branch_reader_ = -1;
  bool direct_branch_capture_ = false;  ///< branch fault straight into a FF D pin

  std::vector<Tern> vg_, vf_;
  /// Undo log: every value change is recorded (a net's composite value can
  /// change more than once — (X,X) → (1,X) → (1,1) — across decision
  /// levels, so "reset to X on undo" would corrupt the shallower state).
  struct TrailEntry {
    NetId net;
    Tern old_g, old_f;
  };
  std::vector<TrailEntry> trail_;
  std::vector<int> d_frontier_;  ///< candidate node indices (lazily filtered)
  std::vector<int> heap_;
  std::vector<std::uint32_t> queued_;
  std::uint32_t epoch_ = 0;
  std::vector<char> is_input_;  ///< per net: controllable input
  std::vector<std::size_t> input_index_;  ///< net -> index into input_nets
  std::vector<char> observed_;
  bool detected_ = false;
  bool truncated_ = false;  ///< search shortcuts taken: exhaustion != proof
  std::int64_t implications_ = 0;
};

}  // namespace tpi
