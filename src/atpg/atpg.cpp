#include "atpg/atpg.hpp"

#include <algorithm>
#include <cassert>
#include <chrono>

#include "atpg/fault_sim.hpp"
#include "netlist/design_db.hpp"
#include "util/log.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// Pack up to nw*64 patterns into per-input lane words (input-major):
// pattern k lands in bit k%64 of words[i*nw + k/64]. Lanes past the
// pattern count stay zero (phantom all-zero vectors; callers mask them
// out of detection words).
void pack_batch(const std::vector<const TestPattern*>& batch, std::size_t num_inputs, int nw,
                std::vector<Word>& words) {
  words.assign(num_inputs * static_cast<std::size_t>(nw), 0);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const auto& bits = batch[k]->bits;
    const std::size_t j = k / kWordBits;
    const int bit = static_cast<int>(k % kWordBits);
    for (std::size_t i = 0; i < num_inputs; ++i) {
      words[i * static_cast<std::size_t>(nw) + j] |= static_cast<Word>(bits[i] & 1) << bit;
    }
  }
}

// Valid-lane mask for lane word j of a batch holding `count` patterns.
Word lane_mask(std::size_t count, int j) {
  const std::size_t base = static_cast<std::size_t>(j) * kWordBits;
  if (count <= base) return 0;
  const std::size_t lanes = count - base;
  return lanes >= static_cast<std::size_t>(kWordBits) ? ~Word{0} : (Word{1} << lanes) - 1;
}

// Largest power-of-two word count covering `remaining` 64-pattern batches,
// capped at kMaxLaneWords (the super-batch width).
int super_batch_words(int remaining) {
  int nw = 1;
  while (nw * 2 <= kMaxLaneWords && nw * 2 <= remaining) nw *= 2;
  return nw;
}

// Live = could still be detected by a pattern: everything but kDetected and
// kScanTested (kRedundant/kAborted stay eligible — simulation evidence of
// detection overrides them). Built once per phase and maintained
// incrementally by FaultSimBank::grade_and_drop instead of rescanning the
// whole fault list every batch.
void rebuild_live(FaultList& list, std::vector<Fault*>& live) {
  live.clear();
  for (Fault& f : list.faults) {
    if (f.status != FaultStatus::kDetected && f.status != FaultStatus::kScanTested) {
      live.push_back(&f);
    }
  }
}

}  // namespace

AtpgResult run_atpg(const CombModel& model, const TestabilityResult& testability,
                    const AtpgOptions& opts) {
  AtpgResult res;
  res.fault_model = opts.fault_model;
  res.faults = build_fault_list(model, opts.fault_model);
  res.total_faults = res.faults.total_uncollapsed;
  const bool loc = opts.fault_model == FaultModel::kTransition;

  FaultSimBank bank(model, opts.jobs);
  res.profile.jobs = bank.jobs();
  Podem podem(model, testability, opts.podem);
  Rng rng(opts.seed);
  const std::size_t num_inputs = model.input_nets().size();

  // Launch-on-capture loads the pattern as the launch frame and grades the
  // derived capture frame; stuck-at grades the pattern directly.
  auto load_bank = [&](const std::vector<Word>& w) {
    if (loc) {
      bank.load_batch_loc(w);
    } else {
      bank.load_batch(w);
    }
  };

  // Transition targets on pseudo-input nets need the launch frame to set
  // the site's initial value; map each pseudo-input net to its input slot.
  std::vector<int> pseudo_input_slot;
  if (loc) {
    pseudo_input_slot.assign(model.netlist().num_nets(), -1);
    for (std::size_t i = model.num_pi_inputs(); i < num_inputs; ++i) {
      pseudo_input_slot[static_cast<std::size_t>(model.input_nets()[i])] =
          static_cast<int>(i);
    }
  }

  // Reusable batch scaffolding, hoisted out of the per-batch loops: the
  // pattern slots (with their bit vectors), the packed input words and the
  // ref array are allocated once and refilled every batch.
  std::vector<TestPattern> batch(static_cast<std::size_t>(kWordBits) * kMaxLaneWords);
  for (TestPattern& p : batch) p.bits.resize(num_inputs);
  std::vector<const TestPattern*> refs;
  refs.reserve(batch.size());
  std::vector<Word> words;
  std::vector<Fault*> live;
  live.reserve(res.faults.faults.size());
  rebuild_live(res.faults, live);

  // Simulate batch[0..count) against the live list, drop detected faults
  // and append the patterns to the result set.
  auto simulate_and_keep = [&](std::size_t count, AtpgPhaseProfile& phase) {
    refs.clear();
    for (std::size_t k = 0; k < count; ++k) refs.push_back(&batch[k]);
    pack_batch(refs, num_inputs, /*nw=*/1, words);
    bank.configure_lanes(1);
    load_bank(words);
    const FaultSimBank::DropOutcome out = bank.grade_and_drop(live);
    ++phase.batches;
    for (std::size_t k = 0; k < count; ++k) res.patterns.push_back(batch[k]);
    return out;
  };

  // ---- phase 1: pseudo-random warm-up ----
  // Super-batched: up to kMaxLaneWords 64-pattern batches are generated,
  // packed and graded in one wide pass (one net visit grades them all).
  // The legacy per-batch yield cutoff is replicated from the per-fault
  // first-detecting lane word: sub-batch s's yield is the equiv count of
  // kUndetected faults first detected in lane word s, the phase stops at
  // the first sub-batch whose yield falls below random_min_yield (that
  // sub-batch's drops and patterns still count, as before), and faults
  // first detected after the cutoff stay live — their detecting patterns
  // were never applied.
  const auto t_random = Clock::now();
  {
    TPI_SPAN("atpg.random");
    std::vector<Word> detect;
    int b = 0;
    bool low_yield = false;
    while (b < opts.random_batches && !low_yield) {
      const int nb = super_batch_words(opts.random_batches - b);
      const std::size_t count = static_cast<std::size_t>(nb) * kWordBits;
      for (std::size_t k = 0; k < count; ++k) {
        for (auto& bit : batch[k].bits) {
          bit = static_cast<std::uint8_t>(rng.next_bool() ? 1 : 0);
        }
      }
      refs.clear();
      for (std::size_t k = 0; k < count; ++k) refs.push_back(&batch[k]);
      pack_batch(refs, num_inputs, nb, words);
      bank.configure_lanes(nb);
      load_bank(words);
      bank.grade(live, detect);

      // Per-sub-batch yields from first-detecting lane words.
      std::int64_t yields[kMaxLaneWords] = {};
      for (std::size_t i = 0; i < live.size(); ++i) {
        if (live[i]->status != FaultStatus::kUndetected) continue;
        for (int j = 0; j < nb; ++j) {
          if (detect[i * static_cast<std::size_t>(nb) + j] != 0) {
            yields[j] += live[i]->equiv_count;
            break;
          }
        }
      }
      int applied = nb;
      for (int s = 0; s < nb; ++s) {
        if (yields[s] < opts.random_min_yield) {
          applied = s + 1;
          low_yield = true;
          break;
        }
      }

      // Drop faults first detected by an applied sub-batch.
      std::size_t w = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        int fw = -1;
        for (int j = 0; j < applied; ++j) {
          if (detect[i * static_cast<std::size_t>(nb) + j] != 0) {
            fw = j;
            break;
          }
        }
        if (fw < 0) {
          live[w++] = live[i];
          continue;
        }
        live[i]->status = FaultStatus::kDetected;
      }
      live.resize(w);

      const std::size_t applied_patterns = static_cast<std::size_t>(applied) * kWordBits;
      for (std::size_t k = 0; k < applied_patterns; ++k) res.patterns.push_back(batch[k]);
      res.profile.random.batches += static_cast<std::uint64_t>(applied);
      b += applied;
    }
  }
  res.profile.random.add(bank.take_stats());
  res.profile.random.wall_ms = ms_since(t_random);

  // ---- phase 2: deterministic PODEM with dynamic compaction ----
  // Targets ordered hardest-first (lowest COP detection probability): hard
  // faults anchor patterns whose random fill then sweeps up easy faults.
  const auto t_podem = Clock::now();
  {
    TPI_SPAN("atpg.podem");
    std::vector<std::size_t> order;
    for (std::size_t i = 0; i < res.faults.faults.size(); ++i) {
      if (res.faults.faults[i].status == FaultStatus::kUndetected) order.push_back(i);
    }
    std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      const Fault& fa = res.faults.faults[a];
      const Fault& fb = res.faults.faults[b];
      const float pa = fa.stuck1 ? testability.detect_prob_sa0(fa.net)
                                 : testability.detect_prob_sa1(fa.net);
      const float pb = fb.stuck1 ? testability.detect_prob_sa0(fb.net)
                                 : testability.detect_prob_sa1(fb.net);
      return pa < pb;
    });

    std::size_t pos = 0;
    while (pos < order.size() &&
           static_cast<int>(res.patterns.size()) < opts.max_patterns) {
      std::size_t batch_n = 0;
      while (batch_n < kWordBits && pos < order.size()) {
        Fault& f = res.faults.faults[order[pos++]];
        if (f.status != FaultStatus::kUndetected) continue;
        ++res.podem_calls;
        const PodemResult pr = podem.generate(f);
        res.podem_backtracks += pr.backtracks;
        if (pr.outcome == PodemOutcome::kRedundant) {
          f.status = FaultStatus::kRedundant;
          continue;
        }
        if (pr.outcome == PodemOutcome::kAborted) {
          f.status = FaultStatus::kAborted;
          ++res.podem_aborts;
          continue;
        }
        TestPattern& p = batch[batch_n++];
        for (std::size_t i = 0; i < num_inputs; ++i) {
          const Tern t = pr.cube[i];
          p.bits[i] = t == Tern::kX ? static_cast<std::uint8_t>(rng.next_bool() ? 1 : 0)
                                    : static_cast<std::uint8_t>(t == Tern::k1 ? 1 : 0);
        }
        if (loc) {
          // The PODEM cube excites the capture-frame stuck-at equivalent;
          // applied as the launch frame it is a best-effort (pseudo
          // broadside) vector. When the fault site is a pseudo-input its
          // launch value is directly controllable: force the transition's
          // initial value (0 for slow-to-rise, 1 for slow-to-fall). The
          // two-cycle grading below keeps only truthful detections.
          const int slot = pseudo_input_slot[static_cast<std::size_t>(f.net)];
          if (slot >= 0) p.bits[static_cast<std::size_t>(slot)] = f.stuck1 ? 1 : 0;
        }
      }
      if (batch_n == 0) continue;
      simulate_and_keep(batch_n, res.profile.podem);
    }
  }
  res.patterns_before_compaction = static_cast<int>(res.patterns.size());
  res.profile.podem.add(bank.take_stats());
  res.profile.podem.wall_ms = ms_since(t_podem);

  // ---- phase 3: reverse-order static compaction ----
  if (opts.static_compaction && !res.patterns.empty()) {
    TPI_SPAN("atpg.static_compaction");
    const auto t_compact = Clock::now();
    for (Fault& f : res.faults.faults) {
      if (f.status == FaultStatus::kDetected) f.status = FaultStatus::kUndetected;
    }
    rebuild_live(res.faults, live);
    std::vector<char> keep(res.patterns.size(), 0);
    std::vector<std::size_t> ids;
    ids.reserve(static_cast<std::size_t>(kWordBits) * kMaxLaneWords);
    std::vector<Word> detect;
    const std::size_t n = res.patterns.size();
    std::size_t processed = 0;
    while (processed < n) {
      // Super-batch: up to kMaxLaneWords x 64 patterns graded per pass.
      // Lane j*64+k of the batch = pattern (n-1-processed-(j*64+k)), so the
      // first detecting lane is the first detector in reverse order — the
      // same pattern the 64-wide loop kept.
      const std::size_t remaining_words = (n - processed + kWordBits - 1) / kWordBits;
      const int nw = super_batch_words(
          static_cast<int>(std::min<std::size_t>(remaining_words, kMaxLaneWords)));
      const std::size_t count =
          std::min<std::size_t>(static_cast<std::size_t>(nw) * kWordBits, n - processed);
      refs.clear();
      ids.clear();
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t idx = n - 1 - processed - k;
        refs.push_back(&res.patterns[idx]);
        ids.push_back(idx);
      }
      pack_batch(refs, num_inputs, nw, words);
      bank.configure_lanes(nw);
      load_bank(words);
      bank.grade(live, detect);
      res.profile.compaction.batches += (count + kWordBits - 1) / kWordBits;
      // Merge in fault-list order: a detected fault keeps the first pattern
      // (in reverse order) that detects it and leaves the live list. Lanes
      // past the pattern count hold phantom all-zero vectors and are
      // masked out.
      std::size_t w = 0;
      for (std::size_t i = 0; i < live.size(); ++i) {
        std::size_t lane = count;
        for (int j = 0; j < nw; ++j) {
          const Word d = detect[i * static_cast<std::size_t>(nw) + j] & lane_mask(count, j);
          if (d != 0) {
            lane = static_cast<std::size_t>(j) * kWordBits +
                   static_cast<std::size_t>(first_detecting_pattern(d));
            break;
          }
        }
        if (lane >= count) {
          live[w++] = live[i];
          continue;
        }
        live[i]->status = FaultStatus::kDetected;
        keep[ids[lane]] = 1;
      }
      live.resize(w);
      processed += count;
    }
    std::vector<TestPattern> kept;
    kept.reserve(res.patterns.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) kept.push_back(std::move(res.patterns[i]));
    }
    res.patterns = std::move(kept);
    res.profile.compaction.add(bank.take_stats());
    res.profile.compaction.wall_ms = ms_since(t_compact);
  }

  // ---- metrics ----
  res.detected = res.faults.count_equiv(FaultStatus::kDetected);
  res.scan_tested = res.faults.count_equiv(FaultStatus::kScanTested);
  res.redundant = res.faults.count_equiv(FaultStatus::kRedundant);
  res.aborted = res.faults.count_equiv(FaultStatus::kAborted);
  const double total = static_cast<double>(res.total_faults);
  if (total > 0) {
    res.fault_coverage_pct = 100.0 * static_cast<double>(res.detected + res.scan_tested) / total;
    res.fault_efficiency_pct =
        100.0 * static_cast<double>(res.detected + res.scan_tested + res.redundant) / total;
  }
  log_info() << "ATPG " << model.netlist().name() << ": " << res.patterns.size()
             << " patterns (" << res.patterns_before_compaction << " pre-compaction), FC="
             << res.fault_coverage_pct << "% FE=" << res.fault_efficiency_pct << "%";
  const AtpgPhaseProfile t = res.profile.total();
  log_info() << "ATPG kernel " << model.netlist().name() << ": jobs=" << res.profile.jobs
             << " batches=" << t.batches << " graded=" << t.faults_graded
             << " cone_skips=" << t.cone_skips << " node_evals=" << t.node_evals
             << " sim_wall=" << t.wall_ms << "ms";
  // Publish the kernel profile to the active registry: same numbers as the
  // AtpgKernelProfile compat view, all deterministic for any opts.jobs.
  MetricsRegistry& m = metrics();
  m.add("atpg.patterns", static_cast<std::uint64_t>(res.num_patterns()));
  m.add("atpg.podem.calls", static_cast<std::uint64_t>(res.podem_calls));
  m.add("atpg.podem.aborts", static_cast<std::uint64_t>(res.podem_aborts));
  m.add("atpg.podem.backtracks", static_cast<std::uint64_t>(res.podem_backtracks));
  m.add("atpg.sim.batches", t.batches);
  m.add("atpg.sim.faults_graded", t.faults_graded);
  m.add("atpg.sim.cone_skips", t.cone_skips);
  m.add("atpg.sim.node_evals", t.node_evals);
  m.add("atpg.sim.events", t.events);
  return res;
}

AtpgResult run_atpg(DesignDB& db, const AtpgOptions& opts) {
  const CombModel& model = db.comb_model(SeqView::kCapture);
  const TestabilityResult& testability = db.testability(SeqView::kCapture);
  return run_atpg(model, testability, opts);
}

std::int64_t test_data_volume(int num_chains, int max_chain_length, int num_patterns) {
  const std::int64_t n = num_chains, l = max_chain_length, p = num_patterns;
  return 2 * n * ((l + 1) * p + l);
}

std::int64_t test_application_time(int max_chain_length, int num_patterns) {
  const std::int64_t l = max_chain_length, p = num_patterns;
  return (l + 1) * p + l;
}

std::int64_t test_application_time(int max_chain_length, int num_patterns, int capture_cycles) {
  const std::int64_t l = max_chain_length, p = num_patterns, c = capture_cycles;
  return (l + c) * p + l;
}

}  // namespace tpi
