#include "atpg/atpg.hpp"

#include <algorithm>
#include <cassert>

#include "atpg/fault_sim.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

// Pack up to 64 patterns (one per bit) into per-input words.
void pack_batch(const std::vector<const TestPattern*>& batch, std::size_t num_inputs,
                std::vector<Word>& words) {
  words.assign(num_inputs, 0);
  for (std::size_t k = 0; k < batch.size(); ++k) {
    const auto& bits = batch[k]->bits;
    for (std::size_t i = 0; i < num_inputs; ++i) {
      words[i] |= static_cast<Word>(bits[i] & 1) << k;
    }
  }
}

std::vector<Fault*> live_faults(FaultList& list) {
  std::vector<Fault*> out;
  out.reserve(list.faults.size());
  for (Fault& f : list.faults) {
    if (f.status != FaultStatus::kDetected && f.status != FaultStatus::kScanTested) {
      out.push_back(&f);
    }
  }
  return out;
}

}  // namespace

AtpgResult run_atpg(const CombModel& model, const TestabilityResult& testability,
                    const AtpgOptions& opts) {
  AtpgResult res;
  res.faults = build_fault_list(model);
  res.total_faults = res.faults.total_uncollapsed;

  FaultSimulator fsim(model);
  Podem podem(model, testability, opts.podem);
  Rng rng(opts.seed);
  const std::size_t num_inputs = model.input_nets().size();

  auto simulate_and_drop = [&](const std::vector<const TestPattern*>& batch) {
    std::vector<Word> words;
    pack_batch(batch, num_inputs, words);
    fsim.load_batch(words);
    auto live = live_faults(res.faults);
    fsim.drop_detected(live);
  };

  // ---- phase 1: pseudo-random warm-up ----
  for (int b = 0; b < opts.random_batches; ++b) {
    std::vector<TestPattern> batch(kWordBits);
    for (auto& p : batch) {
      p.bits.resize(num_inputs);
      for (auto& bit : p.bits) bit = static_cast<std::uint8_t>(rng.next_bool() ? 1 : 0);
    }
    const std::int64_t before = res.faults.count_equiv(FaultStatus::kUndetected);
    std::vector<const TestPattern*> refs;
    for (const auto& p : batch) refs.push_back(&p);
    simulate_and_drop(refs);
    const std::int64_t after = res.faults.count_equiv(FaultStatus::kUndetected);
    for (auto& p : batch) res.patterns.push_back(std::move(p));
    if (before - after < opts.random_min_yield) break;
  }

  // ---- phase 2: deterministic PODEM with dynamic compaction ----
  // Targets ordered hardest-first (lowest COP detection probability): hard
  // faults anchor patterns whose random fill then sweeps up easy faults.
  std::vector<std::size_t> order;
  for (std::size_t i = 0; i < res.faults.faults.size(); ++i) {
    if (res.faults.faults[i].status == FaultStatus::kUndetected) order.push_back(i);
  }
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const Fault& fa = res.faults.faults[a];
    const Fault& fb = res.faults.faults[b];
    const float pa = fa.stuck1 ? testability.detect_prob_sa0(fa.net)
                               : testability.detect_prob_sa1(fa.net);
    const float pb = fb.stuck1 ? testability.detect_prob_sa0(fb.net)
                               : testability.detect_prob_sa1(fb.net);
    return pa < pb;
  });

  std::size_t pos = 0;
  while (pos < order.size() &&
         static_cast<int>(res.patterns.size()) < opts.max_patterns) {
    std::vector<TestPattern> batch;
    while (batch.size() < kWordBits && pos < order.size()) {
      Fault& f = res.faults.faults[order[pos++]];
      if (f.status != FaultStatus::kUndetected) continue;
      ++res.podem_calls;
      const PodemResult pr = podem.generate(f);
      if (pr.outcome == PodemOutcome::kRedundant) {
        f.status = FaultStatus::kRedundant;
        continue;
      }
      if (pr.outcome == PodemOutcome::kAborted) {
        f.status = FaultStatus::kAborted;
        ++res.podem_aborts;
        continue;
      }
      TestPattern p;
      p.bits.resize(num_inputs);
      for (std::size_t i = 0; i < num_inputs; ++i) {
        const Tern t = pr.cube[i];
        p.bits[i] = t == Tern::kX ? static_cast<std::uint8_t>(rng.next_bool() ? 1 : 0)
                                  : static_cast<std::uint8_t>(t == Tern::k1 ? 1 : 0);
      }
      batch.push_back(std::move(p));
    }
    if (batch.empty()) continue;
    std::vector<const TestPattern*> refs;
    for (const auto& p : batch) refs.push_back(&p);
    simulate_and_drop(refs);
    for (auto& p : batch) res.patterns.push_back(std::move(p));
  }
  res.patterns_before_compaction = static_cast<int>(res.patterns.size());

  // ---- phase 3: reverse-order static compaction ----
  if (opts.static_compaction && !res.patterns.empty()) {
    for (Fault& f : res.faults.faults) {
      if (f.status == FaultStatus::kDetected) f.status = FaultStatus::kUndetected;
    }
    std::vector<char> keep(res.patterns.size(), 0);
    const std::size_t n = res.patterns.size();
    std::size_t processed = 0;
    while (processed < n) {
      const std::size_t count = std::min<std::size_t>(kWordBits, n - processed);
      // Bit k of the batch = pattern (n-1-processed-k): reverse order.
      std::vector<const TestPattern*> refs;
      std::vector<std::size_t> ids;
      for (std::size_t k = 0; k < count; ++k) {
        const std::size_t idx = n - 1 - processed - k;
        refs.push_back(&res.patterns[idx]);
        ids.push_back(idx);
      }
      std::vector<Word> words;
      pack_batch(refs, num_inputs, words);
      fsim.load_batch(words);
      for (Fault& f : res.faults.faults) {
        if (f.status == FaultStatus::kDetected || f.status == FaultStatus::kScanTested) continue;
        const Word d = fsim.detects(f);
        if (d == 0) continue;
        f.status = FaultStatus::kDetected;
        const int first = std::countr_zero(d);
        keep[ids[static_cast<std::size_t>(first)]] = 1;
      }
      processed += count;
    }
    std::vector<TestPattern> kept;
    kept.reserve(res.patterns.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (keep[i]) kept.push_back(std::move(res.patterns[i]));
    }
    res.patterns = std::move(kept);
  }

  // ---- metrics ----
  res.detected = res.faults.count_equiv(FaultStatus::kDetected);
  res.scan_tested = res.faults.count_equiv(FaultStatus::kScanTested);
  res.redundant = res.faults.count_equiv(FaultStatus::kRedundant);
  res.aborted = res.faults.count_equiv(FaultStatus::kAborted);
  const double total = static_cast<double>(res.total_faults);
  if (total > 0) {
    res.fault_coverage_pct = 100.0 * static_cast<double>(res.detected + res.scan_tested) / total;
    res.fault_efficiency_pct =
        100.0 * static_cast<double>(res.detected + res.scan_tested + res.redundant) / total;
  }
  log_info() << "ATPG " << model.netlist().name() << ": " << res.patterns.size()
             << " patterns (" << res.patterns_before_compaction << " pre-compaction), FC="
             << res.fault_coverage_pct << "% FE=" << res.fault_efficiency_pct << "%";
  return res;
}

std::int64_t test_data_volume(int num_chains, int max_chain_length, int num_patterns) {
  const std::int64_t n = num_chains, l = max_chain_length, p = num_patterns;
  return 2 * n * ((l + 1) * p + l);
}

std::int64_t test_application_time(int max_chain_length, int num_patterns) {
  const std::int64_t l = max_chain_length, p = num_patterns;
  return (l + 1) * p + l;
}

}  // namespace tpi
