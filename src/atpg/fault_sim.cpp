#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <future>

#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tpi {

FaultSimulator::FaultSimulator(const CombModel& model) : model_(&model), good_(model) {
  fval_.assign(model.num_nets(), 0);
  stamp_.assign(model.num_nets(), 0);
  queued_.assign(model.nodes().size(), 0);
  observed_.assign(model.num_nets(), 0);
  for (const NetId n : model.observe_nets()) observed_[static_cast<std::size_t>(n)] = 1;
}

void FaultSimulator::load_batch(const std::vector<Word>& input_words) {
  good_.load_inputs(input_words);
  good_.run();
}

void FaultSimulator::copy_good_from(const FaultSimulator& other) {
  assert(model_ == other.model_);
  good_.assign_values(other.good_.values());
}

void FaultSimulator::schedule(int node_index) {
  const auto i = static_cast<std::size_t>(node_index);
  if (queued_[i] == epoch_) return;
  queued_[i] = epoch_;
  ++stats_.events;
  heap_.push_back(node_index);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void FaultSimulator::schedule_readers(NetId net, int skip_node) {
  for (const int reader : model_->readers_of(net)) {
    if (reader == skip_node) continue;
    // Cone limit: never propagate into logic no observe point can see (a
    // reader's output outside every observe cone implies its whole fanout
    // cone is outside too, so the cut is complete, not just a heuristic).
    const NetId out = model_->nodes()[static_cast<std::size_t>(reader)].out;
    if (out != kNoNet && !model_->net_reaches_observe(out)) continue;
    schedule(reader);
  }
}

Word FaultSimulator::detects(const Fault& fault) {
  ++stats_.faults_graded;
  // Cone limit: a fault whose site reaches no observe net is undetectable
  // by any pattern of any batch.
  if (!model_->net_reaches_observe(fault.net)) {
    ++stats_.cone_skips;
    return 0;
  }
  ++epoch_;
  heap_.clear();
  Word detect = 0;

  const Word stuck = fault.stuck1 ? ~Word{0} : Word{0};
  int branch_reader = -1;

  if (fault.is_stem()) {
    const Word g = good_.value(fault.net);
    if (g == stuck) return 0;  // no pattern activates the fault
    set_faulty(fault.net, stuck);
    if (observed_[static_cast<std::size_t>(fault.net)]) detect |= g ^ stuck;
    schedule_readers(fault.net);
  } else {
    // Branch fault: only the one sink pin sees the stuck value. If the sink
    // is a flip-flop D pin (not a logic node) the fault is directly
    // captured whenever the good value differs.
    const CellSpec* spec = model_->netlist().cell(fault.branch.cell).spec;
    const bool logic_reader = [&] {
      for (const int reader : model_->readers_of(fault.net)) {
        if (model_->nodes()[static_cast<std::size_t>(reader)].cell == fault.branch.cell) {
          branch_reader = reader;
          return true;
        }
      }
      return false;
    }();
    const Word g = good_.value(fault.net);
    if (g == stuck) return 0;
    if (!logic_reader) {
      // FF D-pin branch (or PO branch): captured directly.
      const bool seq_d = spec->sequential && fault.branch.pin == spec->d_pin;
      return seq_d ? (g ^ stuck) : 0;
    }
    // Evaluate the branch reader with the forced input value.
    const CombNode& node = model_->nodes()[static_cast<std::size_t>(branch_reader)];
    if (node.out != kNoNet && !model_->net_reaches_observe(node.out)) {
      // The branch cone is dead even though the stem has live siblings.
      ++stats_.cone_skips;
      return 0;
    }
    Word in[4];
    for (int i = 0; i < node.num_inputs; ++i) {
      in[i] = node.in[i] == fault.net ? stuck : good_.value(node.in[i]);
    }
    Word sel = 0;
    if (node.sel != kNoNet) sel = node.sel == fault.net ? stuck : good_.value(node.sel);
    ++stats_.node_evals;
    const Word out = eval_node_word(node, in, sel);
    if (node.out == kNoNet || out == good_.value(node.out)) return 0;
    set_faulty(node.out, out);
    if (observed_[static_cast<std::size_t>(node.out)]) detect |= out ^ good_.value(node.out);
    schedule_readers(node.out);
  }

  // Event-driven propagation in topological order.
  Word in[4];
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int ni = heap_.back();
    heap_.pop_back();
    const CombNode& node = model_->nodes()[static_cast<std::size_t>(ni)];
    if (node.out == kNoNet) continue;
    // The branch-fault injection must persist if the reader re-evaluates.
    const Word stuck_w = fault.stuck1 ? ~Word{0} : Word{0};
    const bool inject_here = (ni == branch_reader);
    for (int i = 0; i < node.num_inputs; ++i) {
      in[i] = (inject_here && node.in[i] == fault.net) ? stuck_w : faulty_value(node.in[i]);
    }
    Word sel = 0;
    if (node.sel != kNoNet) {
      sel = (inject_here && node.sel == fault.net) ? stuck_w : faulty_value(node.sel);
    }
    ++stats_.node_evals;
    const Word out = eval_node_word(node, in, sel);
    if (out == faulty_value(node.out)) continue;  // no change
    set_faulty(node.out, out);
    const Word diff = out ^ good_.value(node.out);
    if (diff != 0 && observed_[static_cast<std::size_t>(node.out)]) detect |= diff;
    schedule_readers(node.out);
  }
  return detect;
}

Word FaultSimulator::drop_detected(std::vector<Fault*>& faults) {
  Word useful = 0;
  for (Fault* f : faults) {
    // kRedundant stays eligible: simulation evidence of detection overrides
    // a (heuristically pruned) redundancy proof.
    if (f->status == FaultStatus::kDetected || f->status == FaultStatus::kScanTested) continue;
    const Word d = detects(*f);
    if (d != 0) {
      f->status = FaultStatus::kDetected;
      useful |= first_detecting_bit(d);  // credit the first detecting pattern
    }
  }
  return useful;
}

FaultSimBank::FaultSimBank(const CombModel& model, int jobs) {
  unsigned n = jobs <= 0 ? ThreadPool::default_concurrency() : static_cast<unsigned>(jobs);
  if (n < 1) n = 1;
  sims_.reserve(n);
  for (unsigned i = 0; i < n; ++i) sims_.push_back(std::make_unique<FaultSimulator>(model));
  if (n > 1) pool_ = std::make_unique<ThreadPool>(n);
}

FaultSimBank::~FaultSimBank() = default;

void FaultSimBank::load_batch(const std::vector<Word>& input_words) {
  sims_.front()->load_batch(input_words);
  for (std::size_t i = 1; i < sims_.size(); ++i) sims_[i]->copy_good_from(*sims_.front());
}

void FaultSimBank::grade(const std::vector<Fault*>& faults, std::vector<Word>& detect) {
  const std::size_t n = faults.size();
  detect.resize(n);
  const std::size_t workers = sims_.size();
  // Tiny lists are not worth the dispatch; the result is identical either
  // way (each fault is graded exactly once, output indexed by position).
  if (pool_ == nullptr || n < static_cast<std::size_t>(kWordBits) * workers) {
    FaultSimulator& sim = *sims_.front();
    for (std::size_t i = 0; i < n; ++i) detect[i] = sim.detects(*faults[i]);
    return;
  }
  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t c = 0; c < workers; ++c) {
    const std::size_t lo = n * c / workers;
    const std::size_t hi = n * (c + 1) / workers;
    if (lo == hi) continue;
    done.push_back(pool_->submit([this, &faults, &detect, c, lo, hi] {
      TPI_SPAN("atpg.grade_chunk");
      FaultSimulator& sim = *sims_[c];
      for (std::size_t i = lo; i < hi; ++i) detect[i] = sim.detects(*faults[i]);
    }));
  }
  for (auto& f : done) f.get();
}

FaultSimBank::DropOutcome FaultSimBank::grade_and_drop(std::vector<Fault*>& live) {
  grade(live, detect_buf_);
  DropOutcome out;
  std::size_t w = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    Fault* f = live[i];
    const Word d = detect_buf_[i];
    if (d == 0) {
      live[w++] = f;
      continue;
    }
    if (f->status == FaultStatus::kUndetected) out.equiv_dropped += f->equiv_count;
    f->status = FaultStatus::kDetected;
    out.useful |= first_detecting_bit(d);
  }
  live.resize(w);
  return out;
}

FaultSimStats FaultSimBank::take_stats() {
  FaultSimStats total;
  for (auto& sim : sims_) {
    total += sim->stats();
    sim->reset_stats();
  }
  return total;
}

}  // namespace tpi
