#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <cassert>

namespace tpi {

FaultSimulator::FaultSimulator(const CombModel& model) : model_(&model), good_(model) {
  fval_.assign(model.num_nets(), 0);
  stamp_.assign(model.num_nets(), 0);
  queued_.assign(model.nodes().size(), 0);
  observed_.assign(model.num_nets(), 0);
  for (const NetId n : model.observe_nets()) observed_[static_cast<std::size_t>(n)] = 1;
}

void FaultSimulator::load_batch(const std::vector<Word>& input_words) {
  good_.load_inputs(input_words);
  good_.run();
}

void FaultSimulator::schedule(int node_index) {
  const auto i = static_cast<std::size_t>(node_index);
  if (queued_[i] == epoch_) return;
  queued_[i] = epoch_;
  heap_.push_back(node_index);
  std::push_heap(heap_.begin(), heap_.end(), std::greater<>());
}

void FaultSimulator::schedule_readers(NetId net, int skip_node) {
  for (const int reader : model_->readers_of(net)) {
    if (reader != skip_node) schedule(reader);
  }
}

Word FaultSimulator::detects(const Fault& fault) {
  ++epoch_;
  heap_.clear();
  Word detect = 0;

  const Word stuck = fault.stuck1 ? ~Word{0} : Word{0};
  int branch_reader = -1;

  if (fault.is_stem()) {
    const Word g = good_.value(fault.net);
    if (g == stuck) return 0;  // no pattern activates the fault
    set_faulty(fault.net, stuck);
    if (observed_[static_cast<std::size_t>(fault.net)]) detect |= g ^ stuck;
    schedule_readers(fault.net);
  } else {
    // Branch fault: only the one sink pin sees the stuck value. If the sink
    // is a flip-flop D pin (not a logic node) the fault is directly
    // captured whenever the good value differs.
    const CellSpec* spec = model_->netlist().cell(fault.branch.cell).spec;
    const bool logic_reader = [&] {
      for (const int reader : model_->readers_of(fault.net)) {
        if (model_->nodes()[static_cast<std::size_t>(reader)].cell == fault.branch.cell) {
          branch_reader = reader;
          return true;
        }
      }
      return false;
    }();
    const Word g = good_.value(fault.net);
    if (g == stuck) return 0;
    if (!logic_reader) {
      // FF D-pin branch (or PO branch): captured directly.
      const bool seq_d = spec->sequential && fault.branch.pin == spec->d_pin;
      return seq_d ? (g ^ stuck) : 0;
    }
    // Evaluate the branch reader with the forced input value.
    const CombNode& node = model_->nodes()[static_cast<std::size_t>(branch_reader)];
    Word in[4];
    for (int i = 0; i < node.num_inputs; ++i) {
      in[i] = node.in[i] == fault.net ? stuck : good_.value(node.in[i]);
    }
    Word sel = 0;
    if (node.sel != kNoNet) sel = node.sel == fault.net ? stuck : good_.value(node.sel);
    const Word out = eval_node_word(node, in, sel);
    if (node.out == kNoNet || out == good_.value(node.out)) return 0;
    set_faulty(node.out, out);
    if (observed_[static_cast<std::size_t>(node.out)]) detect |= out ^ good_.value(node.out);
    schedule_readers(node.out);
  }

  // Event-driven propagation in topological order.
  Word in[4];
  while (!heap_.empty()) {
    std::pop_heap(heap_.begin(), heap_.end(), std::greater<>());
    const int ni = heap_.back();
    heap_.pop_back();
    const CombNode& node = model_->nodes()[static_cast<std::size_t>(ni)];
    if (node.out == kNoNet) continue;
    // The branch-fault injection must persist if the reader re-evaluates.
    const Word stuck_w = fault.stuck1 ? ~Word{0} : Word{0};
    const bool inject_here = (ni == branch_reader);
    for (int i = 0; i < node.num_inputs; ++i) {
      in[i] = (inject_here && node.in[i] == fault.net) ? stuck_w : faulty_value(node.in[i]);
    }
    Word sel = 0;
    if (node.sel != kNoNet) {
      sel = (inject_here && node.sel == fault.net) ? stuck_w : faulty_value(node.sel);
    }
    const Word out = eval_node_word(node, in, sel);
    if (out == faulty_value(node.out)) continue;  // no change
    set_faulty(node.out, out);
    const Word diff = out ^ good_.value(node.out);
    if (diff != 0 && observed_[static_cast<std::size_t>(node.out)]) detect |= diff;
    schedule_readers(node.out);
  }
  return detect;
}

Word FaultSimulator::drop_detected(std::vector<Fault*>& faults) {
  Word useful = 0;
  for (Fault* f : faults) {
    // kRedundant stays eligible: simulation evidence of detection overrides
    // a (heuristically pruned) redundancy proof.
    if (f->status == FaultStatus::kDetected || f->status == FaultStatus::kScanTested) continue;
    const Word d = detects(*f);
    if (d != 0) {
      f->status = FaultStatus::kDetected;
      useful |= d & (~d + 1);  // credit the first detecting pattern
    }
  }
  return useful;
}

}  // namespace tpi
