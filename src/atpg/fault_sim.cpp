#include "atpg/fault_sim.hpp"

#include <algorithm>
#include <cassert>
#include <future>

#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tpi {

FaultSimulator::FaultSimulator(const CombModel& model) : model_(&model), good_(model) {
  scratch_.prepare(model, good_.lane_words());
}

void FaultSimulator::configure_lanes(int lane_words) {
  if (lane_words == good_.lane_words()) return;
  good_.configure_lanes(lane_words);
  scratch_.prepare(*model_, lane_words);
}

void FaultSimulator::load_batch(const std::vector<Word>& input_words) {
  good_.load_inputs(input_words);
  good_.run();
  has_launch_ = false;
}

void FaultSimulator::load_batch_loc(const std::vector<Word>& input_words) {
  good_.load_inputs(input_words);
  good_.run();
  launch_values_ = good_.values();  // V1 frame, net-major
  const CombModel& m = *model_;
  const std::size_t nw = static_cast<std::size_t>(lane_words());
  capture_inputs_ = input_words;  // PIs held across launch and capture
  const std::size_t nff = m.boundary_ffs().size();
  for (std::size_t i = 0; i < nff; ++i) {
    const NetId d = m.observe_nets()[m.num_po_observes() + i];
    const Word* w = launch_values_.data() + static_cast<std::size_t>(d) * nw;
    for (std::size_t j = 0; j < nw; ++j) {
      capture_inputs_[(m.num_pi_inputs() + i) * nw + j] = w[j];
    }
  }
  good_.load_inputs(capture_inputs_);
  good_.run();
  has_launch_ = true;
}

void FaultSimulator::copy_good_from(const FaultSimulator& other) {
  assert(model_ == other.model_);
  configure_lanes(other.lane_words());
  good_.assign_values(other.good_.values());
  has_launch_ = other.has_launch_;
  if (has_launch_) launch_values_ = other.launch_values_;
}

FaultTask resolve_fault_task(const CombModel& model, const Fault& fault) {
  FaultTask task;
  task.net = fault.net;
  task.stuck1 = fault.stuck1;
  if (fault.is_stem()) return task;
  for (const int reader : model.readers_of(fault.net)) {
    if (model.nodes()[static_cast<std::size_t>(reader)].cell == fault.branch.cell) {
      task.branch_reader = reader;
      return task;
    }
  }
  // No logic reader: an FF D-pin branch is captured directly whenever the
  // good value differs; any other sink (PO branch, scan pin) is dead.
  const CellSpec* spec = model.netlist().cell(fault.branch.cell).spec;
  if (spec->sequential && fault.branch.pin == spec->d_pin) {
    task.direct_capture = true;
  } else {
    task.dead_branch = true;
  }
  return task;
}

FaultTask FaultSimulator::resolve(const Fault& fault) const {
  return resolve_fault_task(*model_, fault);
}

Word FaultSimulator::detects(const Fault& fault) {
  Word out[kMaxLaneWords];
  detects_wide(fault, out);
  return out[0];
}

void FaultSimulator::apply_launch_mask(const Fault& fault, Word* detect) const {
  if (fault.model != FaultModel::kTransition) return;
  const std::size_t nw = static_cast<std::size_t>(lane_words());
  if (!has_launch_) {
    for (std::size_t j = 0; j < nw; ++j) detect[j] = 0;
    return;
  }
  const Word* launch = launch_values_.data() + static_cast<std::size_t>(fault.net) * nw;
  for (std::size_t j = 0; j < nw; ++j) {
    // Slow-to-fall needs launch 1 at the site; slow-to-rise needs launch 0.
    detect[j] &= fault.stuck1 ? launch[j] : ~launch[j];
  }
}

void FaultSimulator::detects_wide(const Fault& fault, Word* out) {
  const FaultTask task = resolve(fault);
  sim_kernels().grade(*model_, scratch_, good_.values().data(), &task, 1, out, stats_);
  apply_launch_mask(fault, out);
}

void FaultSimulator::grade(const Fault* const* faults, std::size_t count, Word* detect) {
  tasks_.resize(count);
  for (std::size_t i = 0; i < count; ++i) tasks_[i] = resolve(*faults[i]);
  sim_kernels().grade(*model_, scratch_, good_.values().data(), tasks_.data(), count, detect,
                      stats_);
  const std::size_t nw = static_cast<std::size_t>(lane_words());
  for (std::size_t i = 0; i < count; ++i) {
    apply_launch_mask(*faults[i], detect + i * nw);
  }
}

Word FaultSimulator::drop_detected(std::vector<Fault*>& faults) {
  Word useful = 0;
  for (Fault* f : faults) {
    // kRedundant stays eligible: simulation evidence of detection overrides
    // a (heuristically pruned) redundancy proof.
    if (f->status == FaultStatus::kDetected || f->status == FaultStatus::kScanTested) continue;
    const Word d = detects(*f);
    if (d != 0) {
      f->status = FaultStatus::kDetected;
      useful |= first_detecting_bit(d);  // credit the first detecting pattern
    }
  }
  return useful;
}

FaultSimBank::FaultSimBank(const CombModel& model, int jobs) {
  unsigned n = jobs <= 0 ? ThreadPool::default_concurrency() : static_cast<unsigned>(jobs);
  if (n < 1) n = 1;
  sims_.reserve(n);
  for (unsigned i = 0; i < n; ++i) sims_.push_back(std::make_unique<FaultSimulator>(model));
  if (n > 1) pool_ = std::make_unique<ThreadPool>(n);
}

FaultSimBank::~FaultSimBank() = default;

void FaultSimBank::configure_lanes(int lane_words) {
  for (auto& sim : sims_) sim->configure_lanes(lane_words);
}

void FaultSimBank::load_batch(const std::vector<Word>& input_words) {
  sims_.front()->load_batch(input_words);
  for (std::size_t i = 1; i < sims_.size(); ++i) sims_[i]->copy_good_from(*sims_.front());
}

void FaultSimBank::load_batch_loc(const std::vector<Word>& input_words) {
  sims_.front()->load_batch_loc(input_words);
  for (std::size_t i = 1; i < sims_.size(); ++i) sims_[i]->copy_good_from(*sims_.front());
}

void FaultSimBank::grade(const std::vector<Fault*>& faults, std::vector<Word>& detect) {
  const std::size_t n = faults.size();
  const std::size_t nw = static_cast<std::size_t>(lane_words());
  detect.resize(n * nw);
  const std::size_t workers = sims_.size();
  // Tiny lists are not worth the dispatch; the result is identical either
  // way (each fault is graded exactly once, output indexed by position).
  if (pool_ == nullptr || n < static_cast<std::size_t>(kWordBits) * workers) {
    sims_.front()->grade(faults.data(), n, detect.data());
    return;
  }
  std::vector<std::future<void>> done;
  done.reserve(workers);
  for (std::size_t c = 0; c < workers; ++c) {
    const std::size_t lo = n * c / workers;
    const std::size_t hi = n * (c + 1) / workers;
    if (lo == hi) continue;
    done.push_back(pool_->submit([this, &faults, &detect, nw, c, lo, hi] {
      TPI_SPAN("atpg.grade_chunk");
      sims_[c]->grade(faults.data() + lo, hi - lo, detect.data() + lo * nw);
    }));
  }
  for (auto& f : done) f.get();
}

FaultSimBank::DropOutcome FaultSimBank::grade_and_drop(std::vector<Fault*>& live) {
  grade(live, detect_buf_);
  const std::size_t nw = static_cast<std::size_t>(lane_words());
  DropOutcome out;
  std::size_t w = 0;
  for (std::size_t i = 0; i < live.size(); ++i) {
    Fault* f = live[i];
    Word any = 0;
    for (std::size_t j = 0; j < nw; ++j) any |= detect_buf_[i * nw + j];
    if (any == 0) {
      live[w++] = f;
      continue;
    }
    if (f->status == FaultStatus::kUndetected) out.equiv_dropped += f->equiv_count;
    f->status = FaultStatus::kDetected;
    out.useful |= first_detecting_bit(detect_buf_[i * nw]);
  }
  live.resize(w);
  return out;
}

FaultSimStats FaultSimBank::take_stats() {
  FaultSimStats total;
  for (auto& sim : sims_) {
    total += sim->stats();
    sim->reset_stats();
  }
  return total;
}

}  // namespace tpi
