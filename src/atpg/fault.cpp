#include "atpg/fault.hpp"

#include <unordered_map>

namespace tpi {
namespace {

// Is this sink pin part of the scan/clock infrastructure (tested by scan
// shift and flush tests, not by capture patterns)?
bool is_scan_pin(const Netlist& nl, const PinRef& ref) {
  const CellSpec* spec = nl.cell(ref.cell).spec;
  if (spec->pins[static_cast<std::size_t>(ref.pin)].is_clock) return true;
  return ref.pin == spec->ti_pin || ref.pin == spec->te_pin || ref.pin == spec->tr_pin;
}

struct Key {
  NetId net;
  int sink;  // -1 = stem, else index into net.sinks
  bool stuck1;
  bool operator==(const Key&) const = default;
};

struct KeyHash {
  std::size_t operator()(const Key& k) const {
    return (static_cast<std::size_t>(k.net) * 2654435761u) ^
           (static_cast<std::size_t>(k.sink + 1) << 1) ^ static_cast<std::size_t>(k.stuck1);
  }
};

}  // namespace

namespace {

// Transitive closure of "feeds only scan/clock infrastructure": a net whose
// every load is a scan pin, or the input of a buffer/inverter whose output
// is itself scan-only. Catches the scan-enable buffer trees (flow step 3).
std::vector<char> scan_only_nets(const Netlist& nl) {
  std::vector<char> scan_only(nl.num_nets(), 0);
  bool changed = true;
  while (changed) {
    changed = false;
    for (std::size_t ni = 0; ni < nl.num_nets(); ++ni) {
      if (scan_only[ni]) continue;
      const Net& net = nl.net(static_cast<NetId>(ni));
      if (!net.po_sinks.empty() || net.fanout() == 0) continue;
      bool all_scan = true;
      for (const PinRef& s : net.sinks) {
        if (is_scan_pin(nl, s)) continue;
        const CellInst& inst = nl.cell(s.cell);
        const CellFunc f = inst.spec->func;
        const NetId out = inst.output_net();
        if ((f == CellFunc::kBuf || f == CellFunc::kInv || f == CellFunc::kClkBuf) &&
            out != kNoNet && scan_only[static_cast<std::size_t>(out)]) {
          continue;
        }
        all_scan = false;
        break;
      }
      if (all_scan) {
        scan_only[ni] = 1;
        changed = true;
      }
    }
  }
  return scan_only;
}

}  // namespace

const char* fault_model_name(FaultModel model) {
  switch (model) {
    case FaultModel::kStuckAt: return "stuck_at";
    case FaultModel::kTransition: return "transition";
  }
  return "?";
}

std::optional<FaultModel> fault_model_from_name(std::string_view name) {
  if (name == "stuck_at") return FaultModel::kStuckAt;
  if (name == "transition") return FaultModel::kTransition;
  return std::nullopt;
}

FaultList build_fault_list(const CombModel& model) {
  return build_fault_list(model, FaultModel::kStuckAt);
}

FaultList build_fault_list(const CombModel& model, FaultModel fault_model) {
  const Netlist& nl = model.netlist();
  FaultList out;
  const std::vector<char> scan_only = scan_only_nets(nl);

  // Uncollapsed universe: 2 faults per connected cell pin + 2 per PI.
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    const CellInst& inst = nl.cell(static_cast<CellId>(c));
    if (inst.spec->func == CellFunc::kFiller) continue;
    for (const NetId n : inst.conn) {
      if (n != kNoNet) out.total_uncollapsed += 2;
    }
  }
  out.total_uncollapsed += static_cast<std::int64_t>(nl.num_pis()) * 2;

  // Representatives: stem faults per driven net; branch faults per sink pin
  // of multi-fanout nets. equiv_count starts with the pins each represents.
  std::vector<Fault> faults;
  std::unordered_map<Key, int, KeyHash> index;
  auto add_fault = [&](NetId net, int sink, bool stuck1, int equiv, bool scan_tested) {
    Fault f;
    f.net = net;
    f.branch = sink >= 0 ? nl.net(net).sinks[static_cast<std::size_t>(sink)] : PinRef{};
    f.stuck1 = stuck1;
    f.model = fault_model;
    f.equiv_count = equiv;
    if (scan_tested) f.status = FaultStatus::kScanTested;
    index.emplace(Key{net, sink, stuck1}, static_cast<int>(faults.size()));
    faults.push_back(f);
  };

  for (std::size_t ni = 0; ni < nl.num_nets(); ++ni) {
    const NetId net_id = static_cast<NetId>(ni);
    const Net& net = nl.net(net_id);
    const bool has_driver = net.driver.valid() || net.driven_by_pi();
    if (!has_driver) continue;
    const bool clock = nl.is_clock_net(net_id) || scan_only[ni];
    const bool multi = net.fanout() > 1;

    int stem_equiv = 1;  // the driver pin (or PI)
    bool stem_scan = clock;
    if (!multi) {
      // Single-fanout: the sink pin fault is identical to the stem fault.
      stem_equiv += static_cast<int>(net.sinks.size());
      if (!net.sinks.empty() && is_scan_pin(nl, net.sinks.front())) stem_scan = true;
    } else {
      // A stem whose every load is scan infrastructure (e.g. a scan-enable
      // net) is exercised by shift/flush, not capture.
      bool all_scan = net.po_sinks.empty();
      for (const PinRef& s : net.sinks) all_scan = all_scan && is_scan_pin(nl, s);
      stem_scan = stem_scan || all_scan;
    }
    add_fault(net_id, -1, false, stem_equiv, stem_scan);
    add_fault(net_id, -1, true, stem_equiv, stem_scan);
    if (multi) {
      for (std::size_t s = 0; s < net.sinks.size(); ++s) {
        const bool scan = clock || is_scan_pin(nl, net.sinks[s]);
        add_fault(net_id, static_cast<int>(s), false, 1, scan);
        add_fault(net_id, static_cast<int>(s), true, 1, scan);
      }
    }
  }

  // Gate-level equivalence collapsing, forward in topo order so chains of
  // folds accumulate into the furthest-downstream representative.
  auto find = [&](NetId net, int sink, bool stuck1) -> Fault* {
    const auto it = index.find(Key{net, sink, stuck1});
    return it == index.end() ? nullptr : &faults[static_cast<std::size_t>(it->second)];
  };
  auto fold = [&](NetId in_net, int in_sink, bool in_stuck1, NetId out_net, bool out_stuck1) {
    Fault* src = find(in_net, in_sink, in_stuck1);
    Fault* dst = find(out_net, -1, out_stuck1);
    if (src == nullptr || dst == nullptr || src == dst) return;
    if (src->equiv_count == 0) return;  // already folded
    if (src->status != dst->status) return;  // never merge scan with logic
    dst->equiv_count += src->equiv_count;
    src->equiv_count = 0;
  };

  for (const CombNode& node : model.nodes()) {
    if (node.out == kNoNet) continue;
    // Locate each input's fault key: stem when single-fanout, else branch.
    auto input_key = [&](NetId in_net, int* sink_out) -> bool {
      const Net& in = nl.net(in_net);
      if (in.fanout() > 1) {
        for (std::size_t s = 0; s < in.sinks.size(); ++s) {
          if (in.sinks[s].cell == node.cell) {
            // Match the logic pin reading this net on this node.
            *sink_out = static_cast<int>(s);
            return true;
          }
        }
        return false;
      }
      *sink_out = -1;
      return true;
    };
    for (int i = 0; i < node.num_inputs; ++i) {
      const NetId in_net = node.in[i];
      int sink = -1;
      if (!input_key(in_net, &sink)) continue;
      switch (node.func) {
        case CellFunc::kBuf:
        case CellFunc::kClkBuf:
          fold(in_net, sink, false, node.out, false);
          fold(in_net, sink, true, node.out, true);
          break;
        case CellFunc::kInv:
          fold(in_net, sink, false, node.out, true);
          fold(in_net, sink, true, node.out, false);
          break;
        default:
          break;  // XOR/XNOR/MUX/TSFF: no structural equivalence
      }
      // Controlling-value folds hold for stuck-at only: an input transition
      // is not equivalent to an output transition through AND/OR gates.
      if (fault_model != FaultModel::kStuckAt) continue;
      switch (node.func) {
        case CellFunc::kAnd:
          fold(in_net, sink, false, node.out, false);
          break;
        case CellFunc::kNand:
          fold(in_net, sink, false, node.out, true);
          break;
        case CellFunc::kOr:
          fold(in_net, sink, true, node.out, true);
          break;
        case CellFunc::kNor:
          fold(in_net, sink, true, node.out, false);
          break;
        default:
          break;  // XOR/XNOR/MUX/TSFF: no structural equivalence
      }
    }
  }

  out.faults.reserve(faults.size());
  for (Fault& f : faults) {
    if (f.equiv_count > 0) out.faults.push_back(f);
  }
  return out;
}

}  // namespace tpi
