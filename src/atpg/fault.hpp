// Pluggable fault models with equivalence collapsing.
//
// The fault universe follows industrial practice (and the paper's Table 1
// "#faults" column): two faults per connected cell pin, plus two per
// primary input. Faults on scan infrastructure (TI/TE/TR pins, clock
// pins and pure scan-routing nets) are classified as tested by the scan
// shift/flush tests rather than by ATPG patterns — this is why the paper's
// fault coverage *rises* slightly with TPI: test points add easy faults.
//
// Two models share that universe:
//
//  * kStuckAt — the paper's model: a net permanently holds 0/1.
//  * kTransition — gross-delay faults under launch-on-capture: stuck1 =
//    false is slow-to-rise (the net fails to make its 0→1 transition by
//    the capture edge), stuck1 = true is slow-to-fall. A transition fault
//    behaves as the corresponding stuck-at fault in the *capture* frame,
//    conditioned on the opposite value in the *launch* frame — which is
//    exactly how the two-cycle fault simulation grades it.
//
// Collapsing differs per model: stuck-at folds through buffers, inverters
// and controlling values of AND/NAND/OR/NOR; transition faults only fold
// through buffers and inverters (a controlling input value blocks the
// gate, but an input *transition* is not equivalent to an output
// transition, so the controlling-value folds are invalid).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

#include "sim/comb_model.hpp"

namespace tpi {

enum class FaultModel : std::uint8_t {
  kStuckAt,     ///< single stuck-at (the paper's model; the default)
  kTransition,  ///< transition delay under launch-on-capture
};

/// Canonical "stuck_at" | "transition" spelling (FlowConfig JSON / env).
const char* fault_model_name(FaultModel model);
/// Inverse of fault_model_name; nullopt for unknown spellings.
std::optional<FaultModel> fault_model_from_name(std::string_view name);

enum class FaultStatus : std::uint8_t {
  kUndetected,
  kDetected,    ///< detected by an ATPG pattern
  kScanTested,  ///< covered by scan shift / flush tests
  kRedundant,   ///< proven untestable by PODEM
  kAborted,     ///< PODEM gave up (backtrack limit)
};

struct Fault {
  NetId net = kNoNet;   ///< fault site
  PinRef branch;        ///< specific sink pin; invalid = stem (driver side)
  /// kStuckAt: true = stuck-at-1. kTransition: true = slow-to-fall (the
  /// capture-frame equivalent stuck value is the same bit either way).
  bool stuck1 = false;
  FaultModel model = FaultModel::kStuckAt;
  FaultStatus status = FaultStatus::kUndetected;
  /// Number of uncollapsed faults this representative stands for (>= 1).
  std::int32_t equiv_count = 1;

  bool is_stem() const { return !branch.valid(); }
};

struct FaultList {
  std::vector<Fault> faults;           ///< collapsed representatives
  std::int64_t total_uncollapsed = 0;  ///< full universe size (Table 1 "#faults")

  std::int64_t count_equiv(FaultStatus s) const {
    std::int64_t n = 0;
    for (const Fault& f : faults) {
      if (f.status == s) n += f.equiv_count;
    }
    return n;
  }
  std::size_t count(FaultStatus s) const {
    std::size_t n = 0;
    for (const Fault& f : faults) n += (f.status == s);
    return n;
  }
};

/// Build the collapsed fault list for the capture-view model. The default
/// is the stuck-at universe; kTransition builds the same sites with the
/// transition-only (buffer/inverter) collapsing and every Fault::model set.
FaultList build_fault_list(const CombModel& model);
FaultList build_fault_list(const CombModel& model, FaultModel fault_model);

}  // namespace tpi
