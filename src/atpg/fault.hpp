// Single stuck-at fault model with equivalence collapsing.
//
// The fault universe follows industrial practice (and the paper's Table 1
// "#faults" column): two stuck-at faults per connected cell pin, plus two
// per primary input. Faults on scan infrastructure (TI/TE/TR pins, clock
// pins and pure scan-routing nets) are classified as tested by the scan
// shift/flush tests rather than by ATPG patterns — this is why the paper's
// fault coverage *rises* slightly with TPI: test points add easy faults.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/comb_model.hpp"

namespace tpi {

enum class FaultStatus : std::uint8_t {
  kUndetected,
  kDetected,    ///< detected by an ATPG pattern
  kScanTested,  ///< covered by scan shift / flush tests
  kRedundant,   ///< proven untestable by PODEM
  kAborted,     ///< PODEM gave up (backtrack limit)
};

struct Fault {
  NetId net = kNoNet;   ///< fault site
  PinRef branch;        ///< specific sink pin; invalid = stem (driver side)
  bool stuck1 = false;  ///< true = stuck-at-1
  FaultStatus status = FaultStatus::kUndetected;
  /// Number of uncollapsed faults this representative stands for (>= 1).
  std::int32_t equiv_count = 1;

  bool is_stem() const { return !branch.valid(); }
};

struct FaultList {
  std::vector<Fault> faults;           ///< collapsed representatives
  std::int64_t total_uncollapsed = 0;  ///< full universe size (Table 1 "#faults")

  std::int64_t count_equiv(FaultStatus s) const {
    std::int64_t n = 0;
    for (const Fault& f : faults) {
      if (f.status == s) n += f.equiv_count;
    }
    return n;
  }
  std::size_t count(FaultStatus s) const {
    std::size_t n = 0;
    for (const Fault& f : faults) n += (f.status == s);
    return n;
  }
};

/// Build the collapsed fault list for the capture-view model.
FaultList build_fault_list(const CombModel& model);

}  // namespace tpi
