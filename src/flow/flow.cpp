#include "flow/flow.hpp"

#include <cmath>

#include "circuits/generator.hpp"
#include "extraction/extraction.hpp"
#include "layout/placement.hpp"
#include "scan/scan.hpp"
#include "sim/comb_model.hpp"
#include "util/log.hpp"

namespace tpi {
namespace {

std::vector<std::pair<double, double>> cell_positions(const Netlist& nl, const Placement& pl) {
  std::vector<std::pair<double, double>> pos(nl.num_cells(), {0.0, 0.0});
  for (std::size_t c = 0; c < nl.num_cells() && c < pl.pos.size(); ++c) {
    pos[c] = {pl.pos[c].x, pl.pos[c].y};
  }
  return pos;
}

// Pre-TPI timing pass for timing-driven TPI (§5): quick layout + STA on the
// unmodified netlist to find the small-slack nets.
std::unordered_set<NetId> small_slack_nets(const Netlist& nl, const CircuitProfile& profile,
                                           double slack_threshold_ps) {
  // Work on a throwaway layout of the same netlist (no edits needed: the
  // analysis is read-only).
  FloorplanOptions fpo;
  fpo.target_row_utilization = profile.target_row_utilization;
  const Floorplan fp = make_floorplan(nl, fpo);
  const Placement pl = place(nl, fp, PlacementOptions{});
  const RoutingResult routes = route(nl, fp, pl);
  const ExtractionResult px = extract(nl, routes);
  const StaResult sta = run_sta(nl, px);
  std::unordered_set<NetId> out;
  for (std::size_t n = 0; n < sta.net_slack_ps.size(); ++n) {
    if (sta.net_slack_ps[n] < slack_threshold_ps) out.insert(static_cast<NetId>(n));
  }
  return out;
}

}  // namespace

FlowResult run_flow(const CellLibrary& lib, const CircuitProfile& profile,
                    const FlowOptions& opts) {
  std::unique_ptr<Netlist> nl = generate_circuit(lib, profile);
  return run_flow_on(*nl, profile, opts);
}

FlowResult run_flow_on(Netlist& nl, const CircuitProfile& profile, const FlowOptions& opts) {
  FlowResult res;
  res.circuit = profile.name;

  // ---- step 1: TPI & scan insertion ----
  const int base_ffs = static_cast<int>(nl.flip_flops().size());
  const int num_tp =
      static_cast<int>(std::lround(opts.tp_percent / 100.0 * static_cast<double>(base_ffs)));
  TpiOptions tpi_opts;
  tpi_opts.num_test_points = num_tp;
  tpi_opts.method = opts.tpi_method;
  if (opts.timing_driven_tpi && num_tp > 0) {
    tpi_opts.excluded_nets =
        small_slack_nets(nl, profile, opts.timing_exclude_slack_ps);
  }
  const TpiReport tpi_report = insert_test_points(nl, tpi_opts);
  res.num_test_points = static_cast<int>(tpi_report.test_points.size());

  ScanOptions scan_opts;
  scan_opts.max_chain_length = profile.max_chain_length;
  scan_opts.max_chains = profile.max_chains;
  insert_scan(nl, scan_opts);
  res.num_ffs = static_cast<int>(nl.flip_flops().size());

  // ---- step 2: floorplanning & placement ----
  FloorplanOptions fpo;
  fpo.target_row_utilization = profile.target_row_utilization;
  const Floorplan fp = make_floorplan(nl, fpo);
  PlacementOptions plo;
  plo.seed = opts.seed ^ profile.seed;
  Placement pl = place(nl, fp, plo);

  // ---- step 3: layout-driven scan chain reordering + ATPG ----
  ChainPlan plan;
  if (opts.layout_driven_reorder) {
    plan = plan_chains(nl, scan_opts, cell_positions(nl, pl));
    reorder_chains(plan, cell_positions(nl, pl));
  } else {
    plan = plan_chains(nl, scan_opts, {});
  }
  res.scan_wire_length_um = chain_wire_length(plan, cell_positions(nl, pl));
  stitch_chains(nl, plan);
  res.num_chains = plan.num_chains;
  res.max_chain_length = plan.max_length;

  // Buffer the scan-enable and test-point control nets (step 3: "buffers
  // and inverters may be added to the scan-enable signals").
  std::vector<CellId> buffer_cells;
  const std::size_t cells_before_buffers = nl.num_cells();
  for (const char* ctrl : {"scan_en", "tp_tr", "tp_te"}) {
    const NetId n = nl.find_net(ctrl);
    if (n != kNoNet) res.scan_enable_buffers += buffer_high_fanout_net(nl, n);
  }
  for (std::size_t c = cells_before_buffers; c < nl.num_cells(); ++c) {
    buffer_cells.push_back(static_cast<CellId>(c));
  }

  if (opts.run_atpg) {
    CombModel capture(nl, SeqView::kCapture);
    const TestabilityResult testab = analyze_testability(capture);
    AtpgOptions atpg_opts = opts.atpg;
    atpg_opts.seed ^= profile.seed;
    res.atpg = run_atpg(capture, testab, atpg_opts);
    res.num_faults = res.atpg.total_faults;
    res.fault_coverage_pct = res.atpg.fault_coverage_pct;
    res.fault_efficiency_pct = res.atpg.fault_efficiency_pct;
    res.saf_patterns = res.atpg.num_patterns();
    res.tdv_bits = test_data_volume(res.num_chains, res.max_chain_length, res.saf_patterns);
    res.tat_cycles = test_application_time(res.max_chain_length, res.saf_patterns);
  }

  // ---- step 4: ECO — buffers placed, clock trees, fillers, routing ----
  eco_place(nl, fp, pl, buffer_cells);
  const CtsReport cts = synthesize_clock_trees(nl, fp, pl);
  res.clock_buffers = cts.buffers_added;

  const Netlist::Stats pre_filler = nl.stats();
  res.num_cells = static_cast<int>(pre_filler.cells);
  const FillerReport fillers = insert_fillers(nl, fp, pl);

  res.num_rows = fp.num_rows;
  res.row_length_um = fp.row_length_um;
  res.total_row_length_um = fp.total_row_length_um();
  res.core_area_um2 = fp.core_area_um2();
  res.chip_area_um2 = fp.chip_area_um2();
  res.aspect_ratio = fp.aspect_ratio();
  res.filler_area_pct = 100.0 * fillers.area_um2 / fp.core_area_um2();
  res.row_utilization_pct = 100.0 * (1.0 - fillers.area_um2 / fp.core_area_um2());

  // Scan stitching added si/so ports: refresh the IO pad ring before
  // routing so every port has a physical location.
  assign_io_pads(nl, fp, pl);
  const RoutingResult routes = route(nl, fp, pl);
  res.wire_length_um = routes.total_wire_length_um;

  // ---- steps 5-6: extraction + STA ----
  if (opts.run_sta) {
    const ExtractionResult px = extract(nl, routes);
    res.sta = run_sta(nl, px);
  }

  log_info() << profile.name << " @" << opts.tp_percent << "% TP: cells=" << res.num_cells
             << " chip=" << res.chip_area_um2 << "um2 wires=" << res.wire_length_um
             << "um Tcp=" << (res.sta.worst.valid ? res.sta.worst.t_cp_ps : 0.0) << "ps";
  return res;
}

}  // namespace tpi
