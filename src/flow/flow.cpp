#include "flow/flow.hpp"

#include <chrono>
#include <cmath>
#include <stdexcept>

#include "bist/lbist.hpp"
#include "circuits/generator.hpp"
#include "flow/flow_config.hpp"
#include "layout/placement.hpp"
#include "sim/simd.hpp"
#include "util/log.hpp"
#include "util/trace.hpp"
#include "verify/miter.hpp"
#include "verify/replay.hpp"

namespace tpi {
namespace {

std::vector<std::pair<double, double>> cell_positions(const Netlist& nl, const Placement& pl) {
  std::vector<std::pair<double, double>> pos(nl.num_cells(), {0.0, 0.0});
  for (std::size_t c = 0; c < nl.num_cells() && c < pl.pos.size(); ++c) {
    pos[c] = {pl.pos[c].x, pl.pos[c].y};
  }
  return pos;
}

// Pre-TPI timing pass for timing-driven TPI (§5): quick layout + STA on the
// unmodified netlist to find the small-slack nets.
std::unordered_set<NetId> small_slack_nets(DesignDB& db, const CircuitProfile& profile,
                                           double slack_threshold_ps) {
  // Work on a throwaway layout of the same netlist (no edits needed: the
  // analysis is read-only, so the topo view it caches survives into TPI).
  const Netlist& nl = db.netlist();
  FloorplanOptions fpo;
  fpo.target_row_utilization = profile.target_row_utilization;
  const Floorplan fp = make_floorplan(nl, fpo);
  const Placement pl = place(nl, fp, PlacementOptions{});
  const RoutingResult routes = route(nl, fp, pl);
  const ExtractionResult px = extract(nl, routes);
  const StaResult sta = run_sta(db, px);
  std::unordered_set<NetId> out;
  for (std::size_t n = 0; n < sta.net_slack_ps.size(); ++n) {
    if (sta.net_slack_ps[n] < slack_threshold_ps) out.insert(static_cast<NetId>(n));
  }
  return out;
}

}  // namespace

std::optional<Stage> stage_from_name(std::string_view name) {
  for (const Stage s : kAllStages) {
    if (name == stage_name(s)) return s;
  }
  return std::nullopt;
}

std::string StageMask::to_string() const {
  std::string out;
  for (const Stage s : kAllStages) {
    if (!has(s)) continue;
    if (!out.empty()) out += '|';
    out += stage_name(s);
  }
  return out.empty() ? "none" : out;
}

StageMask stage_mask_from(const FlowOptions& opts) {
  StageMask mask = StageMask::all();
  if (!opts.run_atpg) mask = mask.without(Stage::kReorderAtpg);
  if (!opts.run_sta) mask = mask.without(Stage::kExtract).without(Stage::kSta);
  if (opts.verify) mask = mask.with(Stage::kVerify);
  return mask;
}

FlowEngine::FlowEngine(Netlist& nl, const CircuitProfile& profile, const FlowOptions& opts)
    : nl_(&nl), profile_(profile), opts_(opts) {
  db_.emplace(*nl_);
  if (opts_.verify) golden_ = std::make_unique<Netlist>(*nl_);
  res_.circuit = profile_.name;
  scan_opts_.max_chain_length = profile_.max_chain_length;
  scan_opts_.max_chains = profile_.max_chains;
}

FlowEngine::FlowEngine(const CellLibrary& lib, const CircuitProfile& profile,
                       const FlowOptions& opts)
    : owned_nl_(generate_circuit(lib, profile)), nl_(owned_nl_.get()), profile_(profile),
      opts_(opts) {
  db_.emplace(*nl_);
  if (opts_.verify) golden_ = std::make_unique<Netlist>(*nl_);
  res_.circuit = profile_.name;
  scan_opts_.max_chain_length = profile_.max_chain_length;
  scan_opts_.max_chains = profile_.max_chains;
}

namespace {
CircuitProfile resolve_or_throw(const FlowConfig& config) {
  CircuitProfile profile;
  std::string error;
  if (!config.resolve_profile(profile, &error)) throw std::invalid_argument(error);
  return profile;
}
}  // namespace

FlowEngine::FlowEngine(const CellLibrary& lib, const FlowConfig& config)
    : FlowEngine(lib, resolve_or_throw(config), config.options) {}

FlowEngine::~FlowEngine() = default;

bool FlowEngine::prerequisites_ok(Stage stage) const {
  switch (stage) {
    case Stage::kTpiScan:
    case Stage::kFloorplanPlace:
      return true;
    case Stage::kReorderAtpg:
    case Stage::kEco:
      return fp_.has_value() && pl_.has_value();
    case Stage::kExtract:
      return routes_.has_value();
    case Stage::kSta:
      return extraction_.has_value();
    case Stage::kVerify:
      return golden_ != nullptr;  // requires FlowOptions::verify's snapshot
  }
  return false;
}

StageEvent FlowEngine::make_event(Stage stage, double wall_ms) const {
  StageEvent ev;
  ev.stage = stage;
  ev.name = stage_name(stage);
  ev.job_label = job_label_.c_str();
  ev.wall_ms = wall_ms;
  ev.num_cells = nl_->num_cells();
  ev.num_nets = nl_->num_nets();
  ev.result = &res_;
  return ev;
}

bool FlowEngine::run_stage(Stage stage) {
  const std::size_t idx = static_cast<std::size_t>(stage);
  if (ran_[idx]) return false;
  if (!prerequisites_ok(stage)) {
    log_warn() << res_.circuit << ": stage " << stage_name(stage)
               << " skipped (prerequisite stage did not run)";
    return false;
  }
  if (observer_ != nullptr) observer_->on_stage_begin(make_event(stage, 0.0));
  const auto t0 = std::chrono::steady_clock::now();
  {
    // Everything a stage records through metrics() lands in this engine's
    // registry; the stage span nests the kernel spans recorded below it.
    ScopedMetricsRegistry scoped(metrics_);
    TPI_SPAN(stage_name(stage));
    switch (stage) {
      case Stage::kTpiScan: do_tpi_scan(); break;
      case Stage::kFloorplanPlace: do_floorplan_place(); break;
      case Stage::kReorderAtpg: do_reorder_atpg(); break;
      case Stage::kEco: do_eco(); break;
      case Stage::kExtract: do_extract(); break;
      case Stage::kSta: do_sta(); break;
      case Stage::kVerify: do_verify(); break;
    }
    metrics_.add("flow.stages_run");
    metrics_.set_max("rt.flow.peak_rss_kb", peak_rss_kb());
    // Physical datapath width of the active kernel backend (64/256/512).
    // Runtime-prefixed: it varies by host CPU and TPI_SIMD, never the
    // simulated results, so it stays out of the deterministic snapshot.
    metrics_.set("rt.sim.lane_width", simd_lane_bits());
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() - t0)
          .count();
  ran_[idx] = true;
  res_.timings.ran[idx] = true;
  res_.timings.wall_ms[idx] = wall_ms;
  res_.metrics = metrics_.snapshot();
  if (observer_ != nullptr) observer_->on_stage_end(make_event(stage, wall_ms));
  return true;
}

const FlowResult& FlowEngine::run(StageMask mask) {
  for (const Stage s : kAllStages) {
    if (cancel_ != nullptr && cancel_->load(std::memory_order_relaxed)) {
      res_.cancelled = true;
      log_info() << res_.circuit << ": run cancelled before stage " << stage_name(s);
      return res_;
    }
    if (mask.has(s)) run_stage(s);
  }
  log_info() << profile_.name << " @" << opts_.tp_percent << "% TP: cells=" << res_.num_cells
             << " chip=" << res_.chip_area_um2 << "um2 wires=" << res_.wire_length_um
             << "um Tcp=" << (res_.sta.worst.valid ? res_.sta.worst.t_cp_ps : 0.0) << "ps";
  return res_;
}

// ---- stage 1: TPI & scan insertion ----
void FlowEngine::do_tpi_scan() {
  Netlist& nl = *nl_;
  const int base_ffs = static_cast<int>(nl.flip_flops().size());
  const int num_tp =
      static_cast<int>(std::lround(opts_.tp_percent / 100.0 * static_cast<double>(base_ffs)));
  TpiOptions tpi_opts;
  tpi_opts.num_test_points = num_tp;
  tpi_opts.method = opts_.tpi_method;
  if (opts_.timing_driven_tpi && num_tp > 0) {
    tpi_opts.excluded_nets = small_slack_nets(*db_, profile_, opts_.timing_exclude_slack_ps);
  }
  const TpiReport tpi_report = insert_test_points(*db_, tpi_opts);
  res_.num_test_points = static_cast<int>(tpi_report.test_points.size());

  insert_scan(nl, scan_opts_);
  res_.num_ffs = static_cast<int>(nl.flip_flops().size());
}

// ---- stage 2: floorplanning & placement ----
void FlowEngine::do_floorplan_place() {
  FloorplanOptions fpo;
  fpo.target_row_utilization = profile_.target_row_utilization;
  fp_ = make_floorplan(*nl_, fpo);
  PlacementOptions plo;
  plo.seed = opts_.seed ^ profile_.seed;
  pl_ = place(*nl_, *fp_, plo);
}

// Structural part of stage 3: assign scan cells to chains (layout-driven
// when enabled), stitch the TI wiring, and buffer the scan-enable /
// test-point control nets. Runs at most once per engine; when stage 3 is
// masked off it still executes as a prerequisite of the eco stage.
void FlowEngine::stitch_scan_chains() {
  if (chains_stitched_) return;
  chains_stitched_ = true;
  Netlist& nl = *nl_;

  ChainPlan plan;
  if (opts_.layout_driven_reorder) {
    plan = plan_chains(nl, scan_opts_, cell_positions(nl, *pl_));
    reorder_chains(plan, cell_positions(nl, *pl_));
  } else {
    plan = plan_chains(nl, scan_opts_, {});
  }
  res_.scan_wire_length_um = chain_wire_length(plan, cell_positions(nl, *pl_));
  stitch_chains(nl, plan);
  res_.num_chains = plan.num_chains;
  res_.max_chain_length = plan.max_length;

  // Buffer the scan-enable and test-point control nets (step 3: "buffers
  // and inverters may be added to the scan-enable signals").
  const std::size_t cells_before_buffers = nl.num_cells();
  for (const char* ctrl : {"scan_en", "tp_tr", "tp_te"}) {
    const NetId n = nl.find_net(ctrl);
    if (n != kNoNet) res_.scan_enable_buffers += buffer_high_fanout_net(nl, n);
  }
  for (std::size_t c = cells_before_buffers; c < nl.num_cells(); ++c) {
    buffer_cells_.push_back(static_cast<CellId>(c));
  }
}

// ---- stage 3: layout-driven scan chain reordering + ATPG ----
void FlowEngine::do_reorder_atpg() {
  stitch_scan_chains();

  AtpgOptions atpg_opts = opts_.atpg;
  atpg_opts.seed ^= profile_.seed;
  res_.atpg = run_atpg(*db_, atpg_opts);
  // The fault-sim kernel profile (per-phase wall clock + event counts,
  // AtpgResult::profile) rides inside res_.atpg, so FlowObserver callbacks
  // and the sweep JSON report see it through StageEvent::result.
  const AtpgPhaseProfile kernel = res_.atpg.profile.total();
  log_info() << res_.circuit << " reorder_atpg: fault-sim jobs=" << res_.atpg.profile.jobs
             << " sim_wall=" << kernel.wall_ms << "ms graded=" << kernel.faults_graded
             << " cone_skips=" << kernel.cone_skips;
  res_.num_faults = res_.atpg.total_faults;
  res_.fault_coverage_pct = res_.atpg.fault_coverage_pct;
  res_.fault_efficiency_pct = res_.atpg.fault_efficiency_pct;
  res_.saf_patterns = res_.atpg.num_patterns();
  res_.tdv_bits = test_data_volume(res_.num_chains, res_.max_chain_length, res_.saf_patterns);
  // Launch-on-capture spends one extra capture cycle per pattern (eq. 2
  // generalized); TDV is unchanged — the scan data volume does not depend
  // on the capture cycle count.
  const int capture_cycles =
      res_.atpg.fault_model == FaultModel::kTransition ? 2 : 1;
  res_.tat_cycles =
      test_application_time(res_.max_chain_length, res_.saf_patterns, capture_cycles);
}

// ---- stage 4: ECO — buffers placed, clock trees, fillers, routing ----
void FlowEngine::do_eco() {
  stitch_scan_chains();  // no-op when stage 3 already ran
  Netlist& nl = *nl_;
  const Floorplan& fp = *fp_;
  Placement& pl = *pl_;

  eco_place(nl, fp, pl, buffer_cells_);
  const CtsReport cts = synthesize_clock_trees(nl, fp, pl);
  res_.clock_buffers = cts.buffers_added;

  const Netlist::Stats pre_filler = nl.stats();
  res_.num_cells = static_cast<int>(pre_filler.cells);
  const FillerReport fillers = insert_fillers(nl, fp, pl);

  res_.num_rows = fp.num_rows;
  res_.row_length_um = fp.row_length_um;
  res_.total_row_length_um = fp.total_row_length_um();
  res_.core_area_um2 = fp.core_area_um2();
  res_.chip_area_um2 = fp.chip_area_um2();
  res_.aspect_ratio = fp.aspect_ratio();
  res_.filler_area_pct = 100.0 * fillers.area_um2 / fp.core_area_um2();
  res_.row_utilization_pct = 100.0 * (1.0 - fillers.area_um2 / fp.core_area_um2());

  // Scan stitching added si/so ports: refresh the IO pad ring before
  // routing so every port has a physical location.
  assign_io_pads(nl, fp, pl);
  routes_ = route(nl, fp, pl);
  res_.wire_length_um = routes_->total_wire_length_um;
}

// ---- stage 5: layout extraction ----
void FlowEngine::do_extract() { extraction_ = extract(*nl_, *routes_); }

// ---- stage 6: static timing analysis ----
void FlowEngine::do_sta() {
  res_.sta = run_sta(*db_, *extraction_);
  if (!opts_.at_speed_lbist || !res_.sta.worst.valid) return;

  // At-speed LBIST pair (opt-in): transition-fault BIST clocked at the
  // post-TPI F_max, with a slow-speed control session. Both sessions share
  // the LFSR seed, so the coverage gap isolates the clock period.
  const double t_cp = res_.sta.worst.t_cp_ps;
  LbistOptions lo;
  lo.fault_model = FaultModel::kTransition;
  lo.capture_period_ps = t_cp;
  // Defect size pinned to the rated clock period for BOTH sessions: at
  // speed every site with positive arrival qualifies, while the slow
  // capture (4x t_cp) needs arrival > 3 x t_cp — more slack than any path
  // has — so the coverage gap isolates the clock period, which is the
  // point of the experiment. (Leaving fault_size_ps at 0 would re-derive
  // delta from each session's own period and erase the gap.)
  lo.fault_size_ps = t_cp;
  lo.arrival_ps = &res_.sta.arrival_ps;
  const CombModel& capture = db_->comb_model(SeqView::kCapture);
  const LbistResult fast = run_lbist(capture, lo);
  lo.capture_period_ps = kAtSpeedSlowFactor * t_cp;
  const LbistResult slow = run_lbist(capture, lo);

  FlowResult::AtSpeedReport& r = res_.at_speed;
  r.ran = true;
  r.capture_period_ps = t_cp;
  r.at_speed_coverage_pct = fast.final_coverage_pct;
  r.slow_speed_coverage_pct = slow.final_coverage_pct;
  r.qualified_faults = fast.qualified;
  r.total_faults = fast.total_faults;
  metrics().add("atspeed.lbist.qualified", static_cast<std::uint64_t>(fast.qualified));
  metrics().add("atspeed.lbist.patterns", static_cast<std::uint64_t>(fast.patterns_applied));
  log_info() << res_.circuit << " at-speed LBIST: Tcp=" << t_cp << "ps coverage="
             << fast.final_coverage_pct << "% (slow@" << kAtSpeedSlowFactor
             << "x=" << slow.final_coverage_pct << "%)";
}

// ---- stage 7 (opt-in): equivalence check + pattern replay ----
//
// The verify.* metrics carry no "rt." prefix: checking and replay are
// single-threaded and seed-deterministic, so they are part of the sweep
// JSON determinism contract (bit-identical at any jobs setting).
void FlowEngine::do_verify() {
  VerifySummary& v = res_.verify;
  v.ran = true;

  const MiterResult m = build_miter(*golden_, *nl_);
  if (!m.ok()) {
    v.error = m.error;
    v.equivalent = false;
    log_warn() << res_.circuit << " verify: " << m.error;
    return;
  }
  v.matched_pos = m.matched_pos;
  EquivChecker checker(*m.netlist, opts_.verify_equiv);
  const EquivResult equiv = checker.check();
  v.equivalent = equiv.equivalent;
  v.proven_x_init = equiv.proven_x_init;
  v.frames_simulated = equiv.frames_simulated;
  v.cex = equiv.cex;
  metrics().add("verify.miter.matched_pos", static_cast<std::uint64_t>(m.matched_pos));
  metrics().add("verify.equiv.frames", static_cast<std::uint64_t>(equiv.frames_simulated));
  metrics().add("verify.equiv.mismatches", equiv.equivalent ? 0u : 1u);
  if (!equiv.equivalent) {
    log_warn() << res_.circuit << " verify: MISMATCH vs pre-transform netlist ("
               << equiv.cex.source << ", fail frame " << equiv.cex.fail_frame << ")";
  }

  if (ran_[static_cast<std::size_t>(Stage::kReorderAtpg)] && !res_.atpg.patterns.empty()) {
    const ReplayReport replay = replay_patterns(db_->comb_model(SeqView::kCapture), res_.atpg);
    v.replay_ran = true;
    v.replay_claimed = replay.claimed;
    v.replay_confirmed = replay.confirmed;
    v.replay_ok = replay.ok();
    metrics().add("verify.replay.checked", static_cast<std::uint64_t>(replay.claimed));
    metrics().add("verify.replay.confirmed", static_cast<std::uint64_t>(replay.confirmed));
    metrics().add("verify.replay.failures",
                  static_cast<std::uint64_t>(replay.failures.size()));
    if (!replay.ok()) {
      log_warn() << res_.circuit << " verify: " << replay.failures.size()
                 << " claimed fault detections did not replay";
    }
  }
}

FlowResult run_flow(const CellLibrary& lib, const CircuitProfile& profile,
                    const FlowOptions& opts) {
  std::unique_ptr<Netlist> nl = generate_circuit(lib, profile);
  return run_flow_on(*nl, profile, opts);
}

FlowResult run_flow_on(Netlist& nl, const CircuitProfile& profile, const FlowOptions& opts) {
  FlowEngine engine(nl, profile, opts);
  return engine.run(stage_mask_from(opts));
}

}  // namespace tpi
