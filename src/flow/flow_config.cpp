#include "flow/flow_config.hpp"

#include <cmath>

#include "sim/simd.hpp"
#include "util/env.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

// Bounds shared by the env and JSON paths. Job counts of 0 mean "hardware
// concurrency" throughout the codebase, so 0 is in range.
constexpr long kMaxJobs = 4096;
constexpr long kMaxFuzzIters = 1000000;

std::optional<StageMask> stages_from_json(const JsonValue& v, std::string* error) {
  if (v.is_string()) {
    if (v.as_string() == "all") return StageMask::all();
    if (v.as_string() == "none") return StageMask::none();
    if (error) *error = "stages: expected \"all\", \"none\" or an array of stage names";
    return std::nullopt;
  }
  if (!v.is_array()) {
    if (error) *error = "stages: expected \"all\", \"none\" or an array of stage names";
    return std::nullopt;
  }
  StageMask mask = StageMask::none();
  for (const JsonValue& e : v.as_array()) {
    if (!e.is_string()) {
      if (error) *error = "stages: array entries must be stage-name strings";
      return std::nullopt;
    }
    const std::optional<Stage> s = stage_from_name(e.as_string());
    if (!s) {
      if (error) *error = "stages: unknown stage \"" + e.as_string() + "\"";
      return std::nullopt;
    }
    mask = mask.with(*s);
  }
  return mask;
}

JsonValue stages_to_json(StageMask mask) {
  if (mask == StageMask::all()) return JsonValue("all");
  JsonArray arr;
  for (const Stage s : kAllStages) {
    if (mask.has(s)) arr.emplace_back(stage_name(s));
  }
  return JsonValue(std::move(arr));
}

// Seeds may arrive as JSON numbers (when they fit a double exactly) or as
// decimal/hex strings for full 64-bit range.
std::optional<std::uint64_t> u64_from_json(const JsonValue& v) {
  if (v.is_number()) {
    const double d = v.as_number();
    if (d < 0.0 || d != std::floor(d) || d > 9.0e15) return std::nullopt;
    return static_cast<std::uint64_t>(d);
  }
  if (v.is_string()) return parse_u64(v.as_string());
  return std::nullopt;
}

bool valid_simd_name(std::string_view name) {
  return name == "auto" || simd_backend_from_name(name).has_value();
}

std::optional<long> int_from_json(const JsonValue& v, long lo, long hi) {
  if (!v.is_number()) return std::nullopt;
  const double d = v.as_number();
  if (d != std::floor(d)) return std::nullopt;
  const long l = static_cast<long>(d);
  if (l < lo || l > hi) return std::nullopt;
  return l;
}

// SOC limits: a chip of up to 4096 embedded cores on a TAM of up to 1024
// bits covers anything the scheduler can usefully pack.
constexpr long kMaxSocCores = 4096;
constexpr long kMaxTamWidth = 1024;

// Strict "soc" block parser: every key must be known and well-typed, so a
// misspelled knob surfaces as a structured error instead of a silently
// ignored field (the soc block gates whether a job is a chip at all).
bool soc_from_json(const JsonValue& v, SocKnobs& out, std::string* error) {
  const auto fail = [&](const std::string& msg) {
    if (error) *error = "config: \"soc\": " + msg;
    return false;
  };
  if (!v.is_object()) return fail("expected an object");
  for (const auto& [key, e] : v.as_object()) {
    if (key == "cores") {
      const std::optional<long> n = int_from_json(e, 0, kMaxSocCores);
      if (!n) return fail("\"cores\": expected a core count in [0, 4096]");
      out.cores = static_cast<int>(*n);
    } else if (key == "tam_width") {
      const std::optional<long> w = int_from_json(e, 1, kMaxTamWidth);
      if (!w) return fail("\"tam_width\": expected a TAM width in [1, 1024]");
      out.tam_width = static_cast<int>(*w);
    } else if (key == "schedule") {
      if (!e.is_string() || !valid_soc_schedule_name(e.as_string())) {
        return fail("\"schedule\": expected \"diagonal\" or \"serial\"");
      }
      out.schedule = e.as_string();
    } else {
      return fail("unknown key \"" + key + "\"");
    }
  }
  return true;
}

}  // namespace

bool valid_soc_schedule_name(std::string_view name) {
  return name == "diagonal" || name == "serial";
}

const char* tpi_method_name(TpiMethod method) {
  switch (method) {
    case TpiMethod::kCop: return "cop";
    case TpiMethod::kScoap: return "scoap";
    case TpiMethod::kHybrid: return "hybrid";
  }
  return "?";
}

std::optional<TpiMethod> tpi_method_from_name(std::string_view name) {
  if (name == "cop") return TpiMethod::kCop;
  if (name == "scoap") return TpiMethod::kScoap;
  if (name == "hybrid") return TpiMethod::kHybrid;
  return std::nullopt;
}

FlowConfig FlowConfig::from_env() { return from_env(FlowConfig{}); }

FlowConfig FlowConfig::from_env(const FlowConfig& base) {
  FlowConfig cfg = base;
  cfg.scale = env_positive_double("TPI_BENCH_SCALE", base.scale);
  cfg.bench_jobs = static_cast<int>(env_int("TPI_BENCH_JOBS", base.bench_jobs, 0, kMaxJobs));
  cfg.options.atpg.jobs =
      static_cast<int>(env_int("TPI_ATPG_JOBS", base.options.atpg.jobs, 0, kMaxJobs));
  if (const std::optional<std::string> v = env_string("TPI_FAULT_MODEL")) {
    if (const std::optional<FaultModel> m = fault_model_from_name(*v)) {
      cfg.options.atpg.fault_model = *m;
    } else {
      log_warn() << "config: invalid TPI_FAULT_MODEL=\"" << *v
                 << "\" (want stuck_at|transition)";
    }
  }
  cfg.server_queue_limit = static_cast<int>(
      env_int("TPI_SERVER_QUEUE_LIMIT", base.server_queue_limit, 0, kMaxJobs));
  if (const std::optional<std::string> v = env_string("TPI_BENCH_JSON")) cfg.bench_json = *v;
  if (const std::optional<std::string> v = env_string("TPI_TRACE")) cfg.trace_path = *v;
  if (const std::optional<std::string> v = env_string("TPI_TRACE_DIR")) cfg.trace_dir = *v;
  if (const std::optional<std::string> v = env_string("TPI_LEDGER")) cfg.ledger = *v;

  // TPI_LOG_LEVEL wins; the legacy TPI_BENCH_VERBOSE alias only upgrades
  // the fallback (matching the historical bench_common behaviour).
  LogLevel fallback = base.log_level;
  if (env_string("TPI_BENCH_VERBOSE") && fallback > LogLevel::kInfo) {
    fallback = LogLevel::kInfo;
  }
  cfg.log_level = fallback;
  if (const std::optional<std::string> v = env_string("TPI_LOG_LEVEL")) {
    if (const std::optional<LogLevel> parsed = parse_log_level(*v)) {
      cfg.log_level = *parsed;
    } else {
      log_warn() << "config: invalid TPI_LOG_LEVEL=\"" << *v
                 << "\" (want debug|info|warn|error|silent)";
    }
  }

  cfg.fuzz_seed = env_u64("TPI_FUZZ_SEED", base.fuzz_seed);
  cfg.fuzz_iters =
      static_cast<int>(env_int("TPI_FUZZ_ITERS", base.fuzz_iters, 1, kMaxFuzzIters));
  if (const std::optional<std::string> v = env_string("TPI_SERVER_SOCKET")) {
    cfg.server_socket = *v;
  }
  cfg.server_cache_mb =
      static_cast<int>(env_int("TPI_SERVER_CACHE_MB", base.server_cache_mb, 1, 1 << 20));
  if (const std::optional<std::string> v = env_string("TPI_SIMD")) {
    if (valid_simd_name(*v)) {
      cfg.simd = *v;
    } else {
      log_warn() << "config: invalid TPI_SIMD=\"" << *v
                 << "\" (want auto|scalar|avx2|avx512)";
    }
  }
  cfg.soc.cores = static_cast<int>(env_int("TPI_SOC_CORES", base.soc.cores, 0, kMaxSocCores));
  cfg.soc.tam_width =
      static_cast<int>(env_int("TPI_SOC_TAM_WIDTH", base.soc.tam_width, 1, kMaxTamWidth));
  if (const std::optional<std::string> v = env_string("TPI_SOC_SCHEDULE")) {
    if (valid_soc_schedule_name(*v)) {
      cfg.soc.schedule = *v;
    } else {
      log_warn() << "config: invalid TPI_SOC_SCHEDULE=\"" << *v
                 << "\" (want diagonal|serial)";
    }
  }
  return cfg;
}

bool FlowConfig::from_json(std::string_view text, const FlowConfig& base, FlowConfig& out,
                           std::string* error) {
  const JsonParseResult parsed = json_parse(text);
  if (!parsed.ok) {
    if (error) *error = "config: " + parsed.error;
    return false;
  }
  if (!parsed.value.is_object()) {
    if (error) *error = "config: expected a JSON object";
    return false;
  }

  FlowConfig cfg = base;
  for (const auto& [key, v] : parsed.value.as_object()) {
    auto type_error = [&](const char* want) {
      if (error) *error = "config: \"" + key + "\": expected " + want;
      return false;
    };
    if (key == "profile") {
      if (!v.is_string()) return type_error("a profile-name string");
      cfg.profile = v.as_string();
    } else if (key == "scale") {
      if (!v.is_number() || !(v.as_number() > 0.0)) return type_error("a positive number");
      cfg.scale = v.as_number();
    } else if (key == "tp_percent") {
      if (!v.is_number() || v.as_number() < 0.0) return type_error("a non-negative number");
      cfg.options.tp_percent = v.as_number();
    } else if (key == "tpi_method") {
      if (!v.is_string()) return type_error("\"cop\", \"scoap\" or \"hybrid\"");
      const std::optional<TpiMethod> m = tpi_method_from_name(v.as_string());
      if (!m) return type_error("\"cop\", \"scoap\" or \"hybrid\"");
      cfg.options.tpi_method = *m;
    } else if (key == "seed") {
      const std::optional<std::uint64_t> s = u64_from_json(v);
      if (!s) return type_error("a 64-bit seed (number or string)");
      cfg.options.seed = *s;
    } else if (key == "stages") {
      const std::optional<StageMask> m = stages_from_json(v, error);
      if (!m) return false;
      cfg.stages = *m;
    } else if (key == "atpg_jobs") {
      const std::optional<long> j = int_from_json(v, 0, kMaxJobs);
      if (!j) return type_error("a worker count in [0, 4096]");
      cfg.options.atpg.jobs = static_cast<int>(*j);
    } else if (key == "fault_model") {
      if (!v.is_string()) return type_error("\"stuck_at\" or \"transition\"");
      const std::optional<FaultModel> m = fault_model_from_name(v.as_string());
      if (!m) return type_error("\"stuck_at\" or \"transition\"");
      cfg.options.atpg.fault_model = *m;
    } else if (key == "at_speed") {
      if (!v.is_bool()) return type_error("a boolean");
      cfg.options.at_speed_lbist = v.as_bool();
    } else if (key == "server_queue_limit") {
      const std::optional<long> q = int_from_json(v, 0, kMaxJobs);
      if (!q) return type_error("a queue depth in [0, 4096]");
      cfg.server_queue_limit = static_cast<int>(*q);
    } else if (key == "max_patterns") {
      const std::optional<long> p = int_from_json(v, 1, 100000000);
      if (!p) return type_error("a positive pattern cap");
      cfg.options.atpg.max_patterns = static_cast<int>(*p);
    } else if (key == "verify") {
      if (!v.is_bool()) return type_error("a boolean");
      cfg.options.verify = v.as_bool();
      if (v.as_bool()) cfg.stages = cfg.stages.with(Stage::kVerify);
    } else if (key == "layout_driven_reorder") {
      if (!v.is_bool()) return type_error("a boolean");
      cfg.options.layout_driven_reorder = v.as_bool();
    } else if (key == "timing_driven_tpi") {
      if (!v.is_bool()) return type_error("a boolean");
      cfg.options.timing_driven_tpi = v.as_bool();
    } else if (key == "timing_exclude_slack_ps") {
      if (!v.is_number()) return type_error("a number");
      cfg.options.timing_exclude_slack_ps = v.as_number();
    } else if (key == "priority") {
      const std::optional<long> p = int_from_json(v, -1000, 1000);
      if (!p) return type_error("a priority in [-1000, 1000]");
      cfg.priority = static_cast<int>(*p);
    } else if (key == "bench_jobs") {
      const std::optional<long> j = int_from_json(v, 0, kMaxJobs);
      if (!j) return type_error("a worker count in [0, 4096]");
      cfg.bench_jobs = static_cast<int>(*j);
    } else if (key == "bench_json") {
      if (!v.is_string()) return type_error("a path string");
      cfg.bench_json = v.as_string();
    } else if (key == "trace") {
      if (!v.is_string()) return type_error("a path string");
      cfg.trace_path = v.as_string();
    } else if (key == "trace_dir") {
      if (!v.is_string()) return type_error("a directory-path string");
      cfg.trace_dir = v.as_string();
    } else if (key == "ledger") {
      if (!v.is_string()) return type_error("a path string");
      cfg.ledger = v.as_string();
    } else if (key == "record_trace") {
      if (!v.is_bool()) return type_error("a boolean");
      cfg.record_trace = v.as_bool();
    } else if (key == "log_level") {
      if (!v.is_string()) return type_error("debug|info|warn|error|silent");
      const std::optional<LogLevel> l = parse_log_level(v.as_string());
      if (!l) return type_error("debug|info|warn|error|silent");
      cfg.log_level = *l;
    } else if (key == "fuzz_seed") {
      const std::optional<std::uint64_t> s = u64_from_json(v);
      if (!s) return type_error("a 64-bit seed (number or string)");
      cfg.fuzz_seed = *s;
    } else if (key == "fuzz_iters") {
      const std::optional<long> i = int_from_json(v, 1, kMaxFuzzIters);
      if (!i) return type_error("an iteration count in [1, 1000000]");
      cfg.fuzz_iters = static_cast<int>(*i);
    } else if (key == "server_socket") {
      if (!v.is_string()) return type_error("a path string");
      cfg.server_socket = v.as_string();
    } else if (key == "server_cache_mb") {
      const std::optional<long> mb = int_from_json(v, 1, 1 << 20);
      if (!mb) return type_error("a cache budget in MiB");
      cfg.server_cache_mb = static_cast<int>(*mb);
    } else if (key == "simd") {
      if (!v.is_string() || !valid_simd_name(v.as_string())) {
        return type_error("\"auto\", \"scalar\", \"avx2\" or \"avx512\"");
      }
      cfg.simd = v.as_string();
    } else if (key == "soc") {
      if (!soc_from_json(v, cfg.soc, error)) return false;
    } else {
      if (error) *error = "config: unknown key \"" + key + "\"";
      return false;
    }
  }
  out = cfg;
  return true;
}

std::string FlowConfig::to_json() const {
  const FlowConfig defaults;
  JsonValue o = JsonValue(JsonObject{});
  o.set("profile", profile);
  o.set("scale", scale);
  o.set("tp_percent", options.tp_percent);
  o.set("tpi_method", tpi_method_name(options.tpi_method));
  o.set("seed", std::to_string(options.seed));
  o.set("stages", stages_to_json(stages));
  o.set("atpg_jobs", options.atpg.jobs);
  o.set("priority", priority);
  // New knobs are emitted only when non-default, so pre-existing configs
  // keep their serialised form (and hence their ledger fingerprints).
  if (options.atpg.fault_model != defaults.options.atpg.fault_model) {
    o.set("fault_model", fault_model_name(options.atpg.fault_model));
  }
  if (options.at_speed_lbist) o.set("at_speed", true);
  if (server_queue_limit != defaults.server_queue_limit) {
    o.set("server_queue_limit", server_queue_limit);
  }
  if (options.atpg.max_patterns != defaults.options.atpg.max_patterns) {
    o.set("max_patterns", options.atpg.max_patterns);
  }
  if (options.verify) o.set("verify", true);
  if (options.layout_driven_reorder != defaults.options.layout_driven_reorder) {
    o.set("layout_driven_reorder", options.layout_driven_reorder);
  }
  if (options.timing_driven_tpi) o.set("timing_driven_tpi", true);
  if (options.timing_exclude_slack_ps != defaults.options.timing_exclude_slack_ps) {
    o.set("timing_exclude_slack_ps", options.timing_exclude_slack_ps);
  }
  if (record_trace) o.set("record_trace", true);
  if (bench_jobs != defaults.bench_jobs) o.set("bench_jobs", bench_jobs);
  if (!bench_json.empty()) o.set("bench_json", bench_json);
  if (!trace_path.empty()) o.set("trace", trace_path);
  if (!trace_dir.empty()) o.set("trace_dir", trace_dir);
  if (!ledger.empty()) o.set("ledger", ledger);
  if (log_level != defaults.log_level) {
    const char* names[] = {"debug", "info", "warn", "error", "silent"};
    o.set("log_level", names[static_cast<int>(log_level)]);
  }
  if (fuzz_seed != defaults.fuzz_seed) o.set("fuzz_seed", std::to_string(fuzz_seed));
  if (fuzz_iters != defaults.fuzz_iters) o.set("fuzz_iters", fuzz_iters);
  if (server_socket != defaults.server_socket) o.set("server_socket", server_socket);
  if (server_cache_mb != defaults.server_cache_mb) {
    o.set("server_cache_mb", server_cache_mb);
  }
  if (simd != defaults.simd) o.set("simd", simd);
  // SOC mode is opt-in: a single-core config (cores == 0) serialises with
  // no "soc" key at all, whatever the other soc fields hold, so existing
  // configs and their ledger fingerprints are untouched.
  if (soc.cores > 0) {
    JsonValue s{JsonObject{}};
    s.set("cores", soc.cores);
    s.set("tam_width", soc.tam_width);
    s.set("schedule", soc.schedule);
    o.set("soc", std::move(s));
  }
  return o.serialise();
}

bool FlowConfig::resolve_profile(CircuitProfile& out, std::string* error) const {
  for (const CircuitProfile& p : paper_profiles()) {
    if (p.name == profile) {
      if (scale == 1.0) {
        out = p;
      } else {
        out = scaled(p, scale);
        out.name = p.name;  // keep the paper's circuit names in reports
      }
      return true;
    }
  }
  if (error) {
    *error = "unknown profile \"" + profile + "\" (want s38417, circuit1 or p26909)";
  }
  return false;
}

int FlowConfig::effective_bench_jobs() const {
  return bench_jobs > 0 ? bench_jobs
                        : static_cast<int>(ThreadPool::default_concurrency());
}

FuzzOptions FlowConfig::fuzz_options() const {
  FuzzOptions o;
  o.seed = fuzz_seed;
  o.iterations = fuzz_iters;
  return o;
}

void FlowConfig::apply_process_settings() const {
  set_log_level(log_level);
  trace_init_from_env();  // idempotent; arms the TPI_TRACE sink when set
  // "auto" clears the override so the env/CPU resolution applies; a pinned
  // name wins over TPI_SIMD for this process (results are identical either
  // way — the backend only moves wall clock).
  set_simd_backend(simd == "auto" ? std::nullopt : simd_backend_from_name(simd));
}

}  // namespace tpi
