#include "flow/flow_json.hpp"

namespace tpi {
namespace {

JsonValue metrics_without_designdb(const MetricsSnapshot& snapshot) {
  // Reuse the snapshot's deterministic serialisation, then drop the
  // designdb.* counters: warm cached views turn rebuilds into hits, so
  // those counters deterministically differ between server and
  // single-shot runs of the same config.
  const JsonParseResult parsed =
      json_parse(snapshot.to_json(MetricsSnapshot::kNoRuntime));
  if (!parsed.ok || !parsed.value.is_object()) return JsonValue(JsonObject{});
  JsonObject filtered;
  for (const auto& [key, value] : parsed.value.as_object()) {
    if (key.rfind("designdb.", 0) == 0) continue;
    filtered.emplace_back(key, value);
  }
  return JsonValue(std::move(filtered));
}

}  // namespace

JsonValue flow_result_to_json_value(const FlowResult& r) {
  JsonValue o{JsonObject{}};
  o.set("circuit", r.circuit);
  o.set("cancelled", r.cancelled);
  o.set("num_test_points", r.num_test_points);
  // Table 1: test data.
  o.set("num_ffs", r.num_ffs);
  o.set("num_chains", r.num_chains);
  o.set("max_chain_length", r.max_chain_length);
  o.set("num_faults", r.num_faults);
  o.set("fault_coverage_pct", r.fault_coverage_pct);
  o.set("fault_efficiency_pct", r.fault_efficiency_pct);
  o.set("saf_patterns", r.saf_patterns);
  o.set("tdv_bits", r.tdv_bits);
  o.set("tat_cycles", r.tat_cycles);
  // Table 2: silicon area.
  o.set("num_cells", r.num_cells);
  o.set("num_rows", r.num_rows);
  o.set("row_length_um", r.row_length_um);
  o.set("total_row_length_um", r.total_row_length_um);
  o.set("core_area_um2", r.core_area_um2);
  o.set("filler_area_pct", r.filler_area_pct);
  o.set("chip_area_um2", r.chip_area_um2);
  o.set("wire_length_um", r.wire_length_um);
  o.set("aspect_ratio", r.aspect_ratio);
  o.set("row_utilization_pct", r.row_utilization_pct);
  // Table 3: timing (worst endpoint only; the paper reports T_cp).
  o.set("sta_valid", r.sta.worst.valid);
  o.set("t_cp_ps", r.sta.worst.valid ? r.sta.worst.t_cp_ps : 0.0);
  // Diagnostics.
  o.set("scan_enable_buffers", r.scan_enable_buffers);
  o.set("clock_buffers", r.clock_buffers);
  o.set("scan_wire_length_um", r.scan_wire_length_um);
  if (r.verify.ran) {
    JsonValue v{JsonObject{}};
    v.set("ok", r.verify.ok());
    v.set("equivalent", r.verify.equivalent);
    v.set("replay_ok", r.verify.replay_ok);
    o.set("verify", v);
  }
  // Fault-model / at-speed keys are conditional so the default stuck-at
  // flow's JSON stays byte-identical to the pre-refactor output.
  if (r.atpg.fault_model == FaultModel::kTransition) {
    o.set("fault_model", fault_model_name(r.atpg.fault_model));
  }
  if (r.at_speed.ran) {
    JsonValue a{JsonObject{}};
    a.set("capture_period_ps", r.at_speed.capture_period_ps);
    a.set("at_speed_coverage_pct", r.at_speed.at_speed_coverage_pct);
    a.set("slow_speed_coverage_pct", r.at_speed.slow_speed_coverage_pct);
    a.set("coverage_delta_pct", r.at_speed.coverage_delta_pct());
    a.set("qualified_faults", r.at_speed.qualified_faults);
    a.set("total_faults", r.at_speed.total_faults);
    o.set("at_speed", a);
  }
  o.set("metrics", metrics_without_designdb(r.metrics));
  return o;
}

std::string flow_result_to_json(const FlowResult& r) {
  return flow_result_to_json_value(r).serialise();
}

}  // namespace tpi
