// Parallel sweep runner for the paper's experiment grids. Every table in
// the paper is a (circuit × tp_percent) grid of independent full-layout
// runs; SweepRunner executes such a grid on a fixed-size thread pool with
// deterministic per-task seeding (each cell's seeds derive only from its
// FlowOptions::seed and CircuitProfile::seed, never from scheduling), so
// the results are bit-identical at any job count — including jobs = 1,
// which the equivalence tests use as the serial reference.
//
// The runner aggregates per-stage wall-clock totals across the grid and
// can serialise the whole report as google-benchmark-style JSON (the
// format emitted by bench_kernel_microbench --benchmark_format=json), so
// the same tooling can consume kernel and flow-level timings.
#pragma once

#include <array>
#include <string>
#include <vector>

#include "flow/flow.hpp"

namespace tpi {

struct FlowConfig;  // flow_config.hpp

/// Collision-free file-name form of a job label: `[A-Za-z0-9.=-]` bytes
/// pass through, every other byte becomes `_` + two lowercase hex digits
/// ("s38417/tp=2" -> "s38417_2ftp=2"). Because `_` itself is escaped
/// ("_5f"), the mapping is injective — two distinct labels can never land
/// in the same trace file, which the old '/'-to-'_' mapping allowed
/// ("s38417/tp=2" vs "s38417_tp=2").
std::string sanitize_trace_label(const std::string& label);

/// One grid cell: a full flow run of `profile` with `options`
/// (tp_percent and seeds live inside `options`), restricted to `stages`.
struct SweepJob {
  std::string label;  ///< report key, e.g. "s38417/tp=2"
  CircuitProfile profile;
  FlowOptions options;
  StageMask stages = StageMask::all();
};

struct SweepOptions {
  /// Worker threads; <= 0 selects ThreadPool::default_concurrency().
  int jobs = 0;
  /// Announce each cell on stderr as a worker picks it up.
  bool progress = true;
  /// Observer attached to every FlowEngine (must be thread-safe when
  /// jobs > 1); nullptr = none.
  FlowObserver* observer = nullptr;
  /// Per-cell flight recorder directory (TPI_TRACE_DIR / FlowConfig
  /// trace_dir): each cell's spans go to its own TraceSink and are written
  /// as <trace_dir>/<sanitize_trace_label(label)>.trace.json, so
  /// concurrent cells never interleave in one trace. Empty = off.
  std::string trace_dir;
  /// Run-ledger JSONL path (TPI_LEDGER / FlowConfig ledger): every cell's
  /// deterministic flow result is appended in submission order. Empty = off.
  std::string ledger;
};

struct SweepCellResult {
  SweepJob job;
  FlowResult result;
  double wall_ms = 0.0;  ///< whole-flow wall clock for this cell
};

struct SweepReport {
  std::vector<SweepCellResult> cells;  ///< in job submission order
  int jobs = 1;                        ///< worker threads actually used
  double wall_ms = 0.0;                ///< sweep wall clock
  double cpu_ms = 0.0;                 ///< sum of per-cell wall clocks
  std::array<double, kNumStages> stage_total_ms{};  ///< per-stage totals
  /// Per-cell FlowResult metrics merged in submission order. Deterministic
  /// metrics are bit-identical at any job count; to_json() serialises only
  /// those (MetricsSnapshot::kNoRuntime).
  MetricsSnapshot metrics;

  /// Parallel speedup actually realised: cpu_ms / wall_ms.
  double speedup() const { return wall_ms > 0.0 ? cpu_ms / wall_ms : 1.0; }

  /// google-benchmark-style JSON: {"context": ..., "benchmarks": [...]}
  /// with one entry per cell (real_time = cell wall clock, per-stage times
  /// under "stages") plus one "stage_totals/<stage>" aggregate per stage.
  std::string to_json() const;

  /// to_json() written to `path` (returns false + warning on I/O failure).
  bool write_json(const std::string& path) const;
};

class SweepRunner {
 public:
  explicit SweepRunner(SweepOptions opts = {});
  /// Runner sized from a unified FlowConfig (jobs =
  /// config.effective_bench_jobs(), progress on).
  explicit SweepRunner(const FlowConfig& config);

  /// Execute all jobs on the pool; blocks until the grid is done. An
  /// exception escaping a cell's flow run is rethrown here after the
  /// remaining cells finish.
  SweepReport run(const CellLibrary& lib, std::vector<SweepJob> jobs) const;

  /// The paper's grid: every circuit at every tp_percent, as jobs in
  /// circuit-major order with labels "<circuit>/tp=<pct>".
  static std::vector<SweepJob> grid(const std::vector<CircuitProfile>& circuits,
                                    const std::vector<double>& tp_percents,
                                    const FlowOptions& base_options,
                                    StageMask stages = StageMask::all());

  /// Same grid from a unified FlowConfig: cells inherit config.options
  /// (atpg jobs, seeds, verify budget) and run config.stages.
  static std::vector<SweepJob> grid(const std::vector<CircuitProfile>& circuits,
                                    const std::vector<double>& tp_percents,
                                    const FlowConfig& config);

  /// Number of worker threads run() will use.
  int effective_jobs() const;

 private:
  SweepOptions opts_;
};

}  // namespace tpi
