#include "flow/trace_observer.hpp"

#include "util/log.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

// Instant-marker names must outlive the trace log (the tracer stores the
// pointer), so each stage boundary gets its own literal.
constexpr const char* begin_mark(Stage s) {
  switch (s) {
    case Stage::kTpiScan: return "flow.tpi_scan.begin";
    case Stage::kFloorplanPlace: return "flow.floorplan_place.begin";
    case Stage::kReorderAtpg: return "flow.reorder_atpg.begin";
    case Stage::kEco: return "flow.eco.begin";
    case Stage::kExtract: return "flow.extract.begin";
    case Stage::kSta: return "flow.sta.begin";
  }
  return "flow.stage.begin";
}

}  // namespace

void TracingFlowObserver::on_stage_begin(const StageEvent& event) {
  begun_.fetch_add(1, std::memory_order_relaxed);
  trace_instant(begin_mark(event.stage));
  log_debug() << "stage " << event.name << " begin: cells=" << event.num_cells
              << " nets=" << event.num_nets;
}

void TracingFlowObserver::on_stage_end(const StageEvent& event) {
  ended_.fetch_add(1, std::memory_order_relaxed);
  log_debug() << "stage " << event.name << " end: " << event.wall_ms
              << "ms cells=" << event.num_cells << " nets=" << event.num_nets;
}

}  // namespace tpi
