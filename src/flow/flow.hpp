// End-to-end tool flow of Fig. 2 (§3.2), exposed as a staged engine:
//
//   1. tpi_scan         TPI & scan insertion          (tpi, scan)
//   2. floorplan_place  floorplanning & placement     (layout)
//   3. reorder_atpg     layout-driven scan chain reordering + ATPG (scan, atpg)
//   4. eco              ECO: clock trees, fillers, routing         (layout)
//   5. extract          layout extraction             (extraction)
//   6. sta              static timing analysis        (sta)
//
// Layouts for different test-point counts are generated from scratch, as
// in §4.1, with identical floorplan policy (square core, same target row
// utilisation) so the comparison across TP percentages is fair.
//
// FlowEngine runs the stages one by one, times each, and reports progress
// through an optional FlowObserver. Callers pick the stages they need with
// a StageMask (partial flows, ablations); the legacy run_flow()/
// run_flow_on() wrappers execute the full flow honoring the deprecated
// FlowOptions::run_atpg / run_sta booleans.
#pragma once

#include <atomic>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "atpg/atpg.hpp"
#include "circuits/profiles.hpp"
#include "extraction/extraction.hpp"
#include "flow/stage.hpp"
#include "layout/clock_tree.hpp"
#include "layout/routing.hpp"
#include "netlist/design_db.hpp"
#include "scan/scan.hpp"
#include "sta/sta.hpp"
#include "tpi/tpi.hpp"
#include "util/metrics.hpp"
#include "verify/equiv.hpp"

namespace tpi {

struct FlowOptions {
  /// Test points as a percentage of the flip-flop count (§4.1).
  double tp_percent = 0.0;
  TpiMethod tpi_method = TpiMethod::kHybrid;

  bool layout_driven_reorder = true;  ///< flow step 3 (ablation toggle)
  /// Timing-driven TPI (§5 / Cheng & Lin): run a pre-TPI layout + STA and
  /// exclude nets with slack below `timing_exclude_slack_ps`.
  bool timing_driven_tpi = false;
  double timing_exclude_slack_ps = 400.0;

  /// DEPRECATED (PR 6): select stages with FlowEngine::run(StageMask) or a
  /// FlowConfig instead; these booleans exist only so the legacy
  /// run_flow()/run_flow_on() shims can map them via stage_mask_from().
  /// New code (benches, tests, the flow server) never reads them.
  bool run_atpg = true;  ///< Table 1 needs it; Tables 2-3 do not
  bool run_sta = true;
  AtpgOptions atpg;
  std::uint64_t seed = 0xF10F;

  /// Opt-in verify stage: snapshot the pre-transform netlist, and after the
  /// flow check mission-mode equivalence (miter + EquivChecker) and replay
  /// the ATPG pattern set against every claimed fault detection.
  bool verify = false;
  EquivOptions verify_equiv;

  /// Opt-in at-speed LBIST experiment, run at the end of the sta stage: a
  /// transition-fault BIST session clocked at the post-TPI netlist's F_max
  /// (capture period = StaResult::worst.t_cp_ps) plus a slow-speed control
  /// session at kAtSpeedSlowFactor x that period; the coverage gap is the
  /// at-speed value of the layout. Requires the sta stage.
  bool at_speed_lbist = false;
};

/// Slow-speed control clock for the at-speed LBIST pair, as a multiple of
/// the at-speed capture period (a production-tester shift clock is several
/// times slower than F_max).
inline constexpr double kAtSpeedSlowFactor = 4.0;

/// StageMask equivalent of the deprecated run_atpg / run_sta booleans:
/// all stages, minus reorder_atpg when !run_atpg, minus extract+sta when
/// !run_sta, plus verify when opts.verify.
StageMask stage_mask_from(const FlowOptions& opts);

/// Result of the opt-in verify stage (see FlowOptions::verify).
struct VerifySummary {
  bool ran = false;
  /// Mission-mode equivalence of the final netlist vs the pre-transform
  /// snapshot; trustworthy only when `error` is empty.
  bool equivalent = true;
  bool proven_x_init = false;  ///< ternary pass proved X-initial silence
  int matched_pos = 0;         ///< functional PO pairs in the miter
  std::int64_t frames_simulated = 0;
  CexTrace cex;  ///< shrunk counterexample when !equivalent

  bool replay_ran = false;  ///< false when ATPG was masked off / no patterns
  std::int64_t replay_claimed = 0;
  std::int64_t replay_confirmed = 0;
  bool replay_ok = true;

  std::string error;  ///< miter construction failure (no common POs, ...)

  bool ok() const { return ran && error.empty() && equivalent && replay_ok; }
};

struct FlowResult {
  std::string circuit;
  int num_test_points = 0;

  // ---- Table 1: test data ----
  int num_ffs = 0;  ///< scan flip-flops incl. test points (#FF)
  int num_chains = 0;
  int max_chain_length = 0;  ///< l_max
  std::int64_t num_faults = 0;
  double fault_coverage_pct = 0.0;
  double fault_efficiency_pct = 0.0;
  int saf_patterns = 0;
  std::int64_t tdv_bits = 0;
  std::int64_t tat_cycles = 0;

  // ---- Table 2: silicon area ----
  int num_cells = 0;  ///< placeable standard cells (fillers reported separately)
  int num_rows = 0;
  double row_length_um = 0.0;        ///< length of one row
  double total_row_length_um = 0.0;  ///< L_rows
  double core_area_um2 = 0.0;
  double filler_area_pct = 0.0;  ///< % of core area used by fillers
  double chip_area_um2 = 0.0;
  double wire_length_um = 0.0;  ///< L_wires
  double aspect_ratio = 1.0;
  double row_utilization_pct = 0.0;

  // ---- Table 3: timing ----
  StaResult sta;

  // ---- diagnostics ----
  int scan_enable_buffers = 0;
  int clock_buffers = 0;
  double scan_wire_length_um = 0.0;
  AtpgResult atpg;
  VerifySummary verify;  ///< populated by the opt-in verify stage

  /// At-speed vs slow-speed transition LBIST pair (FlowOptions::
  /// at_speed_lbist): capture period from the post-TPI STA, coverage gap =
  /// the faults only an at-speed clock can catch.
  struct AtSpeedReport {
    bool ran = false;
    double capture_period_ps = 0.0;  ///< at-speed period = STA worst t_cp
    double at_speed_coverage_pct = 0.0;
    double slow_speed_coverage_pct = 0.0;
    std::int64_t qualified_faults = 0;  ///< at-speed-eligible equiv faults
    std::int64_t total_faults = 0;
    double coverage_delta_pct() const {
      return at_speed_coverage_pct - slow_speed_coverage_pct;
    }
  };
  AtSpeedReport at_speed;

  // ---- instrumentation ----
  StageTimings timings;    ///< per-stage wall clock for this run
  MetricsSnapshot metrics; ///< registry snapshot after the last stage run

  /// True when a run() was stopped early by a cancellation token (see
  /// FlowEngine::set_cancel_token): stages that already finished keep
  /// their results, later ones never ran.
  bool cancelled = false;
};

/// Staged driver for the Fig. 2 flow. One engine instance = one flow run
/// over one netlist; construct a fresh engine per (circuit, tp_percent)
/// grid cell. Stages can be run all at once (run), or one at a time
/// (run_stage) with intermediate layout state inspected in between.
struct FlowConfig;  // flow_config.hpp

class FlowEngine {
 public:
  /// Engine over a caller-supplied netlist (consumed/modified in place).
  FlowEngine(Netlist& nl, const CircuitProfile& profile, const FlowOptions& opts);
  /// Generates a fresh circuit for `profile` and owns it.
  FlowEngine(const CellLibrary& lib, const CircuitProfile& profile,
             const FlowOptions& opts);
  /// Engine from a unified FlowConfig: generates config.profile at
  /// config.scale and adopts config.options. Run with
  /// engine.run(config.stages). Throws std::invalid_argument for an
  /// unknown profile name.
  FlowEngine(const CellLibrary& lib, const FlowConfig& config);
  ~FlowEngine();

  FlowEngine(const FlowEngine&) = delete;
  FlowEngine& operator=(const FlowEngine&) = delete;

  /// Observer receiving on_stage_begin/end callbacks (nullptr = none).
  /// Not owned; must outlive the run.
  void set_observer(FlowObserver* observer) { observer_ = observer; }

  /// Label carried into every StageEvent::job_label ("s38417/tp=2"), so a
  /// shared observer can attribute callbacks when many engines run
  /// concurrently. SweepRunner sets each cell's label; the default is "".
  void set_job_label(std::string label) { job_label_ = std::move(label); }
  const std::string& job_label() const { return job_label_; }

  /// Cooperative cancellation: run() re-checks the token before every
  /// stage and stops at the next stage boundary once it reads true, so a
  /// cancel lands within one stage's wall clock. The flag may be flipped
  /// from any thread (the flow server's cancel RPC does); not owned,
  /// nullptr disables the check. Finished stages keep their results and
  /// result().cancelled is set.
  void set_cancel_token(const std::atomic<bool>* cancel) { cancel_ = cancel; }

  /// Run the masked stages in flow order; a stage whose structural
  /// prerequisites were masked off is skipped with a warning (see
  /// StageMask docs for the reorder_atpg special case). Returns result().
  const FlowResult& run(StageMask mask = StageMask::all());

  /// Run a single stage now. Returns false (without running) when the
  /// stage already ran or its prerequisites are missing.
  bool run_stage(Stage stage);

  /// Metrics accumulated so far; fields of stages that have not run are
  /// default-initialised.
  const FlowResult& result() const { return res_; }
  bool stage_ran(Stage stage) const { return ran_[static_cast<std::size_t>(stage)]; }

  /// Design database threaded through all stages: TPI, ATPG and STA pull
  /// their derived views (TopoOrder / CombModel / testability) from here,
  /// so an edit-free stage boundary is a cache hit instead of a rebuild.
  DesignDB& design_db() { return *db_; }

  /// Intermediate layout state, for partial-flow callers (snapshots,
  /// custom analyses). Null until the producing stage ran.
  const Netlist& netlist() const { return *nl_; }
  const Floorplan* floorplan() const { return fp_ ? &*fp_ : nullptr; }
  const Placement* placement() const { return pl_ ? &*pl_ : nullptr; }
  const RoutingResult* routes() const { return routes_ ? &*routes_ : nullptr; }

 private:
  void do_tpi_scan();
  void do_floorplan_place();
  void do_reorder_atpg();
  void do_eco();
  void do_extract();
  void do_sta();
  void do_verify();
  /// Chain planning + stitch + control-net buffering: the structural part
  /// of stage 3, needed by eco even when ATPG is masked off.
  void stitch_scan_chains();
  bool prerequisites_ok(Stage stage) const;
  StageEvent make_event(Stage stage, double wall_ms) const;

  std::unique_ptr<Netlist> owned_nl_;  ///< set by the generating constructor
  Netlist* nl_;
  /// Pre-transform snapshot for the verify stage (null unless opts.verify).
  std::unique_ptr<Netlist> golden_;
  std::optional<DesignDB> db_;  ///< wraps *nl_, set in the constructors
  CircuitProfile profile_;
  FlowOptions opts_;
  std::string job_label_;  ///< see set_job_label
  FlowObserver* observer_ = nullptr;
  const std::atomic<bool>* cancel_ = nullptr;

  FlowResult res_;
  std::array<bool, kNumStages> ran_{};
  /// Per-engine registry: every stage runs under a ScopedMetricsRegistry
  /// pointing here, so concurrent flows on a sweep pool stay isolated.
  MetricsRegistry metrics_;

  // Inter-stage state.
  ScanOptions scan_opts_;
  bool chains_stitched_ = false;
  std::vector<CellId> buffer_cells_;
  std::optional<Floorplan> fp_;
  std::optional<Placement> pl_;
  std::optional<RoutingResult> routes_;
  std::optional<ExtractionResult> extraction_;
};

/// DEPRECATED (PR 6): thin shim over FlowEngine kept for source compat;
/// it honors the deprecated run_atpg/run_sta booleans via
/// stage_mask_from(). New code constructs a FlowEngine (or a FlowConfig,
/// see flow/flow_config.hpp) and passes an explicit StageMask.
FlowResult run_flow(const CellLibrary& lib, const CircuitProfile& profile,
                    const FlowOptions& opts);

/// DEPRECATED (PR 6): same shim on a caller-supplied netlist (consumed/
/// modified in place). Prefer FlowEngine(Netlist&, ...) + run(StageMask).
FlowResult run_flow_on(Netlist& nl, const CircuitProfile& profile, const FlowOptions& opts);

}  // namespace tpi
