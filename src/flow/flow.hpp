// End-to-end tool flow of Fig. 2 (§3.2):
//
//   1. TPI & scan insertion          (tpi, scan)
//   2. floorplanning & placement     (layout)
//   3. layout-driven scan chain reordering + ATPG   (scan, atpg)
//   4. ECO: clock trees, fillers, routing           (layout)
//   5. layout extraction             (extraction)
//   6. static timing analysis        (sta)
//
// Layouts for different test-point counts are generated from scratch, as
// in §4.1, with identical floorplan policy (square core, same target row
// utilisation) so the comparison across TP percentages is fair.
#pragma once

#include <optional>
#include <string>

#include "atpg/atpg.hpp"
#include "circuits/profiles.hpp"
#include "layout/clock_tree.hpp"
#include "layout/routing.hpp"
#include "sta/sta.hpp"
#include "tpi/tpi.hpp"

namespace tpi {

struct FlowOptions {
  /// Test points as a percentage of the flip-flop count (§4.1).
  double tp_percent = 0.0;
  TpiMethod tpi_method = TpiMethod::kHybrid;

  bool layout_driven_reorder = true;  ///< flow step 3 (ablation toggle)
  /// Timing-driven TPI (§5 / Cheng & Lin): run a pre-TPI layout + STA and
  /// exclude nets with slack below `timing_exclude_slack_ps`.
  bool timing_driven_tpi = false;
  double timing_exclude_slack_ps = 400.0;

  bool run_atpg = true;  ///< Table 1 needs it; Tables 2-3 do not
  bool run_sta = true;
  AtpgOptions atpg;
  std::uint64_t seed = 0xF10F;
};

struct FlowResult {
  std::string circuit;
  int num_test_points = 0;

  // ---- Table 1: test data ----
  int num_ffs = 0;  ///< scan flip-flops incl. test points (#FF)
  int num_chains = 0;
  int max_chain_length = 0;  ///< l_max
  std::int64_t num_faults = 0;
  double fault_coverage_pct = 0.0;
  double fault_efficiency_pct = 0.0;
  int saf_patterns = 0;
  std::int64_t tdv_bits = 0;
  std::int64_t tat_cycles = 0;

  // ---- Table 2: silicon area ----
  int num_cells = 0;  ///< placeable standard cells (fillers reported separately)
  int num_rows = 0;
  double row_length_um = 0.0;        ///< length of one row
  double total_row_length_um = 0.0;  ///< L_rows
  double core_area_um2 = 0.0;
  double filler_area_pct = 0.0;  ///< % of core area used by fillers
  double chip_area_um2 = 0.0;
  double wire_length_um = 0.0;  ///< L_wires
  double aspect_ratio = 1.0;
  double row_utilization_pct = 0.0;

  // ---- Table 3: timing ----
  StaResult sta;

  // ---- diagnostics ----
  int scan_enable_buffers = 0;
  int clock_buffers = 0;
  double scan_wire_length_um = 0.0;
  AtpgResult atpg;
};

/// Run the full flow on a freshly generated circuit for `profile`.
FlowResult run_flow(const CellLibrary& lib, const CircuitProfile& profile,
                    const FlowOptions& opts);

/// Same, but on a caller-supplied netlist (consumed/modified in place).
FlowResult run_flow_on(Netlist& nl, const CircuitProfile& profile, const FlowOptions& opts);

}  // namespace tpi
