// FlowObserver that feeds the unified observability layer: an instant
// trace marker per stage boundary plus debug-level progress logging, and
// running begin/end counters tests can assert on. The reference
// implementation of the FlowObserver hook — attach one with
// FlowEngine::set_observer (or share one across a SweepRunner; all state
// is atomic, so concurrent flows may report through the same instance).
#pragma once

#include <atomic>
#include <cstdint>

#include "flow/stage.hpp"

namespace tpi {

class TracingFlowObserver : public FlowObserver {
 public:
  void on_stage_begin(const StageEvent& event) override;
  void on_stage_end(const StageEvent& event) override;

  std::uint64_t stages_begun() const {
    return begun_.load(std::memory_order_relaxed);
  }
  std::uint64_t stages_ended() const {
    return ended_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> begun_{0};
  std::atomic<std::uint64_t> ended_{0};
};

}  // namespace tpi
