// FlowConfig — the one typed configuration object for a flow run.
//
// Before PR 6 the flow's configuration was spread across three layers:
// typed FlowOptions, the deprecated run_atpg/run_sta booleans, and ~8
// TPI_* environment lookups scattered over bench_common, log.cpp and
// fuzz.cpp. FlowConfig consolidates all of it: one struct holding the
// FlowOptions, the StageMask, the job counts and the seeds, buildable
//
//   * from the environment  — FlowConfig::from_env(), the single place
//     TPI_BENCH_JOBS / TPI_ATPG_JOBS / TPI_FAULT_MODEL / TPI_BENCH_SCALE /
//     TPI_BENCH_JSON / TPI_TRACE / TPI_TRACE_DIR / TPI_LEDGER /
//     TPI_LOG_LEVEL (+ TPI_BENCH_VERBOSE alias) / TPI_FUZZ_SEED /
//     TPI_FUZZ_ITERS / TPI_SERVER_SOCKET / TPI_SERVER_CACHE_MB /
//     TPI_SERVER_QUEUE_LIMIT / TPI_SIMD / TPI_SOC_CORES /
//     TPI_SOC_TAM_WIDTH / TPI_SOC_SCHEDULE are parsed and validated;
//   * from JSON             — FlowConfig::from_json(), used by the flow
//     server's submit RPC and config files.
//
// Precedence is purely positional: each builder layers over a base
// config, so  from_json(request, from_env())  gives explicit per-job JSON
// the last word over process env, which in turn beats the compiled-in
// defaults. Nothing else in the codebase reads these variables at run
// time — in particular AtpgOptions::jobs is never silently overridden by
// TPI_ATPG_JOBS once a config carries an explicit value (the multi-tenant
// isolation fix: two server tenants with different job counts never see
// each other's env).
//
// FlowEngine, SweepRunner, the benches and the flow server all consume
// the same FlowConfig.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "circuits/profiles.hpp"
#include "flow/flow.hpp"
#include "util/log.hpp"
#include "verify/fuzz.hpp"

namespace tpi {

/// SOC-mode knobs (DESIGN.md §16). With `cores` == 0 (the default) a
/// config describes the classic single-core flow and none of these fields
/// appears in to_json() — existing configs, ledger fingerprints and sweep
/// JSON stay byte-identical. With `cores` > 0 the job is a chip: `cores`
/// embedded cores composed from the paper profile set, each wrapped and
/// serialised onto a `tam_width`-bit Test Access Mechanism, with per-core
/// tests scheduled by the `schedule` packer (src/soc). The typed SOC
/// runner options live in soc/soc.hpp; this struct is only the
/// env/JSON-facing surface, kept here so the flow layer stays below soc.
struct SocKnobs {
  /// Embedded core count; 0 = SOC mode off (TPI_SOC_CORES).
  int cores = 0;
  /// Chip-level TAM width in bits, >= 1 (TPI_SOC_TAM_WIDTH).
  int tam_width = 32;
  /// Test scheduler: "diagonal" (Islam et al. rectangle bin packing by
  /// descending diagonal length) or "serial" (one core after another at
  /// full TAM width — the no-packing baseline). TPI_SOC_SCHEDULE.
  std::string schedule = "diagonal";

  bool operator==(const SocKnobs&) const = default;
};

/// True for the schedule spellings SocKnobs accepts.
bool valid_soc_schedule_name(std::string_view name);

struct FlowConfig {
  // ---- per-job flow definition ----
  /// Named circuit profile: "s38417", "circuit1", "p26909" (paper_profiles).
  /// Ignored in SOC mode (soc.cores > 0), where the chip composes cores
  /// from the whole paper set.
  std::string profile = "s38417";
  /// Uniform profile scale factor (TPI_BENCH_SCALE); 1.0 = paper-sized.
  double scale = 1.0;
  /// Typed flow options: tp_percent, TPI method, seeds, AtpgOptions
  /// (including atpg.jobs), verify budget. The deprecated
  /// run_atpg/run_sta booleans inside are ignored by FlowConfig
  /// consumers — `stages` below is authoritative.
  FlowOptions options;
  /// Stages to run, replacing the run_atpg/run_sta booleans.
  StageMask stages = StageMask::all();
  /// Flow-server scheduling priority: higher runs first; FIFO within one
  /// priority level.
  int priority = 0;
  /// Per-job flight recorder: capture this job's spans into a private
  /// TraceSink (retrievable via the server's `trace` RPC) even when no
  /// trace_dir is set ("record_trace" JSON key).
  bool record_trace = false;
  /// SOC workload knobs ("soc" JSON object / TPI_SOC_* env); soc.cores == 0
  /// keeps the classic single-core flow and all of its outputs byte-
  /// identical.
  SocKnobs soc;

  // ---- process-wide settings ----
  /// Sweep/server worker threads (TPI_BENCH_JOBS; <= 0 = hardware).
  int bench_jobs = 0;
  /// Sweep report output path (TPI_BENCH_JSON; empty = not written).
  std::string bench_json;
  /// Chrome-trace output path (TPI_TRACE; empty = tracing off).
  std::string trace_path;
  /// Directory for per-job flight-recorder files (TPI_TRACE_DIR): each
  /// server job / sweep cell writes its own Chrome-trace JSON here.
  /// Empty = no per-job files (the `trace` RPC still works per job via
  /// record_trace above).
  std::string trace_dir;
  /// Run-ledger JSONL path (TPI_LEDGER): every completed flow appends its
  /// deterministic metrics + config fingerprint. Empty = no ledger.
  std::string ledger;
  LogLevel log_level = LogLevel::kWarn;  ///< TPI_LOG_LEVEL
  std::uint64_t fuzz_seed = FuzzOptions{}.seed;  ///< TPI_FUZZ_SEED
  int fuzz_iters = FuzzOptions{}.iterations;     ///< TPI_FUZZ_ITERS
  /// Flow-server listen path (TPI_SERVER_SOCKET), a unix domain socket.
  std::string server_socket = "tpi_server.sock";
  /// Flow-server design-cache budget in MiB (TPI_SERVER_CACHE_MB).
  int server_cache_mb = 256;
  /// Flow-server admission limit (TPI_SERVER_QUEUE_LIMIT): submit RPCs
  /// arriving while this many jobs are already queued (not yet running)
  /// get a structured "queue_full" error instead of queueing. 0 = no
  /// limit (the seed behavior).
  int server_queue_limit = 0;
  /// Simulation kernel backend (TPI_SIMD): "auto" dispatches to the widest
  /// ISA the CPU supports; "scalar" / "avx2" / "avx512" pin it. Results
  /// are bit-identical across backends — this knob only moves wall clock
  /// (and lets the parity tests and A/B benchmarks pin a codegen).
  std::string simd = "auto";

  /// Layer every recognised TPI_* environment variable over `base`:
  /// unset variables keep the base value, invalid ones warn (via the
  /// util/env.hpp helpers) and keep the base value. This is the only
  /// place process env enters flow configuration.
  static FlowConfig from_env(const FlowConfig& base);
  static FlowConfig from_env();  ///< from_env over the compiled-in defaults

  /// Layer a JSON object over `base`. Recognised keys mirror the struct
  /// (see DESIGN.md §12 for the schema): "profile", "scale",
  /// "tp_percent", "tpi_method", "seed", "stages", "atpg_jobs",
  /// "fault_model", "at_speed", "max_patterns", "verify",
  /// "layout_driven_reorder", "timing_driven_tpi",
  /// "timing_exclude_slack_ps", "priority", "record_trace", "bench_jobs",
  /// "bench_json", "trace", "trace_dir", "ledger", "log_level",
  /// "fuzz_seed", "fuzz_iters", "server_socket", "server_cache_mb",
  /// "server_queue_limit", "simd", "soc" (a nested object with "cores",
  /// "tam_width", "schedule").
  /// Unknown keys — top-level or inside "soc" — and type mismatches fail
  /// with a structured message in *error (when non-null) and return false,
  /// leaving `out` untouched.
  static bool from_json(std::string_view text, const FlowConfig& base, FlowConfig& out,
                        std::string* error = nullptr);

  /// Round-trippable JSON of the per-job fields plus the non-default
  /// process fields: from_json(to_json(), {}) reproduces the config.
  std::string to_json() const;

  /// The named profile at `scale` (name kept verbatim so report labels
  /// stay the paper's). Returns false + *error when the name is unknown.
  bool resolve_profile(CircuitProfile& out, std::string* error = nullptr) const;

  /// Worker threads a sweep/server built from this config will use.
  int effective_bench_jobs() const;

  /// FuzzOptions with this config's seed/iteration budget applied.
  FuzzOptions fuzz_options() const;

  /// Install the process-wide side of the config: log level and SIMD
  /// backend now, trace sink armed from TPI_TRACE (idempotent).
  void apply_process_settings() const;
};

/// Canonical "hybrid" | "scoap" | "cop" spelling of a TpiMethod.
const char* tpi_method_name(TpiMethod method);
/// Inverse of tpi_method_name; nullopt for unknown spellings.
std::optional<TpiMethod> tpi_method_from_name(std::string_view name);

}  // namespace tpi
