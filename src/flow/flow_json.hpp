// Deterministic JSON serialisation of a FlowResult.
//
// Moved out of src/server (PR 8) so non-server producers — SweepRunner
// cells appending to the run ledger — can serialise results without
// linking the RPC front end. The server's result RPC, the run ledger and
// the bit-identity tests all use this one function, so "server result ==
// single-shot result == ledger line" is a byte comparison.
#pragma once

#include <string>

#include "flow/flow.hpp"
#include "util/json.hpp"

namespace tpi {

/// The deterministic subset of a FlowResult as a JSON document: scalar
/// table metrics, the worst STA endpoint, the verify summary, and the
/// flow's deterministic metrics snapshot minus the designdb.* counters
/// (those depend — deterministically — on whether the run started from
/// warm cached views).
JsonValue flow_result_to_json_value(const FlowResult& result);

/// flow_result_to_json_value serialised as one compact line.
std::string flow_result_to_json(const FlowResult& result);

}  // namespace tpi
