#include "flow/sweep.hpp"

#include <sys/stat.h>

#include <chrono>
#include <cstdio>
#include <future>
#include <memory>
#include <optional>
#include <utility>

#include "flow/flow_config.hpp"
#include "flow/flow_json.hpp"
#include "util/ledger.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace tpi {
namespace {

using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) continue;  // labels are plain ASCII
    out += c;
  }
  return out;
}

std::string fmt_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4f", v);
  return buf;
}

std::string stages_json(const StageTimings& t) {
  std::string out = "{";
  bool first = true;
  for (const Stage s : kAllStages) {
    if (!first) out += ", ";
    first = false;
    out += "\"";
    out += stage_name(s);
    out += "\": ";
    out += fmt_double(t[s]);
  }
  return out + "}";
}

// Fault-sim kernel profile of the cell's ATPG run: per-phase wall clock
// plus the (job-count-independent) event counters.
std::string atpg_profile_json(const AtpgKernelProfile& p) {
  const AtpgPhaseProfile t = p.total();
  std::string out = "{";
  out += "\"jobs\": " + std::to_string(p.jobs) + ", ";
  out += "\"random_ms\": " + fmt_double(p.random.wall_ms) + ", ";
  out += "\"podem_ms\": " + fmt_double(p.podem.wall_ms) + ", ";
  out += "\"compaction_ms\": " + fmt_double(p.compaction.wall_ms) + ", ";
  out += "\"batches\": " + std::to_string(t.batches) + ", ";
  out += "\"faults_graded\": " + std::to_string(t.faults_graded) + ", ";
  out += "\"cone_skips\": " + std::to_string(t.cone_skips) + ", ";
  out += "\"node_evals\": " + std::to_string(t.node_evals) + ", ";
  out += "\"events\": " + std::to_string(t.events) + "}";
  return out;
}

}  // namespace

std::string sanitize_trace_label(const std::string& label) {
  auto safe = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
           (c >= '0' && c <= '9') || c == '.' || c == '=' || c == '-';
  };
  std::string out;
  out.reserve(label.size());
  for (const char c : label) {
    if (safe(c)) {
      out += c;
    } else {
      static const char kHex[] = "0123456789abcdef";
      const auto b = static_cast<unsigned char>(c);
      out += '_';
      out += kHex[b >> 4];
      out += kHex[b & 0xF];
    }
  }
  return out;
}

std::string SweepReport::to_json() const {
  std::string out = "{\n  \"context\": {\n";
  out += "    \"jobs\": " + std::to_string(jobs) + ",\n";
  out += "    \"num_cells\": " + std::to_string(cells.size()) + ",\n";
  out += "    \"wall_ms\": " + fmt_double(wall_ms) + ",\n";
  out += "    \"cpu_ms\": " + fmt_double(cpu_ms) + ",\n";
  out += "    \"speedup\": " + fmt_double(speedup()) + "\n";
  out += "  },\n";
  // Deterministic subset only: this line must be bit-identical at any
  // TPI_BENCH_JOBS / TPI_ATPG_JOBS (the sweep tests diff it verbatim).
  out += "  \"metrics\": " + metrics.to_json(MetricsSnapshot::kNoRuntime) + ",\n";
  out += "  \"benchmarks\": [\n";
  bool first = true;
  for (const SweepCellResult& cell : cells) {
    if (!first) out += ",\n";
    first = false;
    const FlowResult& r = cell.result;
    out += "    {\"name\": \"" + json_escape(cell.job.label) + "\", ";
    out += "\"run_type\": \"iteration\", \"iterations\": 1, ";
    out += "\"real_time\": " + fmt_double(cell.wall_ms) + ", ";
    out += "\"time_unit\": \"ms\", ";
    out += "\"tp_percent\": " + fmt_double(cell.job.options.tp_percent) + ", ";
    out += "\"num_test_points\": " + std::to_string(r.num_test_points) + ", ";
    out += "\"num_cells\": " + std::to_string(r.num_cells) + ", ";
    out += "\"saf_patterns\": " + std::to_string(r.saf_patterns) + ", ";
    out += "\"chip_area_um2\": " + fmt_double(r.chip_area_um2) + ", ";
    out += "\"wire_length_um\": " + fmt_double(r.wire_length_um) + ", ";
    out += "\"t_cp_ps\": " + fmt_double(r.sta.worst.valid ? r.sta.worst.t_cp_ps : 0.0) + ", ";
    // Conditional keys: stuck-at cells keep the seed's exact layout.
    if (r.atpg.fault_model == FaultModel::kTransition) {
      out += "\"fault_model\": \"transition\", ";
    }
    if (r.at_speed.ran) {
      out += "\"at_speed\": {";
      out += "\"capture_period_ps\": " + fmt_double(r.at_speed.capture_period_ps) + ", ";
      out += "\"at_speed_coverage_pct\": " + fmt_double(r.at_speed.at_speed_coverage_pct) + ", ";
      out += "\"slow_speed_coverage_pct\": " +
             fmt_double(r.at_speed.slow_speed_coverage_pct) + ", ";
      out += "\"coverage_delta_pct\": " + fmt_double(r.at_speed.coverage_delta_pct()) + ", ";
      out += "\"qualified_faults\": " + std::to_string(r.at_speed.qualified_faults) + "}, ";
    }
    out += "\"atpg_kernel\": " + atpg_profile_json(r.atpg.profile) + ", ";
    out += "\"stages\": " + stages_json(r.timings) + "}";
  }
  for (const Stage s : kAllStages) {
    if (!first) out += ",\n";
    first = false;
    out += "    {\"name\": \"stage_totals/";
    out += stage_name(s);
    out += "\", \"run_type\": \"aggregate\", \"aggregate_name\": \"total\", ";
    out += "\"real_time\": " + fmt_double(stage_total_ms[static_cast<std::size_t>(s)]) +
           ", \"time_unit\": \"ms\"}";
  }
  out += "\n  ]\n}\n";
  return out;
}

bool SweepReport::write_json(const std::string& path) const {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    log_warn() << "SweepReport: cannot write " << path;
    return false;
  }
  const std::string json = to_json();
  const bool ok = std::fwrite(json.data(), 1, json.size(), f) == json.size();
  std::fclose(f);
  if (!ok) log_warn() << "SweepReport: short write to " << path;
  return ok;
}

SweepRunner::SweepRunner(SweepOptions opts) : opts_(std::move(opts)) {}

SweepRunner::SweepRunner(const FlowConfig& config) {
  opts_.jobs = config.effective_bench_jobs();
  opts_.trace_dir = config.trace_dir;
  opts_.ledger = config.ledger;
}

std::vector<SweepJob> SweepRunner::grid(const std::vector<CircuitProfile>& circuits,
                                        const std::vector<double>& tp_percents,
                                        const FlowConfig& config) {
  return grid(circuits, tp_percents, config.options, config.stages);
}

int SweepRunner::effective_jobs() const {
  return opts_.jobs > 0 ? opts_.jobs : static_cast<int>(ThreadPool::default_concurrency());
}

std::vector<SweepJob> SweepRunner::grid(const std::vector<CircuitProfile>& circuits,
                                        const std::vector<double>& tp_percents,
                                        const FlowOptions& base_options, StageMask stages) {
  std::vector<SweepJob> jobs;
  jobs.reserve(circuits.size() * tp_percents.size());
  for (const CircuitProfile& profile : circuits) {
    for (const double pct : tp_percents) {
      SweepJob job;
      char pct_str[32];
      std::snprintf(pct_str, sizeof pct_str, "%g", pct);
      job.label = profile.name + "/tp=" + pct_str;
      job.profile = profile;
      job.options = base_options;
      job.options.tp_percent = pct;
      job.stages = stages;
      jobs.push_back(std::move(job));
    }
  }
  return jobs;
}

SweepReport SweepRunner::run(const CellLibrary& lib, std::vector<SweepJob> jobs) const {
  SweepReport report;
  report.jobs = effective_jobs();
  report.cells.reserve(jobs.size());

  struct CellOut {
    FlowResult result;
    double wall_ms;
  };

  const bool progress = opts_.progress;
  FlowObserver* observer = opts_.observer;
  const std::string& trace_dir = opts_.trace_dir;
  if (!trace_dir.empty()) ::mkdir(trace_dir.c_str(), 0777);  // EEXIST is fine
  std::unique_ptr<Ledger> ledger;
  if (!opts_.ledger.empty()) ledger = std::make_unique<Ledger>(opts_.ledger);

  const auto sweep_t0 = Clock::now();
  std::vector<std::future<CellOut>> futures;
  futures.reserve(jobs.size());
  {
    ThreadPool pool(static_cast<unsigned>(report.jobs));
    for (std::size_t i = 0; i < jobs.size(); ++i) {
      const SweepJob& job = jobs[i];
      futures.push_back(pool.submit([&lib, &job, &trace_dir, i, progress, observer] {
        if (progress) std::fprintf(stderr, "[sweep] %s...\n", job.label.c_str());
        // Per-cell flight recorder: this worker's spans go to the cell's
        // own sink, so concurrent cells never share a trace file.
        std::unique_ptr<TraceSink> sink;
        if (!trace_dir.empty()) {
          sink = std::make_unique<TraceSink>(static_cast<std::uint64_t>(i + 1),
                                             job.label);
        }
        const auto t0 = Clock::now();
        FlowEngine engine(lib, job.profile, job.options);
        engine.set_job_label(job.label);
        engine.set_observer(observer);
        {
          std::optional<ScopedTraceSink> scope;
          if (sink != nullptr) scope.emplace(*sink);
          engine.run(job.stages);
        }
        if (sink != nullptr) {
          sink->write_json(trace_dir + "/" + sanitize_trace_label(job.label) +
                           ".trace.json");
        }
        return CellOut{engine.result(), ms_since(t0)};
      }));
    }
    // Collect in submission order so the report layout matches the grid
    // regardless of scheduling; future::get() rethrows task exceptions.
    // Ledger lines are appended here too, so their order is deterministic.
    for (std::size_t i = 0; i < futures.size(); ++i) {
      CellOut out = futures[i].get();
      if (ledger != nullptr) {
        FlowConfig cell_cfg;
        cell_cfg.profile = jobs[i].profile.name;
        cell_cfg.options = jobs[i].options;
        cell_cfg.stages = jobs[i].stages;
        const JsonParseResult cfg_json = json_parse(cell_cfg.to_json());
        ledger->append(jobs[i].label,
                       cfg_json.ok ? cfg_json.value : JsonValue(JsonObject{}),
                       flow_result_to_json_value(out.result));
      }
      report.cells.push_back(
          {std::move(jobs[i]), std::move(out.result), out.wall_ms});
    }
  }
  report.wall_ms = ms_since(sweep_t0);
  for (const SweepCellResult& cell : report.cells) {
    report.cpu_ms += cell.wall_ms;
    for (const Stage s : kAllStages) {
      report.stage_total_ms[static_cast<std::size_t>(s)] += cell.result.timings[s];
    }
    report.metrics.merge(cell.result.metrics);
  }
  return report;
}

}  // namespace tpi
