// Stage model for the Fig. 2 flow (§3.2): the six named stages the
// FlowEngine executes, a bitset type for selecting them, per-stage wall
// clock records, and the observer interface through which callers watch a
// run progress (progress bars, per-stage profiling, ablation harnesses).
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace tpi {

struct FlowResult;  // flow.hpp

/// The six stages of the paper's tool flow, in execution order, plus the
/// optional post-flow verification stage (miter-based equivalence against
/// the pre-transform netlist + ATPG pattern replay).
enum class Stage : std::uint8_t {
  kTpiScan = 0,         ///< 1. TPI & scan insertion
  kFloorplanPlace = 1,  ///< 2. floorplanning & placement
  kReorderAtpg = 2,     ///< 3. layout-driven scan chain reordering + ATPG
  kEco = 3,             ///< 4. ECO: clock trees, fillers, routing
  kExtract = 4,         ///< 5. layout extraction
  kSta = 5,             ///< 6. static timing analysis
  kVerify = 6,          ///< 7. (opt-in) equivalence check + pattern replay
};

/// The paper's Fig. 2 stages; StageMask::all() covers exactly these.
inline constexpr int kNumFlowStages = 6;
/// All stages including the opt-in verify stage (array sizes, loops).
inline constexpr int kNumStages = 7;

/// All stages in execution order (for range-for loops).
inline constexpr std::array<Stage, kNumStages> kAllStages = {
    Stage::kTpiScan, Stage::kFloorplanPlace, Stage::kReorderAtpg, Stage::kEco,
    Stage::kExtract, Stage::kSta,            Stage::kVerify,
};

/// Stable snake_case stage name, also used as the JSON key in sweep reports.
constexpr const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kTpiScan: return "tpi_scan";
    case Stage::kFloorplanPlace: return "floorplan_place";
    case Stage::kReorderAtpg: return "reorder_atpg";
    case Stage::kEco: return "eco";
    case Stage::kExtract: return "extract";
    case Stage::kSta: return "sta";
    case Stage::kVerify: return "verify";
  }
  return "?";
}

std::optional<Stage> stage_from_name(std::string_view name);

/// Bitset over the six stages. The structural stages (tpi_scan,
/// floorplan_place, eco) gate netlist/layout construction: masking one off
/// also starves every downstream stage that needs its product, and the
/// engine skips those with a warning. The analysis stages (reorder_atpg,
/// extract, sta) gate their analyses only; in particular, masking off
/// reorder_atpg skips compact ATPG while the scan-chain stitch — a
/// structural prerequisite of the downstream layout stages — still runs
/// (attributed to the eco stage), exactly matching the legacy
/// `run_atpg = false` behaviour.
class StageMask {
 public:
  constexpr StageMask() = default;

  /// The six paper stages. The verify stage is opt-in: add it explicitly
  /// with .with(Stage::kVerify) or via FlowOptions::verify.
  static constexpr StageMask all() { return StageMask((1u << kNumFlowStages) - 1u); }
  static constexpr StageMask none() { return StageMask(0); }
  /// Stages kTpiScan..s inclusive — the "run the flow up to here" mask.
  static constexpr StageMask through(Stage s) {
    return StageMask((1u << (static_cast<unsigned>(s) + 1u)) - 1u);
  }

  constexpr bool has(Stage s) const { return (bits_ & bit(s)) != 0; }
  constexpr StageMask with(Stage s) const { return StageMask(bits_ | bit(s)); }
  constexpr StageMask without(Stage s) const { return StageMask(bits_ & ~bit(s)); }
  constexpr bool empty() const { return bits_ == 0; }

  constexpr bool operator==(const StageMask& o) const { return bits_ == o.bits_; }
  constexpr bool operator!=(const StageMask& o) const { return bits_ != o.bits_; }

  /// "tpi_scan|floorplan_place|..." ("none" when empty).
  std::string to_string() const;

 private:
  explicit constexpr StageMask(unsigned bits) : bits_(bits) {}
  static constexpr unsigned bit(Stage s) { return 1u << static_cast<unsigned>(s); }
  unsigned bits_ = 0;
};

/// Wall-clock per stage for one flow run. Stages that were masked off (or
/// skipped for missing prerequisites) have ran = false and wall_ms = 0.
struct StageTimings {
  std::array<double, kNumStages> wall_ms{};
  std::array<bool, kNumStages> ran{};

  double operator[](Stage s) const { return wall_ms[static_cast<std::size_t>(s)]; }
  bool stage_ran(Stage s) const { return ran[static_cast<std::size_t>(s)]; }
  double total_ms() const {
    double t = 0.0;
    for (double v : wall_ms) t += v;
    return t;
  }
};

/// Snapshot handed to FlowObserver callbacks. `result` points at the
/// engine-owned partial FlowResult: fields produced by earlier stages are
/// final, later ones still zero. Valid only for the duration of the call.
struct StageEvent {
  Stage stage = Stage::kTpiScan;
  const char* name = "";
  /// Job/cell label of the run ("s38417/tp=2"; "" outside sweeps/server).
  /// Lets one observer shared across a sweep attribute events to cells.
  const char* job_label = "";
  double wall_ms = 0.0;  ///< 0 in on_stage_begin
  std::size_t num_cells = 0;
  std::size_t num_nets = 0;
  const FlowResult* result = nullptr;
};

/// Observer hook for FlowEngine: progress reporting, per-stage profiling,
/// intermediate-state assertions in tests. Callbacks run on the thread
/// executing the flow (under SweepRunner that is a worker thread — observers
/// shared across jobs must be thread-safe).
class FlowObserver {
 public:
  virtual ~FlowObserver() = default;
  virtual void on_stage_begin(const StageEvent& /*event*/) {}
  virtual void on_stage_end(const StageEvent& /*event*/) {}
};

}  // namespace tpi
