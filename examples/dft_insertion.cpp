// DfT insertion tool: read an ISCAS'89 .bench netlist, insert test points
// and scan, run compact ATPG, and write the DfT-ready netlist back out.
//
//   ./build/examples/dft_insertion [netlist.bench] [tp_percent]
//
// Without arguments a bundled sample netlist is used. This is the paper's
// step-1 flow as a standalone utility: the output netlist carries TSFFs
// (extended bench dialect: TSFF(d, ti, te, tr)) and stitched scan chains.
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "atpg/atpg.hpp"
#include "netlist/bench_io.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"
#include "util/log.hpp"

namespace {

// A small self-contained sample: 4-bit counter-ish logic with a rare
// decode, the structure TPI exists for.
constexpr const char* kSample = R"(
INPUT(en)
INPUT(a0)
INPUT(a1)
INPUT(a2)
INPUT(a3)
OUTPUT(match_out)
OUTPUT(q3)
q0 = DFF(d0)
q1 = DFF(d1)
q2 = DFF(d2)
q3 = DFF(d3)
n0 = XOR(q0, en)
d0 = AND(n0, en)
c1 = AND(q0, en)
n1 = XOR(q1, c1)
d1 = BUFF(n1)
c2 = AND(q1, c1)
n2 = XOR(q2, c2)
d2 = BUFF(n2)
c3 = AND(q2, c2)
n3 = XOR(q3, c3)
d3 = BUFF(n3)
m0 = XNOR(q0, a0)
m1 = XNOR(q1, a1)
m2 = XNOR(q2, a2)
m3 = XNOR(q3, a3)
m01 = AND(m0, m1)
m23 = AND(m2, m3)
match_out = AND(m01, m23)
)";

}  // namespace

int main(int argc, char** argv) {
  using namespace tpi;
  set_log_level(LogLevel::kInfo);
  const auto lib = make_phl130_library();

  BenchReadResult parsed = argc > 1 ? read_bench_file(argv[1], *lib)
                                    : read_bench_string(kSample, *lib, "sample");
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed.error.c_str());
    return 1;
  }
  Netlist& nl = *parsed.netlist;
  const double tp_percent = argc > 2 ? std::atof(argv[2]) : 5.0;

  const Netlist::Stats before = nl.stats();
  std::printf("loaded %s: %zu cells (%zu FFs), %zu PIs, %zu POs\n", nl.name().c_str(),
              before.cells, before.flip_flops, nl.num_pis(), nl.num_pos());

  // Step 1 of the paper's flow: TPI, then scan insertion and stitching.
  TpiOptions tpi_opts;
  tpi_opts.num_test_points = std::max(
      1, static_cast<int>(tp_percent / 100.0 * static_cast<double>(before.flip_flops)));
  const TpiReport tpi_report = insert_test_points(nl, tpi_opts);
  std::printf("inserted %zu test point(s) on:", tpi_report.sites.size());
  for (const NetId site : tpi_report.sites) std::printf(" %s", nl.net(site).name.c_str());
  std::printf("\n");

  ScanOptions scan_opts;
  scan_opts.max_chain_length = 100;
  insert_scan(nl, scan_opts);
  const ChainPlan plan = plan_chains(nl, scan_opts, {});
  stitch_chains(nl, plan);
  std::printf("scan: %d chain(s), l_max = %d\n", plan.num_chains, plan.max_length);

  // Compact ATPG on the DfT-ready netlist.
  CombModel model(nl, SeqView::kCapture);
  const TestabilityResult testab = analyze_testability(model);
  const AtpgResult atpg = run_atpg(model, testab, {});
  std::printf("ATPG: %d patterns, FC %.2f%%, FE %.2f%% over %lld faults\n",
              atpg.num_patterns(), atpg.fault_coverage_pct, atpg.fault_efficiency_pct,
              static_cast<long long>(atpg.total_faults));
  std::printf("TDV = %lld bits, TAT = %lld cycles (eqs. 1-2)\n",
              static_cast<long long>(test_data_volume(plan.num_chains, plan.max_length,
                                                      atpg.num_patterns())),
              static_cast<long long>(
                  test_application_time(plan.max_length, atpg.num_patterns())));

  const std::string out_path = nl.name() + "_dft.bench";
  std::ofstream out(out_path);
  write_bench(nl, out);
  std::printf("wrote DfT netlist to %s\n", out_path.c_str());
  return 0;
}
