// Layout gallery: run the physical half of the flow (floorplan, placement,
// scan stitching, clock trees, fillers, routing) on a chosen circuit and
// emit SVG snapshots of every stage plus an area report.
//
//   ./build/examples/layout_gallery [s38417|circuit1|p26909] [scale] [tp%]
//
// Defaults: s38417 at scale 0.25 with 2% test points (fast to render).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "circuits/generator.hpp"
#include "layout/clock_tree.hpp"
#include "layout/svg.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"
#include "util/log.hpp"

int main(int argc, char** argv) {
  using namespace tpi;
  set_log_level(LogLevel::kInfo);
  const auto lib = make_phl130_library();

  CircuitProfile profile = s38417_profile();
  if (argc > 1 && std::strcmp(argv[1], "circuit1") == 0) profile = circuit1_profile();
  if (argc > 1 && std::strcmp(argv[1], "p26909") == 0) profile = p26909_profile();
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  const double tp_percent = argc > 3 ? std::atof(argv[3]) : 2.0;
  const std::string base = profile.name;
  if (scale != 1.0) {
    const std::string keep = profile.name;
    profile = scaled(profile, scale);
    profile.name = keep;
  }

  auto nl = generate_circuit(*lib, profile);
  TpiOptions tpi_opts;
  tpi_opts.num_test_points = static_cast<int>(
      tp_percent / 100.0 * static_cast<double>(nl->flip_flops().size()));
  insert_test_points(*nl, tpi_opts);
  ScanOptions scan_opts;
  scan_opts.max_chain_length = profile.max_chain_length;
  scan_opts.max_chains = profile.max_chains;
  insert_scan(*nl, scan_opts);

  FloorplanOptions fpo;
  fpo.target_row_utilization = profile.target_row_utilization;
  const Floorplan fp = make_floorplan(*nl, fpo);
  write_layout_svg(base + "_floorplan.svg", *nl, fp, nullptr, nullptr,
                   LayoutStage::kFloorplan);

  Placement pl = place(*nl, fp, {});
  std::vector<std::pair<double, double>> pos(nl->num_cells());
  for (std::size_t c = 0; c < pos.size(); ++c) pos[c] = {pl.pos[c].x, pl.pos[c].y};
  ChainPlan plan = plan_chains(*nl, scan_opts, pos);
  reorder_chains(plan, pos);
  stitch_chains(*nl, plan);
  const CtsReport cts = synthesize_clock_trees(*nl, fp, pl, {});
  const FillerReport fillers = insert_fillers(*nl, fp, pl);
  write_layout_svg(base + "_placement.svg", *nl, fp, &pl, nullptr,
                   LayoutStage::kPlacement);

  assign_io_pads(*nl, fp, pl);
  const RoutingResult routes = route(*nl, fp, pl);
  write_layout_svg(base + "_routing.svg", *nl, fp, &pl, &routes, LayoutStage::kRouted);

  const Netlist::Stats stats = nl->stats();
  std::printf("\n=== %s (scale %.2f, %d test points) ===\n", base.c_str(), scale,
              tpi_opts.num_test_points);
  std::printf("cells           : %zu (+%d clock buffers, %d fillers)\n", stats.cells,
              cts.buffers_added, fillers.cells_added);
  std::printf("rows            : %d x %.1f um\n", fp.num_rows, fp.row_length_um);
  std::printf("core area       : %.0f um^2 (aspect %.2f)\n", fp.core_area_um2(),
              fp.aspect_ratio());
  std::printf("chip area       : %.0f um^2\n", fp.chip_area_um2());
  std::printf("filler area     : %.0f um^2 (%.2f%% of core)\n", fillers.area_um2,
              100.0 * fillers.area_um2 / fp.core_area_um2());
  std::printf("wire length     : %.0f um (%.0f um congestion detours)\n",
              routes.total_wire_length_um, routes.detour_length_um);
  std::printf("scan chains     : %d (l_max %d)\n", plan.num_chains, plan.max_length);
  std::printf("snapshots       : %s_{floorplan,placement,routing}.svg\n", base.c_str());
  return 0;
}
