// Timing explorer: run the complete Fig. 2 flow on a circuit with and
// without test points and print a Pearl-style critical-path report with the
// eq. (3) decomposition, per clock domain.
//
//   ./build/examples/timing_report [s38417|circuit1|p26909] [scale] [tp%]
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "flow/flow.hpp"
#include "util/log.hpp"
#include "util/table.hpp"

namespace {

void print_path(const tpi::FlowResult& r, const char* label) {
  using namespace tpi;
  std::printf("--- %s ---\n", label);
  for (std::size_t d = 0; d < r.sta.per_domain.size(); ++d) {
    const CriticalPath& cp = r.sta.per_domain[d];
    if (!cp.valid) continue;
    std::printf("clock domain %zu: T_cp = %.0f ps  (F_max = %.1f MHz)\n", d, cp.t_cp_ps,
                cp.fmax_mhz());
    std::printf("  T_wires=%.0f  T_intrinsic=%.0f  T_load-dep=%.0f  T_setup=%.0f  "
                "T_skew=%.0f   [eq. 3]\n",
                cp.t_wires_ps, cp.t_intrinsic_ps, cp.t_load_dep_ps, cp.t_setup_ps,
                cp.t_skew_ps);
    std::printf("  cells on path: %d (%d test point%s)\n", cp.logic_cells_on_path,
                cp.test_points_on_path, cp.test_points_on_path == 1 ? "" : "s");
  }
  std::printf("slow nodes (extrapolated lookups): %d\n\n", r.sta.slow_nodes);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace tpi;
  set_log_level(LogLevel::kInfo);
  const auto lib = make_phl130_library();

  CircuitProfile profile = s38417_profile();
  if (argc > 1 && std::strcmp(argv[1], "circuit1") == 0) profile = circuit1_profile();
  if (argc > 1 && std::strcmp(argv[1], "p26909") == 0) profile = p26909_profile();
  const double scale = argc > 2 ? std::atof(argv[2]) : 0.25;
  const double tp_percent = argc > 3 ? std::atof(argv[3]) : 2.0;
  if (scale != 1.0) {
    const std::string keep = profile.name;
    profile = scaled(profile, scale);
    profile.name = keep;
  }

  // Timing only: mask off the ATPG stage instead of the legacy
  // run_atpg = false flag.
  const StageMask timing_stages = StageMask::all().without(Stage::kReorderAtpg);

  FlowOptions base_opts;
  FlowEngine base_engine(*lib, profile, base_opts);
  const FlowResult base = base_engine.run(timing_stages);

  FlowOptions tp_opts = base_opts;
  tp_opts.tp_percent = tp_percent;
  FlowEngine tp_engine(*lib, profile, tp_opts);
  const FlowResult with_tp = tp_engine.run(timing_stages);

  std::printf("\n=== %s: static timing before/after TPI ===\n\n", profile.name.c_str());
  print_path(base, "without test points");
  char label[64];
  std::snprintf(label, sizeof label, "with %.1f%% test points (%d TSFFs)", tp_percent,
                with_tp.num_test_points);
  print_path(with_tp, label);

  const double delta = 100.0 *
                       (with_tp.sta.worst.t_cp_ps - base.sta.worst.t_cp_ps) /
                       base.sta.worst.t_cp_ps;
  std::printf("worst-path delta: %+.2f%% (paper §6: 1%% TP may cost >=5%% in\n"
              "performance when no timing optimisation is performed)\n",
              delta);

  std::printf("\nflow stage wall clock (with-TP run):");
  for (const Stage s : kAllStages) {
    if (with_tp.timings.stage_ran(s)) {
      std::printf("  %s %.0fms", stage_name(s), with_tp.timings[s]);
    }
  }
  std::printf("  (total %.0fms)\n", with_tp.timings.total_ms());
  return 0;
}
