// Quickstart: the complete DfT + layout flow on a small synthetic circuit.
//
// Generates a scaled-down version of the paper's s38417 test case, runs the
// Fig. 2 flow twice through the staged FlowEngine — without test points and
// with 2% test points — narrating each stage through a FlowObserver, and
// prints the headline metrics of all three tables side by side plus the
// per-stage wall-clock breakdown.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "circuits/generator.hpp"
#include "flow/flow.hpp"
#include "util/log.hpp"

namespace {

// Progress narrator: one line per completed stage.
class PrintProgress : public tpi::FlowObserver {
 public:
  void on_stage_end(const tpi::StageEvent& ev) override {
    std::printf("  [%d/6] %-15s %7.1f ms  (%zu cells)\n",
                static_cast<int>(ev.stage) + 1, ev.name, ev.wall_ms, ev.num_cells);
  }
};

}  // namespace

int main() {
  using namespace tpi;
  set_log_level(LogLevel::kWarn);

  const auto lib = make_phl130_library();
  CircuitProfile profile = scaled(s38417_profile(), 0.10);
  profile.name = "s38417_mini";

  PrintProgress progress;
  auto run_at = [&](double tp_percent) {
    FlowOptions opts;
    opts.tp_percent = tp_percent;
    std::printf("%s @ %.0f%% test points:\n", profile.name.c_str(), tp_percent);
    FlowEngine engine(*lib, profile, opts);
    engine.set_observer(&progress);
    return engine.run();  // all six stages
  };

  const FlowResult base = run_at(0.0);
  const FlowResult with_tp = run_at(2.0);

  auto pct = [](double now, double before) {
    return before > 0 ? 100.0 * (now - before) / before : 0.0;
  };

  std::printf("\n%-28s %14s %14s %9s\n", "metric", "no TP", "2% TP", "delta%");
  std::printf("%-28s %14d %14d\n", "test points", base.num_test_points,
              with_tp.num_test_points);
  std::printf("%-28s %14d %14d\n", "scan flip-flops", base.num_ffs, with_tp.num_ffs);
  std::printf("%-28s %14lld %14lld %+8.1f\n", "stuck-at faults",
              static_cast<long long>(base.num_faults),
              static_cast<long long>(with_tp.num_faults),
              pct(static_cast<double>(with_tp.num_faults), static_cast<double>(base.num_faults)));
  std::printf("%-28s %14.2f %14.2f\n", "fault coverage (%)", base.fault_coverage_pct,
              with_tp.fault_coverage_pct);
  std::printf("%-28s %14d %14d %+8.1f\n", "ATPG patterns", base.saf_patterns,
              with_tp.saf_patterns,
              pct(with_tp.saf_patterns, base.saf_patterns));
  std::printf("%-28s %14lld %14lld %+8.1f\n", "test data volume (bits)",
              static_cast<long long>(base.tdv_bits), static_cast<long long>(with_tp.tdv_bits),
              pct(static_cast<double>(with_tp.tdv_bits), static_cast<double>(base.tdv_bits)));
  std::printf("%-28s %14.0f %14.0f %+8.2f\n", "chip area (um^2)", base.chip_area_um2,
              with_tp.chip_area_um2, pct(with_tp.chip_area_um2, base.chip_area_um2));
  std::printf("%-28s %14.0f %14.0f %+8.2f\n", "wire length (um)", base.wire_length_um,
              with_tp.wire_length_um, pct(with_tp.wire_length_um, base.wire_length_um));
  if (base.sta.worst.valid && with_tp.sta.worst.valid) {
    std::printf("%-28s %14.0f %14.0f %+8.2f\n", "critical path (ps)", base.sta.worst.t_cp_ps,
                with_tp.sta.worst.t_cp_ps,
                pct(with_tp.sta.worst.t_cp_ps, base.sta.worst.t_cp_ps));
    std::printf("%-28s %14.1f %14.1f\n", "Fmax (MHz)", base.sta.worst.fmax_mhz(),
                with_tp.sta.worst.fmax_mhz());
    std::printf("%-28s %14d %14d\n", "test points on crit. path", 0,
                with_tp.sta.worst.test_points_on_path);
  }
  std::printf("\nDone. See DESIGN.md for the full experiment index.\n");
  return 0;
}
