#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and print a delta table.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--threshold PCT]
    tools/bench_compare.py --ledger RUNS.jsonl [--last N] [--threshold PCT]

Bench mode: benchmarks are matched by name; the table reports old/new
real time and the speedup (old / new, so > 1.0 is an improvement).
Benchmarks present in only one file are listed but not compared. Exits
nonzero when any matched benchmark regressed by more than --threshold
percent (default 10), so the script can gate CI or a pre-commit check:

    tools/bench_compare.py BENCH_atpg_pre_simd.json BENCH_atpg.json

Ledger mode (--ledger): reads the TPI_LEDGER run ledger (one JSON object
per line, written by the flow server / SweepRunner) and, per run label,
diffs the newest entry's deterministic flow metrics against the mean of
the preceding --last entries with the same label and config fingerprint.
Any metric drifting more than --threshold percent is printed as an
offending row and the script exits 1 — same contract as the bench mode.
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> (real_time, time_unit), aggregates (mean/median/...) skipped."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * _UNIT_NS.get(unit, 1.0)


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def load_ledger(path):
    """Parse the JSONL ledger, skipping malformed lines (torn writes)."""
    entries = []
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except ValueError:
                continue
            if isinstance(obj, dict) and "flow" in obj:
                entries.append(obj)
    return entries


def flatten_metrics(obj, prefix=""):
    """Numeric leaves of a flow-result object as {dotted.name: value}."""
    out = {}
    if isinstance(obj, dict):
        for key, value in obj.items():
            name = f"{prefix}.{key}" if prefix else key
            out.update(flatten_metrics(value, name))
    elif isinstance(obj, bool):
        pass  # bool is an int subclass; states are not drift-comparable
    elif isinstance(obj, (int, float)):
        out[prefix] = float(obj)
    return out


def compare_ledger(path, threshold, last):
    # A missing or empty ledger is a normal state (no runs recorded yet),
    # not an error: report it and succeed so CI hooks can run
    # unconditionally.
    try:
        entries = load_ledger(path)
    except OSError as e:
        print(f"ledger: cannot read {path}: {e.strerror or e}; "
              "nothing to compare", file=sys.stderr)
        return 0
    if not entries:
        print(f"ledger: {path} has no entries; nothing to compare",
              file=sys.stderr)
        return 0
    by_label = {}
    for e in entries:
        by_label.setdefault(e.get("label", ""), []).append(e)

    compared = 0
    offenders = []  # (label, metric, baseline, newest, drift_pct)
    for label in sorted(by_label):
        runs = by_label[label]
        newest = runs[-1]
        # Baseline: the preceding runs with the same config fingerprint —
        # a config change legitimately moves every metric.
        base_runs = [e for e in runs[:-1]
                     if e.get("config_fp") == newest.get("config_fp")]
        base_runs = base_runs[-last:]
        if not base_runs:
            continue
        compared += 1
        new_metrics = flatten_metrics(newest.get("flow", {}))
        base_sums, base_counts = {}, {}
        for e in base_runs:
            for name, value in flatten_metrics(e.get("flow", {})).items():
                base_sums[name] = base_sums.get(name, 0.0) + value
                base_counts[name] = base_counts.get(name, 0) + 1
        for name in sorted(new_metrics):
            if name not in base_sums:
                continue
            base = base_sums[name] / base_counts[name]
            new = new_metrics[name]
            if base == 0.0:
                drift = 0.0 if new == 0.0 else float("inf")
            else:
                drift = abs(new - base) / abs(base) * 100.0
            if drift > threshold:
                offenders.append((label, name, base, new, drift))

    if compared == 0:
        print("ledger: no label has both a newest entry and same-fingerprint "
              "history to compare against", file=sys.stderr)
        return 2
    if offenders:
        width = max(len(f"{label}:{name}") for label, name, *_ in offenders)
        print(f"{'metric':<{width}}  {'baseline':>12}  {'newest':>12}  {'drift':>8}")
        print(f"{'-' * width}  {'-' * 12}  {'-' * 12}  {'-' * 8}")
        for label, name, base, new, drift in offenders:
            print(f"{label + ':' + name:<{width}}  {base:>12.4g}  {new:>12.4g}"
                  f"  {drift:>7.1f}%")
        print(f"\n{len(offenders)} metric(s) drifted more than "
              f"{threshold:.0f}% across {compared} compared label(s)",
              file=sys.stderr)
        return 1
    print(f"ledger: {compared} label(s) compared, no metric drifted more than "
          f"{threshold:.0f}%")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", nargs="?", help="baseline google-benchmark JSON")
    ap.add_argument("new", nargs="?", help="candidate google-benchmark JSON")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression/drift threshold in percent (default 10)")
    ap.add_argument("--ledger", metavar="PATH",
                    help="diff the newest run per label in a TPI_LEDGER JSONL "
                         "file against its history instead of comparing two "
                         "benchmark files")
    ap.add_argument("--last", type=int, default=1,
                    help="ledger mode: baseline is the mean of the last N "
                         "prior entries per label (default 1)")
    args = ap.parse_args()

    if args.ledger:
        if args.old or args.new:
            ap.error("--ledger takes no positional benchmark files")
        return compare_ledger(args.ledger, args.threshold, max(1, args.last))
    if not args.old or not args.new:
        ap.error("bench mode needs OLD.json and NEW.json (or use --ledger)")

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)
    names = [n for n in old if n in new]
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    if not names:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  {'speedup':>8}")
    print(f"{'-' * width}  {'-' * 10}  {'-' * 10}  {'-' * 8}")
    regressions = []
    for name in names:
        old_ns = to_ns(*old[name])
        new_ns = to_ns(*new[name])
        speedup = old_ns / new_ns if new_ns > 0 else float("inf")
        flag = ""
        if new_ns > old_ns * (1.0 + args.threshold / 100.0):
            regressions.append((name, speedup))
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {fmt_time(old_ns):>10}  {fmt_time(new_ns):>10}"
              f"  {speedup:>7.2f}x{flag}")

    for name in only_old:
        print(f"{name:<{width}}  {fmt_time(to_ns(*old[name])):>10}  {'(gone)':>10}")
    for name in only_new:
        print(f"{name:<{width}}  {'(new)':>10}  {fmt_time(to_ns(*new[name])):>10}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, speedup in regressions:
            print(f"  {name}: {1.0 / speedup:.2f}x slower", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
