#!/usr/bin/env python3
"""Compare two google-benchmark JSON files and print a delta table.

Usage:
    tools/bench_compare.py OLD.json NEW.json [--threshold PCT]

Benchmarks are matched by name; the table reports old/new real time and
the speedup (old / new, so > 1.0 is an improvement). Benchmarks present
in only one file are listed but not compared. Exits nonzero when any
matched benchmark regressed by more than --threshold percent (default
10), so the script can gate CI or a pre-commit check:

    tools/bench_compare.py BENCH_atpg_pre_simd.json BENCH_atpg.json
"""

import argparse
import json
import sys


def load_benchmarks(path):
    """name -> (real_time, time_unit), aggregates (mean/median/...) skipped."""
    with open(path) as f:
        data = json.load(f)
    out = {}
    for b in data.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        out[b["name"]] = (float(b["real_time"]), b.get("time_unit", "ns"))
    return out


_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}


def to_ns(value, unit):
    return value * _UNIT_NS.get(unit, 1.0)


def fmt_time(ns):
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("old", help="baseline google-benchmark JSON")
    ap.add_argument("new", help="candidate google-benchmark JSON")
    ap.add_argument("--threshold", type=float, default=10.0,
                    help="regression threshold in percent (default 10)")
    args = ap.parse_args()

    old = load_benchmarks(args.old)
    new = load_benchmarks(args.new)
    names = [n for n in old if n in new]
    only_old = sorted(set(old) - set(new))
    only_new = sorted(set(new) - set(old))

    if not names:
        print("no common benchmarks between the two files", file=sys.stderr)
        return 2

    width = max(len(n) for n in names)
    print(f"{'benchmark':<{width}}  {'old':>10}  {'new':>10}  {'speedup':>8}")
    print(f"{'-' * width}  {'-' * 10}  {'-' * 10}  {'-' * 8}")
    regressions = []
    for name in names:
        old_ns = to_ns(*old[name])
        new_ns = to_ns(*new[name])
        speedup = old_ns / new_ns if new_ns > 0 else float("inf")
        flag = ""
        if new_ns > old_ns * (1.0 + args.threshold / 100.0):
            regressions.append((name, speedup))
            flag = "  REGRESSED"
        print(f"{name:<{width}}  {fmt_time(old_ns):>10}  {fmt_time(new_ns):>10}"
              f"  {speedup:>7.2f}x{flag}")

    for name in only_old:
        print(f"{name:<{width}}  {fmt_time(to_ns(*old[name])):>10}  {'(gone)':>10}")
    for name in only_new:
        print(f"{name:<{width}}  {'(new)':>10}  {fmt_time(to_ns(*new[name])):>10}")

    if regressions:
        print(f"\n{len(regressions)} benchmark(s) regressed more than "
              f"{args.threshold:.0f}%:", file=sys.stderr)
        for name, speedup in regressions:
            print(f"  {name}: {1.0 / speedup:.2f}x slower", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
