#!/usr/bin/env python3
"""Live metrics poller for the tpi flow server (top(1) for flow jobs).

Connects to the daemon's unix socket and renders the `metrics` RPC —
Prometheus text exposition with `tpi_`-prefixed names — plus the `stats`
job table, refreshing every --interval seconds:

    tools/tpi_top.py --socket tpi_server.sock            # watch loop
    tools/tpi_top.py --socket tpi_server.sock --once     # one scrape
    tools/tpi_top.py --socket tpi_server.sock --once --format json

The --once output is exactly what a Prometheus scrape job should ingest
(pipe it to a textfile-collector drop directory or a pushgateway).
Stdlib only; the wire protocol is one JSON object per line, matching
DESIGN.md §12.
"""

import argparse
import json
import socket
import sys
import time


class RpcClient:
    """Newline-delimited JSON-RPC over an AF_UNIX stream socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.buf = b""
        self.next_id = 1

    def call(self, method, params=None):
        req = {"id": self.next_id, "method": method}
        self.next_id += 1
        if params is not None:
            req["params"] = params
        self.sock.sendall(json.dumps(req).encode() + b"\n")
        while b"\n" not in self.buf:
            chunk = self.sock.recv(65536)
            if not chunk:
                raise ConnectionError("server closed the connection")
            self.buf += chunk
        line, self.buf = self.buf.split(b"\n", 1)
        resp = json.loads(line)
        if "error" in resp:
            raise RuntimeError(f"{method}: {resp['error']}")
        return resp.get("result", {})

    def close(self):
        self.sock.close()


def render_stats(stats):
    jobs = stats.get("jobs", {})
    lines = [
        f"workers {stats.get('workers', '?')}   "
        f"jobs: {jobs.get('submitted', 0)} submitted, "
        f"{jobs.get('queued', 0)} queued, {jobs.get('running', 0)} running, "
        f"{jobs.get('done', 0)} done, {jobs.get('failed', 0)} failed, "
        f"{jobs.get('cancelled', 0)} cancelled",
        f"cache: {stats.get('server.cache.hits', 0)} hits / "
        f"{stats.get('server.cache.misses', 0)} misses, "
        f"{stats.get('server.cache.entries', 0)} entries, "
        f"{stats.get('server.cache.bytes', 0) / (1 << 20):.1f} MiB",
    ]
    wait = stats.get("server.queue_wait_ns")
    if isinstance(wait, dict) and wait.get("count", 0) > 0:
        mean_ms = wait["sum"] / wait["count"] / 1e6
        lines.append(f"queue wait: n={wait['count']} mean={mean_ms:.2f} ms "
                     f"max={wait.get('max', 0) / 1e6:.2f} ms")
    return "\n".join(lines)


def scrape(client, fmt):
    if fmt == "json":
        return json.dumps(client.call("metrics", {"format": "json"})["metrics"],
                          indent=2, sort_keys=True)
    return client.call("metrics", {"format": "prometheus"})["prometheus"]


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--socket", default="tpi_server.sock",
                    help="server unix socket path (default tpi_server.sock)")
    ap.add_argument("--interval", type=float, default=2.0,
                    help="refresh period in seconds (default 2)")
    ap.add_argument("--once", action="store_true",
                    help="print one scrape and exit (Prometheus exposition)")
    ap.add_argument("--format", choices=("prometheus", "json"),
                    default="prometheus", help="metrics payload format")
    args = ap.parse_args()

    try:
        client = RpcClient(args.socket)
    except OSError as e:
        print(f"cannot connect to {args.socket}: {e}", file=sys.stderr)
        return 1

    try:
        if args.once:
            sys.stdout.write(scrape(client, args.format))
            if args.format == "json":
                sys.stdout.write("\n")
            return 0
        while True:
            t0 = time.monotonic()
            stats = client.call("stats")
            body = scrape(client, args.format)
            latency_ms = (time.monotonic() - t0) * 1e3
            sys.stdout.write("\x1b[2J\x1b[H")  # clear screen, home cursor
            print(f"tpi_top — {args.socket}  "
                  f"(poll {latency_ms:.1f} ms, every {args.interval:g}s, "
                  f"ctrl-c to quit)")
            print(render_stats(stats))
            print()
            sys.stdout.write(body)
            sys.stdout.flush()
            time.sleep(args.interval)
    except KeyboardInterrupt:
        return 0
    except (ConnectionError, RuntimeError, OSError) as e:
        print(f"\n{e}", file=sys.stderr)
        return 1
    finally:
        client.close()


if __name__ == "__main__":
    sys.exit(main())
