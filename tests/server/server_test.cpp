// Flow-server job lifecycle, scheduling and cache semantics, driven
// through the transport-free handle_request() core (the AF_UNIX front end
// gets one round-trip test; the forked-daemon path is the server_smoke
// load test in bench/). The soak test is the acceptance criterion: results
// byte-identical to single-shot FlowEngine runs at any concurrency.
#include "server/flow_server.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "../common/test_circuits.hpp"
#include "server/client.hpp"
#include "circuits/design_cache.hpp"
#include "util/json.hpp"

namespace tpi {
namespace {

// Small but full-flow config: scaled s38417 keeps every stage meaningful
// while a single job stays in the tens of milliseconds.
FlowConfig tiny_base() {
  FlowConfig base;
  base.profile = "s38417";
  base.scale = 0.01;
  base.options.atpg.jobs = 1;
  return base;
}

JsonValue parse_response(const std::string& line) {
  const JsonParseResult r = json_parse(line);
  EXPECT_TRUE(r.ok) << r.error << " in " << line;
  EXPECT_TRUE(r.value.is_object()) << line;
  return r.value;
}

// The "result" payload of a successful response; fails the test on error
// responses.
JsonValue rpc_result(FlowServer& server, const std::string& request) {
  const JsonValue resp = parse_response(server.handle_request(request));
  const JsonValue* err = resp.find("error");
  EXPECT_EQ(err, nullptr) << (err != nullptr ? err->as_string() : "")
                          << " for " << request;
  const JsonValue* result = resp.find("result");
  EXPECT_NE(result, nullptr) << request;
  return result != nullptr ? *result : JsonValue{};
}

std::uint64_t submit(FlowServer& server, const std::string& params) {
  const JsonValue result = rpc_result(
      server, "{\"id\": 1, \"method\": \"submit\", \"params\": " + params + "}");
  const JsonValue* job = result.find("job");
  EXPECT_NE(job, nullptr);
  EXPECT_EQ(result.find("state")->as_string(), "queued");
  return job != nullptr ? static_cast<std::uint64_t>(job->as_number()) : 0;
}

// Blocking result RPC; returns the result payload.
JsonValue wait_result(FlowServer& server, std::uint64_t job) {
  return rpc_result(server, "{\"id\": 2, \"method\": \"result\", \"params\": {\"job\": " +
                                std::to_string(job) + ", \"wait\": true}}");
}

TEST(FlowServerTest, SubmitStatusResultDone) {
  FlowServerOptions opts;
  opts.workers = 2;
  FlowServer server(tiny_base(), opts);

  // 10% of the scaled-down FF count still rounds to a real test point.
  const std::uint64_t job = submit(server, "{\"tp_percent\": 10.0}");
  ASSERT_GT(job, 0u);

  const JsonValue status = rpc_result(
      server, "{\"id\": 9, \"method\": \"status\", \"params\": {\"job\": " +
                  std::to_string(job) + "}}");
  const std::string state = status.find("state")->as_string();
  EXPECT_TRUE(state == "queued" || state == "running" || state == "done") << state;

  const JsonValue result = wait_result(server, job);
  EXPECT_EQ(result.find("state")->as_string(), "done");
  EXPECT_GE(result.find("queue_wait_ns")->as_number(), 0.0);
  const JsonValue* flow = result.find("flow");
  ASSERT_NE(flow, nullptr);
  EXPECT_GT(flow->find("num_cells")->as_number(), 0.0);
  EXPECT_GT(flow->find("num_test_points")->as_number(), 0.0);
  EXPECT_TRUE(flow->find("sta_valid")->as_bool());
  ASSERT_NE(flow->find("metrics"), nullptr);
  // designdb.* counters are excluded from the bit-identity surface.
  EXPECT_EQ(flow->serialise().find("designdb."), std::string::npos);
}

// Acceptance criterion: N concurrent clients x M jobs produce results
// byte-identical to single-shot FlowEngine runs of the same configs, with
// cache hits after the first encounter of each profile.
TEST(FlowServerTest, SoakResultsBitIdenticalToSingleShot) {
  const std::vector<std::string> params = {
      "{\"profile\": \"s38417\", \"tp_percent\": 0.0}",
      "{\"profile\": \"s38417\", \"tp_percent\": 2.0}",
      "{\"profile\": \"s38417\", \"tp_percent\": 4.0}",
      "{\"profile\": \"circuit1\", \"tp_percent\": 0.0}",
      "{\"profile\": \"circuit1\", \"tp_percent\": 2.0}",
      "{\"profile\": \"circuit1\", \"tp_percent\": 4.0}",
  };

  // Single-shot references, canonicalised through the same parse +
  // serialise as the RPC path so the comparison is byte-for-byte.
  const FlowConfig base = tiny_base();
  std::vector<std::string> expected;
  for (const std::string& p : params) {
    FlowConfig cfg;
    std::string error;
    ASSERT_TRUE(FlowConfig::from_json(p, base, cfg, &error)) << error;
    FlowEngine engine(test::lib(), cfg);
    const std::string json = flow_result_to_json(engine.run(cfg.stages));
    const JsonParseResult parsed = json_parse(json);
    ASSERT_TRUE(parsed.ok) << parsed.error;
    expected.push_back(parsed.value.serialise());
  }

  FlowServerOptions opts;
  opts.workers = 4;
  FlowServer server(tiny_base(), opts);

  constexpr int kClients = 4;
  constexpr int kJobsPerClient = 20;
  std::vector<std::string> mismatches;
  std::mutex mismatches_mu;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::size_t which = (c * kJobsPerClient + j) % params.size();
        const std::uint64_t job = submit(server, params[which]);
        const JsonValue result = wait_result(server, job);
        const JsonValue* flow = result.find("flow");
        const std::string got = flow != nullptr ? flow->serialise() : "<missing>";
        if (result.find("state")->as_string() != "done" || got != expected[which]) {
          std::lock_guard<std::mutex> lock(mismatches_mu);
          mismatches.push_back(params[which] + ": " + got);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_TRUE(mismatches.empty())
      << mismatches.size() << " mismatches, first: " << mismatches.front();

  // Two distinct (profile, seed, library) keys across 80 jobs: the cache
  // built each at most once (dedup may count concurrent first requests as
  // hits) and served everything else warm.
  const DesignCache::Stats cs = server.cache_stats();
  EXPECT_LE(cs.misses, 2u);
  EXPECT_GE(cs.hits, static_cast<std::uint64_t>(kClients * kJobsPerClient) - 2);
  EXPECT_EQ(cs.evictions, 0u);

  // Every job's queue wait was observed into the server's registry.
  const MetricsSnapshot snap = server.metrics_snapshot();
  const MetricValue* wait = snap.find("server.queue_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_EQ(wait->hist.count, static_cast<std::uint64_t>(kClients * kJobsPerClient));

  const JsonValue stats = rpc_result(server, "{\"id\": 3, \"method\": \"stats\"}");
  EXPECT_EQ(stats.find("jobs")->find("submitted")->as_number(),
            static_cast<double>(kClients * kJobsPerClient));
  EXPECT_EQ(stats.find("jobs")->find("done")->as_number(),
            static_cast<double>(kClients * kJobsPerClient));
  EXPECT_EQ(stats.find("server.cache.hits")->as_number(),
            static_cast<double>(cs.hits));
}

// A gate for deterministic scheduling tests: blocks the first job that
// starts until release(), and records every job the pool actually ran.
class StartGate {
 public:
  std::function<void(std::uint64_t)> hook() {
    return [this](std::uint64_t id) {
      std::unique_lock<std::mutex> lock(mu_);
      started_.push_back(id);
      cv_.notify_all();
      if (started_.size() == 1) {
        cv_.wait(lock, [&] { return released_; });
      }
    };
  }
  void wait_first_started() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !started_.empty(); });
  }
  void release() {
    std::lock_guard<std::mutex> lock(mu_);
    released_ = true;
    cv_.notify_all();
  }
  std::vector<std::uint64_t> started() {
    std::lock_guard<std::mutex> lock(mu_);
    return started_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  std::vector<std::uint64_t> started_;
  bool released_ = false;
};

TEST(FlowServerTest, PriorityOrderingUnderSaturatedPool) {
  StartGate gate;
  FlowServerOptions opts;
  opts.workers = 1;
  opts.on_job_start = gate.hook();
  FlowServer server(tiny_base(), opts);

  // First job occupies the single worker at the gate; the rest queue up.
  const std::uint64_t blocker = submit(server, "{\"tp_percent\": 0.0}");
  gate.wait_first_started();
  const std::uint64_t low = submit(server, "{\"tp_percent\": 0.0, \"priority\": 0}");
  const std::uint64_t high = submit(server, "{\"tp_percent\": 0.0, \"priority\": 5}");
  const std::uint64_t mid = submit(server, "{\"tp_percent\": 0.0, \"priority\": 1}");
  gate.release();

  for (const std::uint64_t job : {blocker, low, high, mid}) {
    EXPECT_EQ(wait_result(server, job).find("state")->as_string(), "done");
  }
  const std::vector<std::uint64_t> order = gate.started();
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], blocker);
  EXPECT_EQ(order[1], high);  // priority 5 jumps the queue
  EXPECT_EQ(order[2], mid);   // then 1
  EXPECT_EQ(order[3], low);   // then 0 (FIFO would have run it first)
}

TEST(FlowServerTest, CancelQueuedJobNeverRuns) {
  StartGate gate;
  FlowServerOptions opts;
  opts.workers = 1;
  opts.on_job_start = gate.hook();
  FlowServer server(tiny_base(), opts);

  const std::uint64_t blocker = submit(server, "{\"tp_percent\": 0.0}");
  gate.wait_first_started();
  const std::uint64_t victim = submit(server, "{\"tp_percent\": 0.0}");
  const JsonValue cancel = rpc_result(
      server, "{\"id\": 4, \"method\": \"cancel\", \"params\": {\"job\": " +
                  std::to_string(victim) + "}}");
  EXPECT_TRUE(cancel.find("cancel_requested")->as_bool());
  gate.release();

  const JsonValue result = wait_result(server, victim);
  EXPECT_EQ(result.find("state")->as_string(), "cancelled");
  EXPECT_EQ(result.find("flow"), nullptr);  // no flow ever ran
  EXPECT_EQ(wait_result(server, blocker).find("state")->as_string(), "done");
  // A job cancelled while queued never reaches the start hook.
  for (const std::uint64_t id : gate.started()) EXPECT_NE(id, victim);
}

// Admission control: with max_queue_depth set, a submit that would push
// the pool's backlog past the bound comes back immediately as a
// structured "queue_full" error (with the observed depth and the limit)
// instead of queueing unboundedly — and never creates a job.
TEST(FlowServerTest, SubmitRejectedWhenQueueFull) {
  StartGate gate;
  FlowServerOptions opts;
  opts.workers = 1;
  opts.max_queue_depth = 1;
  opts.on_job_start = gate.hook();
  FlowServer server(tiny_base(), opts);

  // The blocker occupies the single worker; one more job fills the queue.
  const std::uint64_t blocker = submit(server, "{\"tp_percent\": 0.0}");
  gate.wait_first_started();
  const std::uint64_t queued = submit(server, "{\"tp_percent\": 0.0}");

  const JsonValue resp = parse_response(server.handle_request(
      "{\"id\": 7, \"method\": \"submit\", \"params\": {\"tp_percent\": 0.0}}"));
  const JsonValue* err = resp.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->as_string(), "queue_full");
  EXPECT_EQ(resp.find("queue_depth")->as_number(), 1.0);
  EXPECT_EQ(resp.find("queue_limit")->as_number(), 1.0);

  gate.release();
  EXPECT_EQ(wait_result(server, blocker).find("state")->as_string(), "done");
  EXPECT_EQ(wait_result(server, queued).find("state")->as_string(), "done");

  // The rejected submit never became a job (and is counted as a rejection,
  // not a submission); once the queue drained, submits are accepted again.
  const JsonValue stats = rpc_result(server, "{\"id\": 8, \"method\": \"stats\"}");
  EXPECT_EQ(stats.find("jobs")->find("submitted")->as_number(), 2.0);
  const MetricsSnapshot snap = server.metrics_snapshot();
  const MetricValue* rejected = snap.find("server.jobs_rejected");
  ASSERT_NE(rejected, nullptr);
  EXPECT_EQ(rejected->count, 1u);
  const std::uint64_t after = submit(server, "{\"tp_percent\": 0.0}");
  EXPECT_EQ(wait_result(server, after).find("state")->as_string(), "done");
}

// The engine-level cancellation contract the cancel RPC builds on: a token
// flipped mid-run stops the flow at the next stage boundary, keeping
// finished stages' results.
TEST(FlowServerTest, CancelTokenStopsAtStageBoundary) {
  class CancelAfterPlace : public FlowObserver {
   public:
    explicit CancelAfterPlace(std::atomic<bool>* token) : token_(token) {}
    void on_stage_end(const StageEvent& event) override {
      if (event.stage == Stage::kFloorplanPlace) token_->store(true);
    }

   private:
    std::atomic<bool>* token_;
  };

  std::atomic<bool> cancel{false};
  CancelAfterPlace observer(&cancel);
  FlowOptions fopts;
  fopts.tp_percent = 2.0;
  FlowEngine engine(test::lib(), test::tiny_profile(99), fopts);
  engine.set_observer(&observer);
  engine.set_cancel_token(&cancel);
  const FlowResult& res = engine.run(StageMask::all());

  EXPECT_TRUE(res.cancelled);
  EXPECT_TRUE(res.timings.stage_ran(Stage::kTpiScan));
  EXPECT_TRUE(res.timings.stage_ran(Stage::kFloorplanPlace));
  EXPECT_FALSE(res.timings.stage_ran(Stage::kReorderAtpg));
  EXPECT_FALSE(res.timings.stage_ran(Stage::kEco));
  EXPECT_FALSE(res.timings.stage_ran(Stage::kSta));
  // Results of the stages that finished survive the cancellation.
  EXPECT_GT(res.num_ffs, 0);
}

TEST(DesignCacheTest, ConcurrentAcquireBuildsOnce) {
  MetricsRegistry registry;
  DesignCache cache(test::lib(), std::size_t{256} << 20, &registry);
  const CircuitProfile profile = test::tiny_profile(7);

  constexpr int kThreads = 8;
  std::vector<std::shared_ptr<DesignCache::Entry>> entries(kThreads);
  std::vector<std::thread> threads;
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] { entries[i] = cache.acquire(profile); });
  }
  for (std::thread& t : threads) t.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(entries[i], nullptr);
    EXPECT_EQ(entries[i], entries[0]);  // one shared build
  }
  const DesignCache::Stats s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, static_cast<std::uint64_t>(kThreads) - 1);
  EXPECT_EQ(s.entries, 1u);
  EXPECT_GT(s.bytes, 0u);
  // Counters land in the registry at event time.
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.find("server.cache.misses")->count, 1u);
  EXPECT_EQ(snap.find("server.cache.hits")->count,
            static_cast<std::uint64_t>(kThreads) - 1);
}

TEST(DesignCacheTest, EvictsLeastRecentlyUsedOverBudget) {
  // A 1-byte budget forces every insertion over budget; the newest entry
  // always stays, so the cache degrades to exactly one resident design.
  DesignCache cache(test::lib(), 1);
  const CircuitProfile a = test::tiny_profile(1);
  const CircuitProfile b = test::tiny_profile(2);
  ASSERT_NE(DesignCache::key_of(a, test::lib()), DesignCache::key_of(b, test::lib()));

  const auto ea = cache.acquire(a);
  const auto eb = cache.acquire(b);  // evicts a
  EXPECT_EQ(cache.stats().entries, 1u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.acquire(a);  // rebuilt: a was evicted
  EXPECT_EQ(cache.stats().misses, 3u);
  EXPECT_EQ(cache.stats().evictions, 2u);
  // Evicted entries stay alive through their shared_ptr checkouts.
  EXPECT_GT(ea->netlist().num_cells(), 0u);
  EXPECT_GT(eb->netlist().num_cells(), 0u);
}

TEST(FlowServerTest, MetricsRpcExposesBothFormats) {
  FlowServerOptions opts;
  opts.workers = 1;
  FlowServer server(tiny_base(), opts);
  const std::uint64_t job = submit(server, "{\"tp_percent\": 2.0}");
  ASSERT_EQ(wait_result(server, job).find("state")->as_string(), "done");

  const JsonValue prom =
      rpc_result(server, "{\"id\": 5, \"method\": \"metrics\"}");  // default format
  const JsonValue* text = prom.find("prometheus");
  ASSERT_NE(text, nullptr);
  ASSERT_TRUE(text->is_string());
  const std::string& body = text->as_string();
  EXPECT_NE(body.find("# TYPE tpi_server_jobs_done counter\n"), std::string::npos);
  EXPECT_NE(body.find("tpi_server_jobs_done 1\n"), std::string::npos);
  EXPECT_NE(body.find("# TYPE tpi_server_queue_wait_ns summary\n"),
            std::string::npos);
  // Per-stage wall time observed for every stage the job ran.
  EXPECT_NE(body.find("tpi_server_stage_ms_tpi_scan{quantile=\"0.5\"} "),
            std::string::npos);
  EXPECT_NE(body.find("tpi_server_stage_ms_sta_count 1\n"), std::string::npos);

  const JsonValue as_json = rpc_result(
      server, "{\"id\": 6, \"method\": \"metrics\", \"params\": {\"format\": \"json\"}}");
  const JsonValue* metrics = as_json.find("metrics");
  ASSERT_NE(metrics, nullptr);
  ASSERT_TRUE(metrics->is_object());
  const JsonValue* wait = metrics->find("server.queue_wait_ns");
  ASSERT_NE(wait, nullptr);
  EXPECT_NE(wait->find("p50"), nullptr);
  EXPECT_NE(wait->find("p99"), nullptr);
  EXPECT_NE(metrics->find("server.jobs_done"), nullptr);

  const JsonValue resp = parse_response(
      server.handle_request("{\"id\": 7, \"method\": \"metrics\", "
                            "\"params\": {\"format\": \"xml\"}}"));
  ASSERT_NE(resp.find("error"), nullptr);
}

TEST(FlowServerTest, TraceRpcReturnsOnlyThatJobsSpans) {
  FlowServerOptions opts;
  opts.workers = 2;
  FlowServer server(tiny_base(), opts);

  // Two traced jobs run concurrently on the two workers: each retrieved
  // trace must carry only its own job's spans (pid == job id).
  const std::uint64_t a =
      submit(server, "{\"tp_percent\": 2.0, \"record_trace\": true}");
  const std::uint64_t b =
      submit(server, "{\"tp_percent\": 4.0, \"record_trace\": true}");
  const std::uint64_t untraced = submit(server, "{\"tp_percent\": 2.0}");
  for (const std::uint64_t job : {a, b, untraced}) {
    ASSERT_EQ(wait_result(server, job).find("state")->as_string(), "done");
  }

  const auto fetch_trace = [&server](std::uint64_t job) {
    return rpc_result(server, "{\"id\": 8, \"method\": \"trace\", "
                              "\"params\": {\"job\": " +
                                  std::to_string(job) + "}}");
  };
  for (const std::uint64_t job : {a, b}) {
    const JsonValue result = fetch_trace(job);
    EXPECT_EQ(result.find("job")->as_number(), static_cast<double>(job));
    const JsonValue* trace = result.find("trace");
    ASSERT_NE(trace, nullptr);
    ASSERT_TRUE(trace->is_object());
    const JsonValue* events = trace->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->is_array());
    EXPECT_GT(events->as_array().size(), 0u);
    const std::string serialised = trace->serialise();
    EXPECT_NE(serialised.find("tpi_scan"), std::string::npos);
    EXPECT_NE(serialised.find("\"pid\":" + std::to_string(job)), std::string::npos);
    const std::uint64_t other = job == a ? b : a;
    EXPECT_EQ(serialised.find("\"pid\":" + std::to_string(other)),
              std::string::npos);
  }

  // No recorder attached: the RPC says how to get one.
  const JsonValue resp = parse_response(
      server.handle_request("{\"id\": 8, \"method\": \"trace\", "
                            "\"params\": {\"job\": " +
                            std::to_string(untraced) + "}}"));
  const JsonValue* err = resp.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->as_string().find("record_trace"), std::string::npos);
}

TEST(FlowServerTest, TraceRpcRejectsNonTerminalJobs) {
  StartGate gate;
  FlowServerOptions opts;
  opts.workers = 1;
  opts.on_job_start = gate.hook();
  FlowServer server(tiny_base(), opts);

  const std::uint64_t blocker =
      submit(server, "{\"tp_percent\": 0.0, \"record_trace\": true}");
  gate.wait_first_started();
  const JsonValue resp = parse_response(
      server.handle_request("{\"id\": 8, \"method\": \"trace\", "
                            "\"params\": {\"job\": " +
                            std::to_string(blocker) + "}}"));
  const JsonValue* err = resp.find("error");
  ASSERT_NE(err, nullptr);
  EXPECT_NE(err->as_string().find("still"), std::string::npos);
  gate.release();
  EXPECT_EQ(wait_result(server, blocker).find("state")->as_string(), "done");
}

// Satellite (c): stats/metrics/trace snapshots polled concurrently with a
// saturated pool never tear — every response parses, job-state counts in
// one stats snapshot always sum to the submitted count it reports.
TEST(FlowServerTest, TelemetrySnapshotsNeverTearUnderSaturatedPool) {
  FlowServerOptions opts;
  opts.workers = 2;
  FlowServer server(tiny_base(), opts);

  constexpr int kClients = 3;
  constexpr int kJobsPerClient = 6;
  std::atomic<bool> stop{false};
  std::atomic<int> poll_failures{0};
  std::vector<std::thread> pollers;
  for (int p = 0; p < 2; ++p) {
    pollers.emplace_back([&server, &stop, &poll_failures] {
      while (!stop.load()) {
        const JsonParseResult stats =
            json_parse(server.handle_request("{\"id\": 1, \"method\": \"stats\"}"));
        if (!stats.ok || stats.value.find("result") == nullptr) {
          ++poll_failures;
          continue;
        }
        const JsonValue* result = stats.value.find("result");
        const JsonValue* jobs = result->find("jobs");
        if (jobs == nullptr) {
          ++poll_failures;
          continue;
        }
        double by_state = 0.0;
        for (const char* s : {"queued", "running", "done", "failed", "cancelled"}) {
          const JsonValue* v = jobs->find(s);
          if (v != nullptr) by_state += v->as_number();
        }
        // The torn-snapshot check: every submitted job is in exactly one
        // state within a single stats response.
        if (by_state != jobs->find("submitted")->as_number()) ++poll_failures;

        const JsonParseResult metrics = json_parse(
            server.handle_request("{\"id\": 2, \"method\": \"metrics\"}"));
        if (!metrics.ok || metrics.value.find("result") == nullptr ||
            metrics.value.find("result")->find("prometheus") == nullptr) {
          ++poll_failures;
        }
      }
    });
  }

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&server, c] {
      for (int j = 0; j < kJobsPerClient; ++j) {
        const std::uint64_t job = submit(
            server, j % 2 == 0 ? "{\"tp_percent\": 2.0, \"record_trace\": true}"
                               : "{\"tp_percent\": 2.0}");
        EXPECT_EQ(wait_result(server, job).find("state")->as_string(), "done");
        if (j % 2 == 0) {
          // Trace retrieval races the pollers and other clients too.
          const JsonValue trace = rpc_result(
              server, "{\"id\": 3, \"method\": \"trace\", \"params\": {\"job\": " +
                          std::to_string(job) + "}}");
          EXPECT_NE(trace.find("trace"), nullptr);
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  stop.store(true);
  for (std::thread& t : pollers) t.join();

  EXPECT_EQ(poll_failures.load(), 0);
  const JsonValue stats = rpc_result(server, "{\"id\": 4, \"method\": \"stats\"}");
  EXPECT_EQ(stats.find("jobs")->find("done")->as_number(),
            static_cast<double>(kClients * kJobsPerClient));
}

TEST(FlowServerTest, SocketRoundTrip) {
  FlowServerOptions opts;
  opts.workers = 2;
  opts.socket_path =
      "/tmp/tpi_server_test_" + std::to_string(::getpid()) + ".sock";
  FlowServer server(tiny_base(), opts);
  std::string error;
  ASSERT_TRUE(server.listen(&error)) << error;

  FlowClient client;
  ASSERT_TRUE(client.connect(server.socket_path(), &error)) << error;
  std::string response;
  ASSERT_TRUE(client.rpc("submit", "{\"tp_percent\": 2.0}", &response, &error)) << error;
  const JsonValue submitted = parse_response(response);
  const std::uint64_t job =
      static_cast<std::uint64_t>(submitted.find("result")->find("job")->as_number());

  ASSERT_TRUE(client.rpc("result",
                         "{\"job\": " + std::to_string(job) + ", \"wait\": true}",
                         &response, &error))
      << error;
  const JsonValue result = parse_response(response);
  EXPECT_EQ(result.find("result")->find("state")->as_string(), "done");
  EXPECT_GT(result.find("result")->find("flow")->find("num_cells")->as_number(), 0.0);

  ASSERT_TRUE(client.rpc("shutdown", "", &response, &error)) << error;
  EXPECT_TRUE(parse_response(response).find("result")->find("ok")->as_bool());
  EXPECT_TRUE(server.shutdown_requested());
  client.close();
  server.stop();
}

TEST(FlowServerTest, ProtocolErrors) {
  FlowServerOptions opts;
  opts.workers = 1;
  FlowServer server(tiny_base(), opts);

  const auto error_of = [&](const std::string& request) {
    const JsonValue resp = parse_response(server.handle_request(request));
    const JsonValue* err = resp.find("error");
    EXPECT_NE(err, nullptr) << request;
    return err != nullptr ? err->as_string() : std::string();
  };

  EXPECT_NE(error_of("not json").find("parse error"), std::string::npos);
  EXPECT_NE(error_of("[1]").find("JSON object"), std::string::npos);
  EXPECT_NE(error_of("{\"id\": 1}").find("method"), std::string::npos);
  EXPECT_NE(error_of("{\"id\": 1, \"method\": \"frobnicate\"}").find("unknown method"),
            std::string::npos);
  EXPECT_NE(error_of("{\"id\": 1, \"method\": \"status\", \"params\": {\"job\": 999}}")
                .find("unknown job"),
            std::string::npos);
  EXPECT_NE(error_of("{\"id\": 1, \"method\": \"submit\", "
                     "\"params\": {\"profile\": \"nonesuch\"}}")
                .find("unknown profile"),
            std::string::npos);
  EXPECT_NE(error_of("{\"id\": 1, \"method\": \"submit\", "
                     "\"params\": {\"warp\": 9}}")
                .find("unknown key"),
            std::string::npos);
  // Failed submits never enqueue anything.
  const JsonValue stats = rpc_result(server, "{\"id\": 2, \"method\": \"stats\"}");
  EXPECT_EQ(stats.find("jobs")->find("submitted")->as_number(), 0.0);
}

}  // namespace
}  // namespace tpi
