#include "library/nldm.hpp"

#include <gtest/gtest.h>

namespace tpi {
namespace {

NldmTable simple_table() {
  // delay = 10 + 2*load + 0.1*slew on a 2x2 grid.
  return NldmTable({10.0, 100.0}, {1.0, 11.0},
                   {10 + 2 * 1 + 0.1 * 10, 10 + 2 * 11 + 0.1 * 10,
                    10 + 2 * 1 + 0.1 * 100, 10 + 2 * 11 + 0.1 * 100});
}

TEST(NldmTest, ExactAtGridPoints) {
  const NldmTable t = simple_table();
  EXPECT_DOUBLE_EQ(t.lookup(10, 1).value_ps, 13.0);
  EXPECT_DOUBLE_EQ(t.lookup(100, 11).value_ps, 42.0);
  EXPECT_FALSE(t.lookup(10, 1).extrapolated);
}

TEST(NldmTest, BilinearInterpolationIsExactForBilinearData) {
  const NldmTable t = simple_table();
  // The characterised function is bilinear, so any interior point matches.
  for (double slew : {10.0, 32.0, 55.0, 100.0}) {
    for (double load : {1.0, 3.0, 6.0, 11.0}) {
      const auto r = t.lookup(slew, load);
      EXPECT_NEAR(r.value_ps, 10 + 2 * load + 0.1 * slew, 1e-9);
      EXPECT_FALSE(r.extrapolated);
    }
  }
}

TEST(NldmTest, ExtrapolationFlagsOutOfRange) {
  const NldmTable t = simple_table();
  EXPECT_TRUE(t.lookup(10, 20).extrapolated);   // load beyond grid
  EXPECT_TRUE(t.lookup(500, 5).extrapolated);   // slew beyond grid
  EXPECT_TRUE(t.lookup(1, 0.5).extrapolated);   // below grid
  // Linear extrapolation continues the plane.
  EXPECT_NEAR(t.lookup(10, 21).value_ps, 10 + 2 * 21 + 0.1 * 10, 1e-9);
}

TEST(NldmTest, MakeNldmMatchesAnalyticModel) {
  const NldmTable t = make_nldm(25.0, 3.0, 0.12, 0.0, 120.0, 800.0);
  // Inside the grid the model is linear in both axes -> exact recovery.
  const auto r = t.lookup(200.0, 50.0);
  EXPECT_FALSE(r.extrapolated);
  EXPECT_NEAR(r.value_ps, 25.0 + 3.0 * 50.0 + 0.12 * 200.0, 1e-6);
}

TEST(NldmTest, MakeNldmRangeQueries) {
  const NldmTable t = make_nldm(10.0, 2.0, 0.1, 0.0, 90.0, 700.0);
  EXPECT_DOUBLE_EQ(t.max_load_ff(), 90.0);
  EXPECT_DOUBLE_EQ(t.max_slew_ps(), 700.0);
  EXPECT_FALSE(t.empty());
  EXPECT_TRUE(NldmTable().empty());
}

TEST(NldmTest, MonotoneInLoadAndSlew) {
  const NldmTable t = make_nldm(30.0, 4.0, 0.15, 0.001);
  double prev = -1;
  for (double load = 0.5; load <= 100.0; load += 5.0) {
    const double v = t.lookup(100.0, load).value_ps;
    EXPECT_GT(v, prev);
    prev = v;
  }
  prev = -1;
  for (double slew = 2.0; slew <= 700.0; slew += 50.0) {
    const double v = t.lookup(slew, 40.0).value_ps;
    EXPECT_GT(v, prev);
    prev = v;
  }
}

}  // namespace
}  // namespace tpi
