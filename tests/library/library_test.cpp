#include "library/library.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

namespace tpi {
namespace {

class Phl130Test : public ::testing::Test {
 protected:
  static void SetUpTestSuite() { lib_ = make_phl130_library().release(); }
  static const CellLibrary* lib_;
};
const CellLibrary* Phl130Test::lib_ = nullptr;

TEST_F(Phl130Test, BasicGeometry) {
  EXPECT_EQ(lib_->name(), "phl130");
  EXPECT_GT(lib_->site_width_um(), 0.0);
  EXPECT_GT(lib_->row_height_um(), 0.0);
}

TEST_F(Phl130Test, LookupByNameAndFunction) {
  ASSERT_NE(lib_->by_name("NAND2_X1"), nullptr);
  EXPECT_EQ(lib_->by_name("NAND2_X1")->num_inputs, 2);
  EXPECT_EQ(lib_->by_name("NOPE"), nullptr);
  const CellSpec* nand3 = lib_->gate(CellFunc::kNand, 3);
  ASSERT_NE(nand3, nullptr);
  EXPECT_EQ(nand3->name, "NAND3_X1");
  EXPECT_EQ(lib_->gate(CellFunc::kNand, 7), nullptr);
  const CellSpec* inv4 = lib_->gate(CellFunc::kInv, 1, 4);
  ASSERT_NE(inv4, nullptr);
  EXPECT_EQ(inv4->drive, 4);
}

TEST_F(Phl130Test, ScanCellsHaveExpectedPins) {
  const CellSpec* sdff = lib_->by_name("SDFF_X1");
  ASSERT_NE(sdff, nullptr);
  EXPECT_TRUE(sdff->sequential);
  EXPECT_GE(sdff->d_pin, 0);
  EXPECT_GE(sdff->ti_pin, 0);
  EXPECT_GE(sdff->te_pin, 0);
  EXPECT_EQ(sdff->tr_pin, -1);
  EXPECT_GE(sdff->clock_pin, 0);
  EXPECT_GT(sdff->setup_ps, 0.0);

  const CellSpec* tsff = lib_->by_name("TSFF_X1");
  ASSERT_NE(tsff, nullptr);
  EXPECT_GE(tsff->tr_pin, 0);  // the output-mux control of Fig. 1
}

TEST_F(Phl130Test, TsffHasTransparentDataArc) {
  const CellSpec* tsff = lib_->by_name("TSFF_X1");
  ASSERT_NE(tsff, nullptr);
  // Fig. 1: D->Q application-mode arc through two multiplexers, plus CK->Q.
  const TimingArc* d_arc = tsff->arc_from(tsff->d_pin);
  const TimingArc* ck_arc = tsff->arc_from(tsff->clock_pin);
  ASSERT_NE(d_arc, nullptr);
  ASSERT_NE(ck_arc, nullptr);
  const double d_delay = d_arc->delay.lookup(50, 10).value_ps;
  const CellSpec* mux = lib_->by_name("MUX2_X1");
  const double mux_delay = mux->arcs.front().delay.lookup(50, 10).value_ps;
  // "The propagation delay in application mode is increased by at least the
  // delay of the two multiplexers" (§3.1).
  EXPECT_GE(d_delay, 1.5 * mux_delay);
}

TEST_F(Phl130Test, TsffCostsMoreAreaThanScanFlop) {
  const double dff = lib_->by_name("DFF_X1")->area_um2();
  const double sdff = lib_->by_name("SDFF_X1")->area_um2();
  const double tsff = lib_->by_name("TSFF_X1")->area_um2();
  EXPECT_GT(sdff, dff);
  EXPECT_GT(tsff, sdff);
}

TEST_F(Phl130Test, FillersWidestFirstAndCoverSingleSite) {
  const auto& fillers = lib_->fillers();
  ASSERT_GE(fillers.size(), 2u);
  for (std::size_t i = 1; i < fillers.size(); ++i) {
    EXPECT_GE(fillers[i - 1]->width_um, fillers[i]->width_um);
  }
  EXPECT_DOUBLE_EQ(fillers.back()->width_um, lib_->site_width_um());
}

TEST_F(Phl130Test, ClockBuffersAscendingDrive) {
  const auto& bufs = lib_->clock_buffers();
  ASSERT_GE(bufs.size(), 2u);
  for (std::size_t i = 1; i < bufs.size(); ++i) {
    EXPECT_GT(bufs[i]->drive, bufs[i - 1]->drive);
  }
}

// Parameterised sweep over every cell in the library.
class AllCellsTest : public ::testing::TestWithParam<const CellSpec*> {};

TEST_P(AllCellsTest, GeometryIsSiteQuantised) {
  const CellSpec* spec = GetParam();
  EXPECT_GT(spec->width_um, 0.0);
  const double sites = spec->width_um / 0.4;
  EXPECT_NEAR(sites, std::round(sites), 1e-9) << spec->name;
  EXPECT_DOUBLE_EQ(spec->height_um, 3.6);
}

TEST_P(AllCellsTest, PinsAreConsistent) {
  const CellSpec* spec = GetParam();
  int outputs = 0;
  for (const auto& pin : spec->pins) {
    if (pin.dir == PinDir::kOutput) {
      ++outputs;
      EXPECT_EQ(pin.cap_ff, 0.0) << spec->name;
    } else {
      EXPECT_GT(pin.cap_ff, 0.0) << spec->name << " pin " << pin.name;
    }
  }
  if (spec->func == CellFunc::kFiller) {
    EXPECT_EQ(outputs, 0);
  } else {
    EXPECT_EQ(outputs, 1) << spec->name;
    EXPECT_GE(spec->output_pin, 0);
  }
}

TEST_P(AllCellsTest, ArcsReferenceValidPins) {
  const CellSpec* spec = GetParam();
  for (const auto& arc : spec->arcs) {
    ASSERT_GE(arc.from_pin, 0);
    ASSERT_LT(static_cast<std::size_t>(arc.from_pin), spec->pins.size());
    EXPECT_EQ(arc.to_pin, spec->output_pin);
    EXPECT_EQ(spec->pins[static_cast<std::size_t>(arc.from_pin)].dir, PinDir::kInput);
    EXPECT_FALSE(arc.delay.empty());
    EXPECT_FALSE(arc.out_slew.empty());
  }
  // Every logic input of a combinational cell has a delay arc.
  if (!spec->sequential && spec->func != CellFunc::kFiller &&
      spec->func != CellFunc::kTie0 && spec->func != CellFunc::kTie1) {
    for (std::size_t p = 0; p < spec->pins.size(); ++p) {
      if (spec->pins[p].dir != PinDir::kInput) continue;
      EXPECT_NE(spec->arc_from(static_cast<int>(p)), nullptr)
          << spec->name << " pin " << spec->pins[p].name;
    }
  }
}

std::vector<const CellSpec*> all_cells() {
  static const std::unique_ptr<CellLibrary> lib = make_phl130_library();
  std::vector<const CellSpec*> out;
  for (const auto& c : lib->cells()) out.push_back(c.get());
  return out;
}

INSTANTIATE_TEST_SUITE_P(Phl130, AllCellsTest, ::testing::ValuesIn(all_cells()),
                         [](const ::testing::TestParamInfo<const CellSpec*>& info) {
                           return info.param->name;
                         });

}  // namespace
}  // namespace tpi
