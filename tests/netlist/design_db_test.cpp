// DesignDB tests: the Netlist edit journal (version bumps + dirty
// classification), the cached derived views (hit / refresh / rebuild), and
// the flow-level construction savings the cache was built for.
#include "netlist/design_db.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "../common/test_circuits.hpp"
#include "flow/flow.hpp"
#include "netlist/levelize.hpp"
#include "tpi/tpi.hpp"

namespace tpi {
namespace {

using test::lib;

// ---- edit journal: version semantics ----

TEST(EditJournalTest, EveryMutatorBumpsVersionExactlyOnce) {
  Netlist nl(&lib());
  EXPECT_EQ(nl.version(), 0u);

  const int a = nl.add_primary_input("a");  // composite: also adds a net
  EXPECT_EQ(nl.version(), 1u);
  const NetId y = nl.add_net("y");
  EXPECT_EQ(nl.version(), 2u);
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellId g = nl.add_cell(inv, "g");
  EXPECT_EQ(nl.version(), 3u);
  nl.connect(g, 0, nl.pi_net(a));
  EXPECT_EQ(nl.version(), 4u);
  nl.connect(g, inv->output_pin, y);
  EXPECT_EQ(nl.version(), 5u);
  nl.add_primary_output("po", y);  // composite with the sink bookkeeping
  EXPECT_EQ(nl.version(), 6u);
  nl.mark_clock(a);
  EXPECT_EQ(nl.version(), 7u);
  nl.disconnect(g, 0);
  EXPECT_EQ(nl.version(), 8u);
}

TEST(EditJournalTest, NoOpDisconnectDoesNotBumpVersion) {
  auto nl = test::make_small_comb();
  const CellId g2 = nl->find_cell("g2");
  const std::uint64_t v = nl->version();
  nl->disconnect(g2, 1);
  EXPECT_EQ(nl->version(), v + 1);
  nl->disconnect(g2, 1);  // pin already unconnected
  EXPECT_EQ(nl->version(), v + 1);
}

TEST(EditJournalTest, CompositeMutatorsBumpVersionExactlyOnce) {
  auto nl = test::make_shift_register();
  const std::uint64_t v0 = nl->version();

  // replace_spec = disconnect + connect per carried pin, one bump total.
  nl->replace_spec(nl->find_cell("f0"), lib().by_name("SDFF_X1"));
  EXPECT_EQ(nl->version(), v0 + 1);

  // insert_cell_in_net = add_net + disconnect/connect per moved sink.
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  const CellId b = nl->add_cell(buf, "b");
  EXPECT_EQ(nl->version(), v0 + 2);
  nl->insert_cell_in_net(nl->find_net("q0"), b, buf->find_pin("A"));
  EXPECT_EQ(nl->version(), v0 + 3);
}

TEST(EditJournalTest, NetsChangedSinceReportsTouchedNets) {
  auto nl = test::make_small_comb();
  const NetId y = nl->find_net("y");
  const NetId z = nl->find_net("z");
  const CellId g2 = nl->find_cell("g2");
  const std::uint64_t v = nl->version();

  nl->disconnect(g2, 1);  // was y
  nl->connect(g2, 1, y);
  std::vector<NetId> changed;
  ASSERT_TRUE(nl->nets_changed_since(v, changed));
  ASSERT_EQ(changed.size(), 1u);  // deduplicated
  EXPECT_EQ(changed[0], y);

  // Nothing after the current version.
  ASSERT_TRUE(nl->nets_changed_since(nl->version(), changed));
  EXPECT_TRUE(changed.empty());

  // A later edit on another net shows up; the earlier window still holds.
  const std::uint64_t v2 = nl->version();
  nl->disconnect(nl->find_cell("g3"), 1);  // was z
  ASSERT_TRUE(nl->nets_changed_since(v2, changed));
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], z);
  ASSERT_TRUE(nl->nets_changed_since(v, changed));
  EXPECT_EQ(changed.size(), 2u);
}

TEST(EditJournalTest, JournalOverflowReportsUncovered) {
  auto nl = test::make_small_comb();
  const NetId y = nl->find_net("y");
  const CellId g2 = nl->find_cell("g2");
  const std::uint64_t v0 = nl->version();

  // Far beyond the bounded journal cap (8192 records).
  for (int i = 0; i < 6000; ++i) {
    nl->disconnect(g2, 1);
    nl->connect(g2, 1, y);
  }
  std::vector<NetId> changed;
  EXPECT_FALSE(nl->nets_changed_since(v0, changed));  // window truncated
  ASSERT_TRUE(nl->nets_changed_since(nl->version() - 10, changed));
  ASSERT_EQ(changed.size(), 1u);
  EXPECT_EQ(changed[0], y);
}

TEST(EditJournalTest, ScanReplacementIsViewInvariant) {
  auto nl = test::make_shift_register();
  const std::uint64_t sv_app = nl->structure_version(SeqView::kApplication);
  const std::uint64_t cv_app = nl->comb_version(SeqView::kApplication);
  const std::uint64_t cv_cap = nl->comb_version(SeqView::kCapture);

  // DFF -> SDFF carries D/CK/Q by name; both specs are non-TSFF sequential
  // boundaries, so no derived view changes.
  nl->replace_spec(nl->find_cell("f0"), lib().by_name("SDFF_X1"));
  EXPECT_EQ(nl->structure_version(SeqView::kApplication), sv_app);
  EXPECT_EQ(nl->comb_version(SeqView::kApplication), cv_app);
  EXPECT_EQ(nl->comb_version(SeqView::kCapture), cv_cap);
}

TEST(EditJournalTest, TsffCountMaintainedByMutators) {
  auto nl = test::make_shift_register();
  EXPECT_EQ(nl->num_tsff_cells(), 0);
  const CellSpec* tsff = lib().by_name("TSFF_X1");
  const CellId tp = nl->add_cell(tsff, "tp0");
  EXPECT_EQ(nl->num_tsff_cells(), 1);
  nl->replace_spec(tp, lib().by_name("SDFF_X1"));
  EXPECT_EQ(nl->num_tsff_cells(), 0);
}

// ---- DesignDB: view caching ----

TEST(DesignDbTest, ViewIdentityStableAcrossReadOnlyCalls) {
  auto nl = test::make_shift_register();
  DesignDB db(*nl);

  const TopoOrder* topo = &db.topo(SeqView::kCapture);
  const CombModel* model = &db.comb_model(SeqView::kCapture);
  const TestabilityResult* t = &db.testability(SeqView::kCapture);
  const auto after_build = db.counters();

  EXPECT_EQ(&db.topo(SeqView::kCapture), topo);
  EXPECT_EQ(&db.comb_model(SeqView::kCapture), model);
  EXPECT_EQ(&db.testability(SeqView::kCapture), t);

  const auto c = db.counters();
  EXPECT_EQ(c.rebuilds, after_build.rebuilds);  // no extra construction
  // 4 hits: topo, comb, then testability resolves comb (hit) + its own.
  EXPECT_EQ(c.view_hits, after_build.view_hits + 4);
}

TEST(DesignDbTest, TopoSlotsAliasedWithoutTsffs) {
  auto nl = test::make_shift_register();
  DesignDB db(*nl);
  // No TSFFs: both views levelize to the same order and share one slot.
  EXPECT_EQ(&db.topo(SeqView::kApplication), &db.topo(SeqView::kCapture));
  EXPECT_EQ(db.counters().topo_rebuilds, 1u);

  // A TSFF splits the views (transparent in application, boundary in
  // capture): the aliasing decision is re-taken per access.
  nl->add_cell(lib().by_name("TSFF_X1"), "tp0");
  EXPECT_NE(&db.topo(SeqView::kApplication), &db.topo(SeqView::kCapture));
}

TEST(DesignDbTest, TopoRefreshAfterEcoLikeEditsMatchesFreshLevelize) {
  auto nl = test::make_shift_register();
  DesignDB db(*nl);
  const TopoOrder* cached = &db.topo(SeqView::kApplication);
  const auto before = db.counters();

  // The ECO edits of flow stage 4: clock buffers spliced into clock nets
  // and fillers dropped into row gaps. None of them enters the comb graph.
  const CellSpec* clkbuf = lib().by_name("CLKBUF_X2");
  const CellSpec* filler = lib().by_name("FILL1");
  const NetId clk = nl->pi_net(0);
  const CellId cb = nl->add_cell(clkbuf, "ctsbuf0");
  const NetId clk_leaf = nl->add_net("clk_leaf");
  nl->connect(cb, 0, clk);
  nl->connect(cb, clkbuf->output_pin, clk_leaf);
  const CellId f0 = nl->find_cell("f0");
  const int ck_pin = nl->cell(f0).spec->clock_pin;
  nl->disconnect(f0, ck_pin);
  nl->connect(f0, ck_pin, clk_leaf);
  nl->add_cell(filler, "fill0");

  const TopoOrder& refreshed = db.topo(SeqView::kApplication);
  EXPECT_EQ(&refreshed, cached);  // refreshed in place, not rebuilt
  const auto after = db.counters();
  EXPECT_EQ(after.topo_rebuilds, before.topo_rebuilds);
  EXPECT_GT(after.view_refreshes, before.view_refreshes);

  const TopoOrder fresh = levelize(*nl, SeqView::kApplication);
  EXPECT_EQ(refreshed.order, fresh.order);
  EXPECT_EQ(refreshed.level, fresh.level);
}

TEST(DesignDbTest, CombModelRefreshAfterScanReplacement) {
  auto nl = test::make_shift_register();
  DesignDB db(*nl);
  const CombModel* cached = &db.comb_model(SeqView::kCapture);
  const auto before = db.counters();

  nl->replace_spec(nl->find_cell("f0"), lib().by_name("SDFF_X1"));
  nl->replace_spec(nl->find_cell("f1"), lib().by_name("SDFF_X1"));

  EXPECT_EQ(&db.comb_model(SeqView::kCapture), cached);
  const auto after = db.counters();
  EXPECT_EQ(after.comb_rebuilds, before.comb_rebuilds);
  EXPECT_GT(after.view_refreshes, before.view_refreshes);
}

TEST(DesignDbTest, TestabilityRefreshMatchesFreshAnalysis) {
  auto nl = test::make_small_comb();
  DesignDB db(*nl);
  const TestabilityResult* cached = &db.testability(SeqView::kCapture);
  const auto before = db.counters();

  // Topo/comb-invariant growth: a filler cell and a not-yet-connected net.
  nl->add_cell(lib().by_name("FILL1"), "fill0");
  nl->add_net("spare");

  const TestabilityResult& t = db.testability(SeqView::kCapture);
  EXPECT_EQ(&t, cached);
  EXPECT_EQ(db.counters().testability_rebuilds, before.testability_rebuilds);

  CombModel fresh_model(*nl, SeqView::kCapture);
  const TestabilityResult fresh = analyze_testability(fresh_model);
  EXPECT_EQ(t.cc0, fresh.cc0);
  EXPECT_EQ(t.cc1, fresh.cc1);
  EXPECT_EQ(t.co, fresh.co);
  EXPECT_EQ(t.p1, fresh.p1);
  EXPECT_EQ(t.obs, fresh.obs);
  EXPECT_EQ(t.ffr_root, fresh.ffr_root);
  EXPECT_EQ(t.ffr_size, fresh.ffr_size);
}

TEST(DesignDbTest, StaleViewNeverServedAfterStructuralEdit) {
  auto nl = test::make_small_comb();
  DesignDB db(*nl);
  const auto order_size = db.topo(SeqView::kCapture).order.size();

  // A real structural edit: split net z with a buffer.
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  const CellId b = nl->add_cell(buf, "b");
  nl->insert_cell_in_net(nl->find_net("z"), b, buf->find_pin("A"));

  const TopoOrder& rebuilt = db.topo(SeqView::kCapture);
  EXPECT_EQ(rebuilt.order.size(), order_size + 1);
  const TopoOrder fresh = levelize(*nl, SeqView::kCapture);
  EXPECT_EQ(rebuilt.order, fresh.order);
  EXPECT_EQ(rebuilt.level, fresh.level);
}

// Read-only view access is mutex-serialised: concurrent readers (the sweep
// pool pattern) must be race-free under TSan, including the cold build.
TEST(DesignDbTest, ConcurrentReadOnlyViewAccess) {
  auto nl = generate_circuit(lib(), test::tiny_profile());
  DesignDB db(*nl);

  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&db] {
      for (int i = 0; i < 50; ++i) {
        const TopoOrder& topo = db.topo(SeqView::kApplication);
        const CombModel& model = db.comb_model(SeqView::kCapture);
        const TestabilityResult& t = db.testability(SeqView::kCapture);
        ASSERT_FALSE(topo.order.empty());
        ASSERT_EQ(t.p1.size(), model.num_nets());
      }
    });
  }
  for (std::thread& t : workers) t.join();
  const auto c = db.counters();
  EXPECT_EQ(c.topo_rebuilds, 1u);  // aliased slot, built once
  EXPECT_EQ(c.comb_rebuilds, 1u);
  EXPECT_EQ(c.testability_rebuilds, 1u);
}

// ---- TPI over the DB ----

TEST(DesignDbTest, TpiReportsNetsChangedPerRound) {
  auto nl = generate_circuit(lib(), test::tiny_profile());
  DesignDB db(*nl);
  TpiOptions opts;
  opts.num_test_points = 4;
  opts.rounds = 2;
  const TpiReport report = insert_test_points(db, opts);
  ASSERT_EQ(report.test_points.size(), 4u);
  ASSERT_EQ(report.nets_changed_per_round.size(),
            static_cast<std::size_t>(report.rounds_run));
  for (const int n : report.nets_changed_per_round) {
    // Each inserted TSFF touches at least its site and the fresh net.
    EXPECT_GE(n, 2);
  }
}

// ---- flow-level construction savings (the tentpole's acceptance bar) ----

// Default run_flow at 1% TP on the tiny profile (0 test points, so no
// TSFFs). Before the DesignDB refactor the flow built 4 topo/comb
// structures: ATPG's CombModel + its internal levelize, then two levelize
// calls inside run_sta. With the DB, stage 3 rebuilds one TopoOrder + one
// CombModel and post-ECO STA refreshes the aliased order: 2 constructions,
// a 50% cut (the ISSUE asks for >= 30%).
TEST(DesignDbFlowTest, FlowReusesViewsAcrossStages) {
  FlowOptions opts;
  opts.tp_percent = 1.0;
  FlowEngine engine(lib(), test::tiny_profile(), opts);
  const FlowResult& res = engine.run(StageMask::all());

  const MetricValue* topo = res.metrics.find("designdb.rebuilds.topo");
  const MetricValue* comb = res.metrics.find("designdb.rebuilds.comb");
  const MetricValue* refreshes = res.metrics.find("designdb.view_refreshes");
  ASSERT_NE(topo, nullptr);
  ASSERT_NE(comb, nullptr);
  ASSERT_NE(refreshes, nullptr);
  EXPECT_EQ(topo->count + comb->count, 2u);  // pre-refactor: 4
  EXPECT_GE(refreshes->count, 1u);           // STA refreshed ATPG's order
  // The engine-owned DB agrees with the metrics snapshot.
  EXPECT_EQ(engine.design_db().counters().topo_rebuilds, topo->count);
}

}  // namespace
}  // namespace tpi
