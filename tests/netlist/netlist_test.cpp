#include "netlist/netlist.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(NetlistTest, BuildSmallCircuit) {
  auto nl = test::make_small_comb();
  EXPECT_EQ(nl->num_cells(), 3u);
  EXPECT_EQ(nl->num_pis(), 3u);
  EXPECT_EQ(nl->num_pos(), 2u);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

TEST(NetlistTest, DriverAndSinksTracked) {
  auto nl = test::make_small_comb();
  const NetId y = nl->find_net("y");
  ASSERT_NE(y, kNoNet);
  const Net& net = nl->net(y);
  EXPECT_TRUE(net.driver.valid());
  EXPECT_EQ(nl->cell(net.driver.cell).name, "g1");
  ASSERT_EQ(net.sinks.size(), 1u);
  EXPECT_EQ(nl->cell(net.sinks[0].cell).name, "g2");
  EXPECT_EQ(net.fanout(), 1u);
}

TEST(NetlistTest, PiNetAndPoBookkeeping) {
  auto nl = test::make_small_comb();
  const NetId a = nl->pi_net(0);
  EXPECT_TRUE(nl->net(a).driven_by_pi());
  EXPECT_EQ(nl->net(a).pi_index, 0);
  // a drives g1 and g3 -> fanout 2.
  EXPECT_EQ(nl->net(a).fanout(), 2u);
  const NetId z = nl->find_net("z");
  // z feeds po_z and g3: fanout counts the PO.
  EXPECT_EQ(nl->net(z).fanout(), 2u);
  EXPECT_EQ(nl->po_net(0), z);
}

TEST(NetlistTest, DisconnectRemovesSink) {
  auto nl = test::make_small_comb();
  const CellId g2 = nl->find_cell("g2");
  const NetId y = nl->find_net("y");
  nl->disconnect(g2, 1);  // g2.B was y
  EXPECT_EQ(nl->net(y).sinks.size(), 0u);
  EXPECT_EQ(nl->cell(g2).conn[1], kNoNet);
  nl->connect(g2, 1, y);
  EXPECT_TRUE(nl->validate().empty());
}

TEST(NetlistTest, ReplaceSpecCarriesPinsByName) {
  auto nl = test::make_shift_register();
  const CellId f0 = nl->find_cell("f0");
  const NetId d_net = nl->cell(f0).conn[static_cast<std::size_t>(lib().by_name("DFF_X1")->d_pin)];
  const NetId q_net = nl->cell(f0).output_net();
  nl->replace_spec(f0, lib().by_name("SDFF_X1"));
  const CellSpec* sdff = nl->cell(f0).spec;
  EXPECT_EQ(sdff->name, "SDFF_X1");
  EXPECT_EQ(nl->cell(f0).conn[static_cast<std::size_t>(sdff->d_pin)], d_net);
  EXPECT_EQ(nl->cell(f0).output_net(), q_net);
  // New scan pins start unconnected.
  EXPECT_EQ(nl->cell(f0).conn[static_cast<std::size_t>(sdff->ti_pin)], kNoNet);
  EXPECT_EQ(nl->cell(f0).conn[static_cast<std::size_t>(sdff->te_pin)], kNoNet);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

TEST(NetlistTest, InsertCellInNetMovesAllLoads) {
  auto nl = test::make_small_comb();
  const NetId z = nl->find_net("z");
  const std::size_t loads_before = nl->net(z).fanout();
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  const CellId b = nl->add_cell(buf, "split_buf");
  const NetId fresh = nl->insert_cell_in_net(z, b, buf->find_pin("A"));
  // Old net now feeds only the buffer; all loads (incl. the PO) moved.
  EXPECT_EQ(nl->net(z).sinks.size(), 1u);
  EXPECT_EQ(nl->net(z).sinks[0].cell, b);
  EXPECT_TRUE(nl->net(z).po_sinks.empty());
  EXPECT_EQ(nl->net(fresh).fanout(), loads_before);
  EXPECT_EQ(nl->po_net(0), fresh);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

TEST(NetlistTest, InsertCellInNetSubsetKeepsOthers) {
  auto nl = test::make_small_comb();
  const NetId a = nl->pi_net(0);  // feeds g1 and g3
  const std::vector<PinRef> subset{nl->net(a).sinks[0]};
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  const CellId b = nl->add_cell(buf, "sb");
  nl->insert_cell_in_net(a, b, buf->find_pin("A"), subset);
  EXPECT_EQ(nl->net(a).sinks.size(), 2u);  // buffer + the remaining sink
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

TEST(NetlistTest, ClockMarking) {
  auto nl = test::make_shift_register();
  EXPECT_TRUE(nl->is_clock_net(nl->pi_net(0)));
  EXPECT_FALSE(nl->is_clock_net(nl->pi_net(1)));
  EXPECT_EQ(nl->clock_pis().size(), 1u);
}

TEST(NetlistTest, FlipFlopAndTestPointQueries) {
  auto nl = test::make_shift_register();
  EXPECT_EQ(nl->flip_flops().size(), 2u);
  EXPECT_TRUE(nl->test_points().empty());
  const CellId f0 = nl->find_cell("f0");
  nl->replace_spec(f0, lib().by_name("TSFF_X1"));
  EXPECT_EQ(nl->test_points().size(), 1u);
  EXPECT_EQ(nl->flip_flops().size(), 2u);
}

TEST(NetlistTest, StatsAggregates) {
  auto nl = test::make_shift_register();
  const Netlist::Stats s = nl->stats();
  EXPECT_EQ(s.cells, 3u);
  EXPECT_EQ(s.flip_flops, 2u);
  EXPECT_EQ(s.combinational, 1u);
  EXPECT_GT(s.cell_area_um2, 0.0);
}

TEST(NetlistTest, FindMissingReturnsSentinels) {
  auto nl = test::make_small_comb();
  EXPECT_EQ(nl->find_cell("nope"), kNoCell);
  EXPECT_EQ(nl->find_net("nope"), kNoNet);
}

}  // namespace
}  // namespace tpi
