#include "netlist/bench_io.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "netlist/design_db.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"
#include "verify/equiv.hpp"
#include "verify/miter.hpp"

namespace tpi {
namespace {

using test::lib;

constexpr const char* kTinyBench = R"(
# simple sequential fragment
INPUT(a)
INPUT(b)
OUTPUT(z)
q = DFF(s)
s = NAND(a, b)
z = AND(q, a)
)";

TEST(BenchIoTest, ParsesDeclarationsAndGates) {
  const BenchReadResult res = read_bench_string(kTinyBench, lib(), "t");
  ASSERT_TRUE(res.ok()) << res.error;
  const Netlist& nl = *res.netlist;
  EXPECT_EQ(nl.num_pis(), 3u);  // a, b + synthesised CLK
  EXPECT_EQ(nl.num_pos(), 1u);
  EXPECT_EQ(nl.flip_flops().size(), 1u);
  EXPECT_TRUE(nl.validate().empty()) << nl.validate();
  EXPECT_EQ(nl.clock_pis().size(), 1u);
}

TEST(BenchIoTest, GateFunctionsMapToLibraryCells) {
  const auto res = read_bench_string(
      "INPUT(a)\nINPUT(b)\nOUTPUT(o1)\nOUTPUT(o2)\n"
      "o1 = XOR(a, b)\nn = NOT(a)\no2 = OR(n, b)\n",
      lib(), "t");
  ASSERT_TRUE(res.ok()) << res.error;
  const Netlist& nl = *res.netlist;
  int xor_count = 0, inv_count = 0, or_count = 0;
  for (std::size_t c = 0; c < nl.num_cells(); ++c) {
    switch (nl.cell(static_cast<CellId>(c)).spec->func) {
      case CellFunc::kXor: ++xor_count; break;
      case CellFunc::kInv: ++inv_count; break;
      case CellFunc::kOr: ++or_count; break;
      default: break;
    }
  }
  EXPECT_EQ(xor_count, 1);
  EXPECT_EQ(inv_count, 1);
  EXPECT_EQ(or_count, 1);
}

TEST(BenchIoTest, WideGatesDecomposeIntoTrees) {
  const auto res = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nINPUT(f)\nOUTPUT(z)\n"
      "z = NAND(a, b, c, d, e, f)\n",
      lib(), "t");
  ASSERT_TRUE(res.ok()) << res.error;
  const Netlist& nl = *res.netlist;
  EXPECT_GT(nl.num_cells(), 1u);  // tree of AND2 + final inverter
  EXPECT_TRUE(nl.validate().empty());
  // No library cell exists for NAND6.
  EXPECT_EQ(lib().gate(CellFunc::kNand, 6), nullptr);
}

TEST(BenchIoTest, WideGateSemanticsPreserved) {
  const auto res = read_bench_string(
      "INPUT(a)\nINPUT(b)\nINPUT(c)\nINPUT(d)\nINPUT(e)\nOUTPUT(z)\n"
      "z = NOR(a, b, c, d, e)\n",
      lib(), "t");
  ASSERT_TRUE(res.ok()) << res.error;
  // Check by simulation in another test binary? Here: structural sanity —
  // z must be reachable from every input.
  const Netlist& nl = *res.netlist;
  const NetId z = nl.find_net("z");
  ASSERT_NE(z, kNoNet);
  EXPECT_TRUE(nl.net(z).driver.valid());
}

TEST(BenchIoTest, ReportsUnknownFunction) {
  const auto res = read_bench_string("INPUT(a)\nOUTPUT(z)\nz = FROB(a)\n", lib(), "t");
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("FROB"), std::string::npos);
}

TEST(BenchIoTest, ReportsUndefinedOutput) {
  const auto res = read_bench_string("INPUT(a)\nOUTPUT(zz)\n", lib(), "t");
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("zz"), std::string::npos);
}

TEST(BenchIoTest, ReportsMalformedLine) {
  const auto res = read_bench_string("INPUT a\n", lib(), "t");
  EXPECT_FALSE(res.ok());
  EXPECT_NE(res.error.find("line 1"), std::string::npos);
}

TEST(BenchIoTest, RoundTripPreservesStructure) {
  const BenchReadResult first = read_bench_string(kTinyBench, lib(), "t");
  ASSERT_TRUE(first.ok());
  const std::string text = write_bench_string(*first.netlist);
  const BenchReadResult second = read_bench_string(text, lib(), "t2");
  ASSERT_TRUE(second.ok()) << second.error << "\n" << text;
  EXPECT_EQ(second.netlist->num_pos(), first.netlist->num_pos());
  EXPECT_EQ(second.netlist->flip_flops().size(), first.netlist->flip_flops().size());
  EXPECT_EQ(second.netlist->stats().combinational, first.netlist->stats().combinational);
}

TEST(BenchIoTest, ScanCellsRoundTripWithExtendedDialect) {
  auto nl = test::make_shift_register();
  nl->replace_spec(nl->find_cell("f0"), lib().by_name("TSFF_X1"));
  const std::string text = write_bench_string(*nl);
  EXPECT_NE(text.find("TSFF("), std::string::npos);
  const BenchReadResult back = read_bench_string(text, lib(), "t");
  ASSERT_TRUE(back.ok()) << back.error;
  EXPECT_EQ(back.netlist->test_points().size(), 1u);
}

// A DfT-modified netlist (TSFF test points, scan cells, stitched chains)
// must survive write -> parse with its structure intact AND stay
// mission-mode equivalent to the original — the extended dialect carries
// real semantics, not just tokens.
TEST(BenchIoTest, DftNetlistRoundTripsAndStaysEquivalent) {
  auto nl = generate_circuit(lib(), test::tiny_profile(909));
  {
    DesignDB db(*nl);
    TpiOptions tpi;
    tpi.num_test_points = 4;
    insert_test_points(db, tpi);
  }
  const ScanOptions sopts;
  insert_scan(*nl, sopts);
  stitch_chains(*nl, plan_chains(*nl, sopts, {}));
  ASSERT_TRUE(nl->validate().empty()) << nl->validate();

  const std::string text = write_bench_string(*nl);
  EXPECT_NE(text.find("TSFF("), std::string::npos);
  EXPECT_NE(text.find("SDFF("), std::string::npos);
  const BenchReadResult back = read_bench_string(text, lib(), "roundtrip");
  ASSERT_TRUE(back.ok()) << back.error;
  const Netlist& rt = *back.netlist;
  EXPECT_TRUE(rt.validate().empty()) << rt.validate();
  EXPECT_EQ(rt.flip_flops().size(), nl->flip_flops().size());
  EXPECT_EQ(rt.test_points().size(), nl->test_points().size());
  EXPECT_EQ(rt.num_pos(), nl->num_pos());
  EXPECT_EQ(rt.stats().combinational, nl->stats().combinational);

  // Port names do not survive the format (OUTPUT() names the net), so the
  // cross-round-trip miter matches POs by net name.
  MiterOptions mopts;
  mopts.match_pos_by_net = true;
  const MiterResult m = build_miter(*nl, rt, mopts);
  ASSERT_TRUE(m.ok()) << m.error;
  EXPECT_EQ(m.matched_pos, static_cast<int>(nl->num_pos()));
  const EquivResult res = EquivChecker(*m.netlist).check();
  EXPECT_TRUE(res.equivalent) << "round-trip changed behaviour: cex from "
                              << res.cex.source << " at frame " << res.cex.fail_frame;
}

TEST(BenchIoTest, CommentsAndBlankLinesIgnored) {
  const auto res = read_bench_string(
      "# header comment\n\nINPUT(a)  # trailing comment\nOUTPUT(z)\nz = BUFF(a)\n",
      lib(), "t");
  ASSERT_TRUE(res.ok()) << res.error;
  EXPECT_EQ(res.netlist->num_cells(), 1u);
}

TEST(BenchIoTest, MissingFileFails) {
  const auto res = read_bench_file("/nonexistent/path.bench", lib());
  EXPECT_FALSE(res.ok());
}

}  // namespace
}  // namespace tpi
