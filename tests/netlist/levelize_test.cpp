#include "netlist/levelize.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "../common/test_circuits.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(LevelizeTest, CombinationalChainLevels) {
  auto nl = test::make_small_comb();
  const TopoOrder topo = levelize(*nl, SeqView::kCapture);
  EXPECT_TRUE(topo.acyclic);
  ASSERT_EQ(topo.order.size(), 3u);
  const CellId g1 = nl->find_cell("g1");
  const CellId g2 = nl->find_cell("g2");
  const CellId g3 = nl->find_cell("g3");
  EXPECT_EQ(topo.level[static_cast<std::size_t>(g1)], 0);
  EXPECT_EQ(topo.level[static_cast<std::size_t>(g2)], 1);
  EXPECT_EQ(topo.level[static_cast<std::size_t>(g3)], 2);
  // Order respects dependencies.
  auto pos = [&](CellId c) {
    return std::find(topo.order.begin(), topo.order.end(), c) - topo.order.begin();
  };
  EXPECT_LT(pos(g1), pos(g2));
  EXPECT_LT(pos(g2), pos(g3));
}

TEST(LevelizeTest, FlipFlopsAreBoundariesInBothViews) {
  auto nl = test::make_shift_register();
  for (const SeqView view : {SeqView::kApplication, SeqView::kCapture}) {
    const TopoOrder topo = levelize(*nl, view);
    EXPECT_TRUE(topo.acyclic);
    // Only the XOR is combinational; both DFFs are boundaries.
    EXPECT_EQ(topo.order.size(), 1u);
  }
}

TEST(LevelizeTest, TsffIsViewDependent) {
  auto nl = test::make_shift_register();
  const CellId f0 = nl->find_cell("f0");
  nl->replace_spec(f0, lib().by_name("TSFF_X1"));
  EXPECT_FALSE(is_boundary(*nl, f0, SeqView::kApplication));  // transparent
  EXPECT_TRUE(is_boundary(*nl, f0, SeqView::kCapture));       // scan cell
  const TopoOrder app = levelize(*nl, SeqView::kApplication);
  const TopoOrder cap = levelize(*nl, SeqView::kCapture);
  EXPECT_EQ(app.order.size(), 2u);  // XOR + transparent TSFF
  EXPECT_EQ(cap.order.size(), 1u);  // XOR only
}

TEST(LevelizeTest, SequentialLoopIsAcyclicThroughFlipFlops) {
  // q feeds an inverter that feeds back into the same FF's D: a legal
  // sequential loop, combinationally acyclic.
  Netlist nl(&lib(), "toggle");
  const int clk = nl.add_primary_input("clk");
  nl.mark_clock(clk);
  const CellSpec* dff = lib().by_name("DFF_X1");
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellId f = nl.add_cell(dff, "f");
  const NetId q = nl.add_net("q");
  nl.connect(f, dff->output_pin, q);
  nl.connect(f, dff->clock_pin, nl.pi_net(clk));
  const CellId g = nl.add_cell(inv, "g");
  nl.connect(g, 0, q);
  const NetId nq = nl.add_net("nq");
  nl.connect(g, inv->output_pin, nq);
  nl.connect(f, dff->d_pin, nq);
  nl.add_primary_output("po", q);

  const TopoOrder topo = levelize(nl, SeqView::kApplication);
  EXPECT_TRUE(topo.acyclic);
  EXPECT_EQ(topo.order.size(), 1u);
}

TEST(LevelizeTest, CombinationalCycleDetected) {
  // Two cross-coupled NANDs with no sequential break: a combinational loop.
  Netlist nl(&lib(), "latch");
  const int a = nl.add_primary_input("a");
  const int b = nl.add_primary_input("b");
  const CellSpec* nand2 = lib().gate(CellFunc::kNand, 2);
  const CellId g1 = nl.add_cell(nand2, "g1");
  const CellId g2 = nl.add_cell(nand2, "g2");
  const NetId q = nl.add_net("q");
  const NetId qb = nl.add_net("qb");
  nl.connect(g1, nand2->output_pin, q);
  nl.connect(g2, nand2->output_pin, qb);
  nl.connect(g1, 0, nl.pi_net(a));
  nl.connect(g1, 1, qb);
  nl.connect(g2, 0, nl.pi_net(b));
  nl.connect(g2, 1, q);
  nl.add_primary_output("po", q);

  const TopoOrder topo = levelize(nl, SeqView::kCapture);
  EXPECT_FALSE(topo.acyclic);
}

TEST(LevelizeTest, ClockBuffersExcludedFromLogicGraph) {
  auto nl = test::make_shift_register();
  const CellSpec* ckbuf = lib().gate(CellFunc::kClkBuf, 1, 4);
  const CellId b = nl->add_cell(ckbuf, "ckb");
  const NetId out = nl->add_net("ck_leaf");
  nl->connect(b, ckbuf->find_pin("A"), nl->pi_net(0));
  nl->connect(b, ckbuf->output_pin, out);
  const TopoOrder topo = levelize(*nl, SeqView::kCapture);
  for (const CellId c : topo.order) EXPECT_NE(c, b);
}

}  // namespace
}  // namespace tpi
