#include "extraction/extraction.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(ExtractionTest, TwoPinNetElmoreHandComputed) {
  // Build a single buffer driving one sink; verify Elmore against the
  // closed form: edge of length L -> R = r*L, C_total = c*L + C_pin,
  // delay = R * (C_far_half + C_pin) + ... with a single pi segment:
  // delay = r*L * (c*L/2 + C_pin) * 1e-3 ps.
  Netlist nl(&lib(), "two_pin");
  const int a = nl.add_primary_input("a");
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellId g = nl.add_cell(inv, "g");
  nl.connect(g, 0, nl.pi_net(a));
  const NetId out = nl.add_net("out");
  nl.connect(g, inv->output_pin, out);
  const CellId g2 = nl.add_cell(inv, "g2");
  nl.connect(g2, 0, out);
  const NetId out2 = nl.add_net("out2");
  nl.connect(g2, inv->output_pin, out2);
  nl.add_primary_output("po", out2);

  const Floorplan fp = make_floorplan(nl, {});
  const Placement pl = place(nl, fp, {});
  const RoutingResult routes = route(nl, fp, pl);
  ExtractionOptions opts;
  const ExtractionResult px = extract(nl, routes, opts);

  const auto n = static_cast<std::size_t>(out);
  const RouteTree& tree = routes.nets[n];
  ASSERT_EQ(tree.node.size(), 2u);
  const double len = tree.length_um;
  const double pin_cap = inv->pins[0].cap_ff;
  const double r = opts.r_short_ohm_per_um, c = opts.c_short_ff_per_um;
  EXPECT_NEAR(px.nets[n].wire_cap_ff, c * len, 1e-9);
  EXPECT_NEAR(px.nets[n].pin_cap_ff, pin_cap, 1e-9);
  EXPECT_NEAR(px.nets[n].total_cap_ff, c * len + pin_cap, 1e-9);
  ASSERT_EQ(px.nets[n].sink_elmore_ps.size(), 1u);
  const double expect = 1e-3 * (r * len) * (c * len / 2.0 + pin_cap);
  EXPECT_NEAR(px.nets[n].sink_elmore_ps[0], expect, 1e-6);
}

TEST(ExtractionTest, LongNetsUseThickMetal) {
  ExtractionOptions opts;
  opts.long_net_threshold_um = 10.0;  // force nearly everything "long"
  auto nl = generate_circuit(lib(), test::tiny_profile(57));
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  const RoutingResult routes = route(*nl, fp, pl);
  const ExtractionResult thick = extract(*nl, routes, opts);
  const ExtractionResult normal = extract(*nl, routes, {});
  // Thick metal has lower resistance: Elmore delays must shrink for the
  // promoted nets.
  double thick_sum = 0, normal_sum = 0;
  for (std::size_t n = 0; n < nl->num_nets(); ++n) {
    for (double d : thick.nets[n].sink_elmore_ps) thick_sum += d;
    for (double d : normal.nets[n].sink_elmore_ps) normal_sum += d;
  }
  EXPECT_LT(thick_sum, normal_sum);
}

TEST(ExtractionTest, TotalCapIncludesAllSinkPins) {
  auto nl = test::make_small_comb();
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  const RoutingResult routes = route(*nl, fp, pl);
  ExtractionOptions opts;
  const ExtractionResult px = extract(*nl, routes, opts);
  // Net "a" feeds NOR.A and XOR.A.
  const NetId a = nl->pi_net(0);
  const double nor_a = lib().gate(CellFunc::kNor, 2)->pins[0].cap_ff;
  const double xor_a = lib().gate(CellFunc::kXor, 2)->pins[0].cap_ff;
  EXPECT_NEAR(px.nets[static_cast<std::size_t>(a)].pin_cap_ff, nor_a + xor_a, 1e-9);
  // Net "z" feeds XOR.B and the PO pad.
  const NetId z = nl->find_net("z");
  const double xor_b = lib().gate(CellFunc::kXor, 2)->pins[1].cap_ff;
  EXPECT_NEAR(px.nets[static_cast<std::size_t>(z)].pin_cap_ff, xor_b + opts.po_pad_cap_ff,
              1e-9);
}

TEST(ExtractionTest, ElmoreMonotoneAlongPath) {
  // On multi-sink nets, a sink farther down the tree never has smaller
  // Elmore delay than the common-path prefix guarantees: all delays >= 0
  // and bounded by full-lumped worst case.
  auto nl = generate_circuit(lib(), test::tiny_profile(58));
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  const RoutingResult routes = route(*nl, fp, pl);
  const ExtractionResult px = extract(*nl, routes, {});
  for (std::size_t n = 0; n < nl->num_nets(); ++n) {
    const RouteTree& tree = routes.nets[n];
    const NetParasitics& p = px.nets[n];
    const double lumped_bound =
        1e-3 * 0.80 * tree.length_um * p.total_cap_ff + 1e-6;
    for (const double d : p.sink_elmore_ps) {
      EXPECT_GE(d, 0.0);
      EXPECT_LE(d, lumped_bound);
    }
  }
}

TEST(ExtractionTest, AggregateWireCap) {
  auto nl = generate_circuit(lib(), test::tiny_profile(59));
  const Floorplan fp = make_floorplan(*nl, {});
  const Placement pl = place(*nl, fp, {});
  const RoutingResult routes = route(*nl, fp, pl);
  const ExtractionResult px = extract(*nl, routes, {});
  double sum = 0;
  for (const NetParasitics& p : px.nets) sum += p.wire_cap_ff;
  EXPECT_NEAR(px.total_wire_cap_ff, sum, 1e-6);
  EXPECT_GT(sum, 0.0);
}

}  // namespace
}  // namespace tpi
