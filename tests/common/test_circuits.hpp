// Shared helpers for tests: hand-built netlists with known behaviour and a
// tiny generator profile used by the cross-module tests.
#pragma once

#include <memory>

#include "circuits/generator.hpp"
#include "circuits/profiles.hpp"
#include "netlist/netlist.hpp"

namespace tpi::test {

/// Library shared by all tests in a binary.
inline const CellLibrary& lib() {
  static const std::unique_ptr<CellLibrary> l = make_phl130_library();
  return *l;
}

/// y = NOR(a, b); z = AND(c, y); w = XOR(a, z); outputs z and w.
/// Fully testable: every stuck-at fault has a test.
inline std::unique_ptr<Netlist> make_small_comb() {
  auto nl = std::make_unique<Netlist>(&lib(), "small_comb");
  const int a = nl->add_primary_input("a");
  const int b = nl->add_primary_input("b");
  const int c = nl->add_primary_input("c");
  const CellSpec* nor2 = lib().gate(CellFunc::kNor, 2);
  const CellSpec* and2 = lib().gate(CellFunc::kAnd, 2);
  const CellSpec* xor2 = lib().gate(CellFunc::kXor, 2);
  const CellId g1 = nl->add_cell(nor2, "g1");
  nl->connect(g1, 0, nl->pi_net(a));
  nl->connect(g1, 1, nl->pi_net(b));
  const NetId y = nl->add_net("y");
  nl->connect(g1, nor2->output_pin, y);
  const CellId g2 = nl->add_cell(and2, "g2");
  nl->connect(g2, 0, nl->pi_net(c));
  nl->connect(g2, 1, y);
  const NetId z = nl->add_net("z");
  nl->connect(g2, and2->output_pin, z);
  const CellId g3 = nl->add_cell(xor2, "g3");
  nl->connect(g3, 0, nl->pi_net(a));
  nl->connect(g3, 1, z);
  const NetId w = nl->add_net("w");
  nl->connect(g3, xor2->output_pin, w);
  nl->add_primary_output("po_z", z);
  nl->add_primary_output("po_w", w);
  return nl;
}

/// Two-bit shift register with an XOR tap: clk, d -> q0 -> q1, po = q0^q1.
inline std::unique_ptr<Netlist> make_shift_register() {
  auto nl = std::make_unique<Netlist>(&lib(), "shift2");
  const int clk = nl->add_primary_input("clk");
  nl->mark_clock(clk);
  const int d = nl->add_primary_input("d");
  const CellSpec* dff = lib().by_name("DFF_X1");
  const CellSpec* xor2 = lib().gate(CellFunc::kXor, 2);
  const CellId f0 = nl->add_cell(dff, "f0");
  nl->connect(f0, dff->d_pin, nl->pi_net(d));
  nl->connect(f0, dff->clock_pin, nl->pi_net(clk));
  const NetId q0 = nl->add_net("q0");
  nl->connect(f0, dff->output_pin, q0);
  const CellId f1 = nl->add_cell(dff, "f1");
  nl->connect(f1, dff->d_pin, q0);
  nl->connect(f1, dff->clock_pin, nl->pi_net(clk));
  const NetId q1 = nl->add_net("q1");
  nl->connect(f1, dff->output_pin, q1);
  const CellId g = nl->add_cell(xor2, "g");
  nl->connect(g, 0, q0);
  nl->connect(g, 1, q1);
  const NetId t = nl->add_net("t");
  nl->connect(g, xor2->output_pin, t);
  nl->add_primary_output("po", t);
  return nl;
}

/// Small deterministic generator profile (fast enough for unit tests).
inline CircuitProfile tiny_profile(std::uint64_t seed = 1234) {
  CircuitProfile p;
  p.name = "tiny";
  p.num_ffs = 24;
  p.num_comb_gates = 320;
  p.num_pis = 10;
  p.num_pos = 8;
  p.num_clock_domains = 1;
  p.domain_fraction = {1.0};
  p.target_depth = 10;
  p.num_hard_blocks = 2;
  p.hard_block_width = 6;
  p.hard_classes_per_block = 4;
  p.hard_mode_bits = 3;
  p.num_hub_signals = 3;
  p.hub_pick_prob = 0.02;
  p.max_chain_length = 10;
  p.target_row_utilization = 0.9;
  p.seed = seed;
  return p;
}

/// Mid-size profile for integration tests (~2.5k cells).
inline CircuitProfile small_profile(std::uint64_t seed = 77) {
  CircuitProfile p = scaled(s38417_profile(), 0.1);
  p.name = "s38417_mini";
  p.num_hard_blocks = 4;
  p.seed = seed;
  return p;
}

}  // namespace tpi::test
