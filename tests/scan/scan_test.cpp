#include "scan/scan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "sim/seq_sim.hpp"
#include "tpi/tpi.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(ScanInsertTest, ReplacesAllDffsWithScanCells) {
  auto nl = generate_circuit(lib(), test::tiny_profile(41));
  const std::size_t ffs = nl->flip_flops().size();
  ScanOptions opts;
  const ScanInsertReport report = insert_scan(*nl, opts);
  EXPECT_EQ(report.converted_ffs, static_cast<int>(ffs));
  EXPECT_EQ(report.scan_cells, static_cast<int>(ffs));
  for (const CellId ff : nl->flip_flops()) {
    EXPECT_NE(nl->cell(ff).spec->func, CellFunc::kDff);
  }
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

TEST(ScanInsertTest, ScanEnableDrivesEveryScanCell) {
  auto nl = generate_circuit(lib(), test::tiny_profile(42));
  ScanOptions opts;
  const ScanInsertReport report = insert_scan(*nl, opts);
  ASSERT_NE(report.scan_enable_net, kNoNet);
  for (const CellId ff : nl->flip_flops()) {
    const CellInst& inst = nl->cell(ff);
    EXPECT_EQ(inst.conn[static_cast<std::size_t>(inst.spec->te_pin)],
              report.scan_enable_net);
  }
}

TEST(ScanInsertTest, TsffsRehomedToSharedEnable) {
  auto nl = generate_circuit(lib(), test::tiny_profile(43));
  TpiOptions tpi;
  tpi.num_test_points = 3;
  insert_test_points(*nl, tpi);
  ScanOptions opts;
  const ScanInsertReport report = insert_scan(*nl, opts);
  for (const CellId tp : nl->test_points()) {
    const CellInst& inst = nl->cell(tp);
    EXPECT_EQ(inst.conn[static_cast<std::size_t>(inst.spec->te_pin)],
              report.scan_enable_net);
  }
}

TEST(ChainPlanTest, BalancedChainsRespectMaxLength) {
  auto nl = generate_circuit(lib(), test::tiny_profile(44));
  insert_scan(*nl, {});
  ScanOptions opts;
  opts.max_chain_length = 7;
  const ChainPlan plan = plan_chains(*nl, opts, {});
  EXPECT_GT(plan.num_chains, 1);
  EXPECT_LE(plan.max_length, 7);
  int total = 0;
  for (const auto& chain : plan.chains) {
    total += static_cast<int>(chain.size());
    EXPECT_GE(static_cast<int>(chain.size()), plan.max_length - 1);  // balanced
  }
  EXPECT_EQ(total, static_cast<int>(nl->flip_flops().size()));
}

TEST(ChainPlanTest, MaxChainsCapRespected) {
  auto nl = generate_circuit(lib(), test::tiny_profile(45));
  insert_scan(*nl, {});
  ScanOptions opts;
  opts.max_chain_length = 0;
  opts.max_chains = 3;
  const ChainPlan plan = plan_chains(*nl, opts, {});
  EXPECT_LE(plan.num_chains, 3);
  EXPECT_EQ(plan.max_length,
            (static_cast<int>(nl->flip_flops().size()) + 2) / 3);
}

TEST(ChainPlanTest, ChainsNeverMixClockDomains) {
  CircuitProfile p = test::tiny_profile(46);
  p.num_clock_domains = 2;
  p.domain_fraction = {0.6, 0.4};
  auto nl = generate_circuit(lib(), p);
  insert_scan(*nl, {});
  ScanOptions opts;
  opts.max_chain_length = 6;
  const ChainPlan plan = plan_chains(*nl, opts, {});
  for (const auto& chain : plan.chains) {
    std::map<NetId, int> domains;
    for (const CellId c : chain) {
      const CellInst& inst = nl->cell(c);
      domains[inst.conn[static_cast<std::size_t>(inst.spec->clock_pin)]]++;
    }
    EXPECT_EQ(domains.size(), 1u) << "chain mixes clock domains";
  }
}

TEST(ScanStitchTest, ShiftPathIsFullyConnected) {
  auto nl = generate_circuit(lib(), test::tiny_profile(47));
  insert_scan(*nl, {});
  ScanOptions opts;
  opts.max_chain_length = 9;
  const ChainPlan plan = plan_chains(*nl, opts, {});
  const StitchReport report = stitch_chains(*nl, plan);
  EXPECT_EQ(report.num_chains, plan.num_chains);
  EXPECT_EQ(report.scan_in_pis, plan.num_chains);
  EXPECT_EQ(report.scan_out_pos, plan.num_chains);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
  // Walk each chain: TI of cell k+1 must be Q of cell k.
  for (std::size_t k = 0; k < plan.chains.size(); ++k) {
    const auto& chain = plan.chains[k];
    const NetId si = nl->find_net("si" + std::to_string(k));
    ASSERT_NE(si, kNoNet);
    NetId expect = si;
    for (const CellId c : chain) {
      const CellInst& inst = nl->cell(c);
      EXPECT_EQ(inst.conn[static_cast<std::size_t>(inst.spec->ti_pin)], expect);
      expect = inst.output_net();
    }
  }
}

TEST(ScanStitchTest, ShiftActuallyShiftsBits) {
  // Functional check: in shift mode (scan_en=1) data moves one position
  // per clock along the chain.
  auto nl = test::make_shift_register();
  insert_scan(*nl, {});
  ScanOptions opts;
  opts.max_chain_length = 2;
  const ChainPlan plan = plan_chains(*nl, opts, {});
  ASSERT_EQ(plan.num_chains, 1);
  stitch_chains(*nl, plan);

  // Simulate the SHIFT path manually: state advances via TI when TE=1.
  // SequentialSim models application mode, so emulate shift semantics here
  // by direct capture-model stepping.
  CombModel model(*nl, SeqView::kCapture);
  // Inputs: d, scan_en, si0 + 2 FF outputs.
  const auto& inputs = model.input_nets();
  ASSERT_EQ(inputs.size(), 5u);
  // In shift mode each FF's next state = its TI value. Verify TI wiring by
  // reading the netlist (already checked structurally above) and by the
  // boundary order: chain cell 0 feeds chain cell 1.
  const auto& chain = plan.chains[0];
  const CellInst& second = nl->cell(chain[1]);
  EXPECT_EQ(second.conn[static_cast<std::size_t>(second.spec->ti_pin)],
            nl->cell(chain[0]).output_net());
}

TEST(ScanReorderTest, NearestNeighbourReducesWireLength) {
  auto nl = generate_circuit(lib(), test::tiny_profile(48));
  insert_scan(*nl, {});
  ScanOptions opts;
  opts.max_chain_length = 12;
  // Synthetic placement: pseudo-random positions keyed by cell id.
  std::vector<std::pair<double, double>> pos(nl->num_cells());
  for (std::size_t c = 0; c < pos.size(); ++c) {
    pos[c] = {static_cast<double>((c * 37) % 199), static_cast<double>((c * 91) % 173)};
  }
  ChainPlan unordered = plan_chains(*nl, opts, {});
  const double before = chain_wire_length(unordered, pos);
  ChainPlan reordered = unordered;
  reorder_chains(reordered, pos);
  const double after = chain_wire_length(reordered, pos);
  EXPECT_LT(after, before);
  // Reordering permutes within chains, never across.
  for (std::size_t k = 0; k < unordered.chains.size(); ++k) {
    auto a = unordered.chains[k];
    auto b = reordered.chains[k];
    std::sort(a.begin(), a.end());
    std::sort(b.begin(), b.end());
    EXPECT_EQ(a, b);
  }
}

TEST(BufferTreeTest, LimitsFanoutAndPreservesLoads) {
  auto nl = generate_circuit(lib(), test::tiny_profile(49));
  insert_scan(*nl, {});
  const NetId se = nl->find_net("scan_en");
  ASSERT_NE(se, kNoNet);
  const std::size_t loads = nl->net(se).fanout();
  ASSERT_GT(loads, 6u);
  const int added = buffer_high_fanout_net(*nl, se, 6);
  EXPECT_GT(added, 0);
  EXPECT_LE(nl->net(se).fanout(), 6u);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
  // Every scan cell still reachable from scan_en through buffers.
  std::size_t reached = 0;
  std::vector<NetId> frontier{se};
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    for (const PinRef& s : nl->net(frontier[head]).sinks) {
      const CellInst& inst = nl->cell(s.cell);
      if (inst.spec->func == CellFunc::kBuf) {
        frontier.push_back(inst.output_net());
      } else if (s.pin == inst.spec->te_pin) {
        ++reached;
      }
    }
  }
  EXPECT_EQ(reached, nl->flip_flops().size());
}

TEST(BufferTreeTest, SmallNetUntouched) {
  auto nl = test::make_shift_register();
  insert_scan(*nl, {});
  const NetId se = nl->find_net("scan_en");
  EXPECT_EQ(buffer_high_fanout_net(*nl, se, 24), 0);
}

}  // namespace
}  // namespace tpi
