#include "tpi/tpi.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "sim/seq_sim.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(TpiInsertionTest, InsertsRequestedCount) {
  auto nl = generate_circuit(lib(), test::tiny_profile(11));
  TpiOptions opts;
  opts.num_test_points = 5;
  const TpiReport report = insert_test_points(*nl, opts);
  EXPECT_EQ(report.test_points.size(), 5u);
  EXPECT_EQ(nl->test_points().size(), 5u);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
}

TEST(TpiInsertionTest, ZeroIsNoOp) {
  auto nl = generate_circuit(lib(), test::tiny_profile(11));
  const std::size_t cells = nl->num_cells();
  TpiOptions opts;
  opts.num_test_points = 0;
  insert_test_points(*nl, opts);
  EXPECT_EQ(nl->num_cells(), cells);
}

TEST(TpiInsertionTest, TestPointsFullyConnected) {
  auto nl = generate_circuit(lib(), test::tiny_profile(12));
  TpiOptions opts;
  opts.num_test_points = 4;
  const TpiReport report = insert_test_points(*nl, opts);
  for (const CellId tp : report.test_points) {
    const CellInst& inst = nl->cell(tp);
    const CellSpec* spec = inst.spec;
    EXPECT_EQ(spec->func, CellFunc::kTsff);
    EXPECT_NE(inst.conn[static_cast<std::size_t>(spec->d_pin)], kNoNet);
    EXPECT_NE(inst.conn[static_cast<std::size_t>(spec->te_pin)], kNoNet);
    EXPECT_NE(inst.conn[static_cast<std::size_t>(spec->tr_pin)], kNoNet);
    EXPECT_NE(inst.conn[static_cast<std::size_t>(spec->clock_pin)], kNoNet);
    EXPECT_NE(inst.output_net(), kNoNet);
    // TI stays open for the scan stitcher.
    EXPECT_EQ(inst.conn[static_cast<std::size_t>(spec->ti_pin)], kNoNet);
    // Clock assignment found a real clock domain (§3.1 step 2).
    EXPECT_TRUE(
        nl->is_clock_net(inst.conn[static_cast<std::size_t>(spec->clock_pin)]));
  }
}

TEST(TpiInsertionTest, ApplicationModeBehaviourPreserved) {
  // The key DfT invariant: with TE=TR=0 the circuit computes the same
  // function after TPI (test points are transparent).
  const CircuitProfile p = test::tiny_profile(13);
  auto golden = generate_circuit(lib(), p);
  auto modified = generate_circuit(lib(), p);
  TpiOptions opts;
  opts.num_test_points = 6;
  insert_test_points(*modified, opts);

  SequentialSim ref(*golden);
  SequentialSim dut(*modified);
  ASSERT_EQ(ref.num_state_bits(), dut.num_state_bits());  // TSFFs transparent

  Rng rng(2024);
  const std::size_t ref_pis = ref.model().num_pi_inputs();
  const std::size_t dut_pis = dut.model().num_pi_inputs();
  ASSERT_EQ(dut_pis, ref_pis + 2);  // + tp_te, tp_tr control inputs
  for (int cycle = 0; cycle < 12; ++cycle) {
    std::vector<Word> stim(ref_pis);
    for (auto& w : stim) w = rng.next_u64();
    std::vector<Word> dut_stim = stim;
    dut_stim.push_back(0);  // tp_te = 0
    dut_stim.push_back(0);  // tp_tr = 0 -> application mode
    std::vector<Word> ref_po, dut_po;
    ref.step(stim, ref_po);
    dut.step(dut_stim, dut_po);
    ASSERT_GE(dut_po.size(), ref_po.size());
    for (std::size_t i = 0; i < ref_po.size(); ++i) {
      ASSERT_EQ(dut_po[i], ref_po[i]) << "PO " << i << " differs in cycle " << cycle;
    }
  }
}

TEST(TpiInsertionTest, ExcludedNetsAreRespected) {
  const CircuitProfile p = test::tiny_profile(14);
  auto probe = generate_circuit(lib(), p);
  TpiOptions opts;
  opts.num_test_points = 3;
  const TpiReport first = insert_test_points(*probe, opts);
  ASSERT_EQ(first.sites.size(), 3u);

  // Re-run on a fresh copy with the first choice excluded.
  auto nl = generate_circuit(lib(), p);
  opts.excluded_nets = {first.sites.begin(), first.sites.end()};
  const TpiReport second = insert_test_points(*nl, opts);
  for (const NetId site : second.sites) {
    EXPECT_FALSE(opts.excluded_nets.contains(site));
  }
}

TEST(TpiInsertionTest, HybridTargetsHardEnableNets) {
  // Build a profile where one rare wide-AND enable gates many classes; the
  // gain-driven hybrid method must put the first test point on an enable
  // (high fanout, tiny signal probability), not on a trunk-internal node.
  CircuitProfile p = test::tiny_profile(15);
  p.num_comb_gates = 800;
  p.num_hard_blocks = 2;
  p.hard_block_width = 12;
  p.hard_classes_per_block = 10;
  p.hard_mode_bits = 4;
  auto nl = generate_circuit(lib(), p);
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  const auto ranked = rank_tpi_candidates(*nl, t, model, TpiMethod::kHybrid, {}, 2);
  ASSERT_FALSE(ranked.empty());
  const Net& site = nl->net(ranked.front());
  EXPECT_GE(site.fanout(), 8u) << "expected a gated-region enable";
  EXPECT_LT(t.p1[static_cast<std::size_t>(ranked.front())], 0.05f);
}

TEST(TpiInsertionTest, MethodsProduceDifferentRankings) {
  auto nl = generate_circuit(lib(), test::tiny_profile(16));
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  const auto hybrid = rank_tpi_candidates(*nl, t, model, TpiMethod::kHybrid, {}, 8);
  const auto cop = rank_tpi_candidates(*nl, t, model, TpiMethod::kCop, {}, 8);
  const auto scoap = rank_tpi_candidates(*nl, t, model, TpiMethod::kScoap, {}, 8);
  EXPECT_FALSE(hybrid.empty());
  EXPECT_FALSE(cop.empty());
  EXPECT_FALSE(scoap.empty());
  EXPECT_TRUE(hybrid != cop || cop != scoap);
}

TEST(TpiInsertionTest, InsertionImprovesTestability) {
  auto nl = generate_circuit(lib(), test::tiny_profile(17));
  CombModel before_model(*nl, SeqView::kCapture);
  const TestabilityResult before = analyze_testability(before_model);
  double worst_before = 1.0;
  for (std::size_t n = 0; n < nl->num_nets(); ++n) {
    if (nl->is_clock_net(static_cast<NetId>(n))) continue;
    const Net& net = nl->net(static_cast<NetId>(n));
    if (!net.driver.valid() && !net.driven_by_pi()) continue;
    worst_before = std::min(worst_before,
                            static_cast<double>(before.detect_prob_min(static_cast<NetId>(n))));
  }
  TpiOptions opts;
  opts.num_test_points = 4;
  insert_test_points(*nl, opts);
  CombModel after_model(*nl, SeqView::kCapture);
  const TestabilityResult after = analyze_testability(after_model);
  // Average hardness (in probability bits) must improve on hard nets.
  double sum_before = 0, sum_after = 0;
  int count = 0;
  for (std::size_t n = 0; n < before.p1.size(); ++n) {
    const NetId net = static_cast<NetId>(n);
    if (nl->is_clock_net(net)) continue;
    const Net& netr = nl->net(net);
    if (!netr.driver.valid() && !netr.driven_by_pi()) continue;
    if (before.detect_prob_min(net) < 1e-3f) {
      sum_before += before.detect_prob_min(net);
      sum_after += after.detect_prob_min(net);
      ++count;
    }
  }
  if (count > 0) EXPECT_GT(sum_after, sum_before);
}

}  // namespace
}  // namespace tpi
