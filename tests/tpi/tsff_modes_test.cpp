// Fig. 1 semantics of the transparent scan flip-flop, validated against a
// discrete gate-level model built from two MUX2 cells and a DFF:
//
//   m1 = TE ? TI : D          (scan input mux)
//   FF captures m1 each clock
//   Q  = TR ? FF : m1         (output mux)
//
//   application TE=0 TR=0: Q = D   (transparent, two mux delays)
//   shift       TE=1 TR=1: Q = FF, FF <- TI
//   capture     TE=0 TR=1: Q = FF, FF <- D   (observe D / control Q)
//   flush       TE=1 TR=0: Q = TI  (combinational flush path)
#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "sim/seq_sim.hpp"

namespace tpi {
namespace {

using test::lib;

// Discrete TSFF: inputs d, ti, te, tr; output q; plus clock.
std::unique_ptr<Netlist> make_discrete_tsff() {
  auto nl = std::make_unique<Netlist>(&lib(), "tsff_discrete");
  const int clk = nl->add_primary_input("clk");
  nl->mark_clock(clk);
  const NetId d = nl->pi_net(nl->add_primary_input("d"));
  const NetId ti = nl->pi_net(nl->add_primary_input("ti"));
  const NetId te = nl->pi_net(nl->add_primary_input("te"));
  const NetId tr = nl->pi_net(nl->add_primary_input("tr"));
  const CellSpec* mux = lib().gate(CellFunc::kMux2, 2);
  const CellSpec* dff = lib().by_name("DFF_X1");

  const CellId m1 = nl->add_cell(mux, "m1");
  nl->connect(m1, mux->find_pin("A"), d);
  nl->connect(m1, mux->find_pin("B"), ti);
  nl->connect(m1, mux->select_pin, te);
  const NetId m1y = nl->add_net("m1y");
  nl->connect(m1, mux->output_pin, m1y);

  const CellId ff = nl->add_cell(dff, "ff");
  nl->connect(ff, dff->d_pin, m1y);
  nl->connect(ff, dff->clock_pin, nl->pi_net(clk));
  const NetId ffq = nl->add_net("ffq");
  nl->connect(ff, dff->output_pin, ffq);

  const CellId m2 = nl->add_cell(mux, "m2");
  nl->connect(m2, mux->find_pin("A"), m1y);
  nl->connect(m2, mux->find_pin("B"), ffq);
  nl->connect(m2, mux->select_pin, tr);
  const NetId q = nl->add_net("q");
  nl->connect(m2, mux->output_pin, q);
  nl->add_primary_output("q_out", q);
  return nl;
}

class TsffModesTest : public ::testing::Test {
 protected:
  void SetUp() override {
    nl_ = make_discrete_tsff();
    sim_ = std::make_unique<SequentialSim>(*nl_);
  }
  // PIs in creation order: d, ti, te, tr (clk excluded from comb inputs).
  Word q_after_cycle(Word d, Word ti, Word te, Word tr) {
    std::vector<Word> po;
    sim_->step({d, ti, te, tr}, po);
    return po[0];
  }
  Word ff_state() const { return sim_->state()[0]; }

  std::unique_ptr<Netlist> nl_;
  std::unique_ptr<SequentialSim> sim_;
};

TEST_F(TsffModesTest, ApplicationModeIsTransparent) {
  // TE = TR = 0: q follows d combinationally regardless of FF state.
  EXPECT_EQ(q_after_cycle(~Word{0}, 0, 0, 0), ~Word{0});
  EXPECT_EQ(q_after_cycle(Word{0xF0F0}, ~Word{0}, 0, 0), Word{0xF0F0});
}

TEST_F(TsffModesTest, ShiftModeLoadsScanInput) {
  // TE = TR = 1: q shows FF; FF captures TI.
  const Word ti = 0xAAAA5555AAAA5555ULL;
  q_after_cycle(0, ti, ~Word{0}, ~Word{0});
  EXPECT_EQ(ff_state(), ti);
  // Next shift cycle exposes it at q.
  const Word q = q_after_cycle(0, 0, ~Word{0}, ~Word{0});
  EXPECT_EQ(q, ti);
}

TEST_F(TsffModesTest, CaptureModeObservesDandControlsQ) {
  // Preload the FF via shift.
  const Word preload = 0x1234FEDC00FFCC33ULL;
  q_after_cycle(0, preload, ~Word{0}, ~Word{0});
  ASSERT_EQ(ff_state(), preload);
  // Capture: TE=0, TR=1. q is controlled from the FF while D is captured.
  const Word d = 0xDEADBEEF12345678ULL;
  const Word q = q_after_cycle(d, 0, 0, ~Word{0});
  EXPECT_EQ(q, preload);      // control point: output from the FF
  EXPECT_EQ(ff_state(), d);   // observation point: D captured
}

TEST_F(TsffModesTest, FlushModePassesScanInputCombinationally) {
  // TE=1, TR=0: TI flows to q without a clock (§3.1 scan flush test).
  const Word ti = 0x00FF00FF00FF00FFULL;
  const Word q = q_after_cycle(0, ti, ~Word{0}, 0);
  EXPECT_EQ(q, ti);
}

TEST_F(TsffModesTest, LibraryTsffMatchesDiscreteModelInApplicationMode) {
  // The monolithic TSFF_X1 cell must behave like the discrete model when
  // used in a circuit: transparent D -> Q in the application view.
  auto nl = test::make_shift_register();
  const CellId f0 = nl->find_cell("f0");
  nl->replace_spec(f0, lib().by_name("TSFF_X1"));
  const CellSpec* tsff = nl->cell(f0).spec;
  const CellId tie = nl->add_cell(lib().by_name("TIE0"), "tie");
  const NetId zero = nl->add_net("zero");
  nl->connect(tie, 0, zero);
  nl->connect(f0, tsff->te_pin, zero);
  nl->connect(f0, tsff->tr_pin, zero);

  SequentialSim sim(*nl);
  std::vector<Word> po;
  const Word d = 0xCAFEBABE00112233ULL;
  sim.step({d}, po);
  // Transparent: f1 (the remaining state bit) captured d immediately.
  EXPECT_EQ(sim.state()[0], d);
}

}  // namespace
}  // namespace tpi
