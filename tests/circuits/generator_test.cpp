#include "circuits/generator.hpp"

#include <gtest/gtest.h>

#include <cctype>
#include <cmath>

#include "../common/test_circuits.hpp"
#include "netlist/levelize.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(GeneratorTest, DeterministicForSameSeed) {
  const CircuitProfile p = test::tiny_profile(99);
  auto a = generate_circuit(lib(), p);
  auto b = generate_circuit(lib(), p);
  ASSERT_EQ(a->num_cells(), b->num_cells());
  ASSERT_EQ(a->num_nets(), b->num_nets());
  for (std::size_t c = 0; c < a->num_cells(); ++c) {
    EXPECT_EQ(a->cell(static_cast<CellId>(c)).spec, b->cell(static_cast<CellId>(c)).spec);
    EXPECT_EQ(a->cell(static_cast<CellId>(c)).conn, b->cell(static_cast<CellId>(c)).conn);
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  auto a = generate_circuit(lib(), test::tiny_profile(1));
  auto b = generate_circuit(lib(), test::tiny_profile(2));
  bool differ = a->num_cells() != b->num_cells();
  for (std::size_t c = 0; !differ && c < a->num_cells(); ++c) {
    differ = a->cell(static_cast<CellId>(c)).conn != b->cell(static_cast<CellId>(c)).conn;
  }
  EXPECT_TRUE(differ);
}

class ProfileTest : public ::testing::TestWithParam<CircuitProfile> {};

TEST_P(ProfileTest, MatchesRequestedStatistics) {
  const CircuitProfile p = GetParam();
  auto nl = generate_circuit(lib(), p);
  EXPECT_TRUE(nl->validate().empty()) << nl->validate();
  EXPECT_EQ(static_cast<int>(nl->flip_flops().size()), p.num_ffs);
  EXPECT_EQ(static_cast<int>(nl->clock_pis().size()), p.num_clock_domains);
  const Netlist::Stats s = nl->stats();
  // Combinational cell count within 15% of target.
  EXPECT_NEAR(static_cast<double>(s.combinational), p.num_comb_gates,
              0.15 * p.num_comb_gates);
  // Paper-declared POs plus observation outputs.
  EXPECT_GE(static_cast<int>(nl->num_pos()), p.num_pos);
}

TEST_P(ProfileTest, CombinationallyAcyclicInBothViews) {
  auto nl = generate_circuit(lib(), GetParam());
  EXPECT_TRUE(levelize(*nl, SeqView::kApplication).acyclic);
  EXPECT_TRUE(levelize(*nl, SeqView::kCapture).acyclic);
}

TEST_P(ProfileTest, EveryFlipFlopFullyConnected) {
  auto nl = generate_circuit(lib(), GetParam());
  for (const CellId ff : nl->flip_flops()) {
    const CellInst& inst = nl->cell(ff);
    EXPECT_NE(inst.conn[static_cast<std::size_t>(inst.spec->d_pin)], kNoNet);
    EXPECT_NE(inst.conn[static_cast<std::size_t>(inst.spec->clock_pin)], kNoNet);
    EXPECT_NE(inst.output_net(), kNoNet);
    EXPECT_TRUE(nl->is_clock_net(inst.conn[static_cast<std::size_t>(inst.spec->clock_pin)]));
  }
}

TEST_P(ProfileTest, NoDanglingLogicNets) {
  auto nl = generate_circuit(lib(), GetParam());
  std::size_t dangling = 0;
  for (std::size_t n = 0; n < nl->num_nets(); ++n) {
    const Net& net = nl->net(static_cast<NetId>(n));
    if (nl->is_clock_net(static_cast<NetId>(n))) continue;
    if ((net.driver.valid() || net.driven_by_pi()) && net.fanout() == 0) ++dangling;
  }
  // The observation-tree pass absorbs unused signals.
  EXPECT_EQ(dangling, 0u);
}

INSTANTIATE_TEST_SUITE_P(Profiles, ProfileTest,
                         ::testing::Values(test::tiny_profile(), test::small_profile(),
                                           scaled(circuit1_profile(), 0.05),
                                           scaled(p26909_profile(), 0.05)),
                         [](const ::testing::TestParamInfo<CircuitProfile>& info) {
                           std::string name = info.param.name;
                           for (char& ch : name) {
                             if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
                           }
                           return name;
                         });

TEST(GeneratorTest, MultiDomainAssignsClocksByFraction) {
  CircuitProfile p = test::tiny_profile();
  p.num_clock_domains = 2;
  p.domain_fraction = {0.5, 0.5};
  p.num_ffs = 40;
  auto nl = generate_circuit(lib(), p);
  int dom0 = 0, dom1 = 0;
  for (const CellId ff : nl->flip_flops()) {
    const CellInst& inst = nl->cell(ff);
    const NetId ck = inst.conn[static_cast<std::size_t>(inst.spec->clock_pin)];
    if (ck == nl->pi_net(nl->clock_pis()[0])) ++dom0;
    if (ck == nl->pi_net(nl->clock_pis()[1])) ++dom1;
  }
  EXPECT_EQ(dom0 + dom1, 40);
  EXPECT_NEAR(dom0, 20, 3);
}

TEST(GeneratorTest, HubSignalsGetLargeFanout) {
  CircuitProfile p = test::tiny_profile();
  p.num_hub_signals = 4;
  p.hub_pick_prob = 0.08;
  p.num_comb_gates = 600;
  auto nl = generate_circuit(lib(), p);
  std::size_t max_fanout = 0;
  for (std::size_t n = 0; n < nl->num_nets(); ++n) {
    if (nl->is_clock_net(static_cast<NetId>(n))) continue;
    max_fanout = std::max(max_fanout, nl->net(static_cast<NetId>(n)).fanout());
  }
  EXPECT_GE(max_fanout, 10u);
}

TEST(GeneratorTest, ScaledProfileShrinks) {
  const CircuitProfile base = s38417_profile();
  const CircuitProfile half = scaled(base, 0.5);
  EXPECT_EQ(half.num_ffs, base.num_ffs / 2);
  EXPECT_NEAR(half.num_comb_gates, base.num_comb_gates / 2, 1);
  EXPECT_EQ(half.target_row_utilization, base.target_row_utilization);
}

TEST(GeneratorTest, PaperProfilesMatchSection41) {
  const auto profiles = paper_profiles();
  ASSERT_EQ(profiles.size(), 3u);
  EXPECT_EQ(profiles[0].name, "s38417");
  EXPECT_EQ(profiles[0].num_ffs, 1636);  // §4.1: "contains 1,636 flip-flops"
  EXPECT_EQ(profiles[1].num_clock_domains, 2);
  EXPECT_EQ(profiles[2].max_chains, 32);  // §4.1: chains limited to 32
  EXPECT_DOUBLE_EQ(profiles[2].target_row_utilization, 0.50);
  EXPECT_DOUBLE_EQ(profiles[0].target_row_utilization, 0.97);
}

}  // namespace
}  // namespace tpi
