// Cross-backend parity: every SIMD backend compiled in and supported by
// the running CPU must produce bit-identical results — fault detection
// words (at every lane width), miter verdicts/counterexamples, and the
// deterministic metrics snapshot of a whole flow run. The logical lane
// count is fixed algorithmically, so any divergence here is a kernel
// codegen bug, not a tolerance question.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "../common/test_circuits.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/generator.hpp"
#include "flow/flow.hpp"
#include "sim/simd.hpp"
#include "util/rng.hpp"
#include "verify/equiv.hpp"
#include "verify/miter.hpp"

namespace tpi {
namespace {

using test::lib;

std::vector<SimdBackend> available_backends() {
  std::vector<SimdBackend> v;
  for (const SimdBackend b : {SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    if (simd_backend_available(b)) v.push_back(b);
  }
  return v;
}

/// Pins a backend for one scope; restores auto dispatch on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(SimdBackend b) { set_simd_backend(b); }
  ~ScopedBackend() { set_simd_backend(std::nullopt); }
};

TEST(SimdParityTest, ScalarBackendAlwaysAvailable) {
  EXPECT_TRUE(simd_backend_available(SimdBackend::kScalar));
  EXPECT_FALSE(available_backends().empty());
  EXPECT_GE(simd_lane_bits(), 64);
}

// Fault grading: per-backend detection words must match bit for bit, at
// lane width 1 and at the full super-batch width — and lane word 0 of the
// wide batch must equal the narrow batch when they share the first 64
// patterns (the width-grouping invariant the ATPG loop relies on).
TEST(SimdParityTest, FaultGradesIdenticalAcrossBackends) {
  const auto nl = generate_circuit(lib(), test::tiny_profile(31));
  const CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model);
  std::vector<const Fault*> faults;
  for (const Fault& f : fl.faults) {
    if (f.status != FaultStatus::kScanTested) faults.push_back(&f);
  }
  ASSERT_GT(faults.size(), 50u);

  Rng rng(0xC0DE);
  const std::size_t ni = model.input_nets().size();
  std::vector<Word> narrow(ni), wide(ni * static_cast<std::size_t>(kMaxLaneWords));
  for (std::size_t i = 0; i < ni; ++i) {
    for (int j = 0; j < kMaxLaneWords; ++j) {
      wide[i * static_cast<std::size_t>(kMaxLaneWords) + static_cast<std::size_t>(j)] =
          rng.next_u64();
    }
    narrow[i] = wide[i * static_cast<std::size_t>(kMaxLaneWords)];
  }

  std::vector<Word> ref_narrow, ref_wide;
  for (const SimdBackend b : available_backends()) {
    SCOPED_TRACE(simd_backend_name(b));
    ScopedBackend pin(b);
    FaultSimulator fsim(model);
    fsim.load_batch(narrow);
    std::vector<Word> d1(faults.size());
    fsim.grade(faults.data(), faults.size(), d1.data());

    fsim.configure_lanes(kMaxLaneWords);
    fsim.load_batch(wide);
    std::vector<Word> d8(faults.size() * static_cast<std::size_t>(kMaxLaneWords));
    fsim.grade(faults.data(), faults.size(), d8.data());

    for (std::size_t i = 0; i < faults.size(); ++i) {
      ASSERT_EQ(d1[i], d8[i * static_cast<std::size_t>(kMaxLaneWords)])
          << "wide word 0 diverges from narrow batch at fault " << i;
    }
    if (ref_narrow.empty()) {
      ref_narrow = d1;
      ref_wide = d8;
      continue;
    }
    ASSERT_EQ(d1, ref_narrow);
    ASSERT_EQ(d8, ref_wide);
  }
}

// Miter verdicts: both the clean (equivalent, ternary-proof path) and the
// broken (counterexample path) checks must agree exactly across backends.
TEST(SimdParityTest, MiterVerdictsIdenticalAcrossBackends) {
  const auto golden = test::make_shift_register();
  Netlist mutant = *golden;
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  ASSERT_NE(inv, nullptr);
  const NetId t = mutant.find_net("t");
  ASSERT_NE(t, kNoNet);
  mutant.insert_cell_in_net(t, mutant.add_cell(inv, "bug.inv"), 0);

  const MiterResult clean = build_miter(*golden, *golden);
  ASSERT_TRUE(clean.ok()) << clean.error;
  const MiterResult broken = build_miter(*golden, mutant);
  ASSERT_TRUE(broken.ok()) << broken.error;

  bool have_ref = false;
  EquivResult ref_clean, ref_broken;
  for (const SimdBackend b : available_backends()) {
    SCOPED_TRACE(simd_backend_name(b));
    ScopedBackend pin(b);
    const EquivResult rc = EquivChecker(*clean.netlist).check();
    const EquivResult rb = EquivChecker(*broken.netlist).check();
    EXPECT_TRUE(rc.equivalent);
    EXPECT_FALSE(rb.equivalent);
    if (!have_ref) {
      ref_clean = rc;
      ref_broken = rb;
      have_ref = true;
      continue;
    }
    EXPECT_EQ(rc.equivalent, ref_clean.equivalent);
    EXPECT_EQ(rc.proven_x_init, ref_clean.proven_x_init);
    EXPECT_EQ(rc.frames_simulated, ref_clean.frames_simulated);
    EXPECT_EQ(rb.frames_simulated, ref_broken.frames_simulated);
    EXPECT_EQ(rb.cex.source, ref_broken.cex.source);
    EXPECT_EQ(rb.cex.fail_frame, ref_broken.cex.fail_frame);
    EXPECT_EQ(rb.cex.pi_frames, ref_broken.cex.pi_frames);
    EXPECT_EQ(rb.cex.initial_state, ref_broken.cex.initial_state);
  }
}

// Whole-flow digest: the deterministic (non-"rt.") metrics snapshot of a
// full run — ATPG patterns, verify replay, equivalence frames, the sweep's
// own counters — must serialise to the same JSON under every backend.
TEST(SimdParityTest, FlowMetricsJsonIdenticalAcrossBackends) {
  FlowOptions opts;
  opts.tp_percent = 5.0;
  opts.verify = true;

  std::string ref_json;
  int ref_patterns = -1;
  for (const SimdBackend b : available_backends()) {
    SCOPED_TRACE(simd_backend_name(b));
    ScopedBackend pin(b);
    FlowEngine engine(lib(), test::tiny_profile(808), opts);
    const FlowResult& r = engine.run(stage_mask_from(opts));
    ASSERT_TRUE(r.verify.ok()) << r.verify.error;
    const std::string json = r.metrics.to_json(MetricsSnapshot::kNoRuntime);
    if (ref_json.empty()) {
      ref_json = json;
      ref_patterns = r.saf_patterns;
      continue;
    }
    EXPECT_EQ(json, ref_json);
    EXPECT_EQ(r.saf_patterns, ref_patterns);
  }
}

}  // namespace
}  // namespace tpi
