#include "sim/ternary.hpp"

#include "sim/parallel_sim.hpp"

#include <gtest/gtest.h>

namespace tpi {
namespace {

TEST(TernaryTest, NotTable) {
  EXPECT_EQ(tern_not(Tern::k0), Tern::k1);
  EXPECT_EQ(tern_not(Tern::k1), Tern::k0);
  EXPECT_EQ(tern_not(Tern::kX), Tern::kX);
}

TEST(TernaryTest, AndDominatedByZero) {
  EXPECT_EQ(tern_and(Tern::k0, Tern::kX), Tern::k0);
  EXPECT_EQ(tern_and(Tern::kX, Tern::k0), Tern::k0);
  EXPECT_EQ(tern_and(Tern::k1, Tern::k1), Tern::k1);
  EXPECT_EQ(tern_and(Tern::k1, Tern::kX), Tern::kX);
  EXPECT_EQ(tern_and(Tern::kX, Tern::kX), Tern::kX);
}

TEST(TernaryTest, OrDominatedByOne) {
  EXPECT_EQ(tern_or(Tern::k1, Tern::kX), Tern::k1);
  EXPECT_EQ(tern_or(Tern::kX, Tern::k1), Tern::k1);
  EXPECT_EQ(tern_or(Tern::k0, Tern::k0), Tern::k0);
  EXPECT_EQ(tern_or(Tern::k0, Tern::kX), Tern::kX);
}

TEST(TernaryTest, XorUnknownIfAnyUnknown) {
  EXPECT_EQ(tern_xor(Tern::k1, Tern::k0), Tern::k1);
  EXPECT_EQ(tern_xor(Tern::k1, Tern::k1), Tern::k0);
  EXPECT_EQ(tern_xor(Tern::kX, Tern::k0), Tern::kX);
  EXPECT_EQ(tern_xor(Tern::k1, Tern::kX), Tern::kX);
}

TEST(TernaryTest, MuxWithKnownSelect) {
  EXPECT_EQ(tern_mux(Tern::k1, Tern::k0, Tern::k0), Tern::k1);
  EXPECT_EQ(tern_mux(Tern::k1, Tern::k0, Tern::k1), Tern::k0);
  EXPECT_EQ(tern_mux(Tern::kX, Tern::k0, Tern::k1), Tern::k0);
}

TEST(TernaryTest, MuxWithUnknownSelect) {
  // Output known only if both data inputs agree.
  EXPECT_EQ(tern_mux(Tern::k1, Tern::k1, Tern::kX), Tern::k1);
  EXPECT_EQ(tern_mux(Tern::k0, Tern::k0, Tern::kX), Tern::k0);
  EXPECT_EQ(tern_mux(Tern::k1, Tern::k0, Tern::kX), Tern::kX);
  EXPECT_EQ(tern_mux(Tern::kX, Tern::kX, Tern::kX), Tern::kX);
}

TEST(TernaryTest, NodeEvalConsistentWithWordSim) {
  // For every 2-input function and every definite input pair, ternary and
  // word evaluation must agree.
  for (const CellFunc func : {CellFunc::kAnd, CellFunc::kNand, CellFunc::kOr, CellFunc::kNor,
                              CellFunc::kXor, CellFunc::kXnor}) {
    CombNode node;
    node.func = func;
    node.num_inputs = 2;
    node.in[0] = 0;
    node.in[1] = 1;
    node.out = 2;
    for (int a = 0; a <= 1; ++a) {
      for (int b = 0; b <= 1; ++b) {
        const Tern tin[2] = {a ? Tern::k1 : Tern::k0, b ? Tern::k1 : Tern::k0};
        const Word win[2] = {a ? ~Word{0} : 0, b ? ~Word{0} : 0};
        const Tern tr = eval_node_tern(node, tin, Tern::kX);
        const Word wr = eval_node_word(node, win, 0);
        const bool tr_bit = tr == Tern::k1;
        const bool wr_bit = (wr & 1) != 0;
        EXPECT_EQ(tr_bit, wr_bit)
            << static_cast<int>(func) << " a=" << a << " b=" << b;
        EXPECT_NE(tr, Tern::kX);
      }
    }
  }
}

TEST(TernaryTest, PartialInputsMayResolve) {
  CombNode node;
  node.func = CellFunc::kNand;
  node.num_inputs = 2;
  node.out = 2;
  const Tern one_zero[2] = {Tern::k0, Tern::kX};
  EXPECT_EQ(eval_node_tern(node, one_zero, Tern::kX), Tern::k1);  // controlling 0
  const Tern one_x[2] = {Tern::k1, Tern::kX};
  EXPECT_EQ(eval_node_tern(node, one_x, Tern::kX), Tern::kX);
}

}  // namespace
}  // namespace tpi
