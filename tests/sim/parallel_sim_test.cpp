#include "sim/parallel_sim.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"

namespace tpi {
namespace {

using test::lib;

// Truth-table check for every 2-input gate function via a one-gate netlist.
struct GateCase {
  CellFunc func;
  int inputs;
  // expected output bit for each input assignment (index = packed inputs)
  unsigned truth;  // up to 16 rows for 4 inputs
  const char* name;
};

class GateTruthTest : public ::testing::TestWithParam<GateCase> {};

TEST_P(GateTruthTest, MatchesTruthTable) {
  const GateCase gc = GetParam();
  Netlist nl(&lib(), "gate");
  const CellSpec* spec = lib().gate(gc.func, gc.inputs);
  ASSERT_NE(spec, nullptr);
  std::vector<NetId> ins;
  for (int i = 0; i < gc.inputs; ++i) {
    ins.push_back(nl.pi_net(nl.add_primary_input("i" + std::to_string(i))));
  }
  const CellId g = nl.add_cell(spec, "g");
  static const char* kNames[] = {"A", "B", "C", "D"};
  for (int i = 0; i < gc.inputs; ++i) nl.connect(g, spec->find_pin(kNames[i]), ins[i]);
  const NetId out = nl.add_net("out");
  nl.connect(g, spec->output_pin, out);
  nl.add_primary_output("po", out);

  CombModel model(nl, SeqView::kCapture);
  ParallelSim sim(model);
  // Pack all input assignments into one 64-bit word batch.
  const int rows = 1 << gc.inputs;
  std::vector<Word> words(static_cast<std::size_t>(gc.inputs), 0);
  for (int row = 0; row < rows; ++row) {
    for (int i = 0; i < gc.inputs; ++i) {
      if (row & (1 << i)) words[static_cast<std::size_t>(i)] |= Word{1} << row;
    }
  }
  sim.load_inputs(words);
  sim.run();
  const Word result = sim.value(out);
  for (int row = 0; row < rows; ++row) {
    const unsigned expect = (gc.truth >> row) & 1u;
    EXPECT_EQ((result >> row) & 1u, expect) << gc.name << " row " << row;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllGates, GateTruthTest,
    ::testing::Values(
        GateCase{CellFunc::kBuf, 1, 0b10, "BUF"},
        GateCase{CellFunc::kInv, 1, 0b01, "INV"},
        GateCase{CellFunc::kAnd, 2, 0b1000, "AND2"},
        GateCase{CellFunc::kNand, 2, 0b0111, "NAND2"},
        GateCase{CellFunc::kOr, 2, 0b1110, "OR2"},
        GateCase{CellFunc::kNor, 2, 0b0001, "NOR2"},
        GateCase{CellFunc::kXor, 2, 0b0110, "XOR2"},
        GateCase{CellFunc::kXnor, 2, 0b1001, "XNOR2"},
        GateCase{CellFunc::kAnd, 3, 0b10000000, "AND3"},
        GateCase{CellFunc::kNand, 3, 0b01111111, "NAND3"},
        GateCase{CellFunc::kOr, 3, 0b11111110, "OR3"},
        GateCase{CellFunc::kNor, 3, 0b00000001, "NOR3"},
        GateCase{CellFunc::kNand, 4, 0b0111111111111111, "NAND4"},
        GateCase{CellFunc::kNor, 4, 0b0000000000000001, "NOR4"}),
    [](const ::testing::TestParamInfo<GateCase>& info) { return info.param.name; });

TEST(ParallelSimTest, Mux2SelectsCorrectInput) {
  Netlist nl(&lib(), "mux");
  const CellSpec* mux = lib().gate(CellFunc::kMux2, 2);
  const NetId a = nl.pi_net(nl.add_primary_input("a"));
  const NetId b = nl.pi_net(nl.add_primary_input("b"));
  const NetId s = nl.pi_net(nl.add_primary_input("s"));
  const CellId g = nl.add_cell(mux, "g");
  nl.connect(g, mux->find_pin("A"), a);
  nl.connect(g, mux->find_pin("B"), b);
  nl.connect(g, mux->find_pin("S"), s);
  const NetId out = nl.add_net("out");
  nl.connect(g, mux->output_pin, out);
  nl.add_primary_output("po", out);

  CombModel model(nl, SeqView::kCapture);
  ParallelSim sim(model);
  // a=0101..., b=0011..., s=0000 1111 pattern over 8 rows.
  sim.load_inputs({0b10101010, 0b11001100, 0b11110000});
  sim.run();
  // s=0 rows take a; s=1 rows take b.
  EXPECT_EQ(sim.value(out) & 0xFFu, (0b10101010u & 0x0F) | (0b11001100u & 0xF0));
}

TEST(ParallelSimTest, ConstantNetsHoldValues) {
  Netlist nl(&lib(), "tie");
  const CellId t0 = nl.add_cell(lib().by_name("TIE0"), "t0");
  const CellId t1 = nl.add_cell(lib().by_name("TIE1"), "t1");
  const NetId n0 = nl.add_net("n0");
  const NetId n1 = nl.add_net("n1");
  nl.connect(t0, 0, n0);
  nl.connect(t1, 0, n1);
  const CellSpec* and2 = lib().gate(CellFunc::kAnd, 2);
  const CellId g = nl.add_cell(and2, "g");
  nl.connect(g, 0, n0);
  nl.connect(g, 1, n1);
  const NetId out = nl.add_net("out");
  nl.connect(g, and2->output_pin, out);
  nl.add_primary_output("po", out);

  CombModel model(nl, SeqView::kCapture);
  ParallelSim sim(model);
  sim.run();
  EXPECT_EQ(sim.value(n0), Word{0});
  EXPECT_EQ(sim.value(n1), ~Word{0});
  EXPECT_EQ(sim.value(out), Word{0});
}

TEST(ParallelSimTest, SmallCombEndToEnd) {
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  ParallelSim sim(model);
  // Exhaustive 8 rows: a=bit0, b=bit1, c=bit2 of the row index.
  std::vector<Word> words(3, 0);
  for (int row = 0; row < 8; ++row) {
    for (int i = 0; i < 3; ++i) {
      if (row & (1 << i)) words[static_cast<std::size_t>(i)] |= Word{1} << row;
    }
  }
  sim.load_inputs(words);
  sim.run();
  std::vector<Word> obs;
  sim.read_observes(obs);
  ASSERT_EQ(obs.size(), 2u);
  for (int row = 0; row < 8; ++row) {
    const int a = row & 1, b = (row >> 1) & 1, c = (row >> 2) & 1;
    const int y = !(a | b);
    const int z = c & y;
    const int w = a ^ z;
    EXPECT_EQ((obs[0] >> row) & 1, static_cast<unsigned>(z)) << "row " << row;
    EXPECT_EQ((obs[1] >> row) & 1, static_cast<unsigned>(w)) << "row " << row;
  }
}

TEST(ParallelSimTest, CombModelInputAndObserveSets) {
  auto nl = test::make_shift_register();
  CombModel model(*nl, SeqView::kCapture);
  // Inputs: PI d (clock excluded) + 2 FF outputs.
  EXPECT_EQ(model.num_pi_inputs(), 1u);
  EXPECT_EQ(model.input_nets().size(), 3u);
  // Observes: PO + 2 FF D nets.
  EXPECT_EQ(model.num_po_observes(), 1u);
  EXPECT_EQ(model.observe_nets().size(), 3u);
  EXPECT_EQ(model.boundary_ffs().size(), 2u);
}

TEST(ParallelSimTest, AssignValuesAdoptsFullState) {
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  ParallelSim src(model);
  std::vector<Word> words{0xDEAD, 0xBEEF, 0xF00D};
  src.load_inputs(words);
  src.run();

  ParallelSim dst(model);
  dst.assign_values(src.values());
  EXPECT_EQ(dst.values(), src.values());
  std::vector<Word> src_obs, dst_obs;
  src.read_observes(src_obs);
  dst.read_observes(dst_obs);
  EXPECT_EQ(dst_obs, src_obs);
}

}  // namespace
}  // namespace tpi
