// Exhaustive equivalence of the two-plane ternary encodings against the
// scalar reference: every op eval_node_tern models, every input count,
// every {0,1,X} input (and MUX select) combination, for both EncVC and
// EncZO — regardless of which one the build selected as TernEncoding.
#include "sim/ternary_planes.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/ternary.hpp"

namespace tpi {
namespace {

constexpr Tern kTerns[3] = {Tern::k0, Tern::k1, Tern::kX};

struct OpCase {
  CellFunc func;
  int min_inputs;
  int max_inputs;
  bool has_sel;
};

const std::vector<OpCase>& op_cases() {
  static const std::vector<OpCase> cases = {
      {CellFunc::kBuf, 1, 1, false},  {CellFunc::kClkBuf, 1, 1, false},
      {CellFunc::kTsff, 1, 1, false}, {CellFunc::kInv, 1, 1, false},
      {CellFunc::kAnd, 2, 4, false},  {CellFunc::kNand, 2, 4, false},
      {CellFunc::kOr, 2, 4, false},   {CellFunc::kNor, 2, 4, false},
      {CellFunc::kXor, 2, 4, false},  {CellFunc::kXnor, 2, 4, false},
      {CellFunc::kMux2, 2, 2, true},
  };
  return cases;
}

/// Overwrite one lane of a plane pair with a scalar Tern.
template <typename Enc>
void set_lane(Word& p, Word& q, int lane, Tern t) {
  Word tp = 0, tq = 0;
  encode_tern<Enc>(t, tp, tq);
  const Word bit = Word{1} << lane;
  p = (p & ~bit) | (tp & bit);
  q = (q & ~bit) | (tq & bit);
}

template <typename Enc>
void check_encoding() {
  SCOPED_TRACE(Enc::kName);
  for (const OpCase& c : op_cases()) {
    for (int n = c.min_inputs; n <= c.max_inputs; ++n) {
      const int slots = n + (c.has_sel ? 1 : 0);
      int combos = 1;
      for (int i = 0; i < slots; ++i) combos *= 3;
      // Lane k of one wide evaluation carries combination (k % combos):
      // the same sweep checks every combination in every lane position.
      Word inp[4] = {0, 0, 0, 0}, inq[4] = {0, 0, 0, 0};
      Word sp = 0, sq = 0;
      for (int lane = 0; lane < kWordBits; ++lane) {
        int idx = lane % combos;
        for (int i = 0; i < n; ++i) {
          set_lane<Enc>(inp[i], inq[i], lane, kTerns[idx % 3]);
          idx /= 3;
        }
        set_lane<Enc>(sp, sq, lane, c.has_sel ? kTerns[idx % 3] : Tern::kX);
      }
      Word p = 0, q = 0;
      eval_node_planes<Enc>(c.func, n, inp, inq, sp, sq, p, q);
      // No lane may claim both definite values, whatever the encoding.
      EXPECT_EQ(Enc::ones(p, q) & Enc::zeros(p, q), Word{0});
      for (int lane = 0; lane < kWordBits; ++lane) {
        int idx = lane % combos;
        CombNode node;
        node.func = c.func;
        node.num_inputs = n;
        Tern in[4] = {Tern::kX, Tern::kX, Tern::kX, Tern::kX};
        for (int i = 0; i < n; ++i) {
          in[i] = kTerns[idx % 3];
          idx /= 3;
        }
        const Tern sel = c.has_sel ? kTerns[idx % 3] : Tern::kX;
        const Tern expected = eval_node_tern(node, in, sel);
        EXPECT_EQ(decode_tern<Enc>(p, q, lane), expected)
            << "func=" << static_cast<int>(c.func) << " n=" << n << " lane=" << lane;
      }
    }
  }
}

TEST(TernaryPlanesTest, ValueCareMatchesScalarReferenceExhaustively) {
  check_encoding<EncVC>();
}

TEST(TernaryPlanesTest, ZeroOneMatchesScalarReferenceExhaustively) {
  check_encoding<EncZO>();
}

TEST(TernaryPlanesTest, ValueCarePreservesCanonicalInvariant) {
  // EncVC requires p & ~q == 0 (an X lane holds a canonical 0 value bit);
  // every op must preserve it or lane comparisons become encoding-noise.
  for (const OpCase& c : op_cases()) {
    for (int n = c.min_inputs; n <= c.max_inputs; ++n) {
      Word inp[4], inq[4], sp = 0, sq = 0;
      for (int i = 0; i < 4; ++i) encode_tern<EncVC>(Tern::kX, inp[i], inq[i]);
      for (int lane = 0; lane < kWordBits; ++lane) {
        for (int i = 0; i < n; ++i) set_lane<EncVC>(inp[i], inq[i], lane, kTerns[(lane + i) % 3]);
        set_lane<EncVC>(sp, sq, lane, kTerns[lane % 3]);
      }
      Word p = 0, q = 0;
      eval_node_planes<EncVC>(c.func, n, inp, inq, sp, sq, p, q);
      EXPECT_EQ(p & ~q, Word{0}) << "func=" << static_cast<int>(c.func) << " n=" << n;
    }
  }
}

TEST(TernaryPlanesTest, EncodeDecodeRoundTrips) {
  for (const Tern t : kTerns) {
    Word p = 0, q = 0;
    encode_tern<EncVC>(t, p, q);
    for (const int lane : {0, 17, 63}) EXPECT_EQ((decode_tern<EncVC>(p, q, lane)), t);
    encode_tern<EncZO>(t, p, q);
    for (const int lane : {0, 17, 63}) EXPECT_EQ((decode_tern<EncZO>(p, q, lane)), t);
  }
  // from_bits: all lanes known, value straight from the bit.
  const Word bits = 0xDEADBEEFCAFEF00DULL;
  Word p = 0, q = 0;
  EncVC::from_bits(bits, p, q);
  EXPECT_EQ(EncVC::ones(p, q), bits);
  EXPECT_EQ(EncVC::zeros(p, q), ~bits);
  EncZO::from_bits(bits, p, q);
  EXPECT_EQ(EncZO::ones(p, q), bits);
  EXPECT_EQ(EncZO::zeros(p, q), ~bits);
}

}  // namespace
}  // namespace tpi
