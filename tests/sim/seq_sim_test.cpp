#include "sim/seq_sim.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(SeqSimTest, ShiftRegisterShiftsData) {
  auto nl = test::make_shift_register();
  SequentialSim sim(*nl);
  EXPECT_EQ(sim.num_state_bits(), 2u);

  // Drive d = 1 for one cycle, then 0. PO = q0 ^ q1 tracks the shift.
  std::vector<Word> po;
  sim.step({~Word{0}}, po);  // after: q0=1, q1=0
  EXPECT_EQ(sim.state()[0], ~Word{0});
  EXPECT_EQ(sim.state()[1], Word{0});
  sim.step({Word{0}}, po);  // after: q0=0, q1=1; during cycle q0=1,q1=0 -> po=1
  EXPECT_EQ(po[0], ~Word{0});
  EXPECT_EQ(sim.state()[0], Word{0});
  EXPECT_EQ(sim.state()[1], ~Word{0});
  sim.step({Word{0}}, po);  // during: q0=0,q1=1 -> po=1; after: 0,0
  EXPECT_EQ(po[0], ~Word{0});
  sim.step({Word{0}}, po);  // during: 0,0 -> po=0
  EXPECT_EQ(po[0], Word{0});
}

TEST(SeqSimTest, ResetClearsState) {
  auto nl = test::make_shift_register();
  SequentialSim sim(*nl);
  std::vector<Word> po;
  sim.step({~Word{0}}, po);
  EXPECT_NE(sim.state()[0], Word{0});
  sim.reset();
  EXPECT_EQ(sim.state()[0], Word{0});
  EXPECT_EQ(sim.state()[1], Word{0});
}

TEST(SeqSimTest, SixtyFourParallelInstances) {
  // Bit k of the input word drives instance k; instances stay independent.
  auto nl = test::make_shift_register();
  SequentialSim sim(*nl);
  std::vector<Word> po;
  const Word pattern = 0xDEADBEEFCAFEBABEULL;
  sim.step({pattern}, po);
  EXPECT_EQ(sim.state()[0], pattern);
  sim.step({0}, po);
  EXPECT_EQ(sim.state()[1], pattern);
  EXPECT_EQ(po[0], pattern);  // q0^q1 = 0^pattern during the second cycle
}

TEST(SeqSimTest, TsffIsTransparentInApplicationMode) {
  // Replace the first FF with a TSFF: functionally the pipeline loses one
  // stage because the TSFF passes D through combinationally (Fig. 1).
  auto nl = test::make_shift_register();
  const CellId f0 = nl->find_cell("f0");
  nl->replace_spec(f0, lib().by_name("TSFF_X1"));
  // Tie the test controls low (application mode).
  const CellId tie0 = nl->add_cell(lib().by_name("TIE0"), "tie");
  const NetId zero = nl->add_net("zero");
  nl->connect(tie0, 0, zero);
  const CellSpec* tsff = nl->cell(f0).spec;
  nl->connect(f0, tsff->te_pin, zero);
  nl->connect(f0, tsff->tr_pin, zero);

  SequentialSim sim(*nl);
  EXPECT_EQ(sim.num_state_bits(), 1u);  // only f1 is a state boundary now
  std::vector<Word> po;
  sim.step({~Word{0}}, po);
  // d passes through the TSFF combinationally: f1 captures 1 immediately.
  EXPECT_EQ(sim.state()[0], ~Word{0});
}

TEST(SeqSimTest, StepLaunchCaptureMatchesTwoHeldPiSteps) {
  // The launch-on-capture primitive is exactly two step() calls with the
  // PIs held — same capture PO word, same resulting state, and the
  // optional launch observation equals the first cycle's PO.
  auto a = generate_circuit(lib(), test::tiny_profile(77));
  auto b = generate_circuit(lib(), test::tiny_profile(77));
  SequentialSim loc(*a), manual(*b);
  std::vector<Word> pis(loc.model().num_pi_inputs(), 0x00FF00FF00FF00FFULL);

  std::vector<Word> po_launch, po_capture;
  loc.step_launch_capture(pis, po_capture, &po_launch);

  std::vector<Word> ref_launch, ref_capture;
  manual.step(pis, ref_launch);
  manual.step(pis, ref_capture);

  EXPECT_EQ(po_launch, ref_launch);
  EXPECT_EQ(po_capture, ref_capture);
  EXPECT_EQ(loc.state(), manual.state());

  // The two-argument form skips the launch observation but steps the same.
  SequentialSim c(*a);
  std::vector<Word> po_only;
  c.step_launch_capture(pis, po_only);
  EXPECT_EQ(po_only, ref_capture);
  EXPECT_EQ(c.state(), manual.state());
}

TEST(SeqSimTest, GeneratedCircuitRunsAndSettles) {
  auto nl = generate_circuit(lib(), test::tiny_profile());
  SequentialSim sim(*nl);
  std::vector<Word> pis(sim.model().num_pi_inputs(), 0x5555555555555555ULL);
  std::vector<Word> po;
  for (int cycle = 0; cycle < 8; ++cycle) sim.step(pis, po);
  EXPECT_EQ(po.size(), sim.model().num_po_observes());
}

}  // namespace
}  // namespace tpi
