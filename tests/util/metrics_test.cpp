// MetricsRegistry tests: counter/gauge/histogram semantics, snapshot
// ordering, merge rules, the deterministic-vs-runtime ("rt.") split in the
// JSON serialisation, and thread-local registry scoping.
#include <gtest/gtest.h>

#include <string>
#include <thread>

#include "util/json_check.hpp"
#include "util/metrics.hpp"

namespace tpi {
namespace {

TEST(MetricsTest, HistogramBucketsArePowersOfTwo) {
  EXPECT_EQ(histogram_bucket(0.0), 0);
  EXPECT_EQ(histogram_bucket(0.5), 0);
  EXPECT_EQ(histogram_bucket(1.0), 1);
  EXPECT_EQ(histogram_bucket(1.9), 1);
  EXPECT_EQ(histogram_bucket(2.0), 2);
  EXPECT_EQ(histogram_bucket(1024.0), 11);
  EXPECT_EQ(histogram_bucket(1.0e300), kHistogramBuckets - 1);
  EXPECT_EQ(histogram_bucket(-3.0), 0);  // negatives clamp to the first bucket
}

TEST(MetricsTest, CountersAccumulate) {
  MetricsRegistry reg;
  reg.add("a.count");
  reg.add("a.count", 41);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricValue* v = snap.find("a.count");
  ASSERT_NE(v, nullptr);
  EXPECT_EQ(v->kind, MetricKind::kCounter);
  EXPECT_EQ(v->count, 42u);
}

TEST(MetricsTest, GaugesSetAndSetMax) {
  MetricsRegistry reg;
  reg.set("g.last", 3.0);
  reg.set("g.last", 1.0);
  reg.set_max("g.peak", 5.0);
  reg.set_max("g.peak", 2.0);
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.find("g.last")->value, 1.0);
  EXPECT_DOUBLE_EQ(snap.find("g.peak")->value, 5.0);
}

TEST(MetricsTest, HistogramObserveAndBulkRecordAgree) {
  MetricsRegistry reg;
  reg.observe("h.direct", 1.0);
  reg.observe("h.direct", 100.0);
  HistogramData local;
  local.observe(1.0);
  local.observe(100.0);
  reg.record_histogram("h.bulk", local);
  const MetricsSnapshot snap = reg.snapshot();
  const MetricValue* a = snap.find("h.direct");
  const MetricValue* b = snap.find("h.bulk");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->hist.count, 2u);
  EXPECT_EQ(b->hist.count, 2u);
  EXPECT_DOUBLE_EQ(a->hist.sum, b->hist.sum);
  EXPECT_DOUBLE_EQ(a->hist.min, 1.0);
  EXPECT_DOUBLE_EQ(a->hist.max, 100.0);
  EXPECT_EQ(a->hist.buckets, b->hist.buckets);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  MetricsRegistry reg;
  reg.add("zebra");
  reg.add("alpha");
  reg.add("mid");
  const MetricsSnapshot snap = reg.snapshot();
  ASSERT_EQ(snap.metrics.size(), 3u);
  EXPECT_EQ(snap.metrics[0].name, "alpha");
  EXPECT_EQ(snap.metrics[1].name, "mid");
  EXPECT_EQ(snap.metrics[2].name, "zebra");
}

TEST(MetricsTest, KindMismatchIsDroppedNotCrashed) {
  MetricsRegistry reg;
  reg.add("x");
  reg.set("x", 7.0);  // wrong kind: warned and dropped
  const MetricsSnapshot snap = reg.snapshot();
  EXPECT_EQ(snap.find("x")->kind, MetricKind::kCounter);
  EXPECT_EQ(snap.find("x")->count, 1u);
}

TEST(MetricsTest, MergeAddsCountersMaxesGaugesFoldsHistograms) {
  MetricsRegistry a, b;
  a.add("c", 2);
  b.add("c", 3);
  a.set_max("g", 1.0);
  b.set_max("g", 9.0);
  a.observe("h", 4.0);
  b.observe("h", 8.0);
  b.add("only_b");
  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.find("c")->count, 5u);
  EXPECT_DOUBLE_EQ(merged.find("g")->value, 9.0);
  EXPECT_EQ(merged.find("h")->hist.count, 2u);
  EXPECT_DOUBLE_EQ(merged.find("h")->hist.max, 8.0);
  ASSERT_NE(merged.find("only_b"), nullptr);
  EXPECT_EQ(merged.find("only_b")->count, 1u);
  // Merged snapshots stay sorted, so serialisation order is deterministic.
  for (std::size_t i = 1; i < merged.metrics.size(); ++i) {
    EXPECT_LT(merged.metrics[i - 1].name, merged.metrics[i].name);
  }
}

TEST(MetricsTest, MergeIsOrderInsensitiveForJson) {
  MetricsRegistry a, b;
  a.add("m.one", 1);
  a.observe("m.h", 2.0);
  b.add("m.one", 4);
  b.add("m.two");
  b.observe("m.h", 16.0);
  MetricsSnapshot ab = a.snapshot();
  ab.merge(b.snapshot());
  MetricsSnapshot ba = b.snapshot();
  ba.merge(a.snapshot());
  EXPECT_EQ(ab.to_json(), ba.to_json());
}

TEST(MetricsTest, RuntimeMetricsExcludedFromDeterministicJson) {
  EXPECT_TRUE(is_runtime_metric("rt.threadpool.run_ms"));
  EXPECT_FALSE(is_runtime_metric("atpg.podem.calls"));
  EXPECT_FALSE(is_runtime_metric("sort.rt.x"));  // prefix only

  MetricsRegistry reg;
  reg.add("det.counter", 7);
  reg.observe("rt.wait_us", 12.5);
  const MetricsSnapshot snap = reg.snapshot();
  const std::string all = snap.to_json(MetricsSnapshot::kWithRuntime);
  const std::string det = snap.to_json(MetricsSnapshot::kNoRuntime);
  EXPECT_NE(all.find("rt.wait_us"), std::string::npos);
  EXPECT_EQ(det.find("rt.wait_us"), std::string::npos);
  EXPECT_NE(det.find("det.counter"), std::string::npos);
  std::string error;
  EXPECT_TRUE(json_well_formed(all, &error)) << error;
  EXPECT_TRUE(json_well_formed(det, &error)) << error;
}

TEST(MetricsTest, ScopedRegistryRedirectsCurrentThreadOnly) {
  MetricsRegistry scoped;
  {
    ScopedMetricsRegistry scope(scoped);
    EXPECT_EQ(&metrics(), &scoped);
    metrics().add("scoped.hit");
    // A fresh thread does not inherit the scope: it records globally.
    std::thread other([] { EXPECT_EQ(&metrics(), &MetricsRegistry::global()); });
    other.join();
    {
      MetricsRegistry inner;
      ScopedMetricsRegistry nested(inner);
      EXPECT_EQ(&metrics(), &inner);
    }
    EXPECT_EQ(&metrics(), &scoped);
  }
  EXPECT_EQ(&metrics(), &MetricsRegistry::global());
  EXPECT_EQ(scoped.snapshot().find("scoped.hit")->count, 1u);
}

TEST(MetricsTest, HistogramMeanAndQuantileEdgeCases) {
  HistogramData h;
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);  // empty: no data, no NaN
  h.observe(10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0);
  // A single sample is every quantile, thanks to the [min, max] clamp.
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 10.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.99), 10.0);
  h.observe(30.0);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 10.0);  // q<=0 -> min
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 30.0);  // q>=1 -> max
}

TEST(MetricsTest, QuantilesAreMonotonicAndBucketBounded) {
  HistogramData h;
  for (int i = 1; i <= 100; ++i) h.observe(static_cast<double>(i));
  const double p50 = h.quantile(0.50);
  const double p95 = h.quantile(0.95);
  const double p99 = h.quantile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // 50 (pow2 bucket [32,64)) and 95/99 (bucket [64,128), clamped to max).
  EXPECT_GE(p50, 32.0);
  EXPECT_LT(p50, 64.0);
  EXPECT_GE(p95, 64.0);
  EXPECT_LE(p99, 100.0);  // clamped to the observed max, not the bucket edge
}

TEST(MetricsTest, QuantilesAreOrderInsensitive) {
  // Pure function of the bucket counts: the estimate cannot depend on
  // observation order, which is what keeps merged sweep metrics
  // bit-identical across worker counts.
  HistogramData fwd, rev;
  for (int i = 0; i < 64; ++i) fwd.observe(static_cast<double>(i * 3 + 1));
  for (int i = 63; i >= 0; --i) rev.observe(static_cast<double>(i * 3 + 1));
  for (const double q : {0.5, 0.9, 0.95, 0.99}) {
    EXPECT_DOUBLE_EQ(fwd.quantile(q), rev.quantile(q));
  }
  EXPECT_DOUBLE_EQ(fwd.mean(), rev.mean());
}

TEST(MetricsTest, HistogramJsonCarriesSummaryFields) {
  MetricsRegistry reg;
  reg.observe("h.lat", 2.0);
  reg.observe("h.lat", 50.0);
  const std::string json = reg.snapshot().to_json();
  std::string error;
  EXPECT_TRUE(json_well_formed(json, &error)) << error;
  for (const char* field : {"\"mean\":", "\"p50\":", "\"p95\":", "\"p99\":"}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }
}

TEST(MetricsTest, PrometheusNameMapping) {
  EXPECT_EQ(prometheus_metric_name("atpg.sim.faults_graded"),
            "tpi_atpg_sim_faults_graded");
  EXPECT_EQ(prometheus_metric_name("server.stage_ms.tpi+scan"),
            "tpi_server_stage_ms_tpi_scan");
  EXPECT_EQ(prometheus_metric_name("rt.wait"), "tpi_rt_wait");
}

TEST(MetricsTest, PrometheusExpositionTypesEveryMetric) {
  MetricsRegistry reg;
  reg.add("jobs.done", 3);
  reg.set("cache.bytes", 4096.0);
  reg.observe("queue.wait_ns", 100.0);
  reg.observe("queue.wait_ns", 900.0);
  const std::string text = reg.snapshot().to_prometheus();
  EXPECT_NE(text.find("# TYPE tpi_jobs_done counter\n"), std::string::npos);
  EXPECT_NE(text.find("tpi_jobs_done 3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tpi_cache_bytes gauge\n"), std::string::npos);
  EXPECT_NE(text.find("tpi_cache_bytes 4096\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE tpi_queue_wait_ns summary\n"), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns{quantile=\"0.5\"} "), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns{quantile=\"0.95\"} "), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns{quantile=\"0.99\"} "), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns_sum 1000\n"), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns_min 100\n"), std::string::npos);
  EXPECT_NE(text.find("tpi_queue_wait_ns_max 900\n"), std::string::npos);
  // Every line is either a # comment or "name value" / "name{...} value".
  std::size_t start = 0;
  while (start < text.size()) {
    std::size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    const std::string line = text.substr(start, end - start);
    ASSERT_FALSE(line.empty());
    if (line[0] != '#') {
      EXPECT_EQ(line.compare(0, 4, "tpi_"), 0) << line;
      EXPECT_NE(line.find(' '), std::string::npos) << line;
    }
    start = end + 1;
  }
}

TEST(MetricsTest, PeakRssIsPositiveOnSupportedPlatforms) {
#if defined(__linux__) || defined(__APPLE__)
  EXPECT_GT(peak_rss_kb(), 0.0);
#else
  EXPECT_GE(peak_rss_kb(), 0.0);
#endif
}

TEST(MetricsTest, ClearEmptiesTheRegistry) {
  MetricsRegistry reg;
  reg.add("gone");
  reg.clear();
  EXPECT_TRUE(reg.snapshot().empty());
}

}  // namespace
}  // namespace tpi
