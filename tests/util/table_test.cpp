#include "util/table.hpp"

#include <gtest/gtest.h>

namespace tpi {
namespace {

TEST(TextTableTest, AlignsColumnsRight) {
  TextTable t({"a", "bb"});
  t.add_row({"100", "2"});
  const std::string s = t.to_string();
  // Header, dashes, one row.
  EXPECT_NE(s.find("  a  bb"), std::string::npos);
  EXPECT_NE(s.find("100   2"), std::string::npos);
}

TEST(TextTableTest, SeparatorRendersBlankLine) {
  TextTable t({"x"});
  t.add_row({"1"});
  t.add_separator();
  t.add_row({"2"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("1\n\n2"), std::string::npos);
}

TEST(TextTableTest, CountsOnlyRows) {
  TextTable t({"x"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.add_row({"1"});
  t.add_separator();
  EXPECT_EQ(t.num_rows(), 2u);
}

TEST(FormatTest, IntWithThousandsSeparators) {
  EXPECT_EQ(fmt_int(0), "0");
  EXPECT_EQ(fmt_int(999), "999");
  EXPECT_EQ(fmt_int(1000), "1,000");
  EXPECT_EQ(fmt_int(1234567), "1,234,567");
  EXPECT_EQ(fmt_int(-1234567), "-1,234,567");
}

TEST(FormatTest, FixedDecimals) {
  EXPECT_EQ(fmt_fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_fixed(-0.5, 1), "-0.5");
  EXPECT_EQ(fmt_fixed(2.0, 0), "2");
}

}  // namespace
}  // namespace tpi
