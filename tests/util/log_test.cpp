// Log level parsing and TPI_LOG_LEVEL environment handling.
#include <gtest/gtest.h>

#include <cstdlib>

#include "util/log.hpp"

namespace tpi {
namespace {

class LogLevelTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_ = log_level(); }
  void TearDown() override {
    unsetenv("TPI_LOG_LEVEL");
    set_log_level(saved_);
  }
  LogLevel saved_ = LogLevel::kWarn;
};

TEST_F(LogLevelTest, ParsesAllNames) {
  EXPECT_EQ(parse_log_level("debug"), LogLevel::kDebug);
  EXPECT_EQ(parse_log_level("info"), LogLevel::kInfo);
  EXPECT_EQ(parse_log_level("warn"), LogLevel::kWarn);
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("silent"), LogLevel::kSilent);
  EXPECT_EQ(parse_log_level("verbose"), std::nullopt);
  EXPECT_EQ(parse_log_level(""), std::nullopt);
}

TEST_F(LogLevelTest, EnvOverridesFallback) {
  setenv("TPI_LOG_LEVEL", "error", 1);
  EXPECT_EQ(set_log_level_from_env(LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(log_level(), LogLevel::kError);
}

TEST_F(LogLevelTest, UnsetEnvUsesFallback) {
  unsetenv("TPI_LOG_LEVEL");
  EXPECT_EQ(set_log_level_from_env(LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(log_level(), LogLevel::kInfo);
}

TEST_F(LogLevelTest, InvalidEnvFallsBackWithWarning) {
  setenv("TPI_LOG_LEVEL", "loudest", 1);
  EXPECT_EQ(set_log_level_from_env(LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(log_level(), LogLevel::kWarn);
}

}  // namespace
}  // namespace tpi
