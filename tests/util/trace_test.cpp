// Span tracer tests: nesting/ordering of RAII spans, concurrent emission
// from thread-pool workers (the smoke label runs this binary under TSan),
// the disabled fast path staying allocation-free, and Chrome trace-event
// JSON well-formedness.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <future>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include "util/json_check.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

// Global operator new instrumentation for the zero-allocation check. The
// counter is process-wide, so the test only asserts on the delta across a
// single-threaded disabled-span loop.
namespace {
std::atomic<std::uint64_t> g_allocations{0};
}  // namespace

void* operator new(std::size_t size) {
  g_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }

namespace tpi {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_trace_enabled(false);
    trace_reset();
  }
  void TearDown() override {
    set_trace_enabled(false);
    trace_reset();
  }
};

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  {
    TPI_SPAN("disabled.outer");
    TPI_SPAN("disabled.inner");
  }
  EXPECT_EQ(trace_event_count(), 0u);
  EXPECT_EQ(trace_to_json().find("disabled.outer"), std::string::npos);
}

TEST_F(TraceTest, DisabledSpansDoNotAllocate) {
  set_trace_enabled(false);
  const std::uint64_t before = g_allocations.load(std::memory_order_relaxed);
  for (int i = 0; i < 10000; ++i) {
    TPI_SPAN("disabled.hot");
  }
  const std::uint64_t after = g_allocations.load(std::memory_order_relaxed);
  EXPECT_EQ(after, before);
}

TEST_F(TraceTest, NestedSpansAreContainedAndChildRecordedFirst) {
  set_trace_enabled(true);
  {
    TPI_SPAN("outer");
    {
      TPI_SPAN("inner");
    }
  }
  set_trace_enabled(false);
  ASSERT_EQ(trace_event_count(), 2u);
  const std::string json = trace_to_json();
  // Destruction order: the inner span completes (and is appended) first.
  const std::size_t inner_pos = json.find("\"inner\"");
  const std::size_t outer_pos = json.find("\"outer\"");
  ASSERT_NE(inner_pos, std::string::npos);
  ASSERT_NE(outer_pos, std::string::npos);
  EXPECT_LT(inner_pos, outer_pos);
}

TEST_F(TraceTest, InstantMarkersRecordWhenEnabled) {
  trace_instant("marker.off");  // disabled: dropped
  set_trace_enabled(true);
  trace_instant("marker.on");
  set_trace_enabled(false);
  EXPECT_EQ(trace_event_count(), 1u);
  const std::string json = trace_to_json();
  EXPECT_EQ(json.find("marker.off"), std::string::npos);
  EXPECT_NE(json.find("marker.on"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentEmissionFromPoolWorkersLosesNothing) {
  constexpr int kTasks = 64;
  constexpr int kSpansPerTask = 100;
  set_trace_enabled(true);
  {
    ThreadPool pool(4);
    std::vector<std::future<void>> done;
    done.reserve(kTasks);
    for (int t = 0; t < kTasks; ++t) {
      done.push_back(pool.submit([] {
        for (int i = 0; i < kSpansPerTask; ++i) {
          TPI_SPAN("worker.span");
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  set_trace_enabled(false);
  EXPECT_EQ(trace_event_count(), static_cast<std::size_t>(kTasks) * kSpansPerTask);
}

TEST_F(TraceTest, JsonIsWellFormedChromeTraceFormat) {
  set_trace_enabled(true);
  {
    TPI_SPAN("json.span");
    ThreadPool pool(2);
    auto f = pool.submit([] { TPI_SPAN("json.worker"); });
    f.get();
  }
  set_trace_enabled(false);
  const std::string json = trace_to_json();
  std::string error;
  EXPECT_TRUE(json_well_formed(json, &error)) << error;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\": \"X\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\": 1"), std::string::npos);
  // Spans from two different threads carry different tids.
  const std::size_t first_tid = json.find("\"tid\": ");
  ASSERT_NE(first_tid, std::string::npos);
  EXPECT_NE(json.find("\"tid\": ", first_tid + 1), std::string::npos);
}

TEST_F(TraceTest, SinkCapturesSpansAndKeepsGlobalLogClean) {
  TraceSink sink(7, "jobA");
  EXPECT_FALSE(trace_enabled());
  {
    ScopedTraceSink scope(sink);
    // The sink alone enables tracing via the refcount: no global switch.
    EXPECT_TRUE(trace_enabled());
    TPI_SPAN("sink.span");
    trace_instant("sink.marker");
  }
  EXPECT_FALSE(trace_enabled());
  EXPECT_EQ(trace_event_count(), 0u);  // nothing leaked to the global log
  EXPECT_EQ(sink.event_count(), 2u);
  const std::string json = sink.to_json();
  std::string error;
  EXPECT_TRUE(json_well_formed(json, &error)) << error;
  EXPECT_NE(json.find("\"pid\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("jobA"), std::string::npos);
  EXPECT_NE(json.find("sink.span"), std::string::npos);
}

TEST_F(TraceTest, NestedSinksInnermostWinsAndRestores) {
  TraceSink outer(1, "outer");
  TraceSink inner(2, "inner");
  {
    ScopedTraceSink s1(outer);
    trace_instant("to.outer");
    {
      ScopedTraceSink s2(inner);
      trace_instant("to.inner");
    }
    trace_instant("to.outer.again");
  }
  EXPECT_EQ(outer.event_count(), 2u);
  EXPECT_EQ(inner.event_count(), 1u);
  EXPECT_EQ(inner.to_json().find("to.outer"), std::string::npos);
  EXPECT_EQ(outer.to_json().find("to.inner"), std::string::npos);
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, ManualEnableSurvivesSinkScopeExit) {
  set_trace_enabled(true);
  TraceSink sink(3, "scoped");
  {
    ScopedTraceSink scope(sink);
    trace_instant("in.sink");
  }
  // The manual switch holds its own refcount: still tracing globally.
  EXPECT_TRUE(trace_enabled());
  trace_instant("in.global");
  set_trace_enabled(false);
  EXPECT_EQ(sink.event_count(), 1u);
  EXPECT_EQ(trace_event_count(), 1u);
  EXPECT_NE(trace_to_json().find("in.global"), std::string::npos);
  EXPECT_EQ(trace_to_json().find("in.sink"), std::string::npos);
}

TEST_F(TraceTest, SinkScopeIsPerThread) {
  TraceSink sink(4, "main-thread");
  ScopedTraceSink scope(sink);
  // A pool worker has no sink scope: its spans land in the global log
  // (tracing is on — the sink's refcount — so they are recorded).
  ThreadPool pool(1);
  pool.submit([] { trace_instant("worker.marker"); }).get();
  trace_instant("main.marker");
  EXPECT_EQ(sink.event_count(), 1u);
  EXPECT_EQ(trace_event_count(), 1u);
  EXPECT_NE(trace_to_json().find("worker.marker"), std::string::npos);
  EXPECT_EQ(trace_to_json().find("main.marker"), std::string::npos);
}

TEST_F(TraceTest, ConcurrentSinksStayIsolated) {
  constexpr int kJobs = 4;
  constexpr int kSpans = 200;
  std::vector<std::unique_ptr<TraceSink>> sinks;
  for (int j = 0; j < kJobs; ++j) {
    sinks.push_back(std::make_unique<TraceSink>(
        static_cast<std::uint64_t>(j + 1), "job" + std::to_string(j)));
  }
  {
    ThreadPool pool(kJobs);
    std::vector<std::future<void>> done;
    for (int j = 0; j < kJobs; ++j) {
      done.push_back(pool.submit([&sinks, j] {
        ScopedTraceSink scope(*sinks[static_cast<std::size_t>(j)]);
        for (int i = 0; i < kSpans; ++i) {
          TPI_SPAN("job.span");
        }
      }));
    }
    for (auto& f : done) f.get();
  }
  for (int j = 0; j < kJobs; ++j) {
    EXPECT_EQ(sinks[static_cast<std::size_t>(j)]->event_count(),
              static_cast<std::size_t>(kSpans));
  }
  EXPECT_EQ(trace_event_count(), 0u);
}

TEST_F(TraceTest, SinkWriteJsonRoundTrips) {
  TraceSink sink(9, "writer \"quoted\"");
  {
    ScopedTraceSink scope(sink);
    TPI_SPAN("write.span");
  }
  const std::string path = ::testing::TempDir() + "tpi_sink_trace.json";
  ASSERT_TRUE(sink.write_json(path));
  std::string contents;
  {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) contents.append(buf, n);
    std::fclose(f);
  }
  std::remove(path.c_str());
  std::string error;
  EXPECT_TRUE(json_well_formed(contents, &error)) << error;  // label escaping
  EXPECT_NE(contents.find("write.span"), std::string::npos);
}

TEST_F(TraceTest, ResetClearsEventsButKeepsRecording) {
  set_trace_enabled(true);
  {
    TPI_SPAN("before.reset");
  }
  EXPECT_EQ(trace_event_count(), 1u);
  trace_reset();
  EXPECT_EQ(trace_event_count(), 0u);
  {
    TPI_SPAN("after.reset");
  }
  set_trace_enabled(false);
  EXPECT_EQ(trace_event_count(), 1u);
  EXPECT_NE(trace_to_json().find("after.reset"), std::string::npos);
}

}  // namespace
}  // namespace tpi
