#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace tpi {
namespace {

TEST(RunningStatsTest, EmptyIsZero) {
  RunningStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(RunningStatsTest, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic example set
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(RunningStatsTest, SingleValue) {
  RunningStats s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(LinearFitTest, ExactLine) {
  const std::vector<double> x{0, 1, 2, 3, 4, 5};
  std::vector<double> y;
  for (double xi : x) y.push_back(2.5 * xi + 1.0);
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.5, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
}

TEST(LinearFitTest, NoisyLineHasHighR2) {
  const std::vector<double> x{0, 1, 2, 3, 4, 5};
  const std::vector<double> y{0.1, 1.05, 1.9, 3.1, 3.95, 5.05};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 1.0, 0.05);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(LinearFitTest, DegenerateInputs) {
  EXPECT_EQ(fit_linear({}, {}).slope, 0.0);
  EXPECT_EQ(fit_linear({1.0}, {2.0}).slope, 0.0);
  // Vertical spread on constant x: no fit possible.
  const LinearFit fit = fit_linear({2.0, 2.0, 2.0}, {1.0, 2.0, 3.0});
  EXPECT_EQ(fit.slope, 0.0);
  EXPECT_EQ(fit.r_squared, 0.0);
}

TEST(LinearFitTest, FlatDataIsPerfectFlatFit) {
  const LinearFit fit = fit_linear({0, 1, 2, 3}, {5, 5, 5, 5});
  EXPECT_NEAR(fit.slope, 0.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 5.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);  // zero residual
}

}  // namespace
}  // namespace tpi
