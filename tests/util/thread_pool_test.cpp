#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <vector>

namespace tpi {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::vector<std::future<int>> futs;
  for (int i = 0; i < 32; ++i) {
    futs.push_back(pool.submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futs[static_cast<std::size_t>(i)].get(), i * i);
}

TEST(ThreadPoolTest, DefaultsToHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_EQ(pool.size(), ThreadPool::default_concurrency());
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SingleWorkerPreservesSubmissionOrder) {
  // One worker = deterministic serial execution; the equivalence tests for
  // the sweep runner rely on this degenerate mode.
  ThreadPool pool(1);
  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 16; ++i) {
    futs.push_back(pool.submit([i, &order] { order.push_back(i); }));
  }
  for (auto& f : futs) f.get();
  ASSERT_EQ(order.size(), 16u);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(ThreadPoolTest, PropagatesExceptionsThroughFutures) {
  ThreadPool pool(2);
  auto ok = pool.submit([] { return 7; });
  auto bad = pool.submit([]() -> int { throw std::runtime_error("boom"); });
  EXPECT_EQ(ok.get(), 7);
  EXPECT_THROW(bad.get(), std::runtime_error);
  // The pool survives a throwing task.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> done{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 64; ++i) {
      pool.submit([&done] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++done;
      });
    }
  }  // destructor must wait for all 64
  EXPECT_EQ(done.load(), 64);
}

TEST(ThreadPoolTest, PendingDrainsToZero) {
  ThreadPool pool(2);
  std::vector<std::future<void>> futs;
  for (int i = 0; i < 8; ++i) futs.push_back(pool.submit([] {}));
  for (auto& f : futs) f.get();
  // Queue empty once everything completed.
  EXPECT_EQ(pool.pending(), 0u);
}

TEST(ThreadPoolTest, HigherPriorityJumpsTheQueue) {
  // Occupy the single worker with a gated task, queue work at mixed
  // priorities, then release: the backlog must drain highest-first with
  // FIFO order inside each priority level.
  ThreadPool pool(1);
  std::promise<void> gate;
  std::shared_future<void> open = gate.get_future().share();
  auto blocker = pool.submit([open] { open.wait(); });

  std::vector<int> order;
  std::vector<std::future<void>> futs;
  for (const int tag : {0, 1, 2}) {
    futs.push_back(
        pool.submit_prioritized(0, [tag, &order] { order.push_back(tag); }));
  }
  futs.push_back(pool.submit_prioritized(5, [&order] { order.push_back(50); }));
  futs.push_back(pool.submit_prioritized(1, [&order] { order.push_back(10); }));
  futs.push_back(pool.submit_prioritized(5, [&order] { order.push_back(51); }));
  gate.set_value();

  blocker.get();
  for (auto& f : futs) f.get();
  EXPECT_EQ(order, (std::vector<int>{50, 51, 10, 0, 1, 2}));
}

TEST(ThreadPoolTest, ExecutesConcurrentlyWithMultipleWorkers) {
  // Two tasks that each wait for the other to start can only finish if the
  // pool really runs them on distinct threads.
  ThreadPool pool(2);
  std::atomic<int> started{0};
  auto wait_for_peer = [&started] {
    ++started;
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (started.load() < 2) {
      if (std::chrono::steady_clock::now() > deadline) return false;
      std::this_thread::yield();
    }
    return true;
  };
  auto a = pool.submit(wait_for_peer);
  auto b = pool.submit(wait_for_peer);
  EXPECT_TRUE(a.get());
  EXPECT_TRUE(b.get());
}

}  // namespace
}  // namespace tpi
