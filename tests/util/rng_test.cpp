#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace tpi {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng a(7);
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 16; ++i) first.push_back(a.next_u64());
  a.reseed(7);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), first[static_cast<std::size_t>(i)]);
}

TEST(RngTest, NextBelowStaysInRange) {
  Rng rng(3);
  for (std::uint64_t bound : {1ULL, 2ULL, 7ULL, 100ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
  EXPECT_EQ(rng.next_below(0), 0u);
  EXPECT_EQ(rng.next_below(1), 0u);
}

TEST(RngTest, NextBelowCoversAllResidues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo = saw_lo || v == -3;
    saw_hi = saw_hi || v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // mean of U(0,1)
}

TEST(RngTest, BoolRespectsProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.next_bool(0.25);
  EXPECT_NEAR(hits / 20000.0, 0.25, 0.02);
  EXPECT_FALSE(rng.next_bool(0.0));
  EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0, sq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.next_gaussian(2.0, 3.0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.1);
  EXPECT_NEAR(var, 9.0, 0.5);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(23);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_NE(shuffled, v);  // astronomically unlikely to be identity
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

}  // namespace
}  // namespace tpi
