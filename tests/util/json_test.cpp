// JsonValue DOM: parse / serialise round trips, deterministic number
// formatting, escapes, and the error paths the flow server depends on for
// request validation.
#include "util/json.hpp"

#include <gtest/gtest.h>

#include <string>

namespace tpi {
namespace {

JsonValue parse_ok(const std::string& text) {
  const JsonParseResult r = json_parse(text);
  EXPECT_TRUE(r.ok) << r.error << " in " << text;
  return r.value;
}

TEST(JsonTest, ParsesScalars) {
  EXPECT_TRUE(parse_ok("null").is_null());
  EXPECT_EQ(parse_ok("true").as_bool(), true);
  EXPECT_EQ(parse_ok("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(parse_ok("-2.5e2").as_number(), -250.0);
  EXPECT_EQ(parse_ok("\"hi\"").as_string(), "hi");
}

TEST(JsonTest, ParsesNestedStructures) {
  const JsonValue v = parse_ok("{\"a\": [1, 2, {\"b\": null}], \"c\": \"x\"}");
  ASSERT_TRUE(v.is_object());
  const JsonValue* a = v.find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  ASSERT_EQ(a->as_array().size(), 3u);
  EXPECT_DOUBLE_EQ(a->as_array()[0].as_number(), 1.0);
  EXPECT_TRUE(a->as_array()[2].find("b")->is_null());
  EXPECT_EQ(v.find("c")->as_string(), "x");
  EXPECT_EQ(v.find("missing"), nullptr);
}

TEST(JsonTest, ObjectPreservesInsertionOrderAndSetReplaces) {
  JsonValue o{JsonObject{}};
  o.set("z", 1);
  o.set("a", 2);
  o.set("z", 3);  // replace in place, order kept
  EXPECT_EQ(o.serialise(), "{\"z\":3,\"a\":2}");
}

TEST(JsonTest, SerialisesExactIntegersWithoutFraction) {
  JsonValue o{JsonObject{}};
  o.set("i", static_cast<std::int64_t>(1234567890123));
  o.set("d", 2.5);
  o.set("b", true);
  o.set("s", "q\"\\\n");
  const std::string out = o.serialise();
  EXPECT_NE(out.find("\"i\":1234567890123"), std::string::npos);
  EXPECT_NE(out.find("\"d\":2.5"), std::string::npos);
  EXPECT_NE(out.find("\"s\":\"q\\\"\\\\\\n\""), std::string::npos);
}

TEST(JsonTest, RoundTripsThroughSerialise) {
  const std::string text =
      "{\"a\":[1,2.25,\"x\"],\"b\":{\"c\":true,\"d\":null},\"e\":-17}";
  const JsonValue v = parse_ok(text);
  const JsonValue again = parse_ok(v.serialise());
  EXPECT_EQ(v, again);
  EXPECT_EQ(v.serialise(), again.serialise());
}

TEST(JsonTest, DecodesEscapesAndSurrogatePairs) {
  const JsonValue v = parse_ok("\"\\u0041\\t\\u00e9 \\ud83d\\ude00\"");
  EXPECT_EQ(v.as_string(), "A\t\xc3\xa9 \xf0\x9f\x98\x80");
}

TEST(JsonTest, ReportsErrorsWithOffsets) {
  for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "tru", "\"unterminated",
                          "{\"a\":1} trailing", "01", "+1", "nan"}) {
    const JsonParseResult r = json_parse(bad);
    EXPECT_FALSE(r.ok) << "accepted: " << bad;
    EXPECT_NE(r.error.find("offset"), std::string::npos) << r.error;
  }
}

TEST(JsonTest, RejectsRunawayNesting) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json_parse(deep).ok);
}

TEST(JsonTest, EqualityIsStructural) {
  EXPECT_EQ(parse_ok("{\"a\":1,\"b\":2}"), parse_ok("{\"a\":1,\"b\":2}"));
  EXPECT_FALSE(parse_ok("{\"a\":1}") == parse_ok("{\"a\":2}"));
  EXPECT_FALSE(parse_ok("[1,2]") == parse_ok("[2,1]"));
}

}  // namespace
}  // namespace tpi
