// Run-ledger tests: JSONL append/read round trip, the schema-versioned
// envelope fields, config fingerprint stability, concurrent appends from
// several threads, and reader tolerance of torn/malformed lines (a crash
// mid-append must not poison the file for later consumers).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "util/json.hpp"
#include "util/json_check.hpp"
#include "util/ledger.hpp"

namespace tpi {
namespace {

std::string temp_ledger_path(const char* stem) {
  return ::testing::TempDir() + stem + ".jsonl";
}

std::string read_all(const std::string& path) {
  std::string out;
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return out;
  char buf[4096];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

JsonValue parse(const std::string& text) {
  const JsonParseResult r = json_parse(text);
  EXPECT_TRUE(r.ok) << r.error;
  return r.value;
}

TEST(LedgerTest, Fnv1aMatchesReferenceVectors) {
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a_64(""), 0xcbf29ce484222325ull);
  EXPECT_EQ(fnv1a_64("a"), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(fnv1a_64("foobar"), 0x85944171f73967e8ull);
  EXPECT_EQ(fnv1a_hex("foobar"), "85944171f73967e8");
  EXPECT_EQ(fnv1a_hex("").size(), 16u);
}

TEST(LedgerTest, AppendReadRoundTrip) {
  const std::string path = temp_ledger_path("tpi_ledger_roundtrip");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    ASSERT_TRUE(ledger.ok());
    const JsonValue config = parse("{\"profile\": \"s38417\", \"tp_percent\": 2}");
    const JsonValue flow = parse("{\"num_cells\": 1200, \"metrics\": {}}");
    EXPECT_TRUE(ledger.append("s38417/tp=2", config, flow));
    EXPECT_TRUE(ledger.append("s38417/tp=2", config, flow));
    EXPECT_EQ(ledger.lines_written(), 2u);
  }
  const std::vector<LedgerEntry> entries = Ledger::read_file(path);
  ASSERT_EQ(entries.size(), 2u);
  for (const LedgerEntry& e : entries) {
    EXPECT_EQ(e.schema, kLedgerSchemaVersion);
    EXPECT_EQ(e.label, "s38417/tp=2");
    EXPECT_EQ(e.build, build_stamp());
    EXPECT_FALSE(e.ts.empty());
    EXPECT_EQ(e.ts.back(), 'Z');  // UTC timestamp
    EXPECT_EQ(e.config_fp.size(), 16u);
    const JsonValue* cells = e.flow.find("num_cells");
    ASSERT_NE(cells, nullptr);
    EXPECT_DOUBLE_EQ(cells->as_number(), 1200.0);
    EXPECT_NE(e.config.find("profile"), nullptr);
  }
  // Same config -> same fingerprint (the drift-check join key).
  EXPECT_EQ(entries[0].config_fp, entries[1].config_fp);
  std::remove(path.c_str());
}

TEST(LedgerTest, FingerprintTracksConfigContent) {
  const std::string path = temp_ledger_path("tpi_ledger_fp");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    const JsonValue flow = parse("{}");
    ledger.append("a", parse("{\"tp_percent\": 2}"), flow);
    ledger.append("b", parse("{\"tp_percent\": 4}"), flow);
  }
  const std::vector<LedgerEntry> entries = Ledger::read_file(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_NE(entries[0].config_fp, entries[1].config_fp);
  std::remove(path.c_str());
}

TEST(LedgerTest, EveryLineIsSelfContainedJson) {
  const std::string path = temp_ledger_path("tpi_ledger_lines");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    ledger.append("one", parse("{\"k\": 1}"), parse("{\"v\": 1}"));
    ledger.append("two", parse("{\"k\": 2}"), parse("{\"v\": 2}"));
  }
  const std::string raw = read_all(path);
  ASSERT_FALSE(raw.empty());
  EXPECT_EQ(raw.back(), '\n');
  std::size_t start = 0, lines = 0;
  while (start < raw.size()) {
    const std::size_t end = raw.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string line = raw.substr(start, end - start);
    std::string error;
    EXPECT_TRUE(json_well_formed(line, &error)) << error;
    EXPECT_NE(line.find("\"schema\":1"), std::string::npos);
    ++lines;
    start = end + 1;
  }
  EXPECT_EQ(lines, 2u);
  std::remove(path.c_str());
}

TEST(LedgerTest, ReaderSkipsTornAndMalformedLines) {
  const std::string path = temp_ledger_path("tpi_ledger_torn");
  std::remove(path.c_str());
  {
    Ledger ledger(path);
    ledger.append("good", parse("{}"), parse("{\"ok\": true}"));
  }
  {
    // Simulate garbage between entries and a crash mid-append at the end.
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("not json at all\n", f);
    std::fclose(f);
  }
  {
    Ledger ledger(path);
    ledger.append("good2", parse("{}"), parse("{\"ok\": true}"));
  }
  {
    std::FILE* f = std::fopen(path.c_str(), "ab");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"schema\": 1, \"label\": \"torn", f);  // no newline, truncated
    std::fclose(f);
  }
  const std::vector<LedgerEntry> entries = Ledger::read_file(path);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].label, "good");
  EXPECT_EQ(entries[1].label, "good2");
  std::remove(path.c_str());
}

TEST(LedgerTest, ConcurrentAppendsNeverTearLines) {
  const std::string path = temp_ledger_path("tpi_ledger_mt");
  std::remove(path.c_str());
  constexpr int kThreads = 4;
  constexpr int kAppends = 50;
  {
    Ledger ledger(path);
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&ledger, t] {
        const JsonValue config = json_parse("{\"t\": " + std::to_string(t) + "}").value;
        const JsonValue flow = json_parse("{}").value;
        for (int i = 0; i < kAppends; ++i) {
          ledger.append("thread" + std::to_string(t), config, flow);
        }
      });
    }
    for (std::thread& th : threads) th.join();
    EXPECT_EQ(ledger.lines_written(),
              static_cast<std::size_t>(kThreads) * kAppends);
  }
  EXPECT_EQ(Ledger::read_file(path).size(),
            static_cast<std::size_t>(kThreads) * kAppends);
  std::remove(path.c_str());
}

TEST(LedgerTest, UnopenablePathReportsNotOk) {
  Ledger ledger("/nonexistent-dir-tpi/ledger.jsonl");
  EXPECT_FALSE(ledger.ok());
  EXPECT_FALSE(ledger.append("x", JsonValue(), JsonValue()));
  EXPECT_EQ(ledger.lines_written(), 0u);
}

TEST(LedgerTest, FromEnvHonoursTpiLedger) {
  ::unsetenv("TPI_LEDGER");
  EXPECT_EQ(Ledger::from_env(), nullptr);
  const std::string path = temp_ledger_path("tpi_ledger_env");
  ::setenv("TPI_LEDGER", path.c_str(), 1);
  const std::unique_ptr<Ledger> ledger = Ledger::from_env();
  ::unsetenv("TPI_LEDGER");
  ASSERT_NE(ledger, nullptr);
  EXPECT_TRUE(ledger->ok());
  EXPECT_EQ(ledger->path(), path);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace tpi
