#include "sta/sta.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "layout/clock_tree.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"

namespace tpi {
namespace {

using test::lib;

struct TimedCircuit {
  std::unique_ptr<Netlist> nl;
  Floorplan fp;
  Placement pl;
  RoutingResult routes;
  ExtractionResult px;
  StaResult sta;
};

TimedCircuit analyze(std::unique_ptr<Netlist> nl, bool with_cts = false) {
  TimedCircuit out;
  out.nl = std::move(nl);
  out.fp = make_floorplan(*out.nl, {});
  out.pl = place(*out.nl, out.fp, {});
  if (with_cts) synthesize_clock_trees(*out.nl, out.fp, out.pl, {});
  out.routes = route(*out.nl, out.fp, out.pl);
  out.px = extract(*out.nl, out.routes);
  out.sta = run_sta(*out.nl, out.px);
  return out;
}

TEST(StaTest, ShiftRegisterPathHandChecked) {
  const TimedCircuit tc = analyze(test::make_shift_register());
  ASSERT_TRUE(tc.sta.worst.valid);
  const CriticalPath& cp = tc.sta.worst;
  // Worst path: f0 CK->Q, through the XOR? No — the XOR feeds a PO, which
  // has no setup check. FF->FF path is f0.Q -> f1.D (direct wire), so the
  // path has exactly one cell (the launching FF).
  EXPECT_EQ(cp.logic_cells_on_path, 1);
  EXPECT_NE(cp.launch_ff, kNoCell);
  EXPECT_NE(cp.capture_ff, kNoCell);
  EXPECT_EQ(cp.test_points_on_path, 0);
  // Decomposition identity of eq. (3): components sum to T_cp.
  EXPECT_NEAR(cp.t_cp_ps,
              cp.t_wires_ps + cp.t_intrinsic_ps + cp.t_load_dep_ps + cp.t_setup_ps +
                  cp.t_skew_ps,
              0.5);
  // Setup comes from the capturing flip-flop's spec.
  EXPECT_DOUBLE_EQ(cp.t_setup_ps, tc.nl->cell(cp.capture_ff).spec->setup_ps);
  EXPECT_GT(cp.t_intrinsic_ps, 0.0);
}

TEST(StaTest, DecompositionIdentityOnGeneratedCircuits) {
  for (std::uint64_t seed : {101ULL, 102ULL, 103ULL}) {
    const TimedCircuit tc = analyze(generate_circuit(lib(), test::tiny_profile(seed)));
    ASSERT_TRUE(tc.sta.worst.valid);
    const CriticalPath& cp = tc.sta.worst;
    EXPECT_NEAR(cp.t_cp_ps,
                cp.t_wires_ps + cp.t_intrinsic_ps + cp.t_load_dep_ps + cp.t_setup_ps +
                    cp.t_skew_ps,
                1.0)
        << "seed " << seed;
    EXPECT_GT(cp.fmax_mhz(), 0.0);
  }
}

TEST(StaTest, TransparentTestPointSlowsItsPath) {
  // Insert a TSFF directly on the f0.Q -> f1.D wire of the shift register:
  // the FF->FF path must slow down by at least the TSFF intrinsic delay.
  auto base = test::make_shift_register();
  const TimedCircuit before = analyze(std::move(base));
  ASSERT_TRUE(before.sta.worst.valid);

  auto modified = test::make_shift_register();
  const NetId q0 = modified->find_net("q0");
  const CellSpec* tsff = lib().by_name("TSFF_X1");
  const CellId tp = modified->add_cell(tsff, "tp0");
  modified->insert_cell_in_net(q0, tp, tsff->d_pin);
  modified->connect(tp, tsff->clock_pin, modified->pi_net(0));
  const TimedCircuit after = analyze(std::move(modified));
  ASSERT_TRUE(after.sta.worst.valid);
  EXPECT_EQ(after.sta.worst.test_points_on_path, 1);
  EXPECT_GT(after.sta.worst.t_cp_ps, before.sta.worst.t_cp_ps + 80.0);
}

TEST(StaTest, TsffClockToQIsBlockedFalsePath) {
  // In application mode the TSFF output comes from the mux path, not the
  // internal FF: its CK->Q arc must not create paths (§4.4 "blocked all
  // false paths that are only active in test mode").
  auto nl = test::make_shift_register();
  const CellId f0 = nl->find_cell("f0");
  nl->replace_spec(f0, lib().by_name("TSFF_X1"));
  const TimedCircuit tc = analyze(std::move(nl));
  ASSERT_TRUE(tc.sta.worst.valid);
  // The path launches from the PI (through the transparent TSFF) or the
  // remaining FF, never from the TSFF's clock arc.
  EXPECT_NE(tc.sta.worst.launch_ff, f0);
}

TEST(StaTest, ClockTreeSkewAppearsInPaths) {
  auto nl = generate_circuit(lib(), test::tiny_profile(104));
  const TimedCircuit tc = analyze(std::move(nl), /*with_cts=*/true);
  ASSERT_TRUE(tc.sta.worst.valid);
  // With a physical buffer tree, launch/capture arrivals differ: the skew
  // term is nonzero for at least the worst path (almost surely).
  EXPECT_NE(tc.sta.worst.t_skew_ps, 0.0);
  EXPECT_LT(std::abs(tc.sta.worst.t_skew_ps), 500.0);  // sane magnitude
}

TEST(StaTest, PerDomainReports) {
  CircuitProfile p = test::tiny_profile(105);
  p.num_clock_domains = 2;
  p.domain_fraction = {0.5, 0.5};
  p.num_ffs = 40;
  const TimedCircuit tc = analyze(generate_circuit(lib(), p));
  ASSERT_EQ(tc.sta.per_domain.size(), 2u);
  EXPECT_TRUE(tc.sta.per_domain[0].valid);
  EXPECT_TRUE(tc.sta.per_domain[1].valid);
  const double worst = tc.sta.worst.t_cp_ps;
  EXPECT_GE(worst + 1e-9, tc.sta.per_domain[0].t_cp_ps);
  EXPECT_GE(worst + 1e-9, tc.sta.per_domain[1].t_cp_ps);
  EXPECT_TRUE(worst == tc.sta.per_domain[0].t_cp_ps ||
              worst == tc.sta.per_domain[1].t_cp_ps);
}

TEST(StaTest, CriticalPathHasZeroSlack) {
  const TimedCircuit tc = analyze(generate_circuit(lib(), test::tiny_profile(106)));
  ASSERT_TRUE(tc.sta.worst.valid);
  // Every net on the critical path has ~zero slack; others are >= 0.
  double min_slack = 1e300;
  for (const double s : tc.sta.net_slack_ps) min_slack = std::min(min_slack, s);
  EXPECT_NEAR(min_slack, 0.0, 1.0);
}

TEST(StaTest, SlowNodesFlaggedOnOverloadedNets) {
  // A single X1 inverter driving dozens of loads exceeds the characterised
  // table range: the cell must be counted as a slow node.
  Netlist nl(&lib(), "hub");
  const int a = nl.add_primary_input("a");
  const int clk = nl.add_primary_input("clk");
  nl.mark_clock(clk);
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellSpec* dff = lib().by_name("DFF_X1");
  const CellId hub = nl.add_cell(inv, "hub");
  nl.connect(hub, 0, nl.pi_net(a));
  const NetId hub_out = nl.add_net("hub_out");
  nl.connect(hub, inv->output_pin, hub_out);
  for (int i = 0; i < 64; ++i) {
    const CellId f = nl.add_cell(dff, "f" + std::to_string(i));
    nl.connect(f, dff->d_pin, hub_out);
    nl.connect(f, dff->clock_pin, nl.pi_net(clk));
    const NetId q = nl.add_net("q" + std::to_string(i));
    nl.connect(f, dff->output_pin, q);
    nl.add_primary_output("po" + std::to_string(i), q);
  }
  const TimedCircuit tc = analyze(
      std::make_unique<Netlist>(std::move(nl)));
  EXPECT_GE(tc.sta.slow_nodes, 1);
}

TEST(StaTest, MoreLoadMeansMoreDelay) {
  // Compare the same path with light vs heavy fanout on its middle net.
  auto make = [&](int extra_loads) {
    auto nl = std::make_unique<Netlist>(&lib(), "loady");
    const int clk = nl->add_primary_input("clk");
    nl->mark_clock(clk);
    const int a = nl->add_primary_input("a");
    const CellSpec* dff = lib().by_name("DFF_X1");
    const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
    const CellId f0 = nl->add_cell(dff, "f0");
    nl->connect(f0, dff->d_pin, nl->pi_net(a));
    nl->connect(f0, dff->clock_pin, nl->pi_net(clk));
    const NetId q = nl->add_net("q");
    nl->connect(f0, dff->output_pin, q);
    const CellId g = nl->add_cell(inv, "mid");
    nl->connect(g, 0, q);
    const NetId m = nl->add_net("m");
    nl->connect(g, inv->output_pin, m);
    const CellId f1 = nl->add_cell(dff, "f1");
    nl->connect(f1, dff->d_pin, m);
    nl->connect(f1, dff->clock_pin, nl->pi_net(clk));
    const NetId q1 = nl->add_net("q1");
    nl->connect(f1, dff->output_pin, q1);
    nl->add_primary_output("po", q1);
    for (int i = 0; i < extra_loads; ++i) {
      const CellId e = nl->add_cell(inv, "load" + std::to_string(i));
      nl->connect(e, 0, m);
      const NetId eo = nl->add_net("eo" + std::to_string(i));
      nl->connect(e, inv->output_pin, eo);
      nl->add_primary_output("epo" + std::to_string(i), eo);
    }
    return nl;
  };
  const TimedCircuit light = analyze(make(0));
  const TimedCircuit heavy = analyze(make(24));
  ASSERT_TRUE(light.sta.worst.valid && heavy.sta.worst.valid);
  EXPECT_GT(heavy.sta.worst.t_cp_ps, light.sta.worst.t_cp_ps);
  EXPECT_GT(heavy.sta.worst.t_load_dep_ps, light.sta.worst.t_load_dep_ps);
}

}  // namespace
}  // namespace tpi
