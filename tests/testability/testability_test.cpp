#include "testability/testability.hpp"

#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <memory>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "sim/parallel_sim.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

using test::lib;

class SmallCombTestability : public ::testing::Test {
 protected:
  void SetUp() override {
    nl_ = test::make_small_comb();
    model_ = std::make_unique<CombModel>(*nl_, SeqView::kCapture);
    t_ = analyze_testability(*model_);
  }
  std::unique_ptr<Netlist> nl_;
  std::unique_ptr<CombModel> model_;
  TestabilityResult t_;
};

TEST_F(SmallCombTestability, ScoapControllabilityOfInputsIsOne) {
  for (int i = 0; i < 3; ++i) {
    const auto n = static_cast<std::size_t>(nl_->pi_net(i));
    EXPECT_EQ(t_.cc0[n], 1.0f);
    EXPECT_EQ(t_.cc1[n], 1.0f);
  }
}

TEST_F(SmallCombTestability, ScoapNorGateValues) {
  // y = NOR(a, b): CC1(y) = min(CC1... by NOR rule: cc1 = sum cc0 + 1 = 3;
  // cc0 = min cc1 + 1 = 2.
  const auto y = static_cast<std::size_t>(nl_->find_net("y"));
  EXPECT_EQ(t_.cc1[y], 3.0f);
  EXPECT_EQ(t_.cc0[y], 2.0f);
}

TEST_F(SmallCombTestability, ScoapAndGateValues) {
  // z = AND(c, y): cc1 = cc1(c) + cc1(y) + 1 = 1 + 3 + 1 = 5;
  // cc0 = min(cc0(c), cc0(y)) + 1 = 2.
  const auto z = static_cast<std::size_t>(nl_->find_net("z"));
  EXPECT_EQ(t_.cc1[z], 5.0f);
  EXPECT_EQ(t_.cc0[z], 2.0f);
}

TEST_F(SmallCombTestability, ObservabilityOfOutputsIsZeroCost) {
  const auto z = static_cast<std::size_t>(nl_->find_net("z"));
  const auto w = static_cast<std::size_t>(nl_->find_net("w"));
  EXPECT_EQ(t_.co[z], 0.0f);
  EXPECT_EQ(t_.co[w], 0.0f);
  EXPECT_EQ(t_.obs[z], 1.0f);
  EXPECT_EQ(t_.obs[w], 1.0f);
}

TEST_F(SmallCombTestability, CopSignalProbabilitiesExact) {
  // p1(y) = P(NOR(a,b)=1) = 0.25; p1(z) = p1(c)*p1(y) = 0.125;
  // p1(w) = p1(a) XOR p1(z) = 0.5*(1-0.125) + 0.5*0.125 = 0.5.
  EXPECT_NEAR(t_.p1[static_cast<std::size_t>(nl_->find_net("y"))], 0.25f, 1e-6f);
  EXPECT_NEAR(t_.p1[static_cast<std::size_t>(nl_->find_net("z"))], 0.125f, 1e-6f);
  EXPECT_NEAR(t_.p1[static_cast<std::size_t>(nl_->find_net("w"))], 0.5f, 1e-6f);
}

TEST_F(SmallCombTestability, CopObservabilityThroughAnd) {
  // y observed through z = AND(c, y) needs c=1: obs(y) = obs(z)*p1(c) = 0.5.
  const auto y = static_cast<std::size_t>(nl_->find_net("y"));
  EXPECT_NEAR(t_.obs[y], 0.5f, 1e-6f);
  // CO(y) = CO(z) + CC1(c) + 1 = 0 + 1 + 1 = 2.
  EXPECT_EQ(t_.co[y], 2.0f);
}

TEST_F(SmallCombTestability, DetectionProbabilities) {
  const NetId y = nl_->find_net("y");
  // sa0 at y: need y=1 (p 0.25) and observation (0.5) -> 0.125.
  EXPECT_NEAR(t_.detect_prob_sa0(y), 0.125f, 1e-6f);
  EXPECT_NEAR(t_.detect_prob_sa1(y), 0.375f, 1e-6f);
  EXPECT_NEAR(t_.detect_prob_min(y), 0.125f, 1e-6f);
}

TEST_F(SmallCombTestability, FanoutFreeRegions) {
  // a fans out (g1, g3) -> a is its own root. y, z are multi-load or
  // observed; every net gets a root.
  for (std::size_t n = 0; n < nl_->num_nets(); ++n) {
    const Net& net = nl_->net(static_cast<NetId>(n));
    if (!net.driver.valid()) continue;
    EXPECT_NE(t_.ffr_root[n], kNoNet) << nl_->net(static_cast<NetId>(n)).name;
  }
  const auto z = static_cast<std::size_t>(nl_->find_net("z"));
  EXPECT_EQ(t_.ffr_root[z], nl_->find_net("z"));  // z observed + fanout 2
}

TEST(TestabilityTest, FfrChainCollapsesToRoot) {
  // buf chain: a -> b1 -> b2 -> po. All gates share the root at the chain
  // end (the observed net).
  Netlist nl(&lib(), "chain");
  const int a = nl.add_primary_input("a");
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  NetId prev = nl.pi_net(a);
  NetId last = kNoNet;
  for (int i = 0; i < 3; ++i) {
    const CellId b = nl.add_cell(buf, "b" + std::to_string(i));
    nl.connect(b, 0, prev);
    last = nl.add_net("n" + std::to_string(i));
    nl.connect(b, buf->output_pin, last);
    prev = last;
  }
  nl.add_primary_output("po", last);
  CombModel model(nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  for (int i = 0; i < 3; ++i) {
    const auto n = static_cast<std::size_t>(nl.find_net("n" + std::to_string(i)));
    EXPECT_EQ(t.ffr_root[n], last);
  }
  EXPECT_EQ(t.ffr_size[static_cast<std::size_t>(last)], 3);
}

// Property: COP p1 approximates the measured signal probability under
// random stimulus on generated circuits.
TEST(TestabilityTest, CopMatchesSimulatedProbabilities) {
  auto nl = generate_circuit(lib(), test::tiny_profile(5));
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  ParallelSim sim(model);
  Rng rng(99);
  std::vector<double> ones(nl->num_nets(), 0.0);
  const int batches = 200;
  for (int b = 0; b < batches; ++b) {
    std::vector<Word> words(model.input_nets().size());
    for (auto& w : words) w = rng.next_u64();
    sim.load_inputs(words);
    sim.run();
    for (std::size_t n = 0; n < nl->num_nets(); ++n) {
      ones[n] += static_cast<double>(std::popcount(sim.value(static_cast<NetId>(n))));
    }
  }
  const double total = batches * 64.0;
  // COP assumes independence, so allow loose bounds; most nets must agree.
  int checked = 0, close = 0;
  for (const CombNode& node : model.nodes()) {
    if (node.out == kNoNet) continue;
    const auto n = static_cast<std::size_t>(node.out);
    ++checked;
    if (std::abs(ones[n] / total - t.p1[n]) < 0.15) ++close;
  }
  ASSERT_GT(checked, 50);
  EXPECT_GT(static_cast<double>(close) / checked, 0.85);
}

TEST(TestabilityTest, ScanCellBoundariesResetTestability) {
  // A TSFF in capture view exposes a fully controllable/observable point.
  auto nl = test::make_shift_register();
  const CellId f0 = nl->find_cell("f0");
  nl->replace_spec(f0, lib().by_name("TSFF_X1"));
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  const NetId q0 = nl->find_net("q0");
  const auto q = static_cast<std::size_t>(q0);
  EXPECT_EQ(t.cc0[q], 1.0f);
  EXPECT_EQ(t.cc1[q], 1.0f);
  const NetId d_net = nl->cell(f0).conn[static_cast<std::size_t>(nl->cell(f0).spec->d_pin)];
  EXPECT_EQ(t.co[static_cast<std::size_t>(d_net)], 0.0f);
  EXPECT_EQ(t.obs[static_cast<std::size_t>(d_net)], 1.0f);
}

TEST(TestabilityTest, CopNodeP1Helper) {
  CombNode node;
  node.func = CellFunc::kNand;
  node.num_inputs = 2;
  node.in[0] = 0;
  node.in[1] = 1;
  const float p[2] = {0.5f, 0.25f};
  EXPECT_NEAR(cop_node_p1(node, p), 1.0f - 0.125f, 1e-6f);
  node.func = CellFunc::kXor;
  EXPECT_NEAR(cop_node_p1(node, p), 0.5f * 0.75f + 0.5f * 0.25f, 1e-6f);
}

}  // namespace
}  // namespace tpi
