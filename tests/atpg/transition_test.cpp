// Transition-delay fault model: launch-on-capture grading semantics, the
// weaker (buffer/inverter-only) collapsing, cross-backend and cross-jobs
// bit-identity of the two-cycle detection words, and the generalized TAT
// formula. The launch condition is applied as a mask after the unchanged
// SIMD kernels, so any divergence between backends here is a kernel bug,
// not a modelling question.
#include <gtest/gtest.h>

#include <vector>

#include "../common/test_circuits.hpp"
#include "atpg/atpg.hpp"
#include "atpg/fault.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/generator.hpp"
#include "scan/scan.hpp"
#include "sim/simd.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

using test::lib;

std::vector<SimdBackend> available_backends() {
  std::vector<SimdBackend> v;
  for (const SimdBackend b :
       {SimdBackend::kScalar, SimdBackend::kAvx2, SimdBackend::kAvx512}) {
    if (simd_backend_available(b)) v.push_back(b);
  }
  return v;
}

/// Pins a backend for one scope; restores auto dispatch on exit.
class ScopedBackend {
 public:
  explicit ScopedBackend(SimdBackend b) { set_simd_backend(b); }
  ~ScopedBackend() { set_simd_backend(std::nullopt); }
};

TEST(TransitionFaultListTest, ModelStampedAndNamesRoundTrip) {
  auto nl = generate_circuit(lib(), test::tiny_profile(41));
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model, FaultModel::kTransition);
  ASSERT_FALSE(fl.faults.empty());
  for (const Fault& f : fl.faults) EXPECT_EQ(f.model, FaultModel::kTransition);
  // The 1-arg overload keeps the stuck-at default.
  const FaultList sa = build_fault_list(model);
  for (const Fault& f : sa.faults) EXPECT_EQ(f.model, FaultModel::kStuckAt);

  EXPECT_STREQ(fault_model_name(FaultModel::kStuckAt), "stuck_at");
  EXPECT_STREQ(fault_model_name(FaultModel::kTransition), "transition");
  EXPECT_EQ(fault_model_from_name("stuck_at"), FaultModel::kStuckAt);
  EXPECT_EQ(fault_model_from_name("transition"), FaultModel::kTransition);
  EXPECT_EQ(fault_model_from_name("bridging"), std::nullopt);
}

TEST(TransitionFaultListTest, CollapsingIsWeakerThanStuckAt) {
  // Controlling-value folds are stuck-at-only, so the transition list keeps
  // more representatives over the same uncollapsed universe.
  auto nl = generate_circuit(lib(), test::tiny_profile(42));
  CombModel model(*nl, SeqView::kCapture);
  const FaultList sa = build_fault_list(model, FaultModel::kStuckAt);
  const FaultList tr = build_fault_list(model, FaultModel::kTransition);
  EXPECT_EQ(tr.total_uncollapsed, sa.total_uncollapsed);
  EXPECT_GT(tr.faults.size(), sa.faults.size());
  std::int64_t sum = 0;
  for (const Fault& f : tr.faults) sum += f.equiv_count;
  EXPECT_EQ(sum, tr.total_uncollapsed);
}

TEST(TransitionGradingTest, SingleFrameBatchDetectsNothing) {
  // A transition fault needs a launch frame: grading a load_batch() batch
  // (no launch) must return zero for every fault, never a false detect.
  auto nl = generate_circuit(lib(), test::tiny_profile(43));
  CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model, FaultModel::kTransition);
  FaultSimulator fsim(model);
  Rng rng(0xBEEF);
  std::vector<Word> words(model.input_nets().size());
  for (Word& w : words) w = rng.next_u64();
  fsim.load_batch(words);
  for (const Fault& f : fl.faults) EXPECT_EQ(fsim.detects(f), Word{0});
  // The same frame as a launch-on-capture pair does detect faults.
  fsim.load_batch_loc(words);
  std::int64_t detecting = 0;
  for (const Fault& f : fl.faults) detecting += fsim.detects(f) != 0;
  EXPECT_GT(detecting, 0);
}

TEST(TransitionGradingTest, PureCombinationalCircuitHasNoLocDetections) {
  // With no state boundary the capture frame is the launch frame (PIs are
  // held), so no site ever transitions and held-PI LOC detects nothing.
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model, FaultModel::kTransition);
  FaultSimulator fsim(model);
  Rng rng(0xF00D);
  std::vector<Word> words(model.input_nets().size());
  for (Word& w : words) w = rng.next_u64();
  fsim.load_batch_loc(words);
  for (const Fault& f : fl.faults) EXPECT_EQ(fsim.detects(f), Word{0});
}

TEST(TransitionGradingTest, GradesIdenticalAcrossBackendsAndWidths) {
  auto nl = generate_circuit(lib(), test::tiny_profile(44));
  CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model, FaultModel::kTransition);
  std::vector<const Fault*> faults;
  for (const Fault& f : fl.faults) {
    if (f.status != FaultStatus::kScanTested) faults.push_back(&f);
  }
  ASSERT_GT(faults.size(), 50u);

  Rng rng(0xA5A5);
  const std::size_t ni = model.input_nets().size();
  std::vector<Word> narrow(ni), wide(ni * static_cast<std::size_t>(kMaxLaneWords));
  for (std::size_t i = 0; i < ni; ++i) {
    for (int j = 0; j < kMaxLaneWords; ++j) {
      wide[i * static_cast<std::size_t>(kMaxLaneWords) + static_cast<std::size_t>(j)] =
          rng.next_u64();
    }
    narrow[i] = wide[i * static_cast<std::size_t>(kMaxLaneWords)];
  }

  std::vector<Word> ref_narrow, ref_wide;
  for (const SimdBackend b : available_backends()) {
    SCOPED_TRACE(simd_backend_name(b));
    ScopedBackend pin(b);
    FaultSimulator fsim(model);
    fsim.load_batch_loc(narrow);
    std::vector<Word> d1(faults.size());
    fsim.grade(faults.data(), faults.size(), d1.data());

    fsim.configure_lanes(kMaxLaneWords);
    fsim.load_batch_loc(wide);
    std::vector<Word> d8(faults.size() * static_cast<std::size_t>(kMaxLaneWords));
    fsim.grade(faults.data(), faults.size(), d8.data());

    for (std::size_t i = 0; i < faults.size(); ++i) {
      ASSERT_EQ(d1[i], d8[i * static_cast<std::size_t>(kMaxLaneWords)])
          << "wide word 0 diverges from narrow batch at fault " << i;
    }
    if (ref_narrow.empty()) {
      ref_narrow = d1;
      ref_wide = d8;
    } else {
      EXPECT_EQ(d1, ref_narrow);
      EXPECT_EQ(d8, ref_wide);
    }
  }
}

TEST(TransitionGradingTest, BankMatchesSerialAtAnyJobs) {
  auto nl = generate_circuit(lib(), test::tiny_profile(45));
  CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model, FaultModel::kTransition);
  std::vector<Fault*> faults;
  for (Fault& f : fl.faults) {
    if (f.status != FaultStatus::kScanTested) faults.push_back(&f);
  }
  Rng rng(0x5EED);
  std::vector<Word> words(model.input_nets().size());
  for (Word& w : words) w = rng.next_u64();

  std::vector<Word> serial;
  for (const int jobs : {1, 2, 4}) {
    SCOPED_TRACE(jobs);
    FaultSimBank bank(model, jobs);
    bank.load_batch_loc(words);
    std::vector<Word> detect;
    bank.grade(faults, detect);
    if (jobs == 1) {
      serial = detect;
    } else {
      EXPECT_EQ(detect, serial);
    }
  }
}

AtpgResult run_transition_atpg(std::uint64_t seed, int jobs) {
  auto nl = generate_circuit(lib(), test::tiny_profile(seed));
  ScanOptions so;
  so.max_chain_length = 10;
  insert_scan(*nl, so);
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  AtpgOptions opts;
  opts.fault_model = FaultModel::kTransition;
  opts.jobs = jobs;
  return run_atpg(model, t, opts);
}

TEST(TransitionAtpgTest, EndToEndDeterministicAcrossJobs) {
  const AtpgResult serial = run_transition_atpg(46, 1);
  EXPECT_EQ(serial.fault_model, FaultModel::kTransition);
  EXPECT_GT(serial.num_patterns(), 0);
  EXPECT_GT(serial.detected, 0);
  EXPECT_GT(serial.fault_coverage_pct, 30.0);  // LOC leaves PI sites untestable
  EXPECT_LE(serial.fault_coverage_pct, 100.0);

  for (const int jobs : {2, 4}) {
    SCOPED_TRACE(jobs);
    const AtpgResult parallel = run_transition_atpg(46, jobs);
    EXPECT_EQ(parallel.detected, serial.detected);
    EXPECT_EQ(parallel.fault_coverage_pct, serial.fault_coverage_pct);
    ASSERT_EQ(parallel.patterns.size(), serial.patterns.size());
    for (std::size_t i = 0; i < serial.patterns.size(); ++i) {
      EXPECT_EQ(parallel.patterns[i].bits, serial.patterns[i].bits) << "pattern " << i;
    }
  }
}

TEST(TransitionAtpgTest, TransitionCoverageBelowStuckAt) {
  // Held-PI LOC cannot launch transitions at primary inputs and needs the
  // launch condition on top of capture-frame observability, so transition
  // coverage is strictly harder than stuck-at on the same circuit.
  auto nl = generate_circuit(lib(), test::tiny_profile(47));
  ScanOptions so;
  so.max_chain_length = 10;
  insert_scan(*nl, so);
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  AtpgOptions tr_opts;
  tr_opts.fault_model = FaultModel::kTransition;
  const AtpgResult sa = run_atpg(model, t, {});
  const AtpgResult tr = run_atpg(model, t, tr_opts);
  EXPECT_LT(tr.fault_coverage_pct, sa.fault_coverage_pct);
}

TEST(TatTest, GeneralizedFormulaReproducesPaperAtOneCaptureCycle) {
  for (const int l : {0, 9, 100}) {
    for (const int p : {1, 96, 5000}) {
      EXPECT_EQ(test_application_time(l, p, 1), test_application_time(l, p));
      // Launch-on-capture: one extra capture cycle per pattern.
      EXPECT_EQ(test_application_time(l, p, 2),
                static_cast<std::int64_t>(l + 2) * p + l);
    }
  }
}

}  // namespace
}  // namespace tpi
