#include "atpg/podem.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/generator.hpp"

namespace tpi {
namespace {

using test::lib;

// Apply a PODEM cube (random-free: X -> 0) and check the fault is detected.
bool cube_detects(const CombModel& model, const Fault& f, const std::vector<Tern>& cube) {
  FaultSimulator fsim(model);
  std::vector<Word> words(model.input_nets().size(), 0);
  for (std::size_t i = 0; i < cube.size(); ++i) {
    if (cube[i] == Tern::k1) words[i] = ~Word{0};
  }
  fsim.load_batch(words);
  Fault probe = f;
  return fsim.detects(probe) != 0;
}

TEST(PodemTest, FindsTestsForFullyTestableCircuit) {
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  FaultList fl = build_fault_list(model);
  Podem podem(model, t, {});
  for (const Fault& f : fl.faults) {
    const PodemResult r = podem.generate(f);
    EXPECT_EQ(r.outcome, PodemOutcome::kTest)
        << nl->net(f.net).name << " sa" << f.stuck1;
    if (r.outcome == PodemOutcome::kTest) {
      EXPECT_TRUE(cube_detects(model, f, r.cube))
          << "cube does not detect " << nl->net(f.net).name << " sa" << f.stuck1;
    }
  }
}

TEST(PodemTest, ProvesRedundancyOfConstantLogic) {
  // z = AND(a, NOT(a)) is constant 0: z sa0 is undetectable.
  Netlist nl(&lib(), "const");
  const int a = nl.add_primary_input("a");
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellSpec* and2 = lib().gate(CellFunc::kAnd, 2);
  const CellId g1 = nl.add_cell(inv, "g1");
  nl.connect(g1, 0, nl.pi_net(a));
  const NetId na = nl.add_net("na");
  nl.connect(g1, inv->output_pin, na);
  const CellId g2 = nl.add_cell(and2, "g2");
  nl.connect(g2, 0, nl.pi_net(a));
  nl.connect(g2, 1, na);
  const NetId z = nl.add_net("z");
  nl.connect(g2, and2->output_pin, z);
  nl.add_primary_output("po", z);

  CombModel model(nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  Podem podem(model, t, {});
  Fault sa0;
  sa0.net = z;
  sa0.stuck1 = false;
  EXPECT_EQ(podem.generate(sa0).outcome, PodemOutcome::kRedundant);
  Fault sa1 = sa0;
  sa1.stuck1 = true;  // z==0 always, so sa1 is testable
  EXPECT_EQ(podem.generate(sa1).outcome, PodemOutcome::kTest);
}

TEST(PodemTest, SolvesWideDecodeStructures) {
  // The hard-block shape: a 12-wide AND decode with mixed polarities into
  // an observable XOR. PODEM must justify all 12 literals.
  Netlist nl(&lib(), "decode");
  const CellSpec* and2 = lib().gate(CellFunc::kAnd, 2);
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellSpec* xor2 = lib().gate(CellFunc::kXor, 2);
  std::vector<NetId> lits;
  for (int i = 0; i < 12; ++i) {
    const NetId pi = nl.pi_net(nl.add_primary_input("a" + std::to_string(i)));
    if (i % 2) {
      const CellId g = nl.add_cell(inv, "i" + std::to_string(i));
      nl.connect(g, 0, pi);
      const NetId y = nl.add_net("ai" + std::to_string(i));
      nl.connect(g, inv->output_pin, y);
      lits.push_back(y);
    } else {
      lits.push_back(pi);
    }
  }
  int id = 0;
  while (lits.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < lits.size(); i += 2) {
      const CellId g = nl.add_cell(and2, "t" + std::to_string(id));
      nl.connect(g, 0, lits[i]);
      nl.connect(g, 1, lits[i + 1]);
      const NetId y = nl.add_net("ty" + std::to_string(id++));
      nl.connect(g, and2->output_pin, y);
      next.push_back(y);
    }
    if (lits.size() % 2) next.push_back(lits.back());
    lits = std::move(next);
  }
  const NetId side = nl.pi_net(nl.add_primary_input("side"));
  const CellId m = nl.add_cell(xor2, "m");
  nl.connect(m, 0, lits.front());
  nl.connect(m, 1, side);
  const NetId w = nl.add_net("w");
  nl.connect(m, xor2->output_pin, w);
  nl.add_primary_output("po", w);

  CombModel model(nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  FaultList fl = build_fault_list(model);
  Podem podem(model, t, {});
  int tests = 0;
  for (const Fault& f : fl.faults) {
    const PodemResult r = podem.generate(f);
    EXPECT_EQ(r.outcome, PodemOutcome::kTest) << nl.net(f.net).name << " sa" << f.stuck1;
    tests += r.outcome == PodemOutcome::kTest;
    if (r.outcome == PodemOutcome::kTest) EXPECT_TRUE(cube_detects(model, f, r.cube));
  }
  EXPECT_GT(tests, 20);
}

// Ground-truth property: on small generated circuits, PODEM verdicts must
// match exhaustive simulation exactly (soundness in both directions).
TEST(PodemPropertyTest, MatchesExhaustiveGroundTruth) {
  int checked = 0;
  for (unsigned seed = 1; seed <= 20; ++seed) {
    CircuitProfile p;
    p.name = "prop";
    p.num_ffs = 4;
    p.num_comb_gates = 60;
    p.num_pis = 8;
    p.num_pos = 6;
    p.num_clock_domains = 1;
    p.domain_fraction = {1.0};
    p.target_depth = 8;
    p.num_hard_blocks = 1;
    p.hard_block_width = 4;
    p.hard_classes_per_block = 3;
    p.hard_mode_bits = 2;
    p.num_hub_signals = 2;
    p.hub_pick_prob = 0.02;
    p.seed = seed * 977;
    auto nl = generate_circuit(lib(), p);
    CombModel m(*nl, SeqView::kCapture);
    const std::size_t ni = m.input_nets().size();
    if (ni > 16) continue;
    const TestabilityResult t = analyze_testability(m);
    FaultList fl = build_fault_list(m);
    FaultSimulator fs(m);
    Podem pod(m, t, {});

    std::vector<char> detectable(fl.faults.size(), 0);
    const unsigned total = 1u << ni;
    for (unsigned base = 0; base < total; base += 64) {
      std::vector<Word> words(ni, 0);
      for (unsigned k = 0; k < 64 && base + k < total; ++k) {
        for (std::size_t i = 0; i < ni; ++i) {
          if ((base + k) & (1u << i)) words[i] |= Word{1} << k;
        }
      }
      fs.load_batch(words);
      for (std::size_t fi = 0; fi < fl.faults.size(); ++fi) {
        if (detectable[fi] || fl.faults[fi].status == FaultStatus::kScanTested) continue;
        if (fs.detects(fl.faults[fi])) detectable[fi] = 1;
      }
    }
    for (std::size_t fi = 0; fi < fl.faults.size(); ++fi) {
      const Fault& f = fl.faults[fi];
      if (f.status == FaultStatus::kScanTested) continue;
      const PodemResult r = pod.generate(f);
      ++checked;
      if (r.outcome == PodemOutcome::kRedundant) {
        EXPECT_FALSE(detectable[fi])
            << "seed " << seed << ": false redundancy proof for fault on "
            << nl->net(f.net).name << " sa" << f.stuck1;
      }
      if (r.outcome == PodemOutcome::kTest) {
        EXPECT_TRUE(detectable[fi])
            << "seed " << seed << ": PODEM 'test' for undetectable fault on "
            << nl->net(f.net).name;
      }
    }
  }
  EXPECT_GT(checked, 1500);
}

TEST(PodemTest, BacktrackLimitYieldsAborted) {
  auto nl = generate_circuit(lib(), test::tiny_profile(31));
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  PodemOptions opts;
  opts.backtrack_limit = 0;  // give up immediately on any conflict
  Podem podem(model, t, opts);
  FaultList fl = build_fault_list(model);
  int aborted = 0;
  for (const Fault& f : fl.faults) {
    if (f.status == FaultStatus::kScanTested) continue;
    aborted += podem.generate(f).outcome == PodemOutcome::kAborted;
  }
  EXPECT_GT(aborted, 0);
}

}  // namespace
}  // namespace tpi
