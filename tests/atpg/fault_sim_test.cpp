#include "atpg/fault_sim.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "circuits/generator.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

using test::lib;

class SmallCombFaultSim : public ::testing::Test {
 protected:
  void SetUp() override {
    nl_ = test::make_small_comb();
    model_ = std::make_unique<CombModel>(*nl_, SeqView::kCapture);
    fsim_ = std::make_unique<FaultSimulator>(*model_);
  }
  // One pattern per bit: a=bit0, b=bit1, c=bit2 of the row index.
  void load_exhaustive() {
    std::vector<Word> words(3, 0);
    for (int row = 0; row < 8; ++row) {
      for (int i = 0; i < 3; ++i) {
        if (row & (1 << i)) words[static_cast<std::size_t>(i)] |= Word{1} << row;
      }
    }
    fsim_->load_batch(words);
  }
  Fault stem(const char* net, bool sa1) {
    Fault f;
    f.net = nl_->find_net(net);
    f.stuck1 = sa1;
    return f;
  }
  std::unique_ptr<Netlist> nl_;
  std::unique_ptr<CombModel> model_;
  std::unique_ptr<FaultSimulator> fsim_;
};

TEST_F(SmallCombFaultSim, StemFaultDetectedOnExpectedPatterns) {
  load_exhaustive();
  // y-sa0 is detected iff y==1 (a=b=0) and observable (c=1): row c=1,a=0,b=0
  // -> row 4. Observed at z and onward at w.
  const Word d = fsim_->detects(stem("y", false));
  EXPECT_EQ(d, Word{1} << 4);
}

TEST_F(SmallCombFaultSim, StuckValueEqualGoodIsUndetected) {
  load_exhaustive();
  // z sa0 where z is 0 in rows != 4 only detected on row 4.
  const Word d = fsim_->detects(stem("z", false));
  EXPECT_EQ(d, Word{1} << 4);
  // z sa1: detected whenever z==0 (all rows but 4): via po_z directly.
  // (Bits above row 7 carry the all-zero pattern, which also detects.)
  const Word d1 = fsim_->detects(stem("z", true));
  EXPECT_EQ(d1 & 0xFF, static_cast<Word>(0xFF & ~(1u << 4)));
}

TEST_F(SmallCombFaultSim, BranchFaultNarrowerThanStem) {
  load_exhaustive();
  // a fans out to g1 (NOR) and g3 (XOR). The stem affects both paths; the
  // g3 branch affects only w.
  Fault branch = stem("a", true);
  const Net& net = nl_->net(branch.net);
  ASSERT_EQ(net.sinks.size(), 2u);
  for (const PinRef& s : net.sinks) {
    if (nl_->cell(s.cell).name == "g3") branch.branch = s;
  }
  ASSERT_TRUE(branch.branch.valid());
  const Word stem_d = fsim_->detects(stem("a", true));
  const Word branch_d = fsim_->detects(branch);
  // Branch detection patterns form a subset... not strictly (masking), but
  // both must be nonempty here and branch must not detect where a==1.
  EXPECT_NE(stem_d, Word{0});
  EXPECT_NE(branch_d, Word{0});
  for (int row = 0; row < 8; ++row) {
    if (row & 1) EXPECT_EQ((branch_d >> row) & 1, 0u) << "activation requires a=0";
  }
}

TEST(FaultSimHelpersTest, FirstDetectingBitSelectsLowestSetBit) {
  EXPECT_EQ(first_detecting_bit(0), Word{0});
  EXPECT_EQ(first_detecting_pattern(0), -1);
  EXPECT_EQ(first_detecting_bit(0b1000), Word{0b1000});
  EXPECT_EQ(first_detecting_pattern(0b1000), 3);
  EXPECT_EQ(first_detecting_bit(0b1011000), Word{0b0001000});
  EXPECT_EQ(first_detecting_bit(~Word{0}), Word{1});
  EXPECT_EQ(first_detecting_pattern(Word{1} << 63), 63);
  // Matches the old two's-complement trick on every single-credit case.
  for (const Word d : {Word{0x10}, Word{0xF0F0}, Word{1} << 62, Word{3}}) {
    EXPECT_EQ(first_detecting_bit(d), d & (~d + 1));
  }
}

TEST_F(SmallCombFaultSim, EveryNetReachesAnObservePoint) {
  // In the small comb circuit all nets feed po_z or po_w.
  for (std::size_t n = 0; n < nl_->num_nets(); ++n) {
    EXPECT_TRUE(model_->net_reaches_observe(static_cast<NetId>(n)))
        << nl_->net(static_cast<NetId>(n)).name;
  }
  EXPECT_EQ(model_->num_observable_cone_nets(), nl_->num_nets());
}

TEST(FaultSimConeTest, DeadConeFaultIsSkippedNotSimulated) {
  // Add a gate whose output drives nothing: its cone holds no observe
  // point, so faults there must be cut by the cone mask, not propagated.
  auto nl = test::make_small_comb();
  const CellSpec* and2 = test::lib().gate(CellFunc::kAnd, 2);
  const CellId dead = nl->add_cell(and2, "dead");
  nl->connect(dead, 0, nl->find_net("a"));
  nl->connect(dead, 1, nl->find_net("b"));
  const NetId dead_out = nl->add_net("dead_out");
  nl->connect(dead, and2->output_pin, dead_out);

  CombModel model(*nl, SeqView::kCapture);
  EXPECT_FALSE(model.net_reaches_observe(dead_out));
  EXPECT_TRUE(model.net_reaches_observe(nl->find_net("a")));
  EXPECT_EQ(model.num_observable_cone_nets(), nl->num_nets() - 1);

  FaultSimulator fsim(model);
  std::vector<Word> words(3, 0);
  words[0] = 0x5555;  // a
  fsim.load_batch(words);
  Fault f;
  f.net = dead_out;
  EXPECT_EQ(fsim.detects(f), Word{0});
  EXPECT_EQ(fsim.stats().cone_skips, 1u);
  EXPECT_EQ(fsim.stats().node_evals, 0u);  // skipped before any propagation
  EXPECT_EQ(fsim.stats().faults_graded, 1u);
  fsim.reset_stats();
  EXPECT_EQ(fsim.stats().faults_graded, 0u);
}

TEST_F(SmallCombFaultSim, StatsCountGradedFaultsAndEvents) {
  load_exhaustive();
  fsim_->detects(stem("y", false));
  fsim_->detects(stem("a", true));
  const FaultSimStats& s = fsim_->stats();
  EXPECT_EQ(s.faults_graded, 2u);
  EXPECT_EQ(s.cone_skips, 0u);
  EXPECT_GT(s.node_evals, 0u);
  EXPECT_GT(s.events, 0u);
}

TEST_F(SmallCombFaultSim, DropDetectedMarksFaults) {
  load_exhaustive();
  std::vector<Fault> faults{stem("y", false), stem("y", true), stem("w", false)};
  std::vector<Fault*> ptrs{&faults[0], &faults[1], &faults[2]};
  const Word useful = fsim_->drop_detected(ptrs);
  EXPECT_NE(useful, Word{0});
  for (const Fault& f : faults) EXPECT_EQ(f.status, FaultStatus::kDetected);
}

// Regression for the BM_FaultGradeLive cone_skip_pct counter: grading a
// netlist with unobservable monitor logic must exercise the cone filter,
// and the skip/graded counters must not depend on the worker count (the
// bank splits the same fault list into contiguous chunks either way).
TEST(FaultSimConeTest, ConeSkipStatsNonzeroAndJobInvariant) {
  const auto& L = test::lib();
  auto nl = generate_circuit(L, test::tiny_profile(47));
  const CellSpec* inv = L.gate(CellFunc::kInv, 1);
  ASSERT_NE(inv, nullptr);
  const int in_pin = inv->find_pin("A");
  const int npis = static_cast<int>(nl->num_pis());
  for (int i = 0; i < 32; ++i) {
    const CellId c = nl->add_cell(inv, "deadmon_u" + std::to_string(i));
    const NetId out = nl->add_net("deadmon_n" + std::to_string(i));
    nl->connect(c, in_pin, nl->pi_net(i % npis));
    nl->connect(c, inv->output_pin, out);
  }
  const CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model);

  FaultSimStats by_jobs[2];
  int idx = 0;
  for (const int jobs : {1, 3}) {
    FaultSimBank bank(model, jobs);
    std::vector<Fault*> live;
    for (Fault& f : fl.faults) {
      if (f.status != FaultStatus::kScanTested) live.push_back(&f);
    }
    Rng rng(9);
    std::vector<Word> words(model.input_nets().size());
    for (auto& w : words) w = rng.next_u64();
    bank.load_batch(words);
    std::vector<Word> detect;
    bank.grade(live, detect);
    by_jobs[idx++] = bank.take_stats();
  }
  EXPECT_GT(by_jobs[0].cone_skips, 0u);
  EXPECT_GT(by_jobs[0].faults_graded, by_jobs[0].cone_skips);
  EXPECT_EQ(by_jobs[0].cone_skips, by_jobs[1].cone_skips);
  EXPECT_EQ(by_jobs[0].faults_graded, by_jobs[1].faults_graded);
  EXPECT_EQ(by_jobs[0].node_evals, by_jobs[1].node_evals);
}

// Cross-check: event-driven fault simulation agrees with brute-force
// "rebuild the whole circuit with the fault injected" simulation.
TEST(FaultSimPropertyTest, AgreesWithFullResimulation) {
  const auto& L = test::lib();
  auto nl = generate_circuit(L, test::tiny_profile(21));
  CombModel model(*nl, SeqView::kCapture);
  FaultSimulator fsim(model);
  FaultList fl = build_fault_list(model);
  Rng rng(5);
  std::vector<Word> words(model.input_nets().size());
  for (auto& w : words) w = rng.next_u64();
  fsim.load_batch(words);

  ParallelSim good(model);
  good.load_inputs(words);
  good.run();
  std::vector<Word> good_obs;
  good.read_observes(good_obs);

  int checked = 0;
  for (const Fault& f : fl.faults) {
    if (f.status == FaultStatus::kScanTested) continue;
    if (!f.is_stem()) continue;  // brute force below handles stems
    if (++checked > 120) break;
    // Brute force: force the net value and resimulate everything.
    ParallelSim bad(model);
    bad.load_inputs(words);
    // Evaluate with the stuck value overriding the net after each full run;
    // iterate to a fixed point (two passes suffice for acyclic logic).
    bad.run();
    bad.set_value(f.net, f.stuck1 ? ~Word{0} : Word{0});
    // Re-run all nodes downstream by running the full sweep again with the
    // forced value re-applied afterwards until stable.
    for (int pass = 0; pass < 2; ++pass) {
      std::vector<Word> saved(bad.values());
      saved[static_cast<std::size_t>(f.net)] = f.stuck1 ? ~Word{0} : Word{0};
      // Manual sweep honouring the forced net.
      for (const CombNode& node : model.nodes()) {
        Word in[4];
        for (int i = 0; i < node.num_inputs; ++i) {
          in[i] = saved[static_cast<std::size_t>(node.in[i])];
        }
        const Word sel = node.sel != kNoNet ? saved[static_cast<std::size_t>(node.sel)] : 0;
        if (node.out != kNoNet && node.out != f.net) {
          saved[static_cast<std::size_t>(node.out)] = eval_node_word(node, in, sel);
        }
      }
      for (std::size_t i = 0; i < saved.size(); ++i) {
        bad.set_value(static_cast<NetId>(i), saved[i]);
      }
    }
    Word brute = 0;
    for (std::size_t i = 0; i < model.observe_nets().size(); ++i) {
      brute |= bad.value(model.observe_nets()[i]) ^ good_obs[i];
    }
    EXPECT_EQ(fsim.detects(f), brute) << "stem fault on " << nl->net(f.net).name;
  }
  EXPECT_GT(checked, 60);
}

}  // namespace
}  // namespace tpi
