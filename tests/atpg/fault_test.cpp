#include "atpg/fault.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "scan/scan.hpp"

namespace tpi {
namespace {

using test::lib;

TEST(FaultListTest, UncollapsedUniverseCountsPins) {
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  // Pins: g1(A,B,Y)=3, g2(A,B,Y)=3, g3(A,B,Y)=3, PIs=3 -> 12 sites, 24 faults.
  EXPECT_EQ(fl.total_uncollapsed, 24);
}

TEST(FaultListTest, EquivalentCountsSumToUniverse) {
  auto nl = generate_circuit(lib(), test::tiny_profile(3));
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  std::int64_t sum = 0;
  for (const Fault& f : fl.faults) sum += f.equiv_count;
  EXPECT_EQ(sum, fl.total_uncollapsed);
}

TEST(FaultListTest, CollapsingReducesFaults) {
  auto nl = generate_circuit(lib(), test::tiny_profile(4));
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  EXPECT_LT(static_cast<std::int64_t>(fl.faults.size()), fl.total_uncollapsed);
  // Meaningful compaction: at least 20% fewer representatives.
  EXPECT_LT(static_cast<double>(fl.faults.size()),
            0.8 * static_cast<double>(fl.total_uncollapsed));
}

TEST(FaultListTest, BufferChainCollapsesToOneRepresentativePerPolarity) {
  Netlist nl(&lib(), "chain");
  const int a = nl.add_primary_input("a");
  const CellSpec* buf = lib().gate(CellFunc::kBuf, 1);
  NetId prev = nl.pi_net(a);
  for (int i = 0; i < 3; ++i) {
    const CellId b = nl.add_cell(buf, "b" + std::to_string(i));
    nl.connect(b, 0, prev);
    const NetId out = nl.add_net("n" + std::to_string(i));
    nl.connect(b, buf->output_pin, out);
    prev = out;
  }
  nl.add_primary_output("po", prev);
  CombModel model(nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  // a + 3 buffer outputs = 4 nets x 2 faults uncollapsed on pins = (1 PI +
  // 3x2 pins) * 2 = 14; all collapse to the final net's pair.
  EXPECT_EQ(fl.total_uncollapsed, 14);
  EXPECT_EQ(fl.faults.size(), 2u);
  for (const Fault& f : fl.faults) EXPECT_EQ(f.equiv_count, 7);
}

TEST(FaultListTest, InverterSwapsPolarity) {
  Netlist nl(&lib(), "inv");
  const int a = nl.add_primary_input("a");
  const CellSpec* inv = lib().gate(CellFunc::kInv, 1);
  const CellId g = nl.add_cell(inv, "g");
  nl.connect(g, 0, nl.pi_net(a));
  const NetId out = nl.add_net("n");
  nl.connect(g, inv->output_pin, out);
  nl.add_primary_output("po", out);
  CombModel model(nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  ASSERT_EQ(fl.faults.size(), 2u);
  // Representatives live on the output net, each standing for 3 pins:
  // {a sa0 ≡ n sa1} and {a sa1 ≡ n sa0}.
  for (const Fault& f : fl.faults) {
    EXPECT_EQ(f.net, out);
    EXPECT_EQ(f.equiv_count, 3);
  }
}

TEST(FaultListTest, BranchFaultsOnlyOnMultiFanout) {
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  for (const Fault& f : fl.faults) {
    if (!f.is_stem()) {
      EXPECT_GT(nl->net(f.net).fanout(), 1u)
          << "branch fault on single-fanout net " << nl->net(f.net).name;
    }
  }
}

TEST(FaultListTest, ScanInfrastructureClassified) {
  auto nl = test::make_shift_register();
  ScanOptions so;
  so.max_chain_length = 4;
  insert_scan(*nl, so);
  const ChainPlan plan = plan_chains(*nl, so, {});
  stitch_chains(*nl, plan);
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  std::int64_t scan = fl.count_equiv(FaultStatus::kScanTested);
  EXPECT_GT(scan, 0);
  // Clock-net faults are scan-classified.
  for (const Fault& f : fl.faults) {
    if (nl->is_clock_net(f.net)) EXPECT_EQ(f.status, FaultStatus::kScanTested);
  }
}

TEST(FaultListTest, ScanEnableBufferTreeIsScanTested) {
  auto nl = generate_circuit(lib(), test::tiny_profile(8));
  ScanOptions so;
  so.max_chain_length = 8;
  insert_scan(*nl, so);
  const NetId se = nl->find_net("scan_en");
  ASSERT_NE(se, kNoNet);
  const int buffers = buffer_high_fanout_net(*nl, se, 4);
  ASSERT_GT(buffers, 0);
  CombModel model(*nl, SeqView::kCapture);
  const FaultList fl = build_fault_list(model);
  // Every fault on the scan-enable tree (root and buffer outputs) must be
  // classified scan-tested, not handed to ATPG.
  for (const Fault& f : fl.faults) {
    const Net& net = nl->net(f.net);
    const bool in_tree =
        net.name.find("scan_en") != std::string::npos;
    if (in_tree) {
      EXPECT_EQ(f.status, FaultStatus::kScanTested) << net.name;
    }
  }
}

}  // namespace
}  // namespace tpi
