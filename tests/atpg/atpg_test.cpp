#include "atpg/atpg.hpp"

#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "atpg/fault_sim.hpp"
#include "circuits/generator.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"

namespace tpi {
namespace {

using test::lib;

AtpgResult run_on_tiny(std::uint64_t seed, const AtpgOptions& opts = {}) {
  auto nl = generate_circuit(lib(), test::tiny_profile(seed));
  ScanOptions so;
  so.max_chain_length = 10;
  insert_scan(*nl, so);
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  return run_atpg(model, t, opts);
}

TEST(AtpgTest, AchievesHighEfficiencyOnTinyCircuit) {
  const AtpgResult r = run_on_tiny(1);
  EXPECT_GT(r.fault_coverage_pct, 90.0);
  EXPECT_GT(r.fault_efficiency_pct, 97.0);
  EXPECT_GT(r.num_patterns(), 0);
  EXPECT_EQ(r.detected + r.scan_tested + r.redundant + r.aborted +
                r.faults.count_equiv(FaultStatus::kUndetected),
            r.total_faults);
}

TEST(AtpgTest, StaticCompactionShrinksPatternSet) {
  AtpgOptions with;
  AtpgOptions without;
  without.static_compaction = false;
  const AtpgResult a = run_on_tiny(2, with);
  const AtpgResult b = run_on_tiny(2, without);
  EXPECT_LT(a.num_patterns(), b.num_patterns());
  // Compaction must not lose coverage.
  EXPECT_NEAR(a.fault_coverage_pct, b.fault_coverage_pct, 0.5);
}

TEST(AtpgTest, CompactedPatternsStillDetectEverything) {
  auto nl = generate_circuit(lib(), test::tiny_profile(3));
  ScanOptions so;
  so.max_chain_length = 10;
  insert_scan(*nl, so);
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  const AtpgResult r = run_atpg(model, t, {});

  // Replay the final pattern set from scratch; every kDetected fault must
  // be re-detected.
  FaultList fresh = build_fault_list(model);
  FaultSimulator fsim(model);
  const std::size_t ni = model.input_nets().size();
  for (std::size_t start = 0; start < r.patterns.size(); start += 64) {
    std::vector<Word> words(ni, 0);
    const std::size_t end = std::min(r.patterns.size(), start + 64);
    for (std::size_t k = start; k < end; ++k) {
      for (std::size_t i = 0; i < ni; ++i) {
        words[i] |= static_cast<Word>(r.patterns[k].bits[i] & 1) << (k - start);
      }
    }
    fsim.load_batch(words);
    for (Fault& f : fresh.faults) {
      if (f.status != FaultStatus::kUndetected) continue;
      if (fsim.detects(f)) f.status = FaultStatus::kDetected;
    }
  }
  EXPECT_EQ(fresh.count_equiv(FaultStatus::kDetected), r.detected);
}

TEST(AtpgTest, DeterministicForFixedSeed) {
  const AtpgResult a = run_on_tiny(4);
  const AtpgResult b = run_on_tiny(4);
  EXPECT_EQ(a.num_patterns(), b.num_patterns());
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.redundant, b.redundant);
}

TEST(AtpgTest, TestPointsReducePatternsOnHardCircuit) {
  // A circuit dominated by gated hard blocks: control points on the
  // enables must shrink the compact pattern set (the paper's Table 1).
  CircuitProfile p = test::tiny_profile(7);
  p.num_comb_gates = 900;
  p.num_ffs = 60;
  p.num_hard_blocks = 4;
  p.hard_block_width = 10;
  p.hard_classes_per_block = 12;
  p.hard_mode_bits = 5;

  auto run = [&](int tps) {
    auto nl = generate_circuit(lib(), p);
    TpiOptions to;
    to.num_test_points = tps;
    insert_test_points(*nl, to);
    ScanOptions so;
    so.max_chain_length = 16;
    insert_scan(*nl, so);
    CombModel model(*nl, SeqView::kCapture);
    const TestabilityResult t = analyze_testability(model);
    return run_atpg(model, t, {});
  };
  const AtpgResult base = run(0);
  const AtpgResult tp4 = run(4);
  EXPECT_LT(tp4.num_patterns(), base.num_patterns());
  EXPECT_GE(tp4.fault_coverage_pct, base.fault_coverage_pct - 0.25);
  EXPECT_GT(tp4.total_faults, base.total_faults);  // test points add faults
}

TEST(AtpgMetricsTest, TestDataVolumeEquation1) {
  // TDV = 2n((l_max + 1)p + l_max), §4.2 eq. (1).
  EXPECT_EQ(test_data_volume(1, 10, 0), 2 * 10);
  EXPECT_EQ(test_data_volume(17, 100, 500), 2LL * 17 * (101 * 500 + 100));
  EXPECT_EQ(test_data_volume(32, 112, 1000), 2LL * 32 * (113 * 1000 + 112));
}

TEST(AtpgMetricsTest, TestApplicationTimeEquation2) {
  // TAT = (l_max + 1)p + l_max, §4.2 eq. (2).
  EXPECT_EQ(test_application_time(10, 0), 10);
  EXPECT_EQ(test_application_time(100, 500), 101LL * 500 + 100);
}

TEST(AtpgMetricsTest, TdvScalesWithPatternCount) {
  const auto base = test_data_volume(16, 100, 1000);
  const auto fewer = test_data_volume(16, 100, 600);
  EXPECT_NEAR(static_cast<double>(fewer) / static_cast<double>(base), 0.6, 0.01);
}

}  // namespace
}  // namespace tpi
