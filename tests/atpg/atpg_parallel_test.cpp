// Parallel-vs-serial equivalence of the ATPG fault-simulation inner loop:
// run_atpg must produce a bit-identical AtpgResult for any AtpgOptions::jobs
// (FaultSimBank partitions deterministically and merges in fault-list
// order). Runs at jobs ∈ {1, 2, hardware} on two generated circuit
// profiles; carries the "smoke" ctest label so a -DTPI_SANITIZE=thread
// build doubles as a data-race check of the new path.
#include <gtest/gtest.h>

#include "../common/test_circuits.hpp"
#include "atpg/atpg.hpp"
#include "circuits/generator.hpp"
#include "scan/scan.hpp"
#include "tpi/tpi.hpp"
#include "util/rng.hpp"

namespace tpi {
namespace {

using test::lib;

AtpgResult run_with_jobs(const CircuitProfile& profile, int jobs, int test_points = 0) {
  auto nl = generate_circuit(lib(), profile);
  if (test_points > 0) {
    TpiOptions to;
    to.num_test_points = test_points;
    insert_test_points(*nl, to);
  }
  ScanOptions so;
  so.max_chain_length = 16;
  insert_scan(*nl, so);
  CombModel model(*nl, SeqView::kCapture);
  const TestabilityResult t = analyze_testability(model);
  AtpgOptions opts;
  opts.jobs = jobs;
  return run_atpg(model, t, opts);
}

void expect_bit_identical(const AtpgResult& a, const AtpgResult& b) {
  // Patterns: count and every bit.
  ASSERT_EQ(a.patterns.size(), b.patterns.size());
  for (std::size_t i = 0; i < a.patterns.size(); ++i) {
    EXPECT_EQ(a.patterns[i].bits, b.patterns[i].bits) << "pattern " << i;
  }
  // Per-fault statuses.
  ASSERT_EQ(a.faults.faults.size(), b.faults.faults.size());
  for (std::size_t i = 0; i < a.faults.faults.size(); ++i) {
    EXPECT_EQ(a.faults.faults[i].status, b.faults.faults[i].status) << "fault " << i;
  }
  // Aggregate metrics (exact, not approximate: same arithmetic, same order).
  EXPECT_EQ(a.total_faults, b.total_faults);
  EXPECT_EQ(a.detected, b.detected);
  EXPECT_EQ(a.scan_tested, b.scan_tested);
  EXPECT_EQ(a.redundant, b.redundant);
  EXPECT_EQ(a.aborted, b.aborted);
  EXPECT_EQ(a.fault_coverage_pct, b.fault_coverage_pct);
  EXPECT_EQ(a.fault_efficiency_pct, b.fault_efficiency_pct);
  EXPECT_EQ(a.patterns_before_compaction, b.patterns_before_compaction);
  EXPECT_EQ(a.podem_calls, b.podem_calls);
  EXPECT_EQ(a.podem_aborts, b.podem_aborts);
  // Kernel event counters are scheduling-independent too (each fault is
  // graded exactly once; only wall_ms may differ).
  const AtpgPhaseProfile pa = a.profile.total();
  const AtpgPhaseProfile pb = b.profile.total();
  EXPECT_EQ(pa.batches, pb.batches);
  EXPECT_EQ(pa.faults_graded, pb.faults_graded);
  EXPECT_EQ(pa.cone_skips, pb.cone_skips);
  EXPECT_EQ(pa.node_evals, pb.node_evals);
  EXPECT_EQ(pa.events, pb.events);
}

TEST(AtpgParallelTest, BitIdenticalAcrossJobCountsOnTinyProfile) {
  const AtpgResult serial = run_with_jobs(test::tiny_profile(11), 1);
  const AtpgResult two = run_with_jobs(test::tiny_profile(11), 2);
  const AtpgResult hw = run_with_jobs(test::tiny_profile(11), 0);  // hardware
  EXPECT_EQ(serial.profile.jobs, 1);
  EXPECT_EQ(two.profile.jobs, 2);
  EXPECT_GE(hw.profile.jobs, 1);
  expect_bit_identical(serial, two);
  expect_bit_identical(serial, hw);
}

TEST(AtpgParallelTest, BitIdenticalOnHardBlockProfileWithTestPoints) {
  // Second profile: gated hard blocks + test points, the shape that makes
  // the paper's Table 1 interesting — and drives PODEM + compaction harder.
  CircuitProfile p = test::tiny_profile(7);
  p.num_comb_gates = 900;
  p.num_ffs = 60;
  p.num_hard_blocks = 4;
  p.hard_block_width = 10;
  p.hard_classes_per_block = 12;
  p.hard_mode_bits = 5;

  const AtpgResult serial = run_with_jobs(p, 1, 4);
  const AtpgResult two = run_with_jobs(p, 2, 4);
  const AtpgResult four = run_with_jobs(p, 4, 4);
  expect_bit_identical(serial, two);
  expect_bit_identical(serial, four);
  EXPECT_GT(serial.num_patterns(), 0);
  EXPECT_GT(serial.profile.total().faults_graded, 0u);
}

TEST(AtpgParallelTest, BankGradeMatchesPerFaultDetects) {
  auto nl = generate_circuit(lib(), test::tiny_profile(31));
  ScanOptions so;
  so.max_chain_length = 10;
  insert_scan(*nl, so);
  CombModel model(*nl, SeqView::kCapture);
  FaultList fl = build_fault_list(model);
  std::vector<Fault*> faults;
  for (Fault& f : fl.faults) faults.push_back(&f);

  Rng rng(9);
  std::vector<Word> words(model.input_nets().size());
  for (auto& w : words) w = rng.next_u64();

  FaultSimulator serial(model);
  serial.load_batch(words);
  std::vector<Word> expected;
  for (Fault* f : faults) expected.push_back(serial.detects(*f));

  for (const int jobs : {1, 2, 3}) {
    FaultSimBank bank(model, jobs);
    bank.load_batch(words);
    std::vector<Word> got;
    bank.grade(faults, got);
    EXPECT_EQ(got, expected) << "jobs=" << jobs;
    const FaultSimStats s = bank.take_stats();
    EXPECT_EQ(s.faults_graded, faults.size());
  }
}

TEST(AtpgParallelTest, GradeAndDropKeepsRedundantAndAbortedLive) {
  auto nl = test::make_small_comb();
  CombModel model(*nl, SeqView::kCapture);
  FaultSimBank bank(model, 2);
  // Exhaustive batch over the 3 inputs.
  std::vector<Word> words(3, 0);
  for (int row = 0; row < 8; ++row) {
    for (int i = 0; i < 3; ++i) {
      if (row & (1 << i)) words[static_cast<std::size_t>(i)] |= Word{1} << row;
    }
  }
  bank.load_batch(words);

  Fault detectable;
  detectable.net = nl->find_net("y");
  Fault redundant_like = detectable;  // same site, pre-marked redundant
  redundant_like.status = FaultStatus::kRedundant;
  redundant_like.stuck1 = true;
  std::vector<Fault*> live{&detectable, &redundant_like};
  const FaultSimBank::DropOutcome out = bank.grade_and_drop(live);
  // Both faults are detectable by the exhaustive batch: the redundant mark
  // is overridden by simulation evidence and both leave the live list.
  EXPECT_TRUE(live.empty());
  EXPECT_EQ(detectable.status, FaultStatus::kDetected);
  EXPECT_EQ(redundant_like.status, FaultStatus::kDetected);
  EXPECT_NE(out.useful, Word{0});
  // Only the ex-kUndetected fault counts toward the warm-up yield.
  EXPECT_EQ(out.equiv_dropped, detectable.equiv_count);
}

}  // namespace
}  // namespace tpi
